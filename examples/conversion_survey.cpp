// Survey every conversion route the paper analyzes: for each (code,
// approach) pair print the full Section V-A metric set side by side --
// a one-screen recap of Figures 9-17.
//
//   $ ./conversion_survey [p]

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "analysis/report.hpp"

int main() {
  using c56::mig::ConversionCosts;
  for (bool lb : {false, true}) {
    std::cout << "=== Conversion survey ("
              << (lb ? "with" : "without") << " load balancing) ===\n\n";
    c56::TextTable t({"conversion", "invalid", "migrate", "new parity",
                      "extra space", "XORs", "writes", "total I/O",
                      "time/B*Te"});
    for (const auto& spec : c56::ana::figure_conversion_set(lb)) {
      const ConversionCosts c = c56::mig::analyze(spec);
      t.add_row({spec.label(), c56::TextTable::pct(c.invalid_parity_ratio),
                 c56::TextTable::pct(c.parity_migration_ratio),
                 c56::TextTable::pct(c.new_parity_generation_ratio),
                 c56::TextTable::pct(c.extra_space_ratio),
                 c56::TextTable::fmt(c.xor_per_block, 2),
                 c56::TextTable::fmt(c.write_io, 2),
                 c56::TextTable::fmt(c.total_io, 2),
                 c56::TextTable::fmt(c.time, 3)});
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "time/B*Te: conversion time normalized by B block-access "
               "times; lower is better.\n";
  return 0;
}
