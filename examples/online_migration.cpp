// Online RAID-5 -> RAID-6 migration with a live application workload
// (Algorithm 2 end to end).
//
//   $ ./online_migration [p] [groups]
//
// Builds a left-asymmetric RAID-5 over p-1 in-memory disks, starts the
// Code 5-6 conversion thread, hammers the array with concurrent reads
// and writes from an application thread while it runs, then verifies
// every stripe of the resulting RAID-6 and finally demonstrates a
// double-disk recovery on the migrated array.

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "layout/raid.hpp"
#include "migration/online.hpp"
#include "util/rng.hpp"
#include "xorblk/xor.hpp"

using namespace c56;

int main(int argc, char** argv) {
  const int p = argc > 1 ? std::atoi(argv[1]) : 5;
  const std::int64_t groups = argc > 2 ? std::atoll(argv[2]) : 512;
  const int m = p - 1;
  constexpr std::size_t kBlock = 1024;

  mig::DiskArray array(m, groups * (p - 1), kBlock);

  // Lay out the source RAID-5: random data, horizontal parity per row.
  Rng rng(7);
  std::vector<std::uint8_t> block(kBlock), parity(kBlock);
  const std::int64_t rows = array.blocks_per_disk();
  for (std::int64_t row = 0; row < rows; ++row) {
    std::fill(parity.begin(), parity.end(), 0);
    const int pdisk = raid5_parity_disk(Raid5Flavor::kLeftAsymmetric,
                                        static_cast<int>(row % m), m);
    for (int d = 0; d < m; ++d) {
      if (d == pdisk) continue;
      rng.fill(block.data(), kBlock);
      std::ranges::copy(block, array.raw_block(d, row).begin());
      xor_into(parity.data(), block.data(), kBlock);
    }
    std::ranges::copy(parity, array.raw_block(pdisk, row).begin());
  }
  std::printf("source RAID-5: %d disks x %lld blocks (%zu B blocks)\n", m,
              static_cast<long long>(rows), kBlock);

  mig::OnlineMigrator migrator(array, p);
  // Keep an application-visible model of the logical blocks we touch.
  const std::int64_t logical = migrator.logical_blocks();
  migrator.start();

  std::uint64_t app_writes = 0, app_reads = 0;
  {
    Rng app(42);
    std::vector<std::uint8_t> buf(kBlock);
    while (migrator.converting()) {
      const std::int64_t target =
          static_cast<std::int64_t>(app.next_below(
              static_cast<std::uint64_t>(logical)));
      if (app.next_below(3) == 0) {
        app.fill(buf.data(), kBlock);
        migrator.write_block(target, buf);
        ++app_writes;
      } else {
        migrator.read_block(target, buf);
        ++app_reads;
      }
    }
  }
  migrator.finish();

  const mig::OnlineStats stats = migrator.stats();
  std::printf("conversion done: %lld groups\n",
              static_cast<long long>(migrator.groups_done()));
  std::printf("  converter I/O: %llu reads, %llu writes\n",
              static_cast<unsigned long long>(stats.conv_reads),
              static_cast<unsigned long long>(stats.conv_writes));
  std::printf("  application:   %llu reads, %llu writes issued "
              "(%llu preempted the converter)\n",
              static_cast<unsigned long long>(app_reads),
              static_cast<unsigned long long>(app_writes),
              static_cast<unsigned long long>(stats.interruptions));

  const bool ok = migrator.verify_raid6();
  std::printf("RAID-6 verification after concurrent workload: %s\n",
              ok ? "PASS" : "FAIL");
  if (!ok) return 1;

  // Bonus: the migrated array now tolerates a double disk failure.
  const Code56& code = migrator.code();
  Buffer stripe(static_cast<std::size_t>(code.cell_count()) * kBlock);
  StripeView v = StripeView::over(stripe, p - 1, p, kBlock);
  for (int r = 0; r <= p - 2; ++r) {
    for (int c = 0; c <= p - 1; ++c) {
      std::ranges::copy(array.raw_block(c, r), v.block({r, c}).begin());
    }
  }
  const Buffer before = stripe;
  Rng junk(3);
  for (int c : {0, 2}) {
    for (int r = 0; r <= p - 2; ++r) junk.fill(v.block({r, c}).data(), kBlock);
  }
  const std::vector<int> failed{0, 2};
  const auto dec = code.decode_columns(v, failed);
  std::printf("double failure (disks 0,2) on stripe 0: %s\n",
              dec && stripe == before ? "recovered" : "FAILED");
  return dec && stripe == before ? 0 : 1;
}
