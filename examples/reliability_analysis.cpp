// Why migrate at all? Reproduces the paper's motivation (Section I,
// Table I): as drives age, annualized failure rates jump ~5x, and a
// RAID-5's mean time to data loss collapses. This example feeds the
// paper's AFR-by-age table through the Markov MTTDL model and compares
// staying on RAID-5 with migrating to a Code 5-6 RAID-6.
//
//   $ ./reliability_analysis [disks] [repair_hours]

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "analysis/reliability.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const int disks = argc > 1 ? std::atoi(argv[1]) : 8;
  const double repair_hours = argc > 2 ? std::atof(argv[2]) : 24.0;

  std::printf(
      "MTTDL of a %d-disk array (repair time %.0f h), AFRs from Table I\n\n",
      disks, repair_hours);
  c56::TextTable t({"drive age", "AFR", "RAID-5 MTTDL (yr)",
                    "RAID-6 MTTDL (yr)", "gain"});
  for (const auto& row : c56::ana::paper_afr_table()) {
    const double r5 =
        c56::ana::raid5_mttdl_hours(disks, row.afr, repair_hours) / 8760.0;
    const double r6 =
        c56::ana::raid6_mttdl_hours(disks + 1, row.afr, repair_hours) /
        8760.0;
    t.add_row({std::to_string(row.years) + "y",
               c56::TextTable::pct(row.afr), c56::TextTable::fmt(r5, 0),
               c56::TextTable::fmt(r6, 0),
               c56::TextTable::fmt(r6 / r5, 0) + "x"});
  }
  std::ostringstream os;
  t.print(os);
  std::fputs(os.str().c_str(), stdout);
  std::printf(
      "\nA year-2 array is ~5x more failure-prone than a year-1 array "
      "(Table I);\nconverting RAID-5 to RAID-6 buys back orders of "
      "magnitude of MTTDL,\nwhich is the migration Code 5-6 makes cheap "
      "and online.\n");
  return 0;
}
