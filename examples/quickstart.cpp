// Quickstart: encode a Code 5-6 stripe, lose two disks, recover them.
//
//   $ ./quickstart [p]
//
// Walks through the public API end to end: building the code, laying
// out a stripe, encoding, simulating a double disk failure, running
// Algorithm 1, and verifying the result.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "codes/code56.hpp"
#include "util/rng.hpp"
#include "xorblk/buffer.hpp"

int main(int argc, char** argv) {
  const int p = argc > 1 ? std::atoi(argv[1]) : 5;
  constexpr std::size_t kBlockSize = 4096;

  c56::Code56 code(p);
  std::printf("code: %s  (%d rows x %d cols, %d data + %d parity cells)\n",
              code.name().c_str(), code.rows(), code.cols(),
              code.data_cell_count(), code.parity_cell_count());

  // A stripe is one contiguous buffer of rows*cols blocks.
  c56::Buffer stripe(static_cast<std::size_t>(code.cell_count()) * kBlockSize);
  c56::StripeView view =
      c56::StripeView::over(stripe, code.rows(), code.cols(), kBlockSize);

  // Fill the data cells with application bytes.
  c56::Rng rng(2026);
  for (int r = 0; r < code.rows(); ++r) {
    for (int c = 0; c < code.cols(); ++c) {
      if (code.kind({r, c}) == c56::CellKind::kData) {
        auto blk = view.block({r, c});
        rng.fill(blk.data(), blk.size());
      }
    }
  }

  code.encode(view);
  std::printf("encoded: stripe verifies -> %s\n",
              code.verify(view) ? "yes" : "NO");

  // Keep a pristine copy, then destroy two whole columns (disks).
  const c56::Buffer pristine = stripe;
  const std::vector<int> failed{1, 3};
  c56::Rng junk(666);
  for (int c : failed) {
    for (int r = 0; r < code.rows(); ++r) {
      auto blk = view.block({r, c});
      junk.fill(blk.data(), blk.size());
    }
  }
  std::printf("failed disks %d and %d; stripe verifies -> %s\n", failed[0],
              failed[1], code.verify(view) ? "yes" : "no");

  const auto stats = code.decode_columns(view, failed);
  if (!stats) {
    std::printf("decode failed (unexpected for a double failure)\n");
    return 1;
  }
  std::printf("recovered with %zu block reads and %zu XORs\n",
              stats->cells_read, stats->xor_ops);
  std::printf("byte-exact restore -> %s\n",
              stripe == pristine ? "yes" : "NO");
  return stripe == pristine ? 0 : 1;
}
