// Interactive-ish tour of Code 5-6 recovery: prints the stripe layout,
// then walks Algorithm 1 for a chosen pair of failed disks, showing the
// recovery-chain structure of Fig. 5 and the hybrid single-disk
// recovery of Fig. 6.
//
//   $ ./recovery_explorer [p] [f1] [f2]

#include <cstdio>
#include <cstdlib>

#include "codes/code56.hpp"
#include "util/prime.hpp"
#include "util/rng.hpp"

using namespace c56;

namespace {

char glyph(const Code56& code, Cell c) {
  switch (code.kind(c)) {
    case CellKind::kData: return '.';
    case CellKind::kRowParity: return 'H';
    case CellKind::kDiagParity: return 'D';
    case CellKind::kVirtual: return '-';
    default: return '?';
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int p = argc > 1 ? std::atoi(argv[1]) : 5;
  const int f1 = argc > 2 ? std::atoi(argv[2]) : 1;
  const int f2 = argc > 3 ? std::atoi(argv[3]) : 2;
  Code56 code(p);
  if (f1 < 0 || f2 <= f1 || f2 >= code.cols()) {
    std::fprintf(stderr, "need 0 <= f1 < f2 < %d\n", code.cols());
    return 2;
  }

  std::printf("Layout of %s (H = horizontal parity, D = diagonal parity):\n\n",
              code.name().c_str());
  std::printf("      ");
  for (int c = 0; c < code.cols(); ++c) std::printf("d%-2d ", c);
  std::printf("\n");
  for (int r = 0; r < code.rows(); ++r) {
    std::printf("row %d  ", r);
    for (int c = 0; c < code.cols(); ++c) {
      std::printf(" %c  ", glyph(code, {r, c}));
    }
    std::printf("\n");
  }

  if (f2 <= p - 2) {
    std::printf(
        "\nTheorem 1 starting points for failures (%d, %d):\n"
        "  C[%d][%d] via its diagonal chain, C[%d][%d] via its diagonal "
        "chain,\nthen rows and diagonals alternate to the anti-diagonal "
        "endpoints C[%d][%d], C[%d][%d].\n",
        f1, f2, f2 - f1 - 1, f1, p - 1 - f2 + f1, f2, p - 2 - f2, f2,
        p - 2 - f1, f1);
  } else {
    std::printf("\nColumn %d is the diagonal-parity disk: rebuild column %d "
                "from the horizontal chains, then re-encode the diagonals "
                "(Case I of Algorithm 1).\n", f2, f1);
  }

  // Run the real decoder and report its I/O.
  constexpr std::size_t kBlock = 4096;
  Buffer buf(static_cast<std::size_t>(code.cell_count()) * kBlock);
  StripeView v = StripeView::over(buf, code.rows(), code.cols(), kBlock);
  Rng rng(11);
  for (int r = 0; r < code.rows(); ++r) {
    for (int c = 0; c < code.cols(); ++c) {
      if (code.kind({r, c}) == CellKind::kData) {
        rng.fill(v.block({r, c}).data(), kBlock);
      }
    }
  }
  code.encode(v);
  const Buffer before = buf;
  Rng junk(13);
  for (int c : {f1, f2}) {
    for (int r = 0; r < code.rows(); ++r) junk.fill(v.block({r, c}).data(), kBlock);
  }
  const std::vector<int> failed{f1, f2};
  const auto stats = code.decode_columns(v, failed);
  std::printf("\ndouble recovery: %s, %zu block reads, %zu XORs\n",
              stats && buf == before ? "ok" : "FAILED",
              stats ? stats->cells_read : 0, stats ? stats->xor_ops : 0);

  if (f1 <= p - 2) {
    Buffer w1 = before, w2 = before;
    StripeView s1 = StripeView::over(w1, code.rows(), code.cols(), kBlock);
    StripeView s2 = StripeView::over(w2, code.rows(), code.cols(), kBlock);
    const auto plain = code.recover_single_column_plain(s1, f1);
    const auto hybrid = code.recover_single_column_hybrid(s2, f1);
    std::printf(
        "single-disk recovery of disk %d: plain %zu reads, hybrid %zu reads "
        "(%.0f%% fewer)\n",
        f1, plain.cells_read, hybrid.cells_read,
        100.0 * (1.0 - static_cast<double>(hybrid.cells_read) /
                           plain.cells_read));
  }
  return stats && buf == before ? 0 : 1;
}
