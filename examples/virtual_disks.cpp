// Section IV-B2 walkthrough: converting a RAID-5 of *any* size with
// virtual disks. Reproduces the paper's Fig. 8 (m=3 -> p=5, one virtual
// disk), prints the layout with NULL cells, converts through the
// block-level controller, and reports the Eq. 6 storage-efficiency
// penalty.
//
//   $ ./virtual_disks [m]

#include <cstdio>
#include <cstdlib>
#include <map>

#include "codes/code56.hpp"
#include "migration/controller.hpp"
#include "util/rng.hpp"

using namespace c56;

namespace {

const char* glyph(const Code56& code, Cell c) {
  switch (code.kind(c)) {
    case CellKind::kData: return " . ";
    case CellKind::kRowParity: return " H ";
    case CellKind::kDiagParity: return " D ";
    case CellKind::kVirtual: return " - ";
    default: return " ? ";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int m = argc > 1 ? std::atoi(argv[1]) : 3;
  const Code56 code = Code56::for_raid5(m);
  std::printf("RAID-5 of m=%d disks -> %s: p=%d, %d virtual disk(s), "
              "physical RAID-6 of %d disks\n\n",
              m, code.name().c_str(), code.p(), code.virtual_disks(),
              m + 1);

  std::printf("layout ('-' = virtual/NULL, H/D = parities):\n");
  for (int r = 0; r < code.rows(); ++r) {
    std::printf("  ");
    for (int c = 0; c < code.cols(); ++c) std::fputs(glyph(code, {r, c}), stdout);
    std::printf("\n");
  }

  std::printf("\nstorage efficiency (Eq. 6): %d data / %d stored = %.1f%% "
              "(ideal MDS RAID-6 over %d disks: %.1f%%, gap %.2f pp)\n",
              code.data_cell_count(), code.physical_cells_per_stripe(),
              code.storage_efficiency() * 100, m + 1,
              code.ideal_raid6_efficiency() * 100,
              (code.ideal_raid6_efficiency() - code.storage_efficiency()) *
                  100);

  // Exercise the layout end to end through the controller.
  constexpr std::size_t kBlock = 1024;
  const std::int64_t stripes = 64;
  mig::DiskArray array(m + 1, stripes * code.rows(), kBlock);
  mig::ArrayController ctrl(array,
                            std::make_unique<Code56>(code.p(),
                                                     code.virtual_disks()));
  Rng rng(m);
  Buffer buf(kBlock), got(kBlock);
  std::map<std::int64_t, Buffer> model;
  for (std::int64_t l = 0; l < ctrl.logical_blocks(); ++l) {
    rng.fill(buf.data(), kBlock);
    model[l] = buf;
    ctrl.write(l, buf.span());
  }
  std::printf("\nwrote %lld logical blocks; scrub -> %s\n",
              static_cast<long long>(ctrl.logical_blocks()),
              ctrl.scrub().empty() ? "clean" : "CORRUPT");

  ctrl.fail_disk(0);
  ctrl.fail_disk(m);  // the added diagonal-parity disk
  bool ok = true;
  for (const auto& [l, want] : model) {
    ctrl.read(l, got.span());
    ok = ok && got == want;
  }
  std::printf("double failure (disk 0 and the new disk %d): degraded reads "
              "-> %s\n", m, ok ? "all correct" : "MISMATCH");
  ctrl.rebuild_disk(0);
  ctrl.rebuild_disk(m);
  std::printf("rebuild both -> scrub %s\n",
              ctrl.scrub().empty() ? "clean" : "CORRUPT");
  return ok && ctrl.scrub().empty() ? 0 : 1;
}
