// Tests of the multi-tenant block service (src/service/): submit-path
// validation and admission control, the SQ/CQ ordering contract under
// coalescing, DRR fairness, migrator-backed volumes converting
// mid-traffic, labeled metrics export, and a sharded stress run that
// mixes concurrent clients, an online conversion, and paced scrubbing
// (the TSan target: every cross-thread edge of the service in one
// test).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <deque>
#include <map>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/reqtrace.hpp"
#include "obs/trace.hpp"
#include "scrub/scrubber.hpp"
#include "service/slo.hpp"
#include "service/volume_manager.hpp"
#include "util/rng.hpp"

namespace {

using namespace c56;
using svc::OpKind;
using svc::Request;
using svc::Status;

std::vector<std::uint8_t> pattern(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> v(n);
  Rng rng(seed);
  rng.fill(v.data(), n);
  return v;
}

svc::ServiceConfig manual_config(int shards, int max_batch = 256) {
  svc::ServiceConfig sc;
  sc.shards = shards;
  sc.max_batch = max_batch;
  sc.manual_pump = true;
  return sc;
}

svc::Volume::Config small_volume(std::size_t block_bytes = 512,
                                 std::int64_t stripes = 4) {
  svc::Volume::Config vc;
  vc.p = 5;
  vc.stripes = stripes;
  vc.block_bytes = block_bytes;
  return vc;
}

TEST(ServiceValidate, SynchronousRejections) {
  svc::VolumeManager mgr(manual_config(2));
  const svc::VolumeId id = mgr.create_volume(small_volume());
  const std::int64_t lb = mgr.volume(id)->logical_blocks();
  std::vector<std::uint8_t> buf(512);

  Request r;
  r.kind = OpKind::kWrite;
  r.volume = id + 7;
  r.in = {buf.data(), buf.size()};
  EXPECT_EQ(mgr.submit(r), Status::kNoSuchVolume);

  r.volume = id;
  r.tenant = -1;
  EXPECT_EQ(mgr.submit(r), Status::kInvalidArgument);
  r.tenant = svc::kMaxTenants;
  EXPECT_EQ(mgr.submit(r), Status::kInvalidArgument);
  r.tenant = 0;

  r.logical = lb;  // one past the end
  EXPECT_EQ(mgr.submit(r), Status::kInvalidArgument);
  r.logical = lb - 1;
  r.count = 2;  // runs off the end
  EXPECT_EQ(mgr.submit(r), Status::kInvalidArgument);
  r.logical = 0;
  r.count = 1;
  r.in = {buf.data(), 256};  // buffer != count * block_bytes
  EXPECT_EQ(mgr.submit(r), Status::kInvalidArgument);

  r.kind = OpKind::kWriteRange;
  r.offset = -1;
  r.in = {buf.data(), 16};
  EXPECT_EQ(mgr.submit(r), Status::kInvalidArgument);
  r.offset = 500;  // 16 bytes would cross the block end
  EXPECT_EQ(mgr.submit(r), Status::kInvalidArgument);
  r.offset = 0;
  r.in = {buf.data(), std::size_t{0}};  // empty range
  EXPECT_EQ(mgr.submit(r), Status::kInvalidArgument);

  r.kind = OpKind::kRead;
  r.out = {buf.data(), 256};  // short read buffer
  EXPECT_EQ(mgr.submit(r), Status::kInvalidArgument);

  EXPECT_EQ(mgr.inflight(), 0);  // nothing was ever queued
  mgr.stop();
  r.out = {buf.data(), buf.size()};
  EXPECT_EQ(mgr.submit(r), Status::kShutdown);
}

// Single-volume ordering + identity: whole-block writes, multi-block
// writes, sub-block writes and same-block overwrites submitted in one
// batch must land exactly as if applied synchronously in submission
// order, and read back identically through the service and through the
// controller underneath.
TEST(Service, SingleVolumeByteIdentityAcrossOpKinds) {
  svc::VolumeManager mgr(manual_config(1, 4096));
  const std::size_t bs = 1024;
  const svc::VolumeId id = mgr.create_volume(small_volume(bs, 4));
  svc::Volume* vol = mgr.volume(id);
  const std::int64_t lb = vol->logical_blocks();
  ASSERT_GE(lb, 12);

  std::vector<std::vector<std::uint8_t>> mirror(
      static_cast<std::size_t>(lb), std::vector<std::uint8_t>(bs, 0));
  std::deque<std::vector<std::uint8_t>> payloads;  // stable addresses
  std::atomic<int> completed{0};
  auto on_done = [&completed](const svc::Completion& c) {
    EXPECT_EQ(c.status, Status::kOk);
    completed.fetch_add(1);
  };

  auto submit_write = [&](std::int64_t l, std::int64_t count,
                          std::uint64_t seed) {
    payloads.push_back(pattern(static_cast<std::size_t>(count) * bs, seed));
    Request r;
    r.kind = OpKind::kWrite;
    r.volume = id;
    r.logical = l;
    r.count = count;
    r.in = {payloads.back().data(), payloads.back().size()};
    r.on_complete = on_done;
    ASSERT_EQ(mgr.submit(r), Status::kOk);
    for (std::int64_t b = 0; b < count; ++b) {
      std::memcpy(mirror[static_cast<std::size_t>(l + b)].data(),
                  payloads.back().data() + static_cast<std::size_t>(b) * bs,
                  bs);
    }
  };
  auto submit_range = [&](std::int64_t l, std::int64_t off, std::size_t len,
                          std::uint64_t seed) {
    payloads.push_back(pattern(len, seed));
    Request r;
    r.kind = OpKind::kWriteRange;
    r.volume = id;
    r.logical = l;
    r.offset = off;
    r.in = {payloads.back().data(), len};
    r.on_complete = on_done;
    ASSERT_EQ(mgr.submit(r), Status::kOk);
    std::memcpy(mirror[static_cast<std::size_t>(l)].data() + off,
                payloads.back().data(), len);
  };

  // One queued batch exercising every coalescing corner: adjacent
  // singles, a multi-block run, same-block overwrites (whole/whole,
  // whole/sub, sub/sub), and a scattered tail.
  submit_write(0, 1, 1);
  submit_write(1, 1, 2);            // adjacent: fuses with block 0
  submit_write(2, 4, 3);            // multi-block run [2,6)
  submit_write(3, 1, 4);            // overwrites inside the run
  submit_range(3, 100, 64, 5);      // then a sub-block on top
  submit_range(3, 132, 64, 6);      // overlapping sub-block (later wins)
  submit_write(8, 1, 7);
  submit_write(10, 2, 8);           // scattered tail [10,12)
  submit_write(10, 1, 9);           // overwrite head of the tail
  mgr.drain();
  EXPECT_EQ(completed.load(), 9);

  // Read back through the service (single + ranged + sub-block reads).
  std::vector<std::uint8_t> got(bs);
  for (std::int64_t l = 0; l < lb; ++l) {
    Request r;
    r.kind = OpKind::kRead;
    r.volume = id;
    r.logical = l;
    r.out = {got.data(), bs};
    ASSERT_EQ(mgr.submit(r), Status::kOk);
    mgr.drain();
    EXPECT_EQ(got, mirror[static_cast<std::size_t>(l)]) << "block " << l;
  }
  std::vector<std::uint8_t> part(64);
  Request r;
  r.kind = OpKind::kReadRange;
  r.volume = id;
  r.logical = 3;
  r.offset = 100;
  r.out = {part.data(), part.size()};
  ASSERT_EQ(mgr.submit(r), Status::kOk);
  mgr.drain();
  EXPECT_TRUE(std::memcmp(part.data(), mirror[3].data() + 100, 64) == 0);

  // And the controller underneath agrees byte for byte.
  for (std::int64_t l = 0; l < lb; ++l) {
    vol->controller()->read(l, {got.data(), bs});
    EXPECT_EQ(got, mirror[static_cast<std::size_t>(l)]) << "block " << l;
  }
}

// The same sequential write load replayed at max_batch=1 and at a deep
// batch must produce identical bytes but strictly fewer device write
// runs when batched (the queue-depth-aware coalescing win).
TEST(Service, DeepBatchesCoalesceWrites) {
  auto run = [&](int max_batch) {
    svc::VolumeManager mgr(manual_config(1, max_batch));
    const svc::VolumeId id = mgr.create_volume(small_volume(512, 8));
    svc::Volume* vol = mgr.volume(id);
    const std::int64_t lb = vol->logical_blocks();
    std::deque<std::vector<std::uint8_t>> payloads;
    for (std::int64_t l = 0; l < lb; ++l) {
      payloads.push_back(pattern(512, 0x5000 + static_cast<std::uint64_t>(l)));
      Request r;
      r.kind = OpKind::kWrite;
      r.volume = id;
      r.logical = l;
      r.in = {payloads.back().data(), payloads.back().size()};
      EXPECT_EQ(mgr.submit(r), Status::kOk);
    }
    mgr.drain();
    const std::uint64_t runs = vol->array().total_write_runs() +
                               vol->array().total_read_runs();
    std::vector<std::uint8_t> got(512);
    for (std::int64_t l = 0; l < lb; ++l) {
      vol->controller()->read(l, {got.data(), got.size()});
      EXPECT_EQ(got, payloads[static_cast<std::size_t>(l)]) << "block " << l;
    }
    return runs;
  };
  const std::uint64_t runs_unbatched = run(1);
  const std::uint64_t runs_batched = run(4096);
  EXPECT_LE(runs_batched * 2, runs_unbatched)
      << "deep batches should at least halve device runs";
}

// DRR: a tenant flooding the shard cannot starve a trickling tenant —
// the trickle's single op completes within the first drained batch.
TEST(Service, DrrServesTrickleTenantUnderFlood) {
  svc::ServiceConfig sc = manual_config(1, 8);
  sc.quantum_blocks = 4;
  svc::VolumeManager mgr(sc);
  const svc::VolumeId id = mgr.create_volume(small_volume());
  std::vector<std::uint8_t> buf(512, 0xAB);

  std::vector<svc::TenantId> completion_order;  // pump runs on this thread
  auto submit = [&](svc::TenantId tenant, std::int64_t l) {
    Request r;
    r.kind = OpKind::kWrite;
    r.volume = id;
    r.tenant = tenant;
    r.logical = l;
    r.in = {buf.data(), buf.size()};
    r.on_complete = [&completion_order, tenant](const svc::Completion& c) {
      EXPECT_EQ(c.status, Status::kOk);
      completion_order.push_back(tenant);
    };
    ASSERT_EQ(mgr.submit(r), Status::kOk);
  };
  for (std::int64_t i = 0; i < 32; ++i) submit(0, i % 8);  // the flood
  submit(1, 9);                                            // the trickle

  ASSERT_GT(mgr.pump_all(), 0u);  // one drained batch (max_batch = 8)
  ASSERT_LE(completion_order.size(), 8u);
  EXPECT_TRUE(std::find(completion_order.begin(), completion_order.end(),
                        svc::TenantId{1}) != completion_order.end())
      << "trickle tenant not served in the first DRR round";
  mgr.drain();
  EXPECT_EQ(completion_order.size(), 33u);
}

TEST(Service, TenantBudgetBackpressure) {
  svc::ServiceConfig sc = manual_config(1);
  sc.tenant_inflight = 4;
  svc::VolumeManager mgr(sc);
  const svc::VolumeId id = mgr.create_volume(small_volume());
  std::vector<std::uint8_t> buf(512, 1);
  Request r;
  r.kind = OpKind::kWrite;
  r.volume = id;
  r.in = {buf.data(), buf.size()};
  for (int i = 0; i < 4; ++i) {
    r.logical = i;
    EXPECT_EQ(mgr.submit(r), Status::kOk);
  }
  r.logical = 4;
  EXPECT_EQ(mgr.submit(r), Status::kQueueFull);  // budget exhausted
  r.tenant = 1;  // another tenant is unaffected
  EXPECT_EQ(mgr.submit(r), Status::kOk);
  mgr.drain();
  r.tenant = 0;  // completions restored the budget
  EXPECT_EQ(mgr.submit(r), Status::kOk);
  mgr.drain();
}

TEST(Service, ShardQueueCapBackpressure) {
  svc::ServiceConfig sc = manual_config(1);
  sc.shard_queue_cap = 2;
  svc::VolumeManager mgr(sc);
  const svc::VolumeId id = mgr.create_volume(small_volume());
  std::vector<std::uint8_t> buf(512, 2);
  Request r;
  r.kind = OpKind::kWrite;
  r.volume = id;
  r.in = {buf.data(), buf.size()};
  r.logical = 0;
  EXPECT_EQ(mgr.submit(r), Status::kOk);
  r.tenant = 1;  // SQ cap spans tenants
  EXPECT_EQ(mgr.submit(r), Status::kOk);
  r.tenant = 2;
  EXPECT_EQ(mgr.submit(r), Status::kQueueFull);
  mgr.drain();
  EXPECT_EQ(mgr.submit(r), Status::kOk);
  mgr.drain();
  EXPECT_EQ(mgr.inflight(), 0);
}

// Threaded end-to-end: tight budgets force kQueueFull rejections; the
// resubmit loop still lands every write, in order, per tenant.
TEST(Service, ThreadedBackpressureRetriesComplete) {
  svc::ServiceConfig sc;
  sc.shards = 2;
  sc.tenant_inflight = 8;
  sc.shard_queue_cap = 16;
  svc::VolumeManager mgr(sc);
  const svc::VolumeId id = mgr.create_volume(small_volume(512, 8));
  svc::Volume* vol = mgr.volume(id);
  const std::int64_t lb = vol->logical_blocks();

  constexpr int kTenants = 4;
  constexpr int kWrites = 500;
  std::deque<std::vector<std::uint8_t>> payloads;
  std::map<std::int64_t, const std::vector<std::uint8_t>*> expect;
  std::atomic<int> completed{0};
  for (int i = 0; i < kWrites; ++i) {
    // Block ownership follows the tenant, so same-block overwrites
    // share a tenant and the FIFO contract fixes their order.
    const auto tenant = static_cast<svc::TenantId>(i % kTenants);
    const std::int64_t l = (i * kTenants + tenant) % lb;
    payloads.push_back(pattern(512, 0x7000 + static_cast<std::uint64_t>(i)));
    expect[l] = &payloads.back();
    Request r;
    r.kind = OpKind::kWrite;
    r.volume = id;
    r.tenant = tenant;
    r.logical = l;
    r.in = {payloads.back().data(), payloads.back().size()};
    r.on_complete = [&completed](const svc::Completion& c) {
      EXPECT_EQ(c.status, Status::kOk);
      completed.fetch_add(1);
    };
    for (;;) {
      const Status s = mgr.submit(r);
      if (s == Status::kOk) break;
      ASSERT_EQ(s, Status::kQueueFull);
      std::this_thread::yield();
    }
  }
  mgr.drain();
  EXPECT_EQ(completed.load(), kWrites);
  std::vector<std::uint8_t> got(512);
  for (const auto& [l, want] : expect) {
    vol->controller()->read(l, {got.data(), got.size()});
    EXPECT_EQ(got, *want) << "block " << l;
  }
}

// A migrator-backed volume serves service I/O while its RAID-5 ->
// Code 5-6 conversion starts mid-traffic and runs to completion.
TEST(Service, MigratorVolumeConvertsMidTraffic) {
  svc::ServiceConfig sc;
  sc.shards = 2;
  svc::VolumeManager mgr(sc);
  const svc::VolumeId id = mgr.create_raid5_volume(5, 6, 512);
  svc::Volume* vol = mgr.volume(id);
  mig::OnlineMigrator* mig = vol->migrator();
  ASSERT_NE(mig, nullptr);
  const std::int64_t lb = vol->logical_blocks();

  std::deque<std::vector<std::uint8_t>> payloads;
  std::vector<std::vector<std::uint8_t>> mirror(
      static_cast<std::size_t>(lb), std::vector<std::uint8_t>(512, 0));
  std::atomic<int> completed{0};
  auto write_block = [&](std::int64_t l, std::uint64_t seed) {
    payloads.push_back(pattern(512, seed));
    std::memcpy(mirror[static_cast<std::size_t>(l)].data(),
                payloads.back().data(), 512);
    Request r;
    r.kind = OpKind::kWrite;
    r.volume = id;
    r.logical = l;
    r.in = {payloads.back().data(), payloads.back().size()};
    r.on_complete = [&completed](const svc::Completion& c) {
      EXPECT_EQ(c.status, Status::kOk);
      completed.fetch_add(1);
    };
    for (;;) {
      const Status s = mgr.submit(r);
      if (s == Status::kOk) break;
      ASSERT_EQ(s, Status::kQueueFull);
      std::this_thread::yield();
    }
  };

  int ops = 0;
  for (std::int64_t l = 0; l < lb; ++l) {
    write_block(l, 0x9000 + static_cast<std::uint64_t>(l));
    ++ops;
    if (l == lb / 2) {  // start the conversion with writes in flight
      mig->set_workers(2);
      mig->start();
    }
  }
  // A second overwrite wave rides the running conversion.
  for (std::int64_t l = 0; l < lb; l += 3) {
    write_block(l, 0xA000 + static_cast<std::uint64_t>(l));
    ++ops;
  }
  mgr.drain();
  EXPECT_EQ(completed.load(), ops);
  mig->finish();
  EXPECT_EQ(mig->state(), mig::MigrationState::kDone);
  EXPECT_TRUE(mig->verify_raid6());

  // Post-conversion reads through the service match the mirror.
  std::vector<std::uint8_t> got(512);
  for (std::int64_t l = 0; l < lb; ++l) {
    Request r;
    r.kind = OpKind::kRead;
    r.volume = id;
    r.logical = l;
    r.out = {got.data(), got.size()};
    ASSERT_EQ(mgr.submit(r), Status::kOk);
    mgr.drain();
    EXPECT_EQ(got, mirror[static_cast<std::size_t>(l)]) << "block " << l;
  }
}

TEST(Service, MetricsExportCarriesVolumeTenantShardLabels) {
  obs::Registry reg;  // outlives the manager: volume collectors detach
                      // from the subsystems' destructors
  svc::VolumeManager mgr(manual_config(2));
  const svc::VolumeId v0 = mgr.create_volume(small_volume());
  const svc::VolumeId v1 = mgr.create_volume(small_volume());
  mgr.attach_metrics(reg);
  mgr.attach_volume_metrics(reg);

  std::vector<std::uint8_t> buf(512, 3);
  Request r;
  r.kind = OpKind::kWrite;
  r.tenant = 3;
  r.in = {buf.data(), buf.size()};
  r.volume = v0;
  ASSERT_EQ(mgr.submit(r), Status::kOk);
  r.volume = v1;
  ASSERT_EQ(mgr.submit(r), Status::kOk);
  mgr.drain();

  const obs::Snapshot snap = reg.snapshot();
  const auto* submitted = snap.find("service_submitted");
  ASSERT_NE(submitted, nullptr);
  EXPECT_EQ(submitted->counter, 2u);
  const auto* completed = snap.find("service_completed");
  ASSERT_NE(completed, nullptr);
  EXPECT_EQ(completed->counter, 2u);
  for (const char* name :
       {"service_ops{volume=\"0\"}", "service_ops{volume=\"1\"}",
        "service_tenant_completed{tenant=\"3\"}",
        "service_queued{shard=\"0\"}", "service_queued{shard=\"1\"}",
        "disk_array_writes_total{volume=\"0\"}",
        "disk_array_writes{disk=\"0\",volume=\"1\"}",
        "controller_rmw_parities{volume=\"0\"}"}) {
    EXPECT_NE(snap.find(name), nullptr) << name;
  }
  const auto* ops0 = snap.find("service_ops{volume=\"0\"}");
  EXPECT_EQ(ops0->counter, 1u);
  const auto* t3 = snap.find("service_tenant_completed{tenant=\"3\"}");
  EXPECT_EQ(t3->counter, 2u);
  EXPECT_EQ(snap.find("service_tenant_completed{tenant=\"2\"}"), nullptr)
      << "never-seen tenants must stay out of the export";
  mgr.detach_metrics();
}

// The TSan stress: 8 shards x 16 volumes (one migrator-backed),
// concurrent clients with disjoint block ownership, a conversion
// starting mid-flight, and paced scrub passes riding both coordination
// gates — then byte identity against each client's flat mirror at
// quiesce.
TEST(ServiceStress, ShardsVolumesMigrationScrubQuiesceIdentical) {
  constexpr int kClients = 4;
  constexpr int kVolumes = 16;
  constexpr int kOpsPerClient = 300;
  constexpr std::size_t kBlock = 256;

  svc::ServiceConfig sc;
  sc.shards = 8;
  sc.max_batch = 64;
  sc.tenant_inflight = 64;
  sc.shard_queue_cap = 1 << 12;
  svc::VolumeManager mgr(sc);
  for (int v = 0; v < kVolumes - 1; ++v) {
    svc::Volume::Config vc = small_volume(kBlock, 2);
    vc.cache_stripes = (v % 2 == 0) ? 4 : 0;  // exercise cached volumes
    mgr.create_volume(vc);
  }
  const svc::VolumeId mig_id = mgr.create_raid5_volume(5, 4, kBlock);
  mig::OnlineMigrator* mig = mgr.volume(mig_id)->migrator();

  std::vector<std::int64_t> volume_blocks(kVolumes);
  for (int v = 0; v < kVolumes; ++v) {
    volume_blocks[v] = mgr.volume(v)->logical_blocks();
  }

  // Client c owns blocks with block % kClients == c on every volume, so
  // every same-block write pair shares a tenant and the FIFO contract
  // pins its order. Mirrors are per-client and only merged after join.
  struct Client {
    std::map<std::pair<int, std::int64_t>, std::vector<std::uint8_t>> mirror;
    std::deque<std::vector<std::uint8_t>> buffers;
    std::atomic<std::uint64_t> failures{0};
  };
  std::vector<Client> clients(kClients);

  auto client_body = [&](int c) {
    Client& me = clients[static_cast<std::size_t>(c)];
    Rng rng(0xC56'57E55 + static_cast<std::uint64_t>(c));
    for (int i = 0; i < kOpsPerClient; ++i) {
      const int v = static_cast<int>(rng.next_below(kVolumes));
      const std::int64_t owned = volume_blocks[v] / kClients;
      if (owned == 0) continue;
      const std::int64_t l =
          static_cast<std::int64_t>(rng.next_below(
              static_cast<std::uint64_t>(owned))) *
              kClients +
          c;
      Request r;
      r.volume = v;
      r.tenant = static_cast<svc::TenantId>(c);
      r.logical = l;
      auto& image = me.mirror.try_emplace({v, l},
                                          std::vector<std::uint8_t>(kBlock, 0))
                        .first->second;
      const double dice = rng.next_double();
      if (dice < 0.6) {  // whole-block write
        me.buffers.push_back(pattern(
            kBlock, (static_cast<std::uint64_t>(c) << 32) ^
                        static_cast<std::uint64_t>(i)));
        r.kind = OpKind::kWrite;
        r.in = {me.buffers.back().data(), kBlock};
        image = me.buffers.back();
      } else if (dice < 0.85) {  // sub-block write
        const std::size_t len = 32 + rng.next_below(64);
        const std::int64_t off = static_cast<std::int64_t>(
            rng.next_below(kBlock - len + 1));
        me.buffers.push_back(pattern(
            len, (static_cast<std::uint64_t>(c) << 40) ^
                     static_cast<std::uint64_t>(i)));
        r.kind = OpKind::kWriteRange;
        r.offset = off;
        r.in = {me.buffers.back().data(), len};
        std::memcpy(image.data() + off, me.buffers.back().data(), len);
      } else {  // read (content checked only at quiesce)
        me.buffers.emplace_back(kBlock);
        r.kind = OpKind::kRead;
        r.out = {me.buffers.back().data(), kBlock};
      }
      r.on_complete = [&me](const svc::Completion& done) {
        if (done.status != Status::kOk) me.failures.fetch_add(1);
      };
      for (;;) {
        const Status s = mgr.submit(r);
        if (s == Status::kOk) break;
        if (s != Status::kQueueFull) {
          me.failures.fetch_add(1);
          break;
        }
        std::this_thread::yield();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) threads.emplace_back(client_body, c);

  // Mid-flight: start the conversion, then ride both scrub gates while
  // the clients keep submitting.
  mig->set_workers(2);
  mig->start();
  {
    svc::Volume* v0 = mgr.volume(0);
    scrub::Scrubber ctrl_scrub(v0->array(), *v0->controller());
    ctrl_scrub.set_rate(5000);
    scrub::Scrubber mig_scrub(mgr.volume(mig_id)->array(), *mig);
    mig_scrub.set_rate(5000);
    for (int pass = 0; pass < 2; ++pass) {
      const scrub::PassReport cr = ctrl_scrub.run_pass();
      EXPECT_EQ(cr.located, 0) << "no corruption was planted";
      const scrub::PassReport mr = mig_scrub.run_pass();
      EXPECT_EQ(mr.located, 0);
    }
  }

  for (auto& t : threads) t.join();
  mgr.drain();
  mig->finish();
  EXPECT_EQ(mig->state(), mig::MigrationState::kDone);
  EXPECT_TRUE(mig->verify_raid6());
  mgr.stop();

  // Quiesced byte identity: every client's flat mirror against direct
  // reads underneath the service.
  std::vector<std::uint8_t> got(kBlock);
  for (const Client& me : clients) {
    EXPECT_EQ(me.failures.load(), 0u);
    for (const auto& [key, want] : me.mirror) {
      const auto& [v, l] = key;
      svc::Volume* vol = mgr.volume(v);
      if (vol->controller()) {
        vol->controller()->read(l, {got.data(), kBlock});
      } else {
        ASSERT_TRUE(vol->migrator()->read_block(l, {got.data(), kBlock}).ok());
      }
      EXPECT_EQ(got, want) << "volume " << v << " block " << l;
    }
  }
}

/// Arms metrics + request tracing (optionally span recording) for one
/// test and restores the disarmed default on exit, clearing the global
/// exemplar ring and trace recorder both ways.
class ReqTraceArmed {
 public:
  explicit ReqTraceArmed(bool spans = false) {
    obs::SlowRequestRing::global().clear();
    obs::TraceRecorder::global().clear();
    obs::set_metrics_enabled(true);
    obs::set_req_trace_enabled(true);
    if (spans) obs::set_trace_enabled(true);
  }
  ~ReqTraceArmed() {
    obs::set_trace_enabled(false);
    obs::set_req_trace_enabled(false);
    obs::set_metrics_enabled(false);
    obs::SlowRequestRing::global().clear();
    obs::TraceRecorder::global().clear();
  }
};

// The tracing acceptance test: under an 8-shard mixed read/write load
// from concurrent clients, the six per-stage latency histograms must
// decompose the end-to-end latency — their sums reconcile against the
// per-tenant end-to-end sums within 5% (they telescope exactly by
// construction; the slack absorbs clock truncation).
TEST(ServiceTrace, StageDecompositionSumsMatchEndToEnd) {
  constexpr int kClients = 4;
  constexpr int kVolumes = 16;
  constexpr int kOpsPerClient = 300;
  constexpr std::size_t kBlock = 256;

  ReqTraceArmed armed;
  obs::Registry reg;
  svc::ServiceConfig sc;
  sc.shards = 8;
  sc.max_batch = 64;
  sc.tenant_inflight = 64;
  svc::VolumeManager mgr(sc);
  for (int v = 0; v < kVolumes; ++v) mgr.create_volume(small_volume(kBlock, 2));
  mgr.attach_metrics(reg);

  std::atomic<std::uint64_t> failures{0};
  auto client_body = [&](int c) {
    Rng rng(0x5106E5 + static_cast<std::uint64_t>(c));
    // Buffers back in-flight requests, so they may only die after every
    // completion of this client has run.
    std::deque<std::vector<std::uint8_t>> buffers;
    std::atomic<int> pending{0};
    for (int i = 0; i < kOpsPerClient; ++i) {
      Request r;
      r.volume = static_cast<svc::VolumeId>(rng.next_below(kVolumes));
      r.tenant = static_cast<svc::TenantId>(c);
      r.logical = static_cast<std::int64_t>(rng.next_below(4));
      if (rng.next_double() < 0.5) {
        buffers.push_back(pattern(kBlock, rng.next_u64()));
        r.kind = OpKind::kWrite;
        r.in = {buffers.back().data(), kBlock};
      } else {
        buffers.emplace_back(kBlock);
        r.kind = OpKind::kRead;
        r.out = {buffers.back().data(), kBlock};
      }
      pending.fetch_add(1);
      r.on_complete = [&](const svc::Completion& done) {
        if (done.status != Status::kOk) failures.fetch_add(1);
        pending.fetch_sub(1);
      };
      for (;;) {
        const Status s = mgr.submit(r);
        if (s == Status::kOk) break;  // pending drops in the callback
        if (s != Status::kQueueFull) {
          failures.fetch_add(1);
          pending.fetch_sub(1);
          break;
        }
        std::this_thread::yield();  // rejected: nothing queued, retry
      }
    }
    while (pending.load() != 0) std::this_thread::yield();
  };
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) threads.emplace_back(client_body, c);
  for (auto& t : threads) t.join();
  mgr.drain();
  EXPECT_EQ(failures.load(), 0u);

  const obs::Snapshot snap = reg.snapshot();
  std::uint64_t stage_sum = 0;
  std::uint64_t stage_count = 0;
  for (int s = 0; s < obs::kStageCount; ++s) {
    const std::string name =
        std::string("service_stage_") + obs::stage_name(s) + "_us";
    const auto* m = snap.find(name);
    ASSERT_NE(m, nullptr) << name;
    stage_sum += m->hist.sum;
    if (s == 0) stage_count = m->hist.count;
    EXPECT_EQ(m->hist.count, stage_count) << name;
  }
  std::uint64_t e2e_sum = 0;
  std::uint64_t e2e_count = 0;
  for (int c = 0; c < kClients; ++c) {
    const std::string name =
        "service_latency_us{tenant=\"" + std::to_string(c) + "\"}";
    const auto* m = snap.find(name);
    ASSERT_NE(m, nullptr) << name;
    e2e_sum += m->hist.sum;
    e2e_count += m->hist.count;
  }
  EXPECT_EQ(e2e_count, static_cast<std::uint64_t>(kClients) * kOpsPerClient);
  EXPECT_EQ(stage_count, e2e_count);
  ASSERT_GT(e2e_sum, 0u);
  EXPECT_NEAR(static_cast<double>(stage_sum), static_cast<double>(e2e_sum),
              0.05 * static_cast<double>(e2e_sum));

  // The same decomposition also reaches each tenant's labeled stage
  // histograms and the tail-exemplar ring.
  const auto* t0 = snap.find("service_stage_device_us{tenant=\"0\"}");
  ASSERT_NE(t0, nullptr);
  EXPECT_EQ(t0->hist.count, static_cast<std::uint64_t>(kOpsPerClient));
  EXPECT_EQ(obs::SlowRequestRing::global().considered(), e2e_count);
}

// The completion path must feed the tail ring and, when span recording
// is armed too, emit a full request span tree whose stage children
// reconcile against the exemplar's stage breakdown.
TEST(ServiceTrace, SlowRingAndRequestSpanTreesCaptured) {
  ReqTraceArmed armed(/*spans=*/true);
  svc::VolumeManager mgr(manual_config(2));
  const svc::VolumeId v0 = mgr.create_volume(small_volume());
  std::vector<std::uint8_t> buf(512, 7);
  for (int i = 0; i < 8; ++i) {
    Request r;
    r.kind = OpKind::kWrite;
    r.volume = v0;
    r.tenant = 5;
    r.logical = i % 4;
    r.in = {buf.data(), buf.size()};
    ASSERT_EQ(mgr.submit(r), Status::kOk);
  }
  mgr.drain();

  const auto slow = obs::SlowRequestRing::global().snapshot();
  ASSERT_FALSE(slow.empty());
  EXPECT_LE(slow.size(), obs::SlowRequestRing::global().capacity());
  for (const obs::SlowRequest& r : slow) {
    EXPECT_NE(r.trace_id, 0u);
    EXPECT_EQ(r.tenant, 5);
    EXPECT_EQ(r.volume, v0);
    EXPECT_EQ(r.op, 1);  // write
    std::uint64_t sum = 0;
    for (int s = 0; s < obs::kStageCount; ++s) sum += r.stage_us[s];
    EXPECT_EQ(sum, r.latency_us);  // exact telescoping
  }

  const std::vector<obs::TraceSpan> spans =
      obs::TraceRecorder::global().snapshot();
  std::size_t roots = 0, children = 0;
  for (const obs::TraceSpan& s : spans) {
    if (s.name == "request") {
      ++roots;
      EXPECT_EQ(s.parent_id, 0u);
      EXPECT_EQ(s.tenant, 5);
      EXPECT_EQ(s.bytes, 512);
    } else if (s.parent_id != 0) {
      ++children;
      const auto parent = std::find_if(
          spans.begin(), spans.end(), [&](const obs::TraceSpan& p) {
            return p.span_id == s.parent_id;
          });
      ASSERT_NE(parent, spans.end()) << "child " << s.name << " orphaned";
      EXPECT_EQ(parent->trace_id, s.trace_id);
      EXPECT_EQ(parent->name, "request");
    }
  }
  EXPECT_EQ(roots, 8u);
  EXPECT_EQ(children, roots * obs::kStageCount);
}

// SLO tracker: an unreachable 1us target flags (almost) every request
// as a violation and burns budget at ~100x with the default 0.99
// objective; a 60s target burns nothing. Quiet intervals burn nothing.
TEST(ServiceSlo, BurnRateSeparatesTightAndLooseTargets) {
  constexpr int kOps = 50;
  ReqTraceArmed armed;
  obs::Registry reg;
  svc::VolumeManager mgr(manual_config(2));
  const svc::VolumeId v0 = mgr.create_volume(small_volume());

  svc::SloConfig tight_cfg;
  tight_cfg.target_p99_us = 1;
  svc::SloTracker tight(mgr, tight_cfg);
  svc::SloConfig loose_cfg;
  loose_cfg.target_p99_us = 60'000'000;
  svc::SloTracker loose(mgr, loose_cfg);
  tight.attach_metrics(reg);

  std::vector<std::uint8_t> buf(512, 9);
  for (int i = 0; i < kOps; ++i) {
    Request r;
    r.kind = OpKind::kWrite;
    r.volume = v0;
    r.tenant = 2;
    r.in = {buf.data(), buf.size()};
    ASSERT_EQ(mgr.submit(r), Status::kOk);
  }
  mgr.drain();

  tight.update();
  loose.update();
  const auto tight_snap = tight.snapshot();
  ASSERT_EQ(tight_snap.size(), 1u);
  const auto& ts = tight_snap[0];
  EXPECT_EQ(ts.tenant, 2);
  EXPECT_EQ(ts.interval_count, static_cast<std::uint64_t>(kOps));
  EXPECT_EQ(ts.total_count, static_cast<std::uint64_t>(kOps));
  EXPECT_GT(ts.violation_frac, 0.5);
  EXPECT_NEAR(ts.burn_rate, ts.violation_frac * 100.0, 1e-9);
  EXPECT_GT(ts.interval_p99_us, 1.0);

  const auto loose_snap = loose.snapshot();
  ASSERT_EQ(loose_snap.size(), 1u);
  EXPECT_EQ(loose_snap[0].violation_frac, 0.0);
  EXPECT_EQ(loose_snap[0].burn_rate, 0.0);
  EXPECT_EQ(loose_snap[0].total_count, static_cast<std::uint64_t>(kOps));

  // Quiet interval: counts stick, burn goes to zero.
  tight.update();
  const auto quiet = tight.snapshot();
  ASSERT_EQ(quiet.size(), 1u);
  EXPECT_EQ(quiet[0].interval_count, 0u);
  EXPECT_EQ(quiet[0].burn_rate, 0.0);
  EXPECT_EQ(quiet[0].total_count, static_cast<std::uint64_t>(kOps));

  const obs::Snapshot snap = reg.snapshot();
  const auto* target = snap.find("service_slo_target_us");
  ASSERT_NE(target, nullptr);
  EXPECT_EQ(target->gauge, 1);
  const auto* requests = snap.find("service_slo_requests{tenant=\"2\"}");
  ASSERT_NE(requests, nullptr);
  EXPECT_EQ(requests->counter, static_cast<std::uint64_t>(kOps));
  EXPECT_NE(snap.find("service_slo_burn_x1000{tenant=\"2\"}"), nullptr);
  tight.detach_metrics();
}

}  // namespace
