#include <gtest/gtest.h>

#include "sim/disk_model.hpp"
#include "sim/event_sim.hpp"

namespace c56::sim {
namespace {

TEST(DiskModel, SequentialSkipsSeek) {
  DiskParams p;
  p.avg_seek_ms = 5.0;
  p.rpm = 7200;
  p.transfer_mb_s = 100.0;
  DiskModel d(p);
  const double t1 = d.service_time_ms(0, 4096);
  const double transfer = 4096.0 / (100.0 * 1e6) * 1e3;
  EXPECT_NEAR(t1, 5.0 + p.avg_rotational_ms() + transfer, 1e-9);
  // Next 8 sectors start where the previous request ended.
  const double t2 = d.service_time_ms(8, 4096);
  EXPECT_NEAR(t2, transfer, 1e-9);
  // A long forward jump pays positioning again.
  const double t3 = d.service_time_ms(100000, 4096);
  EXPECT_NEAR(t3, t1, 1e-9);
  // A backward jump does too.
  const double t4 = d.service_time_ms(0, 4096);
  EXPECT_NEAR(t4, t1, 1e-9);
}

TEST(DiskModel, ShortForwardSkipStaysOnTrack) {
  DiskParams p;
  p.transfer_mb_s = 100.0;
  DiskModel d(p);
  d.service_time_ms(0, 4096);  // position at sector 8
  // Skipping one 4 KB block (8 sectors) costs pass-over + transfer.
  const double t = d.service_time_ms(16, 4096);
  const double transfer = 4096.0 / (100.0 * 1e6) * 1e3;
  EXPECT_NEAR(t, 2 * transfer, 1e-9);
  EXPECT_LT(t, p.avg_seek_ms);
}

TEST(DiskModel, RotationalLatencyFollowsRpm) {
  DiskParams p;
  p.rpm = 15000;
  EXPECT_NEAR(p.avg_rotational_ms(), 2.0, 1e-9);
  p.rpm = 7200;
  EXPECT_NEAR(p.avg_rotational_ms(), 60.0 * 1000 / 7200 / 2, 1e-9);
}

TEST(DiskModel, ResetForgetsPosition) {
  DiskModel d;
  d.service_time_ms(0, 4096);
  d.reset();
  const double t = d.service_time_ms(8, 4096);
  EXPECT_GT(t, 1.0);  // pays seek again
}

Trace one_phase(std::vector<Request> reqs) {
  Trace t;
  t.phases.push_back({"phase", std::move(reqs), {}});
  return t;
}

TEST(ArraySimulator, SingleRequestMakespan) {
  ArraySimulator sim(2);
  const auto r = sim.run(one_phase({{0, 0, 4096, Op::kRead}}));
  DiskModel ref;
  EXPECT_NEAR(r.makespan_ms, ref.service_time_ms(0, 4096), 1e-9);
  EXPECT_EQ(r.requests_served, 1u);
}

TEST(ArraySimulator, ParallelDisksOverlap) {
  // The same work on one disk vs spread over four disks.
  std::vector<Request> reqs;
  for (int i = 0; i < 16; ++i) {
    // Gaps beyond the on-track skip window, so every access seeks.
    reqs.push_back({0, static_cast<std::uint64_t>(i * 5000), 4096, Op::kRead});
  }
  ArraySimulator one(1);
  const double serial = one.run(one_phase(reqs)).makespan_ms;

  for (int i = 0; i < 16; ++i) reqs[static_cast<std::size_t>(i)].disk = i % 4;
  ArraySimulator four(4);
  const double parallel = four.run(one_phase(reqs)).makespan_ms;
  EXPECT_NEAR(parallel, serial / 4.0, serial * 0.05);
}

TEST(ArraySimulator, PhasesAreSequential) {
  const Request a{0, 0, 4096, Op::kRead};
  const Request b{1, 0, 4096, Op::kRead};
  Trace two;
  two.phases.push_back({"p1", {a}, {}});
  two.phases.push_back({"p2", {b}, {}});
  ArraySimulator sim(2);
  const auto r = sim.run(two);
  // Disk 1's request cannot start before phase 1 ends even though the
  // disk itself is idle.
  Trace merged = one_phase({a, b});
  ArraySimulator sim2(2);
  const auto m = sim2.run(merged);
  EXPECT_GT(r.makespan_ms, m.makespan_ms);
  EXPECT_NEAR(r.makespan_ms, 2 * m.makespan_ms, 1e-6);
  ASSERT_EQ(r.phase_end_ms.size(), 2u);
  EXPECT_LT(r.phase_end_ms[0], r.phase_end_ms[1]);
}

TEST(ArraySimulator, SequentialStreamIsFasterThanRandom) {
  std::vector<Request> seq, rnd;
  for (int i = 0; i < 64; ++i) {
    seq.push_back({0, static_cast<std::uint64_t>(i) * 8, 4096, Op::kRead});
    rnd.push_back({0, static_cast<std::uint64_t>((i * 37) % 64) * 800, 4096,
                   Op::kRead});
  }
  ArraySimulator s1(1), s2(1);
  EXPECT_LT(s1.run(one_phase(seq)).makespan_ms,
            s2.run(one_phase(rnd)).makespan_ms / 5.0);
}

TEST(ArraySimulator, DeterministicAcrossRuns) {
  std::vector<Request> reqs;
  for (int i = 0; i < 50; ++i) {
    reqs.push_back({i % 3, static_cast<std::uint64_t>(i * 13), 8192,
                    i % 2 ? Op::kWrite : Op::kRead});
  }
  ArraySimulator a(3), b(3);
  EXPECT_EQ(a.run(one_phase(reqs)).makespan_ms,
            b.run(one_phase(reqs)).makespan_ms);
}

TEST(ArraySimulator, BusyAccountingMatchesServiceTimes) {
  std::vector<Request> reqs{{0, 0, 4096, Op::kRead},
                            {0, 8, 4096, Op::kRead},
                            {1, 0, 4096, Op::kWrite}};
  ArraySimulator sim(2);
  const auto r = sim.run(one_phase(reqs));
  DiskModel ref;
  const double d0 = ref.service_time_ms(0, 4096) + ref.service_time_ms(8, 4096);
  EXPECT_NEAR(r.disk_busy_ms[0], d0, 1e-9);
  EXPECT_EQ(r.requests_served, 3u);
  EXPECT_NEAR(r.makespan_ms, d0, 1e-9);
}

TEST(ArraySimulator, RejectsUnknownDisk) {
  ArraySimulator sim(2);
  EXPECT_THROW(sim.run(one_phase({{5, 0, 4096, Op::kRead}})),
               std::out_of_range);
}

TEST(ArraySimulator, FailedDiskRejectsRequests) {
  Trace t;
  t.phases.push_back({"p",
                      {{0, 0, 4096, Op::kRead, 0.0, /*tag=*/1},
                       {1, 0, 4096, Op::kRead, 0.0, /*tag=*/2}},
                      {{0, 0.0, DiskEventKind::kDiskFail}}});
  ArraySimulator sim(2);
  const auto r = sim.run(t);
  EXPECT_EQ(r.requests_served, 1u);
  EXPECT_EQ(r.requests_failed, 1u);
  EXPECT_EQ(r.failed_by_tag.at(1), 1u);
  EXPECT_EQ(r.failed_by_tag.count(2), 0u);
  EXPECT_NEAR(r.disk_busy_ms[0], 0.0, 1e-12);  // rejected: no service
  EXPECT_GT(r.disk_busy_ms[1], 0.0);
  EXPECT_EQ(r.max_concurrent_failures, 1);
}

TEST(ArraySimulator, RepairRestoresService) {
  Trace t;
  t.phases.push_back({"p",
                      {{0, 0, 4096, Op::kRead, 0.0, 1},    // during outage
                       {0, 0, 4096, Op::kRead, 50.0, 2}},  // after repair
                      {{0, 0.0, DiskEventKind::kDiskFail},
                       {0, 10.0, DiskEventKind::kDiskRepair}}});
  ArraySimulator sim(1);
  const auto r = sim.run(t);
  EXPECT_EQ(r.requests_failed, 1u);
  EXPECT_EQ(r.failed_by_tag.at(1), 1u);
  EXPECT_EQ(r.requests_served, 1u);
  EXPECT_EQ(r.latency_by_tag.at(2).count, 1u);
  EXPECT_EQ(r.max_concurrent_failures, 1);
}

TEST(ArraySimulator, FailureStatePersistsAcrossPhases) {
  Trace t;
  t.phases.push_back({"fail", {}, {{0, 0.0, DiskEventKind::kDiskFail}}});
  t.phases.push_back({"degraded", {{0, 0, 4096, Op::kRead}}, {}});
  t.phases.push_back({"repaired",
                      {{0, 0, 4096, Op::kRead, 1.0}},
                      {{0, 0.0, DiskEventKind::kDiskRepair}}});
  EXPECT_EQ(t.total_disk_events(), 2u);
  ArraySimulator sim(1);
  const auto r = sim.run(t);
  EXPECT_EQ(r.requests_failed, 1u) << "phase-1 failure must hit phase 2";
  EXPECT_EQ(r.requests_served, 1u);
}

TEST(ArraySimulator, MaxConcurrentFailuresTracksOverlap) {
  Trace t;
  t.phases.push_back({"p",
                      {},
                      {{0, 0.0, DiskEventKind::kDiskFail},
                       {0, 0.5, DiskEventKind::kDiskFail},  // double-fail: noop
                       {1, 1.0, DiskEventKind::kDiskFail},
                       {0, 2.0, DiskEventKind::kDiskRepair},
                       {2, 3.0, DiskEventKind::kDiskFail}}});
  ArraySimulator sim(3);
  const auto r = sim.run(t);
  EXPECT_EQ(r.max_concurrent_failures, 2);
}

TEST(ArraySimulator, EventOnUnknownDiskRejected) {
  Trace t;
  t.phases.push_back({"p", {}, {{7, 0.0, DiskEventKind::kDiskFail}}});
  ArraySimulator sim(2);
  EXPECT_THROW(sim.run(t), std::out_of_range);
}

TEST(TraceCounters, CountReadsAndWrites) {
  Trace t;
  t.phases.push_back({"a", {{0, 0, 1, Op::kRead}, {0, 0, 1, Op::kWrite}}, {}});
  t.phases.push_back({"b", {{0, 0, 1, Op::kWrite}}, {}});
  EXPECT_EQ(t.total_requests(), 3u);
  EXPECT_EQ(t.total_reads(), 1u);
  EXPECT_EQ(t.total_writes(), 2u);
}

}  // namespace
}  // namespace c56::sim
