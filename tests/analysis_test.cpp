// Tests for the analysis layer: figure sets, speedup tables (IV, V),
// storage efficiency and the reliability model.

#include <gtest/gtest.h>

#include "analysis/reliability.hpp"
#include "analysis/report.hpp"
#include "analysis/risk.hpp"
#include "analysis/speedup.hpp"

namespace c56::ana {
namespace {

TEST(Report, FigureSetCoversEveryCodeOnce) {
  const auto specs = figure_conversion_set(false);
  int code56 = 0, via = 0, direct = 0;
  for (const auto& s : specs) {
    EXPECT_TRUE(s.valid()) << s.label();
    code56 += s.code == CodeId::kCode56;
    via += s.approach != mig::Approach::kDirect;
    direct += s.approach == mig::Approach::kDirect;
  }
  EXPECT_EQ(code56, 1);
  EXPECT_EQ(via, 6);     // 3 horizontal codes x 2 two-step approaches
  EXPECT_EQ(direct, 4);  // X-Code, P-Code, HDP, Code 5-6
}

TEST(Report, FamilySweepGrowsDisks) {
  const auto specs =
      family_sweep(CodeId::kCode56, mig::Approach::kDirect, false);
  ASSERT_GE(specs.size(), 3u);
  for (std::size_t i = 1; i < specs.size(); ++i) {
    EXPECT_GT(specs[i].n(), specs[i - 1].n());
  }
}

TEST(Report, ConversionTableHasOneRowPerSpec) {
  std::ostringstream os;
  const auto specs = figure_conversion_set(false);
  conversion_table(specs, "metric",
                   [](const mig::ConversionCosts& c) { return c.total_io; },
                   false)
      .print(os);
  const std::string out = os.str();
  std::size_t rows = 0;
  for (char c : out) rows += c == '\n';
  EXPECT_EQ(rows, specs.size() + 2);  // header + separator + rows
}

TEST(Speedup, Table4Nlb) {
  const auto rows = table4(false);
  ASSERT_FALSE(rows.empty());
  // Paper Table IV: exactly one comparison at n=5 (X-Code), its
  // reported speedup is 1.27; our disk-level model lands within 5%.
  int n5 = 0;
  for (const auto& e : rows) {
    if (e.n == 5) {
      ++n5;
      EXPECT_EQ(e.other, CodeId::kXCode);
      EXPECT_NEAR(e.speedup, 1.27, 0.07);
    }
    EXPECT_GT(e.speedup, 0.9) << to_string(e.other) << " n=" << e.n;
  }
  EXPECT_EQ(n5, 1);
  // n=7 offers EVENODD and X-Code comparisons.
  int n7 = 0;
  for (const auto& e : rows) n7 += e.n == 7;
  EXPECT_EQ(n7, 2);
}

TEST(Speedup, Table4LbCode56WinsEverywhere) {
  for (const auto& e : table4(true)) {
    EXPECT_GT(e.speedup, 1.0) << to_string(e.other) << " n=" << e.n;
  }
}

TEST(Speedup, BestConversionPicksCheaperApproach) {
  const auto best = best_conversion_for_n(CodeId::kRdp, 6, false);
  ASSERT_TRUE(best.has_value());
  const double t0 = mig::analyze(mig::ConversionSpec::canonical(
                        CodeId::kRdp, mig::Approach::kViaRaid0, 5))
                        .time;
  const double t4 = mig::analyze(mig::ConversionSpec::canonical(
                        CodeId::kRdp, mig::Approach::kViaRaid4, 5))
                        .time;
  EXPECT_NEAR(best->time, std::min(t0, t4), 1e-12);
}

TEST(Speedup, NoConversionForImpossibleN) {
  // EVENODD at n=6 would need p=4 (not prime).
  EXPECT_FALSE(best_conversion_for_n(CodeId::kEvenOdd, 6, false));
  // HDP at n=5 would need p=6.
  EXPECT_FALSE(best_conversion_for_n(CodeId::kHdp, 5, false));
}

TEST(SimSpeedup, Table5ShapeMatchesPaper) {
  mig::TraceParams params;
  params.total_data_blocks = 6000;
  params.block_bytes = 4096;
  const auto rows5 = table5(5, params);
  ASSERT_EQ(rows5.size(), 4u);  // RDP, EVENODD, H-Code, X-Code
  for (const auto& e : rows5) {
    EXPECT_GT(e.speedup, 1.0) << to_string(e.other);
    EXPECT_GT(e.code56_ms, 0.0);
  }
  // Section V-C claims higher speedup at larger p; in our simulator
  // this holds for EVENODD while the others stay roughly flat (see
  // EXPERIMENTS.md for the deviation discussion). Assert the robust
  // parts: every code still loses to Code 5-6 at p=7, and the EVENODD
  // gap widens.
  const auto rows7 = table5(7, params);
  for (const auto& e : rows7) {
    EXPECT_GT(e.speedup, 1.0) << to_string(e.other);
  }
  auto speedup_of = [](const std::vector<SimSpeedupEntry>& rows, CodeId id) {
    for (const auto& e : rows) {
      if (e.other == id) return e.speedup;
    }
    return 0.0;
  };
  EXPECT_GT(speedup_of(rows7, CodeId::kEvenOdd),
            speedup_of(rows5, CodeId::kEvenOdd));
}

TEST(SimSpeedup, SimulatedTimeScalesWithB) {
  mig::TraceParams small, large;
  small.total_data_blocks = 24000;
  large.total_data_blocks = 48000;
  const auto spec = mig::ConversionSpec::direct_code56(4, true);
  const double t1 = simulate_conversion_ms(spec, small);
  const double t2 = simulate_conversion_ms(spec, large);
  EXPECT_NEAR(t2 / t1, 2.0, 0.1);
}

TEST(Reliability, AfrTableMatchesPaper) {
  const auto& t = paper_afr_table();
  ASSERT_EQ(t.size(), 5u);
  EXPECT_DOUBLE_EQ(t[0].afr, 0.017);
  EXPECT_DOUBLE_EQ(t[1].afr, 0.081);  // the year-2 jump
  EXPECT_DOUBLE_EQ(t[4].afr, 0.072);
}

TEST(Reliability, Raid6BeatsRaid5ByOrdersOfMagnitude) {
  const double r5 = raid5_mttdl_hours(8, 0.05, 24.0);
  const double r6 = raid6_mttdl_hours(8, 0.05, 24.0);
  EXPECT_GT(r5, 0.0);
  EXPECT_GT(r6 / r5, 100.0);
}

TEST(Reliability, MttdlDecreasesWithAfrAndDisks) {
  EXPECT_GT(raid5_mttdl_hours(8, 0.017, 24.0),
            raid5_mttdl_hours(8, 0.081, 24.0));
  EXPECT_GT(raid5_mttdl_hours(4, 0.05, 24.0),
            raid5_mttdl_hours(16, 0.05, 24.0));
}

TEST(Reliability, MatchesClosedFormApproximations) {
  // For mu >> lambda: RAID-5 MTTDL ~ mu / (n(n-1) lambda^2).
  const int n = 8;
  const double lambda = lambda_per_hour(0.03);
  const double mu = 1.0 / 12.0;
  const double exact = mttdl_hours(n, 1, lambda, mu);
  const double approx = mu / (n * (n - 1) * lambda * lambda);
  EXPECT_NEAR(exact / approx, 1.0, 0.05);
  // RAID-6: ~ mu^2 / (n(n-1)(n-2) lambda^3).
  const double exact6 = mttdl_hours(n, 2, lambda, mu);
  const double approx6 = mu * mu / (n * (n - 1) * (n - 2) * lambda * lambda * lambda);
  EXPECT_NEAR(exact6 / approx6, 1.0, 0.05);
}

TEST(ConversionRisk, Table6Ordering) {
  // Via-RAID-0 tolerates nothing during its window; everything else
  // keeps single-failure protection.
  const double b = 600'000, te = 8.5, afr = 0.081;
  const auto via0 = conversion_window_risk(
      mig::ConversionSpec::canonical(CodeId::kRdp,
                                     mig::Approach::kViaRaid0, 5),
      b, te, afr);
  const auto via4 = conversion_window_risk(
      mig::ConversionSpec::canonical(CodeId::kRdp,
                                     mig::Approach::kViaRaid4, 5),
      b, te, afr);
  const auto direct =
      conversion_window_risk(mig::ConversionSpec::direct_code56(4), b, te,
                             afr);
  EXPECT_EQ(via0.tolerated, 0);
  EXPECT_EQ(via4.tolerated, 1);
  EXPECT_EQ(direct.tolerated, 1);
  // Zero tolerance costs orders of magnitude of loss probability even
  // though the via-RAID-0 window is shorter.
  EXPECT_GT(via0.loss_probability, 1000 * via4.loss_probability);
  EXPECT_LT(direct.loss_probability, via4.loss_probability);
  EXPECT_GT(direct.window_hours, 0.0);
}

TEST(ConversionRisk, ScalesWithWindowAndAfr) {
  const auto spec = mig::ConversionSpec::direct_code56(4);
  const auto small = conversion_window_risk(spec, 1e5, 8.5, 0.02);
  const auto big_b = conversion_window_risk(spec, 1e6, 8.5, 0.02);
  const auto big_afr = conversion_window_risk(spec, 1e5, 8.5, 0.08);
  EXPECT_GT(big_b.loss_probability, small.loss_probability);
  EXPECT_GT(big_afr.loss_probability, small.loss_probability);
  EXPECT_NEAR(big_b.window_hours / small.window_hours, 10.0, 1e-6);
}

TEST(ConversionRisk, RatingsMatchTable6) {
  EXPECT_STREQ(window_risk_rating(mig::ConversionSpec::direct_code56(4)),
               "High (no risk on parity loss)");
  EXPECT_STREQ(
      window_risk_rating(mig::ConversionSpec::canonical(
          CodeId::kXCode, mig::Approach::kDirect, 5)),
      "High (old parity retained until done)");
  EXPECT_STREQ(
      window_risk_rating(mig::ConversionSpec::canonical(
          CodeId::kEvenOdd, mig::Approach::kViaRaid0, 5)),
      "Low (no fault tolerance in RAID-0)");
}

TEST(Reliability, RejectsBadParameters) {
  EXPECT_THROW(mttdl_hours(0, 1, 1e-5, 0.1), std::invalid_argument);
  EXPECT_THROW(mttdl_hours(4, 4, 1e-5, 0.1), std::invalid_argument);
  EXPECT_THROW(mttdl_hours(4, -1, 1e-5, 0.1), std::invalid_argument);
  EXPECT_THROW(mttdl_hours(4, 1, 0.0, 0.1), std::invalid_argument);
}

}  // namespace
}  // namespace c56::ana
