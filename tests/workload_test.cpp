// Tests for request arrivals, per-tag latency accounting and the
// synthetic workload generator.

#include <gtest/gtest.h>

#include <map>

#include "sim/event_sim.hpp"
#include "sim/workload.hpp"

namespace c56::sim {
namespace {

Trace one_phase(std::vector<Request> reqs) {
  Trace t;
  t.phases.push_back({"phase", std::move(reqs), {}});
  return t;
}

TEST(Arrivals, DiskIdlesUntilArrival) {
  Request r{0, 0, 4096, Op::kRead, /*issue_ms=*/500.0, /*tag=*/3};
  ArraySimulator sim(1);
  const auto res = sim.run(one_phase({r}));
  DiskModel ref;
  const double svc = ref.service_time_ms(0, 4096);
  EXPECT_NEAR(res.makespan_ms, 500.0 + svc, 1e-9);
  const auto& lat = res.latency_by_tag.at(3);
  EXPECT_EQ(lat.count, 1u);
  EXPECT_NEAR(lat.mean_ms(), svc, 1e-9);  // no queueing
}

TEST(Arrivals, QueueingLatencyAccumulates) {
  // Two simultaneous arrivals on one disk: the second waits.
  std::vector<Request> reqs{{0, 0, 4096, Op::kRead, 0.0, 1},
                            {0, 100000, 4096, Op::kRead, 0.0, 1}};
  ArraySimulator sim(1);
  const auto res = sim.run(one_phase(reqs));
  const auto& lat = res.latency_by_tag.at(1);
  EXPECT_EQ(lat.count, 2u);
  EXPECT_GT(lat.max_ms, lat.mean_ms());
  EXPECT_NEAR(lat.max_ms, res.makespan_ms, 1e-9);
}

TEST(Arrivals, ServiceFollowsArrivalOrderNotInsertionOrder) {
  // The later-inserted request arrives earlier and must be served first.
  std::vector<Request> reqs{{0, 0, 4096, Op::kRead, 50.0, 1},
                            {0, 99999, 4096, Op::kRead, 0.0, 2}};
  ArraySimulator sim(1);
  const auto res = sim.run(one_phase(reqs));
  // Tag 2 experiences pure service time; tag 1 may queue briefly.
  DiskModel ref;
  const double svc2 = ref.service_time_ms(99999, 4096);
  EXPECT_NEAR(res.latency_by_tag.at(2).mean_ms(), svc2, 1e-9);
}

TEST(Arrivals, UntaggedBulkStillCountedUnderTagZero) {
  std::vector<Request> reqs{{0, 0, 4096, Op::kRead}};
  ArraySimulator sim(1);
  const auto res = sim.run(one_phase(reqs));
  EXPECT_EQ(res.latency_by_tag.at(0).count, 1u);
}

TEST(Workload, RespectsRateAndHorizon) {
  WorkloadParams p;
  p.iops = 500.0;
  p.horizon_ms = 2000.0;
  const auto reqs = make_workload(p);
  // ~1000 arrivals expected; Poisson 5-sigma bounds.
  EXPECT_GT(reqs.size(), 800u);
  EXPECT_LT(reqs.size(), 1200u);
  for (const auto& r : reqs) {
    EXPECT_GE(r.issue_ms, 0.0);
    EXPECT_LT(r.issue_ms, p.horizon_ms);
    EXPECT_GE(r.disk, 0);
    EXPECT_LT(r.disk, p.disks);
    EXPECT_LT(r.lba / 8, static_cast<std::uint64_t>(p.blocks_per_disk));
    EXPECT_EQ(r.tag, p.tag);
  }
  // Sorted by arrival.
  for (std::size_t i = 1; i < reqs.size(); ++i) {
    EXPECT_LE(reqs[i - 1].issue_ms, reqs[i].issue_ms);
  }
}

TEST(Workload, ReadFractionHolds) {
  WorkloadParams p;
  p.iops = 2000.0;
  p.horizon_ms = 2000.0;
  p.read_fraction = 0.7;
  const auto reqs = make_workload(p);
  std::size_t reads = 0;
  for (const auto& r : reqs) reads += r.op == Op::kRead;
  EXPECT_NEAR(static_cast<double>(reads) / reqs.size(), 0.7, 0.05);
}

TEST(Workload, SequentialPatternAdvances) {
  WorkloadParams p;
  p.pattern = AddressPattern::kSequential;
  p.iops = 100.0;
  p.horizon_ms = 500.0;
  const auto reqs = make_workload(p);
  ASSERT_GT(reqs.size(), 4u);
  // Blocks 0,1,2,... round-robin over disks.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(reqs[i].disk, static_cast<int>(i % static_cast<std::size_t>(
                                p.disks)));
  }
}

TEST(Workload, ZipfSkewsTowardFewBlocks) {
  WorkloadParams p;
  p.pattern = AddressPattern::kZipf;
  p.iops = 3000.0;
  p.horizon_ms = 2000.0;
  const auto reqs = make_workload(p);
  std::map<std::pair<int, std::uint64_t>, std::size_t> freq;
  for (const auto& r : reqs) ++freq[{r.disk, r.lba}];
  std::size_t hottest = 0;
  for (const auto& [k, v] : freq) hottest = std::max(hottest, v);
  // The hottest block takes far more than a uniform share.
  EXPECT_GT(hottest, reqs.size() / 100);
  // And distinct addresses are far fewer than requests.
  EXPECT_LT(freq.size(), reqs.size() / 2);
}

TEST(Workload, DeterministicPerSeed) {
  WorkloadParams p;
  p.seed = 42;
  const auto a = make_workload(p);
  const auto b = make_workload(p);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].lba, b[i].lba);
    EXPECT_EQ(a[i].issue_ms, b[i].issue_ms);
  }
  p.seed = 43;
  const auto c = make_workload(p);
  EXPECT_TRUE(a.size() != c.size() || a[0].lba != c[0].lba ||
              a[0].issue_ms != c[0].issue_ms);
}

TEST(Workload, RejectsBadParameters) {
  WorkloadParams p;
  p.iops = 0;
  EXPECT_THROW(make_workload(p), std::invalid_argument);
  p = {};
  p.disks = 0;
  EXPECT_THROW(make_workload(p), std::invalid_argument);
}

TEST(Workload, SmallWriteFamilySizesWritesOnly) {
  // write_bytes shapes page-sized small writes for the sub-block delta
  // plane: writes carry write_bytes, reads still fetch full blocks,
  // 0 keeps whole-block writes, and an oversized value is rejected.
  WorkloadParams p;
  p.block_bytes = 65536;
  p.write_bytes = 4096;
  p.read_fraction = 0.5;
  p.iops = 500.0;
  p.horizon_ms = 500.0;
  const auto reqs = make_workload(p);
  ASSERT_FALSE(reqs.empty());
  int writes = 0, reads = 0;
  for (const Request& r : reqs) {
    if (r.op == Op::kWrite) {
      EXPECT_EQ(r.bytes, 4096u);
      ++writes;
    } else {
      EXPECT_EQ(r.bytes, 65536u);
      ++reads;
    }
  }
  EXPECT_GT(writes, 0);
  EXPECT_GT(reads, 0);

  p.write_bytes = 0;  // whole-block writes, the default
  for (const Request& r : make_workload(p)) {
    EXPECT_EQ(r.bytes, 65536u);
  }

  p.write_bytes = 65537;  // larger than the block
  EXPECT_THROW(make_workload(p), std::invalid_argument);
}

}  // namespace
}  // namespace c56::sim
