// Fault-tolerant online migration: the conversion surviving a source
// disk lost mid-stream, transient-error retry, terminal aborts on
// double failures, crash-consistent resume through the journal, and the
// migrator's lifecycle orderings.

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <vector>

#include "layout/raid.hpp"
#include "migration/disk_array.hpp"
#include "migration/journal.hpp"
#include "migration/online.hpp"
#include "util/rng.hpp"
#include "xorblk/xor.hpp"

namespace c56::mig {
namespace {

constexpr std::size_t kBlock = 64;

/// Build a valid left-asymmetric RAID-5 with random data.
void fill_raid5(DiskArray& array, int m, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> block(kBlock), parity(kBlock);
  for (std::int64_t row = 0; row < array.blocks_per_disk(); ++row) {
    std::fill(parity.begin(), parity.end(), 0);
    const int pdisk = raid5_parity_disk(Raid5Flavor::kLeftAsymmetric,
                                        static_cast<int>(row % m), m);
    for (int d = 0; d < m; ++d) {
      if (d == pdisk) continue;
      rng.fill(block.data(), kBlock);
      std::ranges::copy(block, array.raw_block(d, row).begin());
      xor_into(parity.data(), block.data(), kBlock);
    }
    std::ranges::copy(parity, array.raw_block(pdisk, row).begin());
  }
}

struct Addr {
  int disk;
  std::int64_t block;
};

/// Physical home of a logical data block (mirrors OnlineMigrator).
Addr logical_addr(std::int64_t logical, int m) {
  const std::int64_t stripe_row = logical / (m - 1);
  const int k = static_cast<int>(logical % (m - 1));
  return {raid5_data_disk(Raid5Flavor::kLeftAsymmetric,
                          static_cast<int>(stripe_row % m), k, m),
          stripe_row};
}

/// Uninjected copy of every logical data block, for later readback
/// comparison (raw_block leaves the I/O counters untouched, so fault
/// plans scripted in counted I/Os stay calibrated).
std::vector<std::vector<std::uint8_t>> snapshot_logical(const DiskArray& array,
                                                        int m,
                                                        std::int64_t logical) {
  std::vector<std::vector<std::uint8_t>> snap;
  snap.reserve(static_cast<std::size_t>(logical));
  for (std::int64_t l = 0; l < logical; ++l) {
    const Addr a = logical_addr(l, m);
    const auto src = array.raw_block(a.disk, a.block);
    snap.emplace_back(src.begin(), src.end());
  }
  return snap;
}

RetryPolicy fast_retry() {
  RetryPolicy p;
  p.max_attempts = 4;
  p.backoff_us = 0;
  return p;
}

/// Memory sink that fires a callback after a scripted number of
/// checkpoint writes — the crash trigger for the resume tests.
class StopAfterSink final : public CheckpointSink {
 public:
  explicit StopAfterSink(std::size_t limit) : limit_(limit) {}
  void arm(std::function<void()> cb) { on_limit_ = std::move(cb); }
  void disarm() { on_limit_ = nullptr; }

  void write_slot(int slot, std::span<const std::uint8_t> bytes) override {
    inner_.write_slot(slot, bytes);
    if (++count_ == limit_ && on_limit_) on_limit_();
  }
  std::vector<std::uint8_t> read_slot(int slot) override {
    return inner_.read_slot(slot);
  }

 private:
  MemoryCheckpointSink inner_;
  std::size_t limit_;
  std::size_t count_ = 0;
  std::function<void()> on_limit_;
};

TEST(DegradedConversion, SurvivesSingleSourceDiskFailure) {
  const int p = 5, m = 4;
  const std::int64_t groups = 6;
  DiskArray array(m, groups * (p - 1), kBlock);
  fill_raid5(array, m, 21);

  OnlineMigrator mig(array, p);
  const auto snap = snapshot_logical(array, m, mig.logical_blocks());

  // Disk 1 dies on its 11th counted I/O: mid-conversion (the converter
  // reads each source disk p-2 = 3 times per group).
  FaultPlan plan;
  plan.disk_failures.push_back({.disk = 1, .after_ios = 10});
  array.set_fault_plan(plan);
  mig.set_retry_policy(fast_retry());

  mig.start();
  mig.finish();
  EXPECT_EQ(mig.state(), MigrationState::kDone);
  EXPECT_TRUE(array.disk_failed(1));
  const OnlineStats st = mig.stats();
  EXPECT_GT(st.reconstructed_reads, 0u)
      << "remaining chains must read disk 1 through the row parity";

  // Rebuild the lost disk and check the full RAID-6 plus every logical
  // block against the pre-migration contents.
  EXPECT_GT(mig.rebuild_failed_disks(), 0);
  EXPECT_EQ(array.failed_disks(), 0);
  EXPECT_TRUE(mig.verify_raid6());
  std::vector<std::uint8_t> got(kBlock);
  for (std::int64_t l = 0; l < mig.logical_blocks(); ++l) {
    ASSERT_TRUE(mig.read_block(l, got).ok()) << "logical " << l;
    EXPECT_EQ(got, snap[static_cast<std::size_t>(l)]) << "logical " << l;
  }
}

TEST(DegradedConversion, SurvivesFailureUnderConcurrentWrites) {
  const int p = 5, m = 4;
  const std::int64_t groups = 48;
  DiskArray array(m, groups * (p - 1), kBlock);
  fill_raid5(array, m, 22);

  OnlineMigrator mig(array, p);
  mig.set_retry_policy(fast_retry());
  const std::int64_t logical = mig.logical_blocks();

  FaultPlan plan;
  plan.disk_failures.push_back({.disk = 2, .after_ios = 40});
  array.set_fault_plan(plan);

  std::map<std::int64_t, Buffer> model;
  mig.start();
  {
    Rng rng(23);
    Buffer buf(kBlock);
    for (int i = 0; i < 1200; ++i) {
      const auto l = static_cast<std::int64_t>(
          rng.next_below(static_cast<std::uint64_t>(logical)));
      if (rng.next_below(2) == 0) {
        rng.fill(buf.data(), kBlock);
        ASSERT_TRUE(mig.write_block(l, buf.span()).ok()) << "logical " << l;
        model[l] = buf;
      } else {
        Buffer got(kBlock);
        ASSERT_TRUE(mig.read_block(l, got.span()).ok()) << "logical " << l;
        if (auto it = model.find(l); it != model.end()) {
          EXPECT_TRUE(got == it->second) << "stale read at " << l;
        }
      }
    }
  }
  mig.finish();
  EXPECT_EQ(mig.state(), MigrationState::kDone);
  EXPECT_TRUE(array.disk_failed(2));

  EXPECT_GT(mig.rebuild_failed_disks(), 0);
  EXPECT_TRUE(mig.verify_raid6());
  Buffer got(kBlock);
  for (const auto& [l, want] : model) {
    ASSERT_TRUE(mig.read_block(l, got.span()).ok());
    EXPECT_TRUE(got == want) << "lost write at " << l;
  }
}

TEST(DegradedConversion, TransientSectorErrorsAreRetried) {
  const int p = 5, m = 4;
  DiskArray array(m, 8LL * (p - 1), kBlock);
  fill_raid5(array, m, 24);
  OnlineMigrator mig(array, p);
  mig.set_retry_policy(fast_retry());
  FaultPlan plan;
  plan.sector_error_rate = 0.05;
  plan.seed = 25;
  array.set_fault_plan(plan);
  mig.start();
  mig.finish();
  EXPECT_EQ(mig.state(), MigrationState::kDone);
  EXPECT_GT(mig.stats().retries, 0u);
  EXPECT_TRUE(mig.verify_raid6());
}

TEST(DegradedConversion, TornWritesAreRepaired) {
  const int p = 5, m = 4;
  DiskArray array(m, 8LL * (p - 1), kBlock);
  fill_raid5(array, m, 26);
  OnlineMigrator mig(array, p);
  // At a 20% tear rate, 4 attempts leave a ~0.2% chance per write of a
  // terminal failure; 8 attempts make one effectively impossible.
  RetryPolicy retry = fast_retry();
  retry.max_attempts = 8;
  mig.set_retry_policy(retry);
  FaultPlan plan;
  plan.torn_write_rate = 0.2;
  plan.seed = 27;
  array.set_fault_plan(plan);
  mig.start();
  mig.finish();
  EXPECT_EQ(mig.state(), MigrationState::kDone);
  EXPECT_GT(mig.stats().retries, 0u);
  EXPECT_TRUE(mig.verify_raid6());
}

TEST(DegradedConversion, HardBadBlockReconstructedThroughParity) {
  const int p = 5, m = 4;
  DiskArray array(m, 4LL * (p - 1), kBlock);
  fill_raid5(array, m, 28);
  OnlineMigrator mig(array, p);
  mig.set_retry_policy(fast_retry());
  // A persistent latent error under a conversion chain source: the
  // converter never rewrites source disks, so every read of this block
  // must go through reconstruction.
  FaultPlan plan;
  plan.bad_blocks.push_back({.disk = 0, .block = 2});
  array.set_fault_plan(plan);
  mig.start();
  mig.finish();
  EXPECT_EQ(mig.state(), MigrationState::kDone);
  EXPECT_GT(mig.stats().reconstructed_reads, 0u);
  EXPECT_TRUE(mig.verify_raid6());
}

TEST(DegradedConversion, DoubleFailureAbortsCleanly) {
  const int p = 5, m = 4;
  DiskArray array(m, 4LL * (p - 1), kBlock);
  fill_raid5(array, m, 29);
  OnlineMigrator mig(array, p);
  mig.set_retry_policy(fast_retry());
  array.fail_disk(0);
  array.fail_disk(1);
  mig.start();
  mig.finish();  // must return promptly, not hang
  EXPECT_EQ(mig.state(), MigrationState::kAborted);
  const std::string reason = mig.abort_reason();
  EXPECT_FALSE(reason.empty());
  EXPECT_NE(reason.find("diagonal"), std::string::npos) << reason;
  // The array is beyond the migration's fault tolerance: rebuild and
  // resume both refuse.
  EXPECT_THROW(mig.rebuild_failed_disks(), std::runtime_error);
  EXPECT_THROW(mig.resume(), std::logic_error);
  // Application I/O on a lost, unreconstructible block reports failure.
  std::vector<std::uint8_t> buf(kBlock, 0);
  bool any_failed = false;
  for (std::int64_t l = 0; l < mig.logical_blocks(); ++l) {
    any_failed |= !mig.read_block(l, buf).ok();
  }
  EXPECT_TRUE(any_failed);
}

TEST(CrashResume, ByteIdenticalToUninterruptedRun) {
  const int p = 5, m = 4;
  const std::int64_t groups = 8;
  const std::uint64_t seed = 31;

  // Reference: the same data migrated without interruption.
  DiskArray ref(m, groups * (p - 1), kBlock);
  fill_raid5(ref, m, seed);
  {
    OnlineMigrator mig(ref, p);
    mig.start();
    mig.finish();
    ASSERT_EQ(mig.state(), MigrationState::kDone);
  }

  // start() journals once up front, then once per diagonal block: small
  // limits stop inside the first group, larger ones several groups in.
  for (const std::size_t stop_after : {2UL, 5UL, 13UL, 27UL}) {
    DiskArray array(m, groups * (p - 1), kBlock);
    fill_raid5(array, m, seed);
    StopAfterSink sink(stop_after);
    {
      OnlineMigrator mig(array, p);
      mig.attach_journal(sink);
      sink.arm([&mig] { mig.request_stop(); });
      mig.start();
      mig.finish();
      ASSERT_NE(mig.state(), MigrationState::kAborted);
      // Migrator destroyed here: the "crash". Only the journal and the
      // array survive.
    }
    sink.disarm();
    OnlineMigrator mig2(array, p);  // re-attach: array now has p disks
    mig2.attach_journal(sink);
    mig2.resume();
    mig2.finish();
    EXPECT_EQ(mig2.state(), MigrationState::kDone) << "stop " << stop_after;
    EXPECT_TRUE(mig2.verify_raid6()) << "stop " << stop_after;
    for (int d = 0; d <= m; ++d) {
      for (std::int64_t b = 0; b < array.blocks_per_disk(); ++b) {
        ASSERT_TRUE(std::ranges::equal(array.raw_block(d, b),
                                       ref.raw_block(d, b)))
            << "stop " << stop_after << " disk " << d << " block " << b;
      }
    }
  }
}

TEST(CrashResume, WatermarkGroupIsReverified) {
  const int p = 5, m = 4;
  const std::int64_t groups = 8;
  DiskArray array(m, groups * (p - 1), kBlock);
  fill_raid5(array, m, 32);
  StopAfterSink sink(14);
  std::int64_t watermark = 0;
  {
    OnlineMigrator mig(array, p);
    mig.attach_journal(sink);
    sink.arm([&mig] { mig.request_stop(); });
    mig.start();
    mig.finish();
    ASSERT_EQ(mig.state(), MigrationState::kStopped);
    watermark = mig.groups_done();
    ASSERT_GT(watermark, 0);
  }
  sink.disarm();
  // Corrupt a diagonal block the journal claims is durable — the torn
  // new-disk write a crash can leave behind. resume() must detect the
  // stale parity and regenerate it rather than trust the watermark.
  auto diag = array.raw_block(m, (watermark - 1) * (p - 1) + 1);
  for (auto& b : diag) b ^= 0xFF;
  OnlineMigrator mig2(array, p);
  mig2.attach_journal(sink);
  mig2.resume();
  mig2.finish();
  EXPECT_EQ(mig2.state(), MigrationState::kDone);
  EXPECT_TRUE(mig2.verify_raid6());
}

TEST(CrashResume, ResumeWithoutJournalUsesInMemoryPosition) {
  const int p = 5, m = 4;
  DiskArray array(m, 16LL * (p - 1), kBlock);
  fill_raid5(array, m, 33);
  OnlineMigrator mig(array, p);
  mig.start();
  mig.request_stop();
  mig.finish();
  const MigrationState s = mig.state();
  ASSERT_TRUE(s == MigrationState::kStopped || s == MigrationState::kDone);
  mig.resume();
  mig.finish();
  EXPECT_EQ(mig.state(), MigrationState::kDone);
  EXPECT_TRUE(mig.verify_raid6());
  // Resuming a finished migration is a no-op.
  mig.resume();
  EXPECT_EQ(mig.state(), MigrationState::kDone);
}

TEST(CrashResume, FreshJournalResumesFromTheStart) {
  const int p = 5, m = 4;
  DiskArray array(m, 2LL * (p - 1), kBlock);
  fill_raid5(array, m, 34);
  MemoryCheckpointSink sink;  // never written: recover() finds nothing
  OnlineMigrator mig(array, p);
  mig.attach_journal(sink);
  mig.resume();  // resume from kIdle == start from group 0
  mig.finish();
  EXPECT_EQ(mig.state(), MigrationState::kDone);
  EXPECT_TRUE(mig.verify_raid6());
}

TEST(Lifecycle, ConstructDestroy) {
  DiskArray array(4, 8, kBlock);
  { OnlineMigrator mig(array, 5); }
  EXPECT_EQ(array.disks(), 4);  // never started: no disk added
}

TEST(Lifecycle, FinishWithoutStartIsNoOp) {
  DiskArray array(4, 8, kBlock);
  OnlineMigrator mig(array, 5);
  mig.finish();
  mig.finish();
  EXPECT_EQ(mig.state(), MigrationState::kIdle);
}

TEST(Lifecycle, StartDestroyLeavesCheckpoint) {
  const int p = 5, m = 4;
  DiskArray array(m, 64LL * (p - 1), kBlock);
  fill_raid5(array, m, 35);
  MemoryCheckpointSink sink;
  {
    OnlineMigrator mig(array, p);
    mig.attach_journal(sink);
    mig.start();
    // Destroyed while (possibly still) converting: the destructor stops
    // and joins; whatever was generated stays journalled.
  }
  // The journal decodes and the recorded watermark is within range.
  MigrationJournal j(sink);
  const auto rec = j.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_GE(rec->groups_done, 0);
  EXPECT_LE(rec->groups_done, 64);
  // And a new migrator completes the job.
  OnlineMigrator mig2(array, p);
  mig2.attach_journal(sink);
  mig2.resume();
  mig2.finish();
  EXPECT_EQ(mig2.state(), MigrationState::kDone);
  EXPECT_TRUE(mig2.verify_raid6());
}

TEST(Lifecycle, StartFinishDestroyAndDoubleStart) {
  const int p = 5, m = 4;
  DiskArray array(m, 2LL * (p - 1), kBlock);
  fill_raid5(array, m, 36);
  OnlineMigrator mig(array, p);
  mig.start();
  mig.finish();
  EXPECT_EQ(mig.state(), MigrationState::kDone);
  EXPECT_THROW(mig.start(), std::logic_error);
  mig.finish();  // idempotent after completion
}

TEST(Lifecycle, StopBeforeStartDoesNotWedgeTheConverter) {
  const int p = 5, m = 4;
  DiskArray array(m, 2LL * (p - 1), kBlock);
  fill_raid5(array, m, 37);
  OnlineMigrator mig(array, p);
  mig.request_stop();  // stale stop request must not stop the next run
  mig.start();
  mig.finish();
  EXPECT_EQ(mig.state(), MigrationState::kDone);
  EXPECT_TRUE(mig.verify_raid6());
}

}  // namespace
}  // namespace c56::mig
