// Observability layer tests: metric primitives, histogram quantiles,
// registry find-or-create, collector lifecycle, exporter agreement, and
// the trace-span ring. Ends with the acceptance-criteria integration
// test: a scripted migrate-under-faults run whose JSON and Prometheus
// renderings carry the same values as the subsystems' own accessors.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "layout/raid.hpp"
#include "migration/disk_array.hpp"
#include "migration/fault.hpp"
#include "migration/journal.hpp"
#include "migration/online.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "xorblk/xor.hpp"

namespace c56 {
namespace {

constexpr std::size_t kBlock = 64;

TEST(Counter, IncrementAndReset) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentIncrementsDontLoseUpdates) {
  obs::Counter c;
  constexpr int kThreads = 8, kIters = 10000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&c] {
      for (int i = 0; i < kIters; ++i) c.inc();
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(Gauge, SetAndAddGoNegative) {
  obs::Gauge g;
  g.set(5);
  g.add(-8);
  EXPECT_EQ(g.value(), -3);
  g.set(7);
  EXPECT_EQ(g.value(), 7);
}

TEST(Histogram, EmptySnapshotIsAllZero) {
  obs::Histogram h;
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_TRUE(s.buckets.empty());
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.quantile(0.99), 0.0);
}

TEST(Histogram, ZeroLandsInTheZeroBucket) {
  obs::Histogram h;
  h.observe(0);
  const obs::HistogramSnapshot s = h.snapshot();
  ASSERT_EQ(s.buckets.size(), 1u);
  EXPECT_EQ(s.buckets[0], (std::pair<std::uint64_t, std::uint64_t>{0, 1}));
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.max, 0u);
}

TEST(Histogram, Log2BucketsAndQuantiles) {
  // Samples 1..8 land in bit-width buckets (ub, n):
  // (1,1) (3,2) (7,4) (15,1). Quantiles are then fully determined:
  // p50 interpolates inside the (7,4) bucket; p95 lands in (15,1) but
  // clamps to the exact tracked max of 8.
  obs::Histogram h;
  for (std::uint64_t v = 1; v <= 8; ++v) h.observe(v);
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 8u);
  EXPECT_EQ(s.sum, 36u);
  EXPECT_EQ(s.max, 8u);
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> want{
      {1, 1}, {3, 2}, {7, 4}, {15, 1}};
  EXPECT_EQ(s.buckets, want);
  EXPECT_DOUBLE_EQ(s.p50, 4.75);
  EXPECT_DOUBLE_EQ(s.p95, 8.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 8.0);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, static_cast<double>(s.max));
}

TEST(Histogram, SingleSampleQuantilesAreExact) {
  // One sample: every quantile IS that sample. Before the fix the
  // bucket walk interpolated to the log2 bucket's interior — a single
  // observe(1000) (bucket [512, 1023]) read back as 767.5.
  obs::Histogram h;
  h.observe(1000);
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.p50, 1000.0);
  EXPECT_DOUBLE_EQ(s.p95, 1000.0);
  EXPECT_DOUBLE_EQ(s.p99, 1000.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.01), 1000.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 1000.0);
}

TEST(Histogram, SingleZeroSampleQuantilesAreZero) {
  obs::Histogram h;
  h.observe(0);
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

TEST(Histogram, ResetClearsEverything) {
  obs::Histogram h;
  h.observe(100);
  h.reset();
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_TRUE(s.buckets.empty());
}

TEST(Registry, FindOrCreateReturnsStableAddresses) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("a");
  a.inc(3);
  EXPECT_EQ(&reg.counter("a"), &a);
  EXPECT_NE(&reg.counter("b"), &a);
  // Names are per-kind namespaces: a gauge "a" is a different metric.
  reg.gauge("a").set(-1);
  EXPECT_EQ(reg.counter("a").value(), 3u);
  EXPECT_EQ(reg.gauge("a").value(), -1);
  reg.histogram("a").observe(9);
  EXPECT_EQ(reg.histogram("a").snapshot().count, 1u);
}

TEST(Registry, ResetZeroesOwnedMetricsOnly) {
  obs::Registry reg;
  reg.counter("c").inc(5);
  reg.gauge("g").set(7);
  reg.histogram("h").observe(3);
  obs::Counter external;
  external.inc(9);
  const obs::CollectorHandle handle = reg.add_collector(
      [&external](obs::Collection& c) { c.counter("ext", external.value()); });
  reg.reset();
  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.find("c")->counter, 0u);
  EXPECT_EQ(snap.find("g")->gauge, 0);
  EXPECT_EQ(snap.find("h")->hist.count, 0u);
  // Collector-backed state is the subsystem's, not the registry's.
  EXPECT_EQ(snap.find("ext")->counter, 9u);
}

TEST(Registry, CollectorHandleDetaches) {
  obs::Registry reg;
  obs::CollectorHandle h = reg.add_collector(
      [](obs::Collection& c) { c.counter("from_collector", 7); });
  EXPECT_TRUE(static_cast<bool>(h));
  ASSERT_NE(reg.snapshot().find("from_collector"), nullptr);
  EXPECT_EQ(reg.snapshot().find("from_collector")->counter, 7u);
  h.remove();
  EXPECT_FALSE(static_cast<bool>(h));
  EXPECT_EQ(reg.snapshot().find("from_collector"), nullptr);
  h.remove();  // idempotent
}

TEST(Registry, CollectorHandleMoveTransfersOwnership) {
  obs::Registry reg;
  obs::CollectorHandle a =
      reg.add_collector([](obs::Collection& c) { c.counter("moved", 1); });
  obs::CollectorHandle b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(static_cast<bool>(b));
  EXPECT_NE(reg.snapshot().find("moved"), nullptr);
  {
    // Move-assignment over a live handle detaches the overwritten one.
    obs::CollectorHandle c =
        reg.add_collector([](obs::Collection& cc) { cc.counter("other", 2); });
    c = std::move(b);
    EXPECT_EQ(reg.snapshot().find("other"), nullptr);
    EXPECT_NE(reg.snapshot().find("moved"), nullptr);
  }  // c dies -> "moved" detaches too
  EXPECT_EQ(reg.snapshot().find("moved"), nullptr);
}

TEST(Registry, SnapshotIsNameSorted) {
  obs::Registry reg;
  reg.counter("zebra").inc();
  reg.gauge("apple").set(1);
  reg.histogram("mango").observe(2);
  const obs::Snapshot snap = reg.snapshot();
  EXPECT_TRUE(std::is_sorted(
      snap.metrics.begin(), snap.metrics.end(),
      [](const obs::Metric& x, const obs::Metric& y) {
        return x.name < y.name;
      }));
}

TEST(Registry, MetricsEnabledSwitchRoundTrips) {
  // The process-wide default is off; tests that arm it must disarm it.
  EXPECT_FALSE(obs::metrics_enabled());
  obs::set_metrics_enabled(true);
  EXPECT_TRUE(obs::metrics_enabled());
  obs::set_metrics_enabled(false);
  EXPECT_FALSE(obs::metrics_enabled());
}

TEST(Exporters, PrometheusSharesOneTypeLineAcrossLabeledSeries) {
  obs::Snapshot snap;
  for (int d = 0; d < 2; ++d) {
    obs::Metric m;
    m.name = "x_reads{disk=\"" + std::to_string(d) + "\"}";
    m.kind = obs::MetricKind::kCounter;
    m.counter = static_cast<std::uint64_t>(3 + 2 * d);
    snap.metrics.push_back(std::move(m));
  }
  const std::string want =
      "# HELP x_reads_total x reads total\n"
      "# TYPE x_reads_total counter\n"
      "x_reads_total{disk=\"0\"} 3\n"
      "x_reads_total{disk=\"1\"} 5\n";
  EXPECT_EQ(obs::to_prometheus(snap), want);
}

TEST(Exporters, PrometheusMergesTotalSuffixedAndLabeledCounters) {
  // "x_reads_total" (pre-suffixed) and "x_reads{...}" (labeled, bare)
  // must land in ONE exposed family with a single HELP/TYPE header.
  obs::Snapshot snap;
  obs::Metric plain;
  plain.name = "x_reads_total";
  plain.kind = obs::MetricKind::kCounter;
  plain.counter = 8;
  snap.metrics.push_back(std::move(plain));
  obs::Metric labeled;
  labeled.name = "x_reads{disk=\"0\"}";
  labeled.kind = obs::MetricKind::kCounter;
  labeled.counter = 3;
  snap.metrics.push_back(std::move(labeled));
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const obs::Metric& a, const obs::Metric& b) {
              return a.name < b.name;
            });
  const std::string want =
      "# HELP x_reads_total x reads total\n"
      "# TYPE x_reads_total counter\n"
      "x_reads_total 8\n"
      "x_reads_total{disk=\"0\"} 3\n";
  EXPECT_EQ(obs::to_prometheus(snap), want);
}

TEST(Exporters, PrometheusUsesRegisteredHelpText) {
  obs::set_metric_help("helped_ops", "Operations with custom help");
  obs::Snapshot snap;
  obs::Metric m;
  m.name = "helped_ops";
  m.kind = obs::MetricKind::kCounter;
  m.counter = 1;
  snap.metrics.push_back(std::move(m));
  const std::string prom = obs::to_prometheus(snap);
  EXPECT_NE(
      prom.find("# HELP helped_ops_total Operations with custom help\n"),
      std::string::npos)
      << prom;
}

TEST(Exporters, PrometheusRendersLabeledHistogramSeries) {
  obs::Registry reg;
  reg.histogram("lat_us{tenant=\"3\"}").observe(7);
  const std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("# TYPE lat_us summary\n"), std::string::npos) << prom;
  EXPECT_NE(prom.find("lat_us{tenant=\"3\",quantile=\"0.5\"} 7\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("lat_us_sum{tenant=\"3\"} 7\n"), std::string::npos);
  EXPECT_NE(prom.find("lat_us_count{tenant=\"3\"} 1\n"), std::string::npos);
  EXPECT_NE(prom.find("lat_us_max{tenant=\"3\"} 7\n"), std::string::npos);
}

TEST(Exporters, JsonEscapesLabelQuotes) {
  obs::Registry reg;
  reg.counter("x_reads{disk=\"0\"}").inc(3);
  const std::string json = reg.to_json();
  // The label block's quotes must arrive backslash-escaped.
  const std::string want = "\"x_reads{disk=\\\"0\\\"}\": 3";
  EXPECT_NE(json.find(want), std::string::npos) << json;
}

TEST(Exporters, PrometheusRendersHistogramAsSummary) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("lat_us");
  for (std::uint64_t v = 1; v <= 8; ++v) h.observe(v);
  const std::string prom = reg.to_prometheus();
  EXPECT_NE(prom.find("# TYPE lat_us summary\n"), std::string::npos);
  EXPECT_NE(prom.find("lat_us{quantile=\"0.5\"} 4.75\n"), std::string::npos);
  EXPECT_NE(prom.find("lat_us_sum 36\n"), std::string::npos);
  EXPECT_NE(prom.find("lat_us_count 8\n"), std::string::npos);
  EXPECT_NE(prom.find("lat_us_max 8\n"), std::string::npos);
}

TEST(Exporters, PrometheusGoldenGrammar) {
  // Golden rendering of a small mixed registry: every family headed by
  // # HELP and # TYPE, counters suffixed _total before their label
  // block, histograms as a summary block with quantile labels merged
  // into any existing labels. Locks the exact grammar so scrapers can
  // rely on it.
  obs::Registry reg;
  reg.counter("io_reads{disk=\"0\"}").inc(3);
  reg.counter("io_reads{disk=\"1\"}").inc(5);
  reg.gauge("watermark").set(-1);
  reg.histogram("lat_us").observe(7);
  const std::string want =
      "# HELP io_reads_total io reads total\n"
      "# TYPE io_reads_total counter\n"
      "io_reads_total{disk=\"0\"} 3\n"
      "io_reads_total{disk=\"1\"} 5\n"
      "# HELP lat_us lat us\n"
      "# TYPE lat_us summary\n"
      "lat_us{quantile=\"0.5\"} 7\n"
      "lat_us{quantile=\"0.95\"} 7\n"
      "lat_us{quantile=\"0.99\"} 7\n"
      "lat_us_sum 7\n"
      "lat_us_count 1\n"
      "lat_us_max 7\n"
      "# HELP watermark watermark\n"
      "# TYPE watermark gauge\n"
      "watermark -1\n";
  EXPECT_EQ(reg.to_prometheus(), want);
}

TEST(Exporters, JsonAndPrometheusRenderIdenticalValues) {
  obs::Registry reg;
  reg.counter("events_total{kind=\"warn\"}").inc(9);
  reg.counter("plain_counter").inc(4);
  reg.gauge("eta_ms").set(1234);
  const obs::Snapshot snap = reg.snapshot();
  const std::string json = obs::to_json(snap);
  const std::string prom = obs::to_prometheus(snap);
  EXPECT_NE(json.find("\"events_total{kind=\\\"warn\\\"}\": 9"),
            std::string::npos)
      << json;
  // Already-_total bases keep one suffix; bare counters gain it.
  EXPECT_NE(prom.find("events_total{kind=\"warn\"} 9\n"), std::string::npos)
      << prom;
  EXPECT_NE(json.find("\"plain_counter\": 4"), std::string::npos);
  EXPECT_NE(prom.find("\nplain_counter_total 4\n"), std::string::npos);
  EXPECT_NE(json.find("\"eta_ms\": 1234"), std::string::npos);
  EXPECT_NE(prom.find("\neta_ms 1234\n"), std::string::npos);
}

// ---------------------------------------------------------------------
// Trace ring
// ---------------------------------------------------------------------

TEST(Trace, RingKeepsMostRecentAndCountsDropped) {
  obs::TraceRecorder rec(4);
  EXPECT_EQ(rec.capacity(), 4u);
  for (int i = 0; i < 6; ++i) {
    obs::TraceSpan s;
    s.name = "s" + std::to_string(i);
    s.start_us = static_cast<std::uint64_t>(i);
    rec.record(std::move(s));
  }
  const std::vector<obs::TraceSpan> spans = rec.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(spans[static_cast<std::size_t>(i)].name,
              "s" + std::to_string(i + 2));
  }
  EXPECT_EQ(rec.dropped(), 2u);
  rec.clear();
  EXPECT_TRUE(rec.snapshot().empty());
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(Trace, ScopedSpanHonoursEnableFlag) {
  obs::TraceRecorder& g = obs::TraceRecorder::global();
  g.clear();
  obs::set_trace_enabled(false);
  { obs::ScopedSpan off("span_off"); }
  obs::set_trace_enabled(true);
  { obs::ScopedSpan on("span_on"); }
  obs::set_trace_enabled(false);
  const std::vector<obs::TraceSpan> spans = g.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "span_on");
  g.clear();
}

TEST(Trace, ToJsonRendersChromeTraceEvents) {
  obs::TraceRecorder rec(8);
  obs::TraceSpan s;
  s.name = "convert_group";
  s.start_us = 10;
  s.dur_us = 5;
  s.tid = 1;
  rec.record(std::move(s));
  const std::string json = rec.to_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"convert_group\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 10"), std::string::npos);
}

// ---------------------------------------------------------------------
// Integration: migrate under faults, then both exporters must agree
// with each other and with the subsystems' authoritative accessors.
// ---------------------------------------------------------------------

/// Build a valid left-asymmetric RAID-5 with random data.
void fill_raid5(mig::DiskArray& array, int m, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> block(kBlock), parity(kBlock);
  for (std::int64_t row = 0; row < array.blocks_per_disk(); ++row) {
    std::fill(parity.begin(), parity.end(), 0);
    const int pdisk = raid5_parity_disk(Raid5Flavor::kLeftAsymmetric,
                                        static_cast<int>(row % m), m);
    for (int d = 0; d < m; ++d) {
      if (d == pdisk) continue;
      rng.fill(block.data(), kBlock);
      std::ranges::copy(block, array.raw_block(d, row).begin());
      xor_into(parity.data(), block.data(), kBlock);
    }
    std::ranges::copy(parity, array.raw_block(pdisk, row).begin());
  }
}

TEST(ObsIntegration, MigrateUnderFaultsExportsConsistently) {
  // The registry must outlive everything attached to it.
  obs::Registry reg;

  const int p = 5, m = 4;
  const std::int64_t groups = 6;
  mig::DiskArray array(m, groups * (p - 1), kBlock);
  fill_raid5(array, m, 11);

  mig::OnlineMigrator migrator(array, p);
  mig::MemoryCheckpointSink sink;
  migrator.attach_journal(sink);
  migrator.set_workers(2);
  migrator.set_retry_policy({.max_attempts = 6, .backoff_us = 1});

  mig::FaultPlan plan;
  plan.sector_error_rate = 0.01;
  plan.torn_write_rate = 0.01;
  plan.disk_failures.push_back({.disk = 1, .after_ios = 30});
  array.set_fault_plan(plan);

  obs::set_metrics_enabled(true);
  migrator.start();
  Rng rng(13);
  std::vector<std::uint8_t> buf(kBlock);
  for (int i = 0; i < 120; ++i) {
    const auto l = static_cast<std::int64_t>(rng.next_below(
        static_cast<std::uint64_t>(migrator.logical_blocks())));
    if (i % 3 == 0) {
      rng.fill(buf.data(), kBlock);
      migrator.write_block(l, buf);
    } else {
      migrator.read_block(l, buf);
    }
  }
  migrator.finish();
  migrator.rebuild_failed_disks();
  obs::set_metrics_enabled(false);

  array.attach_metrics(reg);
  migrator.attach_metrics(reg);
  const obs::Snapshot snap = reg.snapshot();

  // Collector-backed values equal the accessors they mirror.
  const mig::OnlineStats st = migrator.stats();
  ASSERT_NE(snap.find("migrator_conv_reads"), nullptr);
  EXPECT_EQ(snap.find("migrator_conv_reads")->counter, st.conv_reads);
  EXPECT_EQ(snap.find("migrator_conv_writes")->counter, st.conv_writes);
  EXPECT_EQ(snap.find("migrator_app_reads")->counter, st.app_reads);
  EXPECT_EQ(snap.find("migrator_app_writes")->counter, st.app_writes);
  EXPECT_EQ(snap.find("migrator_retries")->counter, st.retries);
  EXPECT_EQ(snap.find("migrator_groups_done")->gauge, groups);
  EXPECT_GT(snap.find("migrator_journal_checkpoints")->counter, 0u);
  ASSERT_NE(snap.find("disk_array_reads_total"), nullptr);
  EXPECT_EQ(snap.find("disk_array_reads_total")->counter,
            array.total_reads());
  EXPECT_EQ(snap.find("disk_array_writes_total")->counter,
            array.total_writes());
  EXPECT_EQ(snap.find("disk_array_sector_errors")->counter,
            array.sector_errors());
  EXPECT_EQ(snap.find("disk_array_torn_writes")->counter,
            array.torn_writes());
  EXPECT_EQ(snap.find("disk_array_disk_failures")->counter,
            array.disk_failure_events());
  // rebuild_failed_disks() brought the failed disk back.
  EXPECT_EQ(snap.find("disk_array_failed_disks")->gauge, 0);
  EXPECT_EQ(snap.find("disk_array_disk_failures")->counter, 1u);

  // Per-disk labeled counters sum to the _total series.
  std::uint64_t labeled_reads = 0;
  for (int d = 0; d <= m; ++d) {
    const std::string name =
        "disk_array_reads{disk=\"" + std::to_string(d) + "\"}";
    ASSERT_NE(snap.find(name), nullptr) << name;
    labeled_reads += snap.find(name)->counter;
  }
  EXPECT_EQ(labeled_reads, array.total_reads());

  // Both exporters render the same snapshot values.
  const std::string json = obs::to_json(snap);
  const std::string prom = obs::to_prometheus(snap);
  auto json_key = [](const std::string& name) {
    std::string out;
    for (char c : name) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  };
  // Counters expose with the _total suffix spliced in before any label
  // block; gauges keep their raw names. JSON keeps raw names for both.
  auto expo_name = [](const std::string& name) {
    const auto brace = name.find('{');
    std::string base =
        brace == std::string::npos ? name : name.substr(0, brace);
    if (!base.ends_with("_total")) base += "_total";
    return brace == std::string::npos ? base : base + name.substr(brace);
  };
  for (const obs::Metric& metric : snap.metrics) {
    std::string value;
    std::string prom_name = metric.name;
    if (metric.kind == obs::MetricKind::kCounter) {
      value = std::to_string(metric.counter);
      prom_name = expo_name(metric.name);
    } else if (metric.kind == obs::MetricKind::kGauge) {
      value = std::to_string(metric.gauge);
    } else {
      continue;  // histograms render structurally; covered above
    }
    EXPECT_NE(prom.find("\n" + prom_name + " " + value + "\n"),
              std::string::npos)
        << metric.name;
    EXPECT_NE(json.find("\"" + json_key(metric.name) + "\": " + value),
              std::string::npos)
        << metric.name;
  }

  // One TYPE line per exposed family even though "disk_array_reads_total"
  // (the unlabeled sum) and "disk_array_reads{disk=...}" (per-disk)
  // arrive under different raw names.
  std::size_t type_lines = 0;
  for (std::size_t pos = 0;
       (pos = prom.find("# TYPE disk_array_reads_total ", pos)) !=
       std::string::npos;
       ++pos) {
    ++type_lines;
  }
  EXPECT_EQ(type_lines, 1u);
}

}  // namespace
}  // namespace c56
