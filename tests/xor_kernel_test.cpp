// Differential harness for the XOR kernel layer: every variant compiled
// into the binary that the running CPU can execute is checked
// bit-for-bit against the 64-bit-lane scalar reference, over randomized
// sizes from 1 to 4096 bytes (odd lengths included), deliberately
// misaligned offsets, and the aliasing patterns the API documents
// (dst == a for xor_to, dst == srcs[i] for xor_accumulate). Buffers
// carry slack on both sides so an out-of-bounds vector tail shows up as
// a mismatch against the untouched scalar copy.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "xorblk/kernel.hpp"
#include "xorblk/xor.hpp"

namespace c56 {
namespace {

constexpr std::size_t kSlack = 64;  // guard bytes around every region
constexpr std::size_t kMaxLen = 4096;

std::vector<std::size_t> test_sizes(Rng& rng) {
  // Strip boundaries of every kernel (8/32/64/128/256-byte strips) plus
  // their odd neighbours, and a randomized tail.
  std::vector<std::size_t> sizes = {1,   2,   3,    7,    8,    9,   15,
                                    16,  31,  32,   33,   63,   64,  65,
                                    127, 128, 129,  255,  256,  257, 511,
                                    512, 513, 1023, 1024, 2048, 4095, 4096};
  for (int i = 0; i < 24; ++i) {
    sizes.push_back(1 + static_cast<std::size_t>(rng.next_below(kMaxLen)));
  }
  return sizes;
}

const std::size_t kOffsets[] = {0, 1, 3, 13, 31};

class XorKernelDiff : public ::testing::TestWithParam<XorKernel> {
 protected:
  const XorKernel& kernel() const { return GetParam(); }
  const XorKernel& ref() const { return scalar_kernel(); }
};

std::string kernel_name(const ::testing::TestParamInfo<XorKernel>& info) {
  return info.param.name;
}

TEST_P(XorKernelDiff, XorIntoMatchesScalar) {
  Rng rng(0xC56'0001);
  for (std::size_t n : test_sizes(rng)) {
    for (std::size_t off : kOffsets) {
      std::vector<std::uint8_t> dst(n + 2 * kSlack), src(n + 2 * kSlack);
      rng.fill(dst.data(), dst.size());
      rng.fill(src.data(), src.size());
      std::vector<std::uint8_t> want = dst;
      ref().xor_into(want.data() + off, src.data() + off, n);
      kernel().xor_into(dst.data() + off, src.data() + off, n);
      ASSERT_EQ(dst, want) << "n=" << n << " off=" << off;
    }
  }
}

TEST_P(XorKernelDiff, XorToMatchesScalar) {
  Rng rng(0xC56'0002);
  for (std::size_t n : test_sizes(rng)) {
    for (std::size_t off : kOffsets) {
      std::vector<std::uint8_t> a(n + 2 * kSlack), b(n + 2 * kSlack);
      std::vector<std::uint8_t> dst(n + 2 * kSlack), want(dst);
      rng.fill(a.data(), a.size());
      rng.fill(b.data(), b.size());
      rng.fill(dst.data(), dst.size());
      want = dst;
      ref().xor_to(want.data() + off, a.data() + off, b.data() + off, n);
      kernel().xor_to(dst.data() + off, a.data() + off, b.data() + off, n);
      ASSERT_EQ(dst, want) << "n=" << n << " off=" << off;
    }
  }
}

TEST_P(XorKernelDiff, XorToAliasedDstMatchesScalar) {
  Rng rng(0xC56'0003);
  for (std::size_t n : test_sizes(rng)) {
    for (std::size_t off : kOffsets) {
      std::vector<std::uint8_t> a(n + 2 * kSlack), b(n + 2 * kSlack);
      rng.fill(a.data(), a.size());
      rng.fill(b.data(), b.size());
      // dst == a
      std::vector<std::uint8_t> want = a;
      ref().xor_to(want.data() + off, want.data() + off, b.data() + off, n);
      std::vector<std::uint8_t> got = a;
      kernel().xor_to(got.data() + off, got.data() + off, b.data() + off, n);
      ASSERT_EQ(got, want) << "dst==a n=" << n << " off=" << off;
      // dst == b
      want = b;
      ref().xor_to(want.data() + off, a.data() + off, want.data() + off, n);
      got = b;
      kernel().xor_to(got.data() + off, a.data() + off, got.data() + off, n);
      ASSERT_EQ(got, want) << "dst==b n=" << n << " off=" << off;
    }
  }
}

TEST_P(XorKernelDiff, XorDeltaMatchesScalar) {
  Rng rng(0xC56'0008);
  for (std::size_t n : test_sizes(rng)) {
    for (std::size_t off : kOffsets) {
      std::vector<std::uint8_t> a(n + 2 * kSlack), b(n + 2 * kSlack);
      std::vector<std::uint8_t> dst(n + 2 * kSlack);
      rng.fill(a.data(), a.size());
      rng.fill(b.data(), b.size());
      rng.fill(dst.data(), dst.size());
      std::vector<std::uint8_t> want = dst;
      ref().xor_delta(want.data() + off, a.data() + off, b.data() + off, n);
      kernel().xor_delta(dst.data() + off, a.data() + off, b.data() + off, n);
      ASSERT_EQ(dst, want) << "n=" << n << " off=" << off;
    }
  }
}

TEST_P(XorKernelDiff, XorDeltaAliasedMatchesScalar) {
  Rng rng(0xC56'0009);
  for (std::size_t n : test_sizes(rng)) {
    std::vector<std::uint8_t> a(n), b(n);
    rng.fill(a.data(), n);
    rng.fill(b.data(), n);
    // dst == a: dst ^= dst ^ b leaves dst == b.
    std::vector<std::uint8_t> want = a;
    ref().xor_delta(want.data(), want.data(), b.data(), n);
    std::vector<std::uint8_t> got = a;
    kernel().xor_delta(got.data(), got.data(), b.data(), n);
    ASSERT_EQ(got, want) << "dst==a n=" << n;
    EXPECT_EQ(got, b) << "n=" << n;
    // dst == b symmetrically.
    want = b;
    ref().xor_delta(want.data(), a.data(), want.data(), n);
    got = b;
    kernel().xor_delta(got.data(), a.data(), got.data(), n);
    ASSERT_EQ(got, want) << "dst==b n=" << n;
  }
}

// xor_delta is definitionally xor_into of (a ^ b); pin the algebra so
// the write planner may use either formulation interchangeably.
TEST_P(XorKernelDiff, XorDeltaEqualsXorIntoOfXorTo) {
  Rng rng(0xC56'000A);
  for (std::size_t n : test_sizes(rng)) {
    std::vector<std::uint8_t> a(n), b(n), dst(n);
    rng.fill(a.data(), n);
    rng.fill(b.data(), n);
    rng.fill(dst.data(), n);
    std::vector<std::uint8_t> want = dst, delta(n);
    ref().xor_to(delta.data(), a.data(), b.data(), n);
    ref().xor_into(want.data(), delta.data(), n);
    std::vector<std::uint8_t> got = dst;
    kernel().xor_delta(got.data(), a.data(), b.data(), n);
    ASSERT_EQ(got, want) << "n=" << n;
  }
}

TEST_P(XorKernelDiff, XorAccumulateMatchesScalar) {
  Rng rng(0xC56'0004);
  for (std::size_t n : test_sizes(rng)) {
    for (std::size_t nsrcs : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{3}, std::size_t{5}, std::size_t{12}}) {
      const std::size_t off = kOffsets[rng.next_below(std::size(kOffsets))];
      std::vector<std::vector<std::uint8_t>> bufs(nsrcs);
      std::vector<const void*> srcs;
      for (auto& s : bufs) {
        s.resize(n + 2 * kSlack);
        rng.fill(s.data(), s.size());
        srcs.push_back(s.data() + off);
      }
      std::vector<std::uint8_t> dst(n + 2 * kSlack), want;
      rng.fill(dst.data(), dst.size());
      want = dst;
      ref().xor_accumulate(want.data() + off, srcs.data(), nsrcs, n);
      kernel().xor_accumulate(dst.data() + off, srcs.data(), nsrcs, n);
      ASSERT_EQ(dst, want) << "n=" << n << " nsrcs=" << nsrcs
                           << " off=" << off;
    }
  }
}

TEST_P(XorKernelDiff, XorAccumulateAliasedDstMatchesScalar) {
  Rng rng(0xC56'0005);
  for (std::size_t n : test_sizes(rng)) {
    for (std::size_t nsrcs : {std::size_t{1}, std::size_t{3}, std::size_t{6}}) {
      // dst aliases each source position in turn.
      for (std::size_t alias = 0; alias < nsrcs; ++alias) {
        std::vector<std::vector<std::uint8_t>> bufs(nsrcs);
        for (auto& s : bufs) {
          s.resize(n + 2 * kSlack);
          rng.fill(s.data(), s.size());
        }
        auto run = [&](const XorKernel& k, std::vector<std::vector<std::uint8_t>> copy) {
          std::vector<const void*> srcs;
          for (auto& s : copy) srcs.push_back(s.data());
          k.xor_accumulate(copy[alias].data(), srcs.data(), nsrcs, n);
          return copy[alias];
        };
        ASSERT_EQ(run(kernel(), bufs), run(ref(), bufs))
            << "n=" << n << " nsrcs=" << nsrcs << " alias=" << alias;
      }
    }
  }
}

TEST_P(XorKernelDiff, AllZeroMatchesScalar) {
  Rng rng(0xC56'0006);
  for (std::size_t n : test_sizes(rng)) {
    for (std::size_t off : kOffsets) {
      std::vector<std::uint8_t> buf(n + 2 * kSlack, 0);
      // Guard bytes are nonzero: all_zero must only inspect [off, off+n).
      for (std::size_t i = 0; i < off; ++i) buf[i] = 0xEE;
      for (std::size_t i = off + n; i < buf.size(); ++i) buf[i] = 0xEE;
      EXPECT_TRUE(kernel().all_zero(buf.data() + off, n));
      EXPECT_EQ(kernel().all_zero(buf.data() + off, n),
                ref().all_zero(buf.data() + off, n));
      // Flip one random bit inside the window; both must see it.
      const std::size_t pos = rng.next_below(n);
      buf[off + pos] = static_cast<std::uint8_t>(1u << rng.next_below(8));
      EXPECT_FALSE(kernel().all_zero(buf.data() + off, n))
          << "n=" << n << " off=" << off << " pos=" << pos;
      // The very last byte is where lazy tail handling slips.
      std::fill(buf.begin(), buf.end(), 0);
      buf[off + n - 1] = 0x80;
      EXPECT_FALSE(kernel().all_zero(buf.data() + off, n));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBuiltKernels, XorKernelDiff,
                         ::testing::ValuesIn(available_kernels().begin(),
                                             available_kernels().end()),
                         kernel_name);

TEST(XorKernelRegistry, ScalarIsAlwaysFirstAndComplete) {
  const auto kernels = available_kernels();
  ASSERT_FALSE(kernels.empty());
  EXPECT_EQ(kernels[0].isa, XorIsa::kScalar);
  for (const XorKernel& k : kernels) {
    EXPECT_NE(k.xor_into, nullptr) << k.name;
    EXPECT_NE(k.xor_to, nullptr) << k.name;
    EXPECT_NE(k.xor_delta, nullptr) << k.name;
    EXPECT_NE(k.xor_accumulate, nullptr) << k.name;
    EXPECT_NE(k.all_zero, nullptr) << k.name;
  }
}

TEST(XorKernelRegistry, ActiveKernelIsAvailable) {
  const XorKernel& active = active_kernel();
  bool found = false;
  for (const XorKernel& k : available_kernels()) {
    found |= k.name == std::string(active.name);
  }
  EXPECT_TRUE(found) << active.name;
}

// The public entry points must agree with whatever kernel is active —
// this pins the wrapper plumbing (span overloads included).
TEST(XorKernelRegistry, PublicApiDispatchesToActiveKernel) {
  Rng rng(0xC56'0007);
  const std::size_t n = 1537;  // odd, multi-strip
  std::vector<std::uint8_t> a(n), b(n), c(n);
  rng.fill(a.data(), n);
  rng.fill(b.data(), n);
  rng.fill(c.data(), n);

  std::vector<std::uint8_t> got(n), want(n);
  active_kernel().xor_to(want.data(), a.data(), b.data(), n);
  xor_to(std::span<std::uint8_t>(got), std::span<const std::uint8_t>(a),
         std::span<const std::uint8_t>(b));
  EXPECT_EQ(got, want);

  want = got;
  active_kernel().xor_delta(want.data(), a.data(), b.data(), n);
  xor_delta_into(std::span<std::uint8_t>(got), std::span<const std::uint8_t>(a),
                 std::span<const std::uint8_t>(b));
  EXPECT_EQ(got, want);

  const void* raw_srcs[] = {a.data(), b.data(), c.data()};
  active_kernel().xor_accumulate(want.data(), raw_srcs, 3, n);
  const std::uint8_t* srcs[] = {a.data(), b.data(), c.data()};
  xor_accumulate(std::span<std::uint8_t>(got),
                 std::span<const std::uint8_t* const>(srcs));
  EXPECT_EQ(got, want);

  std::vector<std::uint8_t> zero(n, 0);
  EXPECT_TRUE(all_zero(std::span<const std::uint8_t>(zero)));
  zero[n - 1] = 1;
  EXPECT_FALSE(all_zero(std::span<const std::uint8_t>(zero)));
}

}  // namespace
}  // namespace c56
