// Seeded stress test: concurrent application writers racing the
// conversion thread across the prime sizes the paper evaluates. Each
// writer owns a disjoint logical range and its own RNG and model map,
// so every interleaving with the converter (and with the other
// writers) is checkable without cross-thread coordination. The suite
// is sized to stay fast under ThreadSanitizer (CI runs it with
// -DC56_SANITIZE=tsan), which is where the converter/application
// locking discipline actually gets exercised.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <thread>
#include <vector>

#include "codes/registry.hpp"
#include "layout/raid.hpp"
#include "migration/controller.hpp"
#include "migration/disk_array.hpp"
#include "migration/journal.hpp"
#include "migration/monitor.hpp"
#include "migration/online.hpp"
#include "migration/stripe_cache.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "scrub/scrubber.hpp"
#include "util/rng.hpp"
#include "xorblk/xor.hpp"

namespace c56::mig {
namespace {

constexpr std::size_t kBlock = 64;

void fill_raid5(DiskArray& array, int m, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> block(kBlock), parity(kBlock);
  for (std::int64_t row = 0; row < array.blocks_per_disk(); ++row) {
    std::fill(parity.begin(), parity.end(), 0);
    const int pdisk = raid5_parity_disk(Raid5Flavor::kLeftAsymmetric,
                                        static_cast<int>(row % m), m);
    for (int d = 0; d < m; ++d) {
      if (d == pdisk) continue;
      rng.fill(block.data(), kBlock);
      std::ranges::copy(block, array.raw_block(d, row).begin());
      xor_into(parity.data(), block.data(), kBlock);
    }
    std::ranges::copy(parity, array.raw_block(pdisk, row).begin());
  }
}

void run_stress(int p, int writers, std::uint64_t seed) {
  SCOPED_TRACE("p=" + std::to_string(p) +
               " writers=" + std::to_string(writers));
  const int m = p - 1;
  // Similar array footprint across primes; always a multiple of p-1.
  const std::int64_t groups = p == 5 ? 24 : p == 7 ? 16 : 10;
  DiskArray array(m, groups * (p - 1), kBlock);
  fill_raid5(array, m, seed);

  OnlineMigrator mig(array, p);
  const std::int64_t logical = mig.logical_blocks();
  const std::int64_t share = logical / writers;
  ASSERT_GT(share, 0);

  std::vector<std::map<std::int64_t, Buffer>> models(
      static_cast<std::size_t>(writers));
  mig.start();
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(writers));
    for (int w = 0; w < writers; ++w) {
      threads.emplace_back([&, w] {
        // Writer w owns [w*share, (w+1)*share); the last one also takes
        // the remainder.
        const std::int64_t lo = w * share;
        const std::int64_t hi = w + 1 == writers ? logical : lo + share;
        Rng rng(seed + 1000 + static_cast<std::uint64_t>(w));
        auto& model = models[static_cast<std::size_t>(w)];
        Buffer buf(kBlock), got(kBlock);
        for (int i = 0; i < 500; ++i) {
          const std::int64_t l =
              lo + static_cast<std::int64_t>(rng.next_below(
                       static_cast<std::uint64_t>(hi - lo)));
          if (rng.next_below(3) != 0) {
            rng.fill(buf.data(), kBlock);
            ASSERT_TRUE(mig.write_block(l, buf.span()).ok());
            model[l] = buf;
          } else {
            ASSERT_TRUE(mig.read_block(l, got.span()).ok());
            if (auto it = model.find(l); it != model.end()) {
              EXPECT_TRUE(got == it->second) << "stale read at " << l;
            }
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  mig.finish();
  EXPECT_EQ(mig.state(), MigrationState::kDone);
  EXPECT_TRUE(mig.verify_raid6());

  // Full readback: every logical block is readable, and every block a
  // writer touched holds its last write.
  Buffer got(kBlock);
  for (std::int64_t l = 0; l < logical; ++l) {
    ASSERT_TRUE(mig.read_block(l, got.span()).ok()) << "logical " << l;
  }
  for (const auto& model : models) {
    for (const auto& [l, want] : model) {
      ASSERT_TRUE(mig.read_block(l, got.span()).ok());
      EXPECT_TRUE(got == want) << "lost write at " << l;
    }
  }
  const OnlineStats st = mig.stats();
  EXPECT_GT(st.app_writes, 0u);
}

TEST(OnlineStress, WritersRaceConversionP5) {
  for (int writers = 1; writers <= 4; ++writers) {
    run_stress(5, writers, 0xC56'0005 + static_cast<std::uint64_t>(writers));
  }
}

TEST(OnlineStress, WritersRaceConversionP7) {
  for (int writers = 1; writers <= 4; ++writers) {
    run_stress(7, writers, 0xC56'0007 + static_cast<std::uint64_t>(writers));
  }
}

TEST(OnlineStress, WritersRaceConversionP11) {
  for (int writers = 1; writers <= 4; ++writers) {
    run_stress(11, writers, 0xC56'000B + static_cast<std::uint64_t>(writers));
  }
}

TEST(OnlineStress, ObservabilityRacesEightWorkerConversion) {
  // The full observability stack live under real concurrency: eight
  // conversion workers emitting events and bumping registry counters, a
  // background MetricsSampler thread snapshotting the registry and
  // polling the MigrationMonitor as a probe, application I/O racing the
  // watermark, and the main thread reading snapshots/tails/status
  // lines. This is the TSan target for the event ring + sampler +
  // monitor locking discipline (CI reruns it under -DC56_SANITIZE=tsan
  // with C56_CONVERT_WORKERS=8).
  obs::set_metrics_enabled(true);
  obs::set_events_enabled(true);
  // Registry and log outlive everything attached to them.
  obs::Registry reg;
  obs::EventLog log(256);
  log.set_stderr_echo(false);
  const int p = 5, m = p - 1;
  const std::int64_t groups = 24;
  DiskArray array(m, groups * (p - 1), kBlock);
  fill_raid5(array, m, 0xC56'0B57);

  OnlineMigrator mig(array, p);
  MemoryCheckpointSink sink;
  mig.attach_journal(sink);
  mig.set_workers(8);

  log.attach_metrics(reg);
  array.attach_metrics(reg);
  mig.attach_metrics(reg);
  mig.attach_events(log, "obs-stress");

  MonitorConfig cfg;
  cfg.migration_id = "obs-stress";
  MigrationMonitor monitor(mig, reg, log, cfg);
  obs::MetricsSampler sampler(reg);
  sampler.set_interval_ms(1);
  sampler.add_probe([&monitor] { monitor.poll(); });
  sampler.start();

  mig.start();
  sampler.sample_once();  // at least one sample even on a fast box
  {
    Rng rng(0x0B5'57A7);
    Buffer buf(kBlock);
    const auto logical = static_cast<std::uint64_t>(mig.logical_blocks());
    while (mig.converting()) {
      const auto l = static_cast<std::int64_t>(rng.next_below(logical));
      if (rng.next_below(3) != 0) {
        rng.fill(buf.data(), kBlock);
        ASSERT_TRUE(mig.write_block(l, buf.span()).ok());
      } else {
        ASSERT_TRUE(mig.read_block(l, buf.span()).ok());
      }
      (void)reg.snapshot();
      (void)log.tail(4);
      (void)monitor.status_line();
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  mig.finish();
  sampler.stop();
  monitor.poll();

  EXPECT_EQ(mig.state(), MigrationState::kDone);
  EXPECT_TRUE(mig.verify_raid6());
  EXPECT_FALSE(monitor.stalled());
  EXPECT_GE(sampler.samples().size(), 1u);
  const obs::Snapshot snap = reg.snapshot();
  const obs::Metric* rows = snap.find("migration_rows_done");
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(rows->gauge, groups * (p - 1));
  obs::set_events_enabled(false);
  obs::set_metrics_enabled(false);
}

TEST(OnlineStress, PartialWritersScrubberRaceFourWorkerConversion) {
  // The sub-block delta plane under real concurrency: three partial
  // writers issuing randomly shaped write_range ops (1-byte pokes,
  // exact block-end suffixes, unaligned interiors, the odd full
  // block), a background Scrubber walking the groups through
  // scrub_group's trust domains, and a four-worker conversion — all on
  // one array. The per-stripe lock protocol means the scrubber must
  // never observe a half-applied delta: no stripe may ever scan dirty.
  // This is a TSan target (CI reruns the suite under -DC56_SANITIZE=tsan).
  const int p = 7, m = p - 1;
  const std::int64_t groups = 16;
  DiskArray array(m, groups * (p - 1), kBlock);
  fill_raid5(array, m, 0xC56'5B0C);

  OnlineMigrator mig(array, p);
  mig.set_workers(4);
  scrub::Scrubber scrubber(array, mig);
  scrubber.set_interval_ms(0);

  const std::int64_t logical = mig.logical_blocks();
  constexpr int kWriters = 3;
  const std::int64_t share = logical / kWriters;
  ASSERT_GT(share, 0);
  std::vector<std::map<std::int64_t, Buffer>> models(kWriters);

  scrubber.start();
  mig.start();
  {
    std::vector<std::thread> threads;
    threads.reserve(kWriters);
    for (int w = 0; w < kWriters; ++w) {
      threads.emplace_back([&, w] {
        const std::int64_t lo = w * share;
        const std::int64_t hi = w + 1 == kWriters ? logical : lo + share;
        Rng rng(0x5B0C + static_cast<std::uint64_t>(w));
        auto& model = models[static_cast<std::size_t>(w)];
        Buffer buf(kBlock), got(kBlock);
        for (int i = 0; i < 400; ++i) {
          const std::int64_t l =
              lo + static_cast<std::int64_t>(rng.next_below(
                       static_cast<std::uint64_t>(hi - lo)));
          auto it = model.find(l);
          if (it == model.end()) {
            // First touch: learn the block so the model stays exact.
            ASSERT_TRUE(mig.read_block(l, got.span()).ok());
            it = model.emplace(l, got).first;
          }
          if (rng.next_below(4) == 0) {
            ASSERT_TRUE(mig.read_block(l, got.span()).ok());
            EXPECT_TRUE(got == it->second) << "stale read at " << l;
            continue;
          }
          std::size_t off, len;
          switch (rng.next_below(4)) {
            case 0:
              off = static_cast<std::size_t>(rng.next_below(kBlock));
              len = 1;  // single byte
              break;
            case 1:
              off = static_cast<std::size_t>(rng.next_below(kBlock));
              len = kBlock - off;  // exact block-end suffix
              break;
            case 2:
              off = 0;
              len = kBlock;  // whole block through the range path
              break;
            default:
              off = static_cast<std::size_t>(rng.next_below(kBlock));
              len = 1 + static_cast<std::size_t>(rng.next_below(kBlock - off));
              break;
          }
          rng.fill(buf.data(), len);
          ASSERT_TRUE(
              mig.write_range(l, off, buf.span().subspan(0, len)).ok());
          std::copy_n(buf.data(), len, it->second.data() + off);
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  mig.finish();
  scrubber.stop();
  EXPECT_EQ(mig.state(), MigrationState::kDone);
  EXPECT_TRUE(mig.verify_raid6());

  Buffer got(kBlock);
  for (const auto& model : models) {
    for (const auto& [l, want] : model) {
      ASSERT_TRUE(mig.read_block(l, got.span()).ok());
      EXPECT_TRUE(got == want) << "lost sub-block write at " << l;
    }
  }
  const scrub::ScrubStats st = scrubber.stats();
  EXPECT_GT(st.stripes_scanned, 0u);
  EXPECT_EQ(st.stripes_dirty, 0u);   // no torn delta is ever visible
  EXPECT_EQ(st.cells_repaired, 0u);  // nothing to heal, ever
  EXPECT_GT(mig.stats().app_writes, 0u);
}

TEST(OnlineStress, StripeCacheConcurrentWritersReadersInvalidator) {
  // Hammer the sharded cache directly: writers fill canonical
  // per-(stripe, cell) patterns, readers check that any hit returns an
  // exact canonical block (a torn fill — half old, half new — can never
  // be observed), and an invalidator keeps the LRU lists churning. The
  // canonical pattern makes every byte self-identifying, so TSan and
  // the content check together cover both the locking and the copies.
  constexpr int kStripesTotal = 32;
  constexpr int kCells = 16;
  StripeCache cache(8, kCells, kBlock, /*shards=*/4);
  const auto canonical = [](std::int64_t stripe, int cell) {
    Buffer b(kBlock);
    for (std::size_t i = 0; i < kBlock; ++i) {
      b.data()[i] = static_cast<std::uint8_t>(stripe * 31 + cell * 7 + 1);
    }
    return b;
  };
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(0xF111 + static_cast<std::uint64_t>(w));
      for (int i = 0; i < 4000; ++i) {
        const auto s = static_cast<std::int64_t>(rng.next_below(kStripesTotal));
        const auto c = static_cast<int>(rng.next_below(kCells));
        cache.fill(s, c, canonical(s, c).span());
      }
    });
  }
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&, r] {
      Rng rng(0x2EAD + static_cast<std::uint64_t>(r));
      Buffer got(kBlock);
      for (int i = 0; i < 4000; ++i) {
        const auto s = static_cast<std::int64_t>(rng.next_below(kStripesTotal));
        const auto c = static_cast<int>(rng.next_below(kCells));
        if (cache.lookup(s, c, got.span())) {
          EXPECT_TRUE(got == canonical(s, c))
              << "torn block at stripe " << s << " cell " << c;
        }
      }
    });
  }
  threads.emplace_back([&] {
    Rng rng(0x1BAD);
    for (int i = 0; i < 2000; ++i) {
      if (rng.next_below(64) == 0) {
        cache.invalidate_all();
      } else {
        cache.invalidate(static_cast<std::int64_t>(
            rng.next_below(kStripesTotal)));
      }
    }
  });
  for (std::thread& t : threads) t.join();
  const auto st = cache.stats();
  EXPECT_GT(st.insertions, 0u);
  EXPECT_GT(st.hits + st.misses, 0u);
}

TEST(OnlineStress, CachedControllerConcurrentDisjointWriters) {
  // The controller itself is documented single-writer per cell, but
  // disjoint-stripe writers through one shared cache-enabled controller
  // must neither corrupt the array nor poison each other's cache lines.
  auto code = make_code(CodeId::kCode56, 5);
  const std::int64_t stripes = 8;
  DiskArray array(code->cols(), stripes * code->rows(), kBlock);
  ArrayController ctrl(array, std::move(code));
  ctrl.set_cache_stripes(4);
  const std::int64_t per_stripe = ctrl.logical_blocks() / stripes;
  constexpr int kWriters = 4;
  std::vector<std::map<std::int64_t, Buffer>> models(kWriters);
  {
    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; ++w) {
      threads.emplace_back([&, w] {
        // Writer w owns stripes [w*2, w*2+2): ranged writes never cross
        // into another writer's stripes, so per-stripe planner state
        // (and the cache lines it fills) are contended only inside the
        // cache, which is the part under test.
        const std::int64_t lo = w * 2 * per_stripe;
        const std::int64_t hi = lo + 2 * per_stripe;
        Rng rng(0xD15C + static_cast<std::uint64_t>(w));
        auto& model = models[static_cast<std::size_t>(w)];
        Buffer buf(static_cast<std::size_t>(per_stripe) * kBlock);
        Buffer got(kBlock);
        for (int i = 0; i < 200; ++i) {
          const std::int64_t count = 1 + static_cast<std::int64_t>(
                                         rng.next_below(static_cast<std::uint64_t>(
                                             per_stripe)));
          const std::int64_t l =
              lo + static_cast<std::int64_t>(rng.next_below(
                       static_cast<std::uint64_t>(hi - lo - count + 1)));
          const auto bytes = static_cast<std::size_t>(count) * kBlock;
          if (rng.next_below(3) != 0) {
            rng.fill(buf.data(), bytes);
            ctrl.write(l, count, buf.span().subspan(0, bytes));
            for (std::int64_t k = 0; k < count; ++k) {
              model[l + k] = Buffer(kBlock);
              std::copy_n(buf.data() + k * kBlock, kBlock,
                          model[l + k].data());
            }
          } else {
            ctrl.read(l, got.span());
            if (auto it = model.find(l); it != model.end()) {
              EXPECT_TRUE(got == it->second) << "stale read at " << l;
            }
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  EXPECT_TRUE(ctrl.scrub().empty());
  Buffer got(kBlock);
  for (const auto& model : models) {
    for (const auto& [l, want] : model) {
      ctrl.read(l, got.span());
      EXPECT_TRUE(got == want) << "lost write at " << l;
    }
  }
}

}  // namespace
}  // namespace c56::mig
