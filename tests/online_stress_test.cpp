// Seeded stress test: concurrent application writers racing the
// conversion thread across the prime sizes the paper evaluates. Each
// writer owns a disjoint logical range and its own RNG and model map,
// so every interleaving with the converter (and with the other
// writers) is checkable without cross-thread coordination. The suite
// is sized to stay fast under ThreadSanitizer (CI runs it with
// -DC56_SANITIZE=tsan), which is where the converter/application
// locking discipline actually gets exercised.

#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "layout/raid.hpp"
#include "migration/disk_array.hpp"
#include "migration/online.hpp"
#include "util/rng.hpp"
#include "xorblk/xor.hpp"

namespace c56::mig {
namespace {

constexpr std::size_t kBlock = 64;

void fill_raid5(DiskArray& array, int m, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> block(kBlock), parity(kBlock);
  for (std::int64_t row = 0; row < array.blocks_per_disk(); ++row) {
    std::fill(parity.begin(), parity.end(), 0);
    const int pdisk = raid5_parity_disk(Raid5Flavor::kLeftAsymmetric,
                                        static_cast<int>(row % m), m);
    for (int d = 0; d < m; ++d) {
      if (d == pdisk) continue;
      rng.fill(block.data(), kBlock);
      std::ranges::copy(block, array.raw_block(d, row).begin());
      xor_into(parity.data(), block.data(), kBlock);
    }
    std::ranges::copy(parity, array.raw_block(pdisk, row).begin());
  }
}

void run_stress(int p, int writers, std::uint64_t seed) {
  SCOPED_TRACE("p=" + std::to_string(p) +
               " writers=" + std::to_string(writers));
  const int m = p - 1;
  // Similar array footprint across primes; always a multiple of p-1.
  const std::int64_t groups = p == 5 ? 24 : p == 7 ? 16 : 10;
  DiskArray array(m, groups * (p - 1), kBlock);
  fill_raid5(array, m, seed);

  OnlineMigrator mig(array, p);
  const std::int64_t logical = mig.logical_blocks();
  const std::int64_t share = logical / writers;
  ASSERT_GT(share, 0);

  std::vector<std::map<std::int64_t, Buffer>> models(
      static_cast<std::size_t>(writers));
  mig.start();
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(writers));
    for (int w = 0; w < writers; ++w) {
      threads.emplace_back([&, w] {
        // Writer w owns [w*share, (w+1)*share); the last one also takes
        // the remainder.
        const std::int64_t lo = w * share;
        const std::int64_t hi = w + 1 == writers ? logical : lo + share;
        Rng rng(seed + 1000 + static_cast<std::uint64_t>(w));
        auto& model = models[static_cast<std::size_t>(w)];
        Buffer buf(kBlock), got(kBlock);
        for (int i = 0; i < 500; ++i) {
          const std::int64_t l =
              lo + static_cast<std::int64_t>(rng.next_below(
                       static_cast<std::uint64_t>(hi - lo)));
          if (rng.next_below(3) != 0) {
            rng.fill(buf.data(), kBlock);
            ASSERT_TRUE(mig.write_block(l, buf.span()).ok());
            model[l] = buf;
          } else {
            ASSERT_TRUE(mig.read_block(l, got.span()).ok());
            if (auto it = model.find(l); it != model.end()) {
              EXPECT_TRUE(got == it->second) << "stale read at " << l;
            }
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  mig.finish();
  EXPECT_EQ(mig.state(), MigrationState::kDone);
  EXPECT_TRUE(mig.verify_raid6());

  // Full readback: every logical block is readable, and every block a
  // writer touched holds its last write.
  Buffer got(kBlock);
  for (std::int64_t l = 0; l < logical; ++l) {
    ASSERT_TRUE(mig.read_block(l, got.span()).ok()) << "logical " << l;
  }
  for (const auto& model : models) {
    for (const auto& [l, want] : model) {
      ASSERT_TRUE(mig.read_block(l, got.span()).ok());
      EXPECT_TRUE(got == want) << "lost write at " << l;
    }
  }
  const OnlineStats st = mig.stats();
  EXPECT_GT(st.app_writes, 0u);
}

TEST(OnlineStress, WritersRaceConversionP5) {
  for (int writers = 1; writers <= 4; ++writers) {
    run_stress(5, writers, 0xC56'0005 + static_cast<std::uint64_t>(writers));
  }
}

TEST(OnlineStress, WritersRaceConversionP7) {
  for (int writers = 1; writers <= 4; ++writers) {
    run_stress(7, writers, 0xC56'0007 + static_cast<std::uint64_t>(writers));
  }
}

TEST(OnlineStress, WritersRaceConversionP11) {
  for (int writers = 1; writers <= 4; ++writers) {
    run_stress(11, writers, 0xC56'000B + static_cast<std::uint64_t>(writers));
  }
}

}  // namespace
}  // namespace c56::mig
