// Golden-vector test for the paper's worked Code 5-6 example (p = 5):
// every parity byte of a fully determined stripe is pinned to
// hand-computed constants, including the worked diagonal identity
// C_{1,4} = C_{0,0} xor C_{3,2} xor C_{2,3} from Section III. A change
// in chain construction, encode order, or the XOR kernels that altered
// any stored byte fails here with the exact cell named.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "codes/code56.hpp"
#include "layout/stripe.hpp"
#include "xorblk/buffer.hpp"
#include "xorblk/xor.hpp"

namespace c56 {
namespace {

constexpr std::size_t kBlock = 2;

// Data cell (r, c) of the p=5 square is filled with the byte
// 7*(4r+c)+1, repeated as {v, v^0xFF} over the 2-byte block. The
// horizontal parities live on the anti-diagonal (r, 3-r).
std::uint8_t data_byte(int r, int c) {
  return static_cast<std::uint8_t>(7 * (4 * r + c) + 1);
}

Buffer golden_stripe(const Code56& code) {
  Buffer buf(static_cast<std::size_t>(code.cell_count()) * kBlock);
  StripeView s = StripeView::over(buf, code.rows(), code.cols(), kBlock);
  for (int r = 0; r < code.rows(); ++r) {
    for (int c = 0; c < code.cols(); ++c) {
      if (code.kind({r, c}) != CellKind::kData) continue;
      auto blk = s.block({r, c});
      blk[0] = data_byte(r, c);
      blk[1] = static_cast<std::uint8_t>(data_byte(r, c) ^ 0xFF);
    }
  }
  code.encode(s);
  return buf;
}

void expect_block(StripeView s, Cell c, std::uint8_t b0, std::uint8_t b1) {
  const auto blk = s.block(c);
  EXPECT_EQ(blk[0], b0) << "cell (" << c.row << "," << c.col << ") byte 0";
  EXPECT_EQ(blk[1], b1) << "cell (" << c.row << "," << c.col << ") byte 1";
}

TEST(Code56Golden, HorizontalParityBytesP5) {
  const Code56 code(5);
  Buffer buf = golden_stripe(code);
  StripeView s = StripeView::over(buf, 4, 5, kBlock);
  // H(i) sits at (i, 3-i); second byte folds three 0xFF complements,
  // so it is the first byte's complement.
  expect_block(s, {0, 3}, 0x06, 0xF9);
  expect_block(s, {1, 2}, 0x0B, 0xF4);
  expect_block(s, {2, 1}, 0x30, 0xCF);
  expect_block(s, {3, 0}, 0x55, 0xAA);
}

TEST(Code56Golden, DiagonalParityBytesP5) {
  const Code56 code(5);
  Buffer buf = golden_stripe(code);
  StripeView s = StripeView::over(buf, 4, 5, kBlock);
  expect_block(s, {0, 4}, 0x29, 0xD6);
  expect_block(s, {1, 4}, 0x2C, 0xD3);
  expect_block(s, {2, 4}, 0x7F, 0x80);
  expect_block(s, {3, 4}, 0x12, 0xED);
  EXPECT_TRUE(code.verify(s));
}

// The worked example spelled out: C_{1,4} = C_{0,0} ^ C_{3,2} ^ C_{2,3}.
TEST(Code56Golden, WorkedExampleIdentityC14) {
  const Code56 code(5);

  // Structurally: the diagonal chain anchored at (1,4) has exactly
  // those three inputs.
  const ParityChain* c14 = nullptr;
  for (const ParityChain& ch : code.chains()) {
    if (ch.parity == Cell{1, 4}) c14 = &ch;
  }
  ASSERT_NE(c14, nullptr);
  ASSERT_EQ(c14->inputs.size(), 3u);
  EXPECT_NE(std::ranges::find(c14->inputs, Cell{0, 0}), c14->inputs.end());
  EXPECT_NE(std::ranges::find(c14->inputs, Cell{3, 2}), c14->inputs.end());
  EXPECT_NE(std::ranges::find(c14->inputs, Cell{2, 3}), c14->inputs.end());

  // Numerically, against the hard-coded fill: 0x01 ^ 0x63 ^ 0x4E = 0x2C.
  EXPECT_EQ(data_byte(0, 0), 0x01);
  EXPECT_EQ(data_byte(3, 2), 0x63);
  EXPECT_EQ(data_byte(2, 3), 0x4E);
  EXPECT_EQ(data_byte(0, 0) ^ data_byte(3, 2) ^ data_byte(2, 3), 0x2C);

  // And on the encoded stripe itself, via the public XOR entry points.
  Buffer buf = golden_stripe(code);
  StripeView s = StripeView::over(buf, 4, 5, kBlock);
  Buffer acc(kBlock);
  const std::uint8_t* srcs[] = {s.block({0, 0}).data(), s.block({3, 2}).data(),
                                s.block({2, 3}).data()};
  xor_accumulate(acc.span(), srcs);
  EXPECT_TRUE(std::ranges::equal(acc.span(), s.block({1, 4})));
}

}  // namespace
}  // namespace c56
