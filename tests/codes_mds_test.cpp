// Exhaustive MDS certification for every code in the registry: for each
// prime p, every single column erasure and every pair of column erasures
// must decode, and the decoded stripe must match the original
// byte-for-byte. Both the code's own decode_columns (specialized where
// provided) and the generic GF(2) path are exercised.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "codes/registry.hpp"
#include "util/rng.hpp"
#include "xorblk/buffer.hpp"

namespace c56 {
namespace {

constexpr std::size_t kBlock = 16;

struct Param {
  CodeId id;
  int p;
};

void PrintTo(const Param& p, std::ostream* os) {
  *os << to_string(p.id) << "_p" << p.p;
}

class MdsTest : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    code_ = make_code(GetParam().id, GetParam().p);
    original_ = Buffer(static_cast<std::size_t>(code_->cell_count()) * kBlock);
    Rng rng(0xC0DE56);
    // Randomize data cells, then encode.
    StripeView v = view(original_);
    for (int r = 0; r < code_->rows(); ++r) {
      for (int c = 0; c < code_->cols(); ++c) {
        if (code_->kind({r, c}) == CellKind::kData) {
          auto blk = v.block({r, c});
          rng.fill(blk.data(), blk.size());
        }
      }
    }
    code_->encode(v);
    ASSERT_TRUE(code_->verify(v));
  }

  StripeView view(Buffer& b) const {
    return StripeView::over(b, code_->rows(), code_->cols(), kBlock);
  }

  /// Corrupt the given columns, decode, compare with the original.
  void check_decode(std::vector<int> cols, bool generic) {
    Buffer work = original_;
    StripeView v = view(work);
    Rng junk(99);
    for (int c : cols) {
      for (int r = 0; r < code_->rows(); ++r) {
        auto blk = v.block({r, c});
        junk.fill(blk.data(), blk.size());
      }
    }
    std::optional<DecodeStats> stats =
        generic ? code_->decode_columns_generic(v, cols)
                : code_->decode_columns(v, cols);
    ASSERT_TRUE(stats.has_value())
        << "undecodable columns " << ::testing::PrintToString(cols);
    EXPECT_TRUE(work == original_)
        << "wrong reconstruction for columns "
        << ::testing::PrintToString(cols);
  }

  std::unique_ptr<ErasureCode> code_;
  Buffer original_;
};

TEST_P(MdsTest, EncodeProducesVerifiableStripe) {
  StripeView v = view(original_);
  EXPECT_TRUE(code_->verify(v));
  // Flipping any single data byte must break verification.
  for (int r = 0; r < code_->rows(); ++r) {
    for (int c = 0; c < code_->cols(); ++c) {
      if (code_->kind({r, c}) != CellKind::kData) continue;
      v.block({r, c})[0] ^= 1;
      EXPECT_FALSE(code_->verify(v)) << "r=" << r << " c=" << c;
      v.block({r, c})[0] ^= 1;
      return;  // one probe per stripe keeps runtime bounded
    }
  }
}

TEST_P(MdsTest, AllSingleColumnErasuresDecode) {
  for (int c = 0; c < code_->cols(); ++c) check_decode({c}, /*generic=*/false);
}

TEST_P(MdsTest, AllDoubleColumnErasuresDecodeSpecialized) {
  for (int c1 = 0; c1 < code_->cols(); ++c1) {
    for (int c2 = c1 + 1; c2 < code_->cols(); ++c2) {
      check_decode({c1, c2}, /*generic=*/false);
    }
  }
}

TEST_P(MdsTest, AllDoubleColumnErasuresDecodeGeneric) {
  for (int c1 = 0; c1 < code_->cols(); ++c1) {
    for (int c2 = c1 + 1; c2 < code_->cols(); ++c2) {
      check_decode({c1, c2}, /*generic=*/true);
    }
  }
}

TEST_P(MdsTest, TripleColumnErasureIsRejected) {
  // A distance-3 code cannot decode three lost columns.
  Buffer work = original_;
  StripeView v = view(work);
  const std::vector<int> cols{0, 1, 2};
  EXPECT_FALSE(code_->can_decode_columns(cols));
  EXPECT_FALSE(code_->decode_columns_generic(v, cols).has_value());
}

TEST_P(MdsTest, StorageEfficiencyIsMdsOptimal) {
  // (n-2)/n of the physical cells hold data: the MDS bound for
  // two-fault-tolerant arrays (virtual-disk variants are tested
  // separately in code56_test).
  const int n = code_->cols();
  const int cells = code_->cell_count() - code_->virtual_cell_count();
  EXPECT_EQ(code_->data_cell_count() * n, cells * (n - 2));
}

std::vector<Param> all_params() {
  std::vector<Param> out;
  for (CodeId id : all_code_ids()) {
    for (int p : {5, 7, 11, 13}) out.push_back({id, p});
  }
  // A couple of larger instances for the paper's own code.
  out.push_back({CodeId::kCode56, 17});
  out.push_back({CodeId::kCode56, 19});
  out.push_back({CodeId::kCode56, 23});
  out.push_back({CodeId::kRdp, 17});
  out.push_back({CodeId::kEvenOdd, 17});
  return out;
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  std::string n = to_string(info.param.id);
  for (char& c : n) {
    if (c == ' ' || c == '-') c = '_';
  }
  return n + "_p" + std::to_string(info.param.p);
}

INSTANTIATE_TEST_SUITE_P(Zoo, MdsTest, ::testing::ValuesIn(all_params()),
                         param_name);

}  // namespace
}  // namespace c56
