// Lockdown of the batched stripe-aware controller I/O path against the
// per-block reference: the ranged read/write planner (full-stripe
// encode fast path, coalesced partial-stripe deltas, per-column run
// batching) must leave byte-identical array contents for every
// geometry, failure state and cache setting, and the full-stripe fast
// path must issue zero pre-reads. Also pins the vectored DiskArray
// primitives the planner is built on, including their per-block fault
// semantics.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "codes/registry.hpp"
#include "migration/controller.hpp"
#include "migration/fault.hpp"
#include "util/rng.hpp"
#include "xorblk/xor.hpp"

namespace c56::mig {
namespace {

constexpr std::size_t kBlock = 64;
constexpr std::int64_t kStripes = 6;

struct Param {
  CodeId id;
  int p;
  int failures;    // 0, 1 or 2 disks failed on both sides
  bool cache;      // stripe cache enabled on the batched side
};

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  std::string n = to_string(info.param.id);
  for (char& c : n) {
    if (c == ' ' || c == '-') c = '_';
  }
  return n + "_p" + std::to_string(info.param.p) + "_f" +
         std::to_string(info.param.failures) +
         (info.param.cache ? "_cached" : "_nocache");
}

/// Two controllers over two arrays with identical contents: `batched_`
/// takes ranged ops, `ref_` replays them block by block.
class BatchDifferentialTest : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    const Param& prm = GetParam();
    auto code_a = make_code(prm.id, prm.p);
    auto code_b = make_code(prm.id, prm.p);
    const int disks = code_a->cols();
    const std::int64_t bpd = kStripes * code_a->rows();
    batched_array_ = std::make_unique<DiskArray>(disks, bpd, kBlock);
    ref_array_ = std::make_unique<DiskArray>(disks, bpd, kBlock);
    batched_ = std::make_unique<ArrayController>(*batched_array_,
                                                 std::move(code_a));
    ref_ = std::make_unique<ArrayController>(*ref_array_, std::move(code_b));
    if (prm.cache) batched_->set_cache_stripes(3);  // smaller than kStripes
    Rng rng(0xBA7C4ED);
    Buffer buf(kBlock);
    for (std::int64_t l = 0; l < batched_->logical_blocks(); ++l) {
      rng.fill(buf.data(), kBlock);
      batched_->write(l, buf.span());
      ref_->write(l, buf.span());
    }
    if (prm.failures >= 1) {
      batched_->fail_disk(1);
      ref_->fail_disk(1);
    }
    if (prm.failures >= 2) {
      batched_->fail_disk(3);
      ref_->fail_disk(3);
    }
  }

  void expect_arrays_identical() {
    for (int d = 0; d < batched_array_->disks(); ++d) {
      const auto a = batched_array_->raw_blocks(
          d, 0, batched_array_->blocks_per_disk());
      const auto b =
          ref_array_->raw_blocks(d, 0, ref_array_->blocks_per_disk());
      ASSERT_EQ(a.size(), b.size());
      EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()))
          << "disk " << d << " diverged";
    }
  }

  std::unique_ptr<DiskArray> batched_array_, ref_array_;
  std::unique_ptr<ArrayController> batched_, ref_;
};

TEST_P(BatchDifferentialTest, MixedRangedWorkloadStaysByteIdentical) {
  Rng rng(0x5EED + GetParam().p);
  const std::int64_t total = batched_->logical_blocks();
  const auto per_stripe =
      total / kStripes;  // data cells per stripe, for range shaping
  Buffer data(static_cast<std::size_t>(total) * kBlock);
  Buffer got_b(static_cast<std::size_t>(total) * kBlock);
  Buffer got_r(kBlock);
  for (int op = 0; op < 200; ++op) {
    // Mix of spans: single blocks, sub-stripe runs, exact stripes and
    // multi-stripe sweeps (the interesting planner boundaries).
    std::int64_t count;
    switch (rng.next_below(4)) {
      case 0:
        count = 1;
        break;
      case 1:
        count = 1 + static_cast<std::int64_t>(rng.next_below(
                        static_cast<std::uint64_t>(per_stripe)));
        break;
      case 2:
        count = per_stripe;
        break;
      default:
        count = per_stripe + 1 +
                static_cast<std::int64_t>(rng.next_below(
                    static_cast<std::uint64_t>(2 * per_stripe)));
        break;
    }
    count = std::min(count, total);
    const auto logical = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(total - count + 1)));
    const auto bytes = static_cast<std::size_t>(count) * kBlock;
    if (rng.next_below(3) == 0) {  // ranged read, checked per block
      batched_->read(logical, count, data.span().subspan(0, bytes));
      for (std::int64_t k = 0; k < count; ++k) {
        ref_->read(logical + k, got_r.span());
        ASSERT_TRUE(std::equal(got_r.span().begin(), got_r.span().end(),
                               data.data() + k * kBlock))
            << "read diverged at logical " << logical + k;
      }
    } else {
      rng.fill(data.data(), bytes);
      batched_->write(logical, count, data.span().subspan(0, bytes));
      for (std::int64_t k = 0; k < count; ++k) {
        ref_->write(logical + k, data.span().subspan(
                                     static_cast<std::size_t>(k) * kBlock,
                                     kBlock));
      }
    }
  }
  expect_arrays_identical();
  if (GetParam().failures == 0) {
    EXPECT_TRUE(batched_->scrub().empty());
    EXPECT_TRUE(ref_->scrub().empty());
  }
  // A final full-device ranged read must agree with the reference too
  // (exercises degraded reconstruction through the batched path).
  batched_->read(0, total, got_b.span());
  for (std::int64_t l = 0; l < total; ++l) {
    ref_->read(l, got_r.span());
    ASSERT_TRUE(std::equal(got_r.span().begin(), got_r.span().end(),
                           got_b.data() + l * kBlock))
        << "final read diverged at logical " << l;
  }
}

std::vector<Param> all_params() {
  std::vector<Param> out;
  for (int p : {5, 7, 11}) {
    for (int f : {0, 1, 2}) {
      for (bool cache : {false, true}) {
        out.push_back({CodeId::kCode56, p, f, cache});
      }
    }
  }
  // Two structurally different codes keep the planner honest about
  // parity placement (X-Code's parities live in rows, not columns).
  out.push_back({CodeId::kRdp, 5, 1, false});
  out.push_back({CodeId::kXCode, 5, 1, true});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Zoo, BatchDifferentialTest,
                         ::testing::ValuesIn(all_params()), param_name);

/// The full-stripe fast path regenerates parity with encode() — by
/// construction it must not read anything, and each touched column must
/// be written as one sequential run.
TEST(BatchPlanner, FullStripeWriteIssuesNoReads) {
  for (int p : {5, 7}) {
    auto code = make_code(CodeId::kCode56, p);
    const int disks = code->cols();
    const int rows = code->rows();
    DiskArray array(disks, 4LL * rows, kBlock);
    ArrayController ctrl(array, std::move(code));
    const std::int64_t per_stripe = ctrl.logical_blocks() / 4;
    Buffer data(static_cast<std::size_t>(per_stripe) * kBlock);
    Rng rng(p);
    rng.fill(data.data(), data.size());

    const std::uint64_t r0 = array.total_reads();
    const std::uint64_t w0 = array.total_write_runs();
    ctrl.write(per_stripe, per_stripe, data.span());  // stripe #1 exactly
    EXPECT_EQ(array.total_reads(), r0) << "p=" << p;
    // One sequential run per physical column.
    EXPECT_EQ(array.total_write_runs() - w0, static_cast<std::uint64_t>(disks))
        << "p=" << p;
    EXPECT_TRUE(ctrl.scrub().empty()) << "p=" << p;

    // A partial stripe, by contrast, must pre-read something.
    const std::uint64_t r1 = array.total_reads();
    ctrl.write(0, per_stripe - 1, data.span().subspan(0, (per_stripe - 1) *
                                                             kBlock));
    EXPECT_GT(array.total_reads(), r1) << "p=" << p;
    EXPECT_TRUE(ctrl.scrub().empty()) << "p=" << p;
  }
}

/// A full-row ranged write covers every input of the row's horizontal
/// parity, so that parity is computed directly — the only pre-reads are
/// for the diagonal parities' missing inputs, never the parity blocks
/// of fully covered chains.
TEST(BatchPlanner, FullRowWriteSkipsCoveredParityPreread) {
  auto code = make_code(CodeId::kCode56, 5);
  const int rows = code->rows();
  DiskArray array(code->cols(), 2LL * rows, kBlock);
  ArrayController ctrl(array, std::move(code));
  const std::int64_t per_stripe = ctrl.logical_blocks() / 2;
  const std::int64_t per_row = per_stripe / rows;
  Buffer data(static_cast<std::size_t>(per_stripe) * kBlock);
  Rng rng(11);
  rng.fill(data.data(), data.size());
  ctrl.write(0, per_stripe, data.span());  // known-consistent stripe 0

  // Row 0 of stripe 0: logical [0, per_row). Its horizontal parity is
  // fully covered; a per-block replay would pre-read it once per block.
  DiskArray ref_array(array.disks(), array.blocks_per_disk(), kBlock);
  auto ref_code = make_code(CodeId::kCode56, 5);
  ArrayController ref(ref_array, std::move(ref_code));
  ref.write(0, per_stripe, data.span());

  rng.fill(data.data(), static_cast<std::size_t>(per_row) * kBlock);
  const std::uint64_t r0 = array.total_reads();
  const std::uint64_t rr0 = ref_array.total_reads();
  ctrl.write(0, per_row, data.span().subspan(0, per_row * kBlock));
  for (std::int64_t l = 0; l < per_row; ++l) {
    ref.write(l, data.span().subspan(static_cast<std::size_t>(l) * kBlock,
                                     kBlock));
  }
  EXPECT_LT(array.total_reads() - r0, ref_array.total_reads() - rr0);
  EXPECT_TRUE(ctrl.scrub().empty());
  for (int d = 0; d < array.disks(); ++d) {
    const auto a = array.raw_blocks(d, 0, array.blocks_per_disk());
    const auto b = ref_array.raw_blocks(d, 0, ref_array.blocks_per_disk());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin())) << "disk " << d;
  }
}

/// Vectored DiskArray primitives: counter semantics and per-block fault
/// behaviour of read_blocks/write_blocks.
TEST(VectoredIo, CountsBlocksButOneRun) {
  DiskArray a(2, 16, kBlock);
  Buffer buf(8 * kBlock);
  EXPECT_TRUE(a.write_blocks(0, 2, 8, buf.span()).ok());
  EXPECT_EQ(a.writes(0), 8u);
  EXPECT_EQ(a.write_runs(0), 1u);
  EXPECT_TRUE(a.read_blocks(0, 2, 8, buf.span()).ok());
  EXPECT_EQ(a.reads(0), 8u);
  EXPECT_EQ(a.read_runs(0), 1u);
  // Single-block ops count one run each.
  Buffer one(kBlock);
  a.read_block(0, 0, one.span());
  EXPECT_EQ(a.read_runs(0), 2u);
  EXPECT_EQ(a.total_read_runs(), 2u);
  // Bounds are rejected before any transfer.
  EXPECT_THROW(a.read_blocks(0, 12, 8, buf.span()), std::out_of_range);
  EXPECT_THROW(a.read_blocks(0, 0, 0, buf.span().subspan(0, 0)),
               std::out_of_range);
  EXPECT_THROW(a.read_blocks(0, 0, 4, buf.span()), std::invalid_argument);
}

TEST(VectoredIo, BadBlockAbortsRunAtItsCoordinates) {
  DiskArray a(1, 16, kBlock);
  FaultPlan plan;
  plan.bad_blocks.push_back({0, 5});
  a.set_fault_plan(plan);
  Buffer buf(8 * kBlock);
  const IoResult r = a.read_blocks(0, 2, 8, buf.span());
  EXPECT_EQ(r.status, IoStatus::kSectorError);
  EXPECT_EQ(r.disk, 0);
  EXPECT_EQ(r.block, 5);
  EXPECT_EQ(a.reads(0), 8u);  // the run is still charged in full
}

TEST(VectoredIo, FailAfterCrossesMidRun) {
  DiskArray a(1, 16, kBlock);
  FaultPlan plan;
  plan.disk_failures.push_back({0, 4});  // fails after 4 counted I/Os
  a.set_fault_plan(plan);
  Buffer buf(8 * kBlock);
  Rng rng(1);
  rng.fill(buf.data(), buf.size());
  const IoResult r = a.write_blocks(0, 0, 8, buf.span());
  EXPECT_EQ(r.status, IoStatus::kDiskFailed);
  EXPECT_EQ(r.block, 4);  // first block past the threshold
  EXPECT_TRUE(a.disk_failed(0));
  // The four blocks before the crossing were persisted.
  for (std::int64_t b = 0; b < 4; ++b) {
    const auto want = buf.block(static_cast<std::size_t>(b), kBlock);
    const auto got = a.raw_block(0, b);
    EXPECT_TRUE(std::equal(want.begin(), want.end(), got.begin())) << b;
  }
  // An already-failed disk transfers nothing, even mid-run.
  const IoResult r2 = a.read_blocks(0, 0, 8, buf.span());
  EXPECT_EQ(r2.status, IoStatus::kDiskFailed);
  EXPECT_EQ(r2.block, 0);
}

// Ranged-request edge cases: the bounds check must accept ranges that
// end exactly at logical_blocks(), treat count == 0 as a validated
// no-op (no planner invocation, no disk I/O), and reject counts whose
// logical + count would overflow std::int64_t instead of wrapping.
TEST(BatchPlanner, RangedEdgeCases) {
  auto code = make_code(CodeId::kCode56, 5);
  DiskArray array(code->cols(), 2LL * code->rows(), kBlock);
  ArrayController ctrl(array, std::move(code));
  const std::int64_t logical = ctrl.logical_blocks();
  Buffer buf(static_cast<std::size_t>(logical) * kBlock);
  Rng rng(5);
  rng.fill(buf.data(), buf.size());

  // Exact-end ranges are valid on both paths.
  ctrl.write(0, logical, buf.span());
  ctrl.read(0, logical, buf.span());
  ctrl.write(logical - 1, 1, {buf.data(), kBlock});
  ctrl.read(logical - 1, 1, {buf.data(), kBlock});

  // count == 0 anywhere in [0, logical] is a no-op: no disk traffic,
  // not even for an empty range starting at the very end.
  const std::uint64_t r0 = array.total_reads(), w0 = array.total_writes();
  ctrl.read(0, 0, {buf.data(), 0});
  ctrl.write(0, 0, {buf.data(), 0});
  ctrl.read(logical, 0, {buf.data(), 0});
  ctrl.write(logical, 0, {buf.data(), 0});
  EXPECT_EQ(array.total_reads(), r0);
  EXPECT_EQ(array.total_writes(), w0);

  // Out-of-range and overflowing requests throw instead of wrapping.
  const auto max64 = std::numeric_limits<std::int64_t>::max();
  EXPECT_THROW(ctrl.read(0, logical + 1, buf.span()), std::out_of_range);
  EXPECT_THROW(ctrl.read(1, logical, buf.span()), std::out_of_range);
  EXPECT_THROW(ctrl.read(logical + 1, 0, {buf.data(), 0}),
               std::out_of_range);
  EXPECT_THROW(ctrl.read(1, max64, buf.span()), std::out_of_range);
  EXPECT_THROW(ctrl.write(1, max64, buf.span()), std::out_of_range);
  EXPECT_THROW(ctrl.read(max64, max64, buf.span()), std::out_of_range);
  EXPECT_THROW(ctrl.read(-1, 1, buf.span()), std::out_of_range);
  EXPECT_THROW(ctrl.read(0, -1, buf.span()), std::out_of_range);
  EXPECT_THROW(ctrl.write(-1, 1, buf.span()), std::out_of_range);
  EXPECT_THROW(ctrl.write(0, -1, buf.span()), std::out_of_range);
}

// Sub-block write_range edge cases: zero-length ranges are validated
// no-ops, and offsets/lengths that leave the block — including values
// that would overflow the offset+len sum — throw instead of wrapping.
// Batch entries are validated up front: one bad entry aborts the whole
// batch before any disk I/O.
TEST(SubBlockPlane, RangeEdgeCases) {
  auto code = make_code(CodeId::kCode56, 5);
  DiskArray array(code->cols(), 2LL * code->rows(), kBlock);
  ArrayController ctrl(array, std::move(code));
  const std::int64_t logical = ctrl.logical_blocks();
  Buffer buf(kBlock);
  Rng rng(6);
  rng.fill(buf.data(), buf.size());
  const auto bs = static_cast<std::int64_t>(kBlock);

  // Exact-end ranges are valid.
  ctrl.write_range(0, bs - 1, buf.span().subspan(0, 1));
  ctrl.write_range(logical - 1, 0, buf.span());
  ctrl.read_range(0, bs - 1, buf.span().subspan(0, 1));

  // Zero-length ranges anywhere in [0, block_bytes] are no-ops with no
  // disk traffic, single and batched alike.
  const std::uint64_t r0 = array.total_reads(), w0 = array.total_writes();
  ctrl.write_range(0, 0, buf.span().subspan(0, 0));
  ctrl.write_range(0, bs, buf.span().subspan(0, 0));
  ctrl.read_range(0, bs, buf.span().subspan(0, 0));
  const ArrayController::SubWrite empty{1, 7, buf.span().subspan(0, 0)};
  ctrl.write_range(std::span<const ArrayController::SubWrite>{&empty, 1});
  EXPECT_EQ(array.total_reads(), r0);
  EXPECT_EQ(array.total_writes(), w0);

  // Out-of-block and overflowing ranges throw instead of wrapping.
  const auto max64 = std::numeric_limits<std::int64_t>::max();
  EXPECT_THROW(ctrl.write_range(0, -1, buf.span().subspan(0, 1)),
               std::out_of_range);
  EXPECT_THROW(ctrl.write_range(0, bs, buf.span().subspan(0, 1)),
               std::out_of_range);
  EXPECT_THROW(ctrl.write_range(0, bs - 1, buf.span().subspan(0, 2)),
               std::out_of_range);
  EXPECT_THROW(ctrl.write_range(0, max64, buf.span().subspan(0, 1)),
               std::out_of_range);
  EXPECT_THROW(ctrl.write_range(-1, 0, buf.span().subspan(0, 1)),
               std::out_of_range);
  EXPECT_THROW(ctrl.write_range(logical, 0, buf.span().subspan(0, 1)),
               std::out_of_range);
  EXPECT_THROW(ctrl.write_range(max64, 0, buf.span().subspan(0, 1)),
               std::out_of_range);
  EXPECT_THROW(ctrl.read_range(0, max64, buf.span().subspan(0, 1)),
               std::out_of_range);
  EXPECT_THROW(ctrl.read_range(0, -1, buf.span().subspan(0, 1)),
               std::out_of_range);

  // One invalid batch entry rejects the whole batch before any I/O.
  const std::uint64_t r1 = array.total_reads(), w1 = array.total_writes();
  const ArrayController::SubWrite bad[] = {
      {0, 0, buf.span().subspan(0, 4)},
      {1, bs - 1, buf.span().subspan(0, 2)},  // leaves the block
  };
  EXPECT_THROW(ctrl.write_range(std::span<const ArrayController::SubWrite>(
                   bad, 2)),
               std::out_of_range);
  EXPECT_EQ(array.total_reads(), r1);
  EXPECT_EQ(array.total_writes(), w1);
  EXPECT_TRUE(ctrl.scrub().empty());

  // The promotion knob validates its domain.
  EXPECT_THROW(ctrl.set_subblock_promote_pct(0), std::invalid_argument);
  EXPECT_THROW(ctrl.set_subblock_promote_pct(101), std::invalid_argument);
  ctrl.set_subblock_promote_pct(1);
  ctrl.set_subblock_promote_pct(100);
}

/// DiskArray range primitives: a range access counts like one block
/// access (one transfer, one run) but tallies only its range length in
/// the byte counters; whole-block and vectored accesses tally
/// block-sized bytes.
TEST(RangeIo, CountsOneAccessButOnlyRangeBytes) {
  DiskArray a(2, 16, kBlock);
  Buffer buf(8 * kBlock);
  Rng rng(2);
  rng.fill(buf.data(), buf.size());

  EXPECT_TRUE(a.write_range(0, 3, 5, buf.span().subspan(0, 7)).ok());
  EXPECT_EQ(a.writes(0), 1u);
  EXPECT_EQ(a.write_runs(0), 1u);
  EXPECT_EQ(a.write_bytes(0), 7u);
  EXPECT_TRUE(a.read_range(0, 3, 5, buf.span().subspan(0, 7)).ok());
  EXPECT_EQ(a.reads(0), 1u);
  EXPECT_EQ(a.read_runs(0), 1u);
  EXPECT_EQ(a.read_bytes(0), 7u);

  // Block and vectored accesses tally full block sizes.
  EXPECT_TRUE(a.write_block(0, 0, buf.span().subspan(0, kBlock)).ok());
  EXPECT_EQ(a.write_bytes(0), 7u + kBlock);
  EXPECT_TRUE(a.write_blocks(0, 4, 8, buf.span()).ok());
  EXPECT_EQ(a.write_bytes(0), 7u + 9 * kBlock);
  EXPECT_EQ(a.total_write_bytes(), 7u + 9 * kBlock);
  EXPECT_EQ(a.total_read_bytes(), 7u);

  // Bounds: empty ranges and ranges leaving the block are rejected
  // (invalid_argument, like the vectored calls), bad coordinates throw
  // out_of_range — all before any transfer or counter update.
  const std::uint64_t rr = a.reads(0), wr = a.writes(0);
  EXPECT_THROW(a.read_range(0, 0, 0, buf.span().subspan(0, 0)),
               std::invalid_argument);
  EXPECT_THROW(a.read_range(0, 0, kBlock, buf.span().subspan(0, 1)),
               std::invalid_argument);
  EXPECT_THROW(a.write_range(0, 0, kBlock - 1, buf.span().subspan(0, 2)),
               std::invalid_argument);
  EXPECT_THROW(a.write_range(0, 16, 0, buf.span().subspan(0, 1)),
               std::out_of_range);
  EXPECT_THROW(a.write_range(2, 0, 0, buf.span().subspan(0, 1)),
               std::out_of_range);
  EXPECT_EQ(a.reads(0), rr);
  EXPECT_EQ(a.writes(0), wr);
}

/// Range fault semantics: a failed disk or bad block transfers
/// nothing; a torn range persists only the first half of the *range*;
/// a partial write does not remap a bad block (only a full-block
/// rewrite clears the mark).
TEST(RangeIo, FaultSemanticsMirrorBlockIo) {
  DiskArray a(1, 16, kBlock);
  Buffer buf(kBlock);
  Rng rng(3);
  rng.fill(buf.data(), buf.size());
  ASSERT_TRUE(a.write_block(0, 5, buf.span()).ok());

  FaultPlan plan;
  plan.bad_blocks.push_back({0, 5});
  a.set_fault_plan(plan);

  // Bad block: range reads report the sector error and move no bytes.
  Buffer got(kBlock);
  std::fill(got.span().begin(), got.span().end(), 0xAA);
  EXPECT_EQ(a.read_range(0, 5, 8, got.span().subspan(0, 8)).status,
            IoStatus::kSectorError);
  EXPECT_EQ(got.span()[0], 0xAA);

  // A partial rewrite leaves the bad mark in place...
  EXPECT_TRUE(a.write_range(0, 5, 8, buf.span().subspan(0, 8)).ok());
  EXPECT_EQ(a.read_range(0, 5, 8, got.span().subspan(0, 8)).status,
            IoStatus::kSectorError);
  // ...and only a full-block rewrite remaps it.
  EXPECT_TRUE(a.write_block(0, 5, buf.span()).ok());
  EXPECT_TRUE(a.read_range(0, 5, 8, got.span().subspan(0, 8)).ok());

  // Torn range write: first half of the range persists, rest is stale.
  DiskArray t(1, 4, kBlock);
  ASSERT_TRUE(t.write_block(0, 0, buf.span()).ok());
  FaultPlan torn;
  torn.torn_write_rate = 1.0;
  t.set_fault_plan(torn);
  Buffer neu(kBlock);
  rng.fill(neu.data(), neu.size());
  const IoResult r = t.write_range(0, 0, 8, neu.span().subspan(0, 16));
  EXPECT_EQ(r.status, IoStatus::kTornWrite);
  const auto stored = t.raw_block(0, 0);
  EXPECT_TRUE(std::equal(neu.span().begin(), neu.span().begin() + 8,
                         stored.begin() + 8));
  EXPECT_TRUE(std::equal(buf.span().begin() + 16, buf.span().begin() + 24,
                         stored.begin() + 16));

  // Failed disk: no bytes move; the counters still tally the attempt
  // at issue, exactly like reads()/writes() for block I/O.
  DiskArray f(1, 4, kBlock);
  f.fail_disk(0);
  const std::uint64_t wb = f.write_bytes(0);
  EXPECT_EQ(f.write_range(0, 1, 0, buf.span().subspan(0, 4)).status,
            IoStatus::kDiskFailed);
  EXPECT_EQ(f.write_bytes(0), wb + 4);
  EXPECT_TRUE(all_zero(f.raw_block(0, 1)));
}

}  // namespace
}  // namespace c56::mig
