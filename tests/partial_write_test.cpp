// Differential lockdown of the sub-block delta write plane: random
// sub-block write sequences (single and batched) against a whole-block
// reference controller that replays each sub-write as read-full /
// patch / write-full, plus an in-memory byte mirror, across the code
// zoo x p x failure count x cache setting. The delta path must leave
// byte-identical array contents — data and every parity — after every
// step, a full-block range must be byte- AND I/O-count-identical to
// the whole-block write path, and the online migrator's write_range
// must honour the conversion watermark's trust domains (horizontal
// parity only before start(), both families after finish()).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "codes/registry.hpp"
#include "layout/raid.hpp"
#include "migration/controller.hpp"
#include "migration/disk_array.hpp"
#include "migration/online.hpp"
#include "util/rng.hpp"
#include "xorblk/xor.hpp"

namespace c56::mig {
namespace {

constexpr std::size_t kBlock = 64;
constexpr std::int64_t kStripes = 4;

struct Param {
  CodeId id;
  int p;
  int failures;  // 0, 1 or 2 disks failed on both sides
  bool cache;    // stripe cache enabled on the sub-block side
};

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  std::string n = to_string(info.param.id);
  for (char& c : n) {
    if (c == ' ' || c == '-') c = '_';
  }
  return n + "_p" + std::to_string(info.param.p) + "_f" +
         std::to_string(info.param.failures) +
         (info.param.cache ? "_cached" : "_nocache");
}

/// Two controllers over two arrays with identical contents: `sub_`
/// takes sub-block ranges, `ref_` replays every range as a whole-block
/// read-modify-write through the public per-block API; `mirror_` holds
/// the expected logical bytes.
class PartialWriteDifferentialTest : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    const Param& prm = GetParam();
    auto code_a = make_code(prm.id, prm.p);
    auto code_b = make_code(prm.id, prm.p);
    const int disks = code_a->cols();
    const std::int64_t bpd = kStripes * code_a->rows();
    sub_array_ = std::make_unique<DiskArray>(disks, bpd, kBlock);
    ref_array_ = std::make_unique<DiskArray>(disks, bpd, kBlock);
    sub_ = std::make_unique<ArrayController>(*sub_array_, std::move(code_a));
    ref_ = std::make_unique<ArrayController>(*ref_array_, std::move(code_b));
    if (prm.cache) sub_->set_cache_stripes(3);  // smaller than kStripes
    total_ = sub_->logical_blocks();
    mirror_.assign(static_cast<std::size_t>(total_) * kBlock, 0);
    Rng rng(0x5B0C4ED);
    Buffer buf(kBlock);
    for (std::int64_t l = 0; l < total_; ++l) {
      rng.fill(buf.data(), kBlock);
      sub_->write(l, buf.span());
      ref_->write(l, buf.span());
      std::copy(buf.span().begin(), buf.span().end(),
                mirror_.begin() + static_cast<std::size_t>(l) * kBlock);
    }
    if (prm.failures >= 1) {
      sub_->fail_disk(1);
      ref_->fail_disk(1);
    }
    if (prm.failures >= 2) {
      sub_->fail_disk(3);
      ref_->fail_disk(3);
    }
  }

  /// Replay one sub-write on the reference side (whole-block RMW
  /// through the public API) and on the mirror.
  void apply_ref(std::int64_t l, std::size_t off,
                 std::span<const std::uint8_t> in) {
    Buffer tmp(kBlock);
    ref_->read(l, tmp.span());
    std::copy(in.begin(), in.end(), tmp.span().begin() + off);
    ref_->write(l, tmp.span());
    std::copy(in.begin(), in.end(),
              mirror_.begin() + static_cast<std::size_t>(l) * kBlock + off);
  }

  void expect_arrays_identical() {
    for (int d = 0; d < sub_array_->disks(); ++d) {
      const auto a =
          sub_array_->raw_blocks(d, 0, sub_array_->blocks_per_disk());
      const auto b =
          ref_array_->raw_blocks(d, 0, ref_array_->blocks_per_disk());
      ASSERT_EQ(a.size(), b.size());
      EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()))
          << "disk " << d << " diverged";
    }
  }

  /// Random (offset, len) inside one block, biased toward the
  /// interesting shapes: 1-byte writes, ranges ending exactly at the
  /// block boundary, full blocks, and arbitrary unaligned interiors.
  std::pair<std::size_t, std::size_t> random_range(Rng& rng) {
    switch (rng.next_below(5)) {
      case 0:  // single byte
        return {static_cast<std::size_t>(rng.next_below(kBlock)), 1};
      case 1: {  // suffix ending exactly at the block end
        const auto off = static_cast<std::size_t>(rng.next_below(kBlock));
        return {off, kBlock - off};
      }
      case 2:  // full block (identity with the whole-block path)
        return {0, kBlock};
      default: {  // arbitrary unaligned interior range
        const auto off = static_cast<std::size_t>(rng.next_below(kBlock));
        const auto len =
            1 + static_cast<std::size_t>(rng.next_below(kBlock - off));
        return {off, len};
      }
    }
  }

  std::unique_ptr<DiskArray> sub_array_, ref_array_;
  std::unique_ptr<ArrayController> sub_, ref_;
  std::int64_t total_ = 0;
  std::vector<std::uint8_t> mirror_;
};

TEST_P(PartialWriteDifferentialTest, RandomSubWritesStayByteIdentical) {
  Rng rng(0xDE17A + GetParam().p * 31 + GetParam().failures * 7 +
          (GetParam().cache ? 1 : 0));
  Buffer scratch(8 * kBlock);
  Buffer got(kBlock);
  for (int op = 0; op < 120; ++op) {
    if (rng.next_below(4) == 0) {
      // Batch of 2..5 sub-writes, biased to revisit one block so
      // overlapping ranges within a single batch are exercised (batch
      // order must win on overlap, on both sides).
      const int n = 2 + static_cast<int>(rng.next_below(4));
      const auto base = static_cast<std::int64_t>(
          rng.next_below(static_cast<std::uint64_t>(total_)));
      rng.fill(scratch.data(), scratch.size());
      std::vector<ArrayController::SubWrite> batch;
      for (int i = 0; i < n; ++i) {
        const std::int64_t l =
            rng.next_below(2) == 0
                ? base
                : static_cast<std::int64_t>(
                      rng.next_below(static_cast<std::uint64_t>(total_)));
        const auto [off, len] = random_range(rng);
        batch.push_back({l, static_cast<std::int64_t>(off),
                         scratch.span().subspan(i * kBlock + off, len)});
      }
      sub_->write_range(batch);
      for (const auto& w : batch) {
        apply_ref(w.logical, static_cast<std::size_t>(w.offset), w.data);
      }
    } else {
      const auto l = static_cast<std::int64_t>(
          rng.next_below(static_cast<std::uint64_t>(total_)));
      const auto [off, len] = random_range(rng);
      rng.fill(scratch.data(), len);
      const auto data = scratch.span().subspan(0, len);
      sub_->write_range(l, static_cast<std::int64_t>(off), data);
      apply_ref(l, off, data);
    }
    if (op % 8 == 0) {  // spot-check a random range read vs the mirror
      const auto l = static_cast<std::int64_t>(
          rng.next_below(static_cast<std::uint64_t>(total_)));
      const auto [off, len] = random_range(rng);
      sub_->read_range(l, static_cast<std::int64_t>(off),
                       got.span().subspan(0, len));
      ASSERT_TRUE(std::equal(
          got.span().begin(), got.span().begin() + len,
          mirror_.begin() + static_cast<std::size_t>(l) * kBlock + off))
          << "range read diverged at logical " << l << " off " << off;
    }
    if (op % 30 == 29) expect_arrays_identical();
  }
  expect_arrays_identical();
  if (GetParam().failures == 0) {
    EXPECT_TRUE(sub_->scrub().empty());
    EXPECT_TRUE(ref_->scrub().empty());
  }
  // Full readback (degraded reconstruction included) vs the mirror.
  for (std::int64_t l = 0; l < total_; ++l) {
    sub_->read(l, got.span());
    ASSERT_TRUE(std::equal(
        got.span().begin(), got.span().end(),
        mirror_.begin() + static_cast<std::size_t>(l) * kBlock))
        << "final read diverged at logical " << l;
  }
}

std::vector<Param> all_params() {
  std::vector<Param> out;
  for (CodeId id : {CodeId::kCode56, CodeId::kRdp, CodeId::kXCode}) {
    for (int p : {5, 7, 11}) {
      for (int f : {0, 1, 2}) {
        for (bool cache : {false, true}) {
          out.push_back({id, p, f, cache});
        }
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Zoo, PartialWriteDifferentialTest,
                         ::testing::ValuesIn(all_params()), param_name);

/// A promotion threshold below 100% widens large ranges to whole-block
/// semantics; the bytes must not care which path was taken.
TEST_P(PartialWriteDifferentialTest, PromotionThresholdPreservesBytes) {
  sub_->set_subblock_promote_pct(50);
  Rng rng(0x9407E + GetParam().p);
  Buffer scratch(kBlock);
  for (int op = 0; op < 60; ++op) {
    const auto l = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(total_)));
    const auto [off, len] = random_range(rng);
    rng.fill(scratch.data(), len);
    const auto data = scratch.span().subspan(0, len);
    sub_->write_range(l, static_cast<std::int64_t>(off), data);
    apply_ref(l, off, data);
  }
  expect_arrays_identical();
}

/// The delta kill switch routes sub-writes through whole-block RMW;
/// contents must be unchanged by the setting.
TEST_P(PartialWriteDifferentialTest, KillSwitchPreservesBytes) {
  sub_->set_subblock_delta(false);
  Rng rng(0x0FF + GetParam().p);
  Buffer scratch(kBlock);
  for (int op = 0; op < 40; ++op) {
    const auto l = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(total_)));
    const auto [off, len] = random_range(rng);
    rng.fill(scratch.data(), len);
    const auto data = scratch.span().subspan(0, len);
    sub_->write_range(l, static_cast<std::int64_t>(off), data);
    apply_ref(l, off, data);
  }
  expect_arrays_identical();
}

/// Acceptance pin: write_range(l, 0, block_bytes) is byte- AND
/// I/O-count-identical (transfers, runs, bytes, reads and writes) to
/// write(l), with the cache off and on (identical cache config on both
/// sides so hit patterns align).
TEST(PartialWritePlane, FullBlockRangeIsIoIdentical) {
  for (bool cache : {false, true}) {
    auto code_a = make_code(CodeId::kCode56, 5);
    auto code_b = make_code(CodeId::kCode56, 5);
    const int disks = code_a->cols();
    const std::int64_t bpd = kStripes * code_a->rows();
    DiskArray sub_array(disks, bpd, kBlock);
    DiskArray ref_array(disks, bpd, kBlock);
    ArrayController sub(sub_array, std::move(code_a));
    ArrayController ref(ref_array, std::move(code_b));
    if (cache) {
      sub.set_cache_stripes(2);
      ref.set_cache_stripes(2);
    }
    Rng rng(0x1DE7 + (cache ? 1 : 0));
    Buffer buf(kBlock);
    for (std::int64_t l = 0; l < sub.logical_blocks(); ++l) {
      rng.fill(buf.data(), kBlock);
      sub.write(l, buf.span());
      ref.write(l, buf.span());
    }
    const auto deltas = [](DiskArray& a, std::uint64_t s[6]) {
      const std::uint64_t now[6] = {a.total_reads(),     a.total_writes(),
                                    a.total_read_runs(), a.total_write_runs(),
                                    a.total_read_bytes(), a.total_write_bytes()};
      std::array<std::uint64_t, 6> d;
      for (int i = 0; i < 6; ++i) {
        d[static_cast<std::size_t>(i)] = now[i] - s[i];
        s[i] = now[i];
      }
      return d;
    };
    std::uint64_t ss[6] = {}, rs[6] = {};
    deltas(sub_array, ss);
    deltas(ref_array, rs);
    for (int i = 0; i < 24; ++i) {
      const auto l = static_cast<std::int64_t>(
          rng.next_below(static_cast<std::uint64_t>(sub.logical_blocks())));
      rng.fill(buf.data(), kBlock);
      sub.write_range(l, 0, buf.span());
      const auto ds = deltas(sub_array, ss);
      ref.write(l, buf.span());
      const auto dr = deltas(ref_array, rs);
      EXPECT_EQ(ds, dr) << "write I/O diverged at logical " << l
                        << (cache ? " (cached)" : "");
    }
    // Full-block range reads are I/O-identical to block reads too.
    Buffer got_s(kBlock), got_r(kBlock);
    for (int i = 0; i < 8; ++i) {
      const auto l = static_cast<std::int64_t>(
          rng.next_below(static_cast<std::uint64_t>(sub.logical_blocks())));
      sub.read_range(l, 0, got_s.span());
      const auto ds = deltas(sub_array, ss);
      ref.read(l, got_r.span());
      const auto dr = deltas(ref_array, rs);
      EXPECT_EQ(ds, dr) << "read I/O diverged at logical " << l;
      EXPECT_TRUE(got_s == got_r);
    }
    for (int d = 0; d < disks; ++d) {
      const auto a = sub_array.raw_blocks(d, 0, bpd);
      const auto b = ref_array.raw_blocks(d, 0, bpd);
      EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()))
          << "disk " << d << (cache ? " (cached)" : "");
    }
  }
}

// ---------------------------------------------------------------------
// OnlineMigrator::write_range vs write_block across watermark states.

/// Build a valid left-asymmetric RAID-5 with random data.
void fill_raid5(DiskArray& array, int m, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> block(kBlock), parity(kBlock);
  for (std::int64_t row = 0; row < array.blocks_per_disk(); ++row) {
    std::fill(parity.begin(), parity.end(), 0);
    const int pdisk = raid5_parity_disk(Raid5Flavor::kLeftAsymmetric,
                                        static_cast<int>(row % m), m);
    for (int d = 0; d < m; ++d) {
      if (d == pdisk) continue;
      rng.fill(block.data(), kBlock);
      std::ranges::copy(block, array.raw_block(d, row).begin());
      xor_into(parity.data(), block.data(), kBlock);
    }
    std::ranges::copy(parity, array.raw_block(pdisk, row).begin());
  }
}

/// Replay a migrator sub-write as read_block / patch / write_block.
void apply_mig_ref(OnlineMigrator& mig, std::int64_t l, std::size_t off,
                   std::span<const std::uint8_t> in) {
  Buffer tmp(kBlock);
  ASSERT_TRUE(mig.read_block(l, tmp.span()).ok());
  std::copy(in.begin(), in.end(), tmp.span().begin() + off);
  ASSERT_TRUE(mig.write_block(l, tmp.span()).ok());
}

void expect_same_contents(DiskArray& a, DiskArray& b) {
  ASSERT_EQ(a.disks(), b.disks());
  for (int d = 0; d < a.disks(); ++d) {
    const auto x = a.raw_blocks(d, 0, a.blocks_per_disk());
    const auto y = b.raw_blocks(d, 0, b.blocks_per_disk());
    ASSERT_EQ(x.size(), y.size());
    EXPECT_TRUE(std::equal(x.begin(), x.end(), y.begin()))
        << "disk " << d << " diverged";
  }
}

/// Before start() there is no diagonal column: a sub-block write may
/// only touch the data range and the horizontal parity, byte-identical
/// to the whole-block application path.
TEST(MigratorPartialWrite, PreStartUpdatesHorizontalOnly) {
  const int p = 5, m = p - 1;
  DiskArray a(m, 3 * (p - 1), kBlock), b(m, 3 * (p - 1), kBlock);
  fill_raid5(a, m, 0x5EED);
  fill_raid5(b, m, 0x5EED);
  OnlineMigrator sub(a, p), ref(b, p);
  Rng rng(0x714);
  Buffer scratch(kBlock);
  for (int op = 0; op < 60; ++op) {
    const auto l = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(sub.logical_blocks())));
    const auto off = static_cast<std::size_t>(rng.next_below(kBlock));
    const auto len = 1 + static_cast<std::size_t>(rng.next_below(kBlock - off));
    rng.fill(scratch.data(), len);
    ASSERT_TRUE(
        sub.write_range(l, off, scratch.span().subspan(0, len)).ok());
    apply_mig_ref(ref, l, off, scratch.span().subspan(0, len));
    if (op % 15 == 14) expect_same_contents(a, b);
  }
  expect_same_contents(a, b);
}

/// After finish() every diagonal chain is generated (kBothFamilies):
/// the delta must land in the horizontal AND the diagonal parity,
/// byte-identical to write_block, and keep the array a valid RAID-6.
TEST(MigratorPartialWrite, PostFinishUpdatesBothFamilies) {
  const int p = 5, m = p - 1;
  DiskArray a(m, 3 * (p - 1), kBlock), b(m, 3 * (p - 1), kBlock);
  fill_raid5(a, m, 0xD1A6);
  fill_raid5(b, m, 0xD1A6);
  OnlineMigrator sub(a, p), ref(b, p);
  sub.start();
  sub.finish();
  ref.start();
  ref.finish();
  ASSERT_EQ(sub.state(), MigrationState::kDone);
  ASSERT_EQ(ref.state(), MigrationState::kDone);
  Rng rng(0x715);
  Buffer scratch(kBlock);
  for (int op = 0; op < 60; ++op) {
    const auto l = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(sub.logical_blocks())));
    const auto off = static_cast<std::size_t>(rng.next_below(kBlock));
    const auto len = 1 + static_cast<std::size_t>(rng.next_below(kBlock - off));
    rng.fill(scratch.data(), len);
    ASSERT_TRUE(
        sub.write_range(l, off, scratch.span().subspan(0, len)).ok());
    apply_mig_ref(ref, l, off, scratch.span().subspan(0, len));
  }
  expect_same_contents(a, b);
  EXPECT_TRUE(sub.verify_raid6());
  EXPECT_TRUE(ref.verify_raid6());
}

/// Sub-block writes racing the conversion workers: timing decides which
/// diagonal chains the write deltas and which the owner folds in, so
/// the check is semantic — when the dust settles the array must be a
/// valid RAID-6 holding exactly the mirrored bytes.
TEST(MigratorPartialWrite, ConcurrentWithConversionStaysConsistent) {
  const int p = 7, m = p - 1;
  DiskArray a(m, 20 * (p - 1), kBlock);
  fill_raid5(a, m, 0xC0C0);
  OnlineMigrator mig(a, p);
  mig.set_workers(2);
  const std::int64_t total = mig.logical_blocks();
  std::vector<std::uint8_t> mirror(static_cast<std::size_t>(total) * kBlock);
  Buffer tmp(kBlock);
  for (std::int64_t l = 0; l < total; ++l) {
    ASSERT_TRUE(mig.read_block(l, tmp.span()).ok());
    std::copy(tmp.span().begin(), tmp.span().end(),
              mirror.begin() + static_cast<std::size_t>(l) * kBlock);
  }
  mig.start();
  Rng rng(0x716);
  Buffer scratch(kBlock);
  for (int op = 0; op < 400; ++op) {
    const auto l = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(total)));
    const auto off = static_cast<std::size_t>(rng.next_below(kBlock));
    const auto len = 1 + static_cast<std::size_t>(rng.next_below(kBlock - off));
    rng.fill(scratch.data(), len);
    ASSERT_TRUE(
        mig.write_range(l, off, scratch.span().subspan(0, len)).ok());
    std::copy(scratch.data(), scratch.data() + len,
              mirror.begin() + static_cast<std::size_t>(l) * kBlock + off);
  }
  mig.finish();
  ASSERT_EQ(mig.state(), MigrationState::kDone);
  EXPECT_TRUE(mig.verify_raid6());
  for (std::int64_t l = 0; l < total; ++l) {
    ASSERT_TRUE(mig.read_block(l, tmp.span()).ok());
    ASSERT_TRUE(std::equal(
        tmp.span().begin(), tmp.span().end(),
        mirror.begin() + static_cast<std::size_t>(l) * kBlock))
        << "logical " << l;
  }
}

/// A failed data disk degrades a sub-block write to a parity-only
/// delta, exactly as write_block degrades — differential plus counter.
TEST(MigratorPartialWrite, DegradedDataDiskDeltasParityOnly) {
  const int p = 5, m = p - 1;
  DiskArray a(m, 3 * (p - 1), kBlock), b(m, 3 * (p - 1), kBlock);
  fill_raid5(a, m, 0xDE6);
  fill_raid5(b, m, 0xDE6);
  OnlineMigrator sub(a, p), ref(b, p);
  a.fail_disk(2);
  b.fail_disk(2);
  Rng rng(0x717);
  Buffer scratch(kBlock);
  for (int op = 0; op < 40; ++op) {
    const auto l = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(sub.logical_blocks())));
    const auto off = static_cast<std::size_t>(rng.next_below(kBlock));
    const auto len = 1 + static_cast<std::size_t>(rng.next_below(kBlock - off));
    rng.fill(scratch.data(), len);
    ASSERT_TRUE(
        sub.write_range(l, off, scratch.span().subspan(0, len)).ok());
    apply_mig_ref(ref, l, off, scratch.span().subspan(0, len));
  }
  expect_same_contents(a, b);
  EXPECT_GT(sub.stats().degraded_writes, 0u);
  // The lost column must be reconstructible from the updated parity.
  EXPECT_EQ(sub.rebuild_failed_disks(), a.blocks_per_disk());
  EXPECT_EQ(ref.rebuild_failed_disks(), b.blocks_per_disk());
  expect_same_contents(a, b);
}

/// Validation: out-of-block ranges throw, zero length is a counted
/// no-op, and a full-block range IS write_block.
TEST(MigratorPartialWrite, RangeValidation) {
  const int p = 5, m = p - 1;
  DiskArray a(m, p - 1, kBlock);
  fill_raid5(a, m, 0x417);
  OnlineMigrator mig(a, p);
  Buffer buf(kBlock);
  Rng rng(3);
  rng.fill(buf.data(), kBlock);
  EXPECT_THROW(mig.write_range(0, kBlock + 1, buf.span().subspan(0, 1)),
               std::out_of_range);
  EXPECT_THROW(mig.write_range(0, kBlock - 1, buf.span().subspan(0, 2)),
               std::out_of_range);
  EXPECT_THROW(mig.write_range(0, 1, buf.span()), std::out_of_range);

  const std::uint64_t w0 = a.total_writes(), r0 = a.total_reads();
  EXPECT_TRUE(mig.write_range(0, 5, buf.span().subspan(0, 0)).ok());
  EXPECT_EQ(a.total_writes(), w0);
  EXPECT_EQ(a.total_reads(), r0);

  // Full-block range == write_block: same bytes, same app_writes step.
  const auto before = mig.stats().app_writes;
  EXPECT_TRUE(mig.write_range(0, 0, buf.span()).ok());
  const auto mid = mig.stats().app_writes;
  Buffer got(kBlock);
  ASSERT_TRUE(mig.read_block(0, got.span()).ok());
  EXPECT_TRUE(got == buf);
  EXPECT_TRUE(mig.write_block(0, buf.span()).ok());
  EXPECT_EQ(mig.stats().app_writes - mid, mid - before);
}

}  // namespace
}  // namespace c56::mig
