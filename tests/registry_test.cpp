// Registry metadata and factory tests, plus conversion-planner flavor
// handling (the right-asymmetric sources of Fig. 7 / Section V-A).

#include <gtest/gtest.h>

#include "codes/code56.hpp"
#include "codes/registry.hpp"
#include "migration/plan.hpp"

namespace c56 {
namespace {

TEST(Registry, AllCodesInstantiate) {
  for (CodeId id : all_code_ids()) {
    for (int p : {5, 7, 11}) {
      auto code = make_code(id, p);
      ASSERT_NE(code, nullptr);
      EXPECT_EQ(code->p(), p);
      EXPECT_EQ(code->cols(), disks_of(id, p)) << to_string(id);
      EXPECT_FALSE(code->name().empty());
    }
  }
}

TEST(Registry, NonPrimeRejectedEverywhere) {
  for (CodeId id : all_code_ids()) {
    EXPECT_THROW(make_code(id, 9), std::invalid_argument) << to_string(id);
    EXPECT_THROW(make_code(id, 4), std::invalid_argument) << to_string(id);
  }
}

TEST(Registry, DisksAddedMatchesApproachSemantics) {
  // Horizontal codes add two disks (row parity + diagonal), Code 5-6
  // adds one, the in-place vertical codes add none.
  EXPECT_EQ(disks_added_by_conversion(CodeId::kCode56), 1);
  for (CodeId id : {CodeId::kRdp, CodeId::kEvenOdd, CodeId::kHCode}) {
    EXPECT_EQ(disks_added_by_conversion(id), 2);
    EXPECT_TRUE(is_horizontal_code(id));
    EXPECT_FALSE(reuses_raid5_parity(id));
  }
  for (CodeId id : {CodeId::kXCode, CodeId::kPCode, CodeId::kHdp}) {
    EXPECT_EQ(disks_added_by_conversion(id), 0);
    EXPECT_FALSE(is_horizontal_code(id));
  }
  EXPECT_TRUE(reuses_raid5_parity(CodeId::kCode56));
  EXPECT_TRUE(reuses_raid5_parity(CodeId::kHdp));
}

TEST(Registry, FigureOrderMatchesPaperListing) {
  const auto ids = all_code_ids();
  ASSERT_EQ(ids.size(), 7u);
  EXPECT_EQ(ids.front(), CodeId::kEvenOdd);
  EXPECT_EQ(ids.back(), CodeId::kCode56);
}

TEST(PlannerFlavor, HoleRotationFollowsTheSourceFlavor) {
  using mig::Approach;
  using mig::ConversionSpec;
  const auto spec = ConversionSpec::canonical(CodeId::kRdp,
                                              Approach::kViaRaid0, 5);
  const mig::ConversionPlanner left(spec, Raid5Flavor::kLeftAsymmetric);
  const mig::ConversionPlanner right(spec, Raid5Flavor::kRightAsymmetric);
  // Row 0: left-asymmetric parity lives on the last original disk,
  // right-asymmetric on the first.
  EXPECT_EQ(left.hole_col(0, 0), 3);
  EXPECT_EQ(right.hole_col(0, 0), 0);
  // Both rotate over all original disks within one stripe.
  std::set<int> l, r;
  for (int row = 0; row < 4; ++row) {
    l.insert(left.hole_col(0, row));
    r.insert(right.hole_col(0, row));
  }
  EXPECT_EQ(l.size(), 4u);
  EXPECT_EQ(r.size(), 4u);
}

TEST(PlannerFlavor, OpCountsAreFlavorInvariant) {
  using mig::Approach;
  using mig::ConversionSpec;
  const auto spec = ConversionSpec::canonical(CodeId::kEvenOdd,
                                              Approach::kViaRaid4, 5);
  const mig::ConversionPlanner a(spec, Raid5Flavor::kLeftAsymmetric);
  const mig::ConversionPlanner b(spec, Raid5Flavor::kRightSymmetric);
  std::size_t ra = 0, wa = 0, rb = 0, wb = 0;
  for (std::int64_t g = 0; g < 20; ++g) {
    for (const auto& ph : a.ops_for_group(g)) {
      ra += ph.reads();
      wa += ph.writes();
    }
    for (const auto& ph : b.ops_for_group(g)) {
      rb += ph.reads();
      wb += ph.writes();
    }
  }
  EXPECT_EQ(ra, rb);
  EXPECT_EQ(wa, wb);
}

TEST(Code56Flavors, RightOrientationPairsWithRightRaid5) {
  // The Fig. 7 mirror: a right-flavored RAID-5's parities land exactly
  // on the mirrored code's horizontal-parity cells, so direct
  // conversion reuses them just like the default layout does.
  for (int p : {5, 7, 11, 13}) {
    Code56 right(p, 0, Code56Orientation::kRight);
    for (int row = 0; row < p - 1; ++row) {
      const int parity_disk =
          raid5_parity_disk(Raid5Flavor::kRightAsymmetric, row, p - 1);
      EXPECT_EQ(right.kind({row, parity_disk}), CellKind::kRowParity)
          << "p=" << p << " row=" << row;
    }
  }
}

}  // namespace
}  // namespace c56
