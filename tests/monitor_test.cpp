// MigrationMonitor tests: the stall detector driven deterministically
// through the poll_at() clock seam over a fault plan that freezes the
// watermark (a planted bad block whose retry ladder sleeps the single
// worker for ~2 s of real time), the no-false-positive contract on a
// clean multi-worker conversion, rate/ETA gauge semantics, phase
// timelines, and the post-mortem flight recorder end to end: abort ->
// auto-written bundle -> summarize_postmortem() reporting the abort
// reason, watermark, phases, and disk fault counters.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "layout/raid.hpp"
#include "migration/fault.hpp"
#include "migration/journal.hpp"
#include "migration/monitor.hpp"
#include "migration/online.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "scrub/scrubber.hpp"
#include "util/rng.hpp"
#include "xorblk/xor.hpp"

namespace c56::mig {
namespace {

constexpr std::size_t kBlock = 64;

void fill_raid5(DiskArray& array, int m, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> block(kBlock), parity(kBlock);
  for (std::int64_t row = 0; row < array.blocks_per_disk(); ++row) {
    std::fill(parity.begin(), parity.end(), 0);
    const int pdisk = raid5_parity_disk(Raid5Flavor::kLeftAsymmetric,
                                        static_cast<int>(row % m), m);
    for (int d = 0; d < m; ++d) {
      if (d == pdisk) continue;
      rng.fill(block.data(), kBlock);
      std::ranges::copy(block, array.raw_block(d, row).begin());
      xor_into(parity.data(), block.data(), kBlock);
    }
    std::ranges::copy(parity, array.raw_block(pdisk, row).begin());
  }
}

std::int64_t gauge_of(const obs::Snapshot& s, const std::string& name) {
  const obs::Metric* m = s.find(name);
  return m ? m->gauge : -999;
}

std::uint64_t counter_of(const obs::Snapshot& s, const std::string& name) {
  const obs::Metric* m = s.find(name);
  return m ? m->counter : 0;
}

/// Arm metrics + events for one test body and restore the defaults.
/// The monitor's stall_timeout_ms is configured per test, so make sure
/// no ambient C56_STALL_MS override leaks in (the MonitorConfig ctor
/// path reads it).
class ObservedScope {
 public:
  ObservedScope() {
    ::unsetenv("C56_STALL_MS");
    obs::set_metrics_enabled(true);
    obs::set_events_enabled(true);
  }
  ~ObservedScope() {
    obs::set_metrics_enabled(false);
    obs::set_events_enabled(false);
  }
};

bool has_warn_containing(const obs::EventLog& log, const std::string& text) {
  for (const obs::Event& ev : log.snapshot()) {
    if (ev.level == obs::EventLevel::kWarn &&
        ev.message.find(text) != std::string::npos) {
      return true;
    }
  }
  return false;
}

TEST(MigrationMonitor, StallFiresWhenTheWatermarkFreezes) {
  ObservedScope on;
  // Registry and log first: both must outlive everything attached to
  // them (collector handles detach on destruction).
  obs::Registry reg;
  obs::EventLog log;
  log.set_stderr_echo(false);
  const int p = 5, m = p - 1;
  const std::int64_t groups = 8;
  DiskArray array(m, groups * (p - 1), kBlock);
  fill_raid5(array, m, 0xC56'57A1);

  OnlineMigrator mig(array, p);
  MemoryCheckpointSink sink;
  mig.attach_journal(sink);
  mig.set_workers(1);
  // A planted bad block reads kSectorError until rewritten, so every
  // retry fails and the single worker sleeps the full backoff ladder:
  // 500us * (2^12 - 1) ~= 2 s of real time with the watermark pinned at
  // row 0, before xor_chain_read reconstructs and conversion resumes.
  // The poll_at() calls below take microseconds, so they all land
  // inside the freeze; their timestamps are synthetic and only ordered
  // against each other.
  FaultPlan plan;
  plan.bad_blocks.push_back({.disk = 0, .block = 0});
  array.set_fault_plan(plan);
  RetryPolicy retry;
  retry.max_attempts = 13;
  retry.backoff_us = 500;
  mig.set_retry_policy(retry);

  mig.attach_events(log, "stall-test");
  MonitorConfig cfg;
  cfg.migration_id = "stall-test";
  cfg.stall_min_polls = 3;
  cfg.stall_timeout_ms = 50;
  MigrationMonitor monitor(mig, reg, log, cfg);

  mig.start();
  const std::uint64_t t0 = 1'000'000;
  monitor.poll_at(t0);  // baseline only
  // Three frozen polls, but only 3 ms of (synthetic) elapsed time:
  // the poll-count threshold alone must not fire the detector.
  monitor.poll_at(t0 + 1'000);
  monitor.poll_at(t0 + 2'000);
  monitor.poll_at(t0 + 3'000);
  EXPECT_FALSE(monitor.stalled());
  // Fourth frozen poll 60 ms after baseline: both thresholds hold.
  monitor.poll_at(t0 + 60'000);
  EXPECT_TRUE(monitor.stalled());
  EXPECT_NE(monitor.status_line().find("STALLED"), std::string::npos)
      << monitor.status_line();

  obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(gauge_of(snap, "migration_stalled"), 1);
  EXPECT_EQ(counter_of(snap, "migration_stall_events"), 1u);
  EXPECT_TRUE(has_warn_containing(log, "conversion stalled"));

  // Wait out the retry ladder; the conversion reconstructs the bad
  // block from the surviving disks and completes.
  mig.finish();
  EXPECT_EQ(mig.state(), MigrationState::kDone);
  monitor.poll_at(t0 + 3'000'000);
  EXPECT_FALSE(monitor.stalled());
  snap = reg.snapshot();
  EXPECT_EQ(gauge_of(snap, "migration_stalled"), 0);
  EXPECT_EQ(gauge_of(snap, "migration_rows_done"), groups * (p - 1));
  EXPECT_EQ(gauge_of(snap, "migration_eta_ms"), 0);
  EXPECT_EQ(gauge_of(snap, "migration_state"),
            static_cast<std::int64_t>(MigrationState::kDone));
  EXPECT_TRUE(mig.verify_raid6());
}

TEST(MigrationMonitor, CleanFourWorkerConversionNeverStalls) {
  ObservedScope on;
  obs::Registry reg;
  obs::EventLog log;
  log.set_stderr_echo(false);
  const int p = 5, m = p - 1;
  const std::int64_t groups = 32;
  DiskArray array(m, groups * (p - 1), kBlock);
  fill_raid5(array, m, 0xC56'C1EA);

  OnlineMigrator mig(array, p);
  MemoryCheckpointSink sink;
  mig.attach_journal(sink);
  mig.set_workers(4);
  mig.attach_events(log, "clean");
  MonitorConfig cfg;
  cfg.migration_id = "clean";
  MigrationMonitor monitor(mig, reg, log, cfg);

  mig.start();
  while (mig.converting()) {
    monitor.poll();
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  mig.finish();
  monitor.poll();

  EXPECT_FALSE(monitor.stalled());
  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(counter_of(snap, "migration_stall_events"), 0u);
  EXPECT_EQ(gauge_of(snap, "migration_stalled"), 0);
  EXPECT_EQ(gauge_of(snap, "migration_rows_done"), groups * (p - 1));
  EXPECT_EQ(gauge_of(snap, "migration_rows_total"), groups * (p - 1));
  EXPECT_EQ(gauge_of(snap, "migration_state"),
            static_cast<std::int64_t>(MigrationState::kDone));
  EXPECT_FALSE(has_warn_containing(log, "stalled"));
  EXPECT_TRUE(mig.verify_raid6());
}

TEST(MigrationMonitor, RateAndEtaFollowTheExplicitClock) {
  ObservedScope on;
  obs::Registry reg;
  obs::EventLog log;
  log.set_stderr_echo(false);
  const int p = 5, m = p - 1;
  const std::int64_t groups = 8;
  const std::int64_t rows = groups * (p - 1);
  DiskArray array(m, groups * (p - 1), kBlock);
  fill_raid5(array, m, 0xC56'0E7A);

  OnlineMigrator mig(array, p);
  MemoryCheckpointSink sink;
  mig.attach_journal(sink);

  MonitorConfig cfg;
  cfg.migration_id = "rate";
  MigrationMonitor monitor(mig, reg, log, cfg);

  monitor.poll_at(1'000'000);  // baseline at rows == 0
  EXPECT_EQ(monitor.eta_seconds(), -1.0);  // no rate observation yet
  EXPECT_EQ(gauge_of(reg.snapshot(), "migration_eta_ms"), -1);

  mig.start();
  mig.finish();
  ASSERT_EQ(mig.state(), MigrationState::kDone);
  // All `rows` rows landed in exactly one (synthetic) second, and the
  // first observation seeds the EWMA directly.
  monitor.poll_at(2'000'000);
  EXPECT_EQ(monitor.rows_done(), rows);
  EXPECT_EQ(monitor.rows_total(), rows);
  EXPECT_NEAR(monitor.rate_rows_per_sec(), static_cast<double>(rows), 1e-9);
  EXPECT_EQ(monitor.eta_seconds(), 0.0);  // complete
  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(gauge_of(snap, "migration_rate_rows_per_sec_x1000"), rows * 1000);
  EXPECT_EQ(gauge_of(snap, "migration_eta_ms"), 0);
}

TEST(MigrationMonitor, PhaseTimelineBracketsNamedStages) {
  ObservedScope on;
  obs::Registry reg;
  obs::EventLog log;
  log.set_stderr_echo(false);
  const int p = 5, m = p - 1;
  DiskArray array(m, 2 * (p - 1), kBlock);
  fill_raid5(array, m, 0xC56'9A5E);
  OnlineMigrator mig(array, p);

  MigrationMonitor monitor(mig, reg, log);

  monitor.begin_phase("plan");
  monitor.end_phase();
  monitor.begin_phase("verify");  // left open
  const std::vector<PhaseRecord> phases = monitor.phases();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].name, "plan");
  EXPECT_NE(phases[0].end_us, 0u);
  EXPECT_GE(phases[0].end_us, phases[0].start_us);
  EXPECT_EQ(phases[1].name, "verify");
  EXPECT_EQ(phases[1].end_us, 0u);  // still open
  EXPECT_NE(monitor.status_line().find("phase=verify"), std::string::npos)
      << monitor.status_line();
  // begin_phase closes any still-open phase.
  monitor.begin_phase("rebuild");
  ASSERT_EQ(monitor.phases().size(), 3u);
  EXPECT_NE(monitor.phases()[1].end_us, 0u);
}

// The flight-recorder acceptance path: a double source-disk failure
// (beyond the RAID-5 source's tolerance of one) aborts the conversion,
// the next poll auto-writes the configured bundle exactly once, and
// summarize_postmortem() reports the abort reason, last watermark,
// phase timeline, and the disk fault counters from the embedded
// registry snapshot.
TEST(MigrationMonitor, PostmortemBundleWrittenOnAbortAndSummarized) {
  ObservedScope on;
  obs::Registry reg;
  obs::EventLog log;
  log.set_stderr_echo(false);
  const int p = 5, m = p - 1;
  const std::int64_t groups = 8;
  DiskArray array(m, groups * (p - 1), kBlock);
  fill_raid5(array, m, 0xC56'DEAD);

  OnlineMigrator mig(array, p);
  MemoryCheckpointSink sink;
  mig.attach_journal(sink);
  mig.set_workers(2);
  RetryPolicy retry;
  retry.max_attempts = 2;
  retry.backoff_us = 1;
  mig.set_retry_policy(retry);

  // disk_array_* metrics must be in the registry for the bundle's
  // "disk faults" summary line.
  array.attach_metrics(reg);
  mig.attach_metrics(reg);
  mig.attach_events(log, "pm-test");

  // A detect-only scrub pass over a planted corruption before the
  // migration starts, so the bundle's registry snapshot carries
  // nonzero scrub_* counters for the summary's scrub block.
  scrub::Scrubber scrubber(array, mig);
  scrubber.set_repair(false);
  scrubber.attach_metrics(reg);
  array.corrupt_block(0, 0, 3, 0x40);
  const auto srep = scrubber.run_pass();
  ASSERT_EQ(srep.dirty, 1);
  array.corrupt_block(0, 0, 3, 0x40);  // XOR backdoor: undo the flip

  FaultPlan plan;
  plan.disk_failures.push_back({.disk = 1, .after_ios = 10});
  plan.disk_failures.push_back({.disk = 2, .after_ios = 30});
  array.set_fault_plan(plan);

  const std::string path = ::testing::TempDir() + "c56_pm_bundle.json";
  std::remove(path.c_str());
  MonitorConfig cfg;
  cfg.migration_id = "pm-test";
  cfg.postmortem_path = path;
  MigrationMonitor monitor(mig, reg, log, cfg);

  monitor.begin_phase("plan");
  monitor.end_phase();
  mig.start();
  mig.finish();
  ASSERT_EQ(mig.state(), MigrationState::kAborted);
  ASSERT_FALSE(mig.abort_reason().empty());
  monitor.poll();  // observes kAborted -> dumps the bundle

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "bundle was not written to " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bundle = buf.str();

  const std::string summary = summarize_postmortem(bundle);
  EXPECT_EQ(summary.rfind("post-mortem: migration 'pm-test'", 0), 0u)
      << summary;
  EXPECT_NE(summary.find("state aborted"), std::string::npos) << summary;
  EXPECT_NE(summary.find("abort reason:"), std::string::npos) << summary;
  EXPECT_NE(summary.find(mig.abort_reason()), std::string::npos) << summary;
  EXPECT_NE(summary.find("watermark: " + std::to_string(mig.groups_done()) +
                         "/" + std::to_string(groups) + " groups"),
            std::string::npos)
      << summary;
  // The explicit "plan" phase is in the timeline. (The automatic
  // "convert" phase only opens if a poll observes kConverting, which
  // this abort-too-fast run races past — not asserted.)
  EXPECT_NE(summary.find("plan"), std::string::npos) << summary;
  EXPECT_NE(summary.find("disk_failures=2"), std::string::npos) << summary;
  EXPECT_NE(summary.find("failed_disks=2"), std::string::npos) << summary;
  EXPECT_NE(summary.find("silent_corruptions=2"), std::string::npos)
      << summary;
  EXPECT_NE(summary.find("scrub: scanned=" + std::to_string(groups)),
            std::string::npos)
      << summary;
  EXPECT_NE(summary.find("dirty=1"), std::string::npos) << summary;
  EXPECT_NE(summary.find("[error]"), std::string::npos) << summary;

  // The dump is once-per-monitor: removing the file and polling again
  // must not re-create it.
  ASSERT_EQ(std::remove(path.c_str()), 0);
  monitor.poll();
  EXPECT_FALSE(std::ifstream(path).good());
}

TEST(MigrationMonitor, SummarizeRejectsNonBundleInput) {
  EXPECT_EQ(summarize_postmortem("{}").rfind("error:", 0), 0u);
  EXPECT_EQ(summarize_postmortem("not json at all").rfind("error:", 0), 0u);
}

}  // namespace
}  // namespace c56::mig
