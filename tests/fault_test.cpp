// Fault-injection layer: DiskArray bounds checking and FaultPlan
// semantics, the retry/reconstruct primitives of degraded.hpp, and the
// double-buffered checksummed migration journal.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "migration/degraded.hpp"
#include "migration/disk_array.hpp"
#include "migration/journal.hpp"

namespace c56::mig {
namespace {

constexpr std::size_t kBlock = 64;

RetryPolicy fast_retry() {
  RetryPolicy p;
  p.max_attempts = 4;
  p.backoff_us = 0;  // keep the suite fast
  return p;
}

TEST(DiskArrayBounds, RawBlockThrowsOutOfRange) {
  DiskArray a(2, 4, kBlock);
  EXPECT_THROW(a.raw_block(-1, 0), std::out_of_range);
  EXPECT_THROW(a.raw_block(2, 0), std::out_of_range);
  EXPECT_THROW(a.raw_block(0, -1), std::out_of_range);
  EXPECT_THROW(a.raw_block(0, 4), std::out_of_range);
  const DiskArray& ca = a;
  EXPECT_THROW(ca.raw_block(2, 0), std::out_of_range);
  EXPECT_NO_THROW(a.raw_block(1, 3));
}

TEST(DiskArrayBounds, CountedIoThrowsOutOfRangeWithCoordinates) {
  DiskArray a(2, 4, kBlock);
  std::vector<std::uint8_t> buf(kBlock);
  EXPECT_THROW(a.read_block(5, 0, buf), std::out_of_range);
  EXPECT_THROW(a.write_block(0, 99, buf), std::out_of_range);
  try {
    a.read_block(5, 7, buf);
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("5"), std::string::npos) << what;
    EXPECT_NE(what.find("7"), std::string::npos) << what;
  }
}

TEST(DiskArrayBounds, MismatchedBufferSizeRejected) {
  DiskArray a(2, 4, kBlock);
  std::vector<std::uint8_t> small(kBlock / 2);
  EXPECT_THROW(a.read_block(0, 0, small), std::invalid_argument);
  EXPECT_THROW(a.write_block(0, 0, small), std::invalid_argument);
}

TEST(FaultInjection, HealthyArrayReportsOk) {
  DiskArray a(2, 4, kBlock);
  std::vector<std::uint8_t> buf(kBlock, 0xAB);
  EXPECT_TRUE(a.write_block(0, 1, buf).ok());
  EXPECT_TRUE(a.read_block(0, 1, buf).ok());
  EXPECT_EQ(a.failed_disks(), 0);
}

TEST(FaultInjection, DiskFailsAfterScriptedIoCount) {
  DiskArray a(2, 8, kBlock);
  FaultPlan plan;
  plan.disk_failures.push_back({.disk = 1, .after_ios = 3});
  a.set_fault_plan(plan);
  std::vector<std::uint8_t> buf(kBlock, 1);
  EXPECT_TRUE(a.write_block(1, 0, buf).ok());
  EXPECT_TRUE(a.read_block(1, 0, buf).ok());
  EXPECT_TRUE(a.read_block(1, 1, buf).ok());  // 3rd I/O still served
  const IoResult r = a.read_block(1, 2, buf);
  EXPECT_EQ(r.status, IoStatus::kDiskFailed);
  EXPECT_EQ(r.disk, 1);
  EXPECT_EQ(r.block, 2);
  EXPECT_TRUE(a.disk_failed(1));
  EXPECT_FALSE(a.disk_failed(0));
  // Writes fail too, and the other disk is untouched.
  EXPECT_EQ(a.write_block(1, 0, buf).status, IoStatus::kDiskFailed);
  EXPECT_TRUE(a.read_block(0, 0, buf).ok());
}

TEST(FaultInjection, RepairClearsFailureAndScript) {
  DiskArray a(2, 4, kBlock);
  FaultPlan plan;
  plan.disk_failures.push_back({.disk = 0, .after_ios = 0});
  a.set_fault_plan(plan);
  std::vector<std::uint8_t> buf(kBlock);
  EXPECT_EQ(a.read_block(0, 0, buf).status, IoStatus::kDiskFailed);
  a.repair_disk(0);
  EXPECT_FALSE(a.disk_failed(0));
  // The scripted failure does not immediately re-trip.
  EXPECT_TRUE(a.read_block(0, 0, buf).ok());
}

TEST(FaultInjection, BadBlockFailsUntilRewritten) {
  DiskArray a(2, 4, kBlock);
  FaultPlan plan;
  plan.bad_blocks.push_back({.disk = 0, .block = 2});
  a.set_fault_plan(plan);
  std::vector<std::uint8_t> buf(kBlock, 0x11);
  EXPECT_EQ(a.read_block(0, 2, buf).status, IoStatus::kSectorError);
  EXPECT_EQ(a.read_block(0, 2, buf).status, IoStatus::kSectorError);
  EXPECT_TRUE(a.read_block(0, 3, buf).ok());  // neighbours unaffected
  EXPECT_TRUE(a.write_block(0, 2, buf).ok());  // remap on rewrite
  EXPECT_TRUE(a.read_block(0, 2, buf).ok());
}

TEST(FaultInjection, SectorErrorRateIsSeededAndTransient) {
  FaultPlan plan;
  plan.sector_error_rate = 0.5;
  plan.seed = 42;
  std::vector<std::uint8_t> buf(kBlock);
  int errors1 = 0;
  {
    DiskArray a(1, 4, kBlock);
    a.set_fault_plan(plan);
    for (int i = 0; i < 200; ++i) errors1 += !a.read_block(0, 0, buf).ok();
  }
  EXPECT_GT(errors1, 50);
  EXPECT_LT(errors1, 150);
  int errors2 = 0;
  {
    DiskArray a(1, 4, kBlock);
    a.set_fault_plan(plan);
    for (int i = 0; i < 200; ++i) errors2 += !a.read_block(0, 0, buf).ok();
  }
  EXPECT_EQ(errors1, errors2) << "same seed must replay identically";
}

TEST(FaultInjection, TornWritePersistsOnlyPrefix) {
  DiskArray a(1, 2, kBlock);
  std::ranges::fill(a.raw_block(0, 0), std::uint8_t{0xEE});
  FaultPlan plan;
  plan.torn_write_rate = 1.0;
  a.set_fault_plan(plan);
  std::vector<std::uint8_t> buf(kBlock, 0x55);
  const IoResult r = a.write_block(0, 0, buf);
  EXPECT_EQ(r.status, IoStatus::kTornWrite);
  const auto stored = a.raw_block(0, 0);
  EXPECT_EQ(stored[0], 0x55);
  EXPECT_EQ(stored[kBlock / 2 - 1], 0x55);
  EXPECT_EQ(stored[kBlock / 2], 0xEE) << "tail must keep the old bytes";
  EXPECT_EQ(stored[kBlock - 1], 0xEE);
}

TEST(DegradedIo, ReadRetrySurvivesTransientErrors) {
  DiskArray a(1, 4, kBlock);
  std::vector<std::uint8_t> want(kBlock, 0x3C);
  a.write_block(0, 1, want);
  FaultPlan plan;
  plan.sector_error_rate = 0.5;
  plan.seed = 7;
  a.set_fault_plan(plan);
  std::vector<std::uint8_t> got(kBlock);
  IoCounters c;
  int ok = 0;
  for (int i = 0; i < 100; ++i) {
    ok += read_block_retry(a, 0, 1, got, fast_retry(), &c).ok();
  }
  // P(4 consecutive misses) = 1/16 per call: the vast majority succeed.
  EXPECT_GT(ok, 80);
  EXPECT_GT(c.retries, 0u);
  EXPECT_EQ(c.reads, 100u + c.retries);
  EXPECT_EQ(got, want);
}

TEST(DegradedIo, ReadRetryGivesUpOnPersistentBadBlock) {
  DiskArray a(1, 4, kBlock);
  FaultPlan plan;
  plan.bad_blocks.push_back({.disk = 0, .block = 0});
  a.set_fault_plan(plan);
  std::vector<std::uint8_t> got(kBlock);
  IoCounters c;
  const IoResult r = read_block_retry(a, 0, 0, got, fast_retry(), &c);
  EXPECT_EQ(r.status, IoStatus::kSectorError);
  EXPECT_EQ(c.reads, 4u);
  EXPECT_EQ(c.retries, 3u);
}

TEST(DegradedIo, WriteRetryRepairsTornWrites) {
  DiskArray a(1, 2, kBlock);
  FaultPlan plan;
  plan.torn_write_rate = 0.5;
  plan.seed = 9;
  a.set_fault_plan(plan);
  std::vector<std::uint8_t> want(kBlock, 0x77);
  IoCounters c;
  int ok = 0;
  for (int i = 0; i < 100; ++i) {
    ok += write_block_retry(a, 0, 0, want, fast_retry(), &c).ok();
  }
  EXPECT_GT(ok, 80);
  EXPECT_GT(c.retries, 0u);
}

TEST(DegradedIo, XorChainReadReconstructs) {
  DiskArray a(3, 2, kBlock);
  std::vector<std::uint8_t> b0(kBlock, 0x0F), b1(kBlock, 0xF0);
  a.write_block(0, 0, b0);
  a.write_block(1, 0, b1);
  std::vector<std::uint8_t> out(kBlock, 0xAA);
  const BlockAddr srcs[] = {{0, 0}, {1, 0}};
  EXPECT_TRUE(xor_chain_read(a, srcs, out, fast_retry(), nullptr).ok());
  EXPECT_TRUE(std::ranges::all_of(out, [](std::uint8_t b) { return b == 0xFF; }));
}

TEST(DegradedIo, XorChainReadFailsOnFailedSource) {
  DiskArray a(3, 2, kBlock);
  a.fail_disk(1);
  std::vector<std::uint8_t> out(kBlock);
  const BlockAddr srcs[] = {{0, 0}, {1, 0}};
  const IoResult r = xor_chain_read(a, srcs, out, fast_retry(), nullptr);
  EXPECT_EQ(r.status, IoStatus::kDiskFailed);
  EXPECT_EQ(r.disk, 1);
}

TEST(Journal, EncodeDecodeRoundTrip) {
  const CheckpointRecord rec{.seq = 17, .groups_done = 123456789, .diag_rows = 4};
  const auto bytes = MigrationJournal::encode(rec);
  ASSERT_EQ(bytes.size(), MigrationJournal::kSlotBytes);
  const auto back = MigrationJournal::decode(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->seq, 17u);
  EXPECT_EQ(back->groups_done, 123456789);
  EXPECT_EQ(back->diag_rows, 4);
}

TEST(Journal, DecodeRejectsCorruption) {
  auto bytes = MigrationJournal::encode({.seq = 1, .groups_done = 2, .diag_rows = 3});
  EXPECT_TRUE(MigrationJournal::decode(bytes).has_value());
  bytes[20] ^= 0x01;  // flip one payload bit
  EXPECT_FALSE(MigrationJournal::decode(bytes).has_value());
  EXPECT_FALSE(MigrationJournal::decode({}).has_value());
  std::vector<std::uint8_t> truncated(bytes.begin(), bytes.begin() + 10);
  EXPECT_FALSE(MigrationJournal::decode(truncated).has_value());
}

TEST(Journal, RecoverPicksHighestValidSlot) {
  MemoryCheckpointSink sink;
  MigrationJournal j(sink);
  EXPECT_FALSE(j.recover().has_value());
  j.record(1, 0);
  j.record(1, 2);
  j.record(2, 0);
  MigrationJournal j2(sink);
  const auto rec = j2.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->groups_done, 2);
  EXPECT_EQ(rec->diag_rows, 0);
}

TEST(Journal, TornSlotFallsBackToOtherSlot) {
  MemoryCheckpointSink sink;
  MigrationJournal j(sink);
  j.record(5, 1);  // slot 0
  j.record(5, 2);  // slot 1 (latest)
  // Tear the latest slot: the journal must fall back to (5, 1).
  auto bytes = sink.read_slot(1);
  bytes.resize(bytes.size() / 2);
  sink.write_slot(1, bytes);
  MigrationJournal j2(sink);
  const auto rec = j2.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->groups_done, 5);
  EXPECT_EQ(rec->diag_rows, 1);
  // A new record after recovery overwrites the torn slot, not the
  // surviving one.
  j2.record(6, 0);
  ASSERT_TRUE(MigrationJournal::decode(sink.read_slot(0)).has_value());
  ASSERT_TRUE(MigrationJournal::decode(sink.read_slot(1)).has_value());
}

TEST(Journal, EqualSeqTieBreakPrefersLaterSlot) {
  // Two valid records can share a seq after a torn write of slot A is
  // retried into slot B (the writer re-records the same position): the
  // later slot is the fresher copy and must win. Pre-fix, recovery used
  // a strict `>` compare and kept slot 0.
  MemoryCheckpointSink sink;
  sink.write_slot(0, MigrationJournal::encode(
                         {.seq = 9, .groups_done = 3, .diag_rows = 1}));
  sink.write_slot(1, MigrationJournal::encode(
                         {.seq = 9, .groups_done = 3, .diag_rows = 2}));
  MigrationJournal j(sink);
  const auto rec = j.recover();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->seq, 9u);
  EXPECT_EQ(rec->groups_done, 3);
  EXPECT_EQ(rec->diag_rows, 2);  // later slot
  // The stale twin (slot 0) is overwritten first, keeping the winner.
  j.record(4, 0);
  const auto s0 = MigrationJournal::decode(sink.read_slot(0));
  const auto s1 = MigrationJournal::decode(sink.read_slot(1));
  ASSERT_TRUE(s0.has_value());
  ASSERT_TRUE(s1.has_value());
  EXPECT_EQ(s0->groups_done, 4);
  EXPECT_EQ(s1->diag_rows, 2);
}

TEST(Journal, SingleValidSlotRecovers) {
  for (int valid = 0; valid < 2; ++valid) {
    MemoryCheckpointSink sink;
    sink.write_slot(valid, MigrationJournal::encode(
                               {.seq = 5, .groups_done = 7, .diag_rows = 3}));
    MigrationJournal j(sink);
    const auto rec = j.recover();
    ASSERT_TRUE(rec.has_value()) << "valid slot " << valid;
    EXPECT_EQ(rec->groups_done, 7);
    EXPECT_EQ(rec->diag_rows, 3);
  }
}

TEST(Journal, BothSlotsCorruptRecoversNothing) {
  MemoryCheckpointSink sink;
  std::vector<std::uint8_t> junk(MigrationJournal::kSlotBytes, 0xA5);
  sink.write_slot(0, junk);
  junk.assign(MigrationJournal::kSlotBytes / 2, 0x5A);  // torn too
  sink.write_slot(1, junk);
  MigrationJournal j(sink);
  EXPECT_FALSE(j.recover().has_value());
}

TEST(Journal, FileSinkRoundTrips) {
  const auto path = std::filesystem::temp_directory_path() /
                    "c56_journal_test.bin";
  std::filesystem::remove(path);
  {
    FileCheckpointSink sink(path.string());
    MigrationJournal j(sink);
    EXPECT_FALSE(j.recover().has_value());
    j.record(3, 2);
    j.record(4, 0);
  }
  {
    FileCheckpointSink sink(path.string());
    MigrationJournal j(sink);
    const auto rec = j.recover();
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->groups_done, 4);
    EXPECT_EQ(rec->diag_rows, 0);
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace c56::mig
