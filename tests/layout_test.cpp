#include <gtest/gtest.h>

#include <set>

#include "layout/geometry.hpp"
#include "layout/raid.hpp"
#include "layout/stripe.hpp"

namespace c56 {
namespace {

TEST(Geometry, FlatIndexRoundTrip) {
  const int cols = 7;
  for (int r = 0; r < 5; ++r) {
    for (int c = 0; c < cols; ++c) {
      const int idx = flat_index({r, c}, cols);
      EXPECT_EQ(cell_of_index(idx, cols), (Cell{r, c}));
    }
  }
}

class Raid5FlavorTest : public ::testing::TestWithParam<Raid5Flavor> {};

TEST_P(Raid5FlavorTest, RowIsPermutationOfDisks) {
  const Raid5Flavor f = GetParam();
  for (int m : {3, 4, 5, 8}) {
    for (int row = 0; row < 3 * m; ++row) {
      std::set<int> used{raid5_parity_disk(f, row, m)};
      for (int k = 0; k < m - 1; ++k) {
        const int d = raid5_data_disk(f, row, k, m);
        EXPECT_GE(d, 0);
        EXPECT_LT(d, m);
        EXPECT_TRUE(used.insert(d).second)
            << "duplicate disk " << d << " flavor=" << to_string(f);
      }
      EXPECT_EQ(used.size(), static_cast<std::size_t>(m));
    }
  }
}

TEST_P(Raid5FlavorTest, ParityRotatesOverEveryDisk) {
  const Raid5Flavor f = GetParam();
  const int m = 5;
  std::set<int> disks;
  for (int row = 0; row < m; ++row) disks.insert(raid5_parity_disk(f, row, m));
  EXPECT_EQ(disks.size(), static_cast<std::size_t>(m));
}

INSTANTIATE_TEST_SUITE_P(AllFlavors, Raid5FlavorTest,
                         ::testing::Values(Raid5Flavor::kLeftAsymmetric,
                                           Raid5Flavor::kLeftSymmetric,
                                           Raid5Flavor::kRightAsymmetric,
                                           Raid5Flavor::kRightSymmetric));

TEST(Raid5, LeftAsymmetricMatchesPaperFigure) {
  // Left-asymmetric m=4: parity on disks 3,2,1,0 for rows 0..3 and data
  // fills the remaining disks left to right.
  const auto f = Raid5Flavor::kLeftAsymmetric;
  EXPECT_EQ(raid5_parity_disk(f, 0, 4), 3);
  EXPECT_EQ(raid5_parity_disk(f, 1, 4), 2);
  EXPECT_EQ(raid5_parity_disk(f, 2, 4), 1);
  EXPECT_EQ(raid5_parity_disk(f, 3, 4), 0);
  EXPECT_EQ(raid5_parity_disk(f, 4, 4), 3);  // period m
  EXPECT_EQ(raid5_data_disk(f, 1, 0, 4), 0);
  EXPECT_EQ(raid5_data_disk(f, 1, 1, 4), 1);
  EXPECT_EQ(raid5_data_disk(f, 1, 2, 4), 3);  // skips parity disk 2
}

TEST(Raid5, RightAsymmetricParityWalksForward) {
  const auto f = Raid5Flavor::kRightAsymmetric;
  EXPECT_EQ(raid5_parity_disk(f, 0, 4), 0);
  EXPECT_EQ(raid5_parity_disk(f, 1, 4), 1);
  EXPECT_EQ(raid5_data_disk(f, 0, 0, 4), 1);
}

TEST(Raid5, LeftSymmetricDataFollowsParity) {
  const auto f = Raid5Flavor::kLeftSymmetric;
  // Row 0: parity disk 3; data starts at disk 0 ((3+1) mod 4).
  EXPECT_EQ(raid5_data_disk(f, 0, 0, 4), 0);
  // Row 1: parity disk 2; data on 3, 0, 1.
  EXPECT_EQ(raid5_data_disk(f, 1, 0, 4), 3);
  EXPECT_EQ(raid5_data_disk(f, 1, 1, 4), 0);
  EXPECT_EQ(raid5_data_disk(f, 1, 2, 4), 1);
}

TEST(Raid04, Basics) {
  EXPECT_EQ(raid0_data_disk(9, 2, 5), 2);
  EXPECT_EQ(raid4_parity_disk(6), 5);
}

TEST(StripeView, BlockAddressing) {
  Buffer buf(3 * 4 * 8);
  StripeView v = StripeView::over(buf, 3, 4, 8);
  v.block({2, 1})[0] = 0x42;
  EXPECT_EQ(buf.data()[(2 * 4 + 1) * 8], 0x42);
  EXPECT_EQ(v.block(flat_index({2, 1}, 4))[0], 0x42);
  EXPECT_EQ(v.rows(), 3);
  EXPECT_EQ(v.cols(), 4);
  EXPECT_EQ(v.block_size(), 8u);
}

}  // namespace
}  // namespace c56
