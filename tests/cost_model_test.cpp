// Validates the Section V cost model against every number the paper
// states explicitly, plus internal consistency across approaches.

#include <gtest/gtest.h>

#include "codes/registry.hpp"
#include "migration/cost_model.hpp"

namespace c56::mig {
namespace {

ConversionCosts costs(CodeId code, Approach a, int p, bool lb = false) {
  return analyze(ConversionSpec::canonical(code, a, p, lb));
}

TEST(Spec, LabelsMatchPaperNotation) {
  EXPECT_EQ(ConversionSpec::direct_code56(4).label(),
            "RAID-5->RAID-6(Code 5-6,4,5)");
  EXPECT_EQ(
      ConversionSpec::canonical(CodeId::kRdp, Approach::kViaRaid0, 5).label(),
      "RAID-5->RAID-0->RAID-6(RDP,4,6)");
}

TEST(Spec, ValidityRules) {
  // Two-step approaches need a horizontal code.
  ConversionSpec s;
  s.code = CodeId::kXCode;
  s.approach = Approach::kViaRaid4;
  s.p = 5;
  s.m = 5;
  EXPECT_FALSE(s.valid());
  EXPECT_THROW(analyze(s), std::invalid_argument);
  // Direct conversion of a horizontal code is not meaningful either.
  s.code = CodeId::kRdp;
  s.approach = Approach::kDirect;
  s.m = 4;
  EXPECT_FALSE(s.valid());
  // Code 5-6 takes any m >= 2 with the matching prime.
  EXPECT_TRUE(ConversionSpec::direct_code56(2).valid());
  EXPECT_TRUE(ConversionSpec::direct_code56(9).valid());
}

TEST(CostModel, PaperWorkedExampleCode56) {
  // Section V-A: RAID-5->RAID-6(Code 5-6,4,5): invalid = migration =
  // extra space = 0, new parity ratio 1/3, write I/Os B/3, total 4B/3,
  // computation 2B/3, time B*Te/3.
  const ConversionCosts c = analyze(ConversionSpec::direct_code56(4));
  EXPECT_DOUBLE_EQ(c.invalid_parity_ratio, 0.0);
  EXPECT_DOUBLE_EQ(c.parity_migration_ratio, 0.0);
  EXPECT_DOUBLE_EQ(c.extra_space_ratio, 0.0);
  EXPECT_NEAR(c.new_parity_generation_ratio, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(c.write_io, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(c.read_io, 1.0, 1e-12);
  EXPECT_NEAR(c.total_io, 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(c.xor_per_block, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(c.time, 1.0 / 3.0, 1e-12);
}

TEST(CostModel, Code56GeneralFormulas) {
  // new parity ratio = 1/(p-2), reads = B, writes = B/(p-2),
  // XORs = (p-3)/(p-2) per data block, time = B*Te/(p-2) (NLB).
  for (int p : {5, 7, 11, 13, 17}) {
    const ConversionCosts c =
        analyze(ConversionSpec::direct_code56(p - 1));
    EXPECT_NEAR(c.new_parity_generation_ratio, 1.0 / (p - 2), 1e-12);
    EXPECT_NEAR(c.read_io, 1.0, 1e-12);
    EXPECT_NEAR(c.xor_per_block, static_cast<double>(p - 3) / (p - 2), 1e-12);
    EXPECT_NEAR(c.time, 1.0 / (p - 2), 1e-12);
  }
}

TEST(CostModel, Figure1aViaRaid0Rdp) {
  // Fig. 1(a): 12 data, 4 invalidated old parities, 8 new parities:
  // write I/Os = (8+4)/12 = B.
  const ConversionCosts c = costs(CodeId::kRdp, Approach::kViaRaid0, 5);
  EXPECT_NEAR(c.invalid_parity_ratio, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(c.new_parity_generation_ratio, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(c.write_io, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(c.parity_migration_ratio, 0.0);
}

TEST(CostModel, Figure1bViaRaid4Rdp) {
  // Fig. 1(b): old parities migrate (B/3), only diagonals generated.
  const ConversionCosts c = costs(CodeId::kRdp, Approach::kViaRaid4, 5);
  EXPECT_DOUBLE_EQ(c.invalid_parity_ratio, 0.0);
  EXPECT_NEAR(c.parity_migration_ratio, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(c.new_parity_generation_ratio, 1.0 / 3.0, 1e-12);
  EXPECT_LT(c.write_io, costs(CodeId::kRdp, Approach::kViaRaid0, 5).write_io);
}

TEST(CostModel, Figure1cXCodeExtraSpace) {
  // Fig. 1(c): "40% capacity of each disk is reserved" at p = 5.
  const ConversionCosts c = costs(CodeId::kXCode, Approach::kDirect, 5);
  EXPECT_NEAR(c.extra_space_ratio, 0.4, 1e-12);
  EXPECT_NEAR(c.invalid_parity_ratio, 0.25, 1e-12);  // 3 of 12 data blocks
  const ConversionCosts c7 = costs(CodeId::kXCode, Approach::kDirect, 7);
  EXPECT_NEAR(c7.extra_space_ratio, 2.0 / 7.0, 1e-12);
}

TEST(CostModel, ExtraSpaceByCodeFamily) {
  EXPECT_NEAR(costs(CodeId::kPCode, Approach::kDirect, 7).extra_space_ratio,
              1.0 / 3.0, 1e-12);  // one parity row of (p-1)/2
  EXPECT_NEAR(costs(CodeId::kHdp, Approach::kDirect, 7).extra_space_ratio,
              1.0 / 6.0, 1e-12);  // one anti-diagonal cell per p-1 rows
  EXPECT_DOUBLE_EQ(
      costs(CodeId::kEvenOdd, Approach::kViaRaid0, 5).extra_space_ratio, 0.0);
  EXPECT_GT(costs(CodeId::kHCode, Approach::kViaRaid4, 5).extra_space_ratio,
            0.0);
}

TEST(CostModel, Code56HasLowestTotalIoInFigureSet) {
  const double mine = analyze(ConversionSpec::direct_code56(4)).total_io;
  for (CodeId code : {CodeId::kRdp, CodeId::kEvenOdd, CodeId::kHCode}) {
    for (Approach a : {Approach::kViaRaid0, Approach::kViaRaid4}) {
      EXPECT_GT(costs(code, a, 5).total_io, mine) << to_string(code);
    }
  }
  EXPECT_GT(costs(CodeId::kXCode, Approach::kDirect, 5).total_io, mine);
  EXPECT_GT(costs(CodeId::kPCode, Approach::kDirect, 7).total_io, mine);
  EXPECT_GT(costs(CodeId::kHdp, Approach::kDirect, 7).total_io, mine);
}

TEST(CostModel, LoadBalancingNeverSlower) {
  for (CodeId code : all_code_ids()) {
    for (Approach a :
         {Approach::kViaRaid0, Approach::kViaRaid4, Approach::kDirect}) {
      for (int p : {5, 7, 13}) {
        ConversionSpec nlb;
        try {
          nlb = ConversionSpec::canonical(code, a, p, false);
        } catch (const std::invalid_argument&) {
          continue;
        }
        ConversionSpec lb = nlb;
        lb.load_balanced = true;
        EXPECT_LE(analyze(lb).time, analyze(nlb).time + 1e-12)
            << nlb.label();
      }
    }
  }
}

TEST(CostModel, TimeBoundedByTotalIoOverDisksAndBusiest) {
  for (const bool lb : {false, true}) {
    for (int p : {5, 7, 11}) {
      const ConversionCosts c = analyze(ConversionSpec::direct_code56(
          p - 1, lb));
      EXPECT_GE(c.time, c.total_io / c.spec.n() - 1e-12);
      EXPECT_LE(c.time, c.total_io + 1e-12);
    }
  }
}

TEST(CostModel, PhaseBreakdownSumsToTotals) {
  for (CodeId code : {CodeId::kRdp, CodeId::kEvenOdd, CodeId::kHCode}) {
    for (Approach a : {Approach::kViaRaid0, Approach::kViaRaid4}) {
      const ConversionCosts c = costs(code, a, 7);
      ASSERT_EQ(c.phases.size(), 2u);
      double reads = 0, writes = 0, xors = 0;
      for (const PhaseCost& ph : c.phases) {
        reads += ph.reads();
        writes += ph.writes();
        xors += ph.xors;
      }
      EXPECT_NEAR(reads, c.read_io, 1e-12);
      EXPECT_NEAR(writes, c.write_io, 1e-12);
      EXPECT_NEAR(xors, c.xor_per_block, 1e-12);
    }
  }
}

TEST(CostModel, ViaRaid4MigrationWritesLandOnParityDisk) {
  const ConversionCosts c = costs(CodeId::kRdp, Approach::kViaRaid4, 5);
  const PhaseCost& ph1 = c.phases[0];
  // All migration writes on column p-1 (the dedicated row-parity disk).
  for (std::size_t d = 0; d < ph1.disk_writes.size(); ++d) {
    if (d == 4) {
      EXPECT_NEAR(ph1.disk_writes[d], 1.0 / 3.0, 1e-12);
    } else {
      EXPECT_DOUBLE_EQ(ph1.disk_writes[d], 0.0);
    }
  }
}

TEST(CostModel, VirtualDiskConversionsAnalyzable) {
  for (int m = 2; m <= 16; ++m) {
    const ConversionCosts c = analyze(ConversionSpec::direct_code56(m));
    EXPECT_GT(c.new_parity_generation_ratio, 0.0) << m;
    EXPECT_GT(c.time, 0.0) << m;
    EXPECT_DOUBLE_EQ(c.invalid_parity_ratio, 0.0) << m;
    // Virtual-disk variants generate p-1 parities per m(m-1) data.
    const int p = c.spec.p;
    EXPECT_NEAR(c.new_parity_generation_ratio,
                static_cast<double>(p - 1) / (m * (m - 1)), 1e-12)
        << m;
  }
}

// Sub-block single-write pricing: the delta plane moves only the
// touched bytes but pays the same number of disk accesses (repositions)
// as a whole-block RMW, so ops match Table III and only bytes/device
// time shrink with the range.
TEST(SingleWriteCostModel, OpsMatchTableIII) {
  constexpr std::size_t kBs = 65536;
  const auto ops = [](CodeId id, int p) {
    return single_write_cost(*make_code(id, p), kBs, 4096).ops;
  };
  // Optimal-update codes pay 6 accesses per logical write.
  EXPECT_DOUBLE_EQ(ops(CodeId::kCode56, 5), 6.0);
  EXPECT_DOUBLE_EQ(ops(CodeId::kCode56, 11), 6.0);
  EXPECT_DOUBLE_EQ(ops(CodeId::kXCode, 5), 6.0);
  EXPECT_DOUBLE_EQ(ops(CodeId::kPCode, 7), 6.0);
  EXPECT_DOUBLE_EQ(ops(CodeId::kHCode, 5), 6.0);
  // RDP's dependent diagonals cost more; EVENODD's adjuster is worse.
  EXPECT_GT(ops(CodeId::kRdp, 5), 6.0);
  EXPECT_GT(ops(CodeId::kEvenOdd, 5), ops(CodeId::kRdp, 5));
}

TEST(SingleWriteCostModel, DeltaBeatsWholeBlockRmwForSmallRanges) {
  constexpr std::size_t kBs = 65536;
  const auto code = make_code(CodeId::kCode56, 7);
  for (const std::size_t len : {std::size_t{1}, kBs / 16, kBs / 4,
                                kBs / 2 - 1}) {
    const SingleWriteCost delta = single_write_cost(*code, kBs, len, true);
    const SingleWriteCost whole = single_write_cost(*code, kBs, len, false);
    // Same repositions, fewer bytes, strictly cheaper on the device
    // model for any len < block_size / 2 (and indeed any len < bs).
    EXPECT_DOUBLE_EQ(delta.ops, whole.ops) << "len=" << len;
    EXPECT_DOUBLE_EQ(delta.bytes, delta.ops * static_cast<double>(len))
        << "len=" << len;
    EXPECT_DOUBLE_EQ(whole.bytes, whole.ops * static_cast<double>(kBs))
        << "len=" << len;
    EXPECT_LT(delta.device_ms, whole.device_ms) << "len=" << len;
  }
}

TEST(SingleWriteCostModel, FullBlockRangeDegeneratesToWholeBlock) {
  constexpr std::size_t kBs = 4096;
  const auto code = make_code(CodeId::kCode56, 5);
  const SingleWriteCost delta = single_write_cost(*code, kBs, kBs, true);
  const SingleWriteCost whole = single_write_cost(*code, kBs, kBs, false);
  EXPECT_DOUBLE_EQ(delta.ops, whole.ops);
  EXPECT_DOUBLE_EQ(delta.bytes, whole.bytes);
  EXPECT_DOUBLE_EQ(delta.device_ms, whole.device_ms);
}

TEST(SingleWriteCostModel, RejectsBadRanges) {
  const auto code = make_code(CodeId::kCode56, 5);
  EXPECT_THROW(single_write_cost(*code, 4096, 0), std::invalid_argument);
  EXPECT_THROW(single_write_cost(*code, 4096, 4097), std::invalid_argument);
  EXPECT_THROW(single_write_cost(*code, 0, 1), std::invalid_argument);
}

TEST(CostModel, DataBlocksPerStripeMatchesGeometry) {
  EXPECT_NEAR(data_blocks_per_stripe(ConversionSpec::direct_code56(4)), 12.0,
              1e-12);
  EXPECT_NEAR(data_blocks_per_stripe(
                  ConversionSpec::canonical(CodeId::kRdp,
                                            Approach::kViaRaid0, 5)),
              12.0, 1e-12);
  EXPECT_NEAR(data_blocks_per_stripe(
                  ConversionSpec::canonical(CodeId::kXCode,
                                            Approach::kDirect, 5)),
              12.0, 1e-12);
  EXPECT_NEAR(data_blocks_per_stripe(
                  ConversionSpec::canonical(CodeId::kEvenOdd,
                                            Approach::kViaRaid0, 5)),
              16.0, 1e-12);
}

}  // namespace
}  // namespace c56::mig
