// Event-log tests: ring retention, the level-gating and always-record-
// warnings contract, per-key rate limiting with an observable dropped
// counter, the JSONL sink, metrics attachment, and the routing of
// util::warn_env_once knob warnings into the global log.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "util/env.hpp"
#include "xorblk/kernel.hpp"

namespace c56 {
namespace {

obs::Event make_event(obs::EventLevel level, std::string msg) {
  obs::Event ev;
  ev.level = level;
  ev.category = "test";
  ev.message = std::move(msg);
  return ev;
}

/// Arm events_enabled() for one test body and restore the default.
class EventsEnabledScope {
 public:
  EventsEnabledScope() { obs::set_events_enabled(true); }
  ~EventsEnabledScope() { obs::set_events_enabled(false); }
};

TEST(EventLog, RingKeepsNewestAndCountsOverwrites) {
  EventsEnabledScope on;
  obs::EventLog log(4);
  log.set_stderr_echo(false);
  for (int i = 0; i < 6; ++i) {
    log.emit(make_event(obs::EventLevel::kInfo, "e" + std::to_string(i)),
             "k" + std::to_string(i));
  }
  EXPECT_EQ(log.emitted(), 6u);
  EXPECT_EQ(log.overwritten(), 2u);
  const std::vector<obs::Event> events = log.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].message,
              "e" + std::to_string(i + 2));
  }
  // Sequence numbers are monotonic and the tail is the newest slice.
  EXPECT_LT(events[0].seq, events[3].seq);
  const std::vector<obs::Event> last2 = log.tail(2);
  ASSERT_EQ(last2.size(), 2u);
  EXPECT_EQ(last2[0].message, "e4");
  EXPECT_EQ(last2[1].message, "e5");
}

TEST(EventLog, DebugAndInfoAreGatedWarnAndErrorAreNot) {
  // Default state: events disabled.
  ASSERT_FALSE(obs::events_enabled());
  obs::EventLog log;
  log.set_stderr_echo(false);
  log.emit(make_event(obs::EventLevel::kDebug, "dropped debug"));
  log.emit(make_event(obs::EventLevel::kInfo, "dropped info"));
  EXPECT_EQ(log.emitted(), 0u);
  EXPECT_EQ(log.dropped(), 0u);  // gated out, not rate-limited
  // The flight-recorder guarantee: warnings and errors always record.
  log.emit(make_event(obs::EventLevel::kWarn, "kept warn"));
  log.emit(make_event(obs::EventLevel::kError, "kept error"));
  EXPECT_EQ(log.emitted(), 2u);
  const std::vector<obs::Event> events = log.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].message, "kept warn");
  EXPECT_EQ(events[1].message, "kept error");
}

TEST(EventLog, RateLimiterDropsPerKeyAndExportsTheDropCount) {
  EventsEnabledScope on;
  obs::Registry reg;  // must outlive the attach_metrics handle below
  obs::EventLog log;
  log.set_stderr_echo(false);
  log.set_rate_limit(2);
  for (int i = 0; i < 5; ++i) {
    obs::Event ev = make_event(obs::EventLevel::kInfo,
                               "occurrence " + std::to_string(i));
    log.emit(std::move(ev), "stable_key");
  }
  // A different key has its own budget.
  log.emit(make_event(obs::EventLevel::kInfo, "other"), "other_key");
  EXPECT_EQ(log.emitted(), 3u);
  EXPECT_EQ(log.dropped(), 3u);

  log.attach_metrics(reg);
  const obs::Snapshot snap = reg.snapshot();
  ASSERT_NE(snap.find("events_dropped"), nullptr);
  EXPECT_EQ(snap.find("events_dropped")->counter, 3u);
  EXPECT_EQ(snap.find("events_emitted")->counter, 3u);
  EXPECT_EQ(snap.find("events_overwritten")->counter, 0u);

  // clear() resets the budget, so the key records again.
  log.clear();
  log.emit(make_event(obs::EventLevel::kInfo, "after clear"), "stable_key");
  EXPECT_EQ(log.emitted(), 1u);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(EventLog, DefaultRateKeyIsCategoryPlusMessage) {
  EventsEnabledScope on;
  obs::EventLog log;
  log.set_stderr_echo(false);
  log.set_rate_limit(1);
  log.emit(make_event(obs::EventLevel::kInfo, "same"));
  log.emit(make_event(obs::EventLevel::kInfo, "same"));      // suppressed
  log.emit(make_event(obs::EventLevel::kInfo, "different"));  // own key
  EXPECT_EQ(log.emitted(), 2u);
  EXPECT_EQ(log.dropped(), 1u);
}

TEST(EventLog, ToJsonOmitsUnsetFieldsAndEscapes) {
  obs::Event ev = make_event(obs::EventLevel::kWarn, "a \"quoted\" msg");
  ev.migration_id = "mig-1";
  ev.group = 7;
  ev.worker = 2;
  ev.t_us = 123;
  ev.seq = 9;
  const std::string json = to_json(ev);
  EXPECT_NE(json.find("\"level\": \"warn\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"category\": \"test\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"migration_id\": \"mig-1\""), std::string::npos);
  EXPECT_NE(json.find("\"group\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"worker\": 2"), std::string::npos);
  // disk/block were left at -1: omitted entirely.
  EXPECT_EQ(json.find("\"disk\""), std::string::npos);
  EXPECT_EQ(json.find("\"block\""), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(EventLog, JsonlSinkWritesOneLinePerEvent) {
  EventsEnabledScope on;
  const std::string path =
      ::testing::TempDir() + "c56_events_test_sink.jsonl";
  obs::EventLog log;
  log.set_stderr_echo(false);
  ASSERT_TRUE(log.set_jsonl_path(path));
  obs::Event ev = make_event(obs::EventLevel::kInfo, "to file");
  ev.disk = 3;
  log.emit(std::move(ev));
  log.emit(make_event(obs::EventLevel::kWarn, "second line"));
  ASSERT_TRUE(log.set_jsonl_path(""));  // closes + flushes

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"message\": \"to file\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"disk\": 3"), std::string::npos);
  EXPECT_NE(lines[1].find("\"level\": \"warn\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(EventLog, LevelNames) {
  EXPECT_STREQ(to_string(obs::EventLevel::kDebug), "debug");
  EXPECT_STREQ(to_string(obs::EventLevel::kInfo), "info");
  EXPECT_STREQ(to_string(obs::EventLevel::kWarn), "warn");
  EXPECT_STREQ(to_string(obs::EventLevel::kError), "error");
}

// ---------------------------------------------------------------------
// util::warn_env_once routing into the global log
// ---------------------------------------------------------------------

TEST(EventLogEnvRouting, ClampWarningBecomesStructuredEvent) {
  obs::EventLog& log = obs::EventLog::global();
  log.set_stderr_echo(false);
  log.clear();
  // warn_env_once dedups per name for the process lifetime, so this
  // test owns a knob name nothing else touches.
  ASSERT_EQ(::setenv("C56_EVENTS_TEST_KNOB", "999999", 1), 0);
  const std::optional<long long> v =
      util::env_int("C56_EVENTS_TEST_KNOB", 1, 64);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 64);  // clamped to the nearer bound
  ::unsetenv("C56_EVENTS_TEST_KNOB");

  const std::vector<obs::Event> events = log.snapshot();
  ASSERT_FALSE(events.empty());
  const obs::Event& ev = events.back();
  EXPECT_EQ(ev.level, obs::EventLevel::kWarn);
  EXPECT_EQ(ev.category, "C56_EVENTS_TEST_KNOB");
  EXPECT_NE(ev.message.find("clamp"), std::string::npos) << ev.message;
}

TEST(EventLogEnvRouting, UnknownXorKernelNameBecomesStructuredEvent) {
  obs::EventLog& log = obs::EventLog::global();
  log.set_stderr_echo(false);
  log.clear();
  // The kernel registry warns (once per process, at first touch)
  // through warn_env_once when C56_XOR_KERNEL names no registered
  // kernel; nothing else in this binary touches the registry first.
  ASSERT_EQ(::setenv("C56_XOR_KERNEL", "no-such-kernel", 1), 0);
  (void)active_kernel();
  ::unsetenv("C56_XOR_KERNEL");

  bool found = false;
  for (const obs::Event& ev : log.snapshot()) {
    if (ev.category == "C56_XOR_KERNEL" &&
        ev.level == obs::EventLevel::kWarn) {
      found = true;
    }
  }
  EXPECT_TRUE(found)
      << "unknown kernel name warning did not reach the event log";
}

}  // namespace
}  // namespace c56
