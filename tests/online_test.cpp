// Integration tests for Algorithm 2: online RAID-5 -> RAID-6 migration
// over the in-memory disk array, with and without a concurrent
// application workload, followed by failure-recovery checks on the
// migrated array.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <thread>

#include "layout/raid.hpp"
#include "migration/disk_array.hpp"
#include "migration/online.hpp"
#include "util/rng.hpp"
#include "xorblk/xor.hpp"

namespace c56::mig {
namespace {

constexpr std::size_t kBlock = 64;

/// Build a valid left-asymmetric RAID-5 with random data.
void fill_raid5(DiskArray& array, int m, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> block(kBlock), parity(kBlock);
  for (std::int64_t row = 0; row < array.blocks_per_disk(); ++row) {
    std::fill(parity.begin(), parity.end(), 0);
    const int pdisk = raid5_parity_disk(Raid5Flavor::kLeftAsymmetric,
                                        static_cast<int>(row % m), m);
    for (int d = 0; d < m; ++d) {
      if (d == pdisk) continue;
      rng.fill(block.data(), kBlock);
      std::ranges::copy(block, array.raw_block(d, row).begin());
      xor_into(parity.data(), block.data(), kBlock);
    }
    std::ranges::copy(parity, array.raw_block(pdisk, row).begin());
  }
}

TEST(DiskArray, CountersTrackAccesses) {
  DiskArray a(2, 4, kBlock);
  std::vector<std::uint8_t> buf(kBlock, 0x5A);
  a.write_block(1, 2, buf);
  a.read_block(1, 2, buf);
  a.read_block(0, 0, buf);
  EXPECT_EQ(a.writes(1), 1u);
  EXPECT_EQ(a.reads(1), 1u);
  EXPECT_EQ(a.reads(0), 1u);
  EXPECT_EQ(a.total_reads(), 2u);
  EXPECT_EQ(a.total_writes(), 1u);
  EXPECT_EQ(a.raw_block(1, 2)[0], 0x5A);
}

TEST(DiskArray, AddDiskZeroed) {
  DiskArray a(2, 4, kBlock);
  const int d = a.add_disk();
  EXPECT_EQ(d, 2);
  EXPECT_EQ(a.disks(), 3);
  EXPECT_TRUE(all_zero(a.raw_block(2, 3)));
}

TEST(OnlineMigrator, WorkersKnobChecksItsInput) {
  // C56_CONVERT_WORKERS goes through the checked env parser: garbage
  // keeps the default, out-of-range clamps to [1, 64]. Pre-fix this was
  // a bare atoi, so "bananas" silently became 0 workers.
  DiskArray array(4, 8, kBlock);
  const auto workers_with = [&](const char* v) {
    ::setenv("C56_CONVERT_WORKERS", v, 1);
    OnlineMigrator mig(array, 5);
    ::unsetenv("C56_CONVERT_WORKERS");
    return mig.workers();
  };
  EXPECT_EQ(workers_with("3"), 3);
  EXPECT_EQ(workers_with("bananas"), 1);   // garbage -> default
  EXPECT_EQ(workers_with("0"), 1);         // below range -> clamp
  EXPECT_EQ(workers_with("-12"), 1);       // negative -> clamp
  EXPECT_EQ(workers_with("100000"), 64);   // huge -> clamp
  EXPECT_EQ(workers_with("99999999999999999999"), 64);  // overflow -> clamp
}

TEST(OnlineMigrator, RejectsBadGeometry) {
  DiskArray wrong_disks(3, 8, kBlock);
  EXPECT_THROW(OnlineMigrator(wrong_disks, 5), std::invalid_argument);
  DiskArray wrong_rows(4, 7, kBlock);
  EXPECT_THROW(OnlineMigrator(wrong_rows, 5), std::invalid_argument);
}

TEST(OnlineMigrator, QuiescentMigrationProducesValidRaid6) {
  for (int p : {5, 7}) {
    const int m = p - 1;
    DiskArray array(m, 8LL * (p - 1), kBlock);
    fill_raid5(array, m, 1);
    OnlineMigrator mig(array, p);
    mig.start();
    mig.finish();
    EXPECT_EQ(mig.groups_done(), 8);
    EXPECT_TRUE(mig.verify_raid6()) << "p=" << p;
    // Converter I/O matches the paper's per-stripe counts: (p-1)(p-2)
    // reads and p-1 writes per group.
    const OnlineStats st = mig.stats();
    EXPECT_EQ(st.conv_reads, static_cast<std::uint64_t>(8 * (p - 1) * (p - 2)));
    EXPECT_EQ(st.conv_writes, static_cast<std::uint64_t>(8 * (p - 1)));
    // Only the added disk was written.
    for (int d = 0; d < m; ++d) EXPECT_EQ(array.writes(d), 0u) << d;
    EXPECT_EQ(array.writes(m), st.conv_writes);
  }
}

TEST(OnlineMigrator, ReadsSeeRaid5Data) {
  const int p = 5, m = 4;
  DiskArray array(m, 4LL * (p - 1), kBlock);
  fill_raid5(array, m, 2);
  OnlineMigrator mig(array, p);
  std::vector<std::uint8_t> got(kBlock);
  // Logical block 0 lives on disk 0, block 0 (left-asymmetric row 0).
  mig.read_block(0, got);
  EXPECT_TRUE(std::ranges::equal(got, array.raw_block(0, 0)));
  // Logical block 3 is the first block of stripe row 1 (disk 0).
  mig.read_block(3, got);
  EXPECT_TRUE(std::ranges::equal(got, array.raw_block(0, 1)));
}

TEST(OnlineMigrator, WritesBeforeStartMaintainRaid5Parity) {
  const int p = 5, m = 4;
  DiskArray array(m, 2LL * (p - 1), kBlock);
  fill_raid5(array, m, 3);
  OnlineMigrator mig(array, p);
  Rng rng(4);
  std::vector<std::uint8_t> buf(kBlock);
  for (std::int64_t l = 0; l < mig.logical_blocks(); l += 2) {
    rng.fill(buf.data(), kBlock);
    mig.write_block(l, buf);
  }
  // Every row's horizontal parity must still close.
  Buffer acc(kBlock);
  for (std::int64_t row = 0; row < array.blocks_per_disk(); ++row) {
    acc.zero();
    for (int d = 0; d < m; ++d) xor_into(acc.span(), array.raw_block(d, row));
    EXPECT_TRUE(all_zero(acc.span())) << "row " << row;
  }
  // And a subsequent quiescent migration still yields a valid RAID-6.
  mig.start();
  mig.finish();
  EXPECT_TRUE(mig.verify_raid6());
}

TEST(OnlineMigrator, ConcurrentWorkloadKeepsConsistency) {
  const int p = 7, m = 6;
  const std::int64_t groups = 128;
  DiskArray array(m, groups * (p - 1), kBlock);
  fill_raid5(array, m, 5);

  OnlineMigrator mig(array, p);
  const std::int64_t logical = mig.logical_blocks();

  // Application model: remember what we wrote.
  std::map<std::int64_t, Buffer> model;
  mig.start();
  {
    // A fixed op count keeps the test meaningful whether or not the
    // converter finishes first: writes must stay consistent in either
    // regime (mid-conversion RMW vs post-conversion RMW).
    Rng rng(6);
    Buffer buf(kBlock);
    for (int i = 0; i < 6000; ++i) {
      const auto l = static_cast<std::int64_t>(
          rng.next_below(static_cast<std::uint64_t>(logical)));
      if (rng.next_below(2) == 0) {
        rng.fill(buf.data(), kBlock);
        mig.write_block(l, buf.span());
        model[l] = buf;
      } else {
        Buffer got(kBlock);
        mig.read_block(l, got.span());
        if (auto it = model.find(l); it != model.end()) {
          EXPECT_TRUE(got == it->second) << "stale read at " << l;
        }
      }
    }
  }
  mig.finish();
  EXPECT_TRUE(mig.verify_raid6());
  // All writes visible after migration.
  Buffer got(kBlock);
  for (const auto& [l, want] : model) {
    mig.read_block(l, got.span());
    EXPECT_TRUE(got == want) << "lost write at " << l;
  }
  const OnlineStats st = mig.stats();
  EXPECT_GT(st.app_writes, 0u);
}

TEST(OnlineMigrator, MigratedArraySurvivesDoubleFailure) {
  const int p = 5, m = 4;
  const std::int64_t groups = 6;
  DiskArray array(m, groups * (p - 1), kBlock);
  fill_raid5(array, m, 7);
  OnlineMigrator mig(array, p);
  mig.start();
  mig.finish();
  ASSERT_TRUE(mig.verify_raid6());

  const Code56& code = mig.code();
  for (auto [f1, f2] : {std::pair{0, 1}, std::pair{2, 4}, std::pair{1, 3}}) {
    for (std::int64_t g = 0; g < groups; ++g) {
      Buffer stripe(static_cast<std::size_t>(code.cell_count()) * kBlock);
      StripeView v = StripeView::over(stripe, p - 1, p, kBlock);
      for (int r = 0; r <= p - 2; ++r) {
        for (int c = 0; c <= p - 1; ++c) {
          std::ranges::copy(array.raw_block(c, g * (p - 1) + r),
                            v.block({r, c}).begin());
        }
      }
      const Buffer before = stripe;
      Rng junk(9);
      for (int c : {f1, f2}) {
        for (int r = 0; r <= p - 2; ++r) {
          junk.fill(v.block({r, c}).data(), kBlock);
        }
      }
      const std::vector<int> failed{f1, f2};
      ASSERT_TRUE(code.decode_columns(v, failed).has_value());
      EXPECT_TRUE(stripe == before) << "group " << g;
    }
  }
}

TEST(OnlineMigrator, RevertToRaid5DropsDiagonalColumn) {
  const int p = 5, m = 4;
  DiskArray array(m, 1LL * (p - 1), kBlock);
  fill_raid5(array, m, 8);
  OnlineMigrator mig(array, p);
  mig.start();
  mig.finish();
  const int dropped = mig.revert_to_raid5();
  EXPECT_EQ(dropped, m);
  // The first m disks still close every horizontal parity chain.
  Buffer acc(kBlock);
  for (std::int64_t row = 0; row < array.blocks_per_disk(); ++row) {
    acc.zero();
    for (int d = 0; d < m; ++d) xor_into(acc.span(), array.raw_block(d, row));
    EXPECT_TRUE(all_zero(acc.span()));
  }
}

}  // namespace
}  // namespace c56::mig
