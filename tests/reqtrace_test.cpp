// Request-lifecycle tracing layer tests: histogram interval deltas
// (incl. reset underflow), count_above estimation, the slowest-N
// exemplar ring, device-time accumulation, TraceRecorder ring wrap
// under concurrent writers (valid Chrome JSON, no dangling parents,
// exact dropped counter), and the MetricsSampler JSONL sink bound.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "migration/disk_array.hpp"
#include "obs/metrics.hpp"
#include "obs/reqtrace.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"

namespace c56 {
namespace {

// ---------------------------------------------------------------------
// HistogramSnapshot::minus / count_above
// ---------------------------------------------------------------------

TEST(SnapshotDelta, MinusYieldsIntervalCountsAndQuantiles) {
  obs::Histogram h;
  for (int i = 0; i < 100; ++i) h.observe(10);  // bucket [8, 15]
  const obs::HistogramSnapshot before = h.snapshot();
  for (int i = 0; i < 50; ++i) h.observe(1000);  // bucket [512, 1023]
  const obs::HistogramSnapshot after = h.snapshot();

  const obs::HistogramSnapshot d = after.minus(before);
  EXPECT_EQ(d.count, 50u);
  EXPECT_EQ(d.sum, 50u * 1000u);
  ASSERT_EQ(d.buckets.size(), 1u);
  EXPECT_EQ(d.buckets[0].first, 1023u);
  EXPECT_EQ(d.buckets[0].second, 50u);
  // Every interval sample sits in [512, 1023]: so must its quantiles.
  EXPECT_GE(d.p50, 512.0);
  EXPECT_LE(d.p99, 1023.0);
}

TEST(SnapshotDelta, MinusOfIdenticalSnapshotsIsEmpty) {
  obs::Histogram h;
  h.observe(7);
  const obs::HistogramSnapshot s = h.snapshot();
  const obs::HistogramSnapshot d = s.minus(s);
  EXPECT_EQ(d.count, 0u);
  EXPECT_EQ(d.sum, 0u);
  EXPECT_TRUE(d.buckets.empty());
  EXPECT_EQ(d.p99, 0.0);
}

TEST(SnapshotDelta, ResetBetweenSnapshotsFallsBackToCurrent) {
  obs::Histogram h;
  for (int i = 0; i < 10; ++i) h.observe(100);
  const obs::HistogramSnapshot before = h.snapshot();
  h.reset();
  for (int i = 0; i < 3; ++i) h.observe(100);
  const obs::HistogramSnapshot after = h.snapshot();
  // Total count went 10 -> 3: naive subtraction would underflow. The
  // helper detects the reset and returns the current snapshot as-is.
  const obs::HistogramSnapshot d = after.minus(before);
  EXPECT_EQ(d.count, 3u);
  EXPECT_EQ(d.sum, 300u);
}

TEST(SnapshotDelta, BucketUnderflowWithGrownCountFallsBackToCurrent) {
  // count and sum both grow, but one bucket shrank (reset + different
  // value mix) — the per-bucket check must still catch it.
  obs::Histogram h;
  for (int i = 0; i < 5; ++i) h.observe(10);
  const obs::HistogramSnapshot before = h.snapshot();
  h.reset();
  for (int i = 0; i < 2; ++i) h.observe(10);      // [8,15] shrank 5 -> 2
  for (int i = 0; i < 20; ++i) h.observe(1000);   // count grew 5 -> 22
  const obs::HistogramSnapshot after = h.snapshot();
  ASSERT_GT(after.count, before.count);
  ASSERT_GT(after.sum, before.sum);
  const obs::HistogramSnapshot d = after.minus(before);
  EXPECT_EQ(d.count, after.count);
  EXPECT_EQ(d.sum, after.sum);
}

TEST(SnapshotDelta, CountAboveCountsWholeAndStraddlingBuckets) {
  obs::Histogram h;
  for (int i = 0; i < 10; ++i) h.observe(4);     // [4,7] bucket
  for (int i = 0; i < 20; ++i) h.observe(1000);  // [512,1023] bucket
  const obs::HistogramSnapshot s = h.snapshot();
  // Threshold below both buckets: everything counts.
  EXPECT_DOUBLE_EQ(s.count_above(3), 30.0);
  // Threshold above both: nothing counts.
  EXPECT_DOUBLE_EQ(s.count_above(1023), 0.0);
  // Between the buckets: only the slow 20.
  EXPECT_DOUBLE_EQ(s.count_above(100), 20.0);
  // Straddling [512,1023]: a linear fraction of the 20.
  const double mid = s.count_above(767);
  EXPECT_GT(mid, 0.0);
  EXPECT_LT(mid, 20.0);
}

// ---------------------------------------------------------------------
// SlowRequestRing
// ---------------------------------------------------------------------

TEST(SlowRing, KeepsSlowestNInOrder) {
  obs::SlowRequestRing ring(4);
  for (std::uint64_t us = 1; us <= 10; ++us) {
    obs::SlowRequest r;
    r.trace_id = us;
    r.latency_us = us * 100;
    ring.offer(r);
  }
  const auto slow = ring.snapshot();
  ASSERT_EQ(slow.size(), 4u);
  EXPECT_EQ(slow[0].latency_us, 1000u);  // slowest first
  EXPECT_EQ(slow[1].latency_us, 900u);
  EXPECT_EQ(slow[2].latency_us, 800u);
  EXPECT_EQ(slow[3].latency_us, 700u);
  EXPECT_EQ(ring.considered(), 10u);
}

TEST(SlowRing, RejectsAtOrBelowFloorOnceFull) {
  obs::SlowRequestRing ring(2);
  obs::SlowRequest r;
  r.latency_us = 500;
  ring.offer(r);
  ring.offer(r);  // full at floor 500
  const std::uint64_t admitted = ring.admitted();
  r.latency_us = 500;
  ring.offer(r);  // ties lose
  r.latency_us = 100;
  ring.offer(r);
  EXPECT_EQ(ring.admitted(), admitted);
  r.latency_us = 501;
  ring.offer(r);
  EXPECT_EQ(ring.admitted(), admitted + 1);
}

TEST(SlowRing, ConcurrentOffersKeepTheGlobalSlowest) {
  obs::SlowRequestRing ring(8);
  constexpr int kThreads = 4, kPerThread = 1000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&ring, t] {
      for (int i = 0; i < kPerThread; ++i) {
        obs::SlowRequest r;
        r.latency_us =
            static_cast<std::uint64_t>(t * kPerThread + i + 1);
        ring.offer(r);
      }
    });
  }
  for (auto& t : ts) t.join();
  const auto slow = ring.snapshot();
  ASSERT_EQ(slow.size(), 8u);
  // The 8 slowest of 1..4000 survive regardless of interleaving.
  for (std::size_t i = 0; i < slow.size(); ++i) {
    EXPECT_EQ(slow[i].latency_us,
              static_cast<std::uint64_t>(kThreads * kPerThread - i));
  }
  EXPECT_EQ(ring.considered(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(SlowRing, ToJsonCarriesStageBreakdown) {
  obs::SlowRequestRing ring(2);
  obs::SlowRequest r;
  r.trace_id = 42;
  r.tenant = 3;
  r.volume = 1;
  r.op = 1;  // write
  r.latency_us = 777;
  r.stage_us[0] = 100;
  r.stage_us[4] = 600;
  ring.offer(r);
  const std::string json = ring.to_json();
  EXPECT_NE(json.find("\"trace\": 42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"op\": \"write\""), std::string::npos);
  EXPECT_NE(json.find("\"queue_wait\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"device\": 600"), std::string::npos);
}

// ---------------------------------------------------------------------
// DeviceSpan accumulation
// ---------------------------------------------------------------------

TEST(DeviceSpan, AccumulatesOnlyWhileArmed) {
  mig::DiskArray array(3, 4, 64);
  std::vector<std::uint8_t> buf(64);

  const std::uint64_t before_off = obs::device_accum_ns();
  for (int i = 0; i < 100; ++i) array.read_block(0, 0, buf);
  EXPECT_EQ(obs::device_accum_ns(), before_off);  // disarmed: no cost

  obs::set_req_trace_enabled(true);
  const std::uint64_t before_on = obs::device_accum_ns();
  for (int i = 0; i < 1000; ++i) array.read_block(0, 0, buf);
  obs::set_req_trace_enabled(false);
  EXPECT_GT(obs::device_accum_ns(), before_on);
}

// ---------------------------------------------------------------------
// TraceRecorder ring wrap under concurrent writers
// ---------------------------------------------------------------------

/// Structural well-formedness scan: quotes balance, and braces/brackets
/// balance outside string literals. Span names/args are controlled
/// identifiers, so this catches any truncation or interleaving damage.
void expect_json_structurally_valid(const std::string& json) {
  long depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
      ASSERT_GE(depth, 0);
    }
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth, 0);
}

TEST(TraceWrap, ConcurrentWritersKeepJsonValidAndParentsLinked) {
  constexpr std::size_t kCapacity = 64;
  constexpr int kThreads = 8, kRequests = 100;
  obs::TraceRecorder rec(kCapacity);

  std::atomic<std::uint64_t> recorded{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&rec, &recorded, t] {
      for (int i = 0; i < kRequests; ++i) {
        // A two-span tree per iteration. The ring will wrap many times
        // over, routinely evicting parents out from under children.
        const std::uint64_t trace = obs::next_trace_id();
        const std::uint64_t parent_span = obs::next_span_id();
        obs::TraceSpan parent;
        parent.name = "request";
        parent.tid = static_cast<std::uint64_t>(t);
        parent.trace_id = trace;
        parent.span_id = parent_span;
        rec.record(std::move(parent));
        obs::TraceSpan child;
        child.name = "device";
        child.tid = static_cast<std::uint64_t>(t);
        child.trace_id = trace;
        child.span_id = obs::next_span_id();
        child.parent_id = parent_span;
        rec.record(std::move(child));
        recorded.fetch_add(2, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : ts) t.join();

  const std::uint64_t total = recorded.load();
  ASSERT_EQ(total, static_cast<std::uint64_t>(kThreads) * kRequests * 2);
  // Dropped-span accounting is exact: everything beyond capacity.
  EXPECT_EQ(rec.dropped(), total - kCapacity);
  EXPECT_EQ(rec.snapshot().size(), kCapacity);

  const std::string json = rec.to_json();
  expect_json_structurally_valid(json);

  // Parent links never dangle: every rendered "parent" value must name
  // a span rendered in the same document.
  std::unordered_set<std::uint64_t> spans;
  const std::string span_key = "\"span\": ";
  for (std::size_t pos = 0;
       (pos = json.find(span_key, pos)) != std::string::npos;
       pos += span_key.size()) {
    spans.insert(std::strtoull(json.c_str() + pos + span_key.size(),
                               nullptr, 10));
  }
  EXPECT_FALSE(spans.empty());
  const std::string parent_key = "\"parent\": ";
  std::size_t parent_links = 0;
  for (std::size_t pos = 0;
       (pos = json.find(parent_key, pos)) != std::string::npos;
       pos += parent_key.size()) {
    const std::uint64_t parent = std::strtoull(
        json.c_str() + pos + parent_key.size(), nullptr, 10);
    EXPECT_TRUE(spans.contains(parent)) << "dangling parent " << parent;
    ++parent_links;
  }
  // Adjacent parent/child pairs survive together often enough that at
  // least one link must render (children outnumber evictions 2:1).
  EXPECT_GT(parent_links, 0u);
}

TEST(TraceWrap, EvictedParentLinkIsOmittedFromJson) {
  obs::TraceRecorder rec(1);  // the child always evicts the parent
  obs::TraceSpan parent;
  parent.name = "request";
  parent.span_id = obs::next_span_id();
  const std::uint64_t parent_span = parent.span_id;
  rec.record(std::move(parent));
  obs::TraceSpan child;
  child.name = "device";
  child.span_id = obs::next_span_id();
  child.parent_id = parent_span;
  rec.record(std::move(child));
  const std::string json = rec.to_json();
  EXPECT_EQ(json.find("\"parent\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"device\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Sampler JSONL sink bound
// ---------------------------------------------------------------------

TEST(SamplerSink, RotatesAtTheByteCap) {
  obs::Registry reg;
  reg.counter("spin").inc();
  obs::MetricsSampler sampler(reg);
  const std::string path = "reqtrace_sampler_rot_test.jsonl";
  ASSERT_TRUE(sampler.set_jsonl_path(path));
  sampler.set_jsonl_max_bytes(64);  // a line or two per generation
  for (int i = 0; i < 10; ++i) sampler.sample_once();
  EXPECT_GE(sampler.jsonl_rotations(), 1u);
  // Current generation stays under cap + one line's slack.
  EXPECT_LT(sampler.jsonl_bytes(), 64u + 256u);
  std::FILE* cur = std::fopen(path.c_str(), "r");
  ASSERT_NE(cur, nullptr);
  std::fclose(cur);
  std::FILE* prev = std::fopen((path + ".1").c_str(), "r");
  ASSERT_NE(prev, nullptr);
  std::fclose(prev);
  sampler.set_jsonl_path("");
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
}

TEST(SamplerSink, UnboundedWhenCapIsZero) {
  obs::Registry reg;
  reg.counter("spin").inc();
  obs::MetricsSampler sampler(reg);
  const std::string path = "reqtrace_sampler_nocap_test.jsonl";
  ASSERT_TRUE(sampler.set_jsonl_path(path));
  sampler.set_jsonl_max_bytes(0);
  for (int i = 0; i < 50; ++i) sampler.sample_once();
  EXPECT_EQ(sampler.jsonl_rotations(), 0u);
  sampler.set_jsonl_path("");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace c56
