// Unit tests for Code 5-6 itself: the worked example from the paper,
// layout/RAID-5 compatibility, Algorithm 1, hybrid single-disk recovery
// (Section III-E(4)), virtual disks (Section IV-B2) and the mirrored
// orientation (Fig. 7).

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "codes/code56.hpp"
#include "util/prime.hpp"
#include "util/rng.hpp"
#include "xorblk/buffer.hpp"
#include "xorblk/xor.hpp"

namespace c56 {
namespace {

constexpr std::size_t kBlock = 8;

Buffer make_encoded(const Code56& code, std::uint64_t seed = 1) {
  Buffer buf(static_cast<std::size_t>(code.cell_count()) * kBlock);
  StripeView v = StripeView::over(buf, code.rows(), code.cols(), kBlock);
  Rng rng(seed);
  for (int r = 0; r < code.rows(); ++r) {
    for (int c = 0; c < code.cols(); ++c) {
      if (code.kind({r, c}) == CellKind::kData) {
        auto blk = v.block({r, c});
        rng.fill(blk.data(), blk.size());
      }
    }
  }
  code.encode(v);
  return buf;
}

TEST(Code56, RejectsInvalidParameters) {
  EXPECT_THROW(Code56(4), std::invalid_argument);
  EXPECT_THROW(Code56(9), std::invalid_argument);
  EXPECT_THROW(Code56(5, 5), std::invalid_argument);
  EXPECT_THROW(Code56(5, -1), std::invalid_argument);
  EXPECT_THROW(Code56(5, 1, Code56Orientation::kRight),
               std::invalid_argument);
  EXPECT_NO_THROW(Code56(5));
  EXPECT_NO_THROW(Code56(7, 2));
}

TEST(Code56, LayoutMatchesPaperFigure4) {
  // p=5: 4x5 matrix; horizontal parities on the anti-diagonal of the
  // leading square, diagonal parities in column 4.
  Code56 code(5);
  EXPECT_EQ(code.rows(), 4);
  EXPECT_EQ(code.cols(), 5);
  EXPECT_EQ(code.kind({0, 3}), CellKind::kRowParity);
  EXPECT_EQ(code.kind({1, 2}), CellKind::kRowParity);
  EXPECT_EQ(code.kind({2, 1}), CellKind::kRowParity);
  EXPECT_EQ(code.kind({3, 0}), CellKind::kRowParity);
  for (int r = 0; r < 4; ++r) EXPECT_EQ(code.kind({r, 4}), CellKind::kDiagParity);
  EXPECT_EQ(code.kind({0, 0}), CellKind::kData);
  EXPECT_EQ(code.data_cell_count(), 12);
  EXPECT_EQ(code.parity_cell_count(), 8);
}

TEST(Code56, PaperWorkedExampleC14) {
  // Section III-A: C_{1,4} = C_{0,0} ^ C_{3,2} ^ C_{2,3}.
  Code56 code(5);
  Buffer buf = make_encoded(code);
  StripeView v = StripeView::over(buf, 4, 5, kBlock);
  Buffer expect(kBlock);
  xor_into(expect.span(), v.block({0, 0}));
  xor_into(expect.span(), v.block({3, 2}));
  xor_into(expect.span(), v.block({2, 3}));
  EXPECT_TRUE(std::ranges::equal(expect.span(), v.block({1, 4})));
}

TEST(Code56, HorizontalParityExampleC03) {
  // Section III-A: C_{0,3} = C_{0,0} ^ C_{0,1} ^ C_{0,2}.
  Code56 code(5);
  Buffer buf = make_encoded(code);
  StripeView v = StripeView::over(buf, 4, 5, kBlock);
  Buffer expect(kBlock);
  for (int j = 0; j < 3; ++j) xor_into(expect.span(), v.block({0, j}));
  EXPECT_TRUE(std::ranges::equal(expect.span(), v.block({0, 3})));
}

TEST(Code56, DiagonalChainsContainOnlyDataCells) {
  // The property that makes update complexity optimal for every p.
  for (int p : {5, 7, 11, 13, 17}) {
    Code56 code(p);
    for (const ParityChain& ch : code.chains()) {
      if (code.kind(ch.parity) != CellKind::kDiagParity) continue;
      for (Cell in : ch.inputs) {
        EXPECT_EQ(code.kind(in), CellKind::kData) << "p=" << p;
      }
      EXPECT_EQ(static_cast<int>(ch.inputs.size()), p - 2) << "p=" << p;
    }
  }
}

TEST(Code56, UnprotectedDiagonalIsTheAntiDiagonal) {
  // Every data cell is on exactly one diagonal chain; the cells with
  // r + j == p-2 (the horizontal parities) are on none.
  for (int p : {5, 7, 11}) {
    Code56 code(p);
    std::set<std::pair<int, int>> covered;
    for (const ParityChain& ch : code.chains()) {
      if (code.kind(ch.parity) != CellKind::kDiagParity) continue;
      for (Cell in : ch.inputs) {
        EXPECT_TRUE(covered.insert({in.row, in.col}).second)
            << "cell on two diagonal chains, p=" << p;
        EXPECT_NE(pmod(in.row + in.col, p), p - 2);
      }
    }
    EXPECT_EQ(covered.size(),
              static_cast<std::size_t>(code.data_cell_count()));
  }
}

TEST(Code56, UpdateComplexityIsOptimalTwo) {
  // Section III-E(3): every data element feeds exactly two parities.
  for (int p : {5, 7, 11, 13}) {
    Code56 code(p);
    for (int r = 0; r < code.rows(); ++r) {
      for (int c = 0; c < code.cols(); ++c) {
        if (code.kind({r, c}) != CellKind::kData) continue;
        EXPECT_EQ(code.update_complexity({r, c}), 2)
            << "p=" << p << " cell (" << r << "," << c << ")";
      }
    }
  }
}

TEST(Code56, EncodingXorCountIsOptimal) {
  // Section III-E(2): 2(p-1)(p-3) XORs per stripe == (2p-6)/(p-2) per
  // data element, the MDS optimum 3*(nd*ne - nd)/... reduced form.
  for (int p : {5, 7, 11, 13, 17}) {
    Code56 code(p);
    std::size_t xors = 0;
    for (const ParityChain& ch : code.chains()) {
      xors += ch.inputs.size() - 1;
    }
    EXPECT_EQ(xors, static_cast<std::size_t>(2 * (p - 1) * (p - 3)))
        << "p=" << p;
  }
}

TEST(Code56, Theorem1StartingPointsAreDiagonalRecoverable) {
  // For failed data columns f1 < f2 <= p-2, cells C_{f2-f1-1,f1} and
  // C_{p-1-f2+f1,f2} each sit on a diagonal chain whose only lost
  // member they are.
  const int p = 11;
  Code56 code(p);
  for (int f1 = 0; f1 <= p - 3; ++f1) {
    for (int f2 = f1 + 1; f2 <= p - 2; ++f2) {
      const Cell start1{f2 - f1 - 1, f1};
      const Cell start2{p - 1 - f2 + f1, f2};
      for (Cell start : {start1, start2}) {
        int hits = 0;
        for (const ParityChain& ch : code.chains()) {
          if (code.kind(ch.parity) != CellKind::kDiagParity) continue;
          if (std::ranges::find(ch.inputs, start) == ch.inputs.end()) {
            continue;
          }
          ++hits;
          int lost = 0;
          for (Cell in : ch.inputs) {
            lost += (in.col == f1 || in.col == f2);
          }
          EXPECT_EQ(lost, 1) << "f1=" << f1 << " f2=" << f2;
        }
        EXPECT_EQ(hits, 1);
      }
    }
  }
}

TEST(Code56, Algorithm1MatchesGenericDecoder) {
  for (int p : {5, 7, 13}) {
    Code56 code(p);
    Buffer original = make_encoded(code, 7);
    for (int f1 = 0; f1 < code.cols(); ++f1) {
      for (int f2 = f1 + 1; f2 < code.cols(); ++f2) {
        Buffer a = original, b = original;
        StripeView va = StripeView::over(a, code.rows(), code.cols(), kBlock);
        StripeView vb = StripeView::over(b, code.rows(), code.cols(), kBlock);
        Rng junk(static_cast<std::uint64_t>(f1 * 100 + f2));
        const std::vector<int> cols{f1, f2};
        for (int c : cols) {
          for (int r = 0; r < code.rows(); ++r) {
            junk.fill(va.block({r, c}).data(), kBlock);
            junk.fill(vb.block({r, c}).data(), kBlock);
          }
        }
        ASSERT_TRUE(code.decode_columns(va, cols).has_value());
        ASSERT_TRUE(code.decode_columns_generic(vb, cols).has_value());
        EXPECT_TRUE(a == original);
        EXPECT_TRUE(b == original);
      }
    }
  }
}

TEST(Code56, HybridRecoveryReadsNineBlocksAtP5) {
  // Section III-E(4): 9 reads vs 12 with the plain approach when p=5.
  Code56 code(5);
  Buffer original = make_encoded(code, 3);
  for (int col = 0; col <= 3; ++col) {
    Buffer work = original;
    StripeView v = StripeView::over(work, 4, 5, kBlock);
    Rng junk(5);
    for (int r = 0; r < 4; ++r) junk.fill(v.block({r, col}).data(), kBlock);
    const DecodeStats hybrid = code.recover_single_column_hybrid(v, col);
    EXPECT_TRUE(work == original) << "col=" << col;
    EXPECT_EQ(hybrid.cells_read, 9u) << "col=" << col;

    Buffer work2 = original;
    StripeView v2 = StripeView::over(work2, 4, 5, kBlock);
    for (int r = 0; r < 4; ++r) junk.fill(v2.block({r, col}).data(), kBlock);
    const DecodeStats plain = code.recover_single_column_plain(v2, col);
    EXPECT_TRUE(work2 == original);
    EXPECT_EQ(plain.cells_read, 12u);
  }
}

TEST(Code56, HybridNeverReadsMoreThanPlain) {
  for (int p : {5, 7, 11, 13, 17}) {
    Code56 code(p);
    Buffer original = make_encoded(code, 11);
    for (int col = 0; col <= p - 2; ++col) {
      Buffer w1 = original, w2 = original;
      StripeView v1 = StripeView::over(w1, code.rows(), code.cols(), kBlock);
      StripeView v2 = StripeView::over(w2, code.rows(), code.cols(), kBlock);
      const DecodeStats hybrid = code.recover_single_column_hybrid(v1, col);
      const DecodeStats plain = code.recover_single_column_plain(v2, col);
      EXPECT_TRUE(w1 == original) << "p=" << p << " col=" << col;
      EXPECT_TRUE(w2 == original);
      EXPECT_LT(hybrid.cells_read, plain.cells_read) << "p=" << p;
      EXPECT_EQ(plain.cells_read,
                static_cast<std::size_t>((p - 1) * (p - 2)));
    }
  }
}

TEST(Code56, MatchesLeftRaid5Flavors) {
  for (int p : {5, 7, 11}) {
    Code56 left(p);
    EXPECT_TRUE(left.matches_raid5_flavor(Raid5Flavor::kLeftAsymmetric));
    EXPECT_TRUE(left.matches_raid5_flavor(Raid5Flavor::kLeftSymmetric));
    EXPECT_FALSE(left.matches_raid5_flavor(Raid5Flavor::kRightAsymmetric));
    Code56 right(p, 0, Code56Orientation::kRight);
    EXPECT_TRUE(right.matches_raid5_flavor(Raid5Flavor::kRightAsymmetric));
    EXPECT_TRUE(right.matches_raid5_flavor(Raid5Flavor::kRightSymmetric));
    EXPECT_FALSE(right.matches_raid5_flavor(Raid5Flavor::kLeftAsymmetric));
  }
}

TEST(Code56, RightOrientationIsMds) {
  Code56 code(7, 0, Code56Orientation::kRight);
  Buffer original = make_encoded(code, 13);
  for (int f1 = 0; f1 < code.cols(); ++f1) {
    for (int f2 = f1 + 1; f2 < code.cols(); ++f2) {
      Buffer work = original;
      StripeView v = StripeView::over(work, code.rows(), code.cols(), kBlock);
      const std::vector<int> cols{f1, f2};
      Rng junk(1);
      for (int c : cols) {
        for (int r = 0; r < code.rows(); ++r) {
          junk.fill(v.block({r, c}).data(), kBlock);
        }
      }
      ASSERT_TRUE(code.decode_columns(v, cols).has_value());
      EXPECT_TRUE(work == original) << f1 << "," << f2;
    }
  }
}

TEST(Code56, ForRaid5PicksNextPrime) {
  EXPECT_EQ(Code56::for_raid5(4).p(), 5);
  EXPECT_EQ(Code56::for_raid5(4).virtual_disks(), 0);
  EXPECT_EQ(Code56::for_raid5(3).p(), 5);
  EXPECT_EQ(Code56::for_raid5(3).virtual_disks(), 1);
  EXPECT_EQ(Code56::for_raid5(5).p(), 7);
  EXPECT_EQ(Code56::for_raid5(5).virtual_disks(), 1);
  EXPECT_EQ(Code56::for_raid5(8).p(), 11);
  EXPECT_EQ(Code56::for_raid5(8).virtual_disks(), 2);
}

TEST(Code56, VirtualLayoutMatchesPaperFigure8) {
  // m=3 -> p=5, v=1: column 0 and the tail of row 3 are virtual.
  Code56 code(5, 1);
  for (int r = 0; r < 4; ++r) EXPECT_EQ(code.kind({r, 0}), CellKind::kVirtual);
  EXPECT_EQ(code.kind({3, 1}), CellKind::kVirtual);
  EXPECT_EQ(code.kind({3, 2}), CellKind::kVirtual);
  EXPECT_EQ(code.kind({3, 3}), CellKind::kVirtual);
  EXPECT_EQ(code.kind({3, 4}), CellKind::kDiagParity);
  EXPECT_EQ(code.virtual_cell_count(), 7);
  EXPECT_EQ(code.data_cell_count(), 6);
  EXPECT_EQ(code.physical_cells_per_stripe(), 13);
  EXPECT_NEAR(code.storage_efficiency(), 6.0 / 13.0, 1e-12);
}

TEST(Code56, StorageEfficiencyFormulaEq6) {
  // (n-1)(n-2) / ((n-1)n + v) with n = m+1 physical disks.
  for (int m = 2; m <= 24; ++m) {
    Code56 code = Code56::for_raid5(m);
    const int n = m + 1;
    const int v = code.virtual_disks();
    EXPECT_NEAR(code.storage_efficiency(),
                static_cast<double>((n - 1) * (n - 2)) / ((n - 1) * n + v),
                1e-12)
        << "m=" << m;
    EXPECT_LE(code.storage_efficiency(), code.ideal_raid6_efficiency());
  }
}

TEST(Code56, VirtualDiskVariantsAreMds) {
  for (int m : {3, 5, 6, 8, 9, 10}) {
    Code56 code = Code56::for_raid5(m);
    Buffer original = make_encoded(code, static_cast<std::uint64_t>(m));
    for (int f1 = 0; f1 < code.cols(); ++f1) {
      for (int f2 = f1 + 1; f2 < code.cols(); ++f2) {
        Buffer work = original;
        StripeView v =
            StripeView::over(work, code.rows(), code.cols(), kBlock);
        const std::vector<int> cols{f1, f2};
        Rng junk(2);
        for (int c : cols) {
          for (int r = 0; r < code.rows(); ++r) {
            if (code.kind({r, c}) != CellKind::kVirtual) {
              junk.fill(v.block({r, c}).data(), kBlock);
            }
          }
        }
        ASSERT_TRUE(code.decode_columns(v, cols).has_value())
            << "m=" << m << " cols " << f1 << "," << f2;
        EXPECT_TRUE(work == original) << "m=" << m;
      }
    }
  }
}

TEST(Code56, DecodeRestoresGarbledVirtualCells) {
  Code56 code(5, 1);
  Buffer original = make_encoded(code, 21);
  Buffer work = original;
  StripeView v = StripeView::over(work, 4, 5, kBlock);
  // Garble a failed virtual column entirely (disk replaced by junk).
  Rng junk(8);
  for (int r = 0; r < 4; ++r) junk.fill(v.block({r, 0}).data(), kBlock);
  const std::vector<int> cols{0};
  ASSERT_TRUE(code.decode_columns(v, cols).has_value());
  EXPECT_TRUE(work == original);
}

}  // namespace
}  // namespace c56
