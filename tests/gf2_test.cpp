#include <gtest/gtest.h>

#include "gf2/bitmatrix.hpp"
#include "gf2/chain_solver.hpp"

namespace c56 {
namespace {

TEST(BitMatrix, SetGetFlip) {
  BitMatrix m(3, 100);
  EXPECT_FALSE(m.get(1, 70));
  m.set(1, 70, true);
  EXPECT_TRUE(m.get(1, 70));
  m.flip(1, 70);
  EXPECT_FALSE(m.get(1, 70));
  m.set(2, 99, true);
  EXPECT_TRUE(m.get(2, 99));
  EXPECT_FALSE(m.get(2, 98));
}

TEST(BitMatrix, XorRows) {
  BitMatrix m(2, 130);
  m.set(0, 0, true);
  m.set(0, 129, true);
  m.set(1, 129, true);
  m.xor_rows(0, 1);
  EXPECT_TRUE(m.get(0, 0));
  EXPECT_FALSE(m.get(0, 129));
  EXPECT_TRUE(m.row_is_zero(0) == false);
}

TEST(BitMatrix, RankIdentity) {
  BitMatrix m(4, 4);
  for (int i = 0; i < 4; ++i) m.set(i, i, true);
  EXPECT_EQ(m.rank(), 4);
}

TEST(BitMatrix, RankDependentRows) {
  BitMatrix m(3, 4);
  m.set(0, 0, true);
  m.set(0, 1, true);
  m.set(1, 1, true);
  m.set(1, 2, true);
  // row2 = row0 ^ row1
  m.set(2, 0, true);
  m.set(2, 2, true);
  EXPECT_EQ(m.rank(), 2);
}

TEST(ChainSolver, SingleParityChain) {
  // cells 0,1,2 with 0^1^2 == 0; erase cell 1.
  std::vector<ChainSpec> chains{{{0, 1, 2}}};
  const int erased[] = {1};
  auto r = solve_erasures(3, chains, erased);
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0].target, 1);
  EXPECT_EQ((*r)[0].sources, (std::vector<int>{0, 2}));
}

TEST(ChainSolver, UnsolvableWhenTwoLostInOneChain) {
  std::vector<ChainSpec> chains{{{0, 1, 2}}};
  const int erased[] = {0, 1};
  EXPECT_FALSE(solve_erasures(3, chains, erased).has_value());
}

TEST(ChainSolver, CombinesChains) {
  // chains: {0,1,2}, {2,3,4}; erase {1, 2}: cell2 from second chain,
  // then cell1 = 0 ^ 2 -> expressed over known cells {0,3,4}.
  std::vector<ChainSpec> chains{{{0, 1, 2}}, {{2, 3, 4}}};
  const int erased[] = {1, 2};
  auto r = solve_erasures(5, chains, erased);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ((*r)[1].target, 2);
  EXPECT_EQ((*r)[1].sources, (std::vector<int>{3, 4}));
  EXPECT_EQ((*r)[0].target, 1);
  EXPECT_EQ((*r)[0].sources, (std::vector<int>{0, 3, 4}));
}

TEST(ChainSolver, DuplicateCellInChainCancels) {
  // A chain listing a cell twice contributes nothing for that cell.
  std::vector<ChainSpec> chains{{{0, 0, 1, 2}}};  // => 1 ^ 2 == 0
  const int erased[] = {1};
  auto r = solve_erasures(3, chains, erased);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ((*r)[0].sources, (std::vector<int>{2}));
}

TEST(ChainSolver, EmptyErasureSet) {
  std::vector<ChainSpec> chains{{{0, 1}}};
  auto r = solve_erasures(2, chains, {});
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->empty());
}

TEST(ChainSolver, KnownCellsCancelAcrossCombinedEquations) {
  // chains: {0,1,9}, {1,2,9}: erasing {0,2} needs both; cell 9 appears
  // in both and must cancel from neither recipe individually but the
  // recipes must be correct: x0 = 1^9, x2 = 1^9.
  std::vector<ChainSpec> chains{{{0, 1, 9}}, {{1, 2, 9}}};
  const int erased[] = {0, 2};
  auto r = solve_erasures(10, chains, erased);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ((*r)[0].sources, (std::vector<int>{1, 9}));
  EXPECT_EQ((*r)[1].sources, (std::vector<int>{1, 9}));
}

}  // namespace
}  // namespace c56
