// Framework-level tests for the ErasureCode base class machinery:
// expanded chains, decoder-path equivalence (peeling vs generic), and
// the I/O accounting contracts the benchmarks rely on.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "codes/registry.hpp"
#include "util/rng.hpp"
#include "xorblk/buffer.hpp"
#include "xorblk/xor.hpp"

namespace c56 {
namespace {

constexpr std::size_t kBlock = 16;

Buffer make_encoded(const ErasureCode& code, std::uint64_t seed) {
  Buffer buf(static_cast<std::size_t>(code.cell_count()) * kBlock);
  StripeView v = StripeView::over(buf, code.rows(), code.cols(), kBlock);
  Rng rng(seed);
  for (int r = 0; r < code.rows(); ++r) {
    for (int c = 0; c < code.cols(); ++c) {
      if (code.kind({r, c}) == CellKind::kData) {
        auto blk = v.block({r, c});
        rng.fill(blk.data(), blk.size());
      }
    }
  }
  code.encode(v);
  return buf;
}

struct Param {
  CodeId id;
  int p;
};

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  std::string n = to_string(info.param.id);
  for (char& c : n) {
    if (c == ' ' || c == '-') c = '_';
  }
  return n + "_p" + std::to_string(info.param.p);
}

class FrameworkTest : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override { code_ = make_code(GetParam().id, GetParam().p); }
  std::unique_ptr<ErasureCode> code_;
};

TEST_P(FrameworkTest, ExpandedChainsContainOnlyDataCells) {
  for (const ParityChain& ch : code_->expanded_chains()) {
    for (Cell in : ch.inputs) {
      EXPECT_EQ(code_->kind(in), CellKind::kData)
          << code_->name() << " parity (" << ch.parity.row << ","
          << ch.parity.col << ")";
    }
  }
}

TEST_P(FrameworkTest, ExpandedChainsEvaluateToTheStoredParity) {
  // Each parity must equal the XOR of its expanded (data-only) inputs
  // on a real encoded stripe.
  Buffer buf = make_encoded(*code_, 31);
  StripeView v = StripeView::over(buf, code_->rows(), code_->cols(), kBlock);
  Buffer acc(kBlock);
  for (const ParityChain& ch : code_->expanded_chains()) {
    acc.zero();
    for (Cell in : ch.inputs) xor_into(acc.span(), v.block(in));
    EXPECT_TRUE(std::ranges::equal(acc.span(), v.block(ch.parity)))
        << code_->name() << " parity (" << ch.parity.row << ","
        << ch.parity.col << ")";
  }
}

TEST_P(FrameworkTest, ExpandedAndDirectChainsAgreeInCount) {
  EXPECT_EQ(code_->chains().size(), code_->expanded_chains().size());
  for (std::size_t i = 0; i < code_->chains().size(); ++i) {
    EXPECT_EQ(code_->chains()[i].parity, code_->expanded_chains()[i].parity);
  }
}

TEST_P(FrameworkTest, PeelingAndGenericDecodersAgreeOnResults) {
  Buffer original = make_encoded(*code_, 77);
  for (int f1 = 0; f1 < code_->cols(); ++f1) {
    for (int f2 = f1 + 1; f2 < code_->cols(); ++f2) {
      Buffer a = original, b = original;
      StripeView va =
          StripeView::over(a, code_->rows(), code_->cols(), kBlock);
      StripeView vb =
          StripeView::over(b, code_->rows(), code_->cols(), kBlock);
      const std::vector<int> cols{f1, f2};
      Rng junk(static_cast<std::uint64_t>(f1 * 31 + f2));
      for (int c : cols) {
        for (int r = 0; r < code_->rows(); ++r) {
          junk.fill(va.block({r, c}).data(), kBlock);
          junk.fill(vb.block({r, c}).data(), kBlock);
        }
      }
      ASSERT_TRUE(code_->decode_columns(va, cols).has_value());
      ASSERT_TRUE(code_->decode_columns_generic(vb, cols).has_value());
      EXPECT_TRUE(a == original) << f1 << "," << f2;
      EXPECT_TRUE(b == original) << f1 << "," << f2;
    }
  }
}

TEST_P(FrameworkTest, DecoderReadsAreBoundedBySurvivors) {
  Buffer buf = make_encoded(*code_, 5);
  StripeView v = StripeView::over(buf, code_->rows(), code_->cols(), kBlock);
  const std::vector<int> cols{0, code_->cols() - 1};
  const auto stats = code_->decode_columns(v, cols);
  ASSERT_TRUE(stats.has_value());
  const auto survivors = static_cast<std::size_t>(
      code_->cell_count() - code_->virtual_cell_count() -
      static_cast<int>(code_->erased_cells_of_columns(cols).size()));
  EXPECT_LE(stats->cells_read, survivors);
  // Peeling XORs at most one full chain per recovered cell.
  std::size_t longest = 0;
  for (const ParityChain& ch : code_->chains()) {
    longest = std::max(longest, ch.inputs.size() + 1);
  }
  EXPECT_LE(stats->xor_ops,
            code_->erased_cells_of_columns(cols).size() * longest);
}

TEST_P(FrameworkTest, VerifyRejectsEveryParityCorruption) {
  Buffer buf = make_encoded(*code_, 9);
  StripeView v = StripeView::over(buf, code_->rows(), code_->cols(), kBlock);
  for (const ParityChain& ch : code_->chains()) {
    v.block(ch.parity)[0] ^= 0x80;
    EXPECT_FALSE(code_->verify(v));
    v.block(ch.parity)[0] ^= 0x80;
  }
  EXPECT_TRUE(code_->verify(v));
}

std::vector<Param> all_params() {
  std::vector<Param> out;
  for (CodeId id : all_code_ids()) out.push_back({id, 7});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Zoo, FrameworkTest,
                         ::testing::ValuesIn(all_params()), param_name);

}  // namespace
}  // namespace c56
