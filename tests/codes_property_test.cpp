// Cross-code structural property tests: chain sanity, parity counts,
// update complexity, geometry claims from Table III and Section II of
// the paper, and decoder I/O accounting invariants.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "codes/code56.hpp"
#include "codes/hdp.hpp"
#include "codes/pcode.hpp"
#include "codes/registry.hpp"
#include "codes/xcode.hpp"
#include "layout/raid.hpp"
#include "migration/disk_array.hpp"
#include "migration/journal.hpp"
#include "migration/online.hpp"
#include "util/prime.hpp"
#include "util/rng.hpp"
#include "xorblk/buffer.hpp"
#include "xorblk/xor.hpp"

namespace c56 {
namespace {

struct Param {
  CodeId id;
  int p;
};

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  std::string n = to_string(info.param.id);
  for (char& c : n) {
    if (c == ' ' || c == '-') c = '_';
  }
  return n + "_p" + std::to_string(info.param.p);
}

class CodeStructure : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override { code_ = make_code(GetParam().id, GetParam().p); }
  std::unique_ptr<ErasureCode> code_;
};

TEST_P(CodeStructure, EveryParityCellHasExactlyOneChain) {
  std::set<std::pair<int, int>> parities;
  for (const ParityChain& ch : code_->chains()) {
    EXPECT_TRUE(is_parity(code_->kind(ch.parity)));
    EXPECT_TRUE(parities.insert({ch.parity.row, ch.parity.col}).second);
  }
  EXPECT_EQ(parities.size(),
            static_cast<std::size_t>(code_->parity_cell_count()));
}

TEST_P(CodeStructure, ChainsNeverListTheirOwnParityAsInput) {
  for (const ParityChain& ch : code_->chains()) {
    EXPECT_EQ(std::ranges::count(ch.inputs, ch.parity), 0);
  }
}

TEST_P(CodeStructure, ChainInputsAreDistinct) {
  for (const ParityChain& ch : code_->chains()) {
    std::set<std::pair<int, int>> seen;
    for (Cell in : ch.inputs) {
      EXPECT_TRUE(seen.insert({in.row, in.col}).second)
          << code_->name() << " parity (" << ch.parity.row << ","
          << ch.parity.col << ") repeats input (" << in.row << "," << in.col
          << ")";
    }
  }
}

TEST_P(CodeStructure, EncodeOrderRespectsDependencies) {
  // Any parity used as an input must be produced by an earlier chain.
  std::set<std::pair<int, int>> produced;
  for (const ParityChain& ch : code_->chains()) {
    for (Cell in : ch.inputs) {
      if (is_parity(code_->kind(in))) {
        EXPECT_TRUE(produced.count({in.row, in.col}))
            << code_->name() << ": chain for (" << ch.parity.row << ","
            << ch.parity.col << ") consumes not-yet-encoded parity";
      }
    }
    produced.insert({ch.parity.row, ch.parity.col});
  }
}

TEST_P(CodeStructure, EveryDataCellIsProtectedByTwoParities) {
  // Two-fault tolerance requires each data cell to influence >= 2
  // parities; the optimal-update codes hit exactly 2 (Table III's
  // "single write performance: High").
  const CodeId id = GetParam().id;
  for (int r = 0; r < code_->rows(); ++r) {
    for (int c = 0; c < code_->cols(); ++c) {
      if (code_->kind({r, c}) != CellKind::kData) continue;
      const int u = code_->update_complexity({r, c});
      EXPECT_GE(u, 2) << code_->name() << " (" << r << "," << c << ")";
      if (id == CodeId::kCode56 || id == CodeId::kXCode ||
          id == CodeId::kPCode || id == CodeId::kHCode) {
        EXPECT_EQ(u, 2) << code_->name() << " (" << r << "," << c << ")";
      }
    }
  }
}

TEST_P(CodeStructure, ParityCountsMatchGeometry) {
  const int p = GetParam().p;
  int expected = 0;
  switch (GetParam().id) {
    case CodeId::kCode56: expected = 2 * (p - 1); break;
    case CodeId::kRdp: expected = 2 * (p - 1); break;
    case CodeId::kEvenOdd: expected = 2 * (p - 1); break;
    case CodeId::kXCode: expected = 2 * p; break;
    case CodeId::kPCode: expected = p - 1; break;
    case CodeId::kHCode: expected = 2 * (p - 1); break;
    case CodeId::kHdp: expected = 2 * (p - 1); break;
  }
  EXPECT_EQ(code_->parity_cell_count(), expected);
  EXPECT_EQ(code_->chains().size(), static_cast<std::size_t>(expected));
}

TEST_P(CodeStructure, DecodeStatsAccountReads) {
  constexpr std::size_t kBlock = 8;
  Buffer buf(static_cast<std::size_t>(code_->cell_count()) * kBlock);
  StripeView v = StripeView::over(buf, code_->rows(), code_->cols(), kBlock);
  Rng rng(5);
  for (int r = 0; r < code_->rows(); ++r) {
    for (int c = 0; c < code_->cols(); ++c) {
      if (code_->kind({r, c}) == CellKind::kData) {
        rng.fill(v.block({r, c}).data(), kBlock);
      }
    }
  }
  code_->encode(v);
  const std::vector<int> cols{0, 1};
  auto stats = code_->decode_columns(v, cols);
  ASSERT_TRUE(stats.has_value());
  // Reads can never exceed the surviving cells, and some work happened.
  const std::size_t surviving = static_cast<std::size_t>(
      code_->cell_count() - 2 * code_->rows());
  EXPECT_LE(stats->cells_read, surviving);
  EXPECT_GT(stats->cells_read, 0u);
  EXPECT_GT(stats->xor_ops, 0u);
}

std::vector<Param> all_params() {
  std::vector<Param> out;
  for (CodeId id : all_code_ids()) {
    for (int p : {5, 7, 11}) out.push_back({id, p});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Zoo, CodeStructure, ::testing::ValuesIn(all_params()),
                         param_name);

TEST(PCodeStructure, LabelsFollowThePairConstruction) {
  PCode code(7);
  // 7 -> labels {a,b}, a+b == 2c (mod 7); column label c in 1..6; two
  // data rows per column.
  EXPECT_EQ(code.rows(), 3);
  EXPECT_EQ(code.cols(), 6);
  std::set<std::pair<int, int>> labels;
  for (int c = 0; c < 6; ++c) {
    for (int r = 1; r < 3; ++r) {
      const auto [a, b] = code.label_of({r, c});
      EXPECT_GE(a, 1);
      EXPECT_LT(a, b);
      EXPECT_LE(b, 6);
      EXPECT_NE(pmod(a + b, 7), 0);
      EXPECT_EQ(pmod(a + b, 7), pmod(2 * (c + 1), 7));
      EXPECT_TRUE(labels.insert({a, b}).second);
    }
  }
  EXPECT_EQ(labels.size(), 12u);  // (p-1)(p-3)/2
}

TEST(XCodeStructure, ParityRowsHoldNoData) {
  XCode code = XCode(7);
  for (int c = 0; c < 7; ++c) {
    EXPECT_EQ(code.kind({5, c}), CellKind::kDiagParity);
    EXPECT_EQ(code.kind({6, c}), CellKind::kAntiDiagParity);
  }
  // Reserved parity fraction of each disk = 2/p (Fig. 1(c): 40% at p=5).
  EXPECT_NEAR(2.0 / 7.0, 2.0 / code.rows(), 1e-12);
}

TEST(HdpStructure, BothParitiesLiveInsideTheSquare) {
  Hdp code = Hdp(7);
  int row_par = 0, anti_par = 0;
  for (int r = 0; r < code.rows(); ++r) {
    for (int c = 0; c < code.cols(); ++c) {
      const CellKind k = code.kind({r, c});
      row_par += k == CellKind::kRowParity;
      anti_par += k == CellKind::kAntiDiagParity;
    }
  }
  EXPECT_EQ(row_par, 6);
  EXPECT_EQ(anti_par, 6);
}

// ---------------------------------------------------------------------
// Parallel conversion properties: the worker-pool converter is an
// optimization, not a semantic change, so for every prime and worker
// count the migrated array must be byte-identical to the
// single-threaded result — including across a crash/resume boundary.

constexpr std::size_t kConvBlock = 32;

void fill_conv_raid5(mig::DiskArray& array, int m, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> block(kConvBlock), parity(kConvBlock);
  for (std::int64_t row = 0; row < array.blocks_per_disk(); ++row) {
    std::fill(parity.begin(), parity.end(), 0);
    const int pdisk = raid5_parity_disk(Raid5Flavor::kLeftAsymmetric,
                                        static_cast<int>(row % m), m);
    for (int d = 0; d < m; ++d) {
      if (d == pdisk) continue;
      rng.fill(block.data(), kConvBlock);
      std::ranges::copy(block, array.raw_block(d, row).begin());
      xor_into(std::span(parity), std::span<const std::uint8_t>(block));
    }
    std::ranges::copy(parity, array.raw_block(pdisk, row).begin());
  }
}

void expect_arrays_equal(const mig::DiskArray& a, const mig::DiskArray& b) {
  ASSERT_EQ(a.disks(), b.disks());
  for (int d = 0; d < a.disks(); ++d) {
    for (std::int64_t blk = 0; blk < a.blocks_per_disk(); ++blk) {
      ASSERT_TRUE(std::ranges::equal(a.raw_block(d, blk), b.raw_block(d, blk)))
          << "disk " << d << " block " << blk;
    }
  }
}

class ParallelConversion : public ::testing::TestWithParam<int> {};

TEST_P(ParallelConversion, ByteIdenticalToSingleThreaded) {
  const int p = GetParam();
  const int m = p - 1;
  const std::int64_t groups = 11;  // not a multiple of any worker count
  const std::uint64_t seed = 0xC56'0C56 + static_cast<std::uint64_t>(p);

  mig::DiskArray ref(m, groups * (p - 1), kConvBlock);
  fill_conv_raid5(ref, m, seed);
  {
    mig::OnlineMigrator mref(ref, p);
    mref.set_workers(1);
    mref.start();
    mref.finish();
    ASSERT_EQ(mref.state(), mig::MigrationState::kDone);
  }

  for (int workers : {1, 2, 4, 8}) {
    SCOPED_TRACE("p=" + std::to_string(p) +
                 " workers=" + std::to_string(workers));
    mig::DiskArray array(m, groups * (p - 1), kConvBlock);
    fill_conv_raid5(array, m, seed);
    mig::OnlineMigrator mg(array, p);
    mg.set_workers(workers);
    EXPECT_EQ(mg.workers(), workers);
    mg.start();
    mg.finish();
    ASSERT_EQ(mg.state(), mig::MigrationState::kDone);
    EXPECT_TRUE(mg.verify_raid6());
    expect_arrays_equal(array, ref);
  }
}

TEST_P(ParallelConversion, CrashAndResumeStaysByteIdentical) {
  const int p = GetParam();
  const int m = p - 1;
  const std::int64_t groups = 9;
  const std::uint64_t seed = 0xC56'0D00 + static_cast<std::uint64_t>(p);

  mig::DiskArray ref(m, groups * (p - 1), kConvBlock);
  fill_conv_raid5(ref, m, seed);
  {
    mig::OnlineMigrator mref(ref, p);
    mref.start();
    mref.finish();
    ASSERT_EQ(mref.state(), mig::MigrationState::kDone);
  }

  for (int workers : {2, 4, 8}) {
    SCOPED_TRACE("p=" + std::to_string(p) +
                 " workers=" + std::to_string(workers));
    mig::DiskArray array(m, groups * (p - 1), kConvBlock);
    fill_conv_raid5(array, m, seed);
    mig::MemoryCheckpointSink sink;
    {
      mig::OnlineMigrator mg(array, p);
      mg.attach_journal(sink);
      mg.set_workers(workers);
      mg.start();
      // Stop somewhere mid-conversion; with several workers the stop
      // point straddles groups in different states of completion.
      while (mg.groups_done() < groups / 2 &&
             mg.state() == mig::MigrationState::kConverting) {
        std::this_thread::yield();
      }
      mg.request_stop();
      mg.finish();
      ASSERT_NE(mg.state(), mig::MigrationState::kAborted);
      // Migrator destroyed: the "crash". Journal and array survive.
    }
    mig::OnlineMigrator mg2(array, p);  // array now holds p disks
    mg2.attach_journal(sink);
    mg2.set_workers(workers);
    mg2.resume();
    mg2.finish();
    ASSERT_EQ(mg2.state(), mig::MigrationState::kDone);
    EXPECT_TRUE(mg2.verify_raid6());
    expect_arrays_equal(array, ref);
  }
}

INSTANTIATE_TEST_SUITE_P(Primes, ParallelConversion,
                         ::testing::Values(5, 7, 11, 13),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "p" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace c56
