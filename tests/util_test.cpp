#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <sstream>

#include "util/env.hpp"
#include "util/prime.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace c56 {
namespace {

TEST(Prime, SmallValues) {
  EXPECT_FALSE(is_prime(-3));
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(5));
  EXPECT_TRUE(is_prime(7));
  EXPECT_FALSE(is_prime(9));
  EXPECT_TRUE(is_prime(11));
  EXPECT_FALSE(is_prime(91));  // 7 * 13
  EXPECT_TRUE(is_prime(97));
}

TEST(Prime, MatchesSieve) {
  // Cross-check against a straightforward sieve.
  constexpr int kLimit = 2000;
  std::vector<bool> composite(kLimit, false);
  for (int i = 2; i < kLimit; ++i) {
    if (composite[static_cast<std::size_t>(i)]) continue;
    for (int j = 2 * i; j < kLimit; j += i) {
      composite[static_cast<std::size_t>(j)] = true;
    }
  }
  for (int i = 0; i < kLimit; ++i) {
    EXPECT_EQ(is_prime(i), i >= 2 && !composite[static_cast<std::size_t>(i)])
        << i;
  }
}

TEST(Prime, NextPrime) {
  EXPECT_EQ(next_prime_above(0), 2);
  EXPECT_EQ(next_prime_above(2), 3);
  EXPECT_EQ(next_prime_above(3), 5);
  EXPECT_EQ(next_prime_above(4), 5);   // m=4 RAID-5 -> p=5, v=0
  EXPECT_EQ(next_prime_above(5), 7);   // m=5 -> p=7, v=1
  EXPECT_EQ(next_prime_above(6), 7);
  EXPECT_EQ(next_prime_above(13), 17);
  EXPECT_EQ(next_prime_at_least(13), 13);
  EXPECT_EQ(next_prime_at_least(14), 17);
}

TEST(Prime, PmodHandlesNegatives) {
  EXPECT_EQ(pmod(-1, 5), 4);
  EXPECT_EQ(pmod(-5, 5), 0);
  EXPECT_EQ(pmod(-13, 5), 2);
  EXPECT_EQ(pmod(13, 5), 3);
  EXPECT_EQ(pmod(0, 7), 0);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng r(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, FillOddSizes) {
  Rng r(3);
  unsigned char buf[13] = {};
  r.fill(buf, 13);
  int nonzero = 0;
  for (unsigned char b : buf) nonzero += b != 0;
  EXPECT_GT(nonzero, 5);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"code", "ratio"});
  t.add_row({"Code 5-6", TextTable::pct(1.0 / 3.0)});
  t.add_row({"RDP", TextTable::pct(2.0 / 3.0)});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Code 5-6"), std::string::npos);
  EXPECT_NE(out.find("33.3%"), std::string::npos);
  EXPECT_NE(out.find("66.7%"), std::string::npos);
}

TEST(TextTable, FmtPrecision) {
  EXPECT_EQ(TextTable::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::fmt(2.0, 0), "2");
  EXPECT_EQ(TextTable::pct(0.5, 0), "50%");
}

// env_int: the checked knob parser. warn_env_once fires at most once
// per variable per process, so every case uses its own name.
TEST(EnvInt, UnsetIsSilentNullopt) {
  ::unsetenv("C56_TEST_UNSET");
  EXPECT_EQ(util::env_int("C56_TEST_UNSET", 0, 100), std::nullopt);
}

TEST(EnvInt, ParsesInRangeValue) {
  ::setenv("C56_TEST_OK", "42", 1);
  EXPECT_EQ(util::env_int("C56_TEST_OK", 1, 64), 42);
}

TEST(EnvInt, BoundsAreInclusive) {
  ::setenv("C56_TEST_LO", "1", 1);
  ::setenv("C56_TEST_HI", "64", 1);
  EXPECT_EQ(util::env_int("C56_TEST_LO", 1, 64), 1);
  EXPECT_EQ(util::env_int("C56_TEST_HI", 1, 64), 64);
}

TEST(EnvInt, GarbageFallsBackToDefault) {
  ::setenv("C56_TEST_GARBAGE", "bananas", 1);
  EXPECT_EQ(util::env_int("C56_TEST_GARBAGE", 1, 64), std::nullopt);
  ::setenv("C56_TEST_TRAILING", "12abc", 1);
  EXPECT_EQ(util::env_int("C56_TEST_TRAILING", 1, 64), std::nullopt);
  ::setenv("C56_TEST_EMPTY", "", 1);
  EXPECT_EQ(util::env_int("C56_TEST_EMPTY", 1, 64), std::nullopt);
}

TEST(EnvInt, NegativeClampsToLowerBound) {
  ::setenv("C56_TEST_NEG", "-7", 1);
  EXPECT_EQ(util::env_int("C56_TEST_NEG", 1, 64), 1);
}

TEST(EnvInt, HugeValueClampsToUpperBound) {
  // Overflows long long entirely: must clamp, not wrap or UB.
  ::setenv("C56_TEST_HUGE", "99999999999999999999999999", 1);
  EXPECT_EQ(util::env_int("C56_TEST_HUGE", 1, 64), 64);
  ::setenv("C56_TEST_HUGE_NEG", "-99999999999999999999999999", 1);
  EXPECT_EQ(util::env_int("C56_TEST_HUGE_NEG", 1, 64), 1);
}

TEST(EnvInt, OutOfRangeClampsToNearerBound) {
  ::setenv("C56_TEST_OVER", "1000", 1);
  EXPECT_EQ(util::env_int("C56_TEST_OVER", 1, 64), 64);
  ::setenv("C56_TEST_UNDER", "0", 1);
  EXPECT_EQ(util::env_int("C56_TEST_UNDER", 1, 64), 1);
}

}  // namespace
}  // namespace c56
