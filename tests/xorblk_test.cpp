#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"
#include "xorblk/buffer.hpp"
#include "xorblk/pool.hpp"
#include "xorblk/xor.hpp"

namespace c56 {
namespace {

TEST(Xor, XorIntoMatchesByteLoop) {
  Rng rng(1);
  for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 65u, 200u, 4096u}) {
    std::vector<std::uint8_t> a(n), b(n), expect(n);
    rng.fill(a.data(), n);
    rng.fill(b.data(), n);
    for (std::size_t i = 0; i < n; ++i) expect[i] = a[i] ^ b[i];
    xor_into(a.data(), b.data(), n);
    EXPECT_EQ(a, expect) << "n=" << n;
  }
}

TEST(Xor, XorToThreeOperand) {
  Rng rng(2);
  std::vector<std::uint8_t> a(100), b(100), d(100);
  rng.fill(a.data(), 100);
  rng.fill(b.data(), 100);
  xor_to(d.data(), a.data(), b.data(), 100);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(d[i], a[i] ^ b[i]);
}

TEST(Xor, XorToAliasesDestination) {
  Rng rng(3);
  std::vector<std::uint8_t> a(64), b(64), expect(64);
  rng.fill(a.data(), 64);
  rng.fill(b.data(), 64);
  for (std::size_t i = 0; i < 64; ++i) expect[i] = a[i] ^ b[i];
  xor_to(a.data(), a.data(), b.data(), 64);
  EXPECT_EQ(a, expect);
}

TEST(Xor, SelfInverse) {
  Rng rng(4);
  std::vector<std::uint8_t> a(512), orig(512), b(512);
  rng.fill(a.data(), 512);
  rng.fill(b.data(), 512);
  orig = a;
  xor_into(a.data(), b.data(), 512);
  xor_into(a.data(), b.data(), 512);
  EXPECT_EQ(a, orig);
}

TEST(Xor, AllZeroDetectsSingleBit) {
  for (std::size_t n : {1u, 8u, 9u, 64u, 100u}) {
    std::vector<std::uint8_t> z(n, 0);
    EXPECT_TRUE(all_zero(z.data(), n));
    for (std::size_t i : {std::size_t{0}, n / 2, n - 1}) {
      z.assign(n, 0);
      z[i] = 1;
      EXPECT_FALSE(all_zero(z.data(), n)) << "n=" << n << " i=" << i;
    }
  }
  EXPECT_TRUE(all_zero(nullptr, 0));
}

TEST(Buffer, ZeroInitialized) {
  Buffer b(128);
  EXPECT_TRUE(all_zero(b.span()));
  EXPECT_EQ(b.size(), 128u);
}

TEST(Buffer, FillConstructor) {
  Buffer b(16, 0xAB);
  for (auto byte : b.span()) EXPECT_EQ(byte, 0xAB);
}

TEST(Buffer, CopyIsDeep) {
  Buffer a(32, 0x11);
  Buffer b = a;
  b.data()[0] = 0x22;
  EXPECT_EQ(a.data()[0], 0x11);
  EXPECT_FALSE(a == b);
  b.data()[0] = 0x11;
  EXPECT_TRUE(a == b);
}

TEST(Buffer, BlockSubdivision) {
  Buffer b(4 * 16);
  b.block(2, 16)[0] = 7;
  EXPECT_EQ(b.data()[32], 7);
  EXPECT_EQ(b.block(2, 16).size(), 16u);
}

TEST(Buffer, MoveLeavesSourceReusable) {
  Buffer a(8, 0x5A);
  Buffer b = std::move(a);
  EXPECT_EQ(b.size(), 8u);
  EXPECT_EQ(b.data()[3], 0x5A);
}

TEST(BufferPool, TrimDropsLargestSizesFirst) {
  BufferPool& pool = BufferPool::local();
  pool.trim(0);  // start from a known-empty pool
  ASSERT_EQ(pool.pooled_bytes(), 0u);
  pool.release(Buffer(1024));
  pool.release(Buffer(2048));
  pool.release(Buffer(4096));
  EXPECT_EQ(pool.pooled_bytes(), 7168u);

  // Keeping 3500 bytes must shed the 4096 bucket and nothing else.
  pool.trim(3500);
  EXPECT_EQ(pool.pooled_bytes(), 3072u);
  Buffer small = pool.acquire(1024);  // survivor: served from the pool
  EXPECT_EQ(pool.pooled_bytes(), 2048u);
  const std::uint64_t misses_before = pool.misses();
  Buffer big = pool.acquire(4096);  // trimmed away: fresh allocation
  EXPECT_EQ(pool.misses(), misses_before + 1);

  pool.release(std::move(small));
  pool.release(std::move(big));
  pool.trim(0);
  EXPECT_EQ(pool.pooled_bytes(), 0u);
}

TEST(BufferPool, TrimMaintainsProcessWideGauges) {
  BufferPool& pool = BufferPool::local();
  pool.trim(0);
  const std::uint64_t retained0 = BufferPool::total_retained_bytes();
  const std::uint64_t trimmed0 = BufferPool::total_trimmed_bytes();

  pool.release(Buffer(8192));
  EXPECT_GE(BufferPool::total_retained_bytes(), retained0 + 8192);
  pool.trim(0);
  // The retained gauge gave the bytes back and the trimmed counter
  // recorded the release (other threads may move both concurrently,
  // hence >=; this thread's pool is exact).
  EXPECT_EQ(pool.pooled_bytes(), 0u);
  EXPECT_GE(BufferPool::total_trimmed_bytes(), trimmed0 + 8192);
}

}  // namespace
}  // namespace c56
