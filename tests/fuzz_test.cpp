// Randomized property tests across the code zoo:
//  * arbitrary cell-erasure patterns: whatever the solver declares
//    decodable must decode byte-exactly; any <= 2-cell pattern and any
//    pattern confined to <= 2 columns must be decodable;
//  * decodability is monotone (a subset of a decodable pattern is
//    decodable);
//  * encode/decode round trips over many seeds and odd block sizes;
//  * a model-checked sub-block op stream through the controller's
//    delta write plane (unaligned offsets, 1-byte writes, exact
//    block-end ranges, overlapping ranges in one batch, knob flips).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "codes/registry.hpp"
#include "migration/controller.hpp"
#include "migration/disk_array.hpp"
#include "util/rng.hpp"
#include "xorblk/buffer.hpp"

namespace c56 {
namespace {

struct Param {
  CodeId id;
  int p;
};

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  std::string n = to_string(info.param.id);
  for (char& c : n) {
    if (c == ' ' || c == '-') c = '_';
  }
  return n + "_p" + std::to_string(info.param.p);
}

class FuzzTest : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override { code_ = make_code(GetParam().id, GetParam().p); }

  Buffer encoded(std::size_t block, std::uint64_t seed) const {
    Buffer buf(static_cast<std::size_t>(code_->cell_count()) * block);
    StripeView v =
        StripeView::over(buf, code_->rows(), code_->cols(), block);
    Rng rng(seed);
    for (int r = 0; r < code_->rows(); ++r) {
      for (int c = 0; c < code_->cols(); ++c) {
        if (code_->kind({r, c}) == CellKind::kData) {
          auto blk = v.block({r, c});
          rng.fill(blk.data(), blk.size());
        }
      }
    }
    code_->encode(v);
    return buf;
  }

  std::vector<int> non_virtual_cells() const {
    std::vector<int> out;
    for (int r = 0; r < code_->rows(); ++r) {
      for (int c = 0; c < code_->cols(); ++c) {
        if (code_->kind({r, c}) != CellKind::kVirtual) {
          out.push_back(flat_index({r, c}, code_->cols()));
        }
      }
    }
    return out;
  }

  std::unique_ptr<ErasureCode> code_;
};

TEST_P(FuzzTest, RandomCellErasuresDecodeWhenSolvable) {
  constexpr std::size_t kBlock = 8;
  const Buffer original = encoded(kBlock, 42);
  const std::vector<int> cells = non_virtual_cells();
  Rng rng(7);
  int solvable = 0;
  for (int trial = 0; trial < 200; ++trial) {
    // Random subset of 1..2(rows) cells.
    const std::size_t k =
        1 + rng.next_below(2 * static_cast<std::uint64_t>(code_->rows()));
    std::set<int> erased_set;
    while (erased_set.size() < k) {
      erased_set.insert(
          cells[rng.next_below(cells.size())]);
    }
    const std::vector<int> erased(erased_set.begin(), erased_set.end());
    auto recipes = code_->solve_cells(erased);
    if (!recipes) continue;
    ++solvable;
    Buffer work = original;
    StripeView v =
        StripeView::over(work, code_->rows(), code_->cols(), kBlock);
    for (int e : erased) {
      auto blk = v.block(e);
      rng.fill(blk.data(), blk.size());
    }
    ErasureCode::apply_recipes(v, *recipes);
    EXPECT_TRUE(work == original)
        << "trial " << trial << " erased "
        << ::testing::PrintToString(erased);
  }
  EXPECT_GT(solvable, 50);  // the sweep must actually exercise decoding
}

TEST_P(FuzzTest, AnyTwoCellErasureIsDecodable) {
  const std::vector<int> cells = non_virtual_cells();
  Rng rng(11);
  for (int trial = 0; trial < 300; ++trial) {
    int a = cells[rng.next_below(cells.size())];
    int b = cells[rng.next_below(cells.size())];
    if (a == b) continue;
    const std::vector<int> erased{a, b};
    EXPECT_TRUE(code_->solve_cells(erased).has_value())
        << "cells " << a << "," << b;
  }
}

TEST_P(FuzzTest, DecodabilityIsMonotone) {
  const std::vector<int> cells = non_virtual_cells();
  Rng rng(13);
  for (int trial = 0; trial < 60; ++trial) {
    std::set<int> erased_set;
    const std::size_t k = 2 + rng.next_below(
        2 * static_cast<std::uint64_t>(code_->rows()) - 1);
    while (erased_set.size() < k) {
      erased_set.insert(cells[rng.next_below(cells.size())]);
    }
    std::vector<int> erased(erased_set.begin(), erased_set.end());
    if (!code_->solve_cells(erased)) continue;
    // Drop one element: still solvable.
    erased.erase(erased.begin() +
                 static_cast<std::ptrdiff_t>(rng.next_below(erased.size())));
    EXPECT_TRUE(code_->solve_cells(erased).has_value());
  }
}

TEST_P(FuzzTest, RoundTripAcrossSeedsAndBlockSizes) {
  for (const std::size_t block : {1u, 3u, 8u, 17u, 64u}) {
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      Buffer original = encoded(block, seed);
      StripeView v = StripeView::over(original, code_->rows(),
                                      code_->cols(), block);
      ASSERT_TRUE(code_->verify(v)) << "block=" << block << " seed=" << seed;
      Buffer work = original;
      StripeView w =
          StripeView::over(work, code_->rows(), code_->cols(), block);
      Rng junk(seed * 977);
      const std::vector<int> cols{1, code_->cols() - 1};
      for (int c : cols) {
        for (int r = 0; r < code_->rows(); ++r) {
          auto blk = w.block({r, c});
          junk.fill(blk.data(), blk.size());
        }
      }
      ASSERT_TRUE(code_->decode_columns(w, cols).has_value());
      EXPECT_TRUE(work == original) << "block=" << block << " seed=" << seed;
    }
  }
}

TEST_P(FuzzTest, ParityCorruptionIsRepairableViaReencode) {
  constexpr std::size_t kBlock = 16;
  Buffer original = encoded(kBlock, 5);
  Buffer work = original;
  StripeView v = StripeView::over(work, code_->rows(), code_->cols(), kBlock);
  Rng junk(6);
  // Corrupt every parity cell; re-encoding from intact data restores.
  for (int r = 0; r < code_->rows(); ++r) {
    for (int c = 0; c < code_->cols(); ++c) {
      if (is_parity(code_->kind({r, c}))) {
        auto blk = v.block({r, c});
        junk.fill(blk.data(), blk.size());
      }
    }
  }
  EXPECT_FALSE(code_->verify(v));
  code_->encode(v);
  EXPECT_TRUE(work == original);
}

std::vector<Param> all_params() {
  std::vector<Param> out;
  for (CodeId id : all_code_ids()) {
    out.push_back({id, 5});
    out.push_back({id, 11});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Zoo, FuzzTest, ::testing::ValuesIn(all_params()),
                         param_name);

/// Model-checked fuzz of the controller's sub-block delta plane: a
/// stream of randomly shaped write_range ops — unaligned interiors,
/// 1-byte writes, ranges ending exactly at the block boundary, full
/// blocks, zero-length no-ops, and batches whose entries overlap
/// inside one block — against a flat byte model, with the delta and
/// promotion knobs flipped mid-stream. Every range read must match
/// the model and every stripe must scrub clean at the end.
class SubBlockFuzzTest : public ::testing::TestWithParam<Param> {};

TEST_P(SubBlockFuzzTest, RandomOpStreamMatchesByteModel) {
  constexpr std::size_t kBlock = 32;
  constexpr std::int64_t kStripes = 3;
  auto code = make_code(GetParam().id, GetParam().p);
  mig::DiskArray array(code->cols(), kStripes * code->rows(), kBlock);
  mig::ArrayController ctrl(array, std::move(code));
  const std::int64_t total = ctrl.logical_blocks();
  std::vector<std::uint8_t> model(static_cast<std::size_t>(total) * kBlock);
  Rng rng(0xF0220 + static_cast<std::uint64_t>(GetParam().p));
  // Seed through the whole-block path; the model follows.
  Buffer buf(kBlock);
  for (std::int64_t l = 0; l < total; ++l) {
    rng.fill(buf.data(), kBlock);
    ctrl.write(l, buf.span());
    std::copy(buf.span().begin(), buf.span().end(),
              model.begin() + static_cast<std::size_t>(l) * kBlock);
  }

  const auto random_range = [&]() -> std::pair<std::size_t, std::size_t> {
    switch (rng.next_below(6)) {
      case 0:  // 1-byte write
        return {static_cast<std::size_t>(rng.next_below(kBlock)), 1};
      case 1: {  // exact block-end range
        const auto off = static_cast<std::size_t>(rng.next_below(kBlock));
        return {off, kBlock - off};
      }
      case 2:  // full block
        return {0, kBlock};
      case 3:  // zero-length no-op at a random offset
        return {static_cast<std::size_t>(rng.next_below(kBlock + 1)), 0};
      default: {  // unaligned interior
        const auto off = static_cast<std::size_t>(rng.next_below(kBlock));
        return {off, 1 + static_cast<std::size_t>(rng.next_below(kBlock - off))};
      }
    }
  };
  const auto patch_model = [&](std::int64_t l, std::size_t off,
                               std::span<const std::uint8_t> in) {
    std::copy(in.begin(), in.end(),
              model.begin() + static_cast<std::size_t>(l) * kBlock + off);
  };

  Buffer scratch(8 * kBlock);
  Buffer got(kBlock);
  for (int op = 0; op < 300; ++op) {
    if (op == 100) ctrl.set_subblock_promote_pct(50);
    if (op == 180) ctrl.set_subblock_delta(false);
    if (op == 240) ctrl.set_subblock_delta(true);
    const auto kind = rng.next_below(4);
    if (kind == 0) {
      // Batch with overlapping entries: half the entries target one
      // block, later entries must win on overlap.
      const int n = 2 + static_cast<int>(rng.next_below(6));
      const auto base = static_cast<std::int64_t>(
          rng.next_below(static_cast<std::uint64_t>(total)));
      rng.fill(scratch.data(), scratch.size());
      std::vector<mig::ArrayController::SubWrite> batch;
      for (int i = 0; i < n; ++i) {
        const std::int64_t l =
            rng.next_below(2) == 0
                ? base
                : static_cast<std::int64_t>(
                      rng.next_below(static_cast<std::uint64_t>(total)));
        const auto [off, len] = random_range();
        batch.push_back({l, static_cast<std::int64_t>(off),
                         scratch.span().subspan(i * kBlock + off, len)});
      }
      ctrl.write_range(batch);
      for (const auto& w : batch) {
        patch_model(w.logical, static_cast<std::size_t>(w.offset), w.data);
      }
    } else if (kind == 1) {
      const auto l = static_cast<std::int64_t>(
          rng.next_below(static_cast<std::uint64_t>(total)));
      const auto [off, len] = random_range();
      ctrl.read_range(l, static_cast<std::int64_t>(off),
                      got.span().subspan(0, len));
      ASSERT_TRUE(std::equal(
          got.span().begin(), got.span().begin() + len,
          model.begin() + static_cast<std::size_t>(l) * kBlock + off))
          << "op " << op << " read logical " << l << " off " << off;
    } else {
      const auto l = static_cast<std::int64_t>(
          rng.next_below(static_cast<std::uint64_t>(total)));
      const auto [off, len] = random_range();
      rng.fill(scratch.data(), len);
      const auto data = scratch.span().subspan(0, len);
      ctrl.write_range(l, static_cast<std::int64_t>(off), data);
      patch_model(l, off, data);
    }
  }
  EXPECT_TRUE(ctrl.scrub().empty());
  for (std::int64_t l = 0; l < total; ++l) {
    ctrl.read(l, got.span());
    ASSERT_TRUE(std::equal(
        got.span().begin(), got.span().end(),
        model.begin() + static_cast<std::size_t>(l) * kBlock))
        << "final read diverged at logical " << l;
  }
}

INSTANTIATE_TEST_SUITE_P(Zoo, SubBlockFuzzTest,
                         ::testing::ValuesIn(all_params()), param_name);

}  // namespace
}  // namespace c56
