// Scrubber tests: chain-intersection location and in-place repair of
// silently corrupted cells, across the whole code zoo (controller
// mode), against the watermark trust domains of an online migration
// (migration mode), the silent-corruption fault-injection paths, the
// writer-vs-scrub stripe gate, and a TSan-sized stress run with eight
// conversion workers, foreground writers, and a live scrubber.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "codes/registry.hpp"
#include "layout/raid.hpp"
#include "migration/controller.hpp"
#include "migration/disk_array.hpp"
#include "migration/online.hpp"
#include "scrub/locator.hpp"
#include "scrub/scrubber.hpp"
#include "util/rng.hpp"
#include "xorblk/buffer.hpp"
#include "xorblk/xor.hpp"

namespace c56::scrub {
namespace {

using mig::ArrayController;
using mig::DiskArray;
using mig::FaultPlan;
using mig::MigrationState;
using mig::OnlineMigrator;
using mig::TrustDomain;

constexpr std::size_t kBlock = 64;
constexpr std::int64_t kStripes = 4;

struct Param {
  CodeId id;
  int p;
};

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  std::string n = to_string(info.param.id);
  for (char& c : n) {
    if (c == ' ' || c == '-') c = '_';
  }
  return n + "_p" + std::to_string(info.param.p);
}

std::vector<Param> all_params() {
  std::vector<Param> out;
  for (CodeId id : all_code_ids()) {
    for (int p : {5, 7, 11}) out.push_back({id, p});
  }
  return out;
}

/// RAID-5 fill for migration-mode tests (left-asymmetric, matching
/// OnlineMigrator's source layout).
void fill_raid5(DiskArray& array, int m, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> block(kBlock), parity(kBlock);
  for (std::int64_t row = 0; row < array.blocks_per_disk(); ++row) {
    std::fill(parity.begin(), parity.end(), 0);
    const int pdisk = raid5_parity_disk(Raid5Flavor::kLeftAsymmetric,
                                        static_cast<int>(row % m), m);
    for (int d = 0; d < m; ++d) {
      if (d == pdisk) continue;
      rng.fill(block.data(), kBlock);
      std::ranges::copy(block, array.raw_block(d, row).begin());
      xor_into(parity.data(), block.data(), kBlock);
    }
    std::ranges::copy(parity, array.raw_block(pdisk, row).begin());
  }
}

class ScrubProperty : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    auto code = make_code(GetParam().id, GetParam().p);
    code_ = code.get();
    array_ = std::make_unique<DiskArray>(code->cols(),
                                         kStripes * code->rows(), kBlock);
    ctrl_ = std::make_unique<ArrayController>(*array_, std::move(code));
    // Parity-consistent random contents via the controller.
    const std::int64_t logical = ctrl_->logical_blocks();
    Buffer all(static_cast<std::size_t>(logical) * kBlock);
    Rng rng(0xF111 + static_cast<std::uint64_t>(GetParam().p));
    rng.fill(all.data(), all.size());
    ctrl_->write(0, logical, all.span());
  }

  /// A uniformly random physically stored cell of stripe `s`.
  Cell random_stored_cell(Rng& rng) const {
    while (true) {
      const int f = static_cast<int>(
          rng.next_below(static_cast<std::uint64_t>(code_->cell_count())));
      const Cell c = cell_of_index(f, code_->cols());
      if (code_->kind(c) != CellKind::kVirtual) return c;
    }
  }

  const ErasureCode* code_ = nullptr;
  std::unique_ptr<DiskArray> array_;
  std::unique_ptr<ArrayController> ctrl_;
};

// One random flipped bit per trial: the locator pins exactly the
// corrupted cell, the repair restores the stored bytes byte-for-byte,
// and the controller's own scrub agrees the array is consistent again.
TEST_P(ScrubProperty, SingleCorruptionLocatedAndRepairedByteIdentical) {
  Rng rng(0x5C28 + static_cast<std::uint64_t>(GetParam().p) * 131 +
          static_cast<std::uint64_t>(GetParam().id));
  Scrubber scr(*array_, *ctrl_);
  CellLocator locator(*code_);
  for (int trial = 0; trial < 4; ++trial) {
    SCOPED_TRACE("trial=" + std::to_string(trial));
    const std::int64_t s = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(kStripes)));
    const Cell c = random_stored_cell(rng);
    const int disk = c.col;  // no virtual columns in these geometries
    const std::int64_t b = s * code_->rows() + c.row;
    Buffer want(kBlock);
    std::ranges::copy(array_->raw_block(disk, b), want.span().begin());

    const auto off = static_cast<std::size_t>(rng.next_below(kBlock));
    const auto mask = static_cast<std::uint8_t>(1u << rng.next_below(8));
    array_->corrupt_block(disk, b, off, mask);

    // Locator-level: the failing-chain intersection is exactly the cell.
    Buffer stripe = ctrl_->read_stripe(s);
    StripeView v(stripe.span(), code_->rows(), code_->cols(), kBlock);
    const LocateResult res = locator.locate(v, locator.all_chains());
    ASSERT_EQ(res.outcome, LocateResult::Outcome::kLocated);
    EXPECT_EQ(res.cell, flat_index(c, code_->cols()));

    const PassReport rep = scr.run_pass();
    EXPECT_EQ(rep.dirty, 1);
    EXPECT_EQ(rep.located, 1);
    EXPECT_EQ(rep.repaired, 1);
    EXPECT_EQ(rep.ambiguous, 0);
    EXPECT_EQ(rep.failed, 0);
    EXPECT_TRUE(std::ranges::equal(array_->raw_block(disk, b), want.span()))
        << "repair not byte-identical at disk " << disk << " block " << b;
    EXPECT_TRUE(ctrl_->scrub().empty());
  }
  const ScrubStats st = scr.stats();
  EXPECT_EQ(st.cells_repaired, 4u);
  EXPECT_EQ(st.repair_failures, 0u);
}

INSTANTIATE_TEST_SUITE_P(Zoo, ScrubProperty, ::testing::ValuesIn(all_params()),
                         param_name);

// Two corrupted data cells in one row dirty three chains at once; no
// single cell explains that set, so the scrubber must report ambiguity
// and leave the stored bytes untouched rather than mis-repair.
TEST(ScrubAmbiguity, TwoCorruptionsDetectedNotRepaired) {
  auto code = make_code(CodeId::kCode56, 7);
  DiskArray array(code->cols(), kStripes * code->rows(), kBlock);
  ArrayController ctrl(array, std::move(code));
  const std::int64_t logical = ctrl.logical_blocks();
  Buffer all(static_cast<std::size_t>(logical) * kBlock);
  Rng rng(0xA3B);
  rng.fill(all.data(), all.size());
  ctrl.write(0, logical, all.span());

  // Row 0 of stripe 1: data cells at cols 0 and 1 (parity sits at col
  // p-2 = 5, diagonal column is 6).
  const std::int64_t b = 1 * ctrl.code().rows() + 0;
  array.corrupt_block(0, b, 3, 0x10);
  array.corrupt_block(1, b, 9, 0x02);
  Buffer got0(kBlock), got1(kBlock);
  std::ranges::copy(array.raw_block(0, b), got0.span().begin());
  std::ranges::copy(array.raw_block(1, b), got1.span().begin());

  Scrubber scr(array, ctrl);
  ASSERT_TRUE(scr.repair());
  const PassReport rep = scr.run_pass();
  EXPECT_EQ(rep.dirty, 1);
  EXPECT_EQ(rep.ambiguous, 1);
  EXPECT_EQ(rep.located, 0);
  EXPECT_EQ(rep.repaired, 0);
  // Nothing was rewritten.
  EXPECT_TRUE(std::ranges::equal(array.raw_block(0, b), got0.span()));
  EXPECT_TRUE(std::ranges::equal(array.raw_block(1, b), got1.span()));
}

// FaultPlan injection: a scripted SilentCorruption rides the next
// counted write of its block, reports success, and is invisible until
// a scrub locates and heals it.
TEST(ScrubFaultPlan, ScriptedSilentCorruptionHealedByScrub) {
  auto code = make_code(CodeId::kCode56, 5);
  DiskArray array(code->cols(), kStripes * code->rows(), kBlock);
  ArrayController ctrl(array, std::move(code));

  FaultPlan plan;
  plan.silent_corruptions.push_back({.disk = 0, .block = 0});
  array.set_fault_plan(plan);
  EXPECT_EQ(array.silent_corruptions(), 0u);

  const std::int64_t logical = ctrl.logical_blocks();
  Buffer all(static_cast<std::size_t>(logical) * kBlock);
  Rng rng(0xBEEF);
  rng.fill(all.data(), all.size());
  ctrl.write(0, logical, all.span());  // reports success throughout
  EXPECT_EQ(array.silent_corruptions(), 1u);
  EXPECT_EQ(ctrl.scrub().size(), 1u);  // one stripe really is dirty

  Scrubber scr(array, ctrl);
  const PassReport rep = scr.run_pass();
  EXPECT_EQ(rep.dirty, 1);
  EXPECT_EQ(rep.repaired, 1);
  EXPECT_TRUE(ctrl.scrub().empty());
  Buffer got(static_cast<std::size_t>(logical) * kBlock);
  ctrl.read(0, logical, got.span());
  EXPECT_TRUE(got == all) << "healed data does not match what was written";
}

// bit_rot_rate = 1: every counted write (data and its parity
// read-modify-writes alike) silently flips a bit. The scrub detects
// the damage; with several corruptions per stripe it must prefer
// honesty (ambiguous / failed) over silent mis-repair.
TEST(ScrubFaultPlan, BitRotEveryWriteIsDetected) {
  auto code = make_code(CodeId::kCode56, 5);
  DiskArray array(code->cols(), 1 * code->rows(), kBlock);
  ArrayController ctrl(array, std::move(code));

  FaultPlan plan;
  plan.bit_rot_rate = 1.0;
  plan.seed = 0x5EED;
  array.set_fault_plan(plan);

  Buffer one(kBlock);
  Rng rng(7);
  rng.fill(one.data(), one.size());
  ctrl.write(0, one.span());  // one data write + parity RMWs, all rotten
  EXPECT_GE(array.silent_corruptions(), 2u);

  Scrubber scr(array, ctrl);
  scr.set_repair(false);
  const PassReport rep = scr.run_pass();
  EXPECT_EQ(rep.dirty, 1);
  EXPECT_EQ(rep.repaired, 0);
}

// Satellite regression: ArrayController::scrub() takes the same
// per-stripe gate as the write paths, so concurrent writers can no
// longer produce false inconsistencies (a half-applied write observed
// mid-verify).
TEST(ScrubControllerRace, VerifyNeverFalsePositivesUnderWriters) {
  auto code = make_code(CodeId::kCode56, 5);
  const std::int64_t stripes = 16;
  DiskArray array(code->cols(), stripes * code->rows(), kBlock);
  ArrayController ctrl(array, std::move(code));
  const std::int64_t logical = ctrl.logical_blocks();
  {
    Buffer all(static_cast<std::size_t>(logical) * kBlock);
    Rng rng(1);
    rng.fill(all.data(), all.size());
    ctrl.write(0, logical, all.span());
  }

  constexpr int kWriters = 4;
  const std::int64_t share = logical / kWriters;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      const std::int64_t lo = w * share;
      const std::int64_t hi = w + 1 == kWriters ? logical : lo + share;
      Rng rng(100 + static_cast<std::uint64_t>(w));
      Buffer buf(kBlock * 4);
      while (!stop.load()) {
        rng.fill(buf.data(), buf.size());
        const std::int64_t span = hi - lo;
        const std::int64_t l =
            lo + static_cast<std::int64_t>(
                     rng.next_below(static_cast<std::uint64_t>(span)));
        const std::int64_t n = std::min<std::int64_t>(4, hi - l);
        if (rng.next_below(2) == 0) {
          ctrl.write(l, buf.span().subspan(0, kBlock));
        } else {
          ctrl.write(l, n, buf.span().subspan(
                               0, static_cast<std::size_t>(n) * kBlock));
        }
      }
    });
  }
  Scrubber scr(array, ctrl);
  for (int i = 0; i < 25; ++i) {
    EXPECT_TRUE(ctrl.scrub().empty()) << "false positive on iteration " << i;
    const PassReport rep = scr.run_pass();
    EXPECT_EQ(rep.dirty, 0) << "scrubber false positive on iteration " << i;
  }
  stop.store(true);
  for (std::thread& t : threads) t.join();
  EXPECT_TRUE(ctrl.scrub().empty());
}

// Migration mode, conversion not yet started: every group is in the
// horizontal-only trust domain, where a single-chain syndrome cannot
// be pinned to one cell — every row mate is an equally good candidate.
// The scrubber must detect and refuse, not guess.
TEST(ScrubMigration, HorizontalOnlyDetectsButNeverMisrepairs) {
  const int p = 5, m = p - 1;
  const std::int64_t groups = 6;
  DiskArray array(m, groups * (p - 1), kBlock);
  fill_raid5(array, m, 0xD00D);
  OnlineMigrator mig(array, p);

  // Row 0's RAID-5 parity is at some pdisk; corrupt a data disk.
  const int pdisk =
      raid5_parity_disk(Raid5Flavor::kLeftAsymmetric, 0, m);
  const int disk = pdisk == 0 ? 1 : 0;
  Buffer before(kBlock);
  std::ranges::copy(array.raw_block(disk, 0), before.span().begin());
  array.corrupt_block(disk, 0, 5, 0x40);

  Scrubber scr(array, mig);
  ASSERT_TRUE(scr.repair());
  const PassReport rep = scr.run_pass();
  EXPECT_EQ(rep.scanned, groups);
  EXPECT_EQ(rep.dirty, 1);
  EXPECT_EQ(rep.ambiguous, 1);
  EXPECT_EQ(rep.repaired, 0);
  EXPECT_EQ(rep.deferred, 0);
  EXPECT_FALSE(std::ranges::equal(array.raw_block(disk, 0), before.span()))
      << "scrubber wrote to a cell it could not have located";

  // corrupt_block is an XOR: undoing the flip must leave the array
  // clean again.
  array.corrupt_block(disk, 0, 5, 0x40);
  EXPECT_EQ(scr.run_pass().dirty, 0);
}

// Migration mode after the conversion finished: both parity families
// are trusted everywhere, so a single corrupted cell — data, row
// parity, or the new diagonal column — is located and healed
// byte-identically.
TEST(ScrubMigration, BothFamiliesRepairAfterConversion) {
  const int p = 5, m = p - 1;
  const std::int64_t groups = 6;
  DiskArray array(m, groups * (p - 1), kBlock);
  fill_raid5(array, m, 0xCAFE);
  OnlineMigrator mig(array, p);
  mig.start();
  mig.finish();
  ASSERT_EQ(mig.state(), MigrationState::kDone);
  ASSERT_TRUE(mig.verify_raid6());

  Scrubber scr(array, mig);
  Rng rng(0x60D);
  for (int trial = 0; trial < 4; ++trial) {
    SCOPED_TRACE("trial=" + std::to_string(trial));
    // Any disk, including the appended diagonal column.
    const int disk =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(p)));
    const std::int64_t b = static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(array.blocks_per_disk())));
    Buffer want(kBlock);
    std::ranges::copy(array.raw_block(disk, b), want.span().begin());
    array.corrupt_block(disk, b,
                        static_cast<std::size_t>(rng.next_below(kBlock)),
                        static_cast<std::uint8_t>(1u << rng.next_below(8)));

    const PassReport rep = scr.run_pass();
    EXPECT_EQ(rep.dirty, 1);
    EXPECT_EQ(rep.located, 1);
    EXPECT_EQ(rep.repaired, 1);
    EXPECT_TRUE(std::ranges::equal(array.raw_block(disk, b), want.span()));
  }
  EXPECT_TRUE(mig.verify_raid6());
  EXPECT_EQ(scr.stats().repair_failures, 0u);
}

// A migration stopped at its checkpoint leaves a frozen watermark:
// groups below it repair through both families, groups above it are
// detect-only, and resuming afterwards still converges to a clean
// RAID-6.
TEST(ScrubMigration, WatermarkSplitsRepairFromDetection) {
  const int p = 5, m = p - 1;
  const std::int64_t groups = 24;
  DiskArray array(m, groups * (p - 1), kBlock);
  fill_raid5(array, m, 0xFADE);
  OnlineMigrator mig(array, p);
  mig.start();
  while (mig.groups_done() < 1 && mig.converting()) {
    std::this_thread::yield();
  }
  mig.request_stop();
  mig.finish();
  const std::int64_t wm = mig.groups_done();
  ASSERT_GE(wm, 1);

  Scrubber scr(array, mig);
  {
    // Below the watermark: group 0 is fully converted.
    Buffer want(kBlock);
    std::ranges::copy(array.raw_block(0, 0), want.span().begin());
    array.corrupt_block(0, 0, 1, 0x08);
    const PassReport rep = scr.run_pass();
    EXPECT_EQ(rep.repaired, 1);
    EXPECT_TRUE(std::ranges::equal(array.raw_block(0, 0), want.span()));
  }
  if (wm < groups) {
    // Above the watermark: the last group still trusts only its rows.
    const std::int64_t row = (groups - 1) * (p - 1);
    const int pdisk = raid5_parity_disk(Raid5Flavor::kLeftAsymmetric,
                                        static_cast<int>(row % m), m);
    const int disk = pdisk == 0 ? 1 : 0;
    array.corrupt_block(disk, row, 2, 0x80);
    const PassReport rep = scr.run_pass();
    EXPECT_EQ(rep.ambiguous, 1);
    EXPECT_EQ(rep.repaired, 0);
    array.corrupt_block(disk, row, 2, 0x80);  // undo (XOR)
  }
  EXPECT_EQ(scr.run_pass().dirty, 0);

  mig.resume();
  mig.finish();
  ASSERT_EQ(mig.state(), MigrationState::kDone);
  EXPECT_TRUE(mig.verify_raid6());
  EXPECT_EQ(scr.run_pass().dirty, 0);
}

// TSan-sized stress: eight conversion workers, four foreground
// writers, and a continuously running repair scrubber all share the
// array. Matched into the CI sanitizer leg by the 'OnlineStress' test
// filter.
TEST(ScrubOnlineStress, EightWorkersForegroundIoAndLiveScrubber) {
  const int p = 5, m = p - 1;
  const std::int64_t groups = 24;
  DiskArray array(m, groups * (p - 1), kBlock);
  fill_raid5(array, m, 0x5CB);
  OnlineMigrator mig(array, p);
  mig.set_workers(8);

  obs::EventLog log;
  Scrubber scr(array, mig);
  scr.attach_events(log);
  scr.set_interval_ms(0);
  scr.set_rate(0);

  const std::int64_t logical = mig.logical_blocks();
  constexpr int kWriters = 4;
  const std::int64_t share = logical / kWriters;
  std::vector<std::map<std::int64_t, Buffer>> models(kWriters);

  scr.start();
  mig.start();
  {
    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; ++w) {
      threads.emplace_back([&, w] {
        const std::int64_t lo = w * share;
        const std::int64_t hi = w + 1 == kWriters ? logical : lo + share;
        Rng rng(0x5CB + 1000 + static_cast<std::uint64_t>(w));
        auto& model = models[static_cast<std::size_t>(w)];
        Buffer buf(kBlock), got(kBlock);
        for (int i = 0; i < 300; ++i) {
          const std::int64_t l =
              lo + static_cast<std::int64_t>(rng.next_below(
                       static_cast<std::uint64_t>(hi - lo)));
          if (rng.next_below(3) != 0) {
            rng.fill(buf.data(), kBlock);
            ASSERT_TRUE(mig.write_block(l, buf.span()).ok());
            model[l] = buf;
          } else {
            ASSERT_TRUE(mig.read_block(l, got.span()).ok());
            if (auto it = model.find(l); it != model.end()) {
              EXPECT_TRUE(got == it->second) << "stale read at " << l;
            }
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  mig.finish();
  scr.stop();
  EXPECT_EQ(mig.state(), MigrationState::kDone);

  // No corruption was injected, so nothing may ever have been dirty.
  const ScrubStats st = scr.stats();
  EXPECT_GT(st.stripes_scanned, 0u);
  EXPECT_EQ(st.stripes_dirty, 0u);
  EXPECT_EQ(st.cells_repaired, 0u);
  EXPECT_EQ(scr.run_pass().dirty, 0);
  EXPECT_TRUE(mig.verify_raid6());

  Buffer got(kBlock);
  for (const auto& model : models) {
    for (const auto& [l, want] : model) {
      ASSERT_TRUE(mig.read_block(l, got.span()).ok());
      EXPECT_TRUE(got == want) << "lost write at " << l;
    }
  }
}

// Pacing: a rate of R stripes/second takes roughly (stripes - burst)/R
// seconds per pass; just assert the paced pass is measurably slower
// than an unpaced one and still scans everything.
TEST(ScrubPacing, RateLimitSlowsThePass) {
  auto code = make_code(CodeId::kCode56, 5);
  DiskArray array(code->cols(), 8 * code->rows(), kBlock);
  ArrayController ctrl(array, std::move(code));
  Scrubber scr(array, ctrl);

  scr.set_rate(0);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(scr.run_pass().scanned, 8);
  const auto unpaced = std::chrono::steady_clock::now() - t0;

  scr.set_rate(50);  // 8 stripes at 50/s: >= ~140 ms of pacing
  const auto t1 = std::chrono::steady_clock::now();
  EXPECT_EQ(scr.run_pass().scanned, 8);
  const auto paced = std::chrono::steady_clock::now() - t1;
  EXPECT_GT(paced, unpaced);
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(paced),
            std::chrono::milliseconds(100));
}

}  // namespace
}  // namespace c56::scrub
