// Cross-validation of the concrete planner against the closed-form
// cost model, and of the trace generator against both.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "migration/plan.hpp"
#include "migration/trace_gen.hpp"

namespace c56::mig {
namespace {

struct Param {
  ConversionSpec spec;
};

std::vector<Param> specs() {
  std::vector<Param> out;
  for (CodeId code : {CodeId::kRdp, CodeId::kEvenOdd, CodeId::kHCode}) {
    out.push_back({ConversionSpec::canonical(code, Approach::kViaRaid0, 5)});
    out.push_back({ConversionSpec::canonical(code, Approach::kViaRaid4, 7)});
  }
  out.push_back({ConversionSpec::canonical(CodeId::kXCode, Approach::kDirect, 5)});
  out.push_back({ConversionSpec::canonical(CodeId::kPCode, Approach::kDirect, 7)});
  out.push_back({ConversionSpec::canonical(CodeId::kHdp, Approach::kDirect, 7)});
  out.push_back({ConversionSpec::direct_code56(4)});
  out.push_back({ConversionSpec::direct_code56(6)});  // virtual disk
  return out;
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  std::string n = info.param.spec.label();
  std::string clean;
  for (char c : n) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      clean += c;
    } else {
      clean += '_';
    }
  }
  return clean;
}

class PlanVsModel : public ::testing::TestWithParam<Param> {};

TEST_P(PlanVsModel, OpCountsConvergeToCostModelRatios) {
  const ConversionSpec& spec = GetParam().spec;
  // The closed-form model assumes single-pass streaming reads.
  const ConversionPlanner planner(spec, Raid5Flavor::kLeftAsymmetric,
                                  PassPolicy::kSinglePass);
  const ConversionCosts model = analyze(spec);
  const double b = data_blocks_per_stripe(spec);

  constexpr std::int64_t kGroups = 240;  // multiple of every rotation
  double reads = 0, writes = 0;
  for (std::int64_t g = 0; g < kGroups; ++g) {
    for (const auto& ph : planner.ops_for_group(g)) {
      reads += static_cast<double>(ph.reads());
      writes += static_cast<double>(ph.writes());
    }
  }
  const double denom = b * kGroups;
  // Tolerance: the model spreads holes uniformly over each row, while
  // the concrete rotation can anti-correlate with a code's unprotected
  // diagonal (e.g. RDP via RAID-4 at p=7 deviates by ~1/36).
  EXPECT_NEAR(reads / denom, model.read_io, 0.035) << spec.label();
  EXPECT_NEAR(writes / denom, model.write_io, 1e-9) << spec.label();
}

TEST_P(PlanVsModel, PhaseCountMatchesApproach) {
  const ConversionSpec& spec = GetParam().spec;
  const ConversionPlanner planner(spec);
  const int expected = spec.approach == Approach::kDirect ? 1 : 2;
  EXPECT_EQ(planner.phase_count(), expected);
  EXPECT_EQ(planner.ops_for_group(0).size(),
            static_cast<std::size_t>(expected));
}

TEST_P(PlanVsModel, TraceRequestCountsMatchPlan) {
  const ConversionSpec& spec = GetParam().spec;
  const ConversionPlanner planner(spec);
  TraceParams params;
  params.total_data_blocks = 3000;
  params.block_bytes = 4096;
  const sim::Trace trace = make_conversion_trace(planner, params);

  std::size_t plan_reads = 0, plan_writes = 0;
  const double b = data_blocks_per_stripe(spec);
  const std::int64_t groups = static_cast<std::int64_t>(
      std::ceil(params.total_data_blocks / b));
  for (std::int64_t g = 0; g < groups; ++g) {
    for (const auto& ph : planner.ops_for_group(g)) {
      plan_reads += ph.reads();
      plan_writes += ph.writes();
    }
  }
  EXPECT_EQ(trace.total_reads(), plan_reads);
  EXPECT_EQ(trace.total_writes(), plan_writes);
}

TEST_P(PlanVsModel, TraceDisksWithinBounds) {
  const ConversionSpec& spec = GetParam().spec;
  for (bool lb : {false, true}) {
    ConversionSpec s = spec;
    s.load_balanced = lb;
    const ConversionPlanner planner(s);
    TraceParams params;
    params.total_data_blocks = 500;
    const sim::Trace trace = make_conversion_trace(planner, params);
    for (const auto& ph : trace.phases) {
      for (const auto& r : ph.requests) {
        EXPECT_GE(r.disk, 0);
        EXPECT_LT(r.disk, s.n());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Conversions, PlanVsModel,
                         ::testing::ValuesIn(specs()), param_name);

TEST(Plan, HoleRotatesOverOriginalDisks) {
  const ConversionPlanner planner(
      ConversionSpec::canonical(CodeId::kRdp, Approach::kViaRaid0, 5));
  std::set<int> seen;
  for (int r = 0; r < 4; ++r) seen.insert(planner.hole_col(0, r));
  EXPECT_EQ(seen.size(), 4u);  // left-asymmetric: one parity per disk
}

TEST(Plan, ReuseLayoutsHaveNoHoles) {
  const ConversionPlanner planner(ConversionSpec::direct_code56(4));
  for (int r = 0; r < 4; ++r) EXPECT_EQ(planner.hole_col(0, r), -1);
}

TEST(Plan, Code56GroupOpsMatchPaperExample) {
  // One group: 12 reads (every data block once) + 4 diagonal writes.
  const ConversionPlanner planner(ConversionSpec::direct_code56(4));
  const auto ops = planner.ops_for_group(17);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].reads(), 12u);
  EXPECT_EQ(ops[0].writes(), 4u);
}

TEST(TraceGen, LoadBalancingRotatesParityWrites) {
  const ConversionPlanner planner(ConversionSpec::direct_code56(4, true));
  TraceParams params;
  params.total_data_blocks = 12 * 50;  // 50 groups
  const sim::Trace trace = make_conversion_trace(planner, params);
  std::map<int, std::size_t> writes_per_disk;
  for (const auto& ph : trace.phases) {
    for (const auto& r : ph.requests) {
      if (r.op == sim::Op::kWrite) ++writes_per_disk[r.disk];
    }
  }
  // Every one of the 5 disks receives parity writes under LB.
  EXPECT_EQ(writes_per_disk.size(), 5u);
}

TEST(TraceGen, WithoutLbWritesConcentrateOnNewDisk) {
  const ConversionPlanner planner(ConversionSpec::direct_code56(4, false));
  TraceParams params;
  params.total_data_blocks = 12 * 10;
  const sim::Trace trace = make_conversion_trace(planner, params);
  for (const auto& ph : trace.phases) {
    for (const auto& r : ph.requests) {
      if (r.op == sim::Op::kWrite) {
        EXPECT_EQ(r.disk, 4);
      }
    }
  }
}

TEST(TraceGen, VirtualColumnsNeverAppear) {
  const ConversionPlanner planner(ConversionSpec::direct_code56(6));
  EXPECT_EQ(planner.spec().virtual_disks(), 0);  // m=6 -> p=7, v=0
  const ConversionPlanner planner5(ConversionSpec::direct_code56(5));
  EXPECT_EQ(planner5.spec().virtual_disks(), 1);
  TraceParams params;
  params.total_data_blocks = 1000;
  const sim::Trace trace = make_conversion_trace(planner5, params);
  for (const auto& ph : trace.phases) {
    for (const auto& r : ph.requests) {
      EXPECT_GE(r.disk, 0);
      EXPECT_LT(r.disk, 6);
    }
  }
}

}  // namespace
}  // namespace c56::mig
