// Structural tests of the reconstruction theory:
//  * Theorem 1 / Lemma 1 / Fig. 5: for every pair of failed data
//    columns the two recovery chains — alternating diagonal and
//    horizontal steps from the Theorem's starting points — visit every
//    lost cell exactly once and terminate at the anti-diagonal cells;
//  * EVENODD's adjuster identity S == XOR(row parities) ^ XOR(diagonal
//    parities);
//  * the chain solver against brute-force GF(2) reference systems.

#include <gtest/gtest.h>

#include <set>

#include "codes/code56.hpp"
#include "codes/evenodd.hpp"
#include "gf2/chain_solver.hpp"
#include "util/prime.hpp"
#include "util/rng.hpp"
#include "xorblk/xor.hpp"

namespace c56 {
namespace {

class Theorem1Test : public ::testing::TestWithParam<int> {};

TEST_P(Theorem1Test, TwoChainsPartitionTheLostCells) {
  const int p = GetParam();
  for (int f1 = 0; f1 <= p - 3; ++f1) {
    for (int f2 = f1 + 1; f2 <= p - 2; ++f2) {
      // Walk one chain: recover (r, col) via its diagonal, then the row
      // partner (r, other); the next diagonal step goes through the
      // partner. A cell on the anti-diagonal r + j == p-2 (a horizontal
      // parity position) ends the chain after its row step.
      std::set<std::pair<int, int>> visited;
      auto walk = [&](Cell start, int start_col) {
        int col = start_col;
        int row = start.row;
        for (int step = 0; step <= p; ++step) {  // Lemma 1 bounds the walk
          EXPECT_TRUE(visited.insert({row, col}).second)
              << "revisited (" << row << "," << col << ") f1=" << f1
              << " f2=" << f2;
          // Row partner.
          const int other = col == f1 ? f2 : f1;
          EXPECT_TRUE(visited.insert({row, other}).second);
          // Partner on the unprotected anti-diagonal? chain ends.
          if (pmod(row + other, p) == p - 2) {
            EXPECT_EQ(other == f1 ? p - 2 - f1 : p - 2 - f2, row)
                << "endpoint mismatch";  // C[p-2-f][f] per Algorithm 1
            return;
          }
          // Diagonal step: the diagonal through (row, other) meets the
          // opposite column at row' with row' + col == row + other.
          const int next_row = pmod(row + other - col, p);
          ASSERT_LE(next_row, p - 2);
          row = next_row;
          // col unchanged: the diagonal's second lost cell is in `col`.
        }
        FAIL() << "recovery chain did not terminate";
      };
      walk({f2 - f1 - 1, f1}, f1);
      walk({p - 1 - f2 + f1, f2}, f2);
      // Together the chains cover all 2(p-1) lost cells exactly once.
      EXPECT_EQ(visited.size(), static_cast<std::size_t>(2 * (p - 1)))
          << "f1=" << f1 << " f2=" << f2;
      for (int r = 0; r <= p - 2; ++r) {
        EXPECT_TRUE(visited.count({r, f1}));
        EXPECT_TRUE(visited.count({r, f2}));
      }
    }
  }
}

TEST_P(Theorem1Test, StartingPointsAreOnTheDiagonalsMissingTheOtherColumn) {
  const int p = GetParam();
  Code56 code(p);
  for (int f1 = 0; f1 <= p - 3; ++f1) {
    for (int f2 = f1 + 1; f2 <= p - 2; ++f2) {
      // C[f2-f1-1][f1] lies on the diagonal r+j == f2-1 (mod p), which
      // is exactly the diagonal that skips column f2.
      EXPECT_EQ(pmod((f2 - f1 - 1) + f1, p), pmod(f2 - 1, p));
      EXPECT_EQ(pmod((p - 1 - f2 + f1) + f2, p), pmod(f1 - 1, p));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Primes, Theorem1Test,
                         ::testing::Values(5, 7, 11, 13, 17, 19));

TEST(EvenOddStructure, AdjusterIdentity) {
  // S (the XOR of the adjuster diagonal) equals XOR(row parities) ^
  // XOR(diagonal parities) on any encoded stripe — the identity the
  // specialized decoder relies on.
  for (int p : {5, 7, 11}) {
    EvenOdd code(p);
    constexpr std::size_t kBlock = 16;
    Buffer buf(static_cast<std::size_t>(code.cell_count()) * kBlock);
    StripeView v = StripeView::over(buf, code.rows(), code.cols(), kBlock);
    Rng rng(static_cast<std::uint64_t>(p));
    for (int r = 0; r < code.rows(); ++r) {
      for (int c = 0; c < code.cols(); ++c) {
        if (code.kind({r, c}) == CellKind::kData) {
          auto blk = v.block({r, c});
          rng.fill(blk.data(), blk.size());
        }
      }
    }
    code.encode(v);
    Buffer s_direct(kBlock), s_derived(kBlock);
    for (int j = 1; j <= p - 1; ++j) {
      xor_into(s_direct.span(), v.block({p - 1 - j, j}));
    }
    for (int i = 0; i <= p - 2; ++i) {
      xor_into(s_derived.span(), v.block({i, p}));
      xor_into(s_derived.span(), v.block({i, p + 1}));
    }
    EXPECT_TRUE(s_direct == s_derived) << "p=" << p;
  }
}

TEST(ChainSolverFuzz, MatchesBruteForceOnRandomSystems) {
  // Random chain systems over few cells; compare solvability with a
  // brute-force search over all assignments of the erased bits.
  Rng rng(99);
  for (int trial = 0; trial < 300; ++trial) {
    const int cells = 4 + static_cast<int>(rng.next_below(5));  // 4..8
    const int nchains = 1 + static_cast<int>(rng.next_below(5));
    std::vector<ChainSpec> chains(static_cast<std::size_t>(nchains));
    for (auto& ch : chains) {
      const int len = 2 + static_cast<int>(rng.next_below(
          static_cast<std::uint64_t>(cells - 1)));
      std::set<int> members;
      while (static_cast<int>(members.size()) < len) {
        members.insert(static_cast<int>(rng.next_below(
            static_cast<std::uint64_t>(cells))));
      }
      ch.cells.assign(members.begin(), members.end());
    }
    // A random consistent 1-bit-per-cell assignment.
    // Build: pick values for all cells, then force each chain to XOR to
    // zero by construction — instead, sample until consistent (cheap at
    // this size), or simply test the erasure-uniqueness property:
    // solvable <=> no nonzero kernel vector supported on erased cells.
    const int k = 1 + static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(cells)));
    std::set<int> erased_set;
    while (static_cast<int>(erased_set.size()) < k) {
      erased_set.insert(static_cast<int>(rng.next_below(
          static_cast<std::uint64_t>(cells))));
    }
    const std::vector<int> erased(erased_set.begin(), erased_set.end());
    const bool solver_says = solve_erasures(cells, chains, erased).has_value();
    // Brute force: solvable iff no nonzero pattern x over the erased
    // cells satisfies every chain's restriction (i.e. two different
    // erased-cell assignments consistent with identical known cells).
    bool ambiguous = false;
    for (int mask = 1; mask < (1 << k) && !ambiguous; ++mask) {
      bool in_kernel = true;
      for (const ChainSpec& ch : chains) {
        int parity = 0;
        for (int cell : ch.cells) {
          for (int i = 0; i < k; ++i) {
            if (erased[static_cast<std::size_t>(i)] == cell &&
                ((mask >> i) & 1)) {
              parity ^= 1;
            }
          }
        }
        if (parity != 0) {
          in_kernel = false;
          break;
        }
      }
      ambiguous = in_kernel;
    }
    EXPECT_EQ(solver_says, !ambiguous) << "trial " << trial;
  }
}

}  // namespace
}  // namespace c56
