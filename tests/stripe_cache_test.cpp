// StripeCache and BufferPool unit tests, plus the cache's contract as
// seen through the ArrayController: write-through hits serve reads
// without disk I/O, and every invalidation point (fail, rebuild,
// external hand-off) actually drops stale state.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "codes/registry.hpp"
#include "migration/controller.hpp"
#include "migration/stripe_cache.hpp"
#include "util/rng.hpp"
#include "xorblk/pool.hpp"

namespace c56::mig {
namespace {

constexpr std::size_t kBlock = 32;

Buffer pattern(std::uint8_t b) {
  Buffer buf(kBlock);
  for (auto& x : buf.span()) x = b;
  return buf;
}

TEST(StripeCache, LookupMissThenFillThenHit) {
  StripeCache cache(4, 8, kBlock);
  Buffer got(kBlock);
  EXPECT_FALSE(cache.lookup(0, 3, got.span()));
  const Buffer want = pattern(0xAB);
  cache.fill(0, 3, want.span());
  EXPECT_TRUE(cache.lookup(0, 3, got.span()));
  EXPECT_TRUE(got == want);
  // Same stripe, different cell: entry exists but the cell is invalid.
  EXPECT_FALSE(cache.lookup(0, 4, got.span()));
  const auto st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 2u);
  EXPECT_EQ(st.insertions, 1u);
}

TEST(StripeCache, FillOverwritesInPlace) {
  StripeCache cache(4, 8, kBlock);
  cache.fill(2, 0, pattern(0x11).span());
  cache.fill(2, 0, pattern(0x22).span());
  Buffer got(kBlock);
  ASSERT_TRUE(cache.lookup(2, 0, got.span()));
  EXPECT_TRUE(got == pattern(0x22));
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(StripeCache, LruEvictsColdestStripe) {
  // One shard so the LRU order is global and observable.
  StripeCache cache(2, 4, kBlock, /*shards=*/1);
  cache.fill(0, 0, pattern(1).span());
  cache.fill(1, 0, pattern(2).span());
  Buffer got(kBlock);
  ASSERT_TRUE(cache.lookup(0, 0, got.span()));  // 0 is now MRU
  cache.fill(2, 0, pattern(3).span());          // evicts 1
  EXPECT_TRUE(cache.lookup(0, 0, got.span()));
  EXPECT_FALSE(cache.lookup(1, 0, got.span()));
  EXPECT_TRUE(cache.lookup(2, 0, got.span()));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(StripeCache, InvalidateDropsOneStripeOrAll) {
  StripeCache cache(8, 4, kBlock);
  for (std::int64_t s = 0; s < 4; ++s) cache.fill(s, 1, pattern(9).span());
  Buffer got(kBlock);
  cache.invalidate(2);
  EXPECT_FALSE(cache.lookup(2, 1, got.span()));
  EXPECT_TRUE(cache.lookup(3, 1, got.span()));
  cache.invalidate_all();
  for (std::int64_t s = 0; s < 4; ++s) {
    EXPECT_FALSE(cache.lookup(s, 1, got.span())) << s;
  }
}

TEST(StripeCache, RejectsBadGeometry) {
  EXPECT_THROW(StripeCache(0, 4, kBlock), std::invalid_argument);
  EXPECT_THROW(StripeCache(4, 0, kBlock), std::invalid_argument);
  EXPECT_THROW(StripeCache(4, 4, 0), std::invalid_argument);
}

TEST(BufferPool, RoundTripReusesStorage) {
  BufferPool& pool = BufferPool::local();
  const std::uint64_t h0 = pool.hits();
  const std::uint64_t m0 = pool.misses();
  const std::uint8_t* p1;
  {
    PooledBuffer a(4096);
    p1 = a.data();
    ASSERT_NE(p1, nullptr);
    EXPECT_EQ(a.size(), 4096u);
  }
  {
    PooledBuffer b(4096);  // exact-size reuse of the released buffer
    EXPECT_EQ(b.data(), p1);
  }
  EXPECT_GE(pool.hits(), h0 + 1);
  // A never-seen size is a miss and a fresh allocation.
  { PooledBuffer c(4096 + 96); }
  EXPECT_GE(pool.misses(), m0 + 1);
}

TEST(BufferPool, DistinctSizesGetDistinctBuckets) {
  { PooledBuffer a(128), b(256); }
  PooledBuffer a2(128), b2(256);
  EXPECT_EQ(a2.size(), 128u);
  EXPECT_EQ(b2.size(), 256u);
}

TEST(BufferPool, ThreadLocalPoolsDontShare) {
  // release() must land in the releasing thread's pool; another thread
  // acquiring the same size allocates fresh storage (no locking, no
  // sharing). The assertion is just that this is race-free and sane;
  // run under TSan this is the actual test.
  { PooledBuffer warm(512); }
  std::thread t([] {
    PooledBuffer other(512);
    ASSERT_NE(other.data(), nullptr);
    other.zero();
  });
  t.join();
  PooledBuffer mine(512);
  ASSERT_NE(mine.data(), nullptr);
}

/// Controller-level cache behaviour: hits bypass the DiskArray.
TEST(ControllerCache, WriteThroughHitsServeReadsWithoutIo) {
  auto code = make_code(CodeId::kCode56, 5);
  DiskArray array(code->cols(), 4LL * code->rows(), kBlock);
  ArrayController ctrl(array, std::move(code));
  ctrl.set_cache_stripes(4);
  EXPECT_EQ(ctrl.cache_stripes(), 4u);
  Rng rng(5);
  Buffer buf(kBlock), got(kBlock);
  for (std::int64_t l = 0; l < ctrl.logical_blocks(); ++l) {
    rng.fill(buf.data(), kBlock);
    ctrl.write(l, buf.span());
  }
  const std::uint64_t r0 = array.total_reads();
  for (std::int64_t l = 0; l < ctrl.logical_blocks(); ++l) {
    ctrl.read(l, got.span());
  }
  EXPECT_EQ(array.total_reads(), r0);  // every read was a cache hit
  EXPECT_GT(ctrl.cache_stats().hits, 0u);
  // Disabling drops the cache; reads go to disk again.
  ctrl.set_cache_stripes(0);
  ctrl.read(0, got.span());
  EXPECT_GT(array.total_reads(), r0);
  EXPECT_EQ(ctrl.cache_stats().hits, 0u);  // stats of a disabled cache
}

TEST(ControllerCache, InvalidateCacheDropsExternalOverwrites) {
  auto code = make_code(CodeId::kCode56, 5);
  DiskArray array(code->cols(), 2LL * code->rows(), kBlock);
  ArrayController ctrl(array, std::move(code));
  ctrl.set_cache_stripes(2);
  const Buffer v1 = pattern(0x31);
  ctrl.write(0, v1.span());
  Buffer got(kBlock);
  ctrl.read(0, got.span());
  EXPECT_TRUE(got == v1);
  // Clobber the block behind the controller's back (what an online
  // migration hand-off does), then prove the cache masks it ...
  auto raw = array.raw_block(0, 0);  // logical 0 = cell (0,0) = disk 0
  const Buffer v2 = pattern(0x32);
  std::copy(v2.span().begin(), v2.span().end(), raw.begin());
  ctrl.read(0, got.span());
  EXPECT_TRUE(got == v1) << "expected the (stale) cached value";
  // ... until invalidate_cache(), after which disk truth wins.
  ctrl.invalidate_cache();
  ctrl.read(0, got.span());
  EXPECT_TRUE(got == v2);
}

TEST(ControllerCache, FailAndRebuildInvalidate) {
  auto code = make_code(CodeId::kCode56, 5);
  DiskArray array(code->cols(), 2LL * code->rows(), kBlock);
  ArrayController ctrl(array, std::move(code));
  ctrl.set_cache_stripes(2);
  Rng rng(7);
  Buffer buf(kBlock), got(kBlock);
  std::vector<Buffer> model;
  for (std::int64_t l = 0; l < ctrl.logical_blocks(); ++l) {
    rng.fill(buf.data(), kBlock);
    model.push_back(buf);
    ctrl.write(l, buf.span());
  }
  ctrl.fail_disk(0);
  for (std::int64_t l = 0; l < ctrl.logical_blocks(); ++l) {
    ctrl.read(l, got.span());
    EXPECT_TRUE(got == model[static_cast<std::size_t>(l)]) << l;
  }
  ctrl.rebuild_disk(0);
  EXPECT_TRUE(ctrl.scrub().empty());
  for (std::int64_t l = 0; l < ctrl.logical_blocks(); ++l) {
    ctrl.read(l, got.span());
    EXPECT_TRUE(got == model[static_cast<std::size_t>(l)]) << l;
  }
}

TEST(StripeCache, EvictionCountedOncePerEvictedStripe) {
  // capacity 2, one shard: every insertion beyond the second evicts
  // exactly one stripe, and evictions must count one per stripe pushed
  // out — not per cell, not per LRU touch.
  StripeCache cache(2, /*cells_per_stripe=*/4, kBlock, /*shards=*/1);
  std::vector<std::uint8_t> blk(kBlock, 0x11);
  cache.fill(0, 0, blk);
  cache.fill(0, 1, blk);  // same stripe: update, no insertion
  cache.fill(1, 0, blk);
  EXPECT_EQ(cache.stats().evictions, 0u);
  cache.fill(2, 0, blk);  // evicts stripe 0
  EXPECT_EQ(cache.stats().evictions, 1u);
  cache.fill(2, 1, blk);
  cache.fill(2, 2, blk);  // updates: still one eviction
  EXPECT_EQ(cache.stats().evictions, 1u);
  cache.fill(3, 0, blk);  // evicts stripe 1
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_EQ(cache.stats().insertions, 4u);
}

TEST(StripeCache, SingleShardHammer) {
  // All traffic lands in one shard (stripes are multiples of the shard
  // count), so every thread contends on one mutex: the TSan CI leg
  // turns this into a lock-correctness check for fill / lookup /
  // invalidate racing each other.
  constexpr int kShards = 4;
  StripeCache cache(kShards, /*cells_per_stripe=*/2, kBlock, kShards);
  constexpr int kThreads = 4;
  constexpr int kIters = 1998;  // divisible by 3: exact op-mix accounting
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      std::vector<std::uint8_t> blk(kBlock, static_cast<std::uint8_t>(t));
      std::vector<std::uint8_t> out(kBlock);
      for (int i = 0; i < kIters; ++i) {
        const std::int64_t stripe =
            static_cast<std::int64_t>(i % 3) * kShards;  // shard 0 always
        switch ((i + t) % 3) {
          case 0: cache.fill(stripe, i % 2, blk); break;
          case 1: cache.lookup(stripe, i % 2, out); break;
          default: cache.invalidate(stripe); break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto st = cache.stats();
  EXPECT_EQ(st.hits + st.misses,
            static_cast<std::uint64_t>(kThreads) * kIters / 3);
}

TEST(ControllerCache, CacheStripesKnobChecksItsInput) {
  // C56_CACHE_STRIPES goes through the checked env parser: garbage and
  // negative values leave the cache off instead of strtoull-wrapping
  // into an absurd capacity.
  std::size_t cache_expected = 0;
  const auto stripes_with = [&](const char* v) {
    ASSERT_EQ(setenv("C56_CACHE_STRIPES", v, 1), 0) << v;
    auto code = make_code(CodeId::kCode56, 5);
    DiskArray array(code->cols(), 2LL * code->rows(), kBlock);
    ArrayController ctrl(array, std::move(code));
    unsetenv("C56_CACHE_STRIPES");
    EXPECT_EQ(ctrl.cache_stripes(), cache_expected) << v;
  };
  stripes_with("garbage");  // non-numeric -> default off
  stripes_with("-4");       // negative -> clamps to 0 -> off
  stripes_with("12junk");   // trailing junk -> default off
  cache_expected = 1u << 22;
  stripes_with("99999999999999999999");  // overflow -> clamped cap
}

TEST(StripeCache, ShardCountPreservesCapacityContract) {
  // Capacity 9 over 3 shards: stripe % 3 spreads a sequential scan one
  // stripe per shard slot, so all nine coexist and every lookup hits.
  StripeCache cache(9, 4, kBlock, 3);
  const Buffer want = pattern(0x3C);
  Buffer got(kBlock);
  for (std::int64_t s = 0; s < 9; ++s) cache.fill(s, 0, want.span());
  for (std::int64_t s = 0; s < 9; ++s) {
    EXPECT_TRUE(cache.lookup(s, 0, got.span())) << "stripe " << s;
    EXPECT_TRUE(got == want);
  }
  EXPECT_EQ(cache.stats().evictions, 0u);
  // More shards than stripes clamps so each shard holds >= 1 stripe.
  StripeCache tiny(2, 4, kBlock, 64);
  tiny.fill(0, 0, want.span());
  tiny.fill(1, 0, want.span());
  EXPECT_TRUE(tiny.lookup(0, 0, got.span()));
  EXPECT_TRUE(tiny.lookup(1, 0, got.span()));
}

TEST(ControllerCache, CacheShardsKnobChecksItsInput) {
  // C56_CACHE_SHARDS rides the same checked env parser: garbage keeps
  // the historical default of 8, out-of-range values clamp to [1, 4096].
  int expected = 8;
  const auto shards_with = [&](const char* v) {
    ASSERT_EQ(setenv("C56_CACHE_SHARDS", v, 1), 0) << v;
    auto code = make_code(CodeId::kCode56, 5);
    DiskArray array(code->cols(), 2LL * code->rows(), kBlock);
    ArrayController ctrl(array, std::move(code));
    unsetenv("C56_CACHE_SHARDS");
    EXPECT_EQ(ctrl.cache_shards(), expected) << v;
  };
  shards_with("garbage");  // non-numeric -> default
  shards_with("8junk");    // trailing junk -> default
  expected = 16;
  shards_with("16");
  expected = 1;
  shards_with("0");   // below range -> clamps to 1
  shards_with("-3");
  expected = 4096;
  shards_with("999999999");  // above range -> clamps to the cap
}

TEST(ControllerCache, SetCacheShardsRebuildsEmpty) {
  auto code = make_code(CodeId::kCode56, 5);
  DiskArray array(code->cols(), 2LL * code->rows(), kBlock);
  ArrayController ctrl(array, std::move(code));
  EXPECT_THROW(ctrl.set_cache_shards(0), std::invalid_argument);
  EXPECT_THROW(ctrl.set_cache_shards(4097), std::invalid_argument);
  ctrl.set_cache_stripes(2);

  // Warm the cache: the write-through fill makes this read a hit.
  const Buffer b = pattern(0x5A);
  ctrl.write(0, b.span());
  Buffer got(kBlock);
  ctrl.read(0, got.span());
  EXPECT_GT(ctrl.cache_stats().hits, 0u);

  ctrl.set_cache_shards(3);
  EXPECT_EQ(ctrl.cache_shards(), 3);
  EXPECT_EQ(ctrl.cache_stripes(), 2u);  // capacity survives the rebuild
  EXPECT_EQ(ctrl.cache_stats().hits, 0u);  // contents and stats do not

  ctrl.write(1, b.span());
  ctrl.read(1, got.span());
  EXPECT_GT(ctrl.cache_stats().hits, 0u);  // resharded cache still works
  EXPECT_TRUE(got == b);
}

TEST(ControllerCache, EnvVarEnablesCacheAtConstruction) {
  ASSERT_EQ(setenv("C56_CACHE_STRIPES", "3", 1), 0);
  auto code = make_code(CodeId::kCode56, 5);
  DiskArray array(code->cols(), 2LL * code->rows(), kBlock);
  ArrayController ctrl(array, std::move(code));
  unsetenv("C56_CACHE_STRIPES");
  EXPECT_EQ(ctrl.cache_stripes(), 3u);
  auto code2 = make_code(CodeId::kCode56, 5);
  DiskArray array2(code2->cols(), 2LL * code2->rows(), kBlock);
  ArrayController fresh(array2, std::move(code2));
  EXPECT_EQ(fresh.cache_stripes(), 0u);  // default stays off
}

}  // namespace
}  // namespace c56::mig
