// Block-level controller tests across the whole code zoo: healthy
// read/write round trips with parity maintenance, degraded reads and
// writes under one and two disk failures, rebuild, and scrubbing. Also
// pins the quantified "single write performance" of Table III.

#include <gtest/gtest.h>

#include <map>

#include "codes/code56.hpp"
#include "codes/registry.hpp"
#include "migration/controller.hpp"
#include "util/rng.hpp"

namespace c56::mig {
namespace {

constexpr std::size_t kBlock = 32;
constexpr std::int64_t kStripes = 3;

struct Param {
  CodeId id;
  int p;
};

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  std::string n = to_string(info.param.id);
  for (char& c : n) {
    if (c == ' ' || c == '-') c = '_';
  }
  return n + "_p" + std::to_string(info.param.p);
}

class ControllerTest : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    auto code = make_code(GetParam().id, GetParam().p);
    array_ = std::make_unique<DiskArray>(
        code->cols(), kStripes * code->rows(), kBlock);
    ctrl_ = std::make_unique<ArrayController>(*array_, std::move(code));
    // Write a known pattern through the controller; parities follow.
    Rng rng(17);
    Buffer buf(kBlock);
    for (std::int64_t l = 0; l < ctrl_->logical_blocks(); ++l) {
      rng.fill(buf.data(), kBlock);
      model_[l] = buf;
      ctrl_->write(l, buf.span());
    }
  }

  void expect_all_readable() {
    Buffer got(kBlock);
    for (const auto& [l, want] : model_) {
      ctrl_->read(l, got.span());
      EXPECT_TRUE(got == want) << "logical " << l;
    }
  }

  std::unique_ptr<DiskArray> array_;
  std::unique_ptr<ArrayController> ctrl_;
  std::map<std::int64_t, Buffer> model_;
};

TEST_P(ControllerTest, WritesKeepEveryStripeConsistent) {
  EXPECT_TRUE(ctrl_->scrub().empty());
  expect_all_readable();
}

TEST_P(ControllerTest, DegradedReadUnderSingleFailure) {
  ctrl_->fail_disk(1);
  expect_all_readable();
}

TEST_P(ControllerTest, DegradedReadUnderDoubleFailure) {
  ctrl_->fail_disk(0);
  ctrl_->fail_disk(2);
  expect_all_readable();
  EXPECT_THROW(ctrl_->fail_disk(3), std::runtime_error);
}

TEST_P(ControllerTest, DegradedWritesSurviveRebuild) {
  ctrl_->fail_disk(1);
  Rng rng(23);
  Buffer buf(kBlock);
  // Overwrite a quarter of the blocks while degraded (some of them live
  // on the failed disk).
  for (std::int64_t l = 0; l < ctrl_->logical_blocks(); l += 4) {
    rng.fill(buf.data(), kBlock);
    model_[l] = buf;
    ctrl_->write(l, buf.span());
  }
  expect_all_readable();  // degraded reads see the new data
  const std::int64_t rebuilt = ctrl_->rebuild_disk(1);
  EXPECT_GT(rebuilt, 0);
  EXPECT_FALSE(ctrl_->failed(1));
  EXPECT_TRUE(ctrl_->scrub().empty());
  expect_all_readable();
}

TEST_P(ControllerTest, DoubleFailureRebuildRestoresConsistency) {
  ctrl_->fail_disk(0);
  ctrl_->fail_disk(1);
  ctrl_->rebuild_disk(0);
  ctrl_->rebuild_disk(1);
  EXPECT_TRUE(ctrl_->scrub().empty());
  expect_all_readable();
}

TEST_P(ControllerTest, RecipesRefreshAcrossFailRebuildFailCycle) {
  // Regression: the recovery recipes are lazily solved for the current
  // failure set and must be re-solved after *every* change to it —
  // rebuild_disk included. A controller that kept the disk-1 recipes
  // across the rebuild would XOR the wrong chains here and serve
  // garbage for disk 2 (or crash on a recipe whose target no longer
  // matches the failure set).
  ctrl_->fail_disk(1);
  expect_all_readable();  // solves recipes for {1}
  ctrl_->rebuild_disk(1);
  EXPECT_TRUE(ctrl_->scrub().empty());
  ctrl_->fail_disk(2);    // different disk: recipes for {1} are useless
  expect_all_readable();
  ctrl_->rebuild_disk(2);
  EXPECT_TRUE(ctrl_->scrub().empty());
  expect_all_readable();
}

TEST_P(ControllerTest, ScrubFlagsInjectedCorruption) {
  // Flip a byte behind the controller's back.
  auto blk = array_->raw_block(0, 0);
  blk[0] ^= 0xFF;
  const auto bad = ctrl_->scrub();
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0], 0);
  blk[0] ^= 0xFF;
  EXPECT_TRUE(ctrl_->scrub().empty());
}

TEST_P(ControllerTest, IdempotentWriteCostsNothing) {
  Buffer cur(kBlock);
  ctrl_->read(7, cur.span());
  const std::uint64_t w = array_->total_writes();
  ctrl_->write(7, cur.span());
  EXPECT_EQ(array_->total_writes(), w);
}

std::vector<Param> all_params() {
  std::vector<Param> out;
  for (CodeId id : all_code_ids()) out.push_back({id, 5});
  out.push_back({CodeId::kCode56, 7});
  out.push_back({CodeId::kHdp, 7});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Zoo, ControllerTest,
                         ::testing::ValuesIn(all_params()), param_name);

/// Table III, "single write performance": disk I/Os per one-block
/// update. Optimal-update codes pay 6 (read+write data plus RMW of two
/// parities); EVENODD's adjuster couples its S-diagonal cells to every
/// diagonal parity, which is why the paper rates it "Low".
TEST(SingleWriteCost, MatchesTableIII) {
  auto avg_io_per_write = [](CodeId id, int p) {
    auto code = make_code(id, p);
    DiskArray array(code->cols(), 2LL * code->rows(), kBlock);
    ArrayController ctrl(array, std::move(code));
    Rng rng(3);
    Buffer buf(kBlock);
    for (std::int64_t l = 0; l < ctrl.logical_blocks(); ++l) {
      rng.fill(buf.data(), kBlock);
      ctrl.write(l, buf.span());
    }
    const std::uint64_t r0 = array.total_reads();
    const std::uint64_t w0 = array.total_writes();
    int writes = 0;
    for (std::int64_t l = 0; l < ctrl.logical_blocks(); ++l) {
      rng.fill(buf.data(), kBlock);
      ctrl.write(l, buf.span());
      ++writes;
    }
    return static_cast<double>(array.total_reads() - r0 +
                               array.total_writes() - w0) /
           writes;
  };
  // Optimal codes: read old data + 2 parities, write data + 2 parities.
  EXPECT_DOUBLE_EQ(avg_io_per_write(CodeId::kCode56, 5), 6.0);
  EXPECT_DOUBLE_EQ(avg_io_per_write(CodeId::kXCode, 5), 6.0);
  EXPECT_DOUBLE_EQ(avg_io_per_write(CodeId::kPCode, 7), 6.0);
  EXPECT_DOUBLE_EQ(avg_io_per_write(CodeId::kHCode, 5), 6.0);
  // RDP: data on the unprotected diagonal feeds the row parity only,
  // but through it every diagonal that includes the row-parity column.
  EXPECT_GT(avg_io_per_write(CodeId::kRdp, 5), 6.0);
  // EVENODD: S-diagonal cells feed all p-1 diagonal parities ("Low").
  EXPECT_GT(avg_io_per_write(CodeId::kEvenOdd, 5),
            avg_io_per_write(CodeId::kRdp, 5));
  // HDP pays one extra hop through the horizontal-diagonal coupling.
  EXPECT_GT(avg_io_per_write(CodeId::kHdp, 5), 6.0);
}

TEST(Controller, RejectsBadGeometry) {
  DiskArray wrong(3, 8, kBlock);
  EXPECT_THROW(ArrayController(wrong, make_code(CodeId::kCode56, 5)),
               std::invalid_argument);
  DiskArray misaligned(5, 7, kBlock);
  EXPECT_THROW(ArrayController(misaligned, make_code(CodeId::kCode56, 5)),
               std::invalid_argument);
}

TEST(Controller, VirtualDiskCode56) {
  // m=3 -> p=5, v=1: four physical disks serve a 5-column code.
  auto code = std::make_unique<Code56>(5, 1);
  DiskArray array(4, 2LL * 4, kBlock);
  ArrayController ctrl(array, std::move(code));
  EXPECT_EQ(ctrl.logical_blocks(), 2 * 6);  // 6 data cells per stripe
  Rng rng(9);
  Buffer buf(kBlock), got(kBlock);
  std::map<std::int64_t, Buffer> model;
  for (std::int64_t l = 0; l < ctrl.logical_blocks(); ++l) {
    rng.fill(buf.data(), kBlock);
    model[l] = buf;
    ctrl.write(l, buf.span());
  }
  EXPECT_TRUE(ctrl.scrub().empty());
  ctrl.fail_disk(0);
  ctrl.fail_disk(3);
  for (const auto& [l, want] : model) {
    ctrl.read(l, got.span());
    EXPECT_TRUE(got == want) << l;
  }
  ctrl.rebuild_disk(0);
  ctrl.rebuild_disk(3);
  EXPECT_TRUE(ctrl.scrub().empty());
}

}  // namespace
}  // namespace c56::mig
