#pragma once
// Chain-intersection location of silently corrupted cells.
//
// A stripe of any code in the zoo is covered by parity chains — cell
// sets whose blocks XOR to zero. A single corrupted cell dirties
// exactly the chains it belongs to, so the failing-chain set is the
// cell's chain membership: intersecting the failing chains pinpoints
// the cell whenever its membership is unique among the stored cells
// (for a dual-parity code every data cell sits on two independent
// chains, which is what makes location — not just detection —
// possible; see PAPERS.md on codes protecting against silent data
// corruption). Zero failing chains means clean; a failing set matching
// no cell or several cells (two corruptions, or a single-parity family
// where every row mate looks alike) is reported as ambiguous and never
// repaired.
//
// The locator only trusts the chain subset the caller passes in: during
// migration the scrubber restricts unconverted groups to the horizontal
// (RAID-5) family, converted groups cross-check both families.
// Recomputation of a located cell goes through the GF(2) solver
// (solve_erasures) over the trusted chains — the library's ground-truth
// decoder — rather than any specialized path.

#include <cstdint>
#include <span>
#include <vector>

#include "codes/erasure_code.hpp"
#include "layout/stripe.hpp"

namespace c56::scrub {

struct LocateResult {
  enum class Outcome : std::uint8_t {
    kClean,      // every trusted chain XORs to zero
    kLocated,    // exactly one stored cell explains the failing set
    kAmbiguous,  // zero or several candidates: detect, do not repair
  };
  Outcome outcome = Outcome::kClean;
  int cell = -1;                    // flat index; kLocated only
  std::vector<int> failing_chains;  // trusted chains with nonzero syndrome
  std::vector<int> candidates;      // stored cells matching the failing set
};

const char* to_string(LocateResult::Outcome o) noexcept;

class CellLocator {
 public:
  /// `code` is kept by reference and must outlive the locator.
  explicit CellLocator(const ErasureCode& code);

  /// Every chain index, in chain_specs() order.
  const std::vector<int>& all_chains() const { return all_; }
  /// Chain indices whose parity cell is a horizontal (row) parity —
  /// the family a not-yet-converted RAID-5 group already satisfies.
  const std::vector<int>& horizontal_chains() const { return horizontal_; }

  /// Syndrome-scan the trusted chains (indices into the code's
  /// chain_specs()) over the stored stripe `s` and intersect the
  /// failing ones down to a candidate cell.
  LocateResult locate(StripeView s, std::span<const int> trusted) const;

  /// Recompute the value of `cell_flat` from the other cells of `s`
  /// via a solve_erasures recipe over the trusted chains, into `out`
  /// (block-sized). False when the trusted family cannot reconstruct
  /// the cell.
  bool recompute(StripeView s, int cell_flat, std::span<const int> trusted,
                 std::span<std::uint8_t> out) const;

 private:
  const ErasureCode& code_;
  std::vector<int> all_;
  std::vector<int> horizontal_;
  std::vector<std::vector<int>> member_;  // flat cell -> sorted chain ids
  std::vector<char> stored_;              // flat cell -> physically stored
};

}  // namespace c56::scrub
