#pragma once
// Online scrubber: paced verification of stored stripes against their
// parity chains, chain-intersection location of silently corrupted
// cells (scrub/locator.hpp), and optional in-place repair.
//
// The scrubber never owns an I/O path of its own; it rides one of two
// coordination gates so scans and repairs cannot race a writer:
//
//  * controller mode — each stripe is scanned under
//    ArrayController::with_stripe_lock, the same per-stripe mutex every
//    controller write path takes, and all parity chains are trusted;
//  * migration mode — each stripe group is scanned under
//    OnlineMigrator::scrub_group (shared ops gate + group lock), which
//    also reports the group's TrustDomain: converted groups cross-check
//    both parity families, unconverted groups trust only the RAID-5
//    horizontal rows (location is information-theoretically impossible
//    there — every row mate has the same single-chain membership — so
//    corruption is detected and reported ambiguous, never mis-repaired),
//    and the group the conversion is inside is deferred to a later pass.
//
// A repair recomputes the located cell from the trusted family via the
// GF(2) solver, rewrites it through counted DiskArray I/O (so a repair
// write is itself subject to the fault plan — including bit rot, which
// is why the repair loop re-verifies and retries), and only counts the
// cell repaired once the stripe's trusted chains verify clean again.
//
// Pacing: run_pass() walks every stripe once; start() runs passes on a
// background thread. C56_SCRUB_RATE (stripes/second, 0 = unpaced)
// token-buckets the walk and C56_SCRUB_MS sets the idle sleep between
// passes; both seed the defaults at construction and have setter
// overrides. A constructed-but-idle scrubber costs foreground I/O
// nothing beyond the controller's own stripe gate.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <thread>

#include "migration/controller.hpp"
#include "migration/disk_array.hpp"
#include "migration/online.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "scrub/locator.hpp"
#include "xorblk/buffer.hpp"

namespace c56::scrub {

/// Cumulative scrub accounting (monotonic since construction).
struct ScrubStats {
  std::uint64_t passes = 0;           // completed full walks
  std::uint64_t stripes_scanned = 0;  // stripes whose chains were checked
  std::uint64_t stripes_dirty = 0;    // >= 1 trusted chain failed
  std::uint64_t cells_located = 0;    // failing set pinned to one cell
  std::uint64_t cells_repaired = 0;   // rewritten and re-verified clean
  std::uint64_t ambiguous = 0;        // detected but not locatable
  std::uint64_t deferred = 0;         // skipped (in-flight group, failed disk)
  std::uint64_t repair_failures = 0;  // located but not healed
};

/// One run_pass() walk.
struct PassReport {
  std::int64_t scanned = 0;
  std::int64_t dirty = 0;
  std::int64_t located = 0;
  std::int64_t repaired = 0;
  std::int64_t ambiguous = 0;
  std::int64_t deferred = 0;
  std::int64_t failed = 0;  // located but not healed this pass
  bool clean() const { return dirty == 0 && deferred == 0; }
};

class Scrubber {
 public:
  /// Controller mode: scan `ctrl`'s stripes under its per-stripe gate.
  /// `array` must be the controller's substrate; both are kept by
  /// reference and must outlive the scrubber.
  Scrubber(mig::DiskArray& array, mig::ArrayController& ctrl);
  /// Migration mode: scan `migrator`'s stripe groups under its scrub
  /// hook, trusting only what each group's conversion progress allows.
  Scrubber(mig::DiskArray& array, mig::OnlineMigrator& migrator);

  Scrubber(const Scrubber&) = delete;
  Scrubber& operator=(const Scrubber&) = delete;
  ~Scrubber();  // stop()s the background thread

  /// Repair located cells in place (default) or detect-only.
  void set_repair(bool on) { repair_.store(on); }
  bool repair() const { return repair_.load(); }
  /// Stripes scanned per second; <= 0 disables pacing. Seeded from
  /// C56_SCRUB_RATE at construction (default unpaced).
  void set_rate(int stripes_per_sec) { rate_.store(stripes_per_sec); }
  int rate() const { return rate_.load(); }
  /// Background-thread sleep between passes. Seeded from C56_SCRUB_MS
  /// at construction (default 1000 ms).
  void set_interval_ms(int ms) { interval_ms_.store(ms < 0 ? 0 : ms); }
  int interval_ms() const { return interval_ms_.load(); }

  /// Walk every stripe once (paced when rate() > 0). Serialized against
  /// the background thread's passes; safe to call concurrently with
  /// foreground I/O and an in-flight conversion.
  PassReport run_pass();

  /// Start/stop the background pass loop. start() is idempotent while
  /// running; stop() interrupts pacing sleeps and joins.
  void start();
  void stop();
  bool running() const { return running_.load(); }

  ScrubStats stats() const;

  /// Record scrub events (dirty stripe, located cell, repair outcome)
  /// into `log`, which must outlive the scrubber. Warn/error level, so
  /// they reach the flight recorder regardless of events_enabled().
  void attach_events(obs::EventLog& log) { events_ = &log; }
  void detach_events() { events_ = nullptr; }

  /// Export the ScrubStats counters through `registry` snapshots as
  /// {prefix}_passes, {prefix}_stripes_scanned, ... Detaches on
  /// destruction.
  void attach_metrics(obs::Registry& registry,
                      const std::string& prefix = "scrub");
  void detach_metrics() { metrics_handle_.remove(); }

 private:
  static constexpr int kRepairAttempts = 3;

  /// Pacing state for one pass (token bucket over steady_clock).
  struct Pacer;
  void pace(Pacer& p);
  /// Scan one stripe already under the relevant gate. `base_block` is
  /// the first row's block index on each member disk.
  void scan_locked(std::int64_t stripe, std::int64_t base_block,
                   std::span<const int> trusted, PassReport& rep);
  /// Load the stripe's cells as stored into buf_ (virtual cells and
  /// columns with no disk are zero-filled).
  void load_stripe(std::int64_t base_block);
  /// Column of flat cell -> disk id, or -1 when no disk backs it.
  int disk_of_col(int col) const;
  void emit_event(obs::EventLevel level, std::string message,
                  std::int64_t group = -1, int disk = -1,
                  std::int64_t block = -1,
                  const char* rate_key = nullptr) const;

  mig::DiskArray& array_;
  mig::ArrayController* ctrl_ = nullptr;  // exactly one of ctrl_ /
  mig::OnlineMigrator* mig_ = nullptr;    // mig_ is set
  const ErasureCode& code_;
  CellLocator locator_;
  std::int64_t stripes_;  // controller stripes or migration groups
  // Column offset of disk 0 (controller mode; a migration's Code 5-6
  // has no virtual columns, so 0 there).
  int virtual_cols_ = 0;

  std::atomic<bool> repair_{true};
  std::atomic<int> rate_{0};
  std::atomic<int> interval_ms_{1000};

  std::mutex pass_mu_;  // serializes run_pass bodies
  Buffer buf_;          // one stripe of cells (pass_mu_ holder only)
  Buffer scratch_;      // one recomputed block (pass_mu_ holder only)

  std::mutex bg_mu_;  // background-thread lifecycle + sleep cv
  std::condition_variable bg_cv_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::thread thread_;

  obs::Counter passes_;
  obs::Counter stripes_scanned_;
  obs::Counter stripes_dirty_;
  obs::Counter cells_located_;
  obs::Counter cells_repaired_;
  obs::Counter ambiguous_;
  obs::Counter deferred_;
  obs::Counter repair_failures_;
  obs::EventLog* events_ = nullptr;
  // Declared last so the collector detaches before anything it reads.
  obs::CollectorHandle metrics_handle_;
};

}  // namespace c56::scrub
