#include "scrub/locator.hpp"

#include <algorithm>

#include "xorblk/pool.hpp"
#include "xorblk/xor.hpp"

namespace c56::scrub {

const char* to_string(LocateResult::Outcome o) noexcept {
  switch (o) {
    case LocateResult::Outcome::kClean:
      return "clean";
    case LocateResult::Outcome::kLocated:
      return "located";
    case LocateResult::Outcome::kAmbiguous:
      return "ambiguous";
  }
  return "?";
}

CellLocator::CellLocator(const ErasureCode& code) : code_(code) {
  const std::vector<ChainSpec>& specs = code.chain_specs();
  const std::vector<ParityChain>& chains = code.chains();
  member_.resize(static_cast<std::size_t>(code.cell_count()));
  stored_.resize(static_cast<std::size_t>(code.cell_count()), 0);
  for (int f = 0; f < code.cell_count(); ++f) {
    stored_[static_cast<std::size_t>(f)] =
        code.kind(cell_of_index(f, code.cols())) != CellKind::kVirtual;
  }
  for (std::size_t ci = 0; ci < specs.size(); ++ci) {
    all_.push_back(static_cast<int>(ci));
    if (code.kind(chains[ci].parity) == CellKind::kRowParity) {
      horizontal_.push_back(static_cast<int>(ci));
    }
    for (int cell : specs[ci].cells) {
      member_[static_cast<std::size_t>(cell)].push_back(static_cast<int>(ci));
    }
  }
  for (std::vector<int>& m : member_) std::ranges::sort(m);
}

LocateResult CellLocator::locate(StripeView s,
                                 std::span<const int> trusted) const {
  const std::vector<ChainSpec>& specs = code_.chain_specs();
  const std::size_t bs = s.block_size();
  LocateResult res;
  // Failing set: trusted chains whose member blocks do not XOR to zero.
  std::vector<char> failing(specs.size(), 0);
  PooledBuffer acc(bs);
  std::vector<const std::uint8_t*> srcs;
  for (int ci : trusted) {
    srcs.clear();
    for (int cell : specs[static_cast<std::size_t>(ci)].cells) {
      srcs.push_back(s.block(cell).data());
    }
    xor_accumulate(acc.data(), reinterpret_cast<const void* const*>(srcs.data()),
                   srcs.size(), bs);
    if (!all_zero(acc.span())) {
      failing[static_cast<std::size_t>(ci)] = 1;
      res.failing_chains.push_back(ci);
    }
  }
  if (res.failing_chains.empty()) return res;  // kClean

  // A single corrupted cell dirties exactly its trusted chains, so the
  // candidates are the stored cells whose trusted membership equals the
  // failing set.
  std::vector<char> in_trusted(specs.size(), 0);
  for (int ci : trusted) in_trusted[static_cast<std::size_t>(ci)] = 1;
  const auto want = res.failing_chains.size();
  for (int f = 0; f < code_.cell_count(); ++f) {
    if (!stored_[static_cast<std::size_t>(f)]) continue;
    std::size_t hit = 0;
    bool subset = true;
    for (int ci : member_[static_cast<std::size_t>(f)]) {
      if (!in_trusted[static_cast<std::size_t>(ci)]) continue;
      if (!failing[static_cast<std::size_t>(ci)]) {
        subset = false;  // a clean trusted chain contains the cell
        break;
      }
      ++hit;
    }
    if (subset && hit == want) res.candidates.push_back(f);
  }
  if (res.candidates.size() == 1) {
    res.outcome = LocateResult::Outcome::kLocated;
    res.cell = res.candidates.front();
  } else {
    res.outcome = LocateResult::Outcome::kAmbiguous;
  }
  return res;
}

bool CellLocator::recompute(StripeView s, int cell_flat,
                            std::span<const int> trusted,
                            std::span<std::uint8_t> out) const {
  const std::vector<ChainSpec>& specs = code_.chain_specs();
  std::vector<ChainSpec> subset;
  subset.reserve(trusted.size());
  for (int ci : trusted) subset.push_back(specs[static_cast<std::size_t>(ci)]);
  const int erased[] = {cell_flat};
  const auto recipes = solve_erasures(code_.cell_count(), subset, erased);
  if (!recipes || recipes->empty()) return false;
  std::ranges::fill(out, std::uint8_t{0});
  for (int src : recipes->front().sources) {
    xor_into(out, s.block(src));
  }
  return true;
}

}  // namespace c56::scrub
