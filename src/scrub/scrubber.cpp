#include "scrub/scrubber.hpp"

#include <chrono>
#include <cstring>
#include <string>

#include "layout/geometry.hpp"
#include "util/env.hpp"

namespace c56::scrub {

namespace {

int env_rate() {
  return static_cast<int>(
      util::env_int("C56_SCRUB_RATE", 0, 1'000'000'000).value_or(0));
}

int env_interval_ms() {
  return static_cast<int>(
      util::env_int("C56_SCRUB_MS", 0, 3'600'000).value_or(1000));
}

std::string cell_text(Cell c, int disk, std::int64_t block) {
  return "cell (" + std::to_string(c.row) + "," + std::to_string(c.col) +
         ") disk " + std::to_string(disk) + " block " + std::to_string(block);
}

}  // namespace

Scrubber::Scrubber(mig::DiskArray& array, mig::ArrayController& ctrl)
    : array_(array),
      ctrl_(&ctrl),
      code_(ctrl.code()),
      locator_(code_),
      stripes_(ctrl.stripes()),
      virtual_cols_(ctrl.code().cols() - array.disks()),
      buf_(static_cast<std::size_t>(ctrl.code().cell_count()) *
           array.block_bytes()),
      scratch_(array.block_bytes()) {
  rate_.store(env_rate());
  interval_ms_.store(env_interval_ms());
}

Scrubber::Scrubber(mig::DiskArray& array, mig::OnlineMigrator& migrator)
    : array_(array),
      mig_(&migrator),
      code_(migrator.code()),
      locator_(code_),
      stripes_(migrator.groups()),
      buf_(static_cast<std::size_t>(migrator.code().cell_count()) *
           array.block_bytes()),
      scratch_(array.block_bytes()) {
  rate_.store(env_rate());
  interval_ms_.store(env_interval_ms());
}

Scrubber::~Scrubber() { stop(); }

int Scrubber::disk_of_col(int col) const {
  const int d = col - virtual_cols_;
  return (d >= 0 && d < array_.disks()) ? d : -1;
}

void Scrubber::load_stripe(std::int64_t base_block) {
  const std::size_t bs = array_.block_bytes();
  const int rows = code_.rows();
  const int cols = code_.cols();
  StripeView v(buf_.span(), rows, cols, bs);
  for (int c = 0; c < cols; ++c) {
    const int d = disk_of_col(c);
    for (int r = 0; r < rows; ++r) {
      const auto dst = v.block({r, c});
      if (d < 0 || code_.kind({r, c}) == CellKind::kVirtual) {
        std::memset(dst.data(), 0, bs);
      } else {
        std::memcpy(dst.data(), array_.raw_block(d, base_block + r).data(),
                    bs);
      }
    }
  }
}

void Scrubber::scan_locked(std::int64_t stripe, std::int64_t base_block,
                           std::span<const int> trusted, PassReport& rep) {
  const std::size_t bs = array_.block_bytes();
  load_stripe(base_block);
  StripeView v(buf_.span(), code_.rows(), code_.cols(), bs);
  LocateResult res = locator_.locate(v, trusted);
  ++rep.scanned;
  stripes_scanned_.inc();
  if (res.outcome == LocateResult::Outcome::kClean) return;

  ++rep.dirty;
  stripes_dirty_.inc();
  if (res.outcome == LocateResult::Outcome::kAmbiguous) {
    ++rep.ambiguous;
    ambiguous_.inc();
    emit_event(obs::EventLevel::kWarn,
               "scrub: stripe " + std::to_string(stripe) +
                   " corrupt but ambiguous (" +
                   std::to_string(res.failing_chains.size()) +
                   " failing chains, " + std::to_string(res.candidates.size()) +
                   " candidates)",
               stripe, -1, -1, "scrub-ambiguous");
    return;
  }

  ++rep.located;
  cells_located_.inc();
  {
    const Cell c = cell_of_index(res.cell, code_.cols());
    const int d = disk_of_col(c.col);
    emit_event(obs::EventLevel::kWarn,
               "scrub: stripe " + std::to_string(stripe) +
                   " corrupt, located " +
                   cell_text(c, d, base_block + c.row),
               stripe, d, base_block + c.row, "scrub-located");
  }
  if (!repair_.load()) return;

  // Repair loop: the rewrite goes through counted I/O, so the fault
  // plan applies to it too (a repair write can itself rot or tear) —
  // re-verify from the stored bytes and retry a bounded number of
  // times before declaring the repair failed.
  for (int attempt = 0; attempt < kRepairAttempts; ++attempt) {
    const Cell c = cell_of_index(res.cell, code_.cols());
    const int d = disk_of_col(c.col);
    if (d < 0) break;  // trusted family points at an unbacked cell
    if (!locator_.recompute(v, res.cell, trusted, scratch_.span())) break;
    const std::int64_t b = base_block + c.row;
    (void)array_.write_block(d, b, scratch_.span());  // verified below
    std::memcpy(v.block(res.cell).data(), array_.raw_block(d, b).data(), bs);
    res = locator_.locate(v, trusted);
    if (res.outcome == LocateResult::Outcome::kClean) {
      ++rep.repaired;
      cells_repaired_.inc();
      emit_event(obs::EventLevel::kWarn,
                 "scrub: repaired stripe " + std::to_string(stripe) + " " +
                     cell_text(c, d, b),
                 stripe, d, b, "scrub-repaired");
      return;
    }
    if (res.outcome != LocateResult::Outcome::kLocated) break;
  }
  ++rep.failed;
  repair_failures_.inc();
  emit_event(obs::EventLevel::kError,
             "scrub: repair failed on stripe " + std::to_string(stripe),
             stripe, -1, -1, "scrub-repair-failed");
}

struct Scrubber::Pacer {
  std::chrono::steady_clock::time_point last;
  double tokens = 1.0;  // first stripe is free
};

void Scrubber::pace(Pacer& p) {
  const int rate = rate_.load();
  if (rate <= 0) return;
  const double burst = static_cast<double>(rate);  // one second's worth
  auto refill = [&](std::chrono::steady_clock::time_point now) {
    p.tokens += std::chrono::duration<double>(now - p.last).count() * rate;
    p.last = now;
    if (p.tokens > burst) p.tokens = burst;
  };
  refill(std::chrono::steady_clock::now());
  if (p.tokens < 1.0) {
    const double need_s = (1.0 - p.tokens) / rate;
    std::unique_lock lk(bg_mu_);
    bg_cv_.wait_for(lk, std::chrono::duration<double>(need_s),
                    [&] { return stop_requested_.load(); });
    lk.unlock();
    refill(std::chrono::steady_clock::now());
  }
  p.tokens -= 1.0;
}

PassReport Scrubber::run_pass() {
  std::lock_guard pl(pass_mu_);
  PassReport rep;
  Pacer pacer{std::chrono::steady_clock::now()};
  for (std::int64_t s = 0; s < stripes_; ++s) {
    if (stop_requested_.load()) return rep;  // interrupted: not a full pass
    pace(pacer);
    const std::int64_t base = s * code_.rows();
    if (ctrl_ != nullptr) {
      if (ctrl_->failed_count() > 0) {
        // Raw stripe reads would see a dead disk's stale bytes and
        // every chain through it would fail; wait for the rebuild.
        ++rep.deferred;
        deferred_.inc();
        continue;
      }
      const std::int64_t repaired_before = rep.repaired;
      ctrl_->with_stripe_lock(
          s, [&] { scan_locked(s, base, locator_.all_chains(), rep); });
      // A repair bypassed the controller's write path; drop the cache
      // rather than reason about which cells it might still mirror.
      if (rep.repaired != repaired_before) ctrl_->invalidate_cache();
    } else {
      mig_->scrub_group(s, [&](mig::TrustDomain td) {
        if (td == mig::TrustDomain::kDeferred) {
          ++rep.deferred;
          deferred_.inc();
          return;
        }
        const std::vector<int>& trusted =
            td == mig::TrustDomain::kBothFamilies
                ? locator_.all_chains()
                : locator_.horizontal_chains();
        scan_locked(s, base, trusted, rep);
      });
    }
  }
  passes_.inc();
  return rep;
}

void Scrubber::start() {
  std::lock_guard lk(bg_mu_);
  if (running_.load()) return;
  if (thread_.joinable()) thread_.join();  // previous loop already exited
  stop_requested_.store(false);
  running_.store(true);
  thread_ = std::thread([this] {
    while (!stop_requested_.load()) {
      run_pass();
      std::unique_lock slk(bg_mu_);
      bg_cv_.wait_for(slk,
                      std::chrono::milliseconds(interval_ms_.load()),
                      [&] { return stop_requested_.load(); });
    }
    running_.store(false);
  });
}

void Scrubber::stop() {
  {
    std::lock_guard lk(bg_mu_);
    stop_requested_.store(true);
  }
  bg_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  running_.store(false);
  stop_requested_.store(false);  // manual run_pass() keeps working
}

ScrubStats Scrubber::stats() const {
  ScrubStats s;
  s.passes = passes_.value();
  s.stripes_scanned = stripes_scanned_.value();
  s.stripes_dirty = stripes_dirty_.value();
  s.cells_located = cells_located_.value();
  s.cells_repaired = cells_repaired_.value();
  s.ambiguous = ambiguous_.value();
  s.deferred = deferred_.value();
  s.repair_failures = repair_failures_.value();
  return s;
}

void Scrubber::attach_metrics(obs::Registry& registry,
                              const std::string& prefix) {
  metrics_handle_.remove();
  metrics_handle_ = registry.add_collector([this, prefix](obs::Collection& c) {
    c.counter(prefix + "_passes", passes_.value());
    c.counter(prefix + "_stripes_scanned", stripes_scanned_.value());
    c.counter(prefix + "_stripes_dirty", stripes_dirty_.value());
    c.counter(prefix + "_cells_located", cells_located_.value());
    c.counter(prefix + "_cells_repaired", cells_repaired_.value());
    c.counter(prefix + "_ambiguous", ambiguous_.value());
    c.counter(prefix + "_deferred", deferred_.value());
    c.counter(prefix + "_repair_failures", repair_failures_.value());
  });
}

void Scrubber::emit_event(obs::EventLevel level, std::string message,
                          std::int64_t group, int disk, std::int64_t block,
                          const char* rate_key) const {
  if (events_ == nullptr) return;
  obs::Event ev;
  ev.level = level;
  ev.category = "scrub";
  ev.message = std::move(message);
  ev.group = group;
  ev.disk = disk;
  ev.block = block;
  if (rate_key != nullptr) {
    events_->emit(std::move(ev), rate_key);
  } else {
    events_->emit(std::move(ev));
  }
}

}  // namespace c56::scrub
