#pragma once
// Structured, leveled, rate-limited event log.
//
// Where the metrics Registry answers "how much / how fast", the
// EventLog answers "what happened, when, to which object": a bounded
// in-memory ring of Event records (level, category, message, plus the
// correlation fields a migration debugger needs — migration id, stripe
// group, worker, disk, block) with an optional JSONL sink for offline
// analysis. It absorbs the library's previously ad-hoc warn-once
// fprintfs: util::warn_env_once routes through the global log once one
// exists (see set_env_warn_sink), which covers every env-knob clamp
// warning and the unknown C56_XOR_KERNEL name path.
//
// Recording contract:
//  * kWarn / kError events are ALWAYS recorded (the flight recorder
//    must capture an abort's context even when nobody armed the log).
//  * kDebug / kInfo events are recorded only when events_enabled() —
//    and hot-path emitters must additionally gate the whole call
//    (including message construction) on events_enabled(), so a
//    disabled log costs one predictable relaxed-load branch.
//  * A per-key token budget (default 64 recorded events per key, key
//    defaults to category + message; repetitive emitters pass a stable
//    explicit key) suppresses floods; suppressed events count in
//    dropped(), exported as `events_dropped` so suppression is itself
//    observable.
//
// Warn and error events are echoed to stderr ("c56: category: message")
// unless the echo is turned off, preserving the operator-visible
// behaviour of the fprintf paths this log replaced.
//
// C56_EVENTS=1 arms events_enabled() and C56_EVENT_LOG=<path> opens the
// JSONL sink, both at first touch of EventLog::global().

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"

namespace c56::obs {

namespace detail {
inline std::atomic<bool> g_events_enabled{false};
}  // namespace detail

/// The one hot-path branch: true when optional (debug/info) events
/// should be constructed and emitted. Warn/error events ignore it.
inline bool events_enabled() noexcept {
  return detail::g_events_enabled.load(std::memory_order_relaxed);
}
void set_events_enabled(bool on) noexcept;

enum class EventLevel : std::uint8_t { kDebug = 0, kInfo, kWarn, kError };

/// "debug" / "info" / "warn" / "error".
const char* to_string(EventLevel level) noexcept;

struct Event {
  EventLevel level = EventLevel::kInfo;
  std::string category;  // subsystem or knob name: "migration", "env", ...
  std::string message;
  // Correlation fields; empty / -1 mean "not applicable".
  std::string migration_id;
  std::int64_t group = -1;
  int worker = -1;
  int disk = -1;
  std::int64_t block = -1;
  // Stamped by emit():
  std::uint64_t t_us = 0;  // steady-clock microseconds
  std::uint64_t seq = 0;   // process-unique, monotonic per log
};

/// One JSONL line (no trailing newline); unset correlation fields are
/// omitted.
std::string to_json(const Event& ev);

class EventLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;
  static constexpr std::uint64_t kDefaultRateLimit = 64;

  explicit EventLog(std::size_t capacity = kDefaultCapacity);
  ~EventLog();
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Process-wide log. First touch arms events_enabled() from
  /// C56_EVENTS and the JSONL sink from C56_EVENT_LOG, and makes the
  /// log visible to the util::warn_env_once routing hook.
  static EventLog& global();

  /// Record `ev` (subject to the level and rate-limit contract above).
  /// The rate key defaults to ev.category + ev.message; emitters whose
  /// message text varies per occurrence pass a stable `rate_key`.
  void emit(Event ev);
  void emit(Event ev, const std::string& rate_key);

  /// Recorded events per rate key before suppression kicks in.
  void set_rate_limit(std::uint64_t per_key);
  /// Echo warn/error events to stderr (default on).
  void set_stderr_echo(bool on);
  /// Open (truncating) a JSONL sink; "" closes it. Every recorded
  /// event is appended as one line and flushed.
  bool set_jsonl_path(const std::string& path);

  /// Oldest-to-newest copy of the retained events.
  std::vector<Event> snapshot() const;
  /// The newest min(n, size) events, oldest first.
  std::vector<Event> tail(std::size_t n) const;

  std::uint64_t emitted() const;      // recorded into the ring
  std::uint64_t dropped() const;      // suppressed by the rate limiter
  std::uint64_t overwritten() const;  // evicted by ring wrap
  std::size_t capacity() const { return capacity_; }

  /// Drops ring contents, counters, and rate-limiter state (tests).
  void clear();

  /// Export events_emitted / events_dropped / events_overwritten
  /// through `reg` until detach_metrics() or destruction.
  void attach_metrics(Registry& reg, const std::string& prefix = "events");
  void detach_metrics();

 private:
  void record_locked(Event& ev);

  mutable std::mutex mu_;
  const std::size_t capacity_;
  std::vector<Event> ring_;
  std::size_t next_ = 0;     // ring write cursor
  std::uint64_t total_ = 0;  // events ever recorded
  std::uint64_t rate_limit_ = kDefaultRateLimit;
  std::unordered_map<std::string, std::uint64_t> rate_counts_;
  std::uint64_t next_seq_ = 1;
  std::FILE* sink_ = nullptr;
  bool stderr_echo_ = true;
  // Exported counters are atomics so the metrics collector can read
  // them without touching mu_ (no lock-order edge with the registry).
  Counter emitted_, dropped_, overwritten_;
  CollectorHandle metrics_handle_;
};

}  // namespace c56::obs
