#include "obs/events.hpp"

#include <chrono>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "util/env.hpp"

namespace c56::obs {

void set_events_enabled(bool on) noexcept {
  detail::g_events_enabled.store(on, std::memory_order_relaxed);
}

const char* to_string(EventLevel level) noexcept {
  switch (level) {
    case EventLevel::kDebug: return "debug";
    case EventLevel::kInfo: return "info";
    case EventLevel::kWarn: return "warn";
    case EventLevel::kError: return "error";
  }
  return "info";
}

namespace {

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// The global log, published only once fully constructed so the
// warn_env_once sink below can never observe (or re-enter) a
// half-built instance: EventLog::global() parses its own env knobs,
// and env_int can warn.
std::atomic<EventLog*> g_global{nullptr};

void env_warn_to_events(const char* name, const char* msg) {
  if (EventLog* log = g_global.load(std::memory_order_acquire)) {
    Event ev;
    ev.level = EventLevel::kWarn;
    ev.category = name;
    ev.message = msg;
    // Key on the variable name: warn_env_once already dedups per name,
    // this just keeps hypothetical repeats from distinct messages sane.
    log->emit(std::move(ev), std::string("env:") + name);
    return;
  }
  // Nobody has touched the global log yet — keep the historical
  // stderr behaviour.
  std::fprintf(stderr, "c56: %s: %s\n", name, msg);
}

// Linking the event log into a binary routes env warnings through it.
[[maybe_unused]] const bool g_env_sink_installed = [] {
  util::set_env_warn_sink(&env_warn_to_events);
  return true;
}();

}  // namespace

std::string to_json(const Event& ev) {
  std::ostringstream out;
  out << "{\"t_us\": " << ev.t_us << ", \"seq\": " << ev.seq
      << ", \"level\": \"" << to_string(ev.level) << "\", \"category\": \""
      << detail::json_escape(ev.category) << "\", \"message\": \""
      << detail::json_escape(ev.message) << "\"";
  if (!ev.migration_id.empty()) {
    out << ", \"migration_id\": \"" << detail::json_escape(ev.migration_id)
        << "\"";
  }
  if (ev.group >= 0) out << ", \"group\": " << ev.group;
  if (ev.worker >= 0) out << ", \"worker\": " << ev.worker;
  if (ev.disk >= 0) out << ", \"disk\": " << ev.disk;
  if (ev.block >= 0) out << ", \"block\": " << ev.block;
  out << "}";
  return out.str();
}

EventLog::EventLog(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

EventLog::~EventLog() {
  detach_metrics();
  std::lock_guard lk(mu_);
  if (sink_) std::fclose(sink_);
}

EventLog& EventLog::global() {
  static EventLog* log = [] {
    auto* l = new EventLog();
    g_global.store(l, std::memory_order_release);
    // Knob parsing below may warn_env_once; the sink sees the
    // already-published log, so those warnings land in it.
    if (const auto v = util::env_int("C56_EVENTS", 0, 1); v && *v != 0) {
      set_events_enabled(true);
    }
    if (const char* path = std::getenv("C56_EVENT_LOG"); path && *path) {
      l->set_jsonl_path(path);
    }
    return l;
  }();
  return *log;
}

void EventLog::emit(Event ev) {
  const std::string key = ev.category + ev.message;
  emit(std::move(ev), key);
}

void EventLog::emit(Event ev, const std::string& rate_key) {
  // Optional levels are dropped silently when the log is disarmed —
  // that's the disabled state, not rate-limit suppression.
  if (ev.level < EventLevel::kWarn && !events_enabled()) return;
  std::lock_guard lk(mu_);
  if (++rate_counts_[rate_key] > rate_limit_) {
    dropped_.inc();
    return;
  }
  record_locked(ev);
}

void EventLog::record_locked(Event& ev) {
  ev.t_us = now_us();
  ev.seq = next_seq_++;
  if (stderr_echo_ && ev.level >= EventLevel::kWarn) {
    std::fprintf(stderr, "c56: %s: %s\n", ev.category.c_str(),
                 ev.message.c_str());
  }
  if (sink_) {
    const std::string line = obs::to_json(ev);
    std::fprintf(sink_, "%s\n", line.c_str());
    std::fflush(sink_);
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
  } else {
    ring_[next_] = std::move(ev);
    overwritten_.inc();
  }
  next_ = (next_ + 1) % capacity_;
  ++total_;
  emitted_.inc();
}

void EventLog::set_rate_limit(std::uint64_t per_key) {
  std::lock_guard lk(mu_);
  rate_limit_ = per_key;
}

void EventLog::set_stderr_echo(bool on) {
  std::lock_guard lk(mu_);
  stderr_echo_ = on;
}

bool EventLog::set_jsonl_path(const std::string& path) {
  std::lock_guard lk(mu_);
  if (sink_) {
    std::fclose(sink_);
    sink_ = nullptr;
  }
  if (path.empty()) return true;
  sink_ = std::fopen(path.c_str(), "w");
  return sink_ != nullptr;
}

std::vector<Event> EventLog::snapshot() const {
  std::lock_guard lk(mu_);
  std::vector<Event> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

std::vector<Event> EventLog::tail(std::size_t n) const {
  std::vector<Event> all = snapshot();
  if (all.size() > n) all.erase(all.begin(), all.end() - n);
  return all;
}

std::uint64_t EventLog::emitted() const { return emitted_.value(); }
std::uint64_t EventLog::dropped() const { return dropped_.value(); }
std::uint64_t EventLog::overwritten() const { return overwritten_.value(); }

void EventLog::clear() {
  std::lock_guard lk(mu_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
  rate_counts_.clear();
  emitted_.reset();
  dropped_.reset();
  overwritten_.reset();
}

void EventLog::attach_metrics(Registry& reg, const std::string& prefix) {
  detach_metrics();
  // Counters are atomics, so the collector never touches mu_ (no
  // lock-order edge between the registry lock and the event lock).
  metrics_handle_ = reg.add_collector([this, prefix](Collection& out) {
    out.counter(prefix + "_emitted", emitted_.value());
    out.counter(prefix + "_dropped", dropped_.value());
    out.counter(prefix + "_overwritten", overwritten_.value());
  });
}

void EventLog::detach_metrics() { metrics_handle_.remove(); }

}  // namespace c56::obs
