#pragma once
// Observability layer: a lock-light metrics registry.
//
// Three metric primitives — monotonic Counter, settable Gauge, and a
// log2-bucketed latency Histogram with p50/p95/p99/max extraction —
// are plain structs of relaxed atomics, so updating one is a handful
// of uncontended instructions and is safe from any thread. They can
// live in two places:
//
//  * owned by a Registry (counter(name)/gauge(name)/histogram(name),
//    find-or-create, stable addresses for the registry's lifetime), or
//  * embedded in a subsystem (DiskArray's per-disk counters, the
//    controller's planner counters, ...) and exported at snapshot time
//    through a registered *collector* callback. Collectors keep the
//    subsystem's existing accessor APIs authoritative — the registry
//    never owns or copies their state, it just reads it when asked.
//
// The global on/off switch is one relaxed atomic bool read through
// metrics_enabled(): every optional hot-path observation (latency
// clocks, planner decision counts, pool aggregates) is gated behind
// that single branch, so a disabled registry costs one predictable
// branch and nothing else. Pre-existing accounting that callers rely
// on (DiskArray I/O counters, StripeCache::Stats, OnlineStats) keeps
// counting regardless of the switch.
//
// snapshot() serializes everything — owned metrics plus collectors —
// into a name-sorted Snapshot that the JSON and Prometheus-text
// exporters render deterministically, so the two formats always agree.
// Metric names use Prometheus conventions; per-instance dimensions go
// in a trailing label block the caller appends to the name, e.g.
// "disk_array_reads{disk=\"3\"}". Histograms may carry a label block
// too (the Prometheus exporter merges its quantile label into it).
// The Prometheus exporter is exposition-format conformant: counters
// gain a _total suffix (inserted before the label block unless the
// base already ends in _total), and every family is preceded by
// # HELP and # TYPE lines. Help text comes from set_metric_help(),
// falling back to the family name with underscores spaced out.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace c56::obs {

namespace detail {
inline std::atomic<bool> g_metrics_enabled{false};

/// JSON string escaping shared by every obs serializer (metric names
/// embed quoted label blocks; event messages are arbitrary text).
std::string json_escape(const std::string& s);
}  // namespace detail

/// The one hot-path branch: true when optional observations (latency
/// histograms, planner counters, trace spans' metric twins) should run.
inline bool metrics_enabled() noexcept {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}
void set_metrics_enabled(bool on) noexcept;

/// Monotonic counter. Relaxed increments; reset() is for tests/benches.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Settable signed gauge.
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  double p50 = 0, p95 = 0, p99 = 0;
  /// Non-empty buckets as (inclusive upper bound, count).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;

  /// Quantile from the bucket boundaries (linear interpolation inside
  /// the winning bucket). Exact for values that landed on a boundary.
  double quantile(double q) const;

  /// Interval delta: this snapshot minus an earlier `prev` of the same
  /// histogram, with p50/p95/p99 recomputed over the interval's
  /// samples — the primitive behind rate windows (c56cli top) and the
  /// SLO tracker's interval quantiles. If the histogram was reset
  /// between the two snapshots (count, sum or any bucket would go
  /// negative), the delta is *this unchanged: after a reset the
  /// current snapshot IS the interval. max is carried from *this (a
  /// lifetime max — the interval's true max is not recoverable).
  HistogramSnapshot minus(const HistogramSnapshot& prev) const;

  /// Estimated number of samples strictly above `threshold`, counting
  /// whole buckets above it plus a linear fraction of the straddling
  /// bucket. Feeds SLO violation estimates.
  double count_above(std::uint64_t threshold) const;
};

/// Log2-bucketed histogram over non-negative integer samples (latency
/// in microseconds, queue depths, ...). Bucket k holds values whose
/// bit width is k, i.e. [2^(k-1), 2^k - 1]; bucket 0 holds zero. A
/// sample is three relaxed atomic ops plus a CAS-loop max.
class Histogram {
 public:
  static constexpr int kBuckets = 65;  // bit widths 0..64

  void observe(std::uint64_t v) noexcept;
  HistogramSnapshot snapshot() const;
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

struct Metric {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t counter = 0;  // kCounter
  std::int64_t gauge = 0;     // kGauge
  HistogramSnapshot hist;     // kHistogram
};

/// Point-in-time view of every metric, sorted by name.
struct Snapshot {
  std::vector<Metric> metrics;

  /// nullptr when `name` is absent.
  const Metric* find(const std::string& name) const;
};

/// Builder handed to collector callbacks at snapshot time.
class Collection {
 public:
  void counter(std::string name, std::uint64_t v);
  void gauge(std::string name, std::int64_t v);
  void histogram(std::string name, HistogramSnapshot h);

 private:
  friend class Registry;
  explicit Collection(std::vector<Metric>& out) : out_(out) {}
  std::vector<Metric>& out_;
};

class Registry;

/// RAII registration token: removing it (or destroying it) detaches
/// the collector. The Registry must outlive the handle.
class CollectorHandle {
 public:
  CollectorHandle() = default;
  CollectorHandle(CollectorHandle&& o) noexcept;
  CollectorHandle& operator=(CollectorHandle&& o) noexcept;
  CollectorHandle(const CollectorHandle&) = delete;
  CollectorHandle& operator=(const CollectorHandle&) = delete;
  ~CollectorHandle();

  void remove() noexcept;
  explicit operator bool() const noexcept { return reg_ != nullptr; }

 private:
  friend class Registry;
  CollectorHandle(Registry* reg, std::uint64_t id) : reg_(reg), id_(id) {}
  Registry* reg_ = nullptr;
  std::uint64_t id_ = 0;
};

class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Process-wide default registry (what c56cli and the benches dump).
  static Registry& global();

  /// Find-or-create an owned metric. The reference stays valid for the
  /// registry's lifetime; names are per-kind namespaces.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Register a snapshot-time callback exporting externally-owned
  /// metrics; the handle detaches it. The callback runs under the
  /// registry lock — it must not call back into this registry.
  [[nodiscard]] CollectorHandle add_collector(
      std::function<void(Collection&)> fn);

  Snapshot snapshot() const;
  std::string to_json() const;
  std::string to_prometheus() const;

  /// Zero every owned metric (collector-backed state is untouched).
  void reset();

 private:
  friend class CollectorHandle;
  void remove_collector(std::uint64_t id) noexcept;

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Deterministic renderings of a snapshot. Both sort by metric name;
/// a snapshot rendered through either format carries the same values.
std::string to_json(const Snapshot& snap);
std::string to_prometheus(const Snapshot& snap);

/// Register Prometheus # HELP text for a metric family, keyed by the
/// label-free base name as callers write it (pre-_total; the exporter
/// resolves either spelling). Process-wide; later calls overwrite.
void set_metric_help(const std::string& base, const std::string& help);

}  // namespace c56::obs
