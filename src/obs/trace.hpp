#pragma once
// Bounded ring-buffer trace-span recorder.
//
// A TraceSpan is a (name, start_us, dur_us, tid) tuple, optionally
// carrying request identity: a trace id shared by every span of one
// request, this span's own id, a parent span id, and the request's
// context (tenant, volume, bytes). ScopedSpan is the RAII way to emit
// an anonymous span around a region of interest (a ranged write, a
// stripe-group conversion, a journal checkpoint); the service plane's
// completion path records full request span trees directly (see
// obs/reqtrace.hpp). Recording is off by default and gated on
// trace_enabled() — one relaxed atomic-bool branch — so instrumented
// code costs nothing when tracing is disarmed.
//
// The recorder keeps the most recent `capacity` spans in a fixed ring
// under a mutex (spans are rare, coarse events — lock cost is noise
// next to the work they bracket) and counts how many were dropped once
// the ring wrapped. to_json() renders the ring in Chrome trace-event
// style ("X" complete events) so a dump can be loaded into any
// about:tracing-compatible viewer. Because the ring can evict a parent
// while children survive, to_json() only emits a span's parent link
// when the parent is still present in the snapshot — rendered trees
// never contain dangling references.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace c56::obs {

namespace detail {
inline std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

inline bool trace_enabled() noexcept {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}
void set_trace_enabled(bool on) noexcept;

struct TraceSpan {
  std::string name;
  std::uint64_t start_us = 0;  // steady-clock microseconds
  std::uint64_t dur_us = 0;
  std::uint64_t tid = 0;
  // Request identity (all optional; 0 / -1 mean "not a request span").
  std::uint64_t trace_id = 0;   // shared by every span of one request
  std::uint64_t span_id = 0;    // this span
  std::uint64_t parent_id = 0;  // enclosing span, 0 for roots
  std::int64_t tenant = -1;
  std::int64_t volume = -1;
  std::int64_t bytes = -1;
};

class TraceRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit TraceRecorder(std::size_t capacity = kDefaultCapacity);

  /// Process-wide recorder used by ScopedSpan.
  static TraceRecorder& global();

  void record(TraceSpan span);

  /// Oldest-to-newest copy of the retained spans.
  std::vector<TraceSpan> snapshot() const;

  /// Spans overwritten because the ring was full.
  std::uint64_t dropped() const;

  std::size_t capacity() const { return capacity_; }

  /// Drops everything recorded so far; also resets dropped().
  void clear();

  /// Chrome trace-event JSON ({"traceEvents": [...]}).
  std::string to_json() const;

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<TraceSpan> ring_;
  std::size_t next_ = 0;      // ring write cursor
  std::uint64_t total_ = 0;   // spans ever recorded
};

/// Records a span covering its own lifetime when tracing is enabled at
/// construction time. The name must outlive the scope (string literals).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;  // nullptr when tracing was off
  std::uint64_t start_us_ = 0;
};

}  // namespace c56::obs
