#include "obs/trace.hpp"

#include <chrono>
#include <sstream>
#include <thread>
#include <unordered_set>

#include "util/env.hpp"

namespace c56::obs {

void set_trace_enabled(bool on) noexcept {
  detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

namespace {

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t this_tid() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

}  // namespace

TraceRecorder::TraceRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder* rec = [] {
    if (const auto v = util::env_int("C56_TRACE", 0, 1); v && *v != 0) {
      set_trace_enabled(true);
    }
    return new TraceRecorder();
  }();
  return *rec;
}

void TraceRecorder::record(TraceSpan span) {
  std::lock_guard lk(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
  } else {
    ring_[next_] = std::move(span);
  }
  next_ = (next_ + 1) % capacity_;
  ++total_;
}

std::vector<TraceSpan> TraceRecorder::snapshot() const {
  std::lock_guard lk(mu_);
  std::vector<TraceSpan> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // Ring is full: the slot at next_ is the oldest span.
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard lk(mu_);
  return total_ > capacity_ ? total_ - capacity_ : 0;
}

void TraceRecorder::clear() {
  std::lock_guard lk(mu_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

std::string TraceRecorder::to_json() const {
  const std::vector<TraceSpan> spans = snapshot();
  // Parent links only render when the parent survived the ring — a
  // wrapped ring must never leave a child pointing at an evicted span.
  std::unordered_set<std::uint64_t> present;
  for (const TraceSpan& s : spans) {
    if (s.span_id != 0) present.insert(s.span_id);
  }
  std::ostringstream out;
  out << "{\"traceEvents\": [\n";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const TraceSpan& s = spans[i];
    out << "  {\"name\": \"" << s.name << "\", \"ph\": \"X\", \"ts\": "
        << s.start_us << ", \"dur\": " << s.dur_us << ", \"pid\": 1, "
        << "\"tid\": " << s.tid;
    if (s.trace_id != 0 || s.span_id != 0) {
      out << ", \"args\": {\"trace\": " << s.trace_id << ", \"span\": "
          << s.span_id;
      if (s.parent_id != 0 && present.contains(s.parent_id)) {
        out << ", \"parent\": " << s.parent_id;
      }
      if (s.tenant >= 0) out << ", \"tenant\": " << s.tenant;
      if (s.volume >= 0) out << ", \"volume\": " << s.volume;
      if (s.bytes >= 0) out << ", \"bytes\": " << s.bytes;
      out << "}";
    }
    out << "}" << (i + 1 < spans.size() ? "," : "") << "\n";
  }
  out << "]}\n";
  return out.str();
}

ScopedSpan::ScopedSpan(const char* name) {
  if (trace_enabled()) {
    name_ = name;
    start_us_ = now_us();
  }
}

ScopedSpan::~ScopedSpan() {
  if (!name_) return;
  TraceSpan s;
  s.name = name_;
  s.start_us = start_us_;
  s.dur_us = now_us() - start_us_;
  s.tid = this_tid();
  TraceRecorder::global().record(std::move(s));
}

}  // namespace c56::obs
