#pragma once
// Request-lifecycle tracing: the per-request identity, stage taxonomy
// and tail-exemplar ring behind the service plane's latency
// attribution (DESIGN.md §14).
//
// A request admitted while req_trace_enabled() is armed gets a
// process-unique trace id and timestamps at every hop of its life:
// SQ submit, shard wakeup, DRR drain, batch-execute start/end, and
// completion. The six derived stages —
//
//   queue_wait      submit -> the drain pass that takes the op begins
//   sched_wait      drain-pass begin -> this op popped by DRR
//   batch_assembly  popped -> its volume group starts executing
//   planner         group execute wall minus counted device time
//   device          counted DiskArray I/O wall inside the group
//   complete        group execute end -> completion callback done
//
// — telescope exactly to the end-to-end latency (planner+device
// partition the group's execute wall; every other stage is a
// difference of adjacent timestamps), so per-stage histogram sums
// reconcile against the end-to-end histogram by construction.
//
// Disabled-cost contract: req_trace_enabled() is one relaxed
// atomic-bool load, and every per-request timestamp is taken only for
// ops whose trace_id was assigned while armed. Disarmed, the service
// pays one predictable branch per hop and nothing else.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace c56::obs {

namespace detail {
inline std::atomic<bool> g_req_trace_enabled{false};
inline std::atomic<std::uint64_t> g_next_trace_id{1};
inline std::atomic<std::uint64_t> g_next_span_id{1};
}  // namespace detail

/// The request-tracing hot-path branch (independent of trace_enabled()
/// so span recording and stage attribution arm separately).
inline bool req_trace_enabled() noexcept {
  return detail::g_req_trace_enabled.load(std::memory_order_relaxed);
}
void set_req_trace_enabled(bool on) noexcept;

/// One-time arming from C56_REQ_TRACE=1 (idempotent; the service front
/// end calls this at construction).
void arm_req_trace_from_env();

/// Steady-clock microseconds — the shared timebase of every request
/// timestamp, trace span and sampler tick.
inline std::uint64_t now_us() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Process-unique ids; never 0 (0 means "tracing was off").
inline std::uint64_t next_trace_id() noexcept {
  return detail::g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}
inline std::uint64_t next_span_id() noexcept {
  return detail::g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------
// Stage taxonomy
// ---------------------------------------------------------------------

enum class Stage : int {
  kQueueWait = 0,
  kSchedWait,
  kBatchAssembly,
  kPlanner,
  kDevice,
  kComplete,
};
inline constexpr int kStageCount = 6;

/// "queue_wait", "sched_wait", ... (nullptr-safe: "?" out of range).
const char* stage_name(int stage) noexcept;

/// One histogram per stage; embedded wherever a per-scope breakdown
/// lives (service-wide, per tenant, per volume).
struct StageHistograms {
  Histogram h[kStageCount];
};

// ---------------------------------------------------------------------
// Device-time accounting
// ---------------------------------------------------------------------

/// Thread-local nanoseconds accumulated by DeviceSpan on this thread.
/// Monotone; callers read it before and after a region and subtract.
std::uint64_t device_accum_ns() noexcept;

/// RAII wall-clock accumulator placed at the top of every counted
/// DiskArray I/O entry point. Costs one relaxed-bool branch when
/// request tracing is disarmed.
class DeviceSpan {
 public:
  DeviceSpan() noexcept {
    if (req_trace_enabled()) {
      start_ns_ = std::chrono::steady_clock::now().time_since_epoch().count();
    }
  }
  ~DeviceSpan();
  DeviceSpan(const DeviceSpan&) = delete;
  DeviceSpan& operator=(const DeviceSpan&) = delete;

 private:
  std::int64_t start_ns_ = -1;  // -1: tracing was off at construction
};

// ---------------------------------------------------------------------
// Slowest-N exemplar ring
// ---------------------------------------------------------------------

/// Numeric op kinds mirror svc::OpKind; the name table keeps the obs
/// layer free of a service dependency.
const char* req_op_name(int op) noexcept;

/// One tail request, with its full stage breakdown.
struct SlowRequest {
  std::uint64_t trace_id = 0;
  std::int32_t tenant = 0;
  std::int32_t volume = 0;
  std::int32_t op = 0;      // svc::OpKind numeric
  std::int32_t result = 0;  // svc::Status numeric (0 = ok)
  std::int64_t logical = 0;
  std::int64_t bytes = 0;
  std::uint64_t t_submit_us = 0;
  std::uint64_t latency_us = 0;
  std::uint64_t stage_us[kStageCount] = {};
};

/// Keeps the N slowest requests seen (min-heap keyed on latency, with
/// an atomic floor so losing offers cost one relaxed load + compare).
class SlowRequestRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 16;

  explicit SlowRequestRing(std::size_t capacity = kDefaultCapacity);

  /// Process-wide ring the service's completion path offers into;
  /// capacity comes from C56_SLOW_N (clamped to [1, 1024]) on first
  /// touch.
  static SlowRequestRing& global();

  void offer(const SlowRequest& r);

  /// Retained requests, slowest first.
  std::vector<SlowRequest> snapshot() const;
  void clear();

  std::size_t capacity() const { return cap_; }
  /// Offers made / offers that displaced (or filled) a slot.
  std::uint64_t considered() const {
    return considered_.load(std::memory_order_relaxed);
  }
  std::uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }

  /// JSON array, slowest first, with per-stage microseconds. Embedded
  /// verbatim in post-mortem bundles and c56cli slow --json.
  std::string to_json() const;

 private:
  mutable std::mutex mu_;
  std::size_t cap_;
  std::vector<SlowRequest> heap_;  // min-heap by latency_us
  std::atomic<std::uint64_t> floor_{0};  // heap min once full
  std::atomic<std::uint64_t> considered_{0};
  std::atomic<std::uint64_t> admitted_{0};
};

}  // namespace c56::obs
