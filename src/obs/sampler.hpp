#pragma once
// Background metrics sampler: turns the Registry's point-in-time
// snapshots into a bounded time series.
//
// A MetricsSampler owns one background thread that, every interval
// (C56_SAMPLE_MS, default 100 ms, clamped to [1, 60000]), runs the
// registered probes (e.g. MigrationMonitor::poll, which refreshes the
// derived rate/ETA/stall gauges the snapshot is about to read), takes
// a Registry snapshot, and appends {t_us, snapshot} to a bounded ring
// — optionally also writing one JSONL line per tick so progress-vs-
// time curves (Fig. 16/17) can be plotted from a single run.
//
// Disabled-cost contract: constructing a sampler starts NOTHING — no
// thread exists until start(), and nothing in the library ever calls
// start() on your behalf. A constructed-but-idle sampler is inert
// state on the side; the instrumented code paths it observes already
// pay only their metrics_enabled()/events_enabled() branch.
//
// sample_once() takes one tick synchronously on the caller's thread —
// the deterministic seam tests and benches use instead of racing the
// background thread.

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace c56::obs {

struct MetricsSample {
  std::uint64_t t_us = 0;  // steady-clock microseconds at snapshot time
  Snapshot snap;
};

class MetricsSampler {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;
  static constexpr std::int64_t kDefaultIntervalMs = 100;
  static constexpr std::uint64_t kDefaultJsonlMaxBytes = 64ull << 20;

  /// Interval comes from C56_SAMPLE_MS when set. `reg` must outlive
  /// the sampler.
  explicit MetricsSampler(Registry& reg);
  ~MetricsSampler();  // stop()s
  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  /// Configuration; call before start() (no-ops while running).
  void set_interval_ms(std::int64_t ms);  // clamped to [1, 60000]
  void set_capacity(std::size_t n);
  /// One JSONL line per tick: {"t_us": N, "metrics": {...}}.
  /// "" closes. May be called while running.
  bool set_jsonl_path(const std::string& path);
  /// Size bound on the JSONL sink (0 = unbounded). When a tick pushes
  /// the file past the cap it rotates: <path> -> <path>.1 (replacing
  /// any previous .1) and a fresh <path> — so a long monitor --series
  /// run holds at most ~2x the cap on disk. May be called any time.
  void set_jsonl_max_bytes(std::uint64_t n);
  /// Runs at the start of every tick, on the sampling thread.
  void add_probe(std::function<void()> probe);

  /// Spawn the sampling thread (idempotent).
  void start();
  /// Signal and join it (idempotent; also called by the destructor).
  void stop();
  bool running() const;

  /// One synchronous tick: probes, snapshot, ring append, JSONL line.
  void sample_once();

  std::int64_t interval_ms() const;
  /// Oldest-to-newest copy of the retained samples.
  std::vector<MetricsSample> samples() const;
  std::uint64_t ticks() const;        // samples ever taken
  std::uint64_t overwritten() const;  // evicted by ring wrap
  std::uint64_t jsonl_rotations() const;  // sink rollovers so far
  std::uint64_t jsonl_bytes() const;      // bytes in the current sink

 private:
  void run();
  void tick();

  Registry& reg_;
  mutable std::mutex mu_;  // ring + config + thread lifecycle
  std::condition_variable cv_;
  std::thread thread_;
  bool thread_active_ = false;  // a thread_ exists and must be joined
  bool stop_requested_ = false;
  std::int64_t interval_ms_ = kDefaultIntervalMs;
  std::size_t capacity_ = kDefaultCapacity;
  std::vector<MetricsSample> ring_;
  std::size_t next_ = 0;
  std::uint64_t ticks_ = 0;
  std::uint64_t overwritten_ = 0;
  std::vector<std::function<void()>> probes_;
  std::FILE* sink_ = nullptr;
  std::string sink_path_;
  std::uint64_t sink_max_bytes_ = kDefaultJsonlMaxBytes;
  std::uint64_t sink_bytes_ = 0;
  std::uint64_t sink_rotations_ = 0;
};

}  // namespace c56::obs
