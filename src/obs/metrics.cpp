#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <deque>
#include <mutex>
#include <sstream>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "util/env.hpp"

namespace c56::obs {

void set_metrics_enabled(bool on) noexcept {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

void Histogram::observe(std::uint64_t v) noexcept {
  buckets_[std::bit_width(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  for (int k = 0; k < kBuckets; ++k) {
    const std::uint64_t n = buckets_[k].load(std::memory_order_relaxed);
    if (n == 0) continue;
    // Inclusive upper bound of bit-width bucket k: 2^k - 1 (0 for k=0).
    const std::uint64_t ub =
        k == 0 ? 0
               : (k >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << k) - 1);
    s.buckets.emplace_back(ub, n);
  }
  s.p50 = s.quantile(0.50);
  s.p95 = s.quantile(0.95);
  s.p99 = s.quantile(0.99);
  return s;
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  // One sample: every quantile IS that sample. The bucket walk below
  // would interpolate to the log2 bucket's interior (e.g. a single
  // observe(1000) landing in [512, 1023] reads back as 767.5).
  if (count == 1) return static_cast<double>(max);
  const double target = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (const auto& [ub, n] : buckets) {
    if (static_cast<double>(seen + n) < target) {
      seen += n;
      continue;
    }
    const std::uint64_t lo = ub == 0 ? 0 : ub / 2 + 1;  // 2^(k-1)
    const double frac =
        n == 0 ? 0.0 : (target - static_cast<double>(seen)) /
                           static_cast<double>(n);
    const double est =
        static_cast<double>(lo) + frac * static_cast<double>(ub - lo);
    // The true maximum is tracked exactly; never report past it.
    return std::min(est, static_cast<double>(max));
  }
  return static_cast<double>(max);
}

HistogramSnapshot HistogramSnapshot::minus(const HistogramSnapshot& prev) const {
  if (prev.count > count || prev.sum > sum) return *this;
  HistogramSnapshot d;
  // Both bucket lists hold only non-empty buckets in ascending-ub
  // order; march them together. A prev bucket that cur lacks, or that
  // shrank, means the histogram was reset between snapshots.
  std::size_t pi = 0;
  for (const auto& [ub, n] : buckets) {
    if (pi < prev.buckets.size() && prev.buckets[pi].first < ub) {
      return *this;
    }
    std::uint64_t pn = 0;
    if (pi < prev.buckets.size() && prev.buckets[pi].first == ub) {
      pn = prev.buckets[pi].second;
      ++pi;
    }
    if (pn > n) return *this;
    if (n > pn) d.buckets.emplace_back(ub, n - pn);
  }
  if (pi < prev.buckets.size()) return *this;
  d.count = count - prev.count;
  d.sum = sum - prev.sum;
  d.max = max;
  d.p50 = d.quantile(0.50);
  d.p95 = d.quantile(0.95);
  d.p99 = d.quantile(0.99);
  return d;
}

double HistogramSnapshot::count_above(std::uint64_t threshold) const {
  double above = 0.0;
  for (const auto& [ub, n] : buckets) {
    const std::uint64_t lo = ub == 0 ? 0 : ub / 2 + 1;  // 2^(k-1)
    if (lo > threshold) {
      above += static_cast<double>(n);
    } else if (ub > threshold) {
      above += static_cast<double>(n) *
               static_cast<double>(ub - threshold) /
               static_cast<double>(ub - lo + 1);
    }
  }
  return above;
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

struct Registry::Impl {
  mutable std::mutex mu;
  // Deques give stable element addresses as metrics are added.
  std::deque<std::pair<std::string, Counter>> counters;
  std::deque<std::pair<std::string, Gauge>> gauges;
  std::deque<std::pair<std::string, Histogram>> histograms;
  std::unordered_map<std::string, Counter*> counter_index;
  std::unordered_map<std::string, Gauge*> gauge_index;
  std::unordered_map<std::string, Histogram*> histogram_index;
  struct Coll {
    std::uint64_t id;
    std::function<void(Collection&)> fn;
  };
  std::vector<Coll> collectors;
  std::uint64_t next_collector_id = 1;
};

Registry::Registry() : impl_(std::make_unique<Impl>()) {}
Registry::~Registry() = default;

Registry& Registry::global() {
  static Registry* reg = [] {
    // The C56_METRICS / C56_TRACE env knobs arm the process-wide
    // switches the first time anyone touches the global registry.
    if (const auto v = util::env_int("C56_METRICS", 0, 1); v && *v != 0) {
      set_metrics_enabled(true);
    }
    return new Registry();
  }();
  return *reg;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard lk(impl_->mu);
  if (auto it = impl_->counter_index.find(name);
      it != impl_->counter_index.end()) {
    return *it->second;
  }
  impl_->counters.emplace_back(std::piecewise_construct,
                               std::forward_as_tuple(name),
                               std::forward_as_tuple());
  Counter* c = &impl_->counters.back().second;
  impl_->counter_index.emplace(name, c);
  return *c;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard lk(impl_->mu);
  if (auto it = impl_->gauge_index.find(name); it != impl_->gauge_index.end()) {
    return *it->second;
  }
  impl_->gauges.emplace_back(std::piecewise_construct,
                             std::forward_as_tuple(name),
                             std::forward_as_tuple());
  Gauge* g = &impl_->gauges.back().second;
  impl_->gauge_index.emplace(name, g);
  return *g;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard lk(impl_->mu);
  if (auto it = impl_->histogram_index.find(name);
      it != impl_->histogram_index.end()) {
    return *it->second;
  }
  impl_->histograms.emplace_back(std::piecewise_construct,
                                 std::forward_as_tuple(name),
                                 std::forward_as_tuple());
  Histogram* h = &impl_->histograms.back().second;
  impl_->histogram_index.emplace(name, h);
  return *h;
}

CollectorHandle Registry::add_collector(std::function<void(Collection&)> fn) {
  std::lock_guard lk(impl_->mu);
  const std::uint64_t id = impl_->next_collector_id++;
  impl_->collectors.push_back({id, std::move(fn)});
  return CollectorHandle(this, id);
}

void Registry::remove_collector(std::uint64_t id) noexcept {
  std::lock_guard lk(impl_->mu);
  std::erase_if(impl_->collectors,
                [id](const Impl::Coll& c) { return c.id == id; });
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  {
    std::lock_guard lk(impl_->mu);
    for (const auto& [name, c] : impl_->counters) {
      Metric m;
      m.name = name;
      m.kind = MetricKind::kCounter;
      m.counter = c.value();
      snap.metrics.push_back(std::move(m));
    }
    for (const auto& [name, g] : impl_->gauges) {
      Metric m;
      m.name = name;
      m.kind = MetricKind::kGauge;
      m.gauge = g.value();
      snap.metrics.push_back(std::move(m));
    }
    for (const auto& [name, h] : impl_->histograms) {
      Metric m;
      m.name = name;
      m.kind = MetricKind::kHistogram;
      m.hist = h.snapshot();
      snap.metrics.push_back(std::move(m));
    }
    Collection coll(snap.metrics);
    for (const auto& c : impl_->collectors) c.fn(coll);
  }
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const Metric& a, const Metric& b) { return a.name < b.name; });
  return snap;
}

void Registry::reset() {
  std::lock_guard lk(impl_->mu);
  for (auto& [name, c] : impl_->counters) c.reset();
  for (auto& [name, g] : impl_->gauges) g.set(0);
  for (auto& [name, h] : impl_->histograms) h.reset();
}

std::string Registry::to_json() const { return obs::to_json(snapshot()); }
std::string Registry::to_prometheus() const {
  return obs::to_prometheus(snapshot());
}

// ---------------------------------------------------------------------
// Collection / CollectorHandle
// ---------------------------------------------------------------------

void Collection::counter(std::string name, std::uint64_t v) {
  Metric m;
  m.name = std::move(name);
  m.kind = MetricKind::kCounter;
  m.counter = v;
  out_.push_back(std::move(m));
}

void Collection::gauge(std::string name, std::int64_t v) {
  Metric m;
  m.name = std::move(name);
  m.kind = MetricKind::kGauge;
  m.gauge = v;
  out_.push_back(std::move(m));
}

void Collection::histogram(std::string name, HistogramSnapshot h) {
  Metric m;
  m.name = std::move(name);
  m.kind = MetricKind::kHistogram;
  m.hist = std::move(h);
  out_.push_back(std::move(m));
}

CollectorHandle::CollectorHandle(CollectorHandle&& o) noexcept
    : reg_(o.reg_), id_(o.id_) {
  o.reg_ = nullptr;
}

CollectorHandle& CollectorHandle::operator=(CollectorHandle&& o) noexcept {
  if (this != &o) {
    remove();
    reg_ = o.reg_;
    id_ = o.id_;
    o.reg_ = nullptr;
  }
  return *this;
}

CollectorHandle::~CollectorHandle() { remove(); }

void CollectorHandle::remove() noexcept {
  if (reg_) {
    reg_->remove_collector(id_);
    reg_ = nullptr;
  }
}

// ---------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------

const Metric* Snapshot::find(const std::string& name) const {
  for (const Metric& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

namespace {

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Metric name with any trailing {label} block stripped — what the
/// Prometheus "# TYPE" line and the _sum/_count suffixes key on.
std::string base_name(const std::string& name) {
  const auto brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

/// The trailing {label} block including braces, or "".
std::string label_block(const std::string& name) {
  const auto brace = name.find('{');
  return brace == std::string::npos ? "" : name.substr(brace);
}

/// Counter family name as exposed: the _total suffix sits before the
/// label block, and bases that already end in _total keep one suffix
/// (so "disk_array_reads{disk=...}" and "disk_array_reads_total" land
/// in the same exposed family).
std::string counter_family(const std::string& base) {
  return base.ends_with("_total") ? base : base + "_total";
}

/// A label block with one more label spliced in before the closing
/// brace; used to merge quantile="..." into labeled histogram series.
std::string with_label(const std::string& labels, const std::string& kv) {
  if (labels.empty()) return "{" + kv + "}";
  return labels.substr(0, labels.size() - 1) + "," + kv + "}";
}

std::mutex& help_mu() {
  static std::mutex mu;
  return mu;
}

std::unordered_map<std::string, std::string>& help_map() {
  static std::unordered_map<std::string, std::string> m;
  return m;
}

/// HELP text: registered under the caller's base or the exposed family
/// name, else the family with underscores spaced out (never empty, so
/// the exposition grammar always sees a HELP line per family).
std::string help_for(const std::string& raw_base, const std::string& family) {
  {
    std::lock_guard lk(help_mu());
    auto& m = help_map();
    if (auto it = m.find(raw_base); it != m.end()) return it->second;
    if (auto it = m.find(family); it != m.end()) return it->second;
  }
  std::string out = family;
  for (char& c : out) {
    if (c == '_') c = ' ';
  }
  return out;
}

}  // namespace

void set_metric_help(const std::string& base, const std::string& help) {
  std::lock_guard lk(help_mu());
  help_map()[base] = help;
}

/// JSON string escaping: label blocks embed quotes (disk="0"), and a
/// hostile name must not be able to break the document.
std::string detail::json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_json(const Snapshot& snap) {
  std::ostringstream out;
  out << "{\n  \"metrics\": {\n";
  for (std::size_t i = 0; i < snap.metrics.size(); ++i) {
    const Metric& m = snap.metrics[i];
    out << "    \"" << detail::json_escape(m.name) << "\": ";
    switch (m.kind) {
      case MetricKind::kCounter:
        out << m.counter;
        break;
      case MetricKind::kGauge:
        out << m.gauge;
        break;
      case MetricKind::kHistogram: {
        out << "{\"count\": " << m.hist.count << ", \"sum\": " << m.hist.sum
            << ", \"max\": " << m.hist.max
            << ", \"p50\": " << fmt_double(m.hist.p50)
            << ", \"p95\": " << fmt_double(m.hist.p95)
            << ", \"p99\": " << fmt_double(m.hist.p99) << ", \"buckets\": [";
        for (std::size_t b = 0; b < m.hist.buckets.size(); ++b) {
          out << (b ? ", " : "") << "[" << m.hist.buckets[b].first << ", "
              << m.hist.buckets[b].second << "]";
        }
        out << "]}";
        break;
      }
    }
    out << (i + 1 < snap.metrics.size() ? "," : "") << "\n";
  }
  out << "  }\n}\n";
  return out.str();
}

std::string to_prometheus(const Snapshot& snap) {
  std::ostringstream out;
  std::string last_family;
  for (const Metric& m : snap.metrics) {
    const std::string base = base_name(m.name);
    const std::string labels = label_block(m.name);
    const std::string family =
        m.kind == MetricKind::kCounter ? counter_family(base) : base;
    if (family != last_family) {
      // The snapshot is name-sorted and '_' < '{', so every series of
      // a family (suffixed or labeled) is adjacent: one HELP/TYPE pair
      // heads each family.
      const char* type = m.kind == MetricKind::kCounter   ? "counter"
                         : m.kind == MetricKind::kGauge   ? "gauge"
                                                          : "summary";
      out << "# HELP " << family << " " << help_for(base, family) << "\n"
          << "# TYPE " << family << " " << type << "\n";
      last_family = family;
    }
    switch (m.kind) {
      case MetricKind::kCounter:
        out << family << labels << " " << m.counter << "\n";
        break;
      case MetricKind::kGauge:
        out << m.name << " " << m.gauge << "\n";
        break;
      case MetricKind::kHistogram:
        // Summary exposition; the quantile label merges into any
        // caller-supplied label block.
        out << base << with_label(labels, "quantile=\"0.5\"") << " "
            << fmt_double(m.hist.p50) << "\n"
            << base << with_label(labels, "quantile=\"0.95\"") << " "
            << fmt_double(m.hist.p95) << "\n"
            << base << with_label(labels, "quantile=\"0.99\"") << " "
            << fmt_double(m.hist.p99) << "\n"
            << base << "_sum" << labels << " " << m.hist.sum << "\n"
            << base << "_count" << labels << " " << m.hist.count << "\n"
            << base << "_max" << labels << " " << m.hist.max << "\n";
        break;
    }
  }
  return out.str();
}

}  // namespace c56::obs
