#include "obs/reqtrace.hpp"

#include <algorithm>
#include <mutex>
#include <sstream>

#include "util/env.hpp"

namespace c56::obs {

void set_req_trace_enabled(bool on) noexcept {
  detail::g_req_trace_enabled.store(on, std::memory_order_relaxed);
}

void arm_req_trace_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    if (const auto v = util::env_int("C56_REQ_TRACE", 0, 1); v && *v == 1) {
      set_req_trace_enabled(true);
    }
  });
}

const char* stage_name(int stage) noexcept {
  static constexpr const char* kNames[kStageCount] = {
      "queue_wait", "sched_wait", "batch_assembly",
      "planner",    "device",     "complete"};
  if (stage < 0 || stage >= kStageCount) return "?";
  return kNames[stage];
}

namespace {
thread_local std::uint64_t t_device_ns = 0;
}  // namespace

std::uint64_t device_accum_ns() noexcept { return t_device_ns; }

DeviceSpan::~DeviceSpan() {
  if (start_ns_ < 0) return;
  const std::int64_t end_ns =
      std::chrono::steady_clock::now().time_since_epoch().count();
  if (end_ns > start_ns_) {
    t_device_ns += static_cast<std::uint64_t>(end_ns - start_ns_);
  }
}

const char* req_op_name(int op) noexcept {
  switch (op) {
    case 0: return "read";
    case 1: return "write";
    case 2: return "read_range";
    case 3: return "write_range";
    default: return "?";
  }
}

SlowRequestRing::SlowRequestRing(std::size_t capacity)
    : cap_(std::max<std::size_t>(capacity, 1)) {
  heap_.reserve(cap_);
}

SlowRequestRing& SlowRequestRing::global() {
  static SlowRequestRing* ring = [] {
    std::size_t n = SlowRequestRing::kDefaultCapacity;
    if (const auto v = util::env_int("C56_SLOW_N", 1, 1024)) {
      n = static_cast<std::size_t>(*v);
    }
    return new SlowRequestRing(n);
  }();
  return *ring;
}

void SlowRequestRing::offer(const SlowRequest& r) {
  considered_.fetch_add(1, std::memory_order_relaxed);
  // Lock-free reject for the common case: the heap is full and this
  // request is no slower than the slowest-N floor.
  if (r.latency_us <= floor_.load(std::memory_order_relaxed)) return;

  const auto slower = [](const SlowRequest& a, const SlowRequest& b) {
    return a.latency_us > b.latency_us;  // min-heap on latency
  };
  std::lock_guard<std::mutex> lk(mu_);
  if (heap_.size() < cap_) {
    heap_.push_back(r);
    std::push_heap(heap_.begin(), heap_.end(), slower);
  } else {
    if (r.latency_us <= heap_.front().latency_us) return;  // raced floor
    std::pop_heap(heap_.begin(), heap_.end(), slower);
    heap_.back() = r;
    std::push_heap(heap_.begin(), heap_.end(), slower);
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  if (heap_.size() == cap_) {
    floor_.store(heap_.front().latency_us, std::memory_order_relaxed);
  }
}

std::vector<SlowRequest> SlowRequestRing::snapshot() const {
  std::vector<SlowRequest> out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    out = heap_;
  }
  std::sort(out.begin(), out.end(),
            [](const SlowRequest& a, const SlowRequest& b) {
              return a.latency_us > b.latency_us;
            });
  return out;
}

void SlowRequestRing::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  heap_.clear();
  floor_.store(0, std::memory_order_relaxed);
  considered_.store(0, std::memory_order_relaxed);
  admitted_.store(0, std::memory_order_relaxed);
}

std::string SlowRequestRing::to_json() const {
  const std::vector<SlowRequest> reqs = snapshot();
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const SlowRequest& r = reqs[i];
    if (i) out << ",";
    out << "\n  {\"trace\": " << r.trace_id << ", \"tenant\": " << r.tenant
        << ", \"volume\": " << r.volume << ", \"op\": \""
        << req_op_name(r.op) << "\", \"result\": " << r.result
        << ", \"logical\": " << r.logical << ", \"bytes\": " << r.bytes
        << ", \"t_submit_us\": " << r.t_submit_us
        << ", \"latency_us\": " << r.latency_us << ", \"stages_us\": {";
    for (int s = 0; s < kStageCount; ++s) {
      if (s) out << ", ";
      out << "\"" << stage_name(s) << "\": " << r.stage_us[s];
    }
    out << "}}";
  }
  if (!reqs.empty()) out << "\n";
  out << "]";
  return out.str();
}

}  // namespace c56::obs
