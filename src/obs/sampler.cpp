#include "obs/sampler.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "util/env.hpp"

namespace c56::obs {

namespace {

constexpr std::int64_t kMinIntervalMs = 1;
constexpr std::int64_t kMaxIntervalMs = 60000;

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// One compact time-series line per tick.
std::string sample_to_jsonl(const MetricsSample& s) {
  std::ostringstream out;
  out << "{\"t_us\": " << s.t_us << ", \"metrics\": {";
  for (std::size_t i = 0; i < s.snap.metrics.size(); ++i) {
    const Metric& m = s.snap.metrics[i];
    out << (i ? ", " : "") << "\"" << detail::json_escape(m.name) << "\": ";
    switch (m.kind) {
      case MetricKind::kCounter: out << m.counter; break;
      case MetricKind::kGauge: out << m.gauge; break;
      case MetricKind::kHistogram:
        out << "{\"count\": " << m.hist.count << ", \"sum\": " << m.hist.sum
            << ", \"max\": " << m.hist.max
            << ", \"p50\": " << fmt_double(m.hist.p50)
            << ", \"p95\": " << fmt_double(m.hist.p95)
            << ", \"p99\": " << fmt_double(m.hist.p99) << "}";
        break;
    }
  }
  out << "}}";
  return out.str();
}

}  // namespace

MetricsSampler::MetricsSampler(Registry& reg) : reg_(reg) {
  if (const auto v =
          util::env_int("C56_SAMPLE_MS", kMinIntervalMs, kMaxIntervalMs)) {
    interval_ms_ = *v;
  }
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

MetricsSampler::~MetricsSampler() {
  stop();
  std::lock_guard lk(mu_);
  if (sink_) std::fclose(sink_);
}

void MetricsSampler::set_interval_ms(std::int64_t ms) {
  std::lock_guard lk(mu_);
  if (thread_active_) return;
  interval_ms_ = std::clamp(ms, kMinIntervalMs, kMaxIntervalMs);
}

void MetricsSampler::set_capacity(std::size_t n) {
  std::lock_guard lk(mu_);
  if (thread_active_ || n == 0) return;
  capacity_ = n;
  if (ring_.size() > capacity_) {
    // Keep the newest samples, restore oldest-first ring order.
    std::rotate(ring_.begin(), ring_.begin() + static_cast<long>(next_),
                ring_.end());
    ring_.erase(ring_.begin(),
                ring_.end() - static_cast<long>(capacity_));
    next_ = 0;
  }
}

bool MetricsSampler::set_jsonl_path(const std::string& path) {
  std::lock_guard lk(mu_);
  if (sink_) {
    std::fclose(sink_);
    sink_ = nullptr;
  }
  sink_path_.clear();
  sink_bytes_ = 0;
  if (path.empty()) return true;
  sink_ = std::fopen(path.c_str(), "w");
  if (sink_) sink_path_ = path;
  return sink_ != nullptr;
}

void MetricsSampler::set_jsonl_max_bytes(std::uint64_t n) {
  std::lock_guard lk(mu_);
  sink_max_bytes_ = n;
}

void MetricsSampler::add_probe(std::function<void()> probe) {
  std::lock_guard lk(mu_);
  if (thread_active_) return;
  probes_.push_back(std::move(probe));
}

void MetricsSampler::start() {
  std::lock_guard lk(mu_);
  if (thread_active_) return;
  stop_requested_ = false;
  thread_ = std::thread([this] { run(); });
  thread_active_ = true;
}

void MetricsSampler::stop() {
  std::thread t;
  {
    std::lock_guard lk(mu_);
    if (!thread_active_) return;
    stop_requested_ = true;
    t = std::move(thread_);
    thread_active_ = false;
  }
  cv_.notify_all();
  t.join();
}

bool MetricsSampler::running() const {
  std::lock_guard lk(mu_);
  return thread_active_;
}

void MetricsSampler::sample_once() { tick(); }

void MetricsSampler::run() {
  for (;;) {
    tick();
    std::unique_lock lk(mu_);
    const auto interval = std::chrono::milliseconds(interval_ms_);
    if (cv_.wait_for(lk, interval, [this] { return stop_requested_; })) {
      return;
    }
  }
}

void MetricsSampler::tick() {
  // Probes and the registry snapshot run outside mu_: probes take
  // subsystem locks (monitor -> migrator) and must not see the
  // sampler's own lock held around them.
  std::vector<std::function<void()>> probes;
  {
    std::lock_guard lk(mu_);
    probes = probes_;
  }
  for (const auto& p : probes) p();
  MetricsSample s;
  s.snap = reg_.snapshot();
  s.t_us = now_us();
  std::lock_guard lk(mu_);
  if (sink_) {
    const std::string line = sample_to_jsonl(s);
    std::fprintf(sink_, "%s\n", line.c_str());
    std::fflush(sink_);
    sink_bytes_ += line.size() + 1;
    if (sink_max_bytes_ != 0 && sink_bytes_ >= sink_max_bytes_ &&
        !sink_path_.empty()) {
      // Roll the sink: keep exactly one previous generation so an
      // unattended --series run is bounded at ~2x the cap.
      std::fclose(sink_);
      const std::string prev = sink_path_ + ".1";
      std::remove(prev.c_str());
      std::rename(sink_path_.c_str(), prev.c_str());
      sink_ = std::fopen(sink_path_.c_str(), "w");
      sink_bytes_ = 0;
      ++sink_rotations_;
    }
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(s));
  } else {
    ring_[next_] = std::move(s);
    ++overwritten_;
  }
  next_ = (next_ + 1) % capacity_;
  ++ticks_;
}

std::int64_t MetricsSampler::interval_ms() const {
  std::lock_guard lk(mu_);
  return interval_ms_;
}

std::vector<MetricsSample> MetricsSampler::samples() const {
  std::lock_guard lk(mu_);
  std::vector<MetricsSample> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

std::uint64_t MetricsSampler::ticks() const {
  std::lock_guard lk(mu_);
  return ticks_;
}

std::uint64_t MetricsSampler::overwritten() const {
  std::lock_guard lk(mu_);
  return overwritten_;
}

std::uint64_t MetricsSampler::jsonl_rotations() const {
  std::lock_guard lk(mu_);
  return sink_rotations_;
}

std::uint64_t MetricsSampler::jsonl_bytes() const {
  std::lock_guard lk(mu_);
  return sink_bytes_;
}

}  // namespace c56::obs
