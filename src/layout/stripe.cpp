#include "layout/stripe.hpp"

// StripeView is header-only; this translation unit anchors the library.
