#pragma once
// StripeView: a non-owning rows x cols matrix of fixed-size blocks over a
// contiguous byte range. All encode/decode routines operate on views so
// callers choose the storage (a Buffer, a slice of a simulated disk
// array, ...).

#include <cassert>
#include <cstdint>
#include <span>

#include "layout/geometry.hpp"
#include "xorblk/buffer.hpp"

namespace c56 {

class StripeView {
 public:
  StripeView(std::span<std::uint8_t> bytes, int rows, int cols,
             std::size_t block_size) noexcept
      : bytes_(bytes), rows_(rows), cols_(cols), block_size_(block_size) {
    assert(bytes.size() ==
           static_cast<std::size_t>(rows) * cols * block_size);
  }

  /// View over a whole Buffer (must match rows*cols*block_size exactly).
  static StripeView over(Buffer& buf, int rows, int cols,
                         std::size_t block_size) noexcept {
    return {buf.span(), rows, cols, block_size};
  }

  int rows() const noexcept { return rows_; }
  int cols() const noexcept { return cols_; }
  std::size_t block_size() const noexcept { return block_size_; }

  std::span<std::uint8_t> block(Cell c) const noexcept {
    assert(c.row >= 0 && c.row < rows_ && c.col >= 0 && c.col < cols_);
    return bytes_.subspan(
        static_cast<std::size_t>(flat_index(c, cols_)) * block_size_,
        block_size_);
  }

  std::span<std::uint8_t> block(int flat) const noexcept {
    return block(cell_of_index(flat, cols_));
  }

 private:
  std::span<std::uint8_t> bytes_;
  int rows_, cols_;
  std::size_t block_size_;
};

}  // namespace c56
