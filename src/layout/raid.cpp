#include "layout/raid.hpp"

#include <cassert>

#include "util/prime.hpp"

namespace c56 {

const char* to_string(Raid5Flavor f) noexcept {
  switch (f) {
    case Raid5Flavor::kLeftAsymmetric: return "left-asymmetric";
    case Raid5Flavor::kLeftSymmetric: return "left-symmetric";
    case Raid5Flavor::kRightAsymmetric: return "right-asymmetric";
    case Raid5Flavor::kRightSymmetric: return "right-symmetric";
  }
  return "?";
}

int raid5_parity_disk(Raid5Flavor f, int row, int m) noexcept {
  assert(m >= 2 && row >= 0);
  switch (f) {
    case Raid5Flavor::kLeftAsymmetric:
    case Raid5Flavor::kLeftSymmetric:
      return pmod(m - 1 - row, m);
    case Raid5Flavor::kRightAsymmetric:
    case Raid5Flavor::kRightSymmetric:
      return pmod(row, m);
  }
  return 0;
}

int raid5_data_disk(Raid5Flavor f, int row, int k, int m) noexcept {
  assert(k >= 0 && k < m - 1);
  const int p = raid5_parity_disk(f, row, m);
  switch (f) {
    case Raid5Flavor::kLeftAsymmetric:
    case Raid5Flavor::kRightAsymmetric:
      // Data fills disks left to right, skipping the parity disk.
      return k < p ? k : k + 1;
    case Raid5Flavor::kLeftSymmetric:
    case Raid5Flavor::kRightSymmetric:
      // Data starts just after the parity disk and wraps.
      return pmod(p + 1 + k, m);
  }
  return 0;
}

int raid0_data_disk(int row, int k, int m) noexcept {
  (void)row;
  assert(k >= 0 && k < m);
  return k;
}

int raid4_parity_disk(int m) noexcept { return m - 1; }

}  // namespace c56
