#pragma once
// Cell addressing shared by every array code. A stripe is a rows x cols
// matrix of equally sized blocks; cell (r, c) lives on disk c. The flat
// numbering r * cols + c is the index space used by parity chains and by
// the generic solver.

#include <compare>

namespace c56 {

struct Cell {
  int row = 0;
  int col = 0;
  friend auto operator<=>(const Cell&, const Cell&) = default;
};

enum class CellKind {
  kData,
  kRowParity,       // horizontal parity (Eq. 1 of the paper)
  kDiagParity,      // diagonal parity (Eq. 2)
  kAntiDiagParity,  // anti-diagonal parity (X-Code, H-Code, HDP)
  kVirtual,         // virtual element of Section IV-B2: logically zero,
                    // not physically stored
};

constexpr bool is_parity(CellKind k) noexcept {
  return k == CellKind::kRowParity || k == CellKind::kDiagParity ||
         k == CellKind::kAntiDiagParity;
}

constexpr int flat_index(Cell c, int cols) noexcept {
  return c.row * cols + c.col;
}

constexpr Cell cell_of_index(int idx, int cols) noexcept {
  return {idx / cols, idx % cols};
}

}  // namespace c56
