#pragma once
// Classic RAID layouts used as conversion sources and intermediates.
//
// A RAID-5 of m disks stores, for each stripe row, m-1 data blocks plus
// one parity block whose disk rotates with the stripe row according to
// the flavor. The paper's default source is left-asymmetric (footnote 1);
// H-Code's best conversion source is right-asymmetric (Section V-A).

#include <cstdint>

namespace c56 {

enum class Raid5Flavor {
  kLeftAsymmetric,   // parity walks right-to-left; data laid out l-to-r
  kLeftSymmetric,    // same parity walk; data continues past the parity
  kRightAsymmetric,  // parity walks left-to-right
  kRightSymmetric,
};

const char* to_string(Raid5Flavor f) noexcept;

/// Disk index holding the parity of stripe row `row` in an m-disk RAID-5.
int raid5_parity_disk(Raid5Flavor f, int row, int m) noexcept;

/// Disk index of the k-th data block (k in [0, m-2]) of stripe row `row`.
int raid5_data_disk(Raid5Flavor f, int row, int k, int m) noexcept;

/// Disk index of the k-th data block of stripe row `row` in an m-disk
/// RAID-0 (trivial striping, no parity).
int raid0_data_disk(int row, int k, int m) noexcept;

/// RAID-4: dedicated parity on the last disk.
int raid4_parity_disk(int m) noexcept;

}  // namespace c56
