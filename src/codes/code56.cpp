#include "codes/code56.hpp"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>

#include "codes/peeling.hpp"
#include "util/prime.hpp"
#include "xorblk/xor.hpp"

namespace c56 {

Code56::Code56(int p, int virtual_disks, Code56Orientation o)
    : p_(p), v_(virtual_disks), orient_(o) {
  if (!is_prime(p)) throw std::invalid_argument("Code56: p must be prime");
  if (v_ < 0 || v_ > p - 3) {
    throw std::invalid_argument("Code56: virtual disk count out of range");
  }
  if (v_ > 0 && orient_ != Code56Orientation::kLeft) {
    throw std::invalid_argument(
        "Code56: virtual disks defined for the left orientation only");
  }
}

Code56 Code56::for_raid5(int m) {
  if (m < 2) throw std::invalid_argument("Code56: RAID-5 needs >= 2 disks");
  const int p = next_prime_above(m);
  return Code56(p, p - m - 1);
}

std::string Code56::name() const {
  std::string n = "Code5-6(p=" + std::to_string(p_);
  if (v_ > 0) n += ",v=" + std::to_string(v_);
  if (orient_ == Code56Orientation::kRight) n += ",right";
  return n + ")";
}

bool Code56::virtual_col_sq(int j) const {
  // Virtual disks are prepended as the leading columns (Fig. 8).
  return j < v_;
}

CellKind Code56::kind(Cell c) const {
  assert(c.row >= 0 && c.row < rows() && c.col >= 0 && c.col < cols());
  if (c.col == p_ - 1) return CellKind::kDiagParity;
  if (virtual_col_sq(c.col) || virtual_row(c.row)) return CellKind::kVirtual;
  // Horizontal parity sits on the anti-diagonal of the leading square
  // (mirrored to the main diagonal in the right orientation).
  if (c.col == mcol(p_ - 2 - c.row)) return CellKind::kRowParity;
  return CellKind::kData;
}

std::vector<ParityChain> Code56::build_chains() const {
  std::vector<ParityChain> out;
  // Horizontal chains (Eq. 1) for non-virtual rows.
  for (int i = 0; i + v_ <= p_ - 2; ++i) {
    ParityChain ch;
    ch.parity = {i, mcol(p_ - 2 - i)};
    for (int j = 0; j <= p_ - 2; ++j) {
      const int col = mcol(j);
      if (col == ch.parity.col || virtual_col_sq(col)) continue;
      ch.inputs.push_back({i, col});
    }
    out.push_back(std::move(ch));
  }
  // Diagonal chains (Eq. 2): parity row i protects r + j == i-1 (mod p)
  // in square coordinates (before mirroring).
  for (int i = 0; i <= p_ - 2; ++i) {
    ParityChain ch;
    ch.parity = {i, p_ - 1};
    for (int j = 0; j <= p_ - 2; ++j) {
      if (j == i) continue;  // would hit the nonexistent row p-1
      const int r = pmod(i - 1 - j, p_);
      assert(r <= p_ - 2);
      const Cell in{r, mcol(j)};
      if (kind(in) == CellKind::kVirtual) continue;
      assert(kind(in) == CellKind::kData);
      ch.inputs.push_back(in);
    }
    out.push_back(std::move(ch));
  }
  return out;
}

int Code56::physical_cells_per_stripe() const {
  return cell_count() - virtual_cell_count();
}

double Code56::storage_efficiency() const {
  return static_cast<double>(data_cell_count()) / physical_cells_per_stripe();
}

double Code56::ideal_raid6_efficiency() const {
  const int n = (p_ - 1 - v_) + 1;  // m physical RAID-5 disks + 1 added
  return static_cast<double>(n - 2) / n;
}

bool Code56::matches_raid5_flavor(Raid5Flavor f) const {
  const int m = p_ - 1 - v_;
  for (int row = 0; row < rows() - v_; ++row) {
    // RAID-5 disk k corresponds to square column v_ + k.
    const int parity_col = v_ + raid5_parity_disk(f, row, m);
    if (kind({row, parity_col}) != CellKind::kRowParity) return false;
  }
  return true;
}

namespace {

struct RecoveryOption {
  std::vector<int> sources;  // surviving flat cells XORed to restore it
};

}  // namespace

DecodeStats Code56::recover_single_column_hybrid(StripeView s, int col) const {
  assert(col >= 0 && col <= p_ - 2 && "hybrid recovery targets a square column");
  // Collect, per lost cell, its candidate chains (1 for the horizontal
  // parity cell, 2 for data cells).
  std::vector<int> lost;
  std::vector<std::vector<RecoveryOption>> options;
  const auto& specs = chain_specs();
  for (int r = 0; r < rows(); ++r) {
    const Cell c{r, col};
    if (kind(c) == CellKind::kVirtual) {
      std::ranges::fill(s.block(c), std::uint8_t{0});
      continue;
    }
    const int flat = flat_index(c, cols());
    std::vector<RecoveryOption> opts;
    for (const ChainSpec& spec : specs) {
      if (std::ranges::find(spec.cells, flat) == spec.cells.end()) continue;
      RecoveryOption o;
      for (int cell : spec.cells) {
        if (cell != flat) o.sources.push_back(cell);
      }
      opts.push_back(std::move(o));
    }
    assert(!opts.empty());
    lost.push_back(flat);
    options.push_back(std::move(opts));
  }

  const std::size_t k = lost.size();
  auto union_size = [&](const std::vector<int>& choice) {
    std::set<int> u;
    for (std::size_t i = 0; i < k; ++i) {
      const auto& src = options[i][static_cast<std::size_t>(choice[i])].sources;
      u.insert(src.begin(), src.end());
    }
    return u.size();
  };

  std::vector<int> best(k, 0);
  std::size_t best_reads = union_size(best);
  auto consider = [&](const std::vector<int>& choice) {
    const std::size_t reads = union_size(choice);
    if (reads < best_reads) {
      best_reads = reads;
      best = choice;
    }
  };

  if (k > 0 && p_ <= 13) {
    // Exhaustive search over per-cell chain choices (<= 2^(p-2) states).
    std::vector<int> choice(k, 0);
    while (true) {
      consider(choice);
      std::size_t i = 0;
      while (i < k) {
        if (++choice[i] < static_cast<int>(options[i].size())) break;
        choice[i] = 0;
        ++i;
      }
      if (i == k) break;
    }
  } else {
    // Balanced prefix splits: first t data cells (by row) via their
    // second (diagonal) chain, the rest via the horizontal chain.
    for (std::size_t t = 0; t <= k; ++t) {
      std::vector<int> choice(k, 0);
      std::size_t flipped = 0;
      for (std::size_t i = 0; i < k && flipped < t; ++i) {
        if (options[i].size() > 1) {
          choice[i] = 1;
          ++flipped;
        }
      }
      consider(choice);
    }
  }

  DecodeStats stats;
  stats.cells_read = best_reads;
  std::vector<const std::uint8_t*> srcs;
  for (std::size_t i = 0; i < k; ++i) {
    srcs.clear();
    for (int src : options[i][static_cast<std::size_t>(best[i])].sources) {
      srcs.push_back(s.block(src).data());
      ++stats.xor_ops;
    }
    xor_accumulate(s.block(lost[i]), srcs);
  }
  return stats;
}

DecodeStats Code56::recover_single_column_plain(StripeView s, int col) const {
  assert(col >= 0 && col <= p_ - 2);
  DecodeStats stats;
  std::set<int> reads;
  const auto& all = chains();
  for (int r = 0; r < rows(); ++r) {
    const Cell c{r, col};
    if (kind(c) == CellKind::kVirtual) {
      std::ranges::fill(s.block(c), std::uint8_t{0});
      continue;
    }
    // Use the horizontal chain of row r (every non-virtual cell of a
    // square column belongs to exactly one).
    const ParityChain* row_chain = nullptr;
    for (const ParityChain& ch : all) {
      if (ch.parity.col == p_ - 1) continue;
      if (ch.parity.row == r) {
        row_chain = &ch;
        break;
      }
    }
    assert(row_chain != nullptr);
    std::vector<const std::uint8_t*> srcs;
    auto use = [&](Cell src) {
      if (src == c) return;
      srcs.push_back(s.block(src).data());
      ++stats.xor_ops;
      reads.insert(flat_index(src, cols()));
    };
    if (row_chain->parity != c) use(row_chain->parity);
    for (Cell in : row_chain->inputs) use(in);
    xor_accumulate(s.block(c), srcs);
  }
  stats.cells_read = reads.size();
  return stats;
}

}  // namespace c56
