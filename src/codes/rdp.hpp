#pragma once
// RDP — Row-Diagonal Parity (Corbett et al., FAST'04).
//
// Stripe: (p-1) rows x (p+1) columns, p prime. Columns 0..p-2 hold
// data, column p-1 the row parity, column p the diagonal parity.
// Diagonal d (= parity row index) collects the cells with
// r + j == d (mod p) over columns 0..p-1 — including the row-parity
// column — and diagonal p-1 is left unprotected.

#include "codes/erasure_code.hpp"

namespace c56 {

class Rdp final : public ErasureCode {
 public:
  explicit Rdp(int p);

  std::string name() const override { return "RDP(p=" + std::to_string(p_) + ")"; }
  int p() const override { return p_; }
  int rows() const override { return p_ - 1; }
  int cols() const override { return p_ + 1; }
  CellKind kind(Cell c) const override;

 protected:
  std::vector<ParityChain> build_chains() const override;

 private:
  int p_;
};

}  // namespace c56
