#pragma once
// Factory and metadata for the code zoo. The conversion analysis of
// Section V iterates over {EVENODD, RDP, H-Code, X-Code, P-Code, HDP,
// Code 5-6}; this registry gives it a uniform way to instantiate a code
// by (id, p) and to query structural traits the cost model needs.

#include <memory>
#include <string>
#include <vector>

#include "codes/erasure_code.hpp"

namespace c56 {

enum class CodeId {
  kCode56,
  kRdp,
  kEvenOdd,
  kXCode,
  kPCode,
  kHCode,
  kHdp,
};

const char* to_string(CodeId id) noexcept;

/// All ids, in the order the paper's figures list them.
std::vector<CodeId> all_code_ids();

/// Instantiate code `id` with prime parameter p.
std::unique_ptr<ErasureCode> make_code(CodeId id, int p);

/// Total disks (columns) of code `id` at prime p.
int disks_of(CodeId id, int p);

/// Number of disks the conversion adds on top of the source RAID-5
/// (codes whose stripe has the same column count as the source add 0).
int disks_added_by_conversion(CodeId id);

/// True iff the code has a RAID-5-compatible horizontal parity, i.e.
/// the source RAID-5 parity blocks survive the direct conversion.
bool reuses_raid5_parity(CodeId id);

/// True iff the code is horizontal (row parity on dedicated disks),
/// making the RAID-5 -> RAID-4 -> RAID-6 route applicable.
bool is_horizontal_code(CodeId id);

}  // namespace c56
