#include "codes/erasure_code.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

#include "codes/peeling.hpp"

#include "xorblk/xor.hpp"

namespace c56 {

const std::vector<ParityChain>& ErasureCode::chains() const {
  if (chains_.empty()) {
    chains_ = build_chains();
    assert(!chains_.empty());
  }
  return chains_;
}

int ErasureCode::data_cell_count() const {
  int n = 0;
  for (int r = 0; r < rows(); ++r) {
    for (int c = 0; c < cols(); ++c) {
      if (kind({r, c}) == CellKind::kData) ++n;
    }
  }
  return n;
}

int ErasureCode::parity_cell_count() const {
  int n = 0;
  for (int r = 0; r < rows(); ++r) {
    for (int c = 0; c < cols(); ++c) {
      if (is_parity(kind({r, c}))) ++n;
    }
  }
  return n;
}

int ErasureCode::virtual_cell_count() const {
  int n = 0;
  for (int r = 0; r < rows(); ++r) {
    for (int c = 0; c < cols(); ++c) {
      if (kind({r, c}) == CellKind::kVirtual) ++n;
    }
  }
  return n;
}

void ErasureCode::encode(StripeView s) const {
  assert(s.rows() == rows() && s.cols() == cols());
  for (int r = 0; r < rows(); ++r) {
    for (int c = 0; c < cols(); ++c) {
      if (kind({r, c}) == CellKind::kVirtual) {
        std::ranges::fill(s.block({r, c}), std::uint8_t{0});
      }
    }
  }
  std::vector<const std::uint8_t*> srcs;
  for (const ParityChain& ch : chains()) {
    srcs.clear();
    for (Cell in : ch.inputs) srcs.push_back(s.block(in).data());
    xor_accumulate(s.block(ch.parity), srcs);
  }
}

bool ErasureCode::verify(StripeView s) const {
  Buffer acc(s.block_size());
  for (int r = 0; r < rows(); ++r) {
    for (int c = 0; c < cols(); ++c) {
      if (kind({r, c}) == CellKind::kVirtual && !all_zero(s.block({r, c}))) {
        return false;
      }
    }
  }
  std::vector<const std::uint8_t*> srcs;
  for (const ParityChain& ch : chains()) {
    srcs.clear();
    srcs.push_back(s.block(ch.parity).data());
    for (Cell in : ch.inputs) srcs.push_back(s.block(in).data());
    xor_accumulate(acc.span(), srcs);
    if (!all_zero(acc.span())) return false;
  }
  return true;
}

const std::vector<ChainSpec>& ErasureCode::chain_specs() const {
  if (specs_.empty()) {
    for (const ParityChain& ch : chains()) {
      ChainSpec spec;
      spec.cells.push_back(flat_index(ch.parity, cols()));
      for (Cell in : ch.inputs) spec.cells.push_back(flat_index(in, cols()));
      specs_.push_back(std::move(spec));
    }
  }
  return specs_;
}

std::vector<int> ErasureCode::erased_cells_of_columns(
    std::span<const int> failed_cols) const {
  std::vector<int> erased;
  for (int c : failed_cols) {
    assert(c >= 0 && c < cols());
    for (int r = 0; r < rows(); ++r) {
      if (kind({r, c}) != CellKind::kVirtual) {
        erased.push_back(flat_index({r, c}, cols()));
      }
    }
  }
  return erased;
}

std::optional<std::vector<RecoveryRecipe>> ErasureCode::solve_cells(
    std::span<const int> erased_flat) const {
  return solve_erasures(cell_count(), chain_specs(), erased_flat);
}

DecodeStats ErasureCode::apply_recipes(
    StripeView s, std::span<const RecoveryRecipe> recipes) {
  DecodeStats stats;
  std::set<int> distinct;
  std::vector<const std::uint8_t*> srcs;
  for (const RecoveryRecipe& rec : recipes) {
    srcs.clear();
    for (int src : rec.sources) {
      srcs.push_back(s.block(src).data());
      ++stats.xor_ops;
      distinct.insert(src);
    }
    xor_accumulate(s.block(rec.target), srcs);
  }
  stats.cells_read = distinct.size();
  return stats;
}

std::optional<DecodeStats> ErasureCode::decode_columns(
    StripeView s, std::span<const int> failed_cols) const {
  const std::vector<int> erased = erased_cells_of_columns(failed_cols);
  std::optional<DecodeStats> stats = peel_decode(chain_specs(), s, erased);
  if (!stats) return decode_columns_generic(s, failed_cols);
  for (int c : failed_cols) {
    for (int r = 0; r < rows(); ++r) {
      if (kind({r, c}) == CellKind::kVirtual) {
        std::ranges::fill(s.block({r, c}), std::uint8_t{0});
      }
    }
  }
  return stats;
}

std::optional<DecodeStats> ErasureCode::decode_columns_generic(
    StripeView s, std::span<const int> failed_cols) const {
  const std::vector<int> erased = erased_cells_of_columns(failed_cols);
  auto recipes = solve_cells(erased);
  if (!recipes) return std::nullopt;
  // Recipes reference surviving cells only; erased blocks may hold
  // garbage, so zero virtual cells of failed columns too.
  for (int c : failed_cols) {
    for (int r = 0; r < rows(); ++r) {
      if (kind({r, c}) == CellKind::kVirtual) {
        std::ranges::fill(s.block({r, c}), std::uint8_t{0});
      }
    }
  }
  return apply_recipes(s, *recipes);
}

bool ErasureCode::can_decode_columns(std::span<const int> failed_cols) const {
  return solve_cells(erased_cells_of_columns(failed_cols)).has_value();
}

const std::vector<ParityChain>& ErasureCode::expanded_chains() const {
  if (!expanded_.empty()) return expanded_;
  // Map parity cell -> direct chain index for substitution.
  std::map<int, int> chain_of_parity;
  const auto& ch = chains();
  for (std::size_t i = 0; i < ch.size(); ++i) {
    chain_of_parity[flat_index(ch[i].parity, cols())] = static_cast<int>(i);
  }
  // Chains are in encode order, so expanding in order lets each chain
  // reuse the already expanded form of earlier parities.
  std::vector<std::vector<int>> flat_expanded(ch.size());
  for (std::size_t i = 0; i < ch.size(); ++i) {
    std::map<int, int> parity_count;  // data cell -> multiplicity
    auto add = [&](int cell) { parity_count[cell] ^= 1; };
    for (Cell in : ch[i].inputs) {
      const int idx = flat_index(in, cols());
      auto it = chain_of_parity.find(idx);
      if (it == chain_of_parity.end()) {
        add(idx);
      } else {
        assert(static_cast<std::size_t>(it->second) < i &&
               "chain references a later parity; encode order broken");
        for (int d : flat_expanded[static_cast<std::size_t>(it->second)]) {
          add(d);
        }
      }
    }
    for (auto [cell, odd] : parity_count) {
      if (odd) flat_expanded[i].push_back(cell);
    }
  }
  expanded_.resize(ch.size());
  for (std::size_t i = 0; i < ch.size(); ++i) {
    expanded_[i].parity = ch[i].parity;
    for (int d : flat_expanded[i]) {
      expanded_[i].inputs.push_back(cell_of_index(d, cols()));
    }
  }
  return expanded_;
}

int ErasureCode::update_complexity(Cell data_cell) const {
  assert(kind(data_cell) == CellKind::kData);
  int n = 0;
  for (const ParityChain& ch : expanded_chains()) {
    if (std::ranges::find(ch.inputs, data_cell) != ch.inputs.end()) ++n;
  }
  return n;
}

}  // namespace c56
