#pragma once
// Common framework for XOR array codes.
//
// A code is fully described by its parity chains: for each parity cell,
// the list of input cells whose XOR produces it. Chains are stored in
// encode order (a chain may list earlier parities among its inputs, as
// RDP's diagonals do with its row parities). From the chains the base
// class derives everything generic: encoding, stripe verification, a
// ground-truth decoder via GF(2) elimination, expanded (data-only)
// chains for update-complexity analysis, and I/O accounting.
//
// Subclasses may override decode_columns() with the specialized
// chain-walking algorithms from the papers; tests cross-check them
// against the generic path.

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "gf2/chain_solver.hpp"
#include "layout/geometry.hpp"
#include "layout/stripe.hpp"

namespace c56 {

struct ParityChain {
  Cell parity;
  std::vector<Cell> inputs;
};

struct DecodeStats {
  std::size_t cells_read = 0;  // distinct surviving cells fetched
  std::size_t xor_ops = 0;     // block XOR operations performed
};

class ErasureCode {
 public:
  virtual ~ErasureCode() = default;

  virtual std::string name() const = 0;
  /// Prime parameter of the construction.
  virtual int p() const = 0;
  virtual int rows() const = 0;
  virtual int cols() const = 0;
  virtual CellKind kind(Cell c) const = 0;

  /// Parity chains in encode order (cached after first call).
  const std::vector<ParityChain>& chains() const;

  int cell_count() const { return rows() * cols(); }
  int data_cell_count() const;
  int parity_cell_count() const;
  int virtual_cell_count() const;

  /// Compute every parity cell of the stripe from its data cells.
  /// Virtual cells are forced to zero first.
  void encode(StripeView s) const;

  /// True iff every parity chain XORs to zero (and virtual cells are 0).
  bool verify(StripeView s) const;

  /// Recover the cells of the failed columns in place. The default
  /// implementation runs the chain-peeling decoder (the shape of every
  /// RDP-family reconstruction algorithm) and falls back to the generic
  /// GF(2) solver for patterns peeling cannot order. Returns nullopt
  /// when the pattern is undecodable, otherwise I/O statistics.
  virtual std::optional<DecodeStats> decode_columns(
      StripeView s, std::span<const int> failed_cols) const;

  /// Force the generic GF(2) elimination path (ground truth; used by
  /// tests and the decoder ablation benchmark).
  std::optional<DecodeStats> decode_columns_generic(
      StripeView s, std::span<const int> failed_cols) const;

  /// Decodability check without touching data.
  bool can_decode_columns(std::span<const int> failed_cols) const;

  /// Recovery recipes for an arbitrary set of erased cells (virtual
  /// cells must not be listed; they are known zero).
  std::optional<std::vector<RecoveryRecipe>> solve_cells(
      std::span<const int> erased_flat) const;

  /// Erased flat cell indices when the given columns fail (virtual
  /// cells excluded — nothing physical is lost there).
  std::vector<int> erased_cells_of_columns(
      std::span<const int> failed_cols) const;

  /// Chains rewritten so every input is a data cell (parities
  /// substituted recursively). Index-aligned with chains().
  const std::vector<ParityChain>& expanded_chains() const;

  /// Number of parity cells whose value depends on the given data cell;
  /// the paper's "single write performance" metric (optimal = 2).
  int update_complexity(Cell data_cell) const;

  /// Apply recipes to a stripe (zero targets, then XOR sources).
  static DecodeStats apply_recipes(StripeView s,
                                   std::span<const RecoveryRecipe> recipes);

  /// Chain specs in the flat index space for the solver / peeler.
  const std::vector<ChainSpec>& chain_specs() const;

 protected:
  virtual std::vector<ParityChain> build_chains() const = 0;

 private:
  mutable std::vector<ParityChain> chains_;
  mutable std::vector<ParityChain> expanded_;
  mutable std::vector<ChainSpec> specs_;
};

}  // namespace c56
