#pragma once
// EVENODD (Blaum, Brady, Bruck, Menon — IEEE ToC 1995).
//
// Stripe: (p-1) rows x (p+2) columns. Columns 0..p-1 hold data, column
// p the row parity, column p+1 the diagonal parity. Diagonal parity i
// equals S xor (cells of diagonal r + j == i (mod p)), where the
// adjuster S is the XOR of the cells on diagonal p-1. In the chain
// representation the S cells are simply appended to every diagonal
// chain (a pure-XOR relation, so the generic machinery applies
// unchanged).

#include "codes/erasure_code.hpp"

namespace c56 {

class EvenOdd final : public ErasureCode {
 public:
  explicit EvenOdd(int p);

  std::string name() const override {
    return "EVENODD(p=" + std::to_string(p_) + ")";
  }
  int p() const override { return p_; }
  int rows() const override { return p_ - 1; }
  int cols() const override { return p_ + 2; }
  CellKind kind(Cell c) const override;

  /// Specialized decode for the two-data-column case: recompute the
  /// adjuster S from the surviving parity columns, strip it from the
  /// diagonal parities, then peel the pure row/diagonal system — the
  /// classical EVENODD reconstruction. Other patterns use the generic
  /// solver.
  std::optional<DecodeStats> decode_columns(
      StripeView s, std::span<const int> failed_cols) const override;

 protected:
  std::vector<ParityChain> build_chains() const override;

 private:
  std::vector<Cell> s_cells() const;  // the adjuster diagonal p-1

  int p_;
};

}  // namespace c56
