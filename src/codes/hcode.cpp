#include "codes/hcode.hpp"

#include <cassert>
#include <stdexcept>

#include "util/prime.hpp"

namespace c56 {

HCode::HCode(int p) : p_(p) {
  if (!is_prime(p) || p < 5) {
    throw std::invalid_argument("H-Code: p must be a prime >= 5");
  }
}

CellKind HCode::kind(Cell c) const {
  assert(c.row >= 0 && c.row < rows() && c.col >= 0 && c.col < cols());
  if (c.col == p_) return CellKind::kRowParity;
  if (c.col == c.row + 1) return CellKind::kAntiDiagParity;
  return CellKind::kData;
}

std::vector<ParityChain> HCode::build_chains() const {
  std::vector<ParityChain> out;
  // Horizontal chains first (encode order; anti-diagonal chains contain
  // data cells only, but keeping rows first mirrors the paper).
  for (int i = 0; i <= p_ - 2; ++i) {
    ParityChain ch;
    ch.parity = {i, p_};
    for (int j = 0; j <= p_ - 1; ++j) {
      if (j == i + 1) continue;  // the anti-diagonal parity of this row
      ch.inputs.push_back({i, j});
    }
    out.push_back(std::move(ch));
  }
  for (int i = 0; i <= p_ - 2; ++i) {
    ParityChain ch;
    ch.parity = {i, i + 1};
    // Anti-diagonal class j - r == i + 2 (mod p). Classes j - r == 1 are
    // exactly the parity positions themselves, so the p-1 chains cover
    // every data cell exactly once. j == i+1 would land on row p-1.
    for (int j = 0; j <= p_ - 1; ++j) {
      if (j == i + 1) continue;
      const int r = pmod(j - i - 2, p_);
      assert(r <= p_ - 2);
      const Cell in{r, j};
      assert(kind(in) == CellKind::kData);
      ch.inputs.push_back(in);
    }
    out.push_back(std::move(ch));
  }
  return out;
}

}  // namespace c56
