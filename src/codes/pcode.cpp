#include "codes/pcode.hpp"

#include <cassert>
#include <stdexcept>

#include "util/prime.hpp"

namespace c56 {

PCode::PCode(int p) : p_(p) {
  if (!is_prime(p) || p < 5) {
    throw std::invalid_argument("P-Code: p must be a prime >= 5");
  }
}

CellKind PCode::kind(Cell c) const {
  assert(c.row >= 0 && c.row < rows() && c.col >= 0 && c.col < cols());
  // Vertical parity, one per disk, in row 0. It is neither a horizontal
  // nor a plain diagonal parity; we classify it as diagonal for the
  // purposes of conversion accounting (not reusable from RAID-5).
  return c.row == 0 ? CellKind::kDiagParity : CellKind::kData;
}

std::vector<std::pair<int, int>> PCode::column_labels(int label) const {
  // Pairs {a, b} with a + b == 2*label (mod p), a < b, both in [1, p-1].
  std::vector<std::pair<int, int>> out;
  for (int a = 1; a <= p_ - 1; ++a) {
    const int b = pmod(2 * label - a, p_);
    if (b == 0 || b <= a) continue;
    out.push_back({a, b});
  }
  assert(static_cast<int>(out.size()) == (p_ - 3) / 2);
  return out;
}

std::pair<int, int> PCode::label_of(Cell c) const {
  assert(kind(c) == CellKind::kData);
  return column_labels(c.col + 1)[static_cast<std::size_t>(c.row - 1)];
}

std::vector<ParityChain> PCode::build_chains() const {
  std::vector<ParityChain> out;
  for (int label = 1; label <= p_ - 1; ++label) {
    ParityChain ch;
    ch.parity = {0, label - 1};
    // Every data element whose label set contains `label`.
    for (int col_label = 1; col_label <= p_ - 1; ++col_label) {
      const auto labels = column_labels(col_label);
      for (std::size_t k = 0; k < labels.size(); ++k) {
        if (labels[k].first == label || labels[k].second == label) {
          ch.inputs.push_back({static_cast<int>(k) + 1, col_label - 1});
        }
      }
    }
    out.push_back(std::move(ch));
  }
  return out;
}

}  // namespace c56
