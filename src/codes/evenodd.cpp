#include "codes/evenodd.hpp"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>

#include "util/prime.hpp"
#include "xorblk/xor.hpp"

namespace c56 {

EvenOdd::EvenOdd(int p) : p_(p) {
  if (!is_prime(p) || p < 3) {
    throw std::invalid_argument("EVENODD: p must be an odd prime");
  }
}

CellKind EvenOdd::kind(Cell c) const {
  assert(c.row >= 0 && c.row < rows() && c.col >= 0 && c.col < cols());
  if (c.col == p_) return CellKind::kRowParity;
  if (c.col == p_ + 1) return CellKind::kDiagParity;
  return CellKind::kData;
}

std::vector<Cell> EvenOdd::s_cells() const {
  std::vector<Cell> cells;
  for (int j = 1; j <= p_ - 1; ++j) cells.push_back({p_ - 1 - j, j});
  return cells;
}

std::vector<ParityChain> EvenOdd::build_chains() const {
  std::vector<ParityChain> out;
  for (int i = 0; i <= p_ - 2; ++i) {
    ParityChain ch;
    ch.parity = {i, p_};
    for (int j = 0; j <= p_ - 1; ++j) ch.inputs.push_back({i, j});
    out.push_back(std::move(ch));
  }
  const std::vector<Cell> s = s_cells();
  for (int i = 0; i <= p_ - 2; ++i) {
    ParityChain ch;
    ch.parity = {i, p_ + 1};
    for (int j = 0; j <= p_ - 1; ++j) {
      const int r = pmod(i - j, p_);
      if (r == p_ - 1) continue;
      ch.inputs.push_back({r, j});
    }
    ch.inputs.insert(ch.inputs.end(), s.begin(), s.end());
    out.push_back(std::move(ch));
  }
  return out;
}

std::optional<DecodeStats> EvenOdd::decode_columns(
    StripeView s, std::span<const int> failed_cols) const {
  // Specialize the canonical case: exactly two failed data columns.
  std::vector<int> cols_sorted(failed_cols.begin(), failed_cols.end());
  std::sort(cols_sorted.begin(), cols_sorted.end());
  const bool two_data = cols_sorted.size() == 2 && cols_sorted[1] <= p_ - 1;
  if (!two_data) return ErasureCode::decode_columns(s, failed_cols);
  const int f1 = cols_sorted[0];
  const int f2 = cols_sorted[1];

  DecodeStats stats;
  std::set<int> reads;
  const std::size_t bs = s.block_size();

  // Adjuster: S = XOR(row parities) ^ XOR(diagonal parities). (XOR of
  // all row chains gives XOR of all data; XOR of all diagonal chains
  // gives XOR of all data ^ S because p-1 copies of S cancel pairwise.)
  Buffer adjuster(bs);
  for (int i = 0; i <= p_ - 2; ++i) {
    xor_into(adjuster.span(), s.block({i, p_}));
    xor_into(adjuster.span(), s.block({i, p_ + 1}));
    reads.insert(flat_index({i, p_}, cols()));
    reads.insert(flat_index({i, p_ + 1}, cols()));
    stats.xor_ops += 2;
  }

  // Syndromes. row_syn[r] = XOR of the two lost cells of row r;
  // diag_syn[d] = XOR of the lost cells on diagonal d (diagonals are
  // S-adjusted so they become pure XOR relations).
  std::vector<Buffer> row_syn(static_cast<std::size_t>(p_ - 1));
  std::vector<Buffer> diag_syn(static_cast<std::size_t>(p_ - 1));
  for (int r = 0; r <= p_ - 2; ++r) {
    row_syn[static_cast<std::size_t>(r)] = Buffer(bs);
    auto dst = row_syn[static_cast<std::size_t>(r)].span();
    xor_into(dst, s.block({r, p_}));
    ++stats.xor_ops;
    for (int j = 0; j <= p_ - 1; ++j) {
      if (j == f1 || j == f2) continue;
      xor_into(dst, s.block({r, j}));
      reads.insert(flat_index({r, j}, cols()));
      ++stats.xor_ops;
    }
  }
  for (int d = 0; d <= p_ - 2; ++d) {
    diag_syn[static_cast<std::size_t>(d)] = Buffer(bs);
    auto dst = diag_syn[static_cast<std::size_t>(d)].span();
    xor_into(dst, s.block({d, p_ + 1}));
    xor_into(dst, adjuster.span());
    stats.xor_ops += 2;
    for (int j = 0; j <= p_ - 1; ++j) {
      const int r = pmod(d - j, p_);
      if (r == p_ - 1 || j == f1 || j == f2) continue;
      xor_into(dst, s.block({r, j}));
      reads.insert(flat_index({r, j}, cols()));
      ++stats.xor_ops;
    }
  }

  // Zigzag, starting from the diagonal that misses column f2 (it has a
  // single lost cell, in column f1), exactly as in the EVENODD paper.
  // Lost cells on the adjuster diagonal p-1 have no diagonal syndrome
  // and are reached via their row partner.
  std::vector<char> recovered(static_cast<std::size_t>(p_ - 1) * 2, 0);
  auto rec_flag = [&](int r, bool second) -> char& {
    return recovered[static_cast<std::size_t>(r) * 2 + (second ? 1 : 0)];
  };
  int remaining = 2 * (p_ - 1);
  auto recover_from_diag = [&](int d, int col) {
    const int r = pmod(d - col, p_);
    assert(r <= p_ - 2);
    auto dst = s.block({r, col});
    std::ranges::copy(diag_syn[static_cast<std::size_t>(d)].span(),
                      dst.begin());
    rec_flag(r, col == f2) = 1;
    --remaining;
    // The partner (same row, other column) is now row-recoverable.
    const int other = col == f1 ? f2 : f1;
    assert(!rec_flag(r, other == f2) && "recovery chains must be disjoint");
    auto odst = s.block({r, other});
    xor_to(odst.data(), row_syn[static_cast<std::size_t>(r)].data(),
           dst.data(), bs);
    ++stats.xor_ops;
    rec_flag(r, other == f2) = 1;
    --remaining;
    // Fold both into the diagonals passing through them for the next hop.
    for (int c : {col, other}) {
      const int d2 = pmod(r + c, p_);
      if (d2 <= p_ - 2) {
        xor_into(diag_syn[static_cast<std::size_t>(d2)].span(), s.block({r, c}));
        ++stats.xor_ops;
      }
    }
    return r;
  };

  // Walk chain 1: diagonals that miss f2 then alternate; walk chain 2
  // symmetric. A simple worklist formulation covers both chains.
  std::vector<std::pair<int, int>> work;  // (diagonal, lost column)
  // When f1 == 0 the diagonal missing column f1 is the adjuster
  // diagonal p-1, which has no parity: the traversal is then a single
  // chain started from the other end.
  if (const int d = pmod(f2 - 1, p_); d <= p_ - 2) work.push_back({d, f1});
  if (const int d = pmod(f1 - 1, p_); d <= p_ - 2) work.push_back({d, f2});
  while (!work.empty() && remaining > 0) {
    auto [d, col] = work.back();
    work.pop_back();
    const int r = pmod(d - col, p_);
    if (r == p_ - 1 || rec_flag(r, col == f2)) continue;
    const int row = recover_from_diag(d, col);
    const int other = col == f1 ? f2 : f1;
    // Next hop: the diagonal through (row, other) meets the *other*
    // failed column again further along the chain.
    const int d2 = pmod(row + other, p_);
    if (d2 <= p_ - 2) work.push_back({d2, col});
  }
  if (remaining != 0) return ErasureCode::decode_columns(s, failed_cols);
  stats.cells_read = reads.size();
  return stats;
}

}  // namespace c56
