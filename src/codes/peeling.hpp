#pragma once
// Chain-peeling decoder.
//
// The reconstruction algorithms of the RDP-family papers (Algorithm 1 of
// the Code 5-6 paper, the recovery-chain procedures of RDP and X-Code)
// all share one shape: repeatedly find a parity chain with exactly one
// missing member, recover that member, and continue until every lost
// cell is restored. This file implements that shape once, over the
// generic chain representation, with faithful I/O accounting (distinct
// surviving blocks read, block XORs performed).
//
// Peeling succeeds exactly when the papers' recovery-chain arguments
// apply; for patterns it cannot order (e.g. EVENODD's S-adjusted
// diagonals, or >2 failures) callers fall back to the GF(2) solver.

#include <optional>
#include <span>

#include "codes/erasure_code.hpp"

namespace c56 {

/// Recover the erased cells of `s` in place by chain peeling. Returns
/// nullopt (stripe unmodified except possibly some recovered cells) when
/// peeling stalls before completion.
std::optional<DecodeStats> peel_decode(std::span<const ChainSpec> chains,
                                       StripeView s,
                                       std::span<const int> erased_flat);

}  // namespace c56
