#pragma once
// X-Code (Xu & Bruck — IEEE Trans. Information Theory 1999).
//
// Vertical MDS code over p disks, p prime. Stripe: p rows x p columns;
// rows 0..p-3 hold data, row p-2 holds diagonal parities, row p-1 holds
// anti-diagonal parities:
//   C[p-2][i] = XOR_k C[k][(i + k + 2) mod p],  k in [0, p-3]
//   C[p-1][i] = XOR_k C[k][(i - k - 2) mod p]
// Each parity chain covers the slope +1 / -1 diagonal through its
// column, skipping the two parity rows.

#include "codes/erasure_code.hpp"

namespace c56 {

class XCode final : public ErasureCode {
 public:
  explicit XCode(int p);

  std::string name() const override {
    return "X-Code(p=" + std::to_string(p_) + ")";
  }
  int p() const override { return p_; }
  int rows() const override { return p_; }
  int cols() const override { return p_; }
  CellKind kind(Cell c) const override;

 protected:
  std::vector<ParityChain> build_chains() const override;

 private:
  int p_;
};

}  // namespace c56
