#include "codes/xcode.hpp"

#include <cassert>
#include <stdexcept>

#include "util/prime.hpp"

namespace c56 {

XCode::XCode(int p) : p_(p) {
  if (!is_prime(p) || p < 5) {
    throw std::invalid_argument("X-Code: p must be a prime >= 5");
  }
}

CellKind XCode::kind(Cell c) const {
  assert(c.row >= 0 && c.row < rows() && c.col >= 0 && c.col < cols());
  if (c.row == p_ - 2) return CellKind::kDiagParity;
  if (c.row == p_ - 1) return CellKind::kAntiDiagParity;
  return CellKind::kData;
}

std::vector<ParityChain> XCode::build_chains() const {
  std::vector<ParityChain> out;
  for (int i = 0; i < p_; ++i) {
    ParityChain ch;
    ch.parity = {p_ - 2, i};
    for (int k = 0; k <= p_ - 3; ++k) ch.inputs.push_back({k, pmod(i + k + 2, p_)});
    out.push_back(std::move(ch));
  }
  for (int i = 0; i < p_; ++i) {
    ParityChain ch;
    ch.parity = {p_ - 1, i};
    for (int k = 0; k <= p_ - 3; ++k) ch.inputs.push_back({k, pmod(i - k - 2, p_)});
    out.push_back(std::move(ch));
  }
  return out;
}

}  // namespace c56
