#pragma once
// H-Code (Wu, He, Wu, Wan — IPDPS 2011).
//
// Hybrid MDS code over p+1 disks, p prime. Stripe: (p-1) rows x (p+1)
// columns. Column p holds horizontal parities; the anti-diagonal parity
// of index i sits *inside* the data columns at cell (i, i+1):
//   horizontal:    C[i][p]   = XOR_j C[i][j],          j != i+1
//   anti-diagonal: C[i][i+1] = XOR_j C[<j-i-2> mod p][j], j != i+1
// i.e. parity (i, i+1) protects the diagonal class j - r == i+2 (mod p);
// class j - r == 1 consists exactly of the parity cells themselves, so
// the p-1 chains cover every data cell once (optimal update
// complexity). The dedicated horizontal column is what makes H-Code's
// best conversion source a right-flavored RAID-5 (Section V-A of the
// Code 5-6 paper).

#include "codes/erasure_code.hpp"

namespace c56 {

class HCode final : public ErasureCode {
 public:
  explicit HCode(int p);

  std::string name() const override {
    return "H-Code(p=" + std::to_string(p_) + ")";
  }
  int p() const override { return p_; }
  int rows() const override { return p_ - 1; }
  int cols() const override { return p_ + 1; }
  CellKind kind(Cell c) const override;

 protected:
  std::vector<ParityChain> build_chains() const override;

 private:
  int p_;
};

}  // namespace c56
