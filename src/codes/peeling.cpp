#include "codes/peeling.hpp"

#include <algorithm>
#include <set>
#include <vector>

#include "xorblk/xor.hpp"

namespace c56 {

std::optional<DecodeStats> peel_decode(std::span<const ChainSpec> chains,
                                       StripeView s,
                                       std::span<const int> erased_flat) {
  const int num_cells = s.rows() * s.cols();
  std::vector<char> unknown(static_cast<std::size_t>(num_cells), 0);
  for (int e : erased_flat) unknown[static_cast<std::size_t>(e)] = 1;
  std::size_t remaining = erased_flat.size();
  if (remaining == 0) return DecodeStats{};

  // Incidence: cell -> chains containing it; per-chain unknown count.
  std::vector<std::vector<int>> chains_of_cell(
      static_cast<std::size_t>(num_cells));
  std::vector<int> unknown_count(chains.size(), 0);
  for (std::size_t q = 0; q < chains.size(); ++q) {
    for (int cell : chains[q].cells) {
      chains_of_cell[static_cast<std::size_t>(cell)].push_back(
          static_cast<int>(q));
      if (unknown[static_cast<std::size_t>(cell)]) ++unknown_count[q];
    }
  }

  std::vector<int> ready;
  for (std::size_t q = 0; q < chains.size(); ++q) {
    if (unknown_count[q] == 1) ready.push_back(static_cast<int>(q));
  }

  DecodeStats stats;
  std::set<int> reads;  // distinct surviving cells fetched
  std::vector<char> was_erased(unknown.begin(), unknown.end());
  std::vector<const std::uint8_t*> srcs;

  while (!ready.empty() && remaining > 0) {
    const int q = ready.back();
    ready.pop_back();
    if (unknown_count[static_cast<std::size_t>(q)] != 1) continue;
    int target = -1;
    for (int cell : chains[static_cast<std::size_t>(q)].cells) {
      if (unknown[static_cast<std::size_t>(cell)]) {
        target = cell;
        break;
      }
    }
    srcs.clear();
    for (int cell : chains[static_cast<std::size_t>(q)].cells) {
      if (cell == target) continue;
      srcs.push_back(s.block(cell).data());
      ++stats.xor_ops;
      if (!was_erased[static_cast<std::size_t>(cell)]) reads.insert(cell);
    }
    xor_accumulate(s.block(target), srcs);
    unknown[static_cast<std::size_t>(target)] = 0;
    --remaining;
    for (int q2 : chains_of_cell[static_cast<std::size_t>(target)]) {
      if (--unknown_count[static_cast<std::size_t>(q2)] == 1) {
        ready.push_back(q2);
      }
    }
  }

  if (remaining > 0) return std::nullopt;
  stats.cells_read = reads.size();
  return stats;
}

}  // namespace c56
