#pragma once
// P-Code (Jin, Jiang, Feng, Tian — ICS 2009).
//
// Vertical MDS code over p-1 disks, p prime. Columns carry labels
// 1..p-1. Row 0 of every column holds that column's parity. Each data
// element carries a two-integer label {a, b} (1 <= a < b <= p-1,
// a + b != 0 mod p) and lives in the column whose label c satisfies
// a + b == 2c (mod p); the parity of column c is the XOR of every data
// element whose label contains c. Each column stores (p-3)/2 data
// elements, so a stripe is (p-1)/2 rows x (p-1) columns.

#include "codes/erasure_code.hpp"

namespace c56 {

class PCode final : public ErasureCode {
 public:
  explicit PCode(int p);

  std::string name() const override {
    return "P-Code(p=" + std::to_string(p_) + ")";
  }
  int p() const override { return p_; }
  int rows() const override { return (p_ - 1) / 2; }
  int cols() const override { return p_ - 1; }
  CellKind kind(Cell c) const override;

  /// Label {a, b} of a data cell (row >= 1).
  std::pair<int, int> label_of(Cell c) const;

 protected:
  std::vector<ParityChain> build_chains() const override;

 private:
  /// Data cells of column with label c (sorted by smaller label member).
  std::vector<std::pair<int, int>> column_labels(int label) const;

  int p_;
};

}  // namespace c56
