#pragma once
// HDP — Horizontal-Diagonal Parity code (Wu, Wan, He, Du — DSN 2011).
//
// MDS code over p-1 disks, p prime. Stripe: (p-1) x (p-1). The
// anti-diagonal parity of index i sits at (i, p-2-i) and protects the
// diagonal class r - j == 2i+2 (mod p); the class r - j == 0 is exactly
// the main diagonal, where the horizontal-diagonal parities live, so
// anti-diagonal chains touch data cells only and encode first. The
// horizontal-diagonal parity of row i sits at (i, i) and closes the
// whole row (anti-diagonal parity included). Both parity kinds live
// inside the square — the layout trait that gives HDP its I/O load
// balancing and makes conversion require reserved in-place space.

#include "codes/erasure_code.hpp"

namespace c56 {

class Hdp final : public ErasureCode {
 public:
  explicit Hdp(int p);

  std::string name() const override {
    return "HDP(p=" + std::to_string(p_) + ")";
  }
  int p() const override { return p_; }
  int rows() const override { return p_ - 1; }
  int cols() const override { return p_ - 1; }
  CellKind kind(Cell c) const override;

 protected:
  std::vector<ParityChain> build_chains() const override;

 private:
  int p_;
};

}  // namespace c56
