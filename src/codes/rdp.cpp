#include "codes/rdp.hpp"

#include <cassert>
#include <stdexcept>

#include "util/prime.hpp"

namespace c56 {

Rdp::Rdp(int p) : p_(p) {
  if (!is_prime(p)) throw std::invalid_argument("RDP: p must be prime");
}

CellKind Rdp::kind(Cell c) const {
  assert(c.row >= 0 && c.row < rows() && c.col >= 0 && c.col < cols());
  if (c.col == p_ - 1) return CellKind::kRowParity;
  if (c.col == p_) return CellKind::kDiagParity;
  return CellKind::kData;
}

std::vector<ParityChain> Rdp::build_chains() const {
  std::vector<ParityChain> out;
  for (int i = 0; i <= p_ - 2; ++i) {  // row parity first (encode order)
    ParityChain ch;
    ch.parity = {i, p_ - 1};
    for (int j = 0; j <= p_ - 2; ++j) ch.inputs.push_back({i, j});
    out.push_back(std::move(ch));
  }
  for (int i = 0; i <= p_ - 2; ++i) {  // diagonal d = i
    ParityChain ch;
    ch.parity = {i, p_};
    for (int j = 0; j <= p_ - 1; ++j) {
      const int r = pmod(i - j, p_);
      if (r == p_ - 1) continue;  // diagonal passes outside the stripe
      ch.inputs.push_back({r, j});
    }
    out.push_back(std::move(ch));
  }
  return out;
}

}  // namespace c56
