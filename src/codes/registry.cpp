#include "codes/registry.hpp"

#include <stdexcept>

#include "codes/code56.hpp"
#include "codes/evenodd.hpp"
#include "codes/hcode.hpp"
#include "codes/hdp.hpp"
#include "codes/pcode.hpp"
#include "codes/rdp.hpp"
#include "codes/xcode.hpp"

namespace c56 {

const char* to_string(CodeId id) noexcept {
  switch (id) {
    case CodeId::kCode56: return "Code 5-6";
    case CodeId::kRdp: return "RDP";
    case CodeId::kEvenOdd: return "EVENODD";
    case CodeId::kXCode: return "X-Code";
    case CodeId::kPCode: return "P-Code";
    case CodeId::kHCode: return "H-Code";
    case CodeId::kHdp: return "HDP";
  }
  return "?";
}

std::vector<CodeId> all_code_ids() {
  return {CodeId::kEvenOdd, CodeId::kRdp,   CodeId::kHCode, CodeId::kXCode,
          CodeId::kPCode,   CodeId::kHdp,   CodeId::kCode56};
}

std::unique_ptr<ErasureCode> make_code(CodeId id, int p) {
  switch (id) {
    case CodeId::kCode56: return std::make_unique<Code56>(p);
    case CodeId::kRdp: return std::make_unique<Rdp>(p);
    case CodeId::kEvenOdd: return std::make_unique<EvenOdd>(p);
    case CodeId::kXCode: return std::make_unique<XCode>(p);
    case CodeId::kPCode: return std::make_unique<PCode>(p);
    case CodeId::kHCode: return std::make_unique<HCode>(p);
    case CodeId::kHdp: return std::make_unique<Hdp>(p);
  }
  throw std::invalid_argument("unknown CodeId");
}

int disks_of(CodeId id, int p) {
  switch (id) {
    case CodeId::kCode56: return p;
    case CodeId::kRdp: return p + 1;
    case CodeId::kEvenOdd: return p + 2;
    case CodeId::kXCode: return p;
    case CodeId::kPCode: return p - 1;
    case CodeId::kHCode: return p + 1;
    case CodeId::kHdp: return p - 1;
  }
  throw std::invalid_argument("unknown CodeId");
}

int disks_added_by_conversion(CodeId id) {
  switch (id) {
    case CodeId::kCode56: return 1;  // the dedicated diagonal column
    case CodeId::kRdp:
    case CodeId::kEvenOdd:
    case CodeId::kHCode: return 2;   // row parity disk + diagonal disk
    case CodeId::kXCode:
    case CodeId::kPCode:
    case CodeId::kHdp: return 0;     // vertical: parity in reserved space
  }
  throw std::invalid_argument("unknown CodeId");
}

bool reuses_raid5_parity(CodeId id) {
  // Code 5-6 inherits the RAID-5 parity as its horizontal parity
  // (Section III-A); HDP's horizontal-diagonal parity matches a
  // right-symmetric RAID-5 rotation, so direct conversion keeps it too.
  return id == CodeId::kCode56 || id == CodeId::kHdp;
}

bool is_horizontal_code(CodeId id) {
  return id == CodeId::kRdp || id == CodeId::kEvenOdd ||
         id == CodeId::kHCode;
}

}  // namespace c56
