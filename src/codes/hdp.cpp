#include "codes/hdp.hpp"

#include <cassert>
#include <stdexcept>

#include "util/prime.hpp"

namespace c56 {

Hdp::Hdp(int p) : p_(p) {
  if (!is_prime(p) || p < 5) {
    throw std::invalid_argument("HDP: p must be a prime >= 5");
  }
}

CellKind Hdp::kind(Cell c) const {
  assert(c.row >= 0 && c.row < rows() && c.col >= 0 && c.col < cols());
  if (c.col == c.row) return CellKind::kRowParity;
  if (c.col == p_ - 2 - c.row) return CellKind::kAntiDiagParity;
  return CellKind::kData;
}

std::vector<ParityChain> Hdp::build_chains() const {
  std::vector<ParityChain> out;
  // Anti-diagonal chains first: parity (i, p-2-i) protects the class
  // r - j == 2i+2 (mod p). The class r - j == 0 is exactly the
  // horizontal-diagonal parity cells, so these chains touch data only.
  // (This is the unique MDS assignment for this parity geometry; see
  // tools/hdp_search.cpp.)
  for (int i = 0; i <= p_ - 2; ++i) {
    ParityChain ch;
    ch.parity = {i, p_ - 2 - i};
    const int cls = pmod(2 * i + 2, p_);
    for (int j = 0; j <= p_ - 2; ++j) {
      const int r = pmod(cls + j, p_);
      if (r > p_ - 2) continue;              // outside the stripe
      const Cell in{r, j};
      if (in == ch.parity) continue;
      assert(kind(in) == CellKind::kData);
      ch.inputs.push_back(in);
    }
    out.push_back(std::move(ch));
  }
  // Horizontal-diagonal chains: the full row, anti-diagonal parity
  // included, closes to zero.
  for (int i = 0; i <= p_ - 2; ++i) {
    ParityChain ch;
    ch.parity = {i, i};
    for (int j = 0; j <= p_ - 2; ++j) {
      if (j == i) continue;
      ch.inputs.push_back({i, j});
    }
    out.push_back(std::move(ch));
  }
  return out;
}

}  // namespace c56
