#pragma once
// Code 5-6 (Wu, He, Li, Guo — ICPP 2015), the paper's contribution.
//
// A stripe is a (p-1)-row x p-column matrix, p prime. Column p-1 holds
// diagonal parities; inside the leading (p-1)x(p-1) square, cell
// (i, p-2-i) holds the horizontal parity of row i — exactly where a
// left-asymmetric RAID-5 of p-1 disks already stores its parity, which
// is what makes RAID-5 -> RAID-6 conversion a pure append of one disk.
//
//   Horizontal parity (Eq. 1):  rows of the leading square XOR to zero.
//   Diagonal parity  (Eq. 2):   C[i][p-1] = XOR of C[<i-1-j> mod p][j]
//                               for j in [0, p-2], j != i.
//
// Diagonal-parity row i therefore protects the diagonal
// r + j == i - 1 (mod p); the anti-diagonal r + j == p - 2 — the cells
// holding the horizontal parities — is the single unprotected diagonal.
// (The paper prints the shift constant as "4-p" == -1 mod 5; see
// DESIGN.md section 1 for the reconstruction.)
//
// Extras implemented here:
//  * virtual disks (Section IV-B2) so any RAID-5 size m >= 2 converts:
//    v = p - m - 1 leading columns and the bottom v rows are virtual
//    (logically zero, not stored);
//  * the mirrored layout of Fig. 7 for right-symmetric/asymmetric
//    RAID-5 sources;
//  * Algorithm 1 as a chain-peeling decoder plus the hybrid single-disk
//    recovery of Section III-E(4) that trades horizontal for diagonal
//    chains to minimize distinct reads.

#include <optional>

#include "codes/erasure_code.hpp"
#include "layout/raid.hpp"

namespace c56 {

enum class Code56Orientation {
  kLeft,   // matches left-symmetric/asymmetric RAID-5 (paper default)
  kRight,  // Fig. 7 mirror for right-symmetric/asymmetric RAID-5
};

class Code56 final : public ErasureCode {
 public:
  /// p must be prime; virtual_disks = v in [0, p-3]; the mirrored
  /// orientation is only defined for v = 0 (the paper introduces
  /// virtual disks for the default layout only).
  explicit Code56(int p, int virtual_disks = 0,
                  Code56Orientation o = Code56Orientation::kLeft);

  /// Code 5-6 instance for converting an m-disk RAID-5 (m >= 2):
  /// p = smallest prime > m, v = p - m - 1.
  static Code56 for_raid5(int m);

  std::string name() const override;
  int p() const override { return p_; }
  int rows() const override { return p_ - 1; }
  int cols() const override { return p_; }
  CellKind kind(Cell c) const override;

  int virtual_disks() const { return v_; }
  Code56Orientation orientation() const { return orient_; }

  /// Physical (stored) blocks per stripe: m(m+1) + v, Eq. 6 denominator.
  int physical_cells_per_stripe() const;
  /// Data blocks / physical blocks per stripe (Eq. 6).
  double storage_efficiency() const;
  /// Efficiency of an ideal MDS RAID-6 over the same disk count, used as
  /// the comparison curve in Fig. 18: (n-2)/n with n = m + 1 disks.
  double ideal_raid6_efficiency() const;

  /// The column the RAID-5 parity of stripe row `row` must sit on for
  /// the given flavor to be reusable as this code's horizontal parity.
  /// Returns true iff the flavor matches this orientation.
  bool matches_raid5_flavor(Raid5Flavor f) const;

  /// Hybrid single-disk recovery (Section III-E(4)): recover one failed
  /// data column choosing per-cell between its horizontal and diagonal
  /// chain so that the number of distinct surviving blocks read is
  /// minimized (exhaustive choice search for p <= 13, balanced split
  /// heuristic above). Returns stats; the plain all-horizontal recovery
  /// reads (p-1)(p-2) cells, the hybrid strictly fewer for p >= 5.
  DecodeStats recover_single_column_hybrid(StripeView s, int col) const;

  /// Reads needed by the conventional (all-horizontal) recovery.
  DecodeStats recover_single_column_plain(StripeView s, int col) const;

 protected:
  std::vector<ParityChain> build_chains() const override;

 private:
  /// Mirror a square-column index for the right orientation.
  int mcol(int j) const {
    return orient_ == Code56Orientation::kLeft ? j : p_ - 2 - j;
  }
  bool virtual_row(int r) const { return r >= p_ - 1 - v_; }
  bool virtual_col_sq(int j) const;  // square-column j is virtual

  int p_;
  int v_;
  Code56Orientation orient_;
};

}  // namespace c56
