#include "service/volume.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <stdexcept>
#include <vector>

#include "xorblk/pool.hpp"

namespace c56::svc {

namespace {

const char* status_names[] = {"ok",          "queue_full", "no_such_volume",
                              "invalid_arg", "io_error",   "shutdown"};

/// Physical disks a code occupies: its columns minus the leading
/// all-virtual ones (same rule ArrayController enforces).
int physical_disks(const ErasureCode& code) {
  int virt = 0;
  for (int c = 0; c < code.cols(); ++c) {
    bool all_virtual = true;
    for (int r = 0; r < code.rows(); ++r) {
      if (code.kind({r, c}) != CellKind::kVirtual) {
        all_virtual = false;
        break;
      }
    }
    if (!all_virtual) break;
    ++virt;
  }
  return code.cols() - virt;
}

bool is_write(const QueuedOp& op) {
  return op.req.kind == OpKind::kWrite || op.req.kind == OpKind::kWriteRange;
}

/// True when [lo, hi) intersects any interval in `m` (start -> end).
bool intersects(const std::map<std::int64_t, std::int64_t>& m,
                std::int64_t lo, std::int64_t hi) {
  auto it = m.upper_bound(lo);  // first interval starting after lo
  if (it != m.begin() && std::prev(it)->second > lo) return true;
  return it != m.end() && it->first < hi;
}

void cover(std::map<std::int64_t, std::int64_t>& m, std::int64_t lo,
           std::int64_t hi) {
  auto [it, inserted] = m.try_emplace(lo, hi);
  if (!inserted) it->second = std::max(it->second, hi);
}

}  // namespace

const char* to_string(Status s) noexcept {
  const auto i = static_cast<std::size_t>(s);
  return i < std::size(status_names) ? status_names[i] : "unknown";
}

Volume::Volume(VolumeId id, const Config& cfg) : id_(id), owner_(cfg.owner) {
  auto code = make_code(cfg.code, cfg.p);
  if (cfg.stripes < 1) {
    throw std::invalid_argument("Volume: stripes must be >= 1");
  }
  array_ = std::make_unique<mig::DiskArray>(
      physical_disks(*code), cfg.stripes * code->rows(), cfg.block_bytes);
  ctrl_ = std::make_unique<mig::ArrayController>(*array_, std::move(code));
  if (cfg.cache_stripes != 0) ctrl_->set_cache_stripes(cfg.cache_stripes);
  logical_blocks_ = ctrl_->logical_blocks();
}

Volume::Volume(VolumeId id, int p, std::int64_t groups,
               std::size_t block_bytes, TenantId owner)
    : id_(id), owner_(owner) {
  if (groups < 1) throw std::invalid_argument("Volume: groups must be >= 1");
  array_ = std::make_unique<mig::DiskArray>(
      p - 1, groups * static_cast<std::int64_t>(p - 1), block_bytes);
  mig_ = std::make_unique<mig::OnlineMigrator>(*array_, p);
  logical_blocks_ = mig_->logical_blocks();
}

Status Volume::validate(const Request& r) const noexcept {
  const std::int64_t lb = logical_blocks_;
  const auto bs = static_cast<std::int64_t>(block_bytes());
  switch (r.kind) {
    case OpKind::kRead:
    case OpKind::kWrite: {
      if (r.logical < 0 || r.count < 1 || r.count > lb ||
          r.logical > lb - r.count) {
        return Status::kInvalidArgument;
      }
      const auto need = static_cast<std::uint64_t>(r.count) *
                        static_cast<std::uint64_t>(bs);
      const std::size_t have =
          r.kind == OpKind::kRead ? r.out.size() : r.in.size();
      if (have != need) return Status::kInvalidArgument;
      return Status::kOk;
    }
    case OpKind::kReadRange:
    case OpKind::kWriteRange: {
      if (r.logical < 0 || r.logical >= lb || r.offset < 0) {
        return Status::kInvalidArgument;
      }
      const auto len = static_cast<std::int64_t>(
          r.kind == OpKind::kReadRange ? r.out.size() : r.in.size());
      if (len < 1 || len > bs - r.offset) return Status::kInvalidArgument;
      return Status::kOk;
    }
  }
  return Status::kInvalidArgument;
}

void Volume::execute(std::span<QueuedOp> ops) {
  if (mig_) {
    execute_migrator(ops);
  } else {
    execute_controller(ops);
  }
  for (const QueuedOp& op : ops) {
    ops_.inc();
    blocks_.inc(static_cast<std::uint64_t>(
        (op.req.kind == OpKind::kRead || op.req.kind == OpKind::kWrite)
            ? op.req.count
            : 1));
    if (op.result != Status::kOk) errors_.inc();
  }
}

void Volume::execute_controller(std::span<QueuedOp> ops) {
  std::vector<QueuedOp*> writes;
  std::vector<QueuedOp*> reads;
  writes.reserve(ops.size());
  for (QueuedOp& op : ops) {
    (is_write(op) ? writes : reads).push_back(&op);
  }

  // Overlap-generation split (header comment): coalescing sorts by
  // address, so two same-block writes must never share a generation —
  // except sub-block/sub-block pairs, which the batched write_range
  // already applies in batch (= submission) order.
  std::map<std::int64_t, std::int64_t> any;    // every write interval
  std::map<std::int64_t, std::int64_t> whole;  // whole-block intervals
  std::vector<QueuedOp*> gen;
  gen.reserve(writes.size());
  for (QueuedOp* op : writes) {
    const bool whole_block = op->req.kind == OpKind::kWrite;
    const std::int64_t lo = op->req.logical;
    const std::int64_t hi = lo + (whole_block ? op->req.count : 1);
    if (whole_block ? intersects(any, lo, hi) : intersects(whole, lo, hi)) {
      run_write_generation(gen);
      gen.clear();
      any.clear();
      whole.clear();
    }
    gen.push_back(op);
    cover(any, lo, hi);
    if (whole_block) cover(whole, lo, hi);
  }
  run_write_generation(gen);
  run_reads(reads);
}

void Volume::run_write_generation(std::span<QueuedOp*> gen) {
  if (gen.empty()) return;
  // Stable: same-block sub-writes keep submission order.
  std::stable_sort(gen.begin(), gen.end(),
                   [](const QueuedOp* a, const QueuedOp* b) {
                     return a->req.logical < b->req.logical;
                   });

  // Scattered singles and sub-block writes pool into one batched
  // write_range: the controller coalesces their parity RMWs per
  // stripe, so even non-adjacent blocks amortize under load.
  std::vector<mig::ArrayController::SubWrite> subs;
  std::vector<QueuedOp*> sub_ops;
  const auto flush_subs = [&] {
    if (subs.empty()) return;
    Status st = Status::kOk;
    try {
      ctrl_->write_range(std::span<const mig::ArrayController::SubWrite>(
          subs.data(), subs.size()));
    } catch (const std::exception&) {
      st = Status::kIoError;
    }
    for (QueuedOp* o : sub_ops) o->result = st;
    subs.clear();
    sub_ops.clear();
  };

  const std::size_t bs = block_bytes();
  std::size_t i = 0;
  while (i < gen.size()) {
    QueuedOp* op = gen[i];
    if (op->req.kind == OpKind::kWriteRange) {
      subs.push_back({op->req.logical, op->req.offset, op->req.in});
      sub_ops.push_back(op);
      ++i;
      continue;
    }
    // Whole-block write: absorb ops covering consecutive blocks into
    // one ranged planner call.
    std::size_t j = i;
    std::int64_t end = op->req.logical + op->req.count;
    std::int64_t total = op->req.count;
    while (j + 1 < gen.size() && gen[j + 1]->req.kind == OpKind::kWrite &&
           gen[j + 1]->req.logical == end) {
      ++j;
      end += gen[j]->req.count;
      total += gen[j]->req.count;
    }
    if (j == i && total == 1) {
      subs.push_back({op->req.logical, 0, op->req.in});
      sub_ops.push_back(op);
      ++i;
      continue;
    }
    Status st = Status::kOk;
    try {
      if (j == i) {
        ctrl_->write(op->req.logical, total, op->req.in);
      } else {
        PooledBuffer staging(static_cast<std::size_t>(total) * bs);
        std::size_t off = 0;
        for (std::size_t k = i; k <= j; ++k) {
          const auto& in = gen[k]->req.in;
          std::memcpy(staging.data() + off, in.data(), in.size());
          off += in.size();
        }
        ctrl_->write(op->req.logical, total, staging.span());
        coalesced_runs_.inc();
      }
    } catch (const std::exception&) {
      st = Status::kIoError;
    }
    for (std::size_t k = i; k <= j; ++k) gen[k]->result = st;
    i = j + 1;
  }
  flush_subs();
}

void Volume::run_reads(std::span<QueuedOp*> reads) {
  if (reads.empty()) return;
  std::stable_sort(reads.begin(), reads.end(),
                   [](const QueuedOp* a, const QueuedOp* b) {
                     return a->req.logical < b->req.logical;
                   });
  const std::size_t bs = block_bytes();
  std::size_t i = 0;
  while (i < reads.size()) {
    QueuedOp* op = reads[i];
    if (op->req.kind == OpKind::kReadRange) {
      try {
        ctrl_->read_range(op->req.logical, op->req.offset, op->req.out);
        op->result = Status::kOk;
      } catch (const std::exception&) {
        op->result = Status::kIoError;
      }
      ++i;
      continue;
    }
    std::size_t j = i;
    std::int64_t end = op->req.logical + op->req.count;
    std::int64_t total = op->req.count;
    while (j + 1 < reads.size() && reads[j + 1]->req.kind == OpKind::kRead &&
           reads[j + 1]->req.logical == end) {
      ++j;
      end += reads[j]->req.count;
      total += reads[j]->req.count;
    }
    Status st = Status::kOk;
    try {
      if (j == i) {
        if (op->req.count == 1) {
          ctrl_->read(op->req.logical, op->req.out);
        } else {
          ctrl_->read(op->req.logical, total, op->req.out);
        }
      } else {
        PooledBuffer staging(static_cast<std::size_t>(total) * bs);
        ctrl_->read(op->req.logical, total, staging.span());
        coalesced_runs_.inc();
        std::size_t off = 0;
        for (std::size_t k = i; k <= j; ++k) {
          auto out = reads[k]->req.out;
          std::memcpy(out.data(), staging.data() + off, out.size());
          off += out.size();
        }
      }
    } catch (const std::exception&) {
      st = Status::kIoError;
    }
    for (std::size_t k = i; k <= j; ++k) reads[k]->result = st;
    i = j + 1;
  }
}

void Volume::execute_migrator(std::span<QueuedOp> ops) {
  // Migrator volumes execute strictly in queue order: the migrator's
  // application path is per-block by design (it arbitrates with the
  // conversion workers per stripe group), so there is nothing to
  // coalesce, and order-preservation is free.
  const std::size_t bs = block_bytes();
  for (QueuedOp& op : ops) {
    mig::IoResult r = mig::IoResult::success();
    switch (op.req.kind) {
      case OpKind::kRead:
        for (std::int64_t b = 0; b < op.req.count && r.ok(); ++b) {
          r = mig_->read_block(
              op.req.logical + b,
              op.req.out.subspan(static_cast<std::size_t>(b) * bs, bs));
        }
        break;
      case OpKind::kWrite:
        for (std::int64_t b = 0; b < op.req.count && r.ok(); ++b) {
          r = mig_->write_block(
              op.req.logical + b,
              op.req.in.subspan(static_cast<std::size_t>(b) * bs, bs));
        }
        break;
      case OpKind::kWriteRange:
        r = mig_->write_range(op.req.logical,
                              static_cast<std::size_t>(op.req.offset),
                              op.req.in);
        break;
      case OpKind::kReadRange: {
        PooledBuffer block(bs);
        r = mig_->read_block(op.req.logical, block.span());
        if (r.ok()) {
          std::memcpy(op.req.out.data(),
                      block.data() + static_cast<std::size_t>(op.req.offset),
                      op.req.out.size());
        }
        break;
      }
    }
    op.result = r.ok() ? Status::kOk : Status::kIoError;
  }
}

}  // namespace c56::svc
