#pragma once
// One hosted volume of the block service: a DiskArray plus either an
// ArrayController (any code in the zoo — the steady-state RAID-6
// volume) or an OnlineMigrator (a RAID-5 volume that can start its
// Code 5-6 conversion mid-traffic; application I/O rides the
// migrator's watermark-aware paths from the first request, so start()
// needs no quiesce).
//
// execute() is the batch executor behind the shard event loop's
// queue-depth-aware batching. It receives one drained slice of this
// volume's operations — already in per-tenant FIFO order — and feeds
// them to the cheapest controller path available:
//  * whole-block writes covering consecutive blocks are gathered into
//    one ranged write(l, count) (the PR 3 planner: full-stripe writes
//    cost zero pre-reads, partial stripes coalesce parity deltas);
//  * scattered single-block writes and sub-block writes share one
//    batched write_range() (the PR 7 plane: each parity block pays at
//    most one read-modify-write per stripe per batch);
//  * adjacent reads merge into one ranged read and scatter back out.
// Coalescing sorts by address, so the batch is first split into
// "generations" at write-overlap points: within a generation all
// whole-block writes are disjoint, which keeps same-block writes
// applying in submission order (the SQ/CQ ordering contract).

#include <cstdint>
#include <chrono>
#include <memory>
#include <span>

#include "codes/registry.hpp"
#include "migration/controller.hpp"
#include "migration/disk_array.hpp"
#include "migration/online.hpp"
#include "obs/metrics.hpp"
#include "obs/reqtrace.hpp"
#include "service/request.hpp"

namespace c56::svc {

class Volume;

/// Request-lifecycle timestamps, populated only for ops admitted while
/// obs::req_trace_enabled() (trace_id != 0 is the marker). All values
/// share obs::now_us()'s steady-clock timebase, so the six stages
/// derived at completion telescope exactly to end-to-end latency (see
/// obs/reqtrace.hpp).
struct ReqTimes {
  std::uint64_t trace_id = 0;       // 0: tracing was off at submit
  std::uint64_t t_submit_us = 0;    // accepted into the shard SQ
  std::uint64_t t_wake_us = 0;      // the drain pass taking it began
  std::uint64_t t_drain_us = 0;     // popped by the DRR scheduler
  std::uint64_t t_exec_start_us = 0;  // its volume group began executing
  std::uint64_t t_exec_end_us = 0;    // its volume group finished
  std::uint64_t device_ns = 0;      // counted DiskArray wall in the group
};

/// A request accepted into a shard's submission queue.
struct QueuedOp {
  Request req;
  Volume* volume = nullptr;
  std::chrono::steady_clock::time_point submitted;
  std::int64_t cost = 1;            // DRR cost in blocks (clamped)
  Status result = Status::kOk;      // filled by Volume::execute
  ReqTimes rt;
};

class Volume {
 public:
  struct Config {
    CodeId code = CodeId::kCode56;
    int p = 5;
    std::int64_t stripes = 8;
    std::size_t block_bytes = 4096;
    std::size_t cache_stripes = 0;  // 0 = stripe cache off
    TenantId owner = 0;
  };

  /// Controller-backed volume (steady-state erasure-coded array).
  Volume(VolumeId id, const Config& cfg);

  /// Migrator-backed RAID-5 volume of p-1 disks and `groups` stripe
  /// groups, zero-filled (a valid RAID-5: all-zero parity). Start the
  /// online conversion whenever desired via migrator()->start();
  /// application I/O flows through the migrator the whole time.
  Volume(VolumeId id, int p, std::int64_t groups, std::size_t block_bytes,
         TenantId owner);

  Volume(const Volume&) = delete;
  Volume& operator=(const Volume&) = delete;

  VolumeId id() const noexcept { return id_; }
  TenantId owner() const noexcept { return owner_; }
  std::size_t block_bytes() const noexcept { return array_->block_bytes(); }
  std::int64_t logical_blocks() const noexcept { return logical_blocks_; }

  mig::DiskArray& array() noexcept { return *array_; }
  /// Null for migrator-backed volumes.
  mig::ArrayController* controller() noexcept { return ctrl_.get(); }
  /// Null for controller-backed volumes.
  mig::OnlineMigrator* migrator() noexcept { return mig_.get(); }

  /// Synchronous geometry/buffer validation run at submit() time, so
  /// a malformed request is rejected before anything is queued.
  Status validate(const Request& req) const noexcept;

  /// Execute one drained slice of this volume's operations, filling
  /// each op's `result`. Called only from the owning shard's thread
  /// (one shard per volume), so it needs no locking of its own.
  void execute(std::span<QueuedOp> ops);

  // Always-on per-volume accounting (exported by the manager with
  // volume="id" labels).
  std::uint64_t ops_completed() const noexcept { return ops_.value(); }
  std::uint64_t blocks_io() const noexcept { return blocks_.value(); }
  std::uint64_t io_errors() const noexcept { return errors_.value(); }
  /// Multi-op runs merged into one ranged controller call.
  std::uint64_t coalesced_runs() const noexcept {
    return coalesced_runs_.value();
  }

  /// Per-volume stage latency decomposition, observed by the shard's
  /// completion path for request-traced ops while metrics are on.
  obs::StageHistograms& stages() noexcept { return stages_; }
  const obs::StageHistograms& stages() const noexcept { return stages_; }

 private:
  void execute_controller(std::span<QueuedOp> ops);
  void execute_migrator(std::span<QueuedOp> ops);
  // One overlap-free generation of whole-block/sub-block writes,
  // sorted + coalesced here.
  void run_write_generation(std::span<QueuedOp*> gen);
  void run_reads(std::span<QueuedOp*> reads);

  VolumeId id_;
  TenantId owner_;
  std::int64_t logical_blocks_ = 0;
  std::unique_ptr<mig::DiskArray> array_;
  std::unique_ptr<mig::ArrayController> ctrl_;
  std::unique_ptr<mig::OnlineMigrator> mig_;

  obs::Counter ops_;
  obs::Counter blocks_;
  obs::Counter errors_;
  obs::Counter coalesced_runs_;
  obs::StageHistograms stages_;
};

}  // namespace c56::svc
