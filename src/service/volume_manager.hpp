#pragma once
// The multi-tenant block service front end: hosts up to kMaxVolumes
// volumes sharded across worker threads behind the async SQ/CQ API
// described in request.hpp.
//
// The submit path is lock-light by construction: a volume lookup is
// one acquire-load plus an array index (the table is append-only and
// published with release order), admission control is two relaxed
// atomic bumps (per-tenant budget, global in-flight), and the only
// lock touched is the owning shard's queue mutex for the enqueue
// itself. Volumes map to shards by `id % shards`, so all I/O of one
// volume serializes on one worker — the property the batch executor's
// coalescing relies on.

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "service/shard.hpp"
#include "service/volume.hpp"

namespace c56::svc {

class VolumeManager {
 public:
  static constexpr int kMaxVolumes = 4096;

  /// C56_SERVICE_* environment knobs override `cfg` fields here (see
  /// request.hpp for which knob maps to which field).
  explicit VolumeManager(ServiceConfig cfg = {});
  /// Stops accepting, drains every queue, joins the workers.
  ~VolumeManager();

  VolumeManager(const VolumeManager&) = delete;
  VolumeManager& operator=(const VolumeManager&) = delete;

  /// Create a controller-backed volume; returns its id (dense,
  /// starting at 0). Throws std::length_error when the table is full.
  VolumeId create_volume(const Volume::Config& cfg);
  /// Create a migrator-backed RAID-5 volume ready for a mid-traffic
  /// Code 5-6 conversion (volume(id)->migrator()->start()).
  VolumeId create_raid5_volume(int p, std::int64_t groups,
                               std::size_t block_bytes, TenantId owner = 0);

  /// nullptr when `id` names no volume.
  Volume* volume(VolumeId id) noexcept;
  int volumes() const noexcept {
    return volume_count_.load(std::memory_order_acquire);
  }

  /// Validate, admit, and queue `req`. kOk means the completion
  /// callback will run exactly once on a shard thread; every other
  /// status is a synchronous rejection and nothing was queued.
  Status submit(Request req);

  /// Block until every accepted request has completed. (In manual-pump
  /// mode, pumps the shards on the calling thread instead.)
  void drain();

  /// Reject new submissions, drain, and join the shard workers.
  /// Idempotent; the destructor calls it.
  void stop();

  /// Accepted-but-not-completed requests, service-wide.
  std::int64_t inflight() const noexcept {
    return shared_.total_inflight.load(std::memory_order_acquire);
  }

  /// Test seam (cfg.manual_pump): run one drain+execute pass on every
  /// shard; returns ops completed. Loop until 0 for a full drain.
  std::size_t pump_all();

  const ServiceConfig& config() const noexcept { return shared_.cfg; }

  /// Export service metrics through `registry`: global counters, SQ
  /// depth / batch-size / latency histograms, per-shard queue gauges,
  /// per-volume ops/blocks/errors counters (volume="id" labels) and
  /// per-tenant in-flight/completed (tenant="id", active tenants
  /// only). Detaches on destruction.
  void attach_metrics(obs::Registry& registry,
                      const std::string& prefix = "service");
  /// Additionally export every hosted volume's DiskArray and
  /// controller counters labeled volume="id" (c56cli serve-bench /
  /// stats attribution). The handles live in the volumes' subsystems;
  /// `registry` must outlive this manager.
  void attach_volume_metrics(obs::Registry& registry);
  void detach_metrics() { metrics_handle_.remove(); }

  /// End-to-end latency snapshot of one tenant's request-traced ops
  /// (all-zero when the tenant never completed a traced request). The
  /// SLO tracker diffs successive snapshots for interval quantiles.
  obs::HistogramSnapshot tenant_latency(TenantId tenant) const;
  /// Tenants with at least one traced completion, ascending.
  std::vector<TenantId> traced_tenants() const;

 private:
  Shard& shard_of(VolumeId id) noexcept {
    return *shards_[static_cast<std::size_t>(id) % shards_.size()];
  }

  ServiceShared shared_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // Append-only volume table: slots are written before volume_count_
  // is bumped with release order, so the lock-free submit-path lookup
  // never sees a half-built volume.
  std::array<std::unique_ptr<Volume>, kMaxVolumes> volumes_;
  std::atomic<int> volume_count_{0};
  std::mutex create_mu_;
  std::atomic<bool> accepting_{true};
  bool stopped_ = false;
  obs::CollectorHandle metrics_handle_;
};

}  // namespace c56::svc
