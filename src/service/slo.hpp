#pragma once
// Per-tenant SLO tracker: turns the service's per-tenant end-to-end
// latency histograms into interval quantiles and error-budget burn
// rates (DESIGN.md §14).
//
// The objective is "fraction of requests under target_p99_us must be
// at least `objective`" (default 0.99 — i.e. target_p99_us is a p99
// target). Each update() diffs every traced tenant's latency snapshot
// against the previous one (HistogramSnapshot::minus), yielding the
// interval's sample set; the violation fraction is estimated with
// count_above() and normalized into a burn rate:
//
//   burn = violation_fraction / (1 - objective)
//
// burn == 1 means the tenant consumes its error budget exactly at the
// sustainable rate; burn == 10 exhausts a 30-day budget in 3 days.
// This is the pacing signal the fleet orchestrator (ROADMAP) will
// throttle migrations against.
//
// update() is designed to run as a MetricsSampler probe (probe()), so
// `c56cli top` and monitor --series get SLO gauges refreshed at the
// sampling cadence for free. Feeding it requires request tracing
// (obs::req_trace_enabled()) and metrics to be armed — without them
// the per-tenant histograms never fill and every interval is empty.

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "service/volume_manager.hpp"

namespace c56::svc {

struct SloConfig {
  /// Latency target in microseconds; C56_SLO_P99_US overrides
  /// (clamped to [1, 60'000'000]).
  std::uint64_t target_p99_us = 50'000;
  /// Required fraction of requests within target (0.99 = p99 target).
  double objective = 0.99;
};

class SloTracker {
 public:
  /// `mgr` must outlive the tracker.
  explicit SloTracker(VolumeManager& mgr, SloConfig cfg = {});

  struct TenantSlo {
    TenantId tenant = 0;
    std::uint64_t interval_count = 0;  // traced completions this interval
    double interval_p99_us = 0.0;
    double violation_frac = 0.0;  // interval fraction above target
    double burn_rate = 0.0;       // violation_frac / (1 - objective)
    std::uint64_t total_count = 0;       // lifetime traced completions
    double total_violations = 0.0;       // lifetime estimated violations
  };

  /// Evaluate one interval for every traced tenant.
  void update();

  /// Last evaluated interval, ascending tenant order.
  std::vector<TenantSlo> snapshot() const;

  /// Export gauges: <prefix>_target_us, and per tenant
  /// <prefix>_p99_us / <prefix>_burn_x1000 (interval values) plus
  /// <prefix>_requests / <prefix>_violations counters (lifetime).
  void attach_metrics(obs::Registry& registry,
                      const std::string& prefix = "service_slo");
  void detach_metrics() { handle_.remove(); }

  /// update() packaged for MetricsSampler::add_probe.
  std::function<void()> probe() {
    return [this] { update(); };
  }

  const SloConfig& config() const noexcept { return cfg_; }

 private:
  struct State {
    obs::HistogramSnapshot prev;
    TenantSlo cur;
  };

  VolumeManager& mgr_;
  SloConfig cfg_;
  mutable std::mutex mu_;
  std::map<TenantId, State> tenants_;
  obs::CollectorHandle handle_;
};

}  // namespace c56::svc
