#include "service/loadgen.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "sim/disk_model.hpp"
#include "sim/workload.hpp"
#include "util/rng.hpp"
#include "xorblk/buffer.hpp"

namespace c56::svc {

namespace {

using Clock = std::chrono::steady_clock;

// Bytes of random payload the write requests slice from; streams hash
// into it so repeated runs write varied, non-zero content without a
// per-stream allocation.
constexpr std::size_t kPoolBytes = 1 << 21;

std::int64_t streams_per_volume(const LoadParams& p) {
  return (p.streams + p.volumes - 1) / p.volumes;
}

/// One submission in the merged cross-volume order.
struct Arrival {
  double issue_ms = 0;
  std::int32_t vol = 0;    // index into the created-volume list
  std::int32_t idx = 0;    // arrival index within the volume's schedule
  bool is_read = false;
};

}  // namespace

std::vector<VolumeId> create_stream_volumes(VolumeManager& mgr,
                                            const LoadParams& params) {
  if (params.volumes < 1 || params.tenants < 1 || params.streams < 1 ||
      params.requests_per_stream < 1) {
    throw std::invalid_argument("loadgen: params must be >= 1");
  }
  auto code = make_code(params.code, params.p);
  const auto data_cells = static_cast<std::int64_t>(code->data_cell_count());
  code.reset();
  const std::int64_t blocks =
      streams_per_volume(params) * params.requests_per_stream;
  Volume::Config cfg;
  cfg.code = params.code;
  cfg.p = params.p;
  cfg.stripes = std::max<std::int64_t>((blocks + data_cells - 1) / data_cells,
                                       1);
  cfg.block_bytes = params.block_bytes;
  cfg.cache_stripes = params.cache_stripes;
  std::vector<VolumeId> ids;
  ids.reserve(static_cast<std::size_t>(params.volumes));
  for (int v = 0; v < params.volumes; ++v) {
    ids.push_back(mgr.create_volume(cfg));
  }
  return ids;
}

LoadStats run_stream_load(VolumeManager& mgr, const LoadParams& params) {
  const std::int64_t spv = streams_per_volume(params);
  const std::int64_t rps = params.requests_per_stream;
  const std::int64_t per_volume = spv * rps;
  const std::size_t bs = params.block_bytes;

  // One Poisson schedule per volume, merged by issue time: the global
  // submit order interleaves volumes/tenants like concurrent clients
  // while each stream's own requests stay in order (arrival k*spv + s
  // is stream s's step k, monotone in k).
  std::vector<Arrival> order;
  order.reserve(static_cast<std::size_t>(per_volume) *
                static_cast<std::size_t>(params.volumes));
  for (int v = 0; v < params.volumes; ++v) {
    sim::WorkloadParams wp;
    wp.disks = 1;
    wp.blocks_per_disk = std::max<std::int64_t>(spv, 1);
    wp.block_bytes = static_cast<std::uint32_t>(bs);
    wp.iops = params.iops;
    wp.horizon_ms = 1.0;  // min_requests is the real bound
    wp.min_requests = per_volume;
    wp.read_fraction = params.read_fraction;
    wp.pattern = sim::AddressPattern::kSequential;
    wp.seed = params.seed + static_cast<std::uint64_t>(v) * 0x9E3779B9u;
    const auto reqs = sim::make_workload(wp);
    for (std::int64_t i = 0; i < per_volume; ++i) {
      const auto& r = reqs[static_cast<std::size_t>(i)];
      order.push_back({r.issue_ms, v, static_cast<std::int32_t>(i),
                       r.op == sim::Op::kRead});
    }
  }
  std::sort(order.begin(), order.end(), [](const Arrival& a, const Arrival& b) {
    if (a.issue_ms != b.issue_ms) return a.issue_ms < b.issue_ms;
    if (a.vol != b.vol) return a.vol < b.vol;
    return a.idx < b.idx;
  });

  Buffer pool(kPoolBytes);
  Rng rng(params.seed ^ 0xC56'0008);
  rng.fill(pool.data(), kPoolBytes);
  // Per-volume read sinks: one volume executes on one shard thread, so
  // a shared sink per volume is race-free (contents are discarded).
  std::vector<Buffer> sinks;
  if (params.read_fraction > 0) {
    sinks.reserve(static_cast<std::size_t>(params.volumes));
    for (int v = 0; v < params.volumes; ++v) sinks.emplace_back(bs);
  }

  std::uint64_t runs0 = 0, bytes0 = 0;
  for (int v = 0; v < params.volumes; ++v) {
    const auto& a = mgr.volume(v)->array();
    runs0 += a.total_read_runs() + a.total_write_runs();
    bytes0 += a.total_read_bytes() + a.total_write_bytes();
  }

  obs::Histogram latency;
  std::atomic<std::uint64_t> errors{0};
  const bool manual = mgr.config().manual_pump;
  LoadStats stats;
  stats.streams = spv * params.volumes;

  const auto t0 = Clock::now();
  for (const Arrival& a : order) {
    const std::int64_t stream_local = a.idx % spv;
    const std::int64_t step = a.idx / spv;
    const std::int64_t global_stream =
        static_cast<std::int64_t>(a.vol) * spv + stream_local;
    Request rq;
    rq.volume = a.vol;
    rq.tenant = static_cast<TenantId>(global_stream %
                                      static_cast<std::int64_t>(params.tenants));
    rq.logical = stream_local * rps + step;
    rq.count = 1;
    if (a.is_read) {
      rq.kind = OpKind::kRead;
      rq.out = sinks[static_cast<std::size_t>(a.vol)].span();
    } else {
      rq.kind = OpKind::kWrite;
      const std::size_t off = static_cast<std::size_t>(
          (static_cast<std::uint64_t>(global_stream) * 2654435761ull +
           static_cast<std::uint64_t>(step) * 40503ull) *
          bs % (kPoolBytes - bs));
      rq.in = std::span<const std::uint8_t>(pool.data() + off, bs);
    }
    rq.on_complete = [&latency, &errors](const Completion& c) {
      latency.observe(c.latency_us);
      if (c.status != Status::kOk) {
        errors.fetch_add(1, std::memory_order_relaxed);
      }
    };
    for (;;) {
      const Status s = mgr.submit(rq);
      if (s == Status::kOk) break;
      if (s != Status::kQueueFull) {  // loadgen bug or shutdown: surface it
        errors.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      ++stats.rejected;
      if (manual) {
        mgr.pump_all();
      } else {
        std::this_thread::yield();
      }
    }
    ++stats.requests;
  }
  mgr.drain();
  stats.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();

  std::uint64_t runs1 = 0, bytes1 = 0;
  for (int v = 0; v < params.volumes; ++v) {
    const auto& a = mgr.volume(v)->array();
    runs1 += a.total_read_runs() + a.total_write_runs();
    bytes1 += a.total_read_bytes() + a.total_write_bytes();
  }
  stats.device_runs = runs1 - runs0;
  stats.device_bytes = bytes1 - bytes0;
  stats.payload_bytes = stats.requests * static_cast<std::int64_t>(bs);
  stats.errors = errors.load(std::memory_order_relaxed);
  stats.mbps = stats.wall_s > 0
                   ? static_cast<double>(stats.payload_bytes) / stats.wall_s /
                         1e6
                   : 0;
  const sim::DiskParams d;
  const double device_ms =
      static_cast<double>(stats.device_runs) *
          (d.avg_seek_ms + d.avg_rotational_ms()) +
      static_cast<double>(stats.device_bytes) / (d.transfer_mb_s * 1e3);
  stats.device_mbps =
      device_ms > 0
          ? static_cast<double>(stats.payload_bytes) / device_ms / 1e3
          : 0;
  const auto h = latency.snapshot();
  stats.p50_us = h.p50;
  stats.p95_us = h.p95;
  stats.p99_us = h.p99;
  stats.max_us = h.max;
  return stats;
}

}  // namespace c56::svc
