#pragma once
// Multi-tenant block service: the submission-queue/completion-queue
// request types shared by VolumeManager (volume_manager.hpp) and its
// shards (shard.hpp).
//
// SQ/CQ contract (DESIGN.md §13 is the long form):
//  * submit() validates geometry synchronously (kNoSuchVolume /
//    kInvalidArgument return immediately, nothing is queued) and
//    applies admission control (kQueueFull when the tenant's in-flight
//    budget or the shard's queue cap is hit — back off and resubmit).
//  * An accepted request completes exactly once, via on_complete, on
//    the owning shard's worker thread. Callbacks must be cheap and
//    must not call back into the manager's blocking entry points.
//  * Ordering: requests of one tenant to one volume are processed in
//    submission order, and two writes touching the same blocks apply
//    in submission order even when the shard coalesces around them.
//    Requests of different tenants — or to different volumes — are
//    unordered (deficit-round-robin interleaves tenants). A read is
//    unordered against in-flight writes (a read drained in the same
//    batch as a write sees it); await the write's completion for
//    read-your-write semantics.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>

namespace c56::svc {

using VolumeId = std::int32_t;
using TenantId = std::int32_t;

enum class Status : std::uint8_t {
  kOk = 0,
  kQueueFull,        // admission control: tenant budget or shard SQ cap
  kNoSuchVolume,
  kInvalidArgument,  // bad range/offset or buffer size mismatch
  kIoError,          // unrecoverable device fault surfaced by the volume
  kShutdown,         // manager is stopping; request was not executed
};

const char* to_string(Status s) noexcept;

enum class OpKind : std::uint8_t {
  kRead,        // `count` whole blocks into `out`
  kWrite,       // `count` whole blocks from `in`
  kReadRange,   // out.size() bytes at `offset` within block `logical`
  kWriteRange,  // in.size() bytes at `offset` within block `logical`
};

struct Completion {
  Status status = Status::kOk;
  std::uint64_t latency_us = 0;  // submit() -> completion callback
};

using CompletionFn = std::function<void(const Completion&)>;

/// One queued operation. Buffers are caller-owned views and must stay
/// valid until the completion callback runs.
struct Request {
  OpKind kind = OpKind::kRead;
  VolumeId volume = 0;
  TenantId tenant = 0;
  std::int64_t logical = 0;  // first logical data block
  std::int64_t count = 1;    // whole blocks (kRead / kWrite)
  std::int64_t offset = 0;   // intra-block byte offset (k*Range)
  std::span<std::uint8_t> out;       // kRead / kReadRange destination
  std::span<const std::uint8_t> in;  // kWrite / kWriteRange payload
  CompletionFn on_complete;  // may be empty (fire-and-forget)
};

/// Knobs of one VolumeManager. Environment variables of the same
/// shape (C56_SERVICE_*) override these at construction time; see
/// VolumeManager's constructor for the clamped ranges.
struct ServiceConfig {
  /// Worker shards. Volumes map to shards by id, so every operation
  /// on one volume executes on one thread — that serialization is
  /// what lets the shard batch without locking the data path.
  int shards = 4;                            // C56_SERVICE_SHARDS
  /// Max operations per drained batch. The event loop takes whatever
  /// is queued up to this bound, so batch size tracks queue depth:
  /// idle service = latency-optimal batches of 1, saturated service =
  /// planner-sized batches that amortize parity I/O.
  int max_batch = 256;                       // C56_SERVICE_BATCH
  /// Per-tenant in-flight budget (accepted, not yet completed).
  std::int64_t tenant_inflight = 4096;       // C56_SERVICE_INFLIGHT
  /// Per-shard submission-queue cap across all tenants.
  std::int64_t shard_queue_cap = 1 << 16;    // C56_SERVICE_QUEUE
  /// Deficit-round-robin quantum, in blocks, credited to a tenant per
  /// scheduling visit.
  int quantum_blocks = 64;                   // C56_SERVICE_QUANTUM
  /// Thread-local BufferPool bytes a shard keeps when its queue goes
  /// idle (BufferPool::trim high-watermark hook).
  std::size_t idle_trim_bytes = 256u << 10;  // C56_SERVICE_TRIM_KB
  /// Test seam: do not start worker threads; queued work runs only
  /// when the test calls VolumeManager::pump_all() / Shard::pump(),
  /// making batch composition deterministic.
  bool manual_pump = false;
};

}  // namespace c56::svc
