#pragma once
// One worker shard of the VolumeManager: a submission queue with
// per-tenant FIFO sub-queues, a deficit-round-robin scheduler, and an
// event loop that drains up to max_batch operations per wakeup.
//
// Queue-depth-aware batching falls out of the drain rule: the loop
// takes *everything queued* up to max_batch. An idle service wakes per
// request and executes batches of one (latency-optimal); a loaded
// service finds a deep queue and hands the volume executor planner-
// sized batches, amortizing parity I/O exactly where the ranged and
// sub-block planners made batches cheap.
//
// Fairness: classic DRR. Active tenants sit in a ring; a visit
// credits quantum_blocks of deficit and serves the tenant's FIFO head
// while the deficit covers its cost (op cost = blocks touched,
// clamped). A tenant that drains leaves the ring and forfeits its
// deficit; one with work left rotates to the tail keeping the
// remainder, so a flooding tenant cannot starve a trickling one.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "service/volume.hpp"

namespace c56::svc {

/// Hard cap on tenant ids (admission state is a flat array of
/// atomics, so the submit path never takes a lock to find a tenant).
inline constexpr TenantId kMaxTenants = 4096;

/// Counters/histograms shared by every shard of one manager. Plain
/// relaxed atomics; histograms are observed only while
/// obs::metrics_enabled().
struct ServiceMetrics {
  obs::Counter submitted;
  obs::Counter completed;
  obs::Counter rejected_budget;  // per-tenant in-flight cap hits
  obs::Counter rejected_queue;   // shard SQ cap hits
  obs::Counter errors;           // completions with status != kOk
  obs::Histogram queue_depth;    // SQ depth at each drain
  obs::Histogram batch_ops;      // ops per drained batch
  obs::Histogram read_latency_us;
  obs::Histogram write_latency_us;
  // Service-wide stage decomposition of request-traced ops.
  obs::StageHistograms stages;
};

/// Per-tenant observability state, allocated lazily on a tenant's
/// first traced completion (4096 eager copies would be ~13 MiB of
/// histograms nobody reads).
struct TenantObs {
  obs::Histogram latency_us;  // end-to-end, same timebase as stages
  obs::StageHistograms stages;
};

/// State owned by the VolumeManager and shared with its shards.
struct ServiceShared {
  ServiceShared()
      : tenant_inflight(static_cast<std::size_t>(kMaxTenants)),
        tenant_completed(static_cast<std::size_t>(kMaxTenants)),
        tenant_obs(static_cast<std::size_t>(kMaxTenants)) {}
  ~ServiceShared() {
    for (auto& p : tenant_obs) delete p.load(std::memory_order_relaxed);
  }

  /// Lazily CAS-allocated per-tenant slot; the loser of a race deletes
  /// its copy. Tenant must already be admission-validated.
  TenantObs& tenant_obs_for(TenantId tenant) {
    auto& slot = tenant_obs[static_cast<std::size_t>(tenant)];
    TenantObs* p = slot.load(std::memory_order_acquire);
    if (p) return *p;
    auto* fresh = new TenantObs();
    if (slot.compare_exchange_strong(p, fresh, std::memory_order_acq_rel)) {
      return *fresh;
    }
    delete fresh;
    return *p;
  }

  ServiceConfig cfg;
  ServiceMetrics metrics;
  std::atomic<std::int64_t> total_inflight{0};
  // Flat per-tenant admission state, indexed by tenant id (never
  // resized — the vectors just avoid a 64 KiB inline struct).
  std::vector<std::atomic<std::int64_t>> tenant_inflight;
  std::vector<obs::Counter> tenant_completed;
  std::vector<std::atomic<TenantObs*>> tenant_obs;
  // drain() rendezvous: completions that zero total_inflight signal it.
  std::mutex drain_mu;
  std::condition_variable drain_cv;
};

class Shard {
 public:
  Shard(int id, ServiceShared& shared);
  ~Shard();

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  /// Launch the worker thread (not used under cfg.manual_pump).
  void start();
  /// Drain every queued op, then stop and join the worker. Queued ops
  /// still present in manual-pump mode complete with kShutdown.
  void stop();

  /// Called by VolumeManager::submit after admission; takes ownership
  /// of `op` unless the SQ cap rejects it (kQueueFull).
  Status enqueue(QueuedOp&& op);

  /// Test seam (cfg.manual_pump): drain + execute one batch on the
  /// calling thread. Returns ops completed.
  std::size_t pump();

  std::int64_t queued() const noexcept {
    return queued_.load(std::memory_order_relaxed);
  }

 private:
  struct TenantQueue {
    std::deque<QueuedOp> ops;
    std::int64_t deficit = 0;
    bool active = false;  // present in the DRR ring
  };

  void loop();
  /// DRR drain of up to cfg.max_batch ops into `out`; mu_ held.
  /// `wake_us` is the timestamp of this drain pass (0 when request
  /// tracing is off) — traced ops record it as their queue_wait end.
  void drain_locked(std::vector<QueuedOp>& out, std::uint64_t wake_us);
  /// Execute a drained batch (groups by volume) and complete each op.
  std::size_t run_batch(std::vector<QueuedOp>& batch);
  void finish(QueuedOp& op);
  /// Stage decomposition + slow-ring offer + span emission for one
  /// traced, executed op. `t_finish_us` shares the op's timebase.
  void record_request_obs(QueuedOp& op, std::uint64_t t_finish_us);

  int id_;
  ServiceShared& shared_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<TenantId, TenantQueue> tenants_;
  std::deque<TenantId> ring_;  // active tenants in DRR order
  std::atomic<std::int64_t> queued_{0};
  bool stopping_ = false;
  std::thread worker_;
};

}  // namespace c56::svc
