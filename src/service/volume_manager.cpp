#include "service/volume_manager.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "obs/reqtrace.hpp"
#include "util/env.hpp"

namespace c56::svc {

namespace {
constexpr std::int64_t kMaxOpCost = 1024;  // DRR cost clamp, blocks
}

VolumeManager::VolumeManager(ServiceConfig cfg) {
  obs::arm_req_trace_from_env();
  if (const auto v = util::env_int("C56_SERVICE_SHARDS", 1, 256)) {
    cfg.shards = static_cast<int>(*v);
  }
  if (const auto v = util::env_int("C56_SERVICE_BATCH", 1, 1 << 16)) {
    cfg.max_batch = static_cast<int>(*v);
  }
  if (const auto v = util::env_int("C56_SERVICE_INFLIGHT", 1, 1 << 20)) {
    cfg.tenant_inflight = *v;
  }
  if (const auto v = util::env_int("C56_SERVICE_QUEUE", 1, 1 << 22)) {
    cfg.shard_queue_cap = *v;
  }
  if (const auto v = util::env_int("C56_SERVICE_QUANTUM", 1, 1 << 16)) {
    cfg.quantum_blocks = static_cast<int>(*v);
  }
  if (const auto v = util::env_int("C56_SERVICE_TRIM_KB", 0, 1 << 20)) {
    cfg.idle_trim_bytes = static_cast<std::size_t>(*v) << 10;
  }
  // Defensive clamps for caller-passed configs (same floors the env
  // parser enforces).
  cfg.shards = std::clamp(cfg.shards, 1, 256);
  cfg.max_batch = std::max(cfg.max_batch, 1);
  cfg.tenant_inflight = std::max<std::int64_t>(cfg.tenant_inflight, 1);
  cfg.shard_queue_cap = std::max<std::int64_t>(cfg.shard_queue_cap, 1);
  cfg.quantum_blocks = std::max(cfg.quantum_blocks, 1);
  shared_.cfg = cfg;

  shards_.reserve(static_cast<std::size_t>(cfg.shards));
  for (int s = 0; s < cfg.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(s, shared_));
  }
  if (!cfg.manual_pump) {
    for (auto& s : shards_) s->start();
  }
}

VolumeManager::~VolumeManager() { stop(); }

VolumeId VolumeManager::create_volume(const Volume::Config& cfg) {
  std::lock_guard<std::mutex> lk(create_mu_);
  const int id = volume_count_.load(std::memory_order_relaxed);
  if (id >= kMaxVolumes) {
    throw std::length_error("VolumeManager: volume table full");
  }
  volumes_[static_cast<std::size_t>(id)] =
      std::make_unique<Volume>(id, cfg);
  volume_count_.store(id + 1, std::memory_order_release);
  return id;
}

VolumeId VolumeManager::create_raid5_volume(int p, std::int64_t groups,
                                            std::size_t block_bytes,
                                            TenantId owner) {
  std::lock_guard<std::mutex> lk(create_mu_);
  const int id = volume_count_.load(std::memory_order_relaxed);
  if (id >= kMaxVolumes) {
    throw std::length_error("VolumeManager: volume table full");
  }
  volumes_[static_cast<std::size_t>(id)] =
      std::make_unique<Volume>(id, p, groups, block_bytes, owner);
  volume_count_.store(id + 1, std::memory_order_release);
  return id;
}

Volume* VolumeManager::volume(VolumeId id) noexcept {
  const int n = volume_count_.load(std::memory_order_acquire);
  if (id < 0 || id >= n) return nullptr;
  return volumes_[static_cast<std::size_t>(id)].get();
}

Status VolumeManager::submit(Request req) {
  if (!accepting_.load(std::memory_order_relaxed)) return Status::kShutdown;
  if (req.tenant < 0 || req.tenant >= kMaxTenants) {
    return Status::kInvalidArgument;
  }
  Volume* vol = volume(req.volume);
  if (!vol) return Status::kNoSuchVolume;
  if (const Status s = vol->validate(req); s != Status::kOk) return s;

  // Admission: optimistic bump, undo on rejection. The budget bounds
  // accepted-but-uncompleted ops per tenant, which in turn bounds how
  // much of any shard's queue one tenant can own.
  auto& budget = shared_.tenant_inflight[static_cast<std::size_t>(req.tenant)];
  if (budget.fetch_add(1, std::memory_order_relaxed) >=
      shared_.cfg.tenant_inflight) {
    budget.fetch_sub(1, std::memory_order_relaxed);
    shared_.metrics.rejected_budget.inc();
    return Status::kQueueFull;
  }
  shared_.total_inflight.fetch_add(1, std::memory_order_relaxed);

  QueuedOp op;
  const TenantId tenant = req.tenant;
  op.cost = std::clamp<std::int64_t>(
      (req.kind == OpKind::kRead || req.kind == OpKind::kWrite) ? req.count
                                                                : 1,
      1, kMaxOpCost);
  op.volume = vol;
  op.submitted = std::chrono::steady_clock::now();
  if (obs::req_trace_enabled()) {
    op.rt.trace_id = obs::next_trace_id();
    // Derived from the same clock read as `submitted` so the stage
    // decomposition and the completion latency share one origin.
    op.rt.t_submit_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            op.submitted.time_since_epoch())
            .count());
  }
  op.req = std::move(req);

  const Status s = shard_of(op.req.volume).enqueue(std::move(op));
  if (s != Status::kOk) {
    shared_.tenant_inflight[static_cast<std::size_t>(tenant)].fetch_sub(
        1, std::memory_order_relaxed);
    shared_.total_inflight.fetch_sub(1, std::memory_order_relaxed);
    if (s == Status::kQueueFull) shared_.metrics.rejected_queue.inc();
    return s;
  }
  shared_.metrics.submitted.inc();
  return Status::kOk;
}

void VolumeManager::drain() {
  if (shared_.cfg.manual_pump) {
    while (pump_all() != 0) {
    }
    return;
  }
  std::unique_lock<std::mutex> lk(shared_.drain_mu);
  shared_.drain_cv.wait(lk, [&] {
    return shared_.total_inflight.load(std::memory_order_acquire) == 0;
  });
}

void VolumeManager::stop() {
  accepting_.store(false, std::memory_order_relaxed);
  if (stopped_) return;
  stopped_ = true;
  for (auto& s : shards_) s->stop();
}

std::size_t VolumeManager::pump_all() {
  std::size_t done = 0;
  for (auto& s : shards_) done += s->pump();
  return done;
}

void VolumeManager::attach_metrics(obs::Registry& registry,
                                   const std::string& prefix) {
  obs::set_metric_help(prefix + "_submitted",
                       "Requests accepted into a shard submission queue");
  obs::set_metric_help(prefix + "_completed",
                       "Requests completed (any status)");
  obs::set_metric_help(prefix + "_rejected_budget",
                       "Rejections by the per-tenant in-flight budget");
  obs::set_metric_help(prefix + "_rejected_queue",
                       "Rejections by the shard submission-queue cap");
  obs::set_metric_help(prefix + "_latency_us",
                       "End-to-end latency of request-traced ops per tenant");
  for (int s = 0; s < obs::kStageCount; ++s) {
    obs::set_metric_help(
        prefix + "_stage_" + obs::stage_name(s) + "_us",
        std::string("Request lifecycle stage latency: ") +
            obs::stage_name(s));
  }
  metrics_handle_ =
      registry.add_collector([this, prefix](obs::Collection& c) {
    const ServiceMetrics& m = shared_.metrics;
    c.counter(prefix + "_submitted", m.submitted.value());
    c.counter(prefix + "_completed", m.completed.value());
    c.counter(prefix + "_rejected_budget", m.rejected_budget.value());
    c.counter(prefix + "_rejected_queue", m.rejected_queue.value());
    c.counter(prefix + "_errors", m.errors.value());
    c.gauge(prefix + "_inflight", inflight());
    c.gauge(prefix + "_volumes", volumes());
    c.gauge(prefix + "_shards", static_cast<std::int64_t>(shards_.size()));
    c.histogram(prefix + "_queue_depth", m.queue_depth.snapshot());
    c.histogram(prefix + "_batch_ops", m.batch_ops.snapshot());
    c.histogram(prefix + "_read_latency_us", m.read_latency_us.snapshot());
    c.histogram(prefix + "_write_latency_us", m.write_latency_us.snapshot());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      c.gauge(prefix + "_queued{shard=\"" + std::to_string(s) + "\"}",
              shards_[s]->queued());
    }
    // Service-wide stage decomposition (populated only while request
    // tracing is armed; empty histograms still export for discovery).
    for (int s = 0; s < obs::kStageCount; ++s) {
      c.histogram(prefix + "_stage_" + obs::stage_name(s) + "_us",
                  shared_.metrics.stages.h[s].snapshot());
    }
    const int nvol = volumes();
    std::uint64_t coalesced = 0;
    for (int v = 0; v < nvol; ++v) {
      const Volume& vol = *volumes_[static_cast<std::size_t>(v)];
      const std::string label = "{volume=\"" + std::to_string(v) + "\"}";
      c.counter(prefix + "_ops" + label, vol.ops_completed());
      c.counter(prefix + "_blocks" + label, vol.blocks_io());
      c.counter(prefix + "_io_errors" + label, vol.io_errors());
      coalesced += vol.coalesced_runs();
      // Per-volume stages carry data only once a traced op completed
      // on this volume; skip empty ones to keep the exposition lean.
      for (int s = 0; s < obs::kStageCount; ++s) {
        auto snap = vol.stages().h[s].snapshot();
        if (snap.count == 0) continue;
        c.histogram(prefix + "_stage_" + obs::stage_name(s) + "_us" + label,
                    std::move(snap));
      }
    }
    c.counter(prefix + "_coalesced_runs", coalesced);
    for (TenantId t = 0; t < kMaxTenants; ++t) {
      const auto ti = static_cast<std::size_t>(t);
      const std::uint64_t done = shared_.tenant_completed[ti].value();
      const std::int64_t inf =
          shared_.tenant_inflight[ti].load(std::memory_order_relaxed);
      if (done == 0 && inf == 0) continue;  // never-seen tenants stay out
      const std::string label = "{tenant=\"" + std::to_string(t) + "\"}";
      c.counter(prefix + "_tenant_completed" + label, done);
      c.gauge(prefix + "_tenant_inflight" + label, inf);
      if (const TenantObs* to =
              shared_.tenant_obs[ti].load(std::memory_order_acquire)) {
        c.histogram(prefix + "_latency_us" + label,
                    to->latency_us.snapshot());
        for (int s = 0; s < obs::kStageCount; ++s) {
          auto snap = to->stages.h[s].snapshot();
          if (snap.count == 0) continue;
          c.histogram(
              prefix + "_stage_" + obs::stage_name(s) + "_us" + label,
              std::move(snap));
        }
      }
    }
  });
}

obs::HistogramSnapshot VolumeManager::tenant_latency(TenantId tenant) const {
  if (tenant < 0 || tenant >= kMaxTenants) return {};
  const TenantObs* to =
      shared_.tenant_obs[static_cast<std::size_t>(tenant)].load(
          std::memory_order_acquire);
  return to ? to->latency_us.snapshot() : obs::HistogramSnapshot{};
}

std::vector<TenantId> VolumeManager::traced_tenants() const {
  std::vector<TenantId> out;
  for (TenantId t = 0; t < kMaxTenants; ++t) {
    if (shared_.tenant_obs[static_cast<std::size_t>(t)].load(
            std::memory_order_acquire) != nullptr) {
      out.push_back(t);
    }
  }
  return out;
}

void VolumeManager::attach_volume_metrics(obs::Registry& registry) {
  const int nvol = volumes();
  for (int v = 0; v < nvol; ++v) {
    Volume& vol = *volumes_[static_cast<std::size_t>(v)];
    const std::string label = "volume=\"" + std::to_string(v) + "\"";
    vol.array().attach_metrics(registry, "disk_array", label);
    if (vol.controller()) {
      vol.controller()->attach_metrics(registry, "controller", label);
    }
  }
}

}  // namespace c56::svc
