#pragma once
// Open-loop load generator for the block service: many small
// sequential streams (the "100k streams" shape of the service bench)
// spread across many volumes and tenants, driven through
// VolumeManager::submit as fast as the admission control admits them.
//
// Streams are carved from sim::make_workload arrival schedules — one
// Poisson process per volume, merged by issue time across volumes — so
// the submit order interleaves volumes and tenants the way concurrent
// clients would, while each stream still issues its own requests in
// order (the per-tenant FIFO the service preserves). Stream s owns the
// extent [s*requests_per_stream, (s+1)*requests_per_stream) of its
// volume, so a stream is a short sequential burst: exactly the unit
// the shard's queue-depth-aware batching should coalesce under load.
//
// Two throughputs come back, matching the other benches: in-memory
// wall clock over the submit+drain interval, and a device-model figure
// that prices the counted DiskArray I/O through sim::DiskParams (one
// head reposition per run, transfer time per byte) — the deterministic
// number the CI gates compare.

#include <cstdint>
#include <vector>

#include "codes/registry.hpp"
#include "service/volume_manager.hpp"

namespace c56::svc {

struct LoadParams {
  int volumes = 64;
  int tenants = 64;
  /// Requested stream count; rounded up so every volume hosts the same
  /// number of streams (the actual count lands in LoadStats::streams).
  std::int64_t streams = 100000;
  int requests_per_stream = 2;
  /// Fraction of requests that read back a stream block instead of
  /// writing one (0 = pure write load).
  double read_fraction = 0.0;
  std::size_t block_bytes = 512;
  CodeId code = CodeId::kCode56;
  int p = 7;
  std::size_t cache_stripes = 0;  // 0 = stripe cache off
  /// Mean arrival rate of each volume's Poisson schedule. Shapes the
  /// interleave only — submission is open-loop (no pacing).
  double iops = 20000.0;
  std::uint64_t seed = 1;
};

struct LoadStats {
  std::int64_t streams = 0;
  std::int64_t requests = 0;
  std::int64_t payload_bytes = 0;
  /// kQueueFull rejections absorbed by the resubmit loop (backpressure
  /// events, not failures).
  std::int64_t rejected = 0;
  std::uint64_t errors = 0;  // completions with status != kOk
  double wall_s = 0;
  double mbps = 0;          // payload over submit+drain wall clock
  std::uint64_t device_runs = 0;
  std::uint64_t device_bytes = 0;
  double device_mbps = 0;   // counted I/O priced via sim::DiskParams
  double p50_us = 0, p95_us = 0, p99_us = 0;  // completion latency
  std::uint64_t max_us = 0;
};

/// Create `params.volumes` identical volumes in `mgr`, each sized to
/// hold its share of the streams (ceil so the last stripe may carry
/// slack). Returns the ids (dense, creation order).
std::vector<VolumeId> create_stream_volumes(VolumeManager& mgr,
                                            const LoadParams& params);

/// Drive the stream load through `mgr` (volumes must have been created
/// by create_stream_volumes with the same params) and block until every
/// request completes.
LoadStats run_stream_load(VolumeManager& mgr, const LoadParams& params);

}  // namespace c56::svc
