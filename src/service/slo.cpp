#include "service/slo.hpp"

#include <algorithm>
#include <cmath>

#include "util/env.hpp"

namespace c56::svc {

SloTracker::SloTracker(VolumeManager& mgr, SloConfig cfg)
    : mgr_(mgr), cfg_(cfg) {
  if (const auto v = util::env_int("C56_SLO_P99_US", 1, 60'000'000)) {
    cfg_.target_p99_us = static_cast<std::uint64_t>(*v);
  }
  cfg_.objective = std::clamp(cfg_.objective, 0.0, 0.999999);
}

void SloTracker::update() {
  const std::vector<TenantId> tenants = mgr_.traced_tenants();
  std::lock_guard lk(mu_);
  for (const TenantId t : tenants) {
    const obs::HistogramSnapshot cur = mgr_.tenant_latency(t);
    State& st = tenants_[t];
    st.cur.tenant = t;
    const obs::HistogramSnapshot delta = cur.minus(st.prev);
    st.cur.interval_count = delta.count;
    if (delta.count > 0) {
      st.cur.interval_p99_us = delta.p99;
      const double viol = delta.count_above(cfg_.target_p99_us);
      st.cur.violation_frac = viol / static_cast<double>(delta.count);
      st.cur.burn_rate = st.cur.violation_frac / (1.0 - cfg_.objective);
      st.cur.total_violations += viol;
    } else {
      // Quiet interval: no traffic means no budget burn.
      st.cur.interval_p99_us = 0.0;
      st.cur.violation_frac = 0.0;
      st.cur.burn_rate = 0.0;
    }
    st.cur.total_count = cur.count;
    st.prev = cur;
  }
}

std::vector<SloTracker::TenantSlo> SloTracker::snapshot() const {
  std::lock_guard lk(mu_);
  std::vector<TenantSlo> out;
  out.reserve(tenants_.size());
  for (const auto& [t, st] : tenants_) out.push_back(st.cur);
  return out;
}

void SloTracker::attach_metrics(obs::Registry& registry,
                                const std::string& prefix) {
  obs::set_metric_help(prefix + "_target_us",
                       "SLO latency target in microseconds");
  obs::set_metric_help(prefix + "_p99_us",
                       "Interval p99 latency of traced requests per tenant");
  obs::set_metric_help(
      prefix + "_burn_x1000",
      "Error-budget burn rate x1000 (1000 = sustainable rate)");
  obs::set_metric_help(prefix + "_requests",
                       "Lifetime traced completions per tenant");
  obs::set_metric_help(prefix + "_violations",
                       "Lifetime estimated SLO violations per tenant");
  handle_ = registry.add_collector([this, prefix](obs::Collection& c) {
    c.gauge(prefix + "_target_us",
            static_cast<std::int64_t>(cfg_.target_p99_us));
    std::lock_guard lk(mu_);
    for (const auto& [t, st] : tenants_) {
      const std::string label = "{tenant=\"" + std::to_string(t) + "\"}";
      c.gauge(prefix + "_p99_us" + label,
              static_cast<std::int64_t>(std::llround(st.cur.interval_p99_us)));
      c.gauge(prefix + "_burn_x1000" + label,
              static_cast<std::int64_t>(
                  std::llround(st.cur.burn_rate * 1000.0)));
      c.counter(prefix + "_requests" + label, st.cur.total_count);
      c.counter(prefix + "_violations" + label,
                static_cast<std::uint64_t>(
                    std::llround(st.cur.total_violations)));
    }
  });
}

}  // namespace c56::svc
