#include "service/shard.hpp"

#include <algorithm>
#include <chrono>

#include "xorblk/pool.hpp"

namespace c56::svc {

Shard::Shard(int id, ServiceShared& shared) : id_(id), shared_(shared) {}

Shard::~Shard() { stop(); }

void Shard::start() {
  worker_ = std::thread([this] { loop(); });
}

void Shard::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  // Threaded shards drained everything before exiting; in manual-pump
  // mode whatever is still queued completes as kShutdown so no
  // accepted request ever goes unanswered.
  std::vector<QueuedOp> rest;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [tenant, q] : tenants_) {
      for (QueuedOp& op : q.ops) rest.push_back(std::move(op));
      q.ops.clear();
      q.active = false;
      q.deficit = 0;
    }
    ring_.clear();
    queued_.fetch_sub(static_cast<std::int64_t>(rest.size()),
                      std::memory_order_relaxed);
  }
  for (QueuedOp& op : rest) {
    op.result = Status::kShutdown;
    finish(op);
  }
}

Status Shard::enqueue(QueuedOp&& op) {
  const TenantId tenant = op.req.tenant;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) return Status::kShutdown;
    if (queued_.load(std::memory_order_relaxed) >=
        shared_.cfg.shard_queue_cap) {
      return Status::kQueueFull;
    }
    TenantQueue& q = tenants_[tenant];
    q.ops.push_back(std::move(op));
    if (!q.active) {
      q.active = true;
      ring_.push_back(tenant);
    }
    queued_.fetch_add(1, std::memory_order_relaxed);
  }
  cv_.notify_one();
  return Status::kOk;
}

void Shard::drain_locked(std::vector<QueuedOp>& out) {
  const auto max_batch = static_cast<std::size_t>(shared_.cfg.max_batch);
  const std::int64_t quantum = shared_.cfg.quantum_blocks;
  while (!ring_.empty() && out.size() < max_batch) {
    const TenantId tenant = ring_.front();
    ring_.pop_front();
    TenantQueue& q = tenants_[tenant];
    q.deficit += quantum;
    while (!q.ops.empty() && out.size() < max_batch &&
           q.ops.front().cost <= q.deficit) {
      q.deficit -= q.ops.front().cost;
      out.push_back(std::move(q.ops.front()));
      q.ops.pop_front();
    }
    if (q.ops.empty()) {
      // Leaving the ring forfeits the remaining deficit (classic DRR:
      // credit only accumulates while backlogged).
      q.deficit = 0;
      q.active = false;
    } else {
      ring_.push_back(tenant);
    }
  }
  queued_.fetch_sub(static_cast<std::int64_t>(out.size()),
                    std::memory_order_relaxed);
}

std::size_t Shard::run_batch(std::vector<QueuedOp>& batch) {
  if (batch.empty()) return 0;
  if (obs::metrics_enabled()) {
    shared_.metrics.batch_ops.observe(batch.size());
  }
  // Group by volume; stable so per-tenant FIFO survives within each
  // volume (the ordering contract). Each group executes as one batch
  // through the volume's coalescing planner, then completes.
  std::stable_sort(batch.begin(), batch.end(),
                   [](const QueuedOp& a, const QueuedOp& b) {
                     return a.req.volume < b.req.volume;
                   });
  std::size_t i = 0;
  while (i < batch.size()) {
    std::size_t j = i;
    while (j < batch.size() && batch[j].req.volume == batch[i].req.volume) {
      ++j;
    }
    batch[i].volume->execute({batch.data() + i, j - i});
    for (std::size_t k = i; k < j; ++k) finish(batch[k]);
    i = j;
  }
  return batch.size();
}

void Shard::finish(QueuedOp& op) {
  const auto us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - op.submitted)
          .count());
  if (obs::metrics_enabled()) {
    auto& h = (op.req.kind == OpKind::kRead ||
               op.req.kind == OpKind::kReadRange)
                  ? shared_.metrics.read_latency_us
                  : shared_.metrics.write_latency_us;
    h.observe(us);
  }
  shared_.metrics.completed.inc();
  if (op.result != Status::kOk) shared_.metrics.errors.inc();
  shared_.tenant_completed[static_cast<std::size_t>(op.req.tenant)].inc();
  if (op.req.on_complete) op.req.on_complete({op.result, us});
  shared_.tenant_inflight[static_cast<std::size_t>(op.req.tenant)].fetch_sub(
      1, std::memory_order_relaxed);
  // Release the global in-flight count last; the waiter side of
  // drain() reads it under drain_mu, so lock/notify here closes the
  // missed-wakeup window.
  if (shared_.total_inflight.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lk(shared_.drain_mu);
    shared_.drain_cv.notify_all();
  }
}

std::size_t Shard::pump() {
  std::vector<QueuedOp> batch;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!ring_.empty() && obs::metrics_enabled()) {
      shared_.metrics.queue_depth.observe(
          static_cast<std::uint64_t>(queued_.load(std::memory_order_relaxed)));
    }
    drain_locked(batch);
  }
  return run_batch(batch);
}

void Shard::loop() {
  std::vector<QueuedOp> batch;
  batch.reserve(static_cast<std::size_t>(shared_.cfg.max_batch));
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (ring_.empty() && !stopping_) {
      // Idle: give back peak-sized staging buffers before sleeping
      // (the BufferPool high-watermark hook).
      lk.unlock();
      BufferPool::local().trim(shared_.cfg.idle_trim_bytes);
      lk.lock();
      cv_.wait(lk, [&] { return stopping_ || !ring_.empty(); });
    }
    if (ring_.empty()) break;  // stopping_ && drained
    if (obs::metrics_enabled()) {
      shared_.metrics.queue_depth.observe(
          static_cast<std::uint64_t>(queued_.load(std::memory_order_relaxed)));
    }
    batch.clear();
    drain_locked(batch);
    lk.unlock();
    run_batch(batch);
    lk.lock();
  }
}

}  // namespace c56::svc
