#include "service/shard.hpp"

#include <algorithm>
#include <chrono>

#include "obs/reqtrace.hpp"
#include "obs/trace.hpp"
#include "xorblk/pool.hpp"

namespace c56::svc {

Shard::Shard(int id, ServiceShared& shared) : id_(id), shared_(shared) {}

Shard::~Shard() { stop(); }

void Shard::start() {
  worker_ = std::thread([this] { loop(); });
}

void Shard::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  // Threaded shards drained everything before exiting; in manual-pump
  // mode whatever is still queued completes as kShutdown so no
  // accepted request ever goes unanswered.
  std::vector<QueuedOp> rest;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [tenant, q] : tenants_) {
      for (QueuedOp& op : q.ops) rest.push_back(std::move(op));
      q.ops.clear();
      q.active = false;
      q.deficit = 0;
    }
    ring_.clear();
    queued_.fetch_sub(static_cast<std::int64_t>(rest.size()),
                      std::memory_order_relaxed);
  }
  for (QueuedOp& op : rest) {
    op.result = Status::kShutdown;
    finish(op);
  }
}

Status Shard::enqueue(QueuedOp&& op) {
  const TenantId tenant = op.req.tenant;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) return Status::kShutdown;
    if (queued_.load(std::memory_order_relaxed) >=
        shared_.cfg.shard_queue_cap) {
      return Status::kQueueFull;
    }
    TenantQueue& q = tenants_[tenant];
    q.ops.push_back(std::move(op));
    if (!q.active) {
      q.active = true;
      ring_.push_back(tenant);
    }
    queued_.fetch_add(1, std::memory_order_relaxed);
  }
  cv_.notify_one();
  return Status::kOk;
}

void Shard::drain_locked(std::vector<QueuedOp>& out, std::uint64_t wake_us) {
  const auto max_batch = static_cast<std::size_t>(shared_.cfg.max_batch);
  const std::int64_t quantum = shared_.cfg.quantum_blocks;
  while (!ring_.empty() && out.size() < max_batch) {
    const TenantId tenant = ring_.front();
    ring_.pop_front();
    TenantQueue& q = tenants_[tenant];
    q.deficit += quantum;
    while (!q.ops.empty() && out.size() < max_batch &&
           q.ops.front().cost <= q.deficit) {
      q.deficit -= q.ops.front().cost;
      out.push_back(std::move(q.ops.front()));
      q.ops.pop_front();
      if (QueuedOp& op = out.back(); op.rt.trace_id != 0) {
        // queue_wait ends at the pass's wakeup; sched_wait is the DRR
        // time until this op's pop. If tracing was disarmed after this
        // op was admitted (wake_us == 0), fold sched_wait into zero.
        op.rt.t_drain_us = obs::now_us();
        op.rt.t_wake_us = wake_us != 0 ? wake_us : op.rt.t_drain_us;
      }
    }
    if (q.ops.empty()) {
      // Leaving the ring forfeits the remaining deficit (classic DRR:
      // credit only accumulates while backlogged).
      q.deficit = 0;
      q.active = false;
    } else {
      ring_.push_back(tenant);
    }
  }
  queued_.fetch_sub(static_cast<std::int64_t>(out.size()),
                    std::memory_order_relaxed);
}

std::size_t Shard::run_batch(std::vector<QueuedOp>& batch) {
  if (batch.empty()) return 0;
  if (obs::metrics_enabled()) {
    shared_.metrics.batch_ops.observe(batch.size());
  }
  // Group by volume; stable so per-tenant FIFO survives within each
  // volume (the ordering contract). Each group executes as one batch
  // through the volume's coalescing planner, then completes.
  std::stable_sort(batch.begin(), batch.end(),
                   [](const QueuedOp& a, const QueuedOp& b) {
                     return a.req.volume < b.req.volume;
                   });
  std::size_t i = 0;
  while (i < batch.size()) {
    std::size_t j = i;
    bool traced = false;
    while (j < batch.size() && batch[j].req.volume == batch[i].req.volume) {
      traced = traced || batch[j].rt.trace_id != 0;
      ++j;
    }
    // Traced ops share the group's execute wall and its counted device
    // time: the batch executor coalesces across them, so finer-than-
    // group attribution would be fiction.
    std::uint64_t t0 = 0, dev0 = 0;
    if (traced) {
      dev0 = obs::device_accum_ns();
      t0 = obs::now_us();
    }
    batch[i].volume->execute({batch.data() + i, j - i});
    if (traced) {
      const std::uint64_t t1 = obs::now_us();
      const std::uint64_t dev = obs::device_accum_ns() - dev0;
      for (std::size_t k = i; k < j; ++k) {
        if (batch[k].rt.trace_id == 0) continue;
        batch[k].rt.t_exec_start_us = t0;
        batch[k].rt.t_exec_end_us = t1;
        batch[k].rt.device_ns = dev;
      }
    }
    for (std::size_t k = i; k < j; ++k) finish(batch[k]);
    i = j;
  }
  return batch.size();
}

void Shard::finish(QueuedOp& op) {
  const auto now = std::chrono::steady_clock::now();
  const auto us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now -
                                                            op.submitted)
          .count());
  if (op.rt.trace_id != 0) {
    record_request_obs(
        op, static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    now.time_since_epoch())
                    .count()));
  }
  if (obs::metrics_enabled()) {
    auto& h = (op.req.kind == OpKind::kRead ||
               op.req.kind == OpKind::kReadRange)
                  ? shared_.metrics.read_latency_us
                  : shared_.metrics.write_latency_us;
    h.observe(us);
  }
  shared_.metrics.completed.inc();
  if (op.result != Status::kOk) shared_.metrics.errors.inc();
  shared_.tenant_completed[static_cast<std::size_t>(op.req.tenant)].inc();
  if (op.req.on_complete) op.req.on_complete({op.result, us});
  shared_.tenant_inflight[static_cast<std::size_t>(op.req.tenant)].fetch_sub(
      1, std::memory_order_relaxed);
  // Release the global in-flight count last; the waiter side of
  // drain() reads it under drain_mu, so lock/notify here closes the
  // missed-wakeup window.
  if (shared_.total_inflight.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lk(shared_.drain_mu);
    shared_.drain_cv.notify_all();
  }
}

void Shard::record_request_obs(QueuedOp& op, std::uint64_t t_finish_us) {
  const ReqTimes& rt = op.rt;
  // Never executed (kShutdown leftovers): there is no lifecycle to
  // decompose, and recording a partial one would skew the stage sums
  // away from the end-to-end histogram.
  if (rt.t_exec_end_us == 0) return;
  const auto sat = [](std::uint64_t a, std::uint64_t b) {
    return a > b ? a - b : 0;
  };
  std::uint64_t stage_us[obs::kStageCount];
  stage_us[0] = sat(rt.t_wake_us, rt.t_submit_us);        // queue_wait
  stage_us[1] = sat(rt.t_drain_us, rt.t_wake_us);         // sched_wait
  stage_us[2] = sat(rt.t_exec_start_us, rt.t_drain_us);   // batch_assembly
  const std::uint64_t exec_wall = sat(rt.t_exec_end_us, rt.t_exec_start_us);
  stage_us[4] = std::min(rt.device_ns / 1000, exec_wall);  // device
  stage_us[3] = exec_wall - stage_us[4];                   // planner
  stage_us[5] = sat(t_finish_us, rt.t_exec_end_us);        // complete
  const std::uint64_t e2e_us = sat(t_finish_us, rt.t_submit_us);

  const TenantId tenant = op.req.tenant;
  if (obs::metrics_enabled()) {
    TenantObs& to = shared_.tenant_obs_for(tenant);
    to.latency_us.observe(e2e_us);
    for (int s = 0; s < obs::kStageCount; ++s) {
      shared_.metrics.stages.h[s].observe(stage_us[s]);
      to.stages.h[s].observe(stage_us[s]);
      op.volume->stages().h[s].observe(stage_us[s]);
    }
  }

  const std::int64_t bytes =
      op.req.kind == OpKind::kRead || op.req.kind == OpKind::kWrite
          ? op.req.count *
                static_cast<std::int64_t>(op.volume->block_bytes())
          : static_cast<std::int64_t>(op.req.kind == OpKind::kReadRange
                                          ? op.req.out.size()
                                          : op.req.in.size());

  obs::SlowRequest slow;
  slow.trace_id = rt.trace_id;
  slow.tenant = tenant;
  slow.volume = op.req.volume;
  slow.op = static_cast<std::int32_t>(op.req.kind);
  slow.result = static_cast<std::int32_t>(op.result);
  slow.logical = op.req.logical;
  slow.bytes = bytes;
  slow.t_submit_us = rt.t_submit_us;
  slow.latency_us = e2e_us;
  for (int s = 0; s < obs::kStageCount; ++s) slow.stage_us[s] = stage_us[s];
  obs::SlowRequestRing::global().offer(slow);

  if (obs::trace_enabled()) {
    // Full span tree: one root "request" span plus six stage children.
    auto& rec = obs::TraceRecorder::global();
    const std::uint64_t tid = static_cast<std::uint64_t>(id_);
    obs::TraceSpan root;
    root.name = "request";
    root.start_us = rt.t_submit_us;
    root.dur_us = e2e_us;
    root.tid = tid;
    root.trace_id = rt.trace_id;
    root.span_id = obs::next_span_id();
    root.tenant = tenant;
    root.volume = op.req.volume;
    root.bytes = bytes;
    const std::uint64_t root_span = root.span_id;
    rec.record(std::move(root));
    // planner and device both start at the group's execute window (they
    // partition it); every other stage starts at its own timestamp.
    const std::uint64_t starts[obs::kStageCount] = {
        rt.t_submit_us,     rt.t_wake_us,       rt.t_drain_us,
        rt.t_exec_start_us, rt.t_exec_start_us, rt.t_exec_end_us};
    for (int s = 0; s < obs::kStageCount; ++s) {
      obs::TraceSpan child;
      child.name = obs::stage_name(s);
      child.start_us = starts[s];
      child.dur_us = stage_us[s];
      child.tid = tid;
      child.trace_id = rt.trace_id;
      child.span_id = obs::next_span_id();
      child.parent_id = root_span;
      rec.record(std::move(child));
    }
  }
}

std::size_t Shard::pump() {
  std::vector<QueuedOp> batch;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!ring_.empty() && obs::metrics_enabled()) {
      shared_.metrics.queue_depth.observe(
          static_cast<std::uint64_t>(queued_.load(std::memory_order_relaxed)));
    }
    drain_locked(batch, obs::req_trace_enabled() ? obs::now_us() : 0);
  }
  return run_batch(batch);
}

void Shard::loop() {
  std::vector<QueuedOp> batch;
  batch.reserve(static_cast<std::size_t>(shared_.cfg.max_batch));
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (ring_.empty() && !stopping_) {
      // Idle: give back peak-sized staging buffers before sleeping
      // (the BufferPool high-watermark hook).
      lk.unlock();
      BufferPool::local().trim(shared_.cfg.idle_trim_bytes);
      lk.lock();
      cv_.wait(lk, [&] { return stopping_ || !ring_.empty(); });
    }
    if (ring_.empty()) break;  // stopping_ && drained
    if (obs::metrics_enabled()) {
      shared_.metrics.queue_depth.observe(
          static_cast<std::uint64_t>(queued_.load(std::memory_order_relaxed)));
    }
    batch.clear();
    drain_locked(batch, obs::req_trace_enabled() ? obs::now_us() : 0);
    lk.unlock();
    run_batch(batch);
    lk.lock();
  }
}

}  // namespace c56::svc
