#pragma once
// Kernel registry behind the xor.hpp entry points. Each XorKernel is a
// complete, self-contained implementation of the five block primitives
// for one ISA. The registry is built once at first use: compile-time
// architecture gating decides which variants exist in the binary
// (CMake probes the intrinsics; -DC56_DISABLE_SIMD=ON compiles them
// out), and a runtime CPUID probe decides which of those the machine
// can actually execute. Dispatch rules, in order:
//
//   1. C56_DISABLE_SIMD build flag        -> scalar only, nothing else
//      exists in the binary.
//   2. C56_XOR_KERNEL=<name> environment  -> that variant, if present
//      and runnable; unknown or unsupported names fall back to rule 3.
//   3. Widest runnable vector ISA (avx512 > avx2 > neon), else scalar.
//
// The scalar kernel is always present and is the differential-testing
// reference for every vector variant (tests/xor_kernel_test.cpp).

#include <cstddef>
#include <cstdint>
#include <span>

namespace c56 {

enum class XorIsa : std::uint8_t { kScalar, kAvx2, kAvx512, kNeon };

const char* to_string(XorIsa isa) noexcept;

struct XorKernel {
  XorIsa isa = XorIsa::kScalar;
  const char* name = "scalar";
  void (*xor_into)(void* dst, const void* src, std::size_t n) = nullptr;
  void (*xor_to)(void* dst, const void* a, const void* b,
                 std::size_t n) = nullptr;
  // dst ^= a ^ b in one pass — the incremental parity-update primitive
  // (parity ^= new_data ^ old_data without materializing the delta).
  void (*xor_delta)(void* dst, const void* a, const void* b,
                    std::size_t n) = nullptr;
  void (*xor_accumulate)(void* dst, const void* const* srcs,
                         std::size_t nsrcs, std::size_t n) = nullptr;
  bool (*all_zero)(const void* p, std::size_t n) = nullptr;
};

/// The 64-bit-lane reference kernel (always present).
const XorKernel& scalar_kernel() noexcept;

/// Every kernel compiled into this binary that the running CPU can
/// execute, scalar first. The differential tests and the throughput
/// bench iterate this.
std::span<const XorKernel> available_kernels() noexcept;

/// The kernel the xor.hpp entry points dispatch to (rules above).
const XorKernel& active_kernel() noexcept;

// Vector variants, defined when the build carries them (internal; the
// registry wires them up). Null function pointers mean "not compiled".
const XorKernel* avx2_kernel_if_built() noexcept;
const XorKernel* avx512_kernel_if_built() noexcept;
const XorKernel* neon_kernel_if_built() noexcept;

}  // namespace c56
