#include "xorblk/kernel.hpp"

#include <cstdlib>
#include <cstring>
#include <string>

#include "util/env.hpp"

namespace c56 {

const char* to_string(XorIsa isa) noexcept {
  switch (isa) {
    case XorIsa::kScalar:
      return "scalar";
    case XorIsa::kAvx2:
      return "avx2";
    case XorIsa::kAvx512:
      return "avx512";
    case XorIsa::kNeon:
      return "neon";
  }
  return "?";
}

namespace {

// ---------------------------------------------------------------------
// Scalar reference kernel: eight 64-bit lanes per iteration, byte tail.
// memcpy keeps it strict-aliasing clean and compiles to plain
// loads/stores.
// ---------------------------------------------------------------------

void scalar_xor_into(void* dst, const void* src, std::size_t n) {
  auto* d = static_cast<std::uint8_t*>(dst);
  const auto* s = static_cast<const std::uint8_t*>(src);
  while (n >= 64) {
    std::uint64_t a[8], b[8];
    std::memcpy(a, d, 64);
    std::memcpy(b, s, 64);
    for (int i = 0; i < 8; ++i) a[i] ^= b[i];
    std::memcpy(d, a, 64);
    d += 64;
    s += 64;
    n -= 64;
  }
  while (n >= 8) {
    std::uint64_t a, b;
    std::memcpy(&a, d, 8);
    std::memcpy(&b, s, 8);
    a ^= b;
    std::memcpy(d, &a, 8);
    d += 8;
    s += 8;
    n -= 8;
  }
  for (; n > 0; --n) *d++ ^= *s++;
}

void scalar_xor_to(void* dst, const void* a, const void* b, std::size_t n) {
  auto* d = static_cast<std::uint8_t*>(dst);
  const auto* x = static_cast<const std::uint8_t*>(a);
  const auto* y = static_cast<const std::uint8_t*>(b);
  while (n >= 8) {
    std::uint64_t u, v;
    std::memcpy(&u, x, 8);
    std::memcpy(&v, y, 8);
    u ^= v;
    std::memcpy(d, &u, 8);
    d += 8;
    x += 8;
    y += 8;
    n -= 8;
  }
  for (; n > 0; --n) *d++ = static_cast<std::uint8_t>(*x++ ^ *y++);
}

void scalar_xor_delta(void* dst, const void* a, const void* b,
                      std::size_t n) {
  auto* d = static_cast<std::uint8_t*>(dst);
  const auto* x = static_cast<const std::uint8_t*>(a);
  const auto* y = static_cast<const std::uint8_t*>(b);
  while (n >= 8) {
    std::uint64_t t, u, v;
    std::memcpy(&t, d, 8);
    std::memcpy(&u, x, 8);
    std::memcpy(&v, y, 8);
    t ^= u ^ v;
    std::memcpy(d, &t, 8);
    d += 8;
    x += 8;
    y += 8;
    n -= 8;
  }
  for (; n > 0; --n) *d++ ^= static_cast<std::uint8_t>(*x++ ^ *y++);
}

void scalar_xor_accumulate(void* dst, const void* const* srcs,
                           std::size_t nsrcs, std::size_t n) {
  auto* d = static_cast<std::uint8_t*>(dst);
  if (nsrcs == 0) {
    std::memset(d, 0, n);
    return;
  }
  // All sources are folded per position before dst is written, so dst
  // may alias any source exactly. 32-byte strips keep the source
  // pointers hot without spilling the accumulator.
  std::size_t off = 0;
  for (; off + 32 <= n; off += 32) {
    std::uint64_t acc[4];
    std::memcpy(acc, static_cast<const std::uint8_t*>(srcs[0]) + off, 32);
    for (std::size_t s = 1; s < nsrcs; ++s) {
      std::uint64_t v[4];
      std::memcpy(v, static_cast<const std::uint8_t*>(srcs[s]) + off, 32);
      for (int i = 0; i < 4; ++i) acc[i] ^= v[i];
    }
    std::memcpy(d + off, acc, 32);
  }
  for (; off + 8 <= n; off += 8) {
    std::uint64_t acc;
    std::memcpy(&acc, static_cast<const std::uint8_t*>(srcs[0]) + off, 8);
    for (std::size_t s = 1; s < nsrcs; ++s) {
      std::uint64_t v;
      std::memcpy(&v, static_cast<const std::uint8_t*>(srcs[s]) + off, 8);
      acc ^= v;
    }
    std::memcpy(d + off, &acc, 8);
  }
  for (; off < n; ++off) {
    std::uint8_t acc = static_cast<const std::uint8_t*>(srcs[0])[off];
    for (std::size_t s = 1; s < nsrcs; ++s) {
      acc ^= static_cast<const std::uint8_t*>(srcs[s])[off];
    }
    d[off] = acc;
  }
}

bool scalar_all_zero(const void* p, std::size_t n) {
  const auto* b = static_cast<const std::uint8_t*>(p);
  std::uint64_t acc = 0;
  while (n >= 8) {
    std::uint64_t v;
    std::memcpy(&v, b, 8);
    acc |= v;
    b += 8;
    n -= 8;
  }
  for (; n > 0; --n) acc |= *b++;
  return acc == 0;
}

constexpr XorKernel kScalarKernel{
    XorIsa::kScalar,       "scalar",           &scalar_xor_into,
    &scalar_xor_to,        &scalar_xor_delta,  &scalar_xor_accumulate,
    &scalar_all_zero,
};

// ---------------------------------------------------------------------
// Registry: probe once, then serve immutable tables. The function-local
// static makes initialization thread-safe (and therefore TSan-clean)
// even when the first XOR happens on a worker thread.
// ---------------------------------------------------------------------

struct Registry {
  XorKernel kernels[4];
  std::size_t count = 0;
  const XorKernel* active = nullptr;
};

Registry build_registry() {
  Registry r;
  r.kernels[r.count++] = kScalarKernel;
  if (const XorKernel* k = neon_kernel_if_built()) r.kernels[r.count++] = *k;
  if (const XorKernel* k = avx2_kernel_if_built()) r.kernels[r.count++] = *k;
  if (const XorKernel* k = avx512_kernel_if_built()) r.kernels[r.count++] = *k;

  // Default pick: the last (widest) entry; the order above guarantees
  // avx512 > avx2 > neon > scalar.
  r.active = &r.kernels[r.count - 1];

  if (const char* want = std::getenv("C56_XOR_KERNEL")) {
    bool found = false;
    for (std::size_t i = 0; i < r.count; ++i) {
      if (std::strcmp(r.kernels[i].name, want) == 0) {
        r.active = &r.kernels[i];
        found = true;
        break;
      }
    }
    if (!found) {
      // An unknown name used to be silently ignored, making a typo
      // indistinguishable from a real kernel selection.
      std::string avail;
      for (std::size_t i = 0; i < r.count; ++i) {
        if (i) avail += ", ";
        avail += r.kernels[i].name;
      }
      util::warn_env_once("C56_XOR_KERNEL",
                          std::string("unknown kernel '") + want +
                              "', keeping default '" + r.active->name +
                              "' (available: " + avail + ")");
    }
  }
  return r;
}

const Registry& registry() {
  static const Registry r = build_registry();
  return r;
}

}  // namespace

const XorKernel& scalar_kernel() noexcept { return registry().kernels[0]; }

std::span<const XorKernel> available_kernels() noexcept {
  const Registry& r = registry();
  return {r.kernels, r.count};
}

const XorKernel& active_kernel() noexcept { return *registry().active; }

}  // namespace c56
