#include "xorblk/pool.hpp"

#include <atomic>
#include <mutex>

namespace c56 {

namespace {
// Process-wide aggregates: the per-thread pools are lock-free by
// design, so cross-thread totals are kept in separate relaxed atomics,
// touched only when metrics are enabled (one branch per acquire).
std::atomic<std::uint64_t> g_hits{0};
std::atomic<std::uint64_t> g_misses{0};
// trim() is cold (idle loops only), so its byte total is unconditional.
std::atomic<std::uint64_t> g_trimmed{0};

// Directory of live per-thread pools, so total_retained_bytes() can
// sum their pooled_bytes_ atomics from the snapshot thread. Leaked on
// purpose: thread_local pools may be destroyed during static teardown,
// after a non-leaked directory would already be gone.
struct PoolDirectory {
  std::mutex mu;
  std::vector<BufferPool*> pools;
};

PoolDirectory& directory() noexcept {
  static PoolDirectory* d = new PoolDirectory;
  return *d;
}
}  // namespace

BufferPool& BufferPool::local() noexcept {
  thread_local BufferPool pool;
  return pool;
}

BufferPool::BufferPool() {
  PoolDirectory& d = directory();
  std::lock_guard<std::mutex> lk(d.mu);
  d.pools.push_back(this);
}

BufferPool::~BufferPool() {
  PoolDirectory& d = directory();
  std::lock_guard<std::mutex> lk(d.mu);
  std::erase(d.pools, this);
}

std::uint64_t BufferPool::global_hits() noexcept {
  return g_hits.load(std::memory_order_relaxed);
}

std::uint64_t BufferPool::global_misses() noexcept {
  return g_misses.load(std::memory_order_relaxed);
}

std::uint64_t BufferPool::total_retained_bytes() noexcept {
  PoolDirectory& d = directory();
  std::lock_guard<std::mutex> lk(d.mu);
  std::uint64_t total = 0;
  for (const BufferPool* p : d.pools) total += p->pooled_bytes();
  return total;
}

std::uint64_t BufferPool::total_trimmed_bytes() noexcept {
  return g_trimmed.load(std::memory_order_relaxed);
}

Buffer BufferPool::acquire(std::size_t size) {
  for (Bucket& b : buckets_) {
    if (b.size == size && !b.free.empty()) {
      Buffer out = std::move(b.free.back());
      b.free.pop_back();
      pooled_bytes_.fetch_sub(size, std::memory_order_relaxed);
      ++hits_;
      if (obs::metrics_enabled()) {
        g_hits.fetch_add(1, std::memory_order_relaxed);
      }
      return out;
    }
  }
  ++misses_;
  if (obs::metrics_enabled()) {
    g_misses.fetch_add(1, std::memory_order_relaxed);
  }
  return Buffer(size);
}

void BufferPool::release(Buffer&& b) noexcept {
  const std::size_t size = b.size();
  if (size == 0 || pooled_bytes() + size > kMaxPooledBytes) return;
  for (Bucket& bucket : buckets_) {
    if (bucket.size == size) {
      bucket.free.push_back(std::move(b));
      pooled_bytes_.fetch_add(size, std::memory_order_relaxed);
      return;
    }
  }
  buckets_.push_back({size, {}});
  buckets_.back().free.push_back(std::move(b));
  pooled_bytes_.fetch_add(size, std::memory_order_relaxed);
}

void BufferPool::trim(std::size_t keep_bytes) noexcept {
  std::size_t pooled = pooled_bytes();
  if (pooled <= keep_bytes) return;
  const std::size_t before = pooled;
  // Largest sizes first: the peak-sized stripe staging buffers are the
  // ones worth giving back; block-sized buffers barely register.
  do {
    Bucket* victim = nullptr;
    std::size_t largest = 0;
    for (Bucket& b : buckets_) {
      if (!b.free.empty() && b.size > largest) {
        largest = b.size;
        victim = &b;
      }
    }
    if (!victim) break;
    while (!victim->free.empty() && pooled > keep_bytes) {
      victim->free.pop_back();
      pooled -= victim->size;
    }
  } while (pooled > keep_bytes);
  pooled_bytes_.store(pooled, std::memory_order_relaxed);
  g_trimmed.fetch_add(before - pooled, std::memory_order_relaxed);
}

obs::CollectorHandle attach_pool_metrics(obs::Registry& registry) {
  return registry.add_collector([](obs::Collection& c) {
    c.counter("buffer_pool_hits", BufferPool::global_hits());
    c.counter("buffer_pool_misses", BufferPool::global_misses());
    c.counter("buffer_pool_trimmed_bytes", BufferPool::total_trimmed_bytes());
    c.gauge("buffer_pool_retained_bytes",
            static_cast<std::int64_t>(BufferPool::total_retained_bytes()));
  });
}

}  // namespace c56
