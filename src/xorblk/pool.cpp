#include "xorblk/pool.hpp"

#include <atomic>

namespace c56 {

namespace {
// Process-wide aggregates: the per-thread pools are lock-free by
// design, so cross-thread totals are kept in separate relaxed atomics,
// touched only when metrics are enabled (one branch per acquire).
std::atomic<std::uint64_t> g_hits{0};
std::atomic<std::uint64_t> g_misses{0};
}  // namespace

BufferPool& BufferPool::local() noexcept {
  thread_local BufferPool pool;
  return pool;
}

std::uint64_t BufferPool::global_hits() noexcept {
  return g_hits.load(std::memory_order_relaxed);
}

std::uint64_t BufferPool::global_misses() noexcept {
  return g_misses.load(std::memory_order_relaxed);
}

Buffer BufferPool::acquire(std::size_t size) {
  for (Bucket& b : buckets_) {
    if (b.size == size && !b.free.empty()) {
      Buffer out = std::move(b.free.back());
      b.free.pop_back();
      pooled_bytes_ -= size;
      ++hits_;
      if (obs::metrics_enabled()) {
        g_hits.fetch_add(1, std::memory_order_relaxed);
      }
      return out;
    }
  }
  ++misses_;
  if (obs::metrics_enabled()) {
    g_misses.fetch_add(1, std::memory_order_relaxed);
  }
  return Buffer(size);
}

void BufferPool::release(Buffer&& b) noexcept {
  const std::size_t size = b.size();
  if (size == 0 || pooled_bytes_ + size > kMaxPooledBytes) return;
  for (Bucket& bucket : buckets_) {
    if (bucket.size == size) {
      bucket.free.push_back(std::move(b));
      pooled_bytes_ += size;
      return;
    }
  }
  buckets_.push_back({size, {}});
  buckets_.back().free.push_back(std::move(b));
  pooled_bytes_ += size;
}

obs::CollectorHandle attach_pool_metrics(obs::Registry& registry) {
  return registry.add_collector([](obs::Collection& c) {
    c.counter("buffer_pool_hits", BufferPool::global_hits());
    c.counter("buffer_pool_misses", BufferPool::global_misses());
  });
}

}  // namespace c56
