#include "xorblk/pool.hpp"

namespace c56 {

BufferPool& BufferPool::local() noexcept {
  thread_local BufferPool pool;
  return pool;
}

Buffer BufferPool::acquire(std::size_t size) {
  for (Bucket& b : buckets_) {
    if (b.size == size && !b.free.empty()) {
      Buffer out = std::move(b.free.back());
      b.free.pop_back();
      pooled_bytes_ -= size;
      ++hits_;
      return out;
    }
  }
  ++misses_;
  return Buffer(size);
}

void BufferPool::release(Buffer&& b) noexcept {
  const std::size_t size = b.size();
  if (size == 0 || pooled_bytes_ + size > kMaxPooledBytes) return;
  for (Bucket& bucket : buckets_) {
    if (bucket.size == size) {
      bucket.free.push_back(std::move(b));
      pooled_bytes_ += size;
      return;
    }
  }
  buckets_.push_back({size, {}});
  buckets_.back().free.push_back(std::move(b));
  pooled_bytes_ += size;
}

}  // namespace c56
