#include "xorblk/buffer.hpp"

#include <algorithm>
#include <cstring>

namespace c56 {

Buffer::Buffer(std::size_t size, std::uint8_t fill)
    : bytes_(new std::uint8_t[size]), size_(size) {
  std::memset(bytes_.get(), fill, size);
}

Buffer::Buffer(const Buffer& other)
    : bytes_(other.size_ ? new std::uint8_t[other.size_] : nullptr),
      size_(other.size_) {
  if (size_ > 0) std::memcpy(bytes_.get(), other.bytes_.get(), size_);
}

Buffer& Buffer::operator=(const Buffer& other) {
  if (this == &other) return *this;
  Buffer tmp(other);
  std::swap(bytes_, tmp.bytes_);
  std::swap(size_, tmp.size_);
  return *this;
}

void Buffer::zero() noexcept {
  if (size_ > 0) std::memset(bytes_.get(), 0, size_);
}

bool operator==(const Buffer& a, const Buffer& b) noexcept {
  return a.size_ == b.size_ &&
         (a.size_ == 0 ||
          std::memcmp(a.bytes_.get(), b.bytes_.get(), a.size_) == 0);
}

}  // namespace c56
