#include "xorblk/xor.hpp"

#include <cassert>

#include "xorblk/kernel.hpp"

namespace c56 {

void xor_into(void* dst, const void* src, std::size_t n) noexcept {
  active_kernel().xor_into(dst, src, n);
}

void xor_to(void* dst, const void* a, const void* b, std::size_t n) noexcept {
  active_kernel().xor_to(dst, a, b, n);
}

void xor_delta_into(void* dst, const void* a, const void* b,
                    std::size_t n) noexcept {
  active_kernel().xor_delta(dst, a, b, n);
}

void xor_accumulate(void* dst, const void* const* srcs, std::size_t nsrcs,
                    std::size_t n) noexcept {
  active_kernel().xor_accumulate(dst, srcs, nsrcs, n);
}

bool all_zero(const void* p, std::size_t n) noexcept {
  return active_kernel().all_zero(p, n);
}

void xor_into(std::span<std::uint8_t> dst,
              std::span<const std::uint8_t> src) noexcept {
  assert(dst.size() == src.size());
  xor_into(dst.data(), src.data(), dst.size());
}

void xor_to(std::span<std::uint8_t> dst, std::span<const std::uint8_t> a,
            std::span<const std::uint8_t> b) noexcept {
  assert(dst.size() == a.size());
  assert(dst.size() == b.size());
  xor_to(dst.data(), a.data(), b.data(), dst.size());
}

void xor_delta_into(std::span<std::uint8_t> dst, std::span<const std::uint8_t> a,
                    std::span<const std::uint8_t> b) noexcept {
  assert(dst.size() == a.size());
  assert(dst.size() == b.size());
  xor_delta_into(dst.data(), a.data(), b.data(), dst.size());
}

void xor_accumulate(std::span<std::uint8_t> dst,
                    std::span<const std::uint8_t* const> srcs) noexcept {
  xor_accumulate(dst.data(),
                 reinterpret_cast<const void* const*>(srcs.data()),
                 srcs.size(), dst.size());
}

bool all_zero(std::span<const std::uint8_t> s) noexcept {
  return all_zero(s.data(), s.size());
}

}  // namespace c56
