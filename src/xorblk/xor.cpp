#include "xorblk/xor.hpp"

#include <cassert>
#include <cstring>

namespace c56 {

void xor_into(void* dst, const void* src, std::size_t n) noexcept {
  auto* d = static_cast<std::uint8_t*>(dst);
  const auto* s = static_cast<const std::uint8_t*>(src);
  // Unrolled 64-byte main loop; memcpy keeps it strict-aliasing clean and
  // compiles to plain loads/stores.
  while (n >= 64) {
    std::uint64_t a[8], b[8];
    std::memcpy(a, d, 64);
    std::memcpy(b, s, 64);
    for (int i = 0; i < 8; ++i) a[i] ^= b[i];
    std::memcpy(d, a, 64);
    d += 64;
    s += 64;
    n -= 64;
  }
  while (n >= 8) {
    std::uint64_t a, b;
    std::memcpy(&a, d, 8);
    std::memcpy(&b, s, 8);
    a ^= b;
    std::memcpy(d, &a, 8);
    d += 8;
    s += 8;
    n -= 8;
  }
  for (; n > 0; --n) *d++ ^= *s++;
}

void xor_to(void* dst, const void* a, const void* b, std::size_t n) noexcept {
  auto* d = static_cast<std::uint8_t*>(dst);
  const auto* x = static_cast<const std::uint8_t*>(a);
  const auto* y = static_cast<const std::uint8_t*>(b);
  while (n >= 8) {
    std::uint64_t u, v;
    std::memcpy(&u, x, 8);
    std::memcpy(&v, y, 8);
    u ^= v;
    std::memcpy(d, &u, 8);
    d += 8;
    x += 8;
    y += 8;
    n -= 8;
  }
  for (; n > 0; --n) *d++ = static_cast<std::uint8_t>(*x++ ^ *y++);
}

bool all_zero(const void* p, std::size_t n) noexcept {
  const auto* b = static_cast<const std::uint8_t*>(p);
  std::uint64_t acc = 0;
  while (n >= 8) {
    std::uint64_t v;
    std::memcpy(&v, b, 8);
    acc |= v;
    b += 8;
    n -= 8;
  }
  for (; n > 0; --n) acc |= *b++;
  return acc == 0;
}

void xor_into(std::span<std::uint8_t> dst,
              std::span<const std::uint8_t> src) noexcept {
  assert(dst.size() == src.size());
  xor_into(dst.data(), src.data(), dst.size());
}

bool all_zero(std::span<const std::uint8_t> s) noexcept {
  return all_zero(s.data(), s.size());
}

}  // namespace c56
