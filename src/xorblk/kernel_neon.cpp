// NEON XOR kernels for AArch64. Advanced SIMD is architecturally
// mandatory on AArch64, so unlike the x86 variants there is no runtime
// probe — if the build carries the kernel (CMake defines
// C56_HAVE_NEON), the CPU can run it. The same tail discipline as the
// x86 file applies: 64-byte strips, then 64-bit words, then bytes, so
// odd lengths and unaligned offsets match the scalar reference exactly.

#include "xorblk/kernel.hpp"

#ifdef C56_HAVE_NEON

#include <arm_neon.h>

#include <cstring>

namespace c56 {
namespace {

inline void tail_accumulate(std::uint8_t* d, const void* const* srcs,
                            std::size_t nsrcs, std::size_t off,
                            std::size_t n) {
  for (; off < n; ++off) {
    std::uint8_t acc = 0;
    for (std::size_t s = 0; s < nsrcs; ++s) {
      acc ^= static_cast<const std::uint8_t*>(srcs[s])[off];
    }
    d[off] = acc;
  }
}

void neon_xor_to(void* dst, const void* a, const void* b, std::size_t n) {
  auto* d = static_cast<std::uint8_t*>(dst);
  const auto* x = static_cast<const std::uint8_t*>(a);
  const auto* y = static_cast<const std::uint8_t*>(b);
  std::size_t off = 0;
  for (; off + 64 <= n; off += 64) {
    uint8x16_t v0 = veorq_u8(vld1q_u8(x + off), vld1q_u8(y + off));
    uint8x16_t v1 = veorq_u8(vld1q_u8(x + off + 16), vld1q_u8(y + off + 16));
    uint8x16_t v2 = veorq_u8(vld1q_u8(x + off + 32), vld1q_u8(y + off + 32));
    uint8x16_t v3 = veorq_u8(vld1q_u8(x + off + 48), vld1q_u8(y + off + 48));
    vst1q_u8(d + off, v0);
    vst1q_u8(d + off + 16, v1);
    vst1q_u8(d + off + 32, v2);
    vst1q_u8(d + off + 48, v3);
  }
  for (; off + 16 <= n; off += 16) {
    vst1q_u8(d + off, veorq_u8(vld1q_u8(x + off), vld1q_u8(y + off)));
  }
  for (; off < n; ++off) d[off] = static_cast<std::uint8_t>(x[off] ^ y[off]);
}

void neon_xor_into(void* dst, const void* src, std::size_t n) {
  neon_xor_to(dst, dst, src, n);
}

void neon_xor_delta(void* dst, const void* a, const void* b, std::size_t n) {
  auto* d = static_cast<std::uint8_t*>(dst);
  const auto* x = static_cast<const std::uint8_t*>(a);
  const auto* y = static_cast<const std::uint8_t*>(b);
  std::size_t off = 0;
  for (; off + 64 <= n; off += 64) {
    uint8x16_t v0 = veorq_u8(vld1q_u8(d + off),
                             veorq_u8(vld1q_u8(x + off), vld1q_u8(y + off)));
    uint8x16_t v1 =
        veorq_u8(vld1q_u8(d + off + 16),
                 veorq_u8(vld1q_u8(x + off + 16), vld1q_u8(y + off + 16)));
    uint8x16_t v2 =
        veorq_u8(vld1q_u8(d + off + 32),
                 veorq_u8(vld1q_u8(x + off + 32), vld1q_u8(y + off + 32)));
    uint8x16_t v3 =
        veorq_u8(vld1q_u8(d + off + 48),
                 veorq_u8(vld1q_u8(x + off + 48), vld1q_u8(y + off + 48)));
    vst1q_u8(d + off, v0);
    vst1q_u8(d + off + 16, v1);
    vst1q_u8(d + off + 32, v2);
    vst1q_u8(d + off + 48, v3);
  }
  for (; off + 16 <= n; off += 16) {
    vst1q_u8(d + off, veorq_u8(vld1q_u8(d + off), veorq_u8(vld1q_u8(x + off),
                                                           vld1q_u8(y + off))));
  }
  for (; off < n; ++off) d[off] ^= static_cast<std::uint8_t>(x[off] ^ y[off]);
}

void neon_xor_accumulate(void* dst, const void* const* srcs,
                         std::size_t nsrcs, std::size_t n) {
  auto* d = static_cast<std::uint8_t*>(dst);
  if (nsrcs == 0) {
    std::memset(d, 0, n);
    return;
  }
  std::size_t off = 0;
  for (; off + 64 <= n; off += 64) {
    const auto* s0 = static_cast<const std::uint8_t*>(srcs[0]) + off;
    uint8x16_t a0 = vld1q_u8(s0);
    uint8x16_t a1 = vld1q_u8(s0 + 16);
    uint8x16_t a2 = vld1q_u8(s0 + 32);
    uint8x16_t a3 = vld1q_u8(s0 + 48);
    for (std::size_t s = 1; s < nsrcs; ++s) {
      const auto* p = static_cast<const std::uint8_t*>(srcs[s]) + off;
      a0 = veorq_u8(a0, vld1q_u8(p));
      a1 = veorq_u8(a1, vld1q_u8(p + 16));
      a2 = veorq_u8(a2, vld1q_u8(p + 32));
      a3 = veorq_u8(a3, vld1q_u8(p + 48));
    }
    vst1q_u8(d + off, a0);
    vst1q_u8(d + off + 16, a1);
    vst1q_u8(d + off + 32, a2);
    vst1q_u8(d + off + 48, a3);
  }
  for (; off + 16 <= n; off += 16) {
    uint8x16_t acc = vld1q_u8(static_cast<const std::uint8_t*>(srcs[0]) + off);
    for (std::size_t s = 1; s < nsrcs; ++s) {
      acc = veorq_u8(acc,
                     vld1q_u8(static_cast<const std::uint8_t*>(srcs[s]) + off));
    }
    vst1q_u8(d + off, acc);
  }
  tail_accumulate(d, srcs, nsrcs, off, n);
}

bool neon_all_zero(const void* p, std::size_t n) {
  const auto* b = static_cast<const std::uint8_t*>(p);
  std::size_t off = 0;
  uint8x16_t acc = vdupq_n_u8(0);
  for (; off + 16 <= n; off += 16) {
    acc = vorrq_u8(acc, vld1q_u8(b + off));
  }
  if (vmaxvq_u8(acc) != 0) return false;
  std::uint8_t tail = 0;
  for (; off < n; ++off) tail |= b[off];
  return tail == 0;
}

const XorKernel kNeonKernel{
    XorIsa::kNeon,        "neon",
    &neon_xor_into,       &neon_xor_to,
    &neon_xor_delta,      &neon_xor_accumulate,
    &neon_all_zero,
};

}  // namespace

const XorKernel* neon_kernel_if_built() noexcept { return &kNeonKernel; }

}  // namespace c56

#else

namespace c56 {

const XorKernel* neon_kernel_if_built() noexcept { return nullptr; }

}  // namespace c56

#endif
