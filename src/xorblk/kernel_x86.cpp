// AVX2 / AVX-512 XOR kernels. Compiled into every x86-64 build unless
// C56_DISABLE_SIMD is set (CMake probes the intrinsics and defines
// C56_HAVE_AVX2 / C56_HAVE_AVX512); whether they are *used* is decided
// at runtime by __builtin_cpu_supports in the *_if_built() probes, so a
// binary built here runs unchanged on a CPU without the ISA.
//
// Every function uses unaligned loads/stores — callers pass arbitrary
// byte ranges — and finishes with a 64-bit-word + byte tail so odd
// lengths behave exactly like the scalar reference. xor_accumulate
// folds all sources into registers before touching dst within each
// strip, which both makes the pass cache-friendly (each stream is
// touched once) and keeps dst == srcs[i] aliasing safe.

#include "xorblk/kernel.hpp"

#if defined(C56_HAVE_AVX2) || defined(C56_HAVE_AVX512)

#include <immintrin.h>

#include <cstring>

namespace c56 {
namespace {

// Shared scalar tail: dst[i] = XOR of srcs[*][i] for off <= i < n.
inline void tail_accumulate(std::uint8_t* d, const void* const* srcs,
                            std::size_t nsrcs, std::size_t off,
                            std::size_t n) {
  for (; off + 8 <= n; off += 8) {
    std::uint64_t acc = 0;
    for (std::size_t s = 0; s < nsrcs; ++s) {
      std::uint64_t v;
      std::memcpy(&v, static_cast<const std::uint8_t*>(srcs[s]) + off, 8);
      acc ^= v;
    }
    std::memcpy(d + off, &acc, 8);
  }
  for (; off < n; ++off) {
    std::uint8_t acc = 0;
    for (std::size_t s = 0; s < nsrcs; ++s) {
      acc ^= static_cast<const std::uint8_t*>(srcs[s])[off];
    }
    d[off] = acc;
  }
}

inline void tail_xor_to(std::uint8_t* d, const std::uint8_t* x,
                        const std::uint8_t* y, std::size_t off,
                        std::size_t n) {
  for (; off + 8 <= n; off += 8) {
    std::uint64_t u, v;
    std::memcpy(&u, x + off, 8);
    std::memcpy(&v, y + off, 8);
    u ^= v;
    std::memcpy(d + off, &u, 8);
  }
  for (; off < n; ++off) d[off] = static_cast<std::uint8_t>(x[off] ^ y[off]);
}

inline void tail_xor_delta(std::uint8_t* d, const std::uint8_t* x,
                           const std::uint8_t* y, std::size_t off,
                           std::size_t n) {
  for (; off + 8 <= n; off += 8) {
    std::uint64_t t, u, v;
    std::memcpy(&t, d + off, 8);
    std::memcpy(&u, x + off, 8);
    std::memcpy(&v, y + off, 8);
    t ^= u ^ v;
    std::memcpy(d + off, &t, 8);
  }
  for (; off < n; ++off) d[off] ^= static_cast<std::uint8_t>(x[off] ^ y[off]);
}

#ifdef C56_HAVE_AVX2

__attribute__((target("avx2"))) void avx2_xor_to(void* dst, const void* a,
                                                 const void* b,
                                                 std::size_t n) {
  auto* d = static_cast<std::uint8_t*>(dst);
  const auto* x = static_cast<const std::uint8_t*>(a);
  const auto* y = static_cast<const std::uint8_t*>(b);
  std::size_t off = 0;
  for (; off + 128 <= n; off += 128) {
    __m256i v0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + off));
    __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + off + 32));
    __m256i v2 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + off + 64));
    __m256i v3 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + off + 96));
    v0 = _mm256_xor_si256(
        v0, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + off)));
    v1 = _mm256_xor_si256(v1, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                                  y + off + 32)));
    v2 = _mm256_xor_si256(v2, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                                  y + off + 64)));
    v3 = _mm256_xor_si256(v3, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                                  y + off + 96)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + off), v0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + off + 32), v1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + off + 64), v2);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + off + 96), v3);
  }
  for (; off + 32 <= n; off += 32) {
    const __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + off)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + off)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + off), v);
  }
  tail_xor_to(d, x, y, off, n);
}

__attribute__((target("avx2"))) void avx2_xor_into(void* dst, const void* src,
                                                   std::size_t n) {
  avx2_xor_to(dst, dst, src, n);
}

__attribute__((target("avx2"))) void avx2_xor_delta(void* dst, const void* a,
                                                    const void* b,
                                                    std::size_t n) {
  auto* d = static_cast<std::uint8_t*>(dst);
  const auto* x = static_cast<const std::uint8_t*>(a);
  const auto* y = static_cast<const std::uint8_t*>(b);
  std::size_t off = 0;
  for (; off + 128 <= n; off += 128) {
    __m256i v0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + off));
    __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + off + 32));
    __m256i v2 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + off + 64));
    __m256i v3 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + off + 96));
    v0 = _mm256_xor_si256(
        v0, _mm256_xor_si256(
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + off)),
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + off))));
    v1 = _mm256_xor_si256(
        v1, _mm256_xor_si256(_mm256_loadu_si256(
                                 reinterpret_cast<const __m256i*>(x + off + 32)),
                             _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                                 y + off + 32))));
    v2 = _mm256_xor_si256(
        v2, _mm256_xor_si256(_mm256_loadu_si256(
                                 reinterpret_cast<const __m256i*>(x + off + 64)),
                             _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                                 y + off + 64))));
    v3 = _mm256_xor_si256(
        v3, _mm256_xor_si256(_mm256_loadu_si256(
                                 reinterpret_cast<const __m256i*>(x + off + 96)),
                             _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                                 y + off + 96))));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + off), v0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + off + 32), v1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + off + 64), v2);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + off + 96), v3);
  }
  for (; off + 32 <= n; off += 32) {
    const __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + off)),
        _mm256_xor_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + off)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + off))));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + off), v);
  }
  tail_xor_delta(d, x, y, off, n);
}

__attribute__((target("avx2"))) void avx2_xor_accumulate(
    void* dst, const void* const* srcs, std::size_t nsrcs, std::size_t n) {
  auto* d = static_cast<std::uint8_t*>(dst);
  if (nsrcs == 0) {
    std::memset(d, 0, n);
    return;
  }
  std::size_t off = 0;
  for (; off + 128 <= n; off += 128) {
    const auto* s0 = static_cast<const std::uint8_t*>(srcs[0]) + off;
    __m256i a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s0));
    __m256i a1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s0 + 32));
    __m256i a2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s0 + 64));
    __m256i a3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s0 + 96));
    for (std::size_t s = 1; s < nsrcs; ++s) {
      const auto* p = static_cast<const std::uint8_t*>(srcs[s]) + off;
      a0 = _mm256_xor_si256(
          a0, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)));
      a1 = _mm256_xor_si256(
          a1, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 32)));
      a2 = _mm256_xor_si256(
          a2, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 64)));
      a3 = _mm256_xor_si256(
          a3, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 96)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + off), a0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + off + 32), a1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + off + 64), a2);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + off + 96), a3);
  }
  for (; off + 32 <= n; off += 32) {
    __m256i acc = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
        static_cast<const std::uint8_t*>(srcs[0]) + off));
    for (std::size_t s = 1; s < nsrcs; ++s) {
      acc = _mm256_xor_si256(
          acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                   static_cast<const std::uint8_t*>(srcs[s]) + off)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + off), acc);
  }
  tail_accumulate(d, srcs, nsrcs, off, n);
}

__attribute__((target("avx2"))) bool avx2_all_zero(const void* p,
                                                   std::size_t n) {
  const auto* b = static_cast<const std::uint8_t*>(p);
  std::size_t off = 0;
  __m256i acc = _mm256_setzero_si256();
  for (; off + 32 <= n; off += 32) {
    acc = _mm256_or_si256(
        acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + off)));
  }
  if (!_mm256_testz_si256(acc, acc)) return false;
  std::uint64_t tail = 0;
  for (; off + 8 <= n; off += 8) {
    std::uint64_t v;
    std::memcpy(&v, b + off, 8);
    tail |= v;
  }
  for (; off < n; ++off) tail |= b[off];
  return tail == 0;
}

const XorKernel kAvx2Kernel{
    XorIsa::kAvx2,        "avx2",
    &avx2_xor_into,       &avx2_xor_to,
    &avx2_xor_delta,      &avx2_xor_accumulate,
    &avx2_all_zero,
};

#endif  // C56_HAVE_AVX2

#ifdef C56_HAVE_AVX512

__attribute__((target("avx512f"))) void avx512_xor_to(void* dst, const void* a,
                                                      const void* b,
                                                      std::size_t n) {
  auto* d = static_cast<std::uint8_t*>(dst);
  const auto* x = static_cast<const std::uint8_t*>(a);
  const auto* y = static_cast<const std::uint8_t*>(b);
  std::size_t off = 0;
  for (; off + 256 <= n; off += 256) {
    __m512i v0 = _mm512_loadu_si512(x + off);
    __m512i v1 = _mm512_loadu_si512(x + off + 64);
    __m512i v2 = _mm512_loadu_si512(x + off + 128);
    __m512i v3 = _mm512_loadu_si512(x + off + 192);
    v0 = _mm512_xor_si512(v0, _mm512_loadu_si512(y + off));
    v1 = _mm512_xor_si512(v1, _mm512_loadu_si512(y + off + 64));
    v2 = _mm512_xor_si512(v2, _mm512_loadu_si512(y + off + 128));
    v3 = _mm512_xor_si512(v3, _mm512_loadu_si512(y + off + 192));
    _mm512_storeu_si512(d + off, v0);
    _mm512_storeu_si512(d + off + 64, v1);
    _mm512_storeu_si512(d + off + 128, v2);
    _mm512_storeu_si512(d + off + 192, v3);
  }
  for (; off + 64 <= n; off += 64) {
    _mm512_storeu_si512(d + off,
                        _mm512_xor_si512(_mm512_loadu_si512(x + off),
                                         _mm512_loadu_si512(y + off)));
  }
  tail_xor_to(d, x, y, off, n);
}

__attribute__((target("avx512f"))) void avx512_xor_into(void* dst,
                                                        const void* src,
                                                        std::size_t n) {
  avx512_xor_to(dst, dst, src, n);
}

__attribute__((target("avx512f"))) void avx512_xor_delta(void* dst,
                                                         const void* a,
                                                         const void* b,
                                                         std::size_t n) {
  auto* d = static_cast<std::uint8_t*>(dst);
  const auto* x = static_cast<const std::uint8_t*>(a);
  const auto* y = static_cast<const std::uint8_t*>(b);
  std::size_t off = 0;
  for (; off + 256 <= n; off += 256) {
    __m512i v0 = _mm512_loadu_si512(d + off);
    __m512i v1 = _mm512_loadu_si512(d + off + 64);
    __m512i v2 = _mm512_loadu_si512(d + off + 128);
    __m512i v3 = _mm512_loadu_si512(d + off + 192);
    v0 = _mm512_xor_si512(v0, _mm512_xor_si512(_mm512_loadu_si512(x + off),
                                               _mm512_loadu_si512(y + off)));
    v1 = _mm512_xor_si512(
        v1, _mm512_xor_si512(_mm512_loadu_si512(x + off + 64),
                             _mm512_loadu_si512(y + off + 64)));
    v2 = _mm512_xor_si512(
        v2, _mm512_xor_si512(_mm512_loadu_si512(x + off + 128),
                             _mm512_loadu_si512(y + off + 128)));
    v3 = _mm512_xor_si512(
        v3, _mm512_xor_si512(_mm512_loadu_si512(x + off + 192),
                             _mm512_loadu_si512(y + off + 192)));
    _mm512_storeu_si512(d + off, v0);
    _mm512_storeu_si512(d + off + 64, v1);
    _mm512_storeu_si512(d + off + 128, v2);
    _mm512_storeu_si512(d + off + 192, v3);
  }
  for (; off + 64 <= n; off += 64) {
    _mm512_storeu_si512(
        d + off,
        _mm512_xor_si512(_mm512_loadu_si512(d + off),
                         _mm512_xor_si512(_mm512_loadu_si512(x + off),
                                          _mm512_loadu_si512(y + off))));
  }
  tail_xor_delta(d, x, y, off, n);
}

__attribute__((target("avx512f"))) void avx512_xor_accumulate(
    void* dst, const void* const* srcs, std::size_t nsrcs, std::size_t n) {
  auto* d = static_cast<std::uint8_t*>(dst);
  if (nsrcs == 0) {
    std::memset(d, 0, n);
    return;
  }
  std::size_t off = 0;
  for (; off + 256 <= n; off += 256) {
    const auto* s0 = static_cast<const std::uint8_t*>(srcs[0]) + off;
    __m512i a0 = _mm512_loadu_si512(s0);
    __m512i a1 = _mm512_loadu_si512(s0 + 64);
    __m512i a2 = _mm512_loadu_si512(s0 + 128);
    __m512i a3 = _mm512_loadu_si512(s0 + 192);
    for (std::size_t s = 1; s < nsrcs; ++s) {
      const auto* p = static_cast<const std::uint8_t*>(srcs[s]) + off;
      a0 = _mm512_xor_si512(a0, _mm512_loadu_si512(p));
      a1 = _mm512_xor_si512(a1, _mm512_loadu_si512(p + 64));
      a2 = _mm512_xor_si512(a2, _mm512_loadu_si512(p + 128));
      a3 = _mm512_xor_si512(a3, _mm512_loadu_si512(p + 192));
    }
    _mm512_storeu_si512(d + off, a0);
    _mm512_storeu_si512(d + off + 64, a1);
    _mm512_storeu_si512(d + off + 128, a2);
    _mm512_storeu_si512(d + off + 192, a3);
  }
  for (; off + 64 <= n; off += 64) {
    __m512i acc =
        _mm512_loadu_si512(static_cast<const std::uint8_t*>(srcs[0]) + off);
    for (std::size_t s = 1; s < nsrcs; ++s) {
      acc = _mm512_xor_si512(
          acc,
          _mm512_loadu_si512(static_cast<const std::uint8_t*>(srcs[s]) + off));
    }
    _mm512_storeu_si512(d + off, acc);
  }
  tail_accumulate(d, srcs, nsrcs, off, n);
}

__attribute__((target("avx512f"))) bool avx512_all_zero(const void* p,
                                                        std::size_t n) {
  const auto* b = static_cast<const std::uint8_t*>(p);
  std::size_t off = 0;
  __m512i acc = _mm512_setzero_si512();
  for (; off + 64 <= n; off += 64) {
    acc = _mm512_or_si512(acc, _mm512_loadu_si512(b + off));
  }
  if (_mm512_test_epi64_mask(acc, acc) != 0) return false;
  std::uint64_t tail = 0;
  for (; off + 8 <= n; off += 8) {
    std::uint64_t v;
    std::memcpy(&v, b + off, 8);
    tail |= v;
  }
  for (; off < n; ++off) tail |= b[off];
  return tail == 0;
}

const XorKernel kAvx512Kernel{
    XorIsa::kAvx512,        "avx512",
    &avx512_xor_into,       &avx512_xor_to,
    &avx512_xor_delta,      &avx512_xor_accumulate,
    &avx512_all_zero,
};

#endif  // C56_HAVE_AVX512

}  // namespace

const XorKernel* avx2_kernel_if_built() noexcept {
#ifdef C56_HAVE_AVX2
  if (__builtin_cpu_supports("avx2")) return &kAvx2Kernel;
#endif
  return nullptr;
}

const XorKernel* avx512_kernel_if_built() noexcept {
#ifdef C56_HAVE_AVX512
  if (__builtin_cpu_supports("avx512f")) return &kAvx512Kernel;
#endif
  return nullptr;
}

}  // namespace c56

#else  // no x86 vector support compiled in

namespace c56 {

const XorKernel* avx2_kernel_if_built() noexcept { return nullptr; }
const XorKernel* avx512_kernel_if_built() noexcept { return nullptr; }

}  // namespace c56

#endif
