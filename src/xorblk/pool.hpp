#pragma once
// Thread-local free list of Buffers so steady-state hot loops (parity
// read-modify-write, reconstruct-on-read chains, stripe staging) do
// zero heap allocations. acquire() hands back a previously released
// Buffer of the exact size when one is pooled, else allocates; the
// contents of an acquired buffer are unspecified — call zero() if the
// caller needs cleared memory. Each thread owns its own pool, so no
// locking is involved and release() must happen on the acquiring
// thread (which the RAII PooledBuffer guarantees).
//
// Long-lived worker threads (service shards) call trim() from their
// idle loops so a burst of peak-sized stripe buffers is not pinned for
// the rest of the thread's life; total_retained_bytes() aggregates
// every live thread's pooled bytes for the high-watermark gauge.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "xorblk/buffer.hpp"

namespace c56 {

class BufferPool {
 public:
  /// The calling thread's pool.
  static BufferPool& local() noexcept;

  BufferPool();
  ~BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// A buffer of exactly `size` bytes, reused from the pool when
  /// possible. Contents are unspecified.
  Buffer acquire(std::size_t size);

  /// Return a buffer to the pool (dropped once the pool holds
  /// kMaxPooledBytes, so a burst of large stripes cannot pin memory).
  void release(Buffer&& b) noexcept;

  /// Drop pooled buffers (largest sizes first) until at most
  /// `keep_bytes` stay resident. The idle-loop hook for long-lived
  /// worker threads; trim(0) empties the pool. Must be called on the
  /// owning thread, like every other mutator.
  void trim(std::size_t keep_bytes = 0) noexcept;

  std::size_t pooled_bytes() const noexcept {
    return pooled_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }

  /// Process-wide hit/miss totals aggregated across every thread's
  /// pool. Maintained only while obs::metrics_enabled() — the
  /// per-thread counters above are always exact.
  static std::uint64_t global_hits() noexcept;
  static std::uint64_t global_misses() noexcept;

  /// Bytes currently pooled across every live thread's pool (always
  /// exact — this is the retained-memory high-watermark gauge, so it
  /// does not depend on the metrics switch).
  static std::uint64_t total_retained_bytes() noexcept;
  /// Bytes released back to the allocator by trim() calls, process-wide.
  static std::uint64_t total_trimmed_bytes() noexcept;

 private:
  static constexpr std::size_t kMaxPooledBytes = 64u << 20;

  // One bucket per distinct size; a process uses a handful of block /
  // stripe sizes, so linear scan beats any map.
  struct Bucket {
    std::size_t size = 0;
    std::vector<Buffer> free;
  };
  std::vector<Bucket> buckets_;
  // Atomic so total_retained_bytes() may read it from the snapshot
  // thread; only the owning thread ever writes it.
  std::atomic<std::size_t> pooled_bytes_{0};
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// RAII lease on a pooled buffer: acquires from the calling thread's
/// pool, releases back on destruction (same thread by construction).
class PooledBuffer {
 public:
  explicit PooledBuffer(std::size_t size)
      : buf_(BufferPool::local().acquire(size)) {}
  ~PooledBuffer() { BufferPool::local().release(std::move(buf_)); }

  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;

  std::size_t size() const noexcept { return buf_.size(); }
  std::uint8_t* data() noexcept { return buf_.data(); }
  const std::uint8_t* data() const noexcept { return buf_.data(); }
  std::span<std::uint8_t> span() noexcept { return buf_.span(); }
  std::span<const std::uint8_t> span() const noexcept { return buf_.span(); }
  std::span<std::uint8_t> block(std::size_t i, std::size_t bs) noexcept {
    return buf_.block(i, bs);
  }
  void zero() noexcept { buf_.zero(); }
  Buffer& buffer() noexcept { return buf_; }

 private:
  Buffer buf_;
};

/// Register a collector exporting the pool's process-wide aggregates
/// (buffer_pool_hits / buffer_pool_misses / buffer_pool_retained_bytes
/// / buffer_pool_trimmed_bytes) with `registry`. The caller owns the
/// returned handle.
[[nodiscard]] obs::CollectorHandle attach_pool_metrics(
    obs::Registry& registry);

}  // namespace c56
