#pragma once
// Owning byte buffer aligned for the XOR kernels. A stripe of an array
// code is stored as rows*cols consecutive blocks inside one Buffer.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>

namespace c56 {

class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(std::size_t size, std::uint8_t fill = 0);

  Buffer(const Buffer& other);
  Buffer& operator=(const Buffer& other);
  Buffer(Buffer&&) noexcept = default;
  Buffer& operator=(Buffer&&) noexcept = default;

  std::size_t size() const noexcept { return size_; }
  std::uint8_t* data() noexcept { return bytes_.get(); }
  const std::uint8_t* data() const noexcept { return bytes_.get(); }

  std::span<std::uint8_t> span() noexcept { return {data(), size_}; }
  std::span<const std::uint8_t> span() const noexcept {
    return {data(), size_};
  }

  /// Block #i of a buffer partitioned into blocks of block_size bytes.
  std::span<std::uint8_t> block(std::size_t i, std::size_t block_size) noexcept {
    return span().subspan(i * block_size, block_size);
  }
  std::span<const std::uint8_t> block(std::size_t i,
                                      std::size_t block_size) const noexcept {
    return span().subspan(i * block_size, block_size);
  }

  void zero() noexcept;

  friend bool operator==(const Buffer& a, const Buffer& b) noexcept;

 private:
  std::unique_ptr<std::uint8_t[]> bytes_;
  std::size_t size_ = 0;
};

}  // namespace c56
