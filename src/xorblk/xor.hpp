#pragma once
// XOR kernels over byte blocks. Every parity computation in the library
// reduces to these four primitives. Blocks are arbitrary byte ranges;
// the entry points dispatch at process start to the widest vector ISA
// the running CPU supports (AVX-512 / AVX2 / NEON, see kernel.hpp) and
// fall back to a 64-bit-lane scalar loop — which is also the reference
// implementation every vector variant is differentially tested against.

#include <cstddef>
#include <cstdint>
#include <span>

namespace c56 {

/// dst ^= src, element-wise over n bytes. Regions must not overlap.
void xor_into(void* dst, const void* src, std::size_t n) noexcept;

/// dst = a ^ b over n bytes. dst may alias a or b exactly (same pointer).
void xor_to(void* dst, const void* a, const void* b, std::size_t n) noexcept;

/// dst ^= a ^ b over n bytes in one pass — the incremental parity
/// update: parity ^= new_data ^ old_data without materializing the
/// delta. dst may alias a or b exactly (same pointer).
void xor_delta_into(void* dst, const void* a, const void* b,
                    std::size_t n) noexcept;

/// dst = srcs[0] ^ srcs[1] ^ ... ^ srcs[nsrcs-1] over n bytes, computed
/// in one cache-friendly pass (each source is streamed exactly once and
/// dst is written exactly once). nsrcs == 0 zeroes dst. dst may alias
/// any srcs[i] exactly; sources must not otherwise overlap dst.
void xor_accumulate(void* dst, const void* const* srcs, std::size_t nsrcs,
                    std::size_t n) noexcept;

/// True iff all n bytes are zero.
bool all_zero(const void* p, std::size_t n) noexcept;

/// span convenience wrappers (sizes must match; checked in debug builds).
void xor_into(std::span<std::uint8_t> dst,
              std::span<const std::uint8_t> src) noexcept;
void xor_to(std::span<std::uint8_t> dst, std::span<const std::uint8_t> a,
            std::span<const std::uint8_t> b) noexcept;
void xor_delta_into(std::span<std::uint8_t> dst, std::span<const std::uint8_t> a,
                    std::span<const std::uint8_t> b) noexcept;
void xor_accumulate(std::span<std::uint8_t> dst,
                    std::span<const std::uint8_t* const> srcs) noexcept;
bool all_zero(std::span<const std::uint8_t> s) noexcept;

}  // namespace c56
