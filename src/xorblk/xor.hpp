#pragma once
// Word-wide XOR kernels over byte blocks. Every parity computation in the
// library reduces to these three primitives. Blocks are arbitrary byte
// ranges; the kernels process eight 64-bit lanes per iteration when the
// length allows and fall back to bytes at the tail.

#include <cstddef>
#include <cstdint>
#include <span>

namespace c56 {

/// dst ^= src, element-wise over n bytes. Regions must not overlap.
void xor_into(void* dst, const void* src, std::size_t n) noexcept;

/// dst = a ^ b over n bytes. dst may alias a or b exactly (same pointer).
void xor_to(void* dst, const void* a, const void* b, std::size_t n) noexcept;

/// True iff all n bytes are zero.
bool all_zero(const void* p, std::size_t n) noexcept;

/// span convenience wrappers (sizes must match; checked in debug builds).
void xor_into(std::span<std::uint8_t> dst,
              std::span<const std::uint8_t> src) noexcept;
bool all_zero(std::span<const std::uint8_t> s) noexcept;

}  // namespace c56
