#include "sim/trace.hpp"

namespace c56::sim {

std::size_t Trace::total_requests() const {
  std::size_t n = 0;
  for (const Phase& ph : phases) n += ph.requests.size();
  return n;
}

std::size_t Trace::total_reads() const {
  std::size_t n = 0;
  for (const Phase& ph : phases) {
    for (const Request& r : ph.requests) n += r.op == Op::kRead;
  }
  return n;
}

std::size_t Trace::total_writes() const {
  std::size_t n = 0;
  for (const Phase& ph : phases) {
    for (const Request& r : ph.requests) n += r.op == Op::kWrite;
  }
  return n;
}

std::size_t Trace::total_disk_events() const {
  std::size_t n = 0;
  for (const Phase& ph : phases) n += ph.events.size();
  return n;
}

}  // namespace c56::sim
