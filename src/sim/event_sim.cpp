#include "sim/event_sim.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace c56::sim {

ArraySimulator::ArraySimulator(int disks, const DiskParams& params) {
  if (disks <= 0) throw std::invalid_argument("ArraySimulator: disks <= 0");
  models_.reserve(static_cast<std::size_t>(disks));
  for (int d = 0; d < disks; ++d) models_.emplace_back(params);
}

SimResult ArraySimulator::run(const Trace& trace) {
  SimResult result;
  result.disk_busy_ms.assign(models_.size(), 0.0);
  for (DiskModel& m : models_) m.reset();
  const bool obs_on = obs::metrics_enabled();

  // Each disk serves its queue in arrival order (FIFO), idling until
  // the next arrival when drained; disks are independent, so per-disk
  // chains of completions are exact without a global event queue. The
  // queue is rebuilt per phase and a phase begins only after the
  // previous one fully completes. DiskFail/DiskRepair events flip a
  // per-disk availability flag (persistent across phases): a request
  // whose service would start while its disk is failed is rejected with
  // no service time. An event landing inside an in-flight request does
  // not preempt it.
  std::vector<char> failed(models_.size(), 0);
  struct AbsEvent {
    double at_ms;
    int disk;
    DiskEventKind kind;
  };
  std::vector<AbsEvent> all_events;
  double now = 0.0;
  for (const Phase& phase : trace.phases) {
    std::vector<std::vector<const Request*>> queues(models_.size());
    for (const Request& r : phase.requests) {
      if (r.disk < 0 || r.disk >= disks()) {
        throw std::out_of_range("request targets unknown disk");
      }
      queues[static_cast<std::size_t>(r.disk)].push_back(&r);
    }
    std::vector<std::vector<AbsEvent>> events(models_.size());
    for (const DiskEvent& e : phase.events) {
      if (e.disk < 0 || e.disk >= disks()) {
        throw std::out_of_range("disk event targets unknown disk");
      }
      const AbsEvent ae{now + e.at_ms, e.disk, e.kind};
      events[static_cast<std::size_t>(e.disk)].push_back(ae);
      all_events.push_back(ae);
    }
    for (auto& ev : events) {
      std::stable_sort(ev.begin(), ev.end(),
                       [](const AbsEvent& a, const AbsEvent& b) {
                         return a.at_ms < b.at_ms;
                       });
    }
    double phase_end = now;
    for (std::size_t d = 0; d < queues.size(); ++d) {
      auto& q = queues[d];
      std::stable_sort(q.begin(), q.end(),
                       [](const Request* a, const Request* b) {
                         return a->issue_ms < b->issue_ms;
                       });
      double free_at = now;
      std::size_t ecur = 0;
      const auto apply_events_until = [&](double t) {
        while (ecur < events[d].size() && events[d][ecur].at_ms <= t) {
          failed[d] = events[d][ecur].kind == DiskEventKind::kDiskFail;
          ++ecur;
        }
      };
      // Queue depth seen by request i at its service start: requests
      // arrive in issue order, so it is the count of already-arrived,
      // not-yet-dispatched requests (including i itself).
      std::size_t arrived = 0;
      std::size_t dispatched = 0;
      for (const Request* r : q) {
        const double arrival = now + r->issue_ms;
        const double start = std::max(free_at, arrival);
        apply_events_until(start);
        if (obs_on) {
          while (arrived < q.size() && now + q[arrived]->issue_ms <= start) {
            ++arrived;
          }
          queue_depth_.observe(arrived - dispatched);
        }
        ++dispatched;
        if (failed[d]) {
          ++result.requests_failed;
          ++result.failed_by_tag[r->tag];
          if (obs_on) requests_failed_.inc();
          continue;
        }
        const double svc = models_[d].service_time_ms(r->lba, r->bytes);
        free_at = start + svc;
        result.disk_busy_ms[d] += svc;
        ++result.requests_served;
        result.latency_by_tag[r->tag].add(free_at - arrival);
        if (obs_on) {
          requests_served_.inc();
          request_latency_us_.observe(
              static_cast<std::uint64_t>((free_at - arrival) * 1000.0));
        }
      }
      apply_events_until(std::numeric_limits<double>::infinity());
      phase_end = std::max(phase_end, free_at);
    }
    now = phase_end;
    result.phase_end_ms.push_back(now);
  }
  result.makespan_ms = now;

  // Peak failure concurrency: replay all events in absolute time order.
  std::stable_sort(all_events.begin(), all_events.end(),
                   [](const AbsEvent& a, const AbsEvent& b) {
                     return a.at_ms < b.at_ms;
                   });
  std::vector<char> down(models_.size(), 0);
  int concurrent = 0;
  for (const AbsEvent& e : all_events) {
    const auto d = static_cast<std::size_t>(e.disk);
    if (e.kind == DiskEventKind::kDiskFail && !down[d]) {
      down[d] = 1;
      result.max_concurrent_failures =
          std::max(result.max_concurrent_failures, ++concurrent);
      emit_disk_event(e.disk, e.at_ms, /*fail=*/true, concurrent);
    } else if (e.kind == DiskEventKind::kDiskRepair && down[d]) {
      down[d] = 0;
      --concurrent;
      emit_disk_event(e.disk, e.at_ms, /*fail=*/false, concurrent);
    }
  }
  return result;
}

void ArraySimulator::emit_disk_event(int disk, double at_ms, bool fail,
                                     int concurrent) {
  obs::EventLog* log = events_;
  if (!log || !obs::events_enabled()) return;
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "simulated disk %s at t=%.3f ms (%d concurrently failed)",
                fail ? "failure" : "repair", at_ms, concurrent);
  obs::Event ev;
  ev.level = obs::EventLevel::kInfo;
  ev.category = "sim";
  ev.message = buf;
  ev.disk = disk;
  log->emit(std::move(ev), fail ? "sim_disk_fail" : "sim_disk_repair");
}

void ArraySimulator::attach_metrics(obs::Registry& registry,
                                    const std::string& prefix) {
  metrics_handle_ = registry.add_collector([this, prefix](obs::Collection& c) {
    c.counter(prefix + "_requests_served", requests_served_.value());
    c.counter(prefix + "_requests_failed", requests_failed_.value());
    c.histogram(prefix + "_request_latency_us", request_latency_us_.snapshot());
    c.histogram(prefix + "_queue_depth", queue_depth_.snapshot());
  });
}

}  // namespace c56::sim
