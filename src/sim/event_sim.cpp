#include "sim/event_sim.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace c56::sim {

ArraySimulator::ArraySimulator(int disks, const DiskParams& params) {
  if (disks <= 0) throw std::invalid_argument("ArraySimulator: disks <= 0");
  models_.reserve(static_cast<std::size_t>(disks));
  for (int d = 0; d < disks; ++d) models_.emplace_back(params);
}

SimResult ArraySimulator::run(const Trace& trace) {
  SimResult result;
  result.disk_busy_ms.assign(models_.size(), 0.0);
  for (DiskModel& m : models_) m.reset();

  // Each disk serves its queue in arrival order (FIFO), idling until
  // the next arrival when drained; disks are independent, so per-disk
  // chains of completions are exact without a global event queue. The
  // queue is rebuilt per phase and a phase begins only after the
  // previous one fully completes.
  double now = 0.0;
  for (const Phase& phase : trace.phases) {
    std::vector<std::vector<const Request*>> queues(models_.size());
    for (const Request& r : phase.requests) {
      if (r.disk < 0 || r.disk >= disks()) {
        throw std::out_of_range("request targets unknown disk");
      }
      queues[static_cast<std::size_t>(r.disk)].push_back(&r);
    }
    double phase_end = now;
    for (std::size_t d = 0; d < queues.size(); ++d) {
      auto& q = queues[d];
      std::stable_sort(q.begin(), q.end(),
                       [](const Request* a, const Request* b) {
                         return a->issue_ms < b->issue_ms;
                       });
      double free_at = now;
      for (const Request* r : q) {
        const double arrival = now + r->issue_ms;
        const double start = std::max(free_at, arrival);
        const double svc = models_[d].service_time_ms(r->lba, r->bytes);
        free_at = start + svc;
        result.disk_busy_ms[d] += svc;
        ++result.requests_served;
        result.latency_by_tag[r->tag].add(free_at - arrival);
      }
      phase_end = std::max(phase_end, free_at);
    }
    now = phase_end;
    result.phase_end_ms.push_back(now);
  }
  result.makespan_ms = now;
  return result;
}

}  // namespace c56::sim
