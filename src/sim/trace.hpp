#pragma once
// I/O traces consumed by the array simulator. A trace is a sequence of
// phases; requests inside one phase are dispatched concurrently to
// their per-disk FIFO queues, and a phase begins only after the
// previous one fully completes — matching the sequential degrade /
// upgrade steps of the conversion approaches of Section I.

#include <cstdint>
#include <string>
#include <vector>

namespace c56::sim {

enum class Op : std::uint8_t { kRead, kWrite };

struct Request {
  int disk = 0;
  std::uint64_t lba = 0;  // sectors
  std::uint32_t bytes = 0;
  Op op = Op::kRead;
  /// Arrival time relative to the phase start; a disk serves its queue
  /// in arrival order and idles until the next arrival when drained.
  double issue_ms = 0.0;
  /// Free-form label; per-tag latency statistics are reported by the
  /// simulator (0 = untagged bulk I/O, e.g. the conversion stream).
  int tag = 0;
};

/// Disk state transitions injected into a phase: a failed disk rejects
/// every request whose service would start while it is down, until a
/// matching repair event. State persists across phase boundaries.
enum class DiskEventKind : std::uint8_t { kDiskFail, kDiskRepair };

struct DiskEvent {
  int disk = 0;
  /// Event time relative to the phase start (like Request::issue_ms).
  double at_ms = 0.0;
  DiskEventKind kind = DiskEventKind::kDiskFail;
};

struct Phase {
  std::string name;
  std::vector<Request> requests;
  std::vector<DiskEvent> events;
};

struct Trace {
  std::vector<Phase> phases;

  std::size_t total_requests() const;
  std::size_t total_reads() const;
  std::size_t total_writes() const;
  std::size_t total_disk_events() const;
};

}  // namespace c56::sim
