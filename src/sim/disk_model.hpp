#pragma once
// Positional disk service-time model, the core of the DiskSim
// substitute (see DESIGN.md, substitutions). A request pays seek +
// average rotational latency unless it starts exactly where the
// previous one ended (sequential streaming), plus transfer time at the
// sustained rate. Defaults approximate the 7200 rpm SATA drives of the
// paper's era.

#include <cstddef>
#include <cstdint>

namespace c56::sim {

struct DiskParams {
  double avg_seek_ms = 4.2;
  double rpm = 7200.0;
  double transfer_mb_s = 90.0;
  std::uint32_t sector_bytes = 512;
  /// Short forward skips (e.g. hopping over a parity hole) stay on
  /// track and cost pass-over time instead of a full reposition.
  std::uint64_t skip_window_sectors = 2048;  // 1 MiB

  /// Average rotational latency: half a revolution.
  double avg_rotational_ms() const { return 0.5 * 60.0 * 1e3 / rpm; }
};

class DiskModel {
 public:
  explicit DiskModel(const DiskParams& params = {});

  /// Service time of the next request, updating head state. `lba` is in
  /// sectors.
  double service_time_ms(std::uint64_t lba, std::size_t bytes);

  void reset();

  const DiskParams& params() const { return params_; }

 private:
  DiskParams params_;
  bool has_position_ = false;
  std::uint64_t next_sequential_lba_ = 0;
};

}  // namespace c56::sim
