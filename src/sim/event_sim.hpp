#pragma once
// Discrete-event disk-array simulator.
//
// Each disk owns a FIFO queue (ordered by request arrival) and a
// positional DiskModel; a request begins service when both it has
// arrived and its disk is free, and a phase starts only after the
// previous one fully completes. The makespan of a conversion trace is
// the metric the paper extracts from DiskSim in Section V-C; per-tag
// latency statistics support the foreground-workload experiments.

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "sim/disk_model.hpp"
#include "sim/trace.hpp"

namespace c56::sim {

struct LatencyStats {
  std::size_t count = 0;
  double total_ms = 0.0;
  double max_ms = 0.0;

  double mean_ms() const { return count ? total_ms / count : 0.0; }
  void add(double latency_ms) {
    ++count;
    total_ms += latency_ms;
    max_ms = std::max(max_ms, latency_ms);
  }
};

struct SimResult {
  double makespan_ms = 0.0;
  std::vector<double> phase_end_ms;     // absolute end time of each phase
  std::vector<double> disk_busy_ms;     // accumulated service per disk
  std::size_t requests_served = 0;
  /// Completion-minus-arrival statistics per request tag.
  std::map<int, LatencyStats> latency_by_tag;
  /// Requests rejected because their disk was failed when service would
  /// have started (DiskFail/DiskRepair trace events).
  std::size_t requests_failed = 0;
  std::map<int, std::size_t> failed_by_tag;
  /// Peak number of simultaneously failed disks over the whole trace —
  /// the quantity the Table VI risk model compares against the window's
  /// fault tolerance.
  int max_concurrent_failures = 0;
};

class ArraySimulator {
 public:
  ArraySimulator(int disks, const DiskParams& params = {});

  /// Run a whole trace from time zero. Deterministic.
  SimResult run(const Trace& trace);

  int disks() const { return static_cast<int>(models_.size()); }

  /// Export simulator metrics through `registry` snapshots: request
  /// latency ({prefix}_request_latency_us, simulated time in µs) and
  /// per-disk queue depth sampled at each service start
  /// ({prefix}_queue_depth), plus served/failed counters. Histograms
  /// accumulate across run() calls only while obs::metrics_enabled().
  void attach_metrics(obs::Registry& registry,
                      const std::string& prefix = "sim");
  void detach_metrics() { metrics_handle_.remove(); }

  /// Record DiskFail/DiskRepair transitions of each run() as info
  /// events (category "sim", simulated time in the message) into `log`,
  /// kept by reference.
  void attach_events(obs::EventLog& log) { events_ = &log; }

 private:
  void emit_disk_event(int disk, double at_ms, bool fail, int concurrent);

  std::vector<DiskModel> models_;
  obs::EventLog* events_ = nullptr;

  obs::Histogram request_latency_us_;
  obs::Histogram queue_depth_;
  obs::Counter requests_served_;
  obs::Counter requests_failed_;
  // Declared last so the collector detaches before anything it reads.
  obs::CollectorHandle metrics_handle_;
};

}  // namespace c56::sim
