#pragma once
// Synthetic application workloads for the simulator: Poisson arrivals
// of single-block reads/writes over a disk array, with uniform,
// sequential or Zipf-like address distributions. Used to measure how
// much a running conversion inflates application latency — the
// online-service dimension of the paper's Algorithm 2.

#include <cstdint>
#include <vector>

#include "sim/trace.hpp"

namespace c56::sim {

enum class AddressPattern { kUniform, kSequential, kZipf };

struct WorkloadParams {
  int disks = 5;
  std::int64_t blocks_per_disk = 1 << 16;
  std::uint32_t block_bytes = 4096;
  double iops = 200.0;            // mean arrival rate
  double horizon_ms = 1000.0;     // generation window
  double read_fraction = 0.7;
  /// Bytes per write request (0 = whole block). A non-zero value below
  /// block_bytes models the page-sized small writes that drive the
  /// controller's sub-block delta plane; reads still fetch full blocks.
  std::uint32_t write_bytes = 0;
  AddressPattern pattern = AddressPattern::kUniform;
  double zipf_theta = 0.99;       // skew for kZipf
  int tag = 1;                    // request tag for latency reporting
  std::uint64_t seed = 1;
  /// Keep generating past horizon_ms (same Poisson process, issue
  /// times keep growing) until at least this many requests exist.
  /// 0 = the horizon alone bounds the stream (the historical
  /// behavior). Lets open-loop load drivers ask for an exact-count
  /// arrival schedule instead of tuning iops x horizon by hand.
  std::int64_t min_requests = 0;
};

/// Generate the request stream (sorted by issue time).
std::vector<Request> make_workload(const WorkloadParams& params);

}  // namespace c56::sim
