#include "sim/workload.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace c56::sim {

std::vector<Request> make_workload(const WorkloadParams& p) {
  if (p.disks <= 0 || p.blocks_per_disk <= 0 || p.iops <= 0.0 ||
      p.horizon_ms <= 0.0 || p.write_bytes > p.block_bytes ||
      p.min_requests < 0) {
    throw std::invalid_argument("make_workload: bad parameters");
  }
  Rng rng(p.seed);
  std::vector<Request> out;
  const std::uint32_t sectors =
      std::max<std::uint32_t>(1, p.block_bytes / 512);
  const std::int64_t total_blocks =
      static_cast<std::int64_t>(p.disks) * p.blocks_per_disk;

  // Zipf over a fixed number of rank buckets mapped onto the address
  // space; the classic harmonic form is fine at this granularity.
  std::vector<double> zipf_cdf;
  if (p.pattern == AddressPattern::kZipf) {
    constexpr int kRanks = 1024;
    zipf_cdf.reserve(kRanks);
    double sum = 0.0;
    for (int i = 1; i <= kRanks; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), p.zipf_theta);
      zipf_cdf.push_back(sum);
    }
    for (double& v : zipf_cdf) v /= sum;
  }

  double t = 0.0;
  std::int64_t seq_cursor = 0;
  while (true) {
    // Exponential inter-arrival.
    t += -std::log(1.0 - rng.next_double()) * 1e3 / p.iops;
    if (t >= p.horizon_ms &&
        static_cast<std::int64_t>(out.size()) >= p.min_requests) {
      break;
    }
    std::int64_t block = 0;
    switch (p.pattern) {
      case AddressPattern::kUniform:
        block = static_cast<std::int64_t>(
            rng.next_below(static_cast<std::uint64_t>(total_blocks)));
        break;
      case AddressPattern::kSequential:
        block = seq_cursor++ % total_blocks;
        break;
      case AddressPattern::kZipf: {
        const double u = rng.next_double();
        const auto it =
            std::lower_bound(zipf_cdf.begin(), zipf_cdf.end(), u);
        const auto rank = static_cast<std::size_t>(
            std::distance(zipf_cdf.begin(), it));
        // Scatter each rank bucket deterministically over the space.
        const std::int64_t bucket = static_cast<std::int64_t>(
            (rank * 2654435761u) % static_cast<std::uint64_t>(total_blocks));
        block = bucket;
        break;
      }
    }
    Request r;
    r.disk = static_cast<int>(block % p.disks);
    r.lba = static_cast<std::uint64_t>(block / p.disks) * sectors;
    r.op = rng.next_double() < p.read_fraction ? Op::kRead : Op::kWrite;
    r.bytes = (r.op == Op::kWrite && p.write_bytes != 0) ? p.write_bytes
                                                         : p.block_bytes;
    r.issue_ms = t;
    r.tag = p.tag;
    out.push_back(r);
  }
  return out;
}

}  // namespace c56::sim
