#include "sim/disk_model.hpp"

#include <cassert>

namespace c56::sim {

DiskModel::DiskModel(const DiskParams& params) : params_(params) {}

double DiskModel::service_time_ms(std::uint64_t lba, std::size_t bytes) {
  assert(bytes > 0);
  double t = 0.0;
  if (!has_position_ || lba < next_sequential_lba_) {
    t += params_.avg_seek_ms + params_.avg_rotational_ms();
  } else if (lba != next_sequential_lba_) {
    const std::uint64_t gap = lba - next_sequential_lba_;
    if (gap <= params_.skip_window_sectors) {
      // Pass over the skipped sectors under rotation.
      t += static_cast<double>(gap * params_.sector_bytes) /
           (params_.transfer_mb_s * 1e6) * 1e3;
    } else {
      t += params_.avg_seek_ms + params_.avg_rotational_ms();
    }
  }
  t += static_cast<double>(bytes) / (params_.transfer_mb_s * 1e6) * 1e3;
  has_position_ = true;
  next_sequential_lba_ = lba + (bytes + params_.sector_bytes - 1) /
                                   params_.sector_bytes;
  return t;
}

void DiskModel::reset() {
  has_position_ = false;
  next_sequential_lba_ = 0;
}

}  // namespace c56::sim
