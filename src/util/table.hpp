#pragma once
// Minimal ASCII table formatter used by the benchmark harnesses to print
// figure series and table rows in the same shape the paper reports them.

#include <iosfwd>
#include <string>
#include <vector>

namespace c56 {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render with column alignment; numeric-looking cells right-aligned.
  void print(std::ostream& os) const;

  static std::string fmt(double v, int precision = 3);
  static std::string pct(double v, int precision = 1);  // 0.5 -> "50.0%"

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace c56
