#pragma once
// Checked environment-knob parsing. Every tunable the library reads
// from the environment (C56_CONVERT_WORKERS, C56_CACHE_STRIPES,
// C56_XOR_KERNEL, ...) goes through here so garbage, negative, or
// overflowing values cannot silently become 0, wrap, or hit undefined
// behaviour in atoi. Invalid input warns once per variable per process
// on stderr and falls back to the caller's default; numeric input
// outside the sane range is clamped to the nearer bound (also with a
// one-shot warning).

#include <optional>
#include <string>

namespace c56::util {

/// Integer knob `name` constrained to [lo, hi].
///  * unset            -> nullopt, silent (caller keeps its default)
///  * non-numeric, trailing junk, or empty -> nullopt + one warning
///  * numeric but out of [lo, hi] (including values that overflow
///    long long) -> clamped to the nearer bound + one warning
///  * otherwise the parsed value
std::optional<long long> env_int(const char* name, long long lo,
                                 long long hi);

/// Emit "c56: $name: $msg" to stderr, at most once per `name` for the
/// lifetime of the process (shared by env_int and by knobs with
/// non-integer domains, e.g. C56_XOR_KERNEL's unknown-name warning).
/// When a sink is installed (set_env_warn_sink) delivery goes through
/// it instead of stderr; the once-per-name dedup happens here either
/// way.
void warn_env_once(const std::string& name, const std::string& msg);

/// Process-wide replacement sink for warn_env_once. The observability
/// layer installs one so knob warnings become structured events (util
/// cannot depend on obs, so the inversion happens through this
/// pointer). nullptr restores the default stderr delivery. The sink
/// must be callable for the rest of the process lifetime and must not
/// call back into warn_env_once.
using EnvWarnSink = void (*)(const char* name, const char* msg);
void set_env_warn_sink(EnvWarnSink sink) noexcept;

}  // namespace c56::util
