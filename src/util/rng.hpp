#pragma once
// Deterministic, seedable PRNG (splitmix64 + xoshiro256**). All tests,
// examples and trace generators draw from this so that every run of the
// suite is reproducible bit-for-bit.

#include <cstdint>

namespace c56 {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  std::uint64_t next_u64() noexcept;

  /// Uniform in [0, bound) via rejection-free Lemire reduction. bound > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Fill a byte buffer with pseudo-random bytes.
  void fill(void* dst, std::size_t n) noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace c56
