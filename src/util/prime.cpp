#include "util/prime.hpp"

namespace c56 {

bool is_prime(int n) noexcept {
  if (n < 2) return false;
  if (n % 2 == 0) return n == 2;
  if (n % 3 == 0) return n == 3;
  for (int f = 5; static_cast<long long>(f) * f <= n; f += 6) {
    if (n % f == 0 || n % (f + 2) == 0) return false;
  }
  return true;
}

int next_prime_above(int n) noexcept {
  int c = n + 1;
  if (c <= 2) return 2;
  if (c % 2 == 0) ++c;
  while (!is_prime(c)) c += 2;
  return c;
}

int next_prime_at_least(int n) noexcept {
  return is_prime(n) ? n : next_prime_above(n);
}

}  // namespace c56
