#pragma once
// Prime-number helpers. Array codes in this library (Code 5-6, RDP,
// EVENODD, X-Code, P-Code, H-Code, HDP) are all defined for a prime
// parameter p; conversion planning also needs "smallest prime > m"
// for the virtual-disk construction of Section IV-B2 of the paper.

namespace c56 {

/// True iff n is prime (n >= 0; 0 and 1 are not prime).
bool is_prime(int n) noexcept;

/// Smallest prime strictly greater than n. n must be < 2^30.
int next_prime_above(int n) noexcept;

/// Smallest prime >= n.
int next_prime_at_least(int n) noexcept;

/// Positive remainder of a mod p (works for negative a), p > 0.
constexpr int pmod(int a, int p) noexcept {
  int r = a % p;
  return r < 0 ? r + p : r;
}

}  // namespace c56
