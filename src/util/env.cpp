#include "util/env.hpp"

#include <atomic>
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>

namespace c56::util {

namespace {
std::atomic<EnvWarnSink> g_warn_sink{nullptr};
}  // namespace

void set_env_warn_sink(EnvWarnSink sink) noexcept {
  g_warn_sink.store(sink, std::memory_order_release);
}

void warn_env_once(const std::string& name, const std::string& msg) {
  static std::mutex mu;
  static std::set<std::string>* warned = new std::set<std::string>();
  {
    std::lock_guard lk(mu);
    if (!warned->insert(name).second) return;
  }
  if (const EnvWarnSink sink = g_warn_sink.load(std::memory_order_acquire)) {
    sink(name.c_str(), msg.c_str());
    return;
  }
  std::fprintf(stderr, "c56: %s: %s\n", name.c_str(), msg.c_str());
}

std::optional<long long> env_int(const char* name, long long lo,
                                 long long hi) {
  const char* s = std::getenv(name);
  if (!s) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0') {
    warn_env_once(name, std::string("ignoring invalid value '") + s +
                            "' (expected an integer in [" +
                            std::to_string(lo) + ", " + std::to_string(hi) +
                            "])");
    return std::nullopt;
  }
  long long out = v;
  if (errno == ERANGE || v < lo || v > hi) {
    out = (errno == ERANGE ? (v == LLONG_MIN ? lo : hi)
                           : (v < lo ? lo : hi));
    warn_env_once(name, std::string("value '") + s + "' outside [" +
                            std::to_string(lo) + ", " + std::to_string(hi) +
                            "], clamped to " + std::to_string(out));
  }
  return out;
}

}  // namespace c56::util
