#include "util/rng.hpp"

#include <cstring>

namespace c56 {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  for (auto& s : s_) s = splitmix64(seed);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire's multiply-shift; slight modulo bias is irrelevant for our uses.
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

void Rng::fill(void* dst, std::size_t n) noexcept {
  auto* p = static_cast<unsigned char*>(dst);
  while (n >= 8) {
    std::uint64_t v = next_u64();
    std::memcpy(p, &v, 8);
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    std::uint64_t v = next_u64();
    std::memcpy(p, &v, n);
  }
}

}  // namespace c56
