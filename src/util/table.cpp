#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <ostream>

namespace c56 {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
          c == '-' || c == '+' || c == '%' || c == 'x' || c == 'e')) {
      return false;
    }
  }
  return true;
}

}  // namespace

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : header_[c];
      const std::size_t pad = width[c] - s.size();
      os << ' ';
      if (looks_numeric(s)) {
        os << std::string(pad, ' ') << s;
      } else {
        os << s << std::string(pad, ' ');
      }
      os << " |";
    }
    os << '\n';
  };
  line(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) line(row);
}

std::string TextTable::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TextTable::pct(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, v * 100.0);
  return buf;
}

}  // namespace c56
