#include "gf2/bitmatrix.hpp"

#include <algorithm>
#include <cassert>

namespace c56 {

BitMatrix::BitMatrix(int rows, int cols)
    : rows_(rows), cols_(cols), words_per_row_((cols + 63) / 64),
      bits_(static_cast<std::size_t>(rows) * words_per_row_, 0) {
  assert(rows >= 0 && cols >= 0);
}

bool BitMatrix::get(int r, int c) const noexcept {
  return (bits_[static_cast<std::size_t>(r) * words_per_row_ + c / 64] >>
          (c % 64)) & 1u;
}

void BitMatrix::set(int r, int c, bool v) noexcept {
  auto& w = bits_[static_cast<std::size_t>(r) * words_per_row_ + c / 64];
  const std::uint64_t mask = 1ULL << (c % 64);
  if (v) {
    w |= mask;
  } else {
    w &= ~mask;
  }
}

void BitMatrix::flip(int r, int c) noexcept {
  bits_[static_cast<std::size_t>(r) * words_per_row_ + c / 64] ^=
      1ULL << (c % 64);
}

void BitMatrix::xor_rows(int r, int s) noexcept {
  auto* dst = &bits_[static_cast<std::size_t>(r) * words_per_row_];
  const auto* src = &bits_[static_cast<std::size_t>(s) * words_per_row_];
  for (int w = 0; w < words_per_row_; ++w) dst[w] ^= src[w];
}

void BitMatrix::swap_rows(int r, int s) noexcept {
  if (r == s) return;
  auto* a = &bits_[static_cast<std::size_t>(r) * words_per_row_];
  auto* b = &bits_[static_cast<std::size_t>(s) * words_per_row_];
  for (int w = 0; w < words_per_row_; ++w) std::swap(a[w], b[w]);
}

bool BitMatrix::row_is_zero(int r) const noexcept {
  const auto* p = &bits_[static_cast<std::size_t>(r) * words_per_row_];
  for (int w = 0; w < words_per_row_; ++w) {
    if (p[w] != 0) return false;
  }
  return true;
}

int BitMatrix::rank() const {
  BitMatrix m(*this);
  int rank = 0;
  for (int c = 0; c < m.cols_ && rank < m.rows_; ++c) {
    int pivot = -1;
    for (int r = rank; r < m.rows_; ++r) {
      if (m.get(r, c)) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) continue;
    m.swap_rows(rank, pivot);
    for (int r = 0; r < m.rows_; ++r) {
      if (r != rank && m.get(r, c)) m.xor_rows(r, rank);
    }
    ++rank;
  }
  return rank;
}

}  // namespace c56
