#pragma once
// Generic erasure solver for XOR array codes.
//
// Every code in this library is described by its parity chains: sets of
// cell indices whose blocks XOR to zero (the parity element is a member
// of its own chain). Given the chains and a set of erased cells, the
// solver performs Gauss-Jordan elimination over GF(2) and emits, for
// each erased cell, a *recovery recipe*: the list of surviving cells
// whose XOR reproduces it. Recipes are data-independent, so they can be
// cached, counted for I/O accounting, and applied with the xorblk
// kernels.
//
// This is the ground-truth decoder used to (a) validate the specialized
// chain-walking decoders and (b) numerically certify the MDS property of
// each code (all single and double column erasures solvable).

#include <optional>
#include <span>
#include <vector>

namespace c56 {

struct ChainSpec {
  // Cell indices (in any flat numbering chosen by the caller) that XOR
  // to zero. Order is irrelevant.
  std::vector<int> cells;
};

struct RecoveryRecipe {
  int target = -1;              // erased cell this recipe reconstructs
  std::vector<int> sources;     // surviving cells to XOR together
};

/// Solve for the erased cells. Returns one recipe per erased cell (same
/// order as `erased`) or nullopt when the erasure pattern is not
/// decodable under the given chains. `num_cells` bounds the cell index
/// space; `erased` must contain distinct valid indices.
std::optional<std::vector<RecoveryRecipe>> solve_erasures(
    int num_cells, std::span<const ChainSpec> chains,
    std::span<const int> erased);

}  // namespace c56
