#include "gf2/chain_solver.hpp"

#include <algorithm>
#include <cassert>

#include "gf2/bitmatrix.hpp"

namespace c56 {

std::optional<std::vector<RecoveryRecipe>> solve_erasures(
    int num_cells, std::span<const ChainSpec> chains,
    std::span<const int> erased) {
  const int k = static_cast<int>(erased.size());
  if (k == 0) return std::vector<RecoveryRecipe>{};

  std::vector<int> unknown_of_cell(static_cast<std::size_t>(num_cells), -1);
  for (int i = 0; i < k; ++i) {
    assert(erased[i] >= 0 && erased[i] < num_cells);
    assert(unknown_of_cell[erased[i]] == -1 && "duplicate erased cell");
    unknown_of_cell[erased[i]] = i;
  }

  const int m = static_cast<int>(chains.size());
  // Augmented system [A | E]: A is the unknown-coefficient matrix, E
  // tracks which original equations were combined into each row so that
  // solved unknowns can be expressed as XORs of known cells.
  BitMatrix a(m, k);
  BitMatrix e(m, m);
  for (int r = 0; r < m; ++r) {
    e.set(r, r, true);
    for (int cell : chains[r].cells) {
      const int u = unknown_of_cell[cell];
      if (u >= 0) a.flip(r, u);  // flip: a cell listed twice cancels
    }
  }

  // Gauss-Jordan on A, mirroring row ops onto E.
  std::vector<int> pivot_row_of_unknown(static_cast<std::size_t>(k), -1);
  int rank = 0;
  for (int c = 0; c < k && rank < m; ++c) {
    int pivot = -1;
    for (int r = rank; r < m; ++r) {
      if (a.get(r, c)) {
        pivot = r;
        break;
      }
    }
    if (pivot < 0) continue;
    a.swap_rows(rank, pivot);
    e.swap_rows(rank, pivot);
    for (int r = 0; r < m; ++r) {
      if (r != rank && a.get(r, c)) {
        a.xor_rows(r, rank);
        e.xor_rows(r, rank);
      }
    }
    pivot_row_of_unknown[c] = rank;
    ++rank;
  }
  for (int c = 0; c < k; ++c) {
    if (pivot_row_of_unknown[c] < 0) return std::nullopt;  // underdetermined
  }

  // Row for unknown u now reads: x_u = XOR over combined equations of the
  // known cells in those equations. Cells appearing an even number of
  // times across the combined equations cancel.
  std::vector<RecoveryRecipe> recipes(static_cast<std::size_t>(k));
  std::vector<int> parity(static_cast<std::size_t>(num_cells), 0);
  for (int u = 0; u < k; ++u) {
    const int row = pivot_row_of_unknown[u];
    std::vector<int> touched;
    for (int q = 0; q < m; ++q) {
      if (!e.get(row, q)) continue;
      for (int cell : chains[q].cells) {
        if (unknown_of_cell[cell] >= 0) continue;  // unknowns handled by A
        if (parity[cell] == 0) touched.push_back(cell);
        parity[cell] ^= 1;
      }
    }
    RecoveryRecipe& rec = recipes[static_cast<std::size_t>(u)];
    rec.target = erased[u];
    for (int cell : touched) {
      if (parity[cell]) rec.sources.push_back(cell);
      parity[cell] = 0;
    }
    std::sort(rec.sources.begin(), rec.sources.end());
  }
  return recipes;
}

}  // namespace c56
