#pragma once
// Dense bit matrix over GF(2) with row operations, used by the generic
// erasure solver. Rows are packed into 64-bit words.

#include <cstdint>
#include <vector>

namespace c56 {

class BitMatrix {
 public:
  BitMatrix(int rows, int cols);

  int rows() const noexcept { return rows_; }
  int cols() const noexcept { return cols_; }

  bool get(int r, int c) const noexcept;
  void set(int r, int c, bool v) noexcept;
  void flip(int r, int c) noexcept;

  /// row r ^= row s.
  void xor_rows(int r, int s) noexcept;
  void swap_rows(int r, int s) noexcept;

  bool row_is_zero(int r) const noexcept;

  /// Rank via Gaussian elimination on a copy.
  int rank() const;

 private:
  int rows_, cols_, words_per_row_;
  std::vector<std::uint64_t> bits_;
};

}  // namespace c56
