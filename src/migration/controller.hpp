#pragma once
// Block-level RAID controller over a DiskArray for any code in the zoo.
//
// This is the substrate behind two of the paper's qualitative claims:
// Table III's "single write performance" column (a small write costs
// one read-modify-write per parity the block feeds — optimal codes pay
// exactly two) and the degraded-mode service that motivates high
// reliability during conversion (Table VI). The controller serves
// logical data blocks, maintains every parity on writes, reconstructs
// reads under up to two failed disks, rebuilds replaced disks, and
// scrubs stripes.
//
// Geometry: disk d stores target column d + v of the code (v = virtual
// columns, which have no physical disk); logical data blocks enumerate
// the code's data cells stripe by stripe in row-major order.
//
// Three I/O paths exist side by side:
//   * the per-block read(l, out)/write(l, in) pair — one block, one
//     read-modify-write per affected parity (Table III's metric);
//   * the ranged read(l, count, out)/write(l, count, in) pair — the
//     batched stripe-aware planner. Requests are grouped by stripe; a
//     write covering every data cell of a stripe regenerates parity
//     with encode() and issues no pre-reads at all; a partial-stripe
//     write coalesces the parity deltas of all its blocks so each
//     parity block is read and written at most once per stripe, and a
//     parity whose full input set is in the batch is computed directly
//     (no pre-read). Disk I/O is issued through the vectored
//     DiskArray::read_blocks/write_blocks, one run per per-column
//     stretch. Both paths leave byte-identical array contents on
//     parity-consistent stripes (which a zeroed array already is, and
//     which every path here maintains).
//   * the sub-block write_range(l, off, in) path (single and batched) —
//     the delta write plane. Every code in the zoo XORs parity
//     bytewise, so a data byte at intra-block offset o feeds each of
//     its parities at the same offset o; a sub-block write therefore
//     only needs to move the touched byte range: read the old range,
//     apply parity ^= new ^ old over that range (xor_delta kernels),
//     and write the range back — data and every covering parity,
//     horizontal and diagonal alike, via DiskArray range I/O. A batch
//     coalesces deltas per parity block (one ranged read-modify-write
//     per parity per stripe). Writes covering the whole block — or at
//     least C56_SUBBLOCK_PROMOTE_PCT percent of it — are promoted to
//     whole-block semantics, and write_range(l, 0, full_block) is
//     byte- and I/O-count-identical to write(l, full_block).
//
// An optional write-through stripe cache (set_cache_stripes() or
// C56_CACHE_STRIPES, default off) caches *data* cells at their current
// logical value: reads fill it, writes update it, so a hit never goes
// to disk. fail_disk/rebuild_disk invalidate it wholesale; external
// writers to the same DiskArray (e.g. an online-migration hand-off)
// must call invalidate_cache().

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <set>
#include <vector>

#include "codes/erasure_code.hpp"
#include "migration/disk_array.hpp"
#include "migration/stripe_cache.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace c56::mig {

class ArrayController {
 public:
  /// `array` must expose exactly code->cols() - virtual columns disks,
  /// with blocks_per_disk a multiple of code->rows().
  ArrayController(DiskArray& array, std::unique_ptr<ErasureCode> code);

  const ErasureCode& code() const { return *code_; }
  std::int64_t stripes() const { return stripes_; }
  std::int64_t logical_blocks() const;

  /// Data-block I/O. Reads reconstruct on the fly when the block's disk
  /// is failed; writes update every affected surviving parity and, for
  /// a failed data disk, keep the block recoverable through parity.
  void read(std::int64_t logical, std::span<std::uint8_t> out);
  void write(std::int64_t logical, std::span<const std::uint8_t> in);

  /// Ranged data-block I/O over [logical, logical + count): the batched
  /// stripe-aware path (see header comment). The buffer holds count
  /// consecutive logical blocks.
  void read(std::int64_t logical, std::int64_t count,
            std::span<std::uint8_t> out);
  void write(std::int64_t logical, std::int64_t count,
             std::span<const std::uint8_t> in);

  /// Sub-block I/O (the delta write plane, see header comment).
  /// write_range replaces bytes [offset, offset + in.size()) of logical
  /// block `logical`, XOR-delta-updating only that byte range of every
  /// surviving parity the cell feeds. A zero-length range is a
  /// validated no-op; offset/len outside the block throw out_of_range.
  /// A full-block range takes the whole-block path and is byte- and
  /// I/O-count-identical to write(logical, in).
  void write_range(std::int64_t logical, std::int64_t offset,
                   std::span<const std::uint8_t> in);
  void read_range(std::int64_t logical, std::int64_t offset,
                  std::span<std::uint8_t> out);

  struct SubWrite {
    std::int64_t logical = 0;
    std::int64_t offset = 0;
    std::span<const std::uint8_t> data;
  };
  /// Batched sub-block writes. Entries are validated up front, grouped
  /// by stripe, and applied in batch order within each stripe (later
  /// entries win on overlap). Per stripe, the per-cell byte ranges are
  /// unioned and the parity deltas of all touched cells are coalesced,
  /// so each affected parity block is read and written at most once
  /// per batch regardless of how many sub-writes feed it.
  void write_range(std::span<const SubWrite> batch);

  /// Delta-plane control (defaults: enabled, promote at 100%; the
  /// C56_SUBBLOCK / C56_SUBBLOCK_PROMOTE_PCT environment knobs set
  /// these at construction time). Disabling routes every sub-block
  /// write through whole-block read-modify-write; the promotion
  /// threshold widens ranges covering >= pct% of a block to the whole
  /// block.
  void set_subblock_delta(bool on) { subblock_delta_ = on; }
  bool subblock_delta() const { return subblock_delta_; }
  void set_subblock_promote_pct(int pct);
  int subblock_promote_pct() const { return subblock_promote_pct_; }

  /// Stripe cache control. n == 0 disables (the default, unless the
  /// C56_CACHE_STRIPES environment variable set a size at construction
  /// time). Resizing drops all cached contents.
  void set_cache_stripes(std::size_t n);
  std::size_t cache_stripes() const { return cache_stripes_; }
  /// Lock shards of the stripe cache (default 8, or C56_CACHE_SHARDS
  /// at construction time, clamped to [1, 4096]) — raise it when many
  /// service worker threads hammer one cached volume. Takes effect on
  /// the next set_cache_stripes(); calling this while a cache exists
  /// rebuilds it empty. Throws std::invalid_argument outside the range.
  void set_cache_shards(int n);
  int cache_shards() const { return cache_shards_; }
  /// Drop every cached block. Required after anything other than this
  /// controller writes the underlying DiskArray (migration hand-off,
  /// raw_block pokes, ...).
  void invalidate_cache();
  /// Zeroed stats when the cache is disabled.
  StripeCache::Stats cache_stats() const;

  /// Ranged-planner decision counters, maintained only while
  /// obs::metrics_enabled() — they are the observability view of the
  /// batched path (full-stripe fast paths taken, parities computed
  /// directly with no pre-read, parities that paid a read-modify-write).
  struct PlannerCounters {
    std::uint64_t ranged_reads = 0;
    std::uint64_t ranged_writes = 0;
    std::uint64_t full_stripe_writes = 0;
    std::uint64_t partial_stripe_writes = 0;
    std::uint64_t direct_parities = 0;  // pre-reads avoided
    std::uint64_t rmw_parities = 0;
    // Delta write plane.
    std::uint64_t subblock_writes = 0;      // sub-writes processed
    std::uint64_t delta_parities = 0;       // parities updated by range RMW
    std::uint64_t subblock_promotions = 0;  // cells widened to whole-block
  };
  PlannerCounters planner_counters() const;

  /// Export planner counters, ranged-I/O latency histograms
  /// ({prefix}_read_latency_us / {prefix}_write_latency_us), and the
  /// stripe-cache stats (plus a {prefix}_cache_hit_ratio_pct gauge)
  /// through `registry` snapshots. Detaches on destruction.
  /// A non-empty `labels` block (e.g. `volume="3"`) is appended to
  /// every counter/gauge name so one registry can host many
  /// controllers; the latency histograms are skipped in that case —
  /// histogram names must stay label-free (metrics.hpp), and two
  /// controllers sharing an unlabeled name would collide.
  void attach_metrics(obs::Registry& registry,
                      const std::string& prefix = "controller",
                      const std::string& labels = "");
  void detach_metrics() { metrics_handle_.remove(); }

  /// Record structured events (disk failures, rebuilds, and — while
  /// obs::events_enabled() — rate-limited ranged-I/O debug events) into
  /// `log`, which is kept by reference and must outlive the controller.
  void attach_events(obs::EventLog& log) { events_ = &log; }
  void detach_events() { events_ = nullptr; }

  /// Failure management. At most two concurrent failures (the code's
  /// fault tolerance); fail_disk throws beyond that.
  void fail_disk(int disk);
  bool failed(int disk) const;
  int failed_count() const { return static_cast<int>(failed_.size()); }
  /// Reconstruct every block of a failed disk in place and mark it
  /// healthy again. Returns blocks rebuilt.
  std::int64_t rebuild_disk(int disk);

  /// Verify every stripe; returns the indices of inconsistent stripes.
  /// Each stripe is verified under its stripe lock (the same gate every
  /// writer path takes), so a stripe written mid-verify can no longer
  /// report a false positive.
  std::vector<std::int64_t> scrub();

  /// Run `fn` with stripe `stripe` locked against this controller's
  /// writers — the scrubber's coordination hook (scrub() and the write
  /// paths take the same lock internally). `fn` must not call back into
  /// this controller's locked I/O entry points.
  void with_stripe_lock(std::int64_t stripe,
                        const std::function<void()>& fn) const;

  /// Cells of one stripe as a buffer + view. Contract: blocks are read
  /// *as stored* through the raw (uncounted, fault-free) backdoor —
  /// failed columns are NOT reconstructed, they return whatever stale
  /// bytes the dead disk holds, and the stripe cache is bypassed.
  /// Callers that want the logical value of a failed cell must decode
  /// explicitly. read_stripe() allocates a fresh Buffer per call;
  /// loop-heavy callers (scrub, migrators) should call
  /// read_stripe_into() with a reused/pooled buffer instead.
  Buffer read_stripe(std::int64_t stripe) const;
  /// Same contract, into caller storage of exactly
  /// cell_count() * block_bytes() bytes (checked).
  void read_stripe_into(std::int64_t stripe,
                        std::span<std::uint8_t> out) const;

 private:
  struct Locus {
    Cell cell;
    std::int64_t stripe;
  };
  Locus locate(std::int64_t logical) const;
  int disk_of(int col) const { return col - virtual_cols_; }
  int col_of(int disk) const { return disk + virtual_cols_; }
  std::int64_t block_of(std::int64_t stripe, int row) const {
    return stripe * code_->rows() + row;
  }
  int flat_of(Cell c) const { return c.row * code_->cols() + c.col; }
  bool cell_failed(Cell c) const;
  /// Expanded data-cell inputs of the parity at flat index `pflat`.
  std::span<const Cell> parity_inputs(int pflat) const;
  /// Parities fed by data cell index `idx` (CSR over flat arrays).
  std::span<const Cell> parities_of(int idx) const;
  /// Recovery recipes for the current failure set (lazily solved).
  const std::vector<RecoveryRecipe>& recipes();
  void read_cell(std::int64_t stripe, Cell c, std::span<std::uint8_t> out);
  void reconstruct_cell(std::int64_t stripe, Cell c,
                        std::span<std::uint8_t> out);
  void invalidate_recovery_state();  // recipes + cache
  // Batched-path stages (one stripe each; i0/n index the stripe's data
  // cells in logical order).
  void read_run(std::int64_t stripe, int i0, int n,
                std::span<std::uint8_t> out);
  void write_full_stripe(std::int64_t stripe,
                         std::span<const std::uint8_t> in);
  void write_partial_stripe(std::int64_t stripe, int i0, int n,
                            std::span<const std::uint8_t> in);
  // Delta-plane stage: sub-writes of one stripe, already validated, in
  // batch order, applied under the stripe lock.
  void write_subblock_stripe(std::int64_t stripe,
                             std::span<const SubWrite> ops);
  // Vectored cell I/O: both group the requested cells into per-column
  // runs of consecutive rows and issue one DiskArray batch per run.
  struct CellFetch {
    Cell cell;
    int dst;  // block index inside the destination buffer
  };
  /// Current logical values of the given cells (cache, then batched
  /// disk reads, reconstructing failed cells). use_cache=false for
  /// parity cells, which must never enter the data-cell cache.
  void fetch_cells(std::int64_t stripe, std::span<const CellFetch> want,
                   std::uint8_t* dst_blocks, bool use_cache);
  struct CellWrite {
    Cell cell;
    const std::uint8_t* src;  // one block
  };
  void write_cells(std::int64_t stripe, std::span<const CellWrite> want);
  void cache_fill(std::int64_t stripe, Cell c,
                  std::span<const std::uint8_t> v) {
    if (cache_) cache_->fill(stripe, flat_of(c), v);
  }

  /// Stripe-level writer/scrub exclusion, striped over a fixed pool of
  /// mutexes (two stripes may alias one mutex; callers only ever hold
  /// one stripe lock at a time, so aliasing cannot deadlock). Leaf-ish:
  /// only DiskArray's internal fault_mu_ ever nests inside it.
  std::mutex& stripe_lock(std::int64_t s) const {
    return stripe_locks_[static_cast<std::size_t>(s) % kStripeLockStripes];
  }
  static constexpr std::size_t kStripeLockStripes = 64;
  mutable std::array<std::mutex, kStripeLockStripes> stripe_locks_;

  DiskArray& array_;
  std::unique_ptr<ErasureCode> code_;
  int virtual_cols_;
  std::int64_t stripes_;

  // Flat dense cell metadata, computed once in the constructor and
  // indexed by row * cols + col (no maps on the hot path).
  std::vector<Cell> data_cells_;       // logical order
  std::vector<int> data_index_;        // flat cell -> logical idx, -1
  std::vector<CellKind> kind_;         // flat cell -> kind
  std::vector<int> parities_offset_;   // CSR: per data idx into ...
  std::vector<Cell> parities_cells_;   // ... this parity-cell pool
  std::vector<int> chain_offset_;      // CSR: flat parity -> inputs in ...
  std::vector<Cell> chain_inputs_;     // ... this expanded-input pool
  std::vector<int> chain_begin_;       // flat parity -> index into offsets
                                       // (-1 for non-parity cells)

  std::set<int> failed_;                // failed disk ids
  std::vector<RecoveryRecipe> recipes_; // for failed_ set
  bool recipes_valid_ = false;

  std::unique_ptr<StripeCache> cache_;  // null when disabled
  std::size_t cache_stripes_ = 0;
  int cache_shards_ = 8;  // StripeCache's historical default

  // Delta write plane configuration (see set_subblock_delta).
  bool subblock_delta_ = true;
  int subblock_promote_pct_ = 100;

  // Observability (updated only under obs::metrics_enabled()).
  obs::Counter ranged_reads_;
  obs::Counter ranged_writes_;
  obs::Counter full_stripe_writes_;
  obs::Counter partial_stripe_writes_;
  obs::Counter direct_parities_;
  obs::Counter rmw_parities_;
  obs::Counter subblock_writes_;
  obs::Counter delta_parities_;
  obs::Counter subblock_promotions_;
  obs::Histogram read_latency_us_;
  obs::Histogram write_latency_us_;
  // Declared last so the collector detaches before anything it reads.
  /// No-op while no EventLog is attached; hot callers additionally
  /// guard on events_ && obs::events_enabled() before building text.
  void emit_event(obs::EventLevel level, std::string message, int disk = -1,
                  const char* rate_key = nullptr) const;
  obs::EventLog* events_ = nullptr;

  obs::CollectorHandle metrics_handle_;
};

}  // namespace c56::mig
