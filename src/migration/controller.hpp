#pragma once
// Block-level RAID controller over a DiskArray for any code in the zoo.
//
// This is the substrate behind two of the paper's qualitative claims:
// Table III's "single write performance" column (a small write costs
// one read-modify-write per parity the block feeds — optimal codes pay
// exactly two) and the degraded-mode service that motivates high
// reliability during conversion (Table VI). The controller serves
// logical data blocks, maintains every parity on writes, reconstructs
// reads under up to two failed disks, rebuilds replaced disks, and
// scrubs stripes.
//
// Geometry: disk d stores target column d + v of the code (v = virtual
// columns, which have no physical disk); logical data blocks enumerate
// the code's data cells stripe by stripe in row-major order.

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <set>
#include <vector>

#include "codes/erasure_code.hpp"
#include "migration/disk_array.hpp"

namespace c56::mig {

class ArrayController {
 public:
  /// `array` must expose exactly code->cols() - virtual columns disks,
  /// with blocks_per_disk a multiple of code->rows().
  ArrayController(DiskArray& array, std::unique_ptr<ErasureCode> code);

  const ErasureCode& code() const { return *code_; }
  std::int64_t stripes() const { return stripes_; }
  std::int64_t logical_blocks() const;

  /// Data-block I/O. Reads reconstruct on the fly when the block's disk
  /// is failed; writes update every affected surviving parity and, for
  /// a failed data disk, keep the block recoverable through parity.
  void read(std::int64_t logical, std::span<std::uint8_t> out);
  void write(std::int64_t logical, std::span<const std::uint8_t> in);

  /// Failure management. At most two concurrent failures (the code's
  /// fault tolerance); fail_disk throws beyond that.
  void fail_disk(int disk);
  bool failed(int disk) const;
  int failed_count() const { return static_cast<int>(failed_.size()); }
  /// Reconstruct every block of a failed disk in place and mark it
  /// healthy again. Returns blocks rebuilt.
  std::int64_t rebuild_disk(int disk);

  /// Verify every stripe; returns the indices of inconsistent stripes.
  std::vector<std::int64_t> scrub();

  /// Cells of one stripe as a fresh buffer + view (failed columns are
  /// read as stored — callers deciding to decode do so explicitly).
  Buffer read_stripe(std::int64_t stripe) const;

 private:
  struct Locus {
    Cell cell;
    std::int64_t stripe;
  };
  Locus locate(std::int64_t logical) const;
  int disk_of(int col) const { return col - virtual_cols_; }
  int col_of(int disk) const { return disk + virtual_cols_; }
  std::int64_t block_of(std::int64_t stripe, int row) const {
    return stripe * code_->rows() + row;
  }
  bool cell_failed(Cell c) const;
  /// Recovery recipes for the current failure set (lazily solved).
  const std::vector<RecoveryRecipe>& recipes();
  void read_cell(std::int64_t stripe, Cell c, std::span<std::uint8_t> out);
  void reconstruct_cell(std::int64_t stripe, Cell c,
                        std::span<std::uint8_t> out);

  DiskArray& array_;
  std::unique_ptr<ErasureCode> code_;
  int virtual_cols_;
  std::int64_t stripes_;
  std::vector<Cell> data_cells_;                   // logical order
  std::vector<std::vector<Cell>> parities_of_;     // per data cell index
  std::map<std::pair<int, int>, int> data_index_;  // cell -> logical idx
  std::set<int> failed_;                           // failed disk ids
  std::vector<RecoveryRecipe> recipes_;            // for failed_ set
  bool recipes_valid_ = false;
};

}  // namespace c56::mig
