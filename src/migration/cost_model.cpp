#include "migration/cost_model.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <set>
#include <stdexcept>

#include "codes/code56.hpp"
#include "util/prime.hpp"

namespace c56::mig {

const char* to_string(Approach a) noexcept {
  switch (a) {
    case Approach::kViaRaid0: return "RAID-5->RAID-0->RAID-6";
    case Approach::kViaRaid4: return "RAID-5->RAID-4->RAID-6";
    case Approach::kDirect: return "RAID-5->RAID-6";
  }
  return "?";
}

namespace {

std::unique_ptr<ErasureCode> instantiate(const ConversionSpec& s) {
  if (s.code == CodeId::kCode56) {
    return std::make_unique<Code56>(s.p, s.p - s.m - 1);
  }
  return make_code(s.code, s.p);
}

int canonical_m(CodeId code, int p) {
  switch (code) {
    case CodeId::kCode56: return p - 1;
    case CodeId::kRdp: return p - 1;     // n = p+1, adds 2
    case CodeId::kEvenOdd: return p;     // n = p+2, adds 2
    case CodeId::kHCode: return p - 1;   // n = p+1, adds 2
    case CodeId::kXCode: return p;       // in place
    case CodeId::kPCode: return p - 1;   // in place
    case CodeId::kHdp: return p - 1;     // in place
  }
  throw std::invalid_argument("unknown CodeId");
}

}  // namespace

int ConversionSpec::n() const {
  if (code == CodeId::kCode56) return m + 1;
  return disks_of(code, p);
}

int ConversionSpec::virtual_disks() const {
  return code == CodeId::kCode56 ? p - m - 1 : 0;
}

std::string ConversionSpec::label() const {
  std::string s = to_string(approach);
  s += "(";
  s += to_string(code);
  s += "," + std::to_string(m) + "," + std::to_string(n()) + ")";
  if (load_balanced) s += "[LB]";
  return s;
}

ConversionSpec ConversionSpec::canonical(CodeId code, Approach a, int p,
                                         bool lb) {
  ConversionSpec s;
  s.code = code;
  s.approach = a;
  s.p = p;
  s.m = canonical_m(code, p);
  s.load_balanced = lb;
  if (!s.valid()) throw std::invalid_argument("invalid conversion spec");
  return s;
}

ConversionSpec ConversionSpec::direct_code56(int m, bool lb) {
  ConversionSpec s;
  s.code = CodeId::kCode56;
  s.approach = Approach::kDirect;
  s.m = m;
  s.p = next_prime_above(m);
  s.load_balanced = lb;
  return s;
}

bool ConversionSpec::valid() const {
  if (!is_prime(p) || m < 2) return false;
  switch (approach) {
    case Approach::kViaRaid0:
    case Approach::kViaRaid4:
      return is_horizontal_code(code) && m == canonical_m(code, p);
    case Approach::kDirect:
      if (code == CodeId::kCode56) {
        return p == next_prime_above(m);
      }
      return !is_horizontal_code(code) && m == canonical_m(code, p);
  }
  return false;
}

double PhaseCost::reads() const {
  double s = 0;
  for (double r : disk_reads) s += r;
  return s;
}

double PhaseCost::writes() const {
  double s = 0;
  for (double w : disk_writes) s += w;
  return s;
}

double PhaseCost::time_nlb() const {
  double t = 0;
  for (std::size_t d = 0; d < disk_reads.size(); ++d) {
    t = std::max(t, disk_reads[d] + disk_writes[d]);
  }
  return t;
}

double PhaseCost::time_lb(int disks) const { return total_io() / disks; }

namespace {

/// Internal geometry shared by the cost computations.
struct Layout {
  std::unique_ptr<ErasureCode> code;
  std::vector<int> original_cols;  // target columns backed by source disks
  std::vector<char> is_original;   // indexed by target column
  std::set<std::pair<int, int>> reserved;  // pre-reserved parity cells
  bool reuse = false;              // old RAID-5 parity survives in place
  double available = 0;            // source-usable cells per stripe
  double old_parities = 0;         // O_s
  double data_blocks = 0;          // B_s
  std::vector<int> usable_per_row; // source-usable cells in each row

  /// Cell occupied by the source RAID-5 (data or old parity).
  bool usable(Cell c) const {
    return is_original[static_cast<std::size_t>(c.col)] &&
           code->kind(c) != CellKind::kVirtual &&
           !reserved.count({c.row, c.col});
  }
};

Layout build_layout(const ConversionSpec& s) {
  Layout l;
  l.code = instantiate(s);
  const ErasureCode& code = *l.code;
  l.is_original.assign(static_cast<std::size_t>(code.cols()), 0);
  const int v = s.virtual_disks();
  if (s.code == CodeId::kCode56) {
    for (int k = 0; k < s.m; ++k) l.original_cols.push_back(v + k);
  } else {
    for (int k = 0; k < s.m; ++k) l.original_cols.push_back(k);
  }
  for (int c : l.original_cols) l.is_original[static_cast<std::size_t>(c)] = 1;

  l.reuse = reuses_raid5_parity(s.code);
  int reserved_count = 0;
  int row_parities = 0;
  for (int r = 0; r < code.rows(); ++r) {
    for (int c : l.original_cols) {
      const CellKind k = code.kind({r, c});
      if (k == CellKind::kVirtual) continue;
      if (k == CellKind::kRowParity && l.reuse) {
        ++row_parities;  // an old parity block, kept in place
        continue;
      }
      if (is_parity(k)) {
        l.reserved.insert({r, c});
        ++reserved_count;
      }
    }
  }
  // Cells on original disks the source RAID-5 actually occupies. The
  // source lays one parity per row that has any usable cell, so rows
  // with reserved cells carry a higher parity fraction.
  l.usable_per_row.assign(static_cast<std::size_t>(code.rows()), 0);
  int source_cells = 0;
  int source_rows = 0;
  for (int r = 0; r < code.rows(); ++r) {
    int& usable = l.usable_per_row[static_cast<std::size_t>(r)];
    for (int c : l.original_cols) {
      if (l.usable({r, c})) ++usable;
    }
    source_cells += usable;
    source_rows += usable > 0;
  }
  (void)reserved_count;  // folded into the per-row usable counts
  l.available = source_cells;
  if (l.reuse) {
    l.old_parities = row_parities;
    l.data_blocks = code.data_cell_count();
    assert(std::abs(l.available - row_parities - l.data_blocks) < 1e-9);
  } else {
    l.old_parities = source_rows;
    l.data_blocks = l.available - source_rows;
  }
  return l;
}

/// Weight of a data-cell read: probability the slot holds real data
/// rather than the hole left by the row's (invalidated or migrated)
/// old parity.
double data_weight(const Layout& l, const ConversionSpec& s, Cell cell) {
  (void)s;
  if (!l.usable(cell)) return 0.0;  // added disk, reserved or virtual
  if (l.reuse) return 1.0;
  const int usable = l.usable_per_row[static_cast<std::size_t>(cell.row)];
  return usable > 1 ? static_cast<double>(usable - 1) / usable : 0.0;
}

/// Generate the given parity chains in one phase. `prior_parities` are
/// parity cells that already exist on disk (read weight 1); parities in
/// `generated` are produced in memory during this phase (no read).
PhaseCost generation_phase(const Layout& l, const ConversionSpec& s,
                           std::string name,
                           const std::set<std::pair<int, int>>& generated,
                           const std::set<std::pair<int, int>>& prior) {
  const ErasureCode& code = *l.code;
  PhaseCost ph;
  ph.name = std::move(name);
  ph.disk_reads.assign(static_cast<std::size_t>(code.cols()), 0.0);
  ph.disk_writes.assign(static_cast<std::size_t>(code.cols()), 0.0);

  std::set<std::pair<int, int>> read_once;
  for (const ParityChain& ch : code.chains()) {
    if (!generated.count({ch.parity.row, ch.parity.col})) continue;
    double operands = 0.0;
    for (Cell in : ch.inputs) {
      const std::pair<int, int> key{in.row, in.col};
      if (generated.count(key)) {
        operands += 1.0;  // in memory, produced this phase
        continue;
      }
      double w;
      if (prior.count(key)) {
        w = 1.0;
      } else if (is_parity(code.kind(in))) {
        // Parity input that is neither generated nor migrated: only
        // possible for reuse layouts (e.g. HDP rows feeding nothing
        // here); read it from disk.
        w = 1.0;
      } else {
        w = data_weight(l, s, in);
      }
      operands += w;
      if (w > 0.0 && read_once.insert(key).second) {
        ph.disk_reads[static_cast<std::size_t>(in.col)] += w;
      }
    }
    ph.xors += std::max(0.0, operands - 1.0);
    ph.disk_writes[static_cast<std::size_t>(ch.parity.col)] += 1.0;
  }
  return ph;
}

/// Spread one old-parity access per source row uniformly over the
/// row's usable columns (the rotation limit of the RAID-5 layout).
void add_old_parity_io(const Layout& l, std::vector<double>& per_disk) {
  for (int r = 0; r < l.code->rows(); ++r) {
    const int usable = l.usable_per_row[static_cast<std::size_t>(r)];
    if (usable == 0) continue;
    for (int c : l.original_cols) {
      if (l.usable({r, c})) {
        per_disk[static_cast<std::size_t>(c)] += 1.0 / usable;
      }
    }
  }
}

void normalize(PhaseCost& ph, double b) {
  for (double& r : ph.disk_reads) r /= b;
  for (double& w : ph.disk_writes) w /= b;
  ph.xors /= b;
}

}  // namespace

double data_blocks_per_stripe(const ConversionSpec& spec) {
  if (!spec.valid()) throw std::invalid_argument("invalid conversion spec");
  return build_layout(spec).data_blocks;
}

SingleWriteCost single_write_cost(const ErasureCode& code,
                                  std::size_t block_bytes, std::size_t len,
                                  bool delta, const sim::DiskParams& disk) {
  if (block_bytes == 0 || len == 0 || len > block_bytes) {
    throw std::invalid_argument("single_write_cost: bad range length");
  }
  double total_accesses = 0.0;
  std::int64_t data_cells = 0;
  for (int r = 0; r < code.rows(); ++r) {
    for (int c = 0; c < code.cols(); ++c) {
      if (code.kind({r, c}) != CellKind::kData) continue;
      ++data_cells;
      // Read old data + read each dependent parity, then write them all.
      total_accesses += 2.0 * (1.0 + code.update_complexity({r, c}));
    }
  }
  SingleWriteCost out;
  out.ops = total_accesses / static_cast<double>(data_cells);
  const auto moved = static_cast<double>(delta ? len : block_bytes);
  out.bytes = out.ops * moved;
  out.device_ms = out.ops * (disk.avg_seek_ms + disk.avg_rotational_ms()) +
                  out.bytes / (disk.transfer_mb_s * 1e3);
  return out;
}

ConversionCosts analyze(const ConversionSpec& s) {
  if (!s.valid()) {
    throw std::invalid_argument("invalid conversion spec: " + s.label());
  }
  const Layout l = build_layout(s);
  const ErasureCode& code = *l.code;
  const int cols = code.cols();
  const double b = l.data_blocks;

  ConversionCosts out;
  out.spec = s;

  // Extra space ratio: worst per-disk fraction of pre-reserved cells.
  for (int c : l.original_cols) {
    int reserved_in_col = 0;
    int usable_rows = 0;
    for (int r = 0; r < code.rows(); ++r) {
      if (code.kind({r, c}) == CellKind::kVirtual) continue;
      ++usable_rows;
      reserved_in_col += l.reserved.count({r, c}) != 0;
    }
    if (usable_rows > 0) {
      out.extra_space_ratio =
          std::max(out.extra_space_ratio,
                   static_cast<double>(reserved_in_col) / usable_rows);
    }
  }

  // Partition the parity cells.
  std::set<std::pair<int, int>> row_parities, other_parities, all_parities;
  for (int r = 0; r < code.rows(); ++r) {
    for (int c = 0; c < cols; ++c) {
      const CellKind k = code.kind({r, c});
      if (!is_parity(k)) continue;
      all_parities.insert({r, c});
      (k == CellKind::kRowParity ? row_parities : other_parities)
          .insert({r, c});
    }
  }

  switch (s.approach) {
    case Approach::kViaRaid0: {
      out.invalid_parity_ratio = l.old_parities / b;
      // Phase 1: NULL the old parities (one write per old parity,
      // rotating uniformly over the original disks).
      PhaseCost ph1;
      ph1.name = "degrade: invalidate old parity";
      ph1.disk_reads.assign(static_cast<std::size_t>(cols), 0.0);
      ph1.disk_writes.assign(static_cast<std::size_t>(cols), 0.0);
      add_old_parity_io(l, ph1.disk_writes);
      // Phase 2: generate every target parity from scratch.
      PhaseCost ph2 =
          generation_phase(l, s, "upgrade: generate all parities",
                           all_parities, {});
      out.new_parity_generation_ratio = all_parities.size() / b;
      normalize(ph1, b);
      normalize(ph2, b);
      out.phases = {std::move(ph1), std::move(ph2)};
      break;
    }
    case Approach::kViaRaid4: {
      out.parity_migration_ratio = l.old_parities / b;
      // The dedicated row-parity column receives the migrated parities.
      assert(row_parities.size() == static_cast<std::size_t>(code.rows()));
      const int parity_col = row_parities.begin()->second;
      PhaseCost ph1;
      ph1.name = "degrade: migrate old parity";
      ph1.disk_reads.assign(static_cast<std::size_t>(cols), 0.0);
      ph1.disk_writes.assign(static_cast<std::size_t>(cols), 0.0);
      add_old_parity_io(l, ph1.disk_reads);
      ph1.disk_writes[static_cast<std::size_t>(parity_col)] +=
          l.old_parities;
      PhaseCost ph2 =
          generation_phase(l, s, "upgrade: generate diagonal parities",
                           other_parities, row_parities);
      out.new_parity_generation_ratio = other_parities.size() / b;
      normalize(ph1, b);
      normalize(ph2, b);
      out.phases = {std::move(ph1), std::move(ph2)};
      break;
    }
    case Approach::kDirect: {
      if (s.code == CodeId::kCode56) {
        // Generate the dedicated diagonal column; nothing else moves.
        PhaseCost ph = generation_phase(
            l, s, "direct: generate diagonal parities", other_parities, {});
        out.new_parity_generation_ratio = other_parities.size() / b;
        normalize(ph, b);
        out.phases = {std::move(ph)};
      } else if (s.code == CodeId::kHdp) {
        // Generate anti-diagonal parities, then fold each into its
        // row's retained old parity (read-modify-write).
        PhaseCost ph = generation_phase(
            l, s, "direct: generate anti-diagonal parities + fold rows",
            other_parities, {});
        for (const auto& [r, c] : row_parities) {
          ph.disk_reads[static_cast<std::size_t>(c)] += 1.0;
          ph.disk_writes[static_cast<std::size_t>(c)] += 1.0;
          ph.xors += 1.0;
        }
        out.parity_migration_ratio = row_parities.size() / b;
        out.new_parity_generation_ratio = other_parities.size() / b;
        normalize(ph, b);
        out.phases = {std::move(ph)};
      } else {
        // X-Code / P-Code: old parities are NULLed, all parities are
        // generated into the reserved space, in one pass.
        out.invalid_parity_ratio = l.old_parities / b;
        PhaseCost ph = generation_phase(
            l, s, "direct: generate parities + invalidate old",
            all_parities, {});
        add_old_parity_io(l, ph.disk_writes);
        out.new_parity_generation_ratio = all_parities.size() / b;
        normalize(ph, b);
        out.phases = {std::move(ph)};
      }
      break;
    }
  }

  for (const PhaseCost& ph : out.phases) {
    out.read_io += ph.reads();
    out.write_io += ph.writes();
    out.xor_per_block += ph.xors;
    out.time += s.load_balanced ? ph.time_lb(s.n() + 0) : ph.time_nlb();
  }
  out.total_io = out.read_io + out.write_io;
  return out;
}

}  // namespace c56::mig
