#pragma once
// Migration health monitoring: live rate/ETA, stall detection, phase
// timelines, and a post-mortem flight recorder.
//
// A MigrationMonitor sits beside an OnlineMigrator and derives
// operator-facing signals from its authoritative progress counters
// (the contiguous-prefix watermark groups_done(), the state machine,
// per-worker row counters). Each poll() — typically driven as a
// MetricsSampler probe, or manually with an explicit clock through
// poll_at() — refreshes a family of owned gauges:
//
//   migration_rows_done / migration_rows_total   watermark in rows
//   migration_rate_rows_per_sec_x1000            EWMA conversion rate
//   migration_eta_ms                             remaining / rate
//                                                (-1 while unknown)
//   migration_worker_imbalance_x1000             max/mean worker rows
//   migration_stalled                            0/1
//   migration_state                              MigrationState ordinal
//
// and emits lifecycle events (state transitions, stall begin/clear,
// abort reason) into an EventLog with the migration id attached.
//
// Stall rule: the watermark has not moved for >= stall_min_polls
// consecutive polls spanning >= stall_timeout_ms while the migration
// is kConverting. Both thresholds must hold, so a clean fast
// conversion (few polls, all making progress) and a slow-interval
// sampler (one poll per tick) cannot false-positive.
//
// Phases: begin_phase()/end_phase() bracket explicit stages (plan,
// journal-replay, verify, rebuild); the kConverting state contributes
// an automatic "convert" phase. The resulting timeline rides along in
// the post-mortem bundle.
//
// Flight recorder: postmortem_json() serializes migration identity,
// state, abort reason, watermark, phase timeline, the tail of the
// event ring, the trace-span ring, and a full registry snapshot into
// one JSON bundle. When a postmortem path is configured, a poll that
// observes the kAborted state writes the bundle there automatically.
// summarize_postmortem() renders a bundle back into the human summary
// `c56cli postmortem` prints.

#include <cstdint>
#include <string>
#include <vector>

#include "migration/online.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace c56::mig {

struct MonitorConfig {
  std::string migration_id = "migration";
  /// EWMA smoothing for the conversion rate (weight of the newest
  /// inter-poll rate observation).
  double ewma_alpha = 0.3;
  /// Stall rule thresholds (see header comment). stall_timeout_ms
  /// defaults from C56_STALL_MS when set (clamped to [10, 600000]).
  int stall_min_polls = 3;
  std::int64_t stall_timeout_ms = 1000;
  /// Events recorded in the post-mortem bundle (newest N).
  std::size_t postmortem_events = 256;
  /// When non-empty, a poll observing kAborted writes the bundle here
  /// (once per monitor lifetime).
  std::string postmortem_path;
};

struct PhaseRecord {
  std::string name;
  std::uint64_t start_us = 0;
  std::uint64_t end_us = 0;  // 0 while the phase is still open
};

class MigrationMonitor {
 public:
  /// All references must outlive the monitor. Gauges are created in
  /// `reg` immediately; nothing else happens until poll().
  MigrationMonitor(OnlineMigrator& migrator, obs::Registry& reg,
                   obs::EventLog& events, MonitorConfig cfg = {});

  MigrationMonitor(const MigrationMonitor&) = delete;
  MigrationMonitor& operator=(const MigrationMonitor&) = delete;

  /// Open a named phase (closing any still-open one).
  void begin_phase(const std::string& name);
  void end_phase();
  std::vector<PhaseRecord> phases() const;

  /// Refresh gauges / detectors from the migrator's current position.
  /// Safe from any thread; typically a MetricsSampler probe.
  void poll();
  /// poll() with an explicit steady-clock timestamp — the
  /// deterministic seam the stall tests drive.
  void poll_at(std::uint64_t t_us);

  bool stalled() const;
  double rate_rows_per_sec() const;
  /// Seconds until the watermark reaches rows_total at the EWMA rate;
  /// 0 when done, -1 while unknown (no rate observed yet).
  double eta_seconds() const;
  std::int64_t rows_done() const;
  std::int64_t rows_total() const;

  /// One human-readable status line for a live display.
  std::string status_line() const;

  /// The flight-recorder bundle (see header comment).
  std::string postmortem_json() const;
  /// Write the bundle to `path`; false on I/O failure.
  bool write_postmortem(const std::string& path) const;

  const MonitorConfig& config() const { return cfg_; }

 private:
  void emit(obs::EventLevel level, std::string message);
  void close_phase_locked(std::uint64_t t_us);

  OnlineMigrator& mig_;
  obs::Registry& reg_;
  obs::EventLog& events_;
  MonitorConfig cfg_;

  // Owned gauges (stable addresses for the registry's lifetime).
  obs::Gauge& g_rows_done_;
  obs::Gauge& g_rows_total_;
  obs::Gauge& g_rate_x1000_;
  obs::Gauge& g_eta_ms_;
  obs::Gauge& g_imbalance_x1000_;
  obs::Gauge& g_stalled_;
  obs::Gauge& g_state_;
  obs::Counter& c_stall_events_;

  mutable std::mutex mu_;  // poll bookkeeping + phases (leaf lock)
  const std::int64_t rows_per_group_;
  const std::int64_t rows_total_v_;
  bool first_poll_done_ = false;
  std::uint64_t last_t_us_ = 0;
  std::int64_t last_rows_ = 0;
  std::uint64_t last_progress_t_us_ = 0;
  int polls_since_progress_ = 0;
  double ewma_rate_ = -1.0;  // rows/sec; <0 = no observation yet
  bool stalled_ = false;
  MigrationState last_state_ = MigrationState::kIdle;
  bool convert_phase_open_ = false;
  std::vector<PhaseRecord> phases_;
  mutable bool postmortem_written_ = false;
};

/// Human summary of a postmortem_json() bundle: migration id, terminal
/// state, abort reason, watermark, phase timeline, disk fault counters
/// (when the bundle's registry snapshot carries disk_array_* metrics),
/// and the last few warn/error events.
std::string summarize_postmortem(const std::string& bundle_json);

}  // namespace c56::mig
