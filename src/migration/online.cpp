#include "migration/online.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "layout/raid.hpp"
#include "util/env.hpp"
#include "util/prime.hpp"
#include "xorblk/pool.hpp"
#include "xorblk/xor.hpp"

namespace c56::mig {

namespace {

std::string describe(const IoResult& r) {
  return std::string(to_string(r.status)) + " at disk " +
         std::to_string(r.disk) + " block " + std::to_string(r.block);
}

}  // namespace

const char* to_string(MigrationState s) noexcept {
  switch (s) {
    case MigrationState::kIdle:
      return "idle";
    case MigrationState::kConverting:
      return "converting";
    case MigrationState::kStopped:
      return "stopped";
    case MigrationState::kDone:
      return "done";
    case MigrationState::kAborted:
      return "aborted";
  }
  return "?";
}

const char* to_string(TrustDomain d) noexcept {
  switch (d) {
    case TrustDomain::kBothFamilies:
      return "both-families";
    case TrustDomain::kHorizontalOnly:
      return "horizontal-only";
    case TrustDomain::kDeferred:
      return "deferred";
  }
  return "?";
}

OnlineMigrator::OnlineMigrator(DiskArray& array, int p)
    : array_(array), code_(p), m_(p - 1) {
  if (array.disks() == m_ + 1) {
    new_disk_ = m_;  // re-attaching to an interrupted migration
  } else if (array.disks() != m_) {
    throw std::invalid_argument(
        "OnlineMigrator: array must hold p-1 disks (a full RAID-5), or "
        "p disks to resume an interrupted migration");
  }
  if (array.blocks_per_disk() % (p - 1) != 0) {
    throw std::invalid_argument(
        "OnlineMigrator: blocks per disk must be a multiple of p-1");
  }
  groups_ = array.blocks_per_disk() / (p - 1);
  rows_done_ =
      std::make_unique<std::atomic<int>[]>(static_cast<std::size_t>(groups_));
  // Checked knob parsing: garbage keeps the default (1 worker),
  // negative/zero clamps to 1 and oversized requests clamp to the
  // 64-worker ceiling instead of overflowing through atoi.
  if (const auto v = util::env_int("C56_CONVERT_WORKERS", 1, 64)) {
    workers_requested_ = static_cast<int>(*v);
  }
}

OnlineMigrator::~OnlineMigrator() {
  request_stop();
  finish();
}

std::int64_t OnlineMigrator::logical_blocks() const {
  return array_.blocks_per_disk() * (m_ - 1);
}

OnlineMigrator::Locus OnlineMigrator::locate(std::int64_t logical) const {
  if (logical < 0 || logical >= logical_blocks()) {
    throw std::out_of_range("OnlineMigrator: logical block " +
                            std::to_string(logical) + " outside [0, " +
                            std::to_string(logical_blocks()) + ")");
  }
  const std::int64_t stripe_row = logical / (m_ - 1);
  const int k = static_cast<int>(logical % (m_ - 1));
  Locus l;
  l.block = stripe_row;
  l.row = static_cast<int>(stripe_row % (code_.p() - 1));
  l.group = static_cast<int>(stripe_row / (code_.p() - 1));
  l.disk = raid5_data_disk(Raid5Flavor::kLeftAsymmetric,
                           static_cast<int>(stripe_row % m_), k, m_);
  return l;
}

void OnlineMigrator::attach_journal(CheckpointSink& sink) {
  std::lock_guard lk(mu_);
  if (running_.load()) {
    throw std::logic_error("attach_journal: conversion already running");
  }
  journal_.emplace(sink);
}

void OnlineMigrator::set_retry_policy(const RetryPolicy& policy) {
  std::lock_guard lk(mu_);
  if (running_.load()) {
    throw std::logic_error("set_retry_policy: conversion already running");
  }
  retry_ = policy;
}

void OnlineMigrator::set_workers(int n) {
  std::lock_guard lk(mu_);
  if (running_.load()) {
    throw std::logic_error("set_workers: conversion already running");
  }
  if (n < 1) {
    throw std::invalid_argument("set_workers: need at least one worker");
  }
  workers_requested_ = std::min(n, 64);
}

int OnlineMigrator::workers() const {
  std::lock_guard lk(mu_);
  return workers_requested_;
}

void OnlineMigrator::start() {
  // Exclusive ops gate: Step 2 grows the array's disk table, which
  // must not reallocate under concurrent app I/O indexing it. This is
  // the only quiesce start() needs, and it lasts one push_back.
  std::unique_lock ops(ops_mu_);
  std::lock_guard lk(mu_);
  if (state_ != MigrationState::kIdle) {
    throw std::logic_error("OnlineMigrator: already started");
  }
  if (new_disk_ < 0) new_disk_ = array_.add_disk();  // Step 2
  start_group_ = 0;
  start_row_ = 0;
  groups_done_.store(0);
  for (std::int64_t g = 0; g < groups_; ++g) rows_done_[g].store(0);
  if (journal_) {
    std::lock_guard pk(progress_mu_);
    journal_->record(0, 0);
  }
  launch_locked();
  emit_event(obs::EventLevel::kInfo,
             "conversion started: " + std::to_string(groups_) +
                 " groups, " + std::to_string(threads_.size()) + " workers",
             -1, -1, new_disk_);
}

void OnlineMigrator::resume() {
  finish();  // join stopped workers before restarting
  std::unique_lock ops(ops_mu_);  // exclude app I/O while re-verifying
  std::lock_guard lk(mu_);
  switch (state_) {
    case MigrationState::kIdle:
    case MigrationState::kStopped:
      break;
    case MigrationState::kDone:
      return;  // nothing left to do
    case MigrationState::kConverting:
      throw std::logic_error("resume: conversion already running");
    case MigrationState::kAborted:
      throw std::logic_error("resume: migration aborted: " + abort_reason_);
  }
  if (new_disk_ < 0) new_disk_ = array_.add_disk();
  const int p = code_.p();
  std::int64_t g = groups_done_.load();
  int rows = g < groups_ ? rows_done_[g].load() : 0;
  if (journal_) {
    if (const auto rec = journal_->recover()) {
      g = std::min(rec->groups_done, groups_);
      rows = std::min(std::max(rec->diag_rows, 0), p - 1);
    } else {
      g = 0;
      rows = 0;
    }
  }
  // Re-verify before trusting the watermark: the last fully generated
  // group must match a recomputation (a torn new-disk write shows up
  // here), and so must the partial rows of the current group. Rewind to
  // the first stale position; regeneration is idempotent.
  const std::int64_t journalled_g = g;
  const int journalled_rows = rows;
  if (g > 0 && g <= groups_) {
    const int stale = first_stale_diag(g - 1, p - 1);
    if (stale < p - 1) {
      --g;
      rows = stale;
    }
  }
  if (g < groups_ && rows > 0) {
    rows = first_stale_diag(g, rows);
  }
  if (g != journalled_g || rows != journalled_rows) {
    emit_event(obs::EventLevel::kWarn,
               "journal recovery rewound watermark from group " +
                   std::to_string(journalled_g) + " row " +
                   std::to_string(journalled_rows) + " to group " +
                   std::to_string(g) + " row " + std::to_string(rows) +
                   ": stale diagonal parity detected",
               g);
  }
  start_group_ = g;
  start_row_ = g < groups_ ? rows : 0;
  groups_done_.store(g);
  // Groups past the watermark may hold diagonals from a previous run;
  // they are regenerated (idempotently), so forget them.
  for (std::int64_t i = 0; i < groups_; ++i) {
    rows_done_[i].store(i < g ? p - 1 : (i == g ? start_row_ : 0));
  }
  if (g >= groups_) {
    state_ = MigrationState::kDone;
    emit_event(obs::EventLevel::kInfo,
               "resume: journal shows conversion already complete");
    return;
  }
  launch_locked();
  emit_event(obs::EventLevel::kInfo,
             "conversion resumed from journal: group " + std::to_string(g) +
                 " row " + std::to_string(start_row_) + " of " +
                 std::to_string(groups_) + " groups",
             g);
}

void OnlineMigrator::launch_locked() {
  const std::int64_t total = groups_ - start_group_;
  const int n = static_cast<int>(std::clamp<std::int64_t>(
      workers_requested_, 1, std::max<std::int64_t>(total, 1)));
  ranges_.clear();
  ranges_.reserve(static_cast<std::size_t>(n));
  for (int w = 0; w < n; ++w) {
    auto r = std::make_unique<WorkerRange>();
    r->lo = start_group_ + total * w / n;
    r->hi = start_group_ + total * (w + 1) / n;
    ranges_.push_back(std::move(r));
  }
  state_ = MigrationState::kConverting;
  stop_requested_.store(false);
  running_.store(true);
  active_workers_.store(n);
  threads_.clear();
  threads_.reserve(static_cast<std::size_t>(n));
  for (int w = 0; w < n; ++w) {
    threads_.emplace_back([this, w] { worker_entry(w); });
  }
}

void OnlineMigrator::request_stop() {
  stop_requested_.store(true);
  cv_.notify_all();
}

void OnlineMigrator::finish() {
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

MigrationState OnlineMigrator::state() const {
  std::lock_guard lk(mu_);
  return state_;
}

void OnlineMigrator::scrub_group(
    std::int64_t group, const std::function<void(TrustDomain)>& fn) const {
  if (group < 0 || group >= groups_) {
    throw std::out_of_range("OnlineMigrator::scrub_group: group " +
                            std::to_string(group));
  }
  std::shared_lock ops(ops_mu_);
  std::lock_guard gl(group_lock(group));
  const int rows = rows_done_[group].load(std::memory_order_acquire);
  TrustDomain td;
  if (rows >= code_.p() - 1) {
    td = TrustDomain::kBothFamilies;
  } else if (rows == 0) {
    td = TrustDomain::kHorizontalOnly;
  } else {
    td = TrustDomain::kDeferred;
  }
  fn(td);
}

std::string OnlineMigrator::abort_reason() const {
  std::lock_guard lk(mu_);
  return abort_reason_;
}

void OnlineMigrator::abort_locked(std::string reason) {
  state_ = MigrationState::kAborted;
  abort_reason_ = std::move(reason);
  emit_event(obs::EventLevel::kError, "conversion aborted: " + abort_reason_);
}

void OnlineMigrator::abort_from_io(std::string reason) {
  {
    std::lock_guard lk(mu_);
    if (state_ == MigrationState::kConverting) abort_locked(std::move(reason));
  }
  cv_.notify_all();
}

IoResult OnlineMigrator::read_source(int disk, std::int64_t block,
                                     std::span<std::uint8_t> out,
                                     bool conversion) {
  IoCounters c;
  bool reconstructed = false;
  IoResult r = IoResult::fail(IoStatus::kDiskFailed, disk, block);
  if (!array_.disk_failed(disk)) {
    r = read_block_retry(array_, disk, block, out, retry_, &c);
  }
  if (!r.ok() && disk < m_) {
    // Reconstruct through the RAID-5 horizontal parity: every row of
    // the source array XORs to zero, so the block is the XOR of the
    // other m-1 blocks of its row (works for data and parity cells
    // alike, and for hard sector errors as well as whole-disk loss).
    std::vector<BlockAddr> srcs;
    srcs.reserve(static_cast<std::size_t>(m_ - 1));
    bool possible = true;
    for (int d = 0; d < m_; ++d) {
      if (d == disk) continue;
      if (array_.disk_failed(d)) {
        possible = false;
        break;
      }
      srcs.push_back({d, block});
    }
    if (possible) {
      const IoResult rr = xor_chain_read(array_, srcs, out, retry_, &c);
      if (rr.ok()) reconstructed = true;
      r = rr;
    }
  }
  {
    std::lock_guard sk(stats_mu_);
    (conversion ? stats_.conv_reads : stats_.app_reads) += c.reads;
    stats_.retries += c.retries;
    stats_.backoff_us += c.backoff_us;
    if (reconstructed) ++stats_.reconstructed_reads;
  }
  if (reconstructed && events_) {
    emit_event(obs::EventLevel::kWarn,
               std::string("read served by parity reconstruction (") +
                   (conversion ? "conversion" : "application") + " flow)",
               -1, -1, disk, block, "reconstructed_read");
  }
  return r;
}

IoResult OnlineMigrator::generate_diag(std::int64_t group, int diag_row) {
  // Chain for diagonal parity row i (Eq. 2): data cells
  // (<i-1-j> mod p, j), j != i. The chain members are staged into one
  // arena, then folded with a single accumulate pass.
  const int p = code_.p();
  const std::size_t bs = array_.block_bytes();
  PooledBuffer arena(bs * static_cast<std::size_t>(p - 2));
  PooledBuffer acc(bs);
  std::vector<const std::uint8_t*> srcs;
  srcs.reserve(static_cast<std::size_t>(p - 2));
  for (int j = 0; j <= p - 2; ++j) {
    if (j == diag_row) continue;
    const int r = pmod(diag_row - 1 - j, p);
    auto slot = arena.block(srcs.size(), bs);
    const IoResult res =
        read_source(j, group * (p - 1) + r, slot, /*conversion=*/true);
    if (!res.ok()) return res;
    srcs.push_back(slot.data());
  }
  xor_accumulate(acc.span(), srcs);
  IoCounters c;
  const IoResult res =
      write_block_retry(array_, new_disk_, group * (p - 1) + diag_row,
                        acc.span(), retry_, &c);
  {
    std::lock_guard sk(stats_mu_);
    stats_.conv_writes += c.writes;
    stats_.retries += c.retries;
    stats_.backoff_us += c.backoff_us;
  }
  return res;
}

int OnlineMigrator::first_stale_diag(std::int64_t group, int upto) {
  const int p = code_.p();
  const std::size_t bs = array_.block_bytes();
  PooledBuffer arena(bs * static_cast<std::size_t>(p - 2));
  PooledBuffer acc(bs);
  std::vector<const std::uint8_t*> srcs;
  for (int i = 0; i < upto; ++i) {
    srcs.clear();
    bool readable = true;
    for (int j = 0; j <= p - 2; ++j) {
      if (j == i) continue;
      const int r = pmod(i - 1 - j, p);
      auto slot = arena.block(srcs.size(), bs);
      if (!read_source(j, group * (p - 1) + r, slot, true).ok()) {
        readable = false;  // unreadable chain: let the conversion retry it
        break;
      }
      srcs.push_back(slot.data());
    }
    if (!readable) return i;
    xor_accumulate(acc.span(), srcs);
    const auto stored = array_.raw_block(new_disk_, group * (p - 1) + i);
    if (!std::ranges::equal(acc.span(), stored)) return i;
  }
  return upto;
}

std::int64_t OnlineMigrator::claim_group(int w) {
  {
    WorkerRange& own = *ranges_[static_cast<std::size_t>(w)];
    std::lock_guard lk(own.mu);
    if (own.lo < own.hi) return own.lo++;
  }
  // Own range drained: steal the tail group of the fullest remaining
  // range, so owners keep consuming their front in sequential order.
  for (;;) {
    int victim = -1;
    std::int64_t best = 0;
    for (int v = 0; v < static_cast<int>(ranges_.size()); ++v) {
      if (v == w) continue;
      WorkerRange& r = *ranges_[static_cast<std::size_t>(v)];
      std::lock_guard lk(r.mu);
      if (r.hi - r.lo > best) {
        best = r.hi - r.lo;
        victim = v;
      }
    }
    if (victim < 0) return -1;
    WorkerRange& r = *ranges_[static_cast<std::size_t>(victim)];
    std::lock_guard lk(r.mu);
    if (r.lo < r.hi) return --r.hi;
    // Drained between the scan and the lock; rescan for another victim.
  }
}

void OnlineMigrator::note_progress(std::int64_t group, int rows) {
  const int p = code_.p();
  std::lock_guard pk(progress_mu_);
  if (group == groups_done_.load()) {
    // Row-level checkpoint of the watermark group. With one worker this
    // reproduces the sequential converter's journal sequence exactly.
    if (journal_) journal_->record(group, rows);
  }
  if (rows == p - 1) {
    const std::int64_t old = groups_done_.load();
    std::int64_t wm = old;
    while (wm < groups_ &&
           rows_done_[wm].load(std::memory_order_acquire) == p - 1) {
      ++wm;
    }
    if (wm != old) {
      groups_done_.store(wm);
      if (journal_) {
        const int r =
            wm < groups_ ? rows_done_[wm].load(std::memory_order_acquire) : 0;
        journal_->record(wm, r);
      }
      if (events_ && obs::events_enabled()) {
        emit_event(obs::EventLevel::kDebug,
                   "watermark advanced to group " + std::to_string(wm), wm,
                   -1, -1, -1, "watermark");
      }
    }
  }
}

void OnlineMigrator::conversion_worker(int w) {
  const int p = code_.p();
  for (;;) {
    const std::int64_t g = claim_group(w);
    if (g < 0) return;
    const int first = g == start_group_ ? start_row_ : 0;
    for (int i = first; i <= p - 2; ++i) {
      {
        std::unique_lock lk(mu_);
        // A pending application write preempts the converter between
        // parity blocks (Algorithm 2, "interrupt the conversion
        // thread").
        cv_.wait(lk, [this] {
          return pending_writers_.load() == 0 || stop_requested_.load() ||
                 state_ == MigrationState::kAborted;
        });
        if (state_ == MigrationState::kAborted || stop_requested_.load()) {
          return;
        }
      }
      {
        std::shared_lock ops(ops_mu_);
        std::lock_guard gl(group_lock(g));
        const IoResult res = generate_diag(g, i);
        if (!res.ok()) {
          abort_from_io("conversion cannot generate diagonal row " +
                        std::to_string(i) + " of group " + std::to_string(g) +
                        ": " + describe(res));
          return;
        }
        rows_done_[g].store(i + 1, std::memory_order_release);
        if (obs::metrics_enabled()) {
          worker_rows_[static_cast<std::size_t>(w)].inc();
        }
      }
      note_progress(g, i + 1);
    }
  }
}

void OnlineMigrator::worker_entry(int w) {
  conversion_worker(w);
  if (active_workers_.fetch_sub(1) == 1) {
    // Last worker out decides the terminal state.
    std::lock_guard lk(mu_);
    if (state_ == MigrationState::kConverting) {
      state_ = groups_done_.load() >= groups_ ? MigrationState::kDone
                                              : MigrationState::kStopped;
      emit_event(obs::EventLevel::kInfo,
                 state_ == MigrationState::kDone
                     ? "conversion complete: all " + std::to_string(groups_) +
                           " groups generated"
                     : "conversion stopped at watermark group " +
                           std::to_string(groups_done_.load()),
                 -1, w);
    }
    running_.store(false);
  }
}

IoResult OnlineMigrator::read_block(std::int64_t logical,
                                    std::span<std::uint8_t> out) {
  const Locus l = locate(logical);
  std::shared_lock ops(ops_mu_);
  std::lock_guard gl(group_lock(l.group));
  return read_source(l.disk, l.block, out, /*conversion=*/false);
}

IoResult OnlineMigrator::write_block(std::int64_t logical,
                                     std::span<const std::uint8_t> in) {
  const Locus l = locate(logical);
  const int p = code_.p();
  pending_writers_.fetch_add(1);
  // Wake the workers once the write is out of the way (or bailed out).
  struct Notifier {
    std::condition_variable& cv;
    ~Notifier() { cv.notify_all(); }
  } notify{cv_};
  std::shared_lock ops(ops_mu_);
  std::unique_lock gl(group_lock(l.group));
  pending_writers_.fetch_sub(1);
  if (running_.load()) {
    std::lock_guard sk(stats_mu_);
    ++stats_.interruptions;
  }

  const std::size_t bs = array_.block_bytes();
  PooledBuffer old_data(bs), delta(bs), par(bs);
  const IoResult oldr = read_source(l.disk, l.block, old_data.span(), false);
  if (!oldr.ok()) {
    // The pre-image is gone: the write (and the block) cannot be kept
    // consistent. Mid-conversion this is the data-loss event Table VI
    // prices, so the migration aborts.
    abort_from_io("application write lost logical block " +
                  std::to_string(logical) + ": " + describe(oldr));
    return oldr;
  }
  xor_to(delta.data(), old_data.data(), in.data(), bs);

  // Horizontal parity: always maintained (it is the RAID-5 parity).
  const int hpar_disk = p - 2 - l.row;
  bool parity_updated = false;
  if (!array_.disk_failed(hpar_disk)) {
    // read_source also recovers a latent sector error under the parity
    // block itself (the row XOR reconstructs parity cells too).
    const IoResult r = read_source(hpar_disk, l.block, par.span(), false);
    if (r.ok()) {
      xor_into(par.span(), delta.span());
      IoCounters c;
      const IoResult w =
          write_block_retry(array_, hpar_disk, l.block, par.span(), retry_, &c);
      {
        std::lock_guard sk(stats_mu_);
        stats_.app_writes += c.writes;
        stats_.retries += c.retries;
        stats_.backoff_us += c.backoff_us;
      }
      parity_updated = w.ok();
    }
  }
  if (!parity_updated) {
    {
      std::lock_guard sk(stats_mu_);
      ++stats_.degraded_writes;
    }
    if (events_) {
      emit_event(obs::EventLevel::kWarn,
                 "degraded write: horizontal parity not updated for logical "
                 "block " +
                     std::to_string(logical),
                 l.group, -1, hpar_disk, l.block, "degraded_write");
    }
  }

  // Data block itself.
  bool data_written = false;
  if (!array_.disk_failed(l.disk)) {
    IoCounters c;
    const IoResult w =
        write_block_retry(array_, l.disk, l.block, in, retry_, &c);
    {
      std::lock_guard sk(stats_mu_);
      stats_.app_writes += c.writes;
      stats_.retries += c.retries;
      stats_.backoff_us += c.backoff_us;
    }
    data_written = w.ok();
  } else {
    std::lock_guard sk(stats_mu_);
    ++stats_.degraded_writes;
  }

  if (!data_written && !parity_updated) {
    // Neither replica of the update is durable: unrecoverable.
    const IoResult res = IoResult::fail(IoStatus::kDiskFailed, l.disk, l.block);
    abort_from_io("application write lost logical block " +
                  std::to_string(logical) + ": data and parity disks failed");
    return res;
  }

  // Diagonal parity: only if this block's diagonal chain is already on
  // the new disk (otherwise the group's owner will fold the new value
  // in). rows_done_ is read under the same group lock the owner stores
  // it under, so the check cannot race a half-written diagonal.
  if (new_disk_ >= 0) {
    const int diag_row = pmod(l.row + l.disk + 1, p);
    const bool generated =
        rows_done_[l.group].load(std::memory_order_acquire) > diag_row;
    // The horizontal-parity anti-diagonal (row + col == p-2) is on no
    // diagonal chain -- but locate() only yields data cells, and every
    // data cell is on exactly one chain, so diag_row is always valid.
    if (generated) {
      if (!array_.disk_failed(new_disk_)) {
        const std::int64_t db = l.group * (p - 1) + diag_row;
        IoCounters c;
        const IoResult r =
            read_block_retry(array_, new_disk_, db, par.span(), retry_, &c);
        {
          std::lock_guard sk(stats_mu_);
          stats_.app_reads += c.reads;
          stats_.retries += c.retries;
          stats_.backoff_us += c.backoff_us;
        }
        if (r.ok()) {
          const IoResult w = [&] {
            xor_into(par.span(), delta.span());
            IoCounters wc;
            const IoResult res = write_block_retry(array_, new_disk_, db,
                                                   par.span(), retry_, &wc);
            {
              std::lock_guard sk(stats_mu_);
              stats_.app_writes += wc.writes;
              stats_.retries += wc.retries;
              stats_.backoff_us += wc.backoff_us;
            }
            return res;
          }();
          if (!w.ok()) {
            std::lock_guard sk(stats_mu_);
            ++stats_.degraded_writes;
          }
        } else if (r.status == IoStatus::kSectorError) {
          // The stored diagonal parity is unreadable: regenerate its
          // whole chain from the (already updated) data. Counted as
          // conversion I/O, which is what the regeneration is.
          generate_diag(l.group, diag_row);
        } else {
          std::lock_guard sk(stats_mu_);
          ++stats_.degraded_writes;
        }
      } else {
        std::lock_guard sk(stats_mu_);
        ++stats_.degraded_writes;
      }
    }
  }

  return IoResult::success();
}

IoResult OnlineMigrator::write_range(std::int64_t logical, std::size_t offset,
                                     std::span<const std::uint8_t> in) {
  const std::size_t bs = array_.block_bytes();
  if (offset > bs || in.size() > bs - offset) {
    throw std::out_of_range("OnlineMigrator::write_range: bad range");
  }
  if (in.empty()) return IoResult::success();  // validated no-op
  if (offset == 0 && in.size() == bs) return write_block(logical, in);

  const Locus l = locate(logical);
  const int p = code_.p();
  const std::size_t len = in.size();
  pending_writers_.fetch_add(1);
  // Wake the workers once the write is out of the way (or bailed out).
  struct Notifier {
    std::condition_variable& cv;
    ~Notifier() { cv.notify_all(); }
  } notify{cv_};
  std::shared_lock ops(ops_mu_);
  std::unique_lock gl(group_lock(l.group));
  pending_writers_.fetch_sub(1);
  if (running_.load()) {
    std::lock_guard sk(stats_mu_);
    ++stats_.interruptions;
  }

  // Old bytes of the range: a ranged read off the healthy disk, else a
  // whole-block reconstruction through the horizontal parity (the XOR
  // chains cover full blocks; only the range is used downstream).
  PooledBuffer old_blk(bs), par(bs);
  bool have_old = false;
  if (!array_.disk_failed(l.disk)) {
    IoCounters c;
    const IoResult r = read_range_retry(array_, l.disk, l.block, offset,
                                        old_blk.span().subspan(offset, len),
                                        retry_, &c);
    {
      std::lock_guard sk(stats_mu_);
      stats_.app_reads += c.reads;
      stats_.retries += c.retries;
      stats_.backoff_us += c.backoff_us;
    }
    have_old = r.ok();
  }
  if (!have_old) {
    const IoResult oldr = read_source(l.disk, l.block, old_blk.span(), false);
    if (!oldr.ok()) {
      // The pre-image is gone: the write (and the block) cannot be kept
      // consistent — the same data-loss event write_block aborts on.
      abort_from_io("application write lost logical block " +
                    std::to_string(logical) + ": " + describe(oldr));
      return oldr;
    }
  }
  const std::span<const std::uint8_t> old_range =
      old_blk.span().subspan(offset, len);

  // Horizontal parity: always maintained (it is the RAID-5 parity).
  // parity[offset, offset+len) ^= new ^ old — the chain is bytewise, so
  // the delta lands at the same intra-block offset.
  const int hpar_disk = p - 2 - l.row;
  bool parity_updated = false;
  if (!array_.disk_failed(hpar_disk)) {
    IoCounters c;
    IoResult r = read_range_retry(array_, hpar_disk, l.block, offset,
                                  par.span().subspan(offset, len), retry_, &c);
    {
      std::lock_guard sk(stats_mu_);
      stats_.app_reads += c.reads;
      stats_.retries += c.retries;
      stats_.backoff_us += c.backoff_us;
    }
    bool have_full_par = false;
    if (!r.ok()) {
      // A latent sector error under the parity range: recover the whole
      // block through the row XOR, exactly as write_block does.
      r = read_source(hpar_disk, l.block, par.span(), false);
      have_full_par = r.ok();
    }
    if (r.ok()) {
      xor_delta_into(par.span().subspan(offset, len), old_range, in);
      IoCounters wc;
      const IoResult w =
          have_full_par
              ? write_block_retry(array_, hpar_disk, l.block, par.span(),
                                  retry_, &wc)
              : write_range_retry(array_, hpar_disk, l.block, offset,
                                  par.span().subspan(offset, len), retry_,
                                  &wc);
      {
        std::lock_guard sk(stats_mu_);
        stats_.app_writes += wc.writes;
        stats_.retries += wc.retries;
        stats_.backoff_us += wc.backoff_us;
      }
      parity_updated = w.ok();
    }
  }
  if (!parity_updated) {
    {
      std::lock_guard sk(stats_mu_);
      ++stats_.degraded_writes;
    }
    if (events_) {
      emit_event(obs::EventLevel::kWarn,
                 "degraded write: horizontal parity not updated for logical "
                 "block " +
                     std::to_string(logical),
                 l.group, -1, hpar_disk, l.block, "degraded_write");
    }
  }

  // Data range itself.
  bool data_written = false;
  if (!array_.disk_failed(l.disk)) {
    IoCounters c;
    const IoResult w =
        write_range_retry(array_, l.disk, l.block, offset, in, retry_, &c);
    {
      std::lock_guard sk(stats_mu_);
      stats_.app_writes += c.writes;
      stats_.retries += c.retries;
      stats_.backoff_us += c.backoff_us;
    }
    data_written = w.ok();
  } else {
    std::lock_guard sk(stats_mu_);
    ++stats_.degraded_writes;
  }

  if (!data_written && !parity_updated) {
    // Neither replica of the update is durable: unrecoverable.
    const IoResult res = IoResult::fail(IoStatus::kDiskFailed, l.disk, l.block);
    abort_from_io("application write lost logical block " +
                  std::to_string(logical) + ": data and parity disks failed");
    return res;
  }

  // Diagonal parity: the trust-domain rule is write_block's — delta
  // only into a chain the conversion watermark has already generated;
  // an unconverted group's owner folds the new value in when it gets
  // there. rows_done_ is read under the same group lock the owner
  // stores it under.
  if (new_disk_ >= 0) {
    const int diag_row = pmod(l.row + l.disk + 1, p);
    const bool generated =
        rows_done_[l.group].load(std::memory_order_acquire) > diag_row;
    if (generated) {
      if (!array_.disk_failed(new_disk_)) {
        const std::int64_t db = l.group * (p - 1) + diag_row;
        IoCounters c;
        const IoResult r =
            read_range_retry(array_, new_disk_, db, offset,
                             par.span().subspan(offset, len), retry_, &c);
        {
          std::lock_guard sk(stats_mu_);
          stats_.app_reads += c.reads;
          stats_.retries += c.retries;
          stats_.backoff_us += c.backoff_us;
        }
        if (r.ok()) {
          xor_delta_into(par.span().subspan(offset, len), old_range, in);
          IoCounters wc;
          const IoResult w =
              write_range_retry(array_, new_disk_, db, offset,
                                par.span().subspan(offset, len), retry_, &wc);
          {
            std::lock_guard sk(stats_mu_);
            stats_.app_writes += wc.writes;
            stats_.retries += wc.retries;
            stats_.backoff_us += wc.backoff_us;
          }
          if (!w.ok()) {
            std::lock_guard sk(stats_mu_);
            ++stats_.degraded_writes;
          }
        } else if (r.status == IoStatus::kSectorError) {
          // The stored diagonal parity is unreadable: regenerate its
          // whole chain from the (already updated) data.
          generate_diag(l.group, diag_row);
        } else {
          std::lock_guard sk(stats_mu_);
          ++stats_.degraded_writes;
        }
      } else {
        std::lock_guard sk(stats_mu_);
        ++stats_.degraded_writes;
      }
    }
  }

  return IoResult::success();
}

OnlineStats OnlineMigrator::stats() const {
  std::lock_guard sk(stats_mu_);
  return stats_;
}

void OnlineMigrator::attach_events(obs::EventLog& log,
                                   std::string migration_id) {
  std::lock_guard lk(mu_);
  if (state_ == MigrationState::kConverting) {
    throw std::logic_error("attach_events: conversion already running");
  }
  events_ = &log;
  migration_id_ = std::move(migration_id);
}

void OnlineMigrator::emit_event(obs::EventLevel level, std::string message,
                                std::int64_t group, int worker, int disk,
                                std::int64_t block,
                                const char* rate_key) const {
  obs::EventLog* log = events_;
  if (!log) return;
  obs::Event ev;
  ev.level = level;
  ev.category = "migration";
  ev.message = std::move(message);
  ev.migration_id = migration_id_;
  ev.group = group;
  ev.worker = worker;
  ev.disk = disk;
  ev.block = block;
  if (rate_key) {
    log->emit(std::move(ev), rate_key);
  } else {
    log->emit(std::move(ev));
  }
}

void OnlineMigrator::attach_metrics(obs::Registry& registry,
                                    const std::string& prefix) {
  metrics_handle_ = registry.add_collector([this, prefix](obs::Collection& c) {
    // stats() and workers() take only leaf locks (stats_mu_ / mu_),
    // which never nest inside anything that could be waiting on the
    // registry, so locking them from the collector is safe.
    const OnlineStats s = stats();
    c.counter(prefix + "_conv_reads", s.conv_reads);
    c.counter(prefix + "_conv_writes", s.conv_writes);
    c.counter(prefix + "_app_reads", s.app_reads);
    c.counter(prefix + "_app_writes", s.app_writes);
    c.counter(prefix + "_interruptions", s.interruptions);
    c.counter(prefix + "_retries", s.retries);
    c.counter(prefix + "_reconstructed_reads", s.reconstructed_reads);
    c.counter(prefix + "_degraded_writes", s.degraded_writes);
    c.counter(prefix + "_backoff_us", s.backoff_us);
    const int n = workers();
    std::uint64_t rows_total = 0;
    for (int w = 0; w < n; ++w) {
      const std::uint64_t rows = worker_rows_[static_cast<std::size_t>(w)]
                                     .value();
      c.counter(prefix + "_rows_converted{worker=\"" + std::to_string(w) +
                    "\"}",
                rows);
      rows_total += rows;
    }
    c.counter(prefix + "_rows_converted_total", rows_total);
    {
      std::lock_guard pk(progress_mu_);
      c.counter(prefix + "_journal_checkpoints",
                journal_ ? journal_->records() : 0);
    }
    c.gauge(prefix + "_groups_done", groups_done_.load());
    c.gauge(prefix + "_groups", groups_);
  });
}

std::int64_t OnlineMigrator::rebuild_failed_disks() {
  std::unique_lock ops(ops_mu_);  // exclude app I/O for the whole rebuild
  std::lock_guard lk(mu_);
  if (running_.load()) {
    throw std::logic_error("rebuild_failed_disks: conversion still running");
  }
  std::vector<int> failed;
  for (int d = 0; d < array_.disks(); ++d) {
    if (array_.disk_failed(d)) failed.push_back(d);
  }
  if (failed.empty()) return 0;
  const int p = code_.p();
  const std::size_t bs = array_.block_bytes();
  std::int64_t rebuilt = 0;

  if (failed.size() == 1 && failed[0] < m_) {
    // Single source disk: every block is the XOR of its row mates.
    // Rebuild in multi-block chunks — one sequential run per surviving
    // disk per chunk plus one run for the rewrite, falling back to the
    // retrying per-block chain only when a chunk hits an injected fault.
    const int d = failed[0];
    array_.repair_disk(d);
    constexpr std::int64_t kChunk = 64;
    const std::int64_t total = array_.blocks_per_disk();
    const auto nsrc = static_cast<std::size_t>(m_ - 1);
    PooledBuffer arena(static_cast<std::size_t>(kChunk) * bs * nsrc);
    PooledBuffer out(static_cast<std::size_t>(kChunk) * bs);
    std::vector<const std::uint8_t*> srcs(nsrc);
    std::vector<BlockAddr> addrs;
    for (std::int64_t b0 = 0; b0 < total; b0 += kChunk) {
      const std::int64_t m = std::min(kChunk, total - b0);
      bool batched = true;
      std::size_t s = 0;
      for (int o = 0; o < m_ && batched; ++o) {
        if (o == d) continue;
        batched = array_
                      .read_blocks(o, b0, m,
                                   arena.span().subspan(
                                       s++ * static_cast<std::size_t>(kChunk) *
                                           bs,
                                       static_cast<std::size_t>(m) * bs))
                      .ok();
      }
      if (batched) {
        for (std::int64_t k = 0; k < m; ++k) {
          for (std::size_t i = 0; i < nsrc; ++i) {
            srcs[i] = arena.data() +
                      (i * static_cast<std::size_t>(kChunk) +
                       static_cast<std::size_t>(k)) *
                          bs;
          }
          xor_accumulate(out.data() + static_cast<std::size_t>(k) * bs,
                         reinterpret_cast<const void* const*>(srcs.data()),
                         nsrc, bs);
        }
        batched = array_
                      .write_blocks(d, b0, m,
                                    out.span().subspan(
                                        0, static_cast<std::size_t>(m) * bs))
                      .ok();
      }
      if (!batched) {
        for (std::int64_t b = b0; b < b0 + m; ++b) {
          addrs.clear();
          for (int o = 0; o < m_; ++o) {
            if (o != d) addrs.push_back({o, b});
          }
          IoCounters c;
          if (!xor_chain_read(array_, addrs, out.block(0, bs), retry_, &c)
                   .ok() ||
              !write_block_retry(array_, d, b, out.block(0, bs), retry_, &c)
                   .ok()) {
            throw std::runtime_error("rebuild_failed_disks: disk " +
                                     std::to_string(d) +
                                     " not reconstructible");
          }
          std::lock_guard sk(stats_mu_);
          stats_.retries += c.retries;
          stats_.backoff_us += c.backoff_us;
        }
      }
      rebuilt += m;
    }
    return rebuilt;
  }

  if (failed.size() == 1 && failed[0] == new_disk_) {
    // The diagonal column is a pure function of the data: regenerate.
    array_.repair_disk(new_disk_);
    for (std::int64_t g = 0; g < groups_done_.load(); ++g) {
      for (int i = 0; i <= p - 2; ++i) {
        if (!generate_diag(g, i).ok()) {
          throw std::runtime_error(
              "rebuild_failed_disks: diagonal column not regenerable");
        }
        ++rebuilt;
      }
    }
    return rebuilt;
  }

  if (failed.size() == 2 && state_ == MigrationState::kDone) {
    // Double failure after conversion: Algorithm 1 over every group.
    for (int d : failed) array_.repair_disk(d);
    PooledBuffer stripe(static_cast<std::size_t>(code_.cell_count()) * bs);
    for (std::int64_t g = 0; g < groups_; ++g) {
      StripeView v(stripe.span(), p - 1, p, bs);
      for (int c = 0; c <= p - 1; ++c) {
        const auto col = array_.raw_blocks(c, g * (p - 1), p - 1);
        for (int r = 0; r <= p - 2; ++r) {
          std::ranges::copy(col.subspan(static_cast<std::size_t>(r) * bs, bs),
                            v.block({r, c}).begin());
        }
      }
      if (!code_.decode_columns(v, failed).has_value()) {
        throw std::runtime_error("rebuild_failed_disks: group " +
                                 std::to_string(g) + " not decodable");
      }
      for (int d : failed) {
        for (int r = 0; r <= p - 2; ++r) {
          IoCounters c;
          if (!write_block_retry(array_, d, g * (p - 1) + r,
                                 v.block({r, d}), retry_, &c)
                   .ok()) {
            throw std::runtime_error("rebuild_failed_disks: rewrite failed");
          }
          ++rebuilt;
        }
      }
    }
    return rebuilt;
  }

  throw std::runtime_error(
      "rebuild_failed_disks: failure pattern exceeds what the current "
      "migration state can reconstruct");
}

bool OnlineMigrator::verify_raid6() const {
  std::unique_lock ops(ops_mu_);  // a consistent snapshot of every group
  const int p = code_.p();
  const std::size_t bs = array_.block_bytes();
  PooledBuffer stripe(static_cast<std::size_t>(code_.cell_count()) * bs);
  for (std::int64_t g = 0; g < groups_; ++g) {
    StripeView v(stripe.span(), p - 1, p, bs);
    for (int c = 0; c <= p - 1; ++c) {
      const auto col = array_.raw_blocks(c, g * (p - 1), p - 1);
      for (int r = 0; r <= p - 2; ++r) {
        std::ranges::copy(col.subspan(static_cast<std::size_t>(r) * bs, bs),
                          v.block({r, c}).begin());
      }
    }
    if (!code_.verify(v)) return false;
  }
  return true;
}

int OnlineMigrator::revert_to_raid5() {
  if (running_.load()) {
    throw std::logic_error("cannot revert while converting");
  }
  // Step 1-2 of the reverse direction: the first m columns already form
  // a valid RAID-5; the diagonal column is simply abandoned.
  return new_disk_;
}

}  // namespace c56::mig
