#include "migration/online.hpp"

#include <cassert>
#include <stdexcept>

#include "layout/raid.hpp"
#include "util/prime.hpp"
#include "xorblk/xor.hpp"

namespace c56::mig {

OnlineMigrator::OnlineMigrator(DiskArray& array, int p)
    : array_(array), code_(p), m_(p - 1) {
  if (array.disks() != m_) {
    throw std::invalid_argument(
        "OnlineMigrator: array must hold p-1 disks (a full RAID-5)");
  }
  if (array.blocks_per_disk() % (p - 1) != 0) {
    throw std::invalid_argument(
        "OnlineMigrator: blocks per disk must be a multiple of p-1");
  }
  groups_ = array.blocks_per_disk() / (p - 1);
}

OnlineMigrator::~OnlineMigrator() {
  if (worker_.joinable()) worker_.join();
}

std::int64_t OnlineMigrator::logical_blocks() const {
  return array_.blocks_per_disk() * (m_ - 1);
}

OnlineMigrator::Locus OnlineMigrator::locate(std::int64_t logical) const {
  assert(logical >= 0 && logical < logical_blocks());
  const std::int64_t stripe_row = logical / (m_ - 1);
  const int k = static_cast<int>(logical % (m_ - 1));
  Locus l;
  l.block = stripe_row;
  l.row = static_cast<int>(stripe_row % (code_.p() - 1));
  l.group = static_cast<int>(stripe_row / (code_.p() - 1));
  l.disk = raid5_data_disk(Raid5Flavor::kLeftAsymmetric,
                           static_cast<int>(stripe_row % m_), k, m_);
  return l;
}

void OnlineMigrator::start() {
  if (running_.exchange(true)) {
    throw std::logic_error("OnlineMigrator: already started");
  }
  if (new_disk_ < 0) new_disk_ = array_.add_disk();  // Step 2
  worker_ = std::thread([this] { conversion_loop(); });
}

void OnlineMigrator::finish() {
  if (worker_.joinable()) worker_.join();
}

void OnlineMigrator::generate_diag(std::int64_t group, int diag_row) {
  // Chain for diagonal parity row i (Eq. 2): data cells
  // (<i-1-j> mod p, j), j != i.
  const int p = code_.p();
  Buffer acc(array_.block_bytes());
  Buffer tmp(array_.block_bytes());
  for (int j = 0; j <= p - 2; ++j) {
    if (j == diag_row) continue;
    const int r = pmod(diag_row - 1 - j, p);
    array_.read_block(j, group * (p - 1) + r, tmp.span());
    ++stats_.conv_reads;
    xor_into(acc.span(), tmp.span());
  }
  array_.write_block(new_disk_, group * (p - 1) + diag_row, acc.span());
  ++stats_.conv_writes;
}

void OnlineMigrator::conversion_loop() {
  const int p = code_.p();
  for (std::int64_t g = 0; g < groups_; ++g) {
    for (int i = 0; i <= p - 2; ++i) {
      std::unique_lock lk(mu_);
      // A pending application write preempts the converter between
      // parity blocks (Algorithm 2, "interrupt the conversion thread").
      cv_.wait(lk, [this] { return pending_writers_.load() == 0; });
      generate_diag(g, i);
      current_diag_rows_ = i + 1;
    }
    {
      std::lock_guard lk(mu_);
      groups_done_.store(g + 1);
      current_group_ = g + 1;
      current_diag_rows_ = 0;
    }
  }
  running_.store(false);
}

void OnlineMigrator::read_block(std::int64_t logical,
                                std::span<std::uint8_t> out) {
  const Locus l = locate(logical);
  std::lock_guard lk(mu_);
  array_.read_block(l.disk, l.block, out);
  ++stats_.app_reads;
}

void OnlineMigrator::write_block(std::int64_t logical,
                                 std::span<const std::uint8_t> in) {
  const Locus l = locate(logical);
  const int p = code_.p();
  pending_writers_.fetch_add(1);
  std::unique_lock lk(mu_);
  pending_writers_.fetch_sub(1);
  if (running_.load()) ++stats_.interruptions;

  const std::size_t bs = array_.block_bytes();
  Buffer old_data(bs), delta(bs), par(bs);
  array_.read_block(l.disk, l.block, old_data.span());
  ++stats_.app_reads;
  xor_to(delta.data(), old_data.data(), in.data(), bs);

  // Horizontal parity: always maintained (it is the RAID-5 parity).
  const int hpar_disk = p - 2 - l.row;
  array_.read_block(hpar_disk, l.block, par.span());
  ++stats_.app_reads;
  xor_into(par.span(), delta.span());
  array_.write_block(hpar_disk, l.block, par.span());
  ++stats_.app_writes;

  // Diagonal parity: only if this block's diagonal chain is already on
  // the new disk (otherwise the converter will fold the new value in).
  const bool have_new_disk = new_disk_ >= 0;
  if (have_new_disk) {
    const int diag_row = pmod(l.row + l.disk + 1, p);
    const bool generated =
        l.group < groups_done_.load() ||
        (l.group == current_group_ && diag_row < current_diag_rows_);
    // The horizontal-parity anti-diagonal (row + col == p-2) is on no
    // diagonal chain -- but locate() only yields data cells, and every
    // data cell is on exactly one chain, so diag_row is always valid.
    if (generated) {
      array_.read_block(new_disk_, l.group * (p - 1) + diag_row, par.span());
      ++stats_.app_reads;
      xor_into(par.span(), delta.span());
      array_.write_block(new_disk_, l.group * (p - 1) + diag_row,
                         par.span());
      ++stats_.app_writes;
    }
  }

  array_.write_block(l.disk, l.block, in);
  ++stats_.app_writes;
  lk.unlock();
  cv_.notify_all();
}

OnlineStats OnlineMigrator::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

bool OnlineMigrator::verify_raid6() const {
  const int p = code_.p();
  const std::size_t bs = array_.block_bytes();
  Buffer stripe(static_cast<std::size_t>(code_.cell_count()) * bs);
  for (std::int64_t g = 0; g < groups_; ++g) {
    StripeView v = StripeView::over(stripe, p - 1, p, bs);
    for (int r = 0; r <= p - 2; ++r) {
      for (int c = 0; c <= p - 1; ++c) {
        const auto src = array_.raw_block(c, g * (p - 1) + r);
        std::ranges::copy(src, v.block({r, c}).begin());
      }
    }
    if (!code_.verify(v)) return false;
  }
  return true;
}

int OnlineMigrator::revert_to_raid5() {
  if (running_.load()) {
    throw std::logic_error("cannot revert while converting");
  }
  // Step 1-2 of the reverse direction: the first m columns already form
  // a valid RAID-5; the diagonal column is simply abandoned.
  return new_disk_;
}

}  // namespace c56::mig
