#include "migration/online.hpp"

#include <stdexcept>
#include <vector>

#include "layout/raid.hpp"
#include "util/prime.hpp"
#include "xorblk/xor.hpp"

namespace c56::mig {

namespace {

std::string describe(const IoResult& r) {
  return std::string(to_string(r.status)) + " at disk " +
         std::to_string(r.disk) + " block " + std::to_string(r.block);
}

}  // namespace

const char* to_string(MigrationState s) noexcept {
  switch (s) {
    case MigrationState::kIdle:
      return "idle";
    case MigrationState::kConverting:
      return "converting";
    case MigrationState::kStopped:
      return "stopped";
    case MigrationState::kDone:
      return "done";
    case MigrationState::kAborted:
      return "aborted";
  }
  return "?";
}

OnlineMigrator::OnlineMigrator(DiskArray& array, int p)
    : array_(array), code_(p), m_(p - 1) {
  if (array.disks() == m_ + 1) {
    new_disk_ = m_;  // re-attaching to an interrupted migration
  } else if (array.disks() != m_) {
    throw std::invalid_argument(
        "OnlineMigrator: array must hold p-1 disks (a full RAID-5), or "
        "p disks to resume an interrupted migration");
  }
  if (array.blocks_per_disk() % (p - 1) != 0) {
    throw std::invalid_argument(
        "OnlineMigrator: blocks per disk must be a multiple of p-1");
  }
  groups_ = array.blocks_per_disk() / (p - 1);
}

OnlineMigrator::~OnlineMigrator() {
  request_stop();
  if (worker_.joinable()) worker_.join();
}

std::int64_t OnlineMigrator::logical_blocks() const {
  return array_.blocks_per_disk() * (m_ - 1);
}

OnlineMigrator::Locus OnlineMigrator::locate(std::int64_t logical) const {
  if (logical < 0 || logical >= logical_blocks()) {
    throw std::out_of_range("OnlineMigrator: logical block " +
                            std::to_string(logical) + " outside [0, " +
                            std::to_string(logical_blocks()) + ")");
  }
  const std::int64_t stripe_row = logical / (m_ - 1);
  const int k = static_cast<int>(logical % (m_ - 1));
  Locus l;
  l.block = stripe_row;
  l.row = static_cast<int>(stripe_row % (code_.p() - 1));
  l.group = static_cast<int>(stripe_row / (code_.p() - 1));
  l.disk = raid5_data_disk(Raid5Flavor::kLeftAsymmetric,
                           static_cast<int>(stripe_row % m_), k, m_);
  return l;
}

void OnlineMigrator::attach_journal(CheckpointSink& sink) {
  std::lock_guard lk(mu_);
  if (running_.load()) {
    throw std::logic_error("attach_journal: conversion already running");
  }
  journal_.emplace(sink);
}

void OnlineMigrator::set_retry_policy(const RetryPolicy& policy) {
  std::lock_guard lk(mu_);
  retry_ = policy;
}

void OnlineMigrator::start() {
  std::lock_guard lk(mu_);
  if (state_ != MigrationState::kIdle) {
    throw std::logic_error("OnlineMigrator: already started");
  }
  if (new_disk_ < 0) new_disk_ = array_.add_disk();  // Step 2
  start_group_ = 0;
  start_row_ = 0;
  if (journal_) journal_->record(0, 0);
  launch_locked();
}

void OnlineMigrator::resume() {
  finish();  // join a stopped worker before restarting
  std::lock_guard lk(mu_);
  switch (state_) {
    case MigrationState::kIdle:
    case MigrationState::kStopped:
      break;
    case MigrationState::kDone:
      return;  // nothing left to do
    case MigrationState::kConverting:
      throw std::logic_error("resume: conversion already running");
    case MigrationState::kAborted:
      throw std::logic_error("resume: migration aborted: " + abort_reason_);
  }
  if (new_disk_ < 0) new_disk_ = array_.add_disk();
  const int p = code_.p();
  std::int64_t g = current_group_;
  int rows = current_diag_rows_;
  if (journal_) {
    if (const auto rec = journal_->recover()) {
      g = std::min(rec->groups_done, groups_);
      rows = std::min(std::max(rec->diag_rows, 0), p - 1);
    } else {
      g = 0;
      rows = 0;
    }
  }
  // Re-verify before trusting the watermark: the last fully generated
  // group must match a recomputation (a torn new-disk write shows up
  // here), and so must the partial rows of the current group. Rewind to
  // the first stale position; regeneration is idempotent.
  if (g > 0 && g <= groups_) {
    const int stale = first_stale_diag(g - 1, p - 1);
    if (stale < p - 1) {
      --g;
      rows = stale;
    }
  }
  if (g < groups_ && rows > 0) {
    rows = first_stale_diag(g, rows);
  }
  start_group_ = g;
  start_row_ = g < groups_ ? rows : 0;
  groups_done_.store(g);
  current_group_ = g;
  current_diag_rows_ = start_row_;
  if (g >= groups_) {
    state_ = MigrationState::kDone;
    return;
  }
  launch_locked();
}

void OnlineMigrator::launch_locked() {
  state_ = MigrationState::kConverting;
  stop_requested_.store(false);
  running_.store(true);
  worker_ = std::thread([this] { conversion_loop(); });
}

void OnlineMigrator::request_stop() {
  stop_requested_.store(true);
  cv_.notify_all();
}

void OnlineMigrator::finish() {
  if (worker_.joinable()) worker_.join();
}

MigrationState OnlineMigrator::state() const {
  std::lock_guard lk(mu_);
  return state_;
}

std::string OnlineMigrator::abort_reason() const {
  std::lock_guard lk(mu_);
  return abort_reason_;
}

void OnlineMigrator::abort_locked(std::string reason) {
  state_ = MigrationState::kAborted;
  abort_reason_ = std::move(reason);
}

IoResult OnlineMigrator::read_source(int disk, std::int64_t block,
                                     std::span<std::uint8_t> out,
                                     bool conversion) {
  IoCounters c;
  IoResult r = IoResult::fail(IoStatus::kDiskFailed, disk, block);
  if (!array_.disk_failed(disk)) {
    r = read_block_retry(array_, disk, block, out, retry_, &c);
  }
  if (!r.ok() && disk < m_) {
    // Reconstruct through the RAID-5 horizontal parity: every row of
    // the source array XORs to zero, so the block is the XOR of the
    // other m-1 blocks of its row (works for data and parity cells
    // alike, and for hard sector errors as well as whole-disk loss).
    std::vector<BlockAddr> srcs;
    srcs.reserve(static_cast<std::size_t>(m_ - 1));
    bool possible = true;
    for (int d = 0; d < m_; ++d) {
      if (d == disk) continue;
      if (array_.disk_failed(d)) {
        possible = false;
        break;
      }
      srcs.push_back({d, block});
    }
    if (possible) {
      const IoResult rr = xor_chain_read(array_, srcs, out, retry_, &c);
      if (rr.ok()) ++stats_.reconstructed_reads;
      r = rr;
    }
  }
  (conversion ? stats_.conv_reads : stats_.app_reads) += c.reads;
  stats_.retries += c.retries;
  return r;
}

IoResult OnlineMigrator::generate_diag(std::int64_t group, int diag_row) {
  // Chain for diagonal parity row i (Eq. 2): data cells
  // (<i-1-j> mod p, j), j != i.
  const int p = code_.p();
  Buffer acc(array_.block_bytes());
  Buffer tmp(array_.block_bytes());
  for (int j = 0; j <= p - 2; ++j) {
    if (j == diag_row) continue;
    const int r = pmod(diag_row - 1 - j, p);
    const IoResult res =
        read_source(j, group * (p - 1) + r, tmp.span(), /*conversion=*/true);
    if (!res.ok()) return res;
    xor_into(acc.span(), tmp.span());
  }
  IoCounters c;
  const IoResult res =
      write_block_retry(array_, new_disk_, group * (p - 1) + diag_row,
                        acc.span(), retry_, &c);
  stats_.conv_writes += c.writes;
  stats_.retries += c.retries;
  return res;
}

int OnlineMigrator::first_stale_diag(std::int64_t group, int upto) {
  const int p = code_.p();
  Buffer acc(array_.block_bytes());
  Buffer tmp(array_.block_bytes());
  for (int i = 0; i < upto; ++i) {
    acc.zero();
    for (int j = 0; j <= p - 2; ++j) {
      if (j == i) continue;
      const int r = pmod(i - 1 - j, p);
      if (!read_source(j, group * (p - 1) + r, tmp.span(), true).ok()) {
        return i;  // unreadable chain: let the conversion loop retry it
      }
      xor_into(acc.span(), tmp.span());
    }
    const auto stored = array_.raw_block(new_disk_, group * (p - 1) + i);
    if (!std::ranges::equal(acc.span(), stored)) return i;
  }
  return upto;
}

void OnlineMigrator::conversion_loop() {
  const int p = code_.p();
  int i0 = start_row_;
  for (std::int64_t g = start_group_; g < groups_; ++g) {
    for (int i = i0; i <= p - 2; ++i) {
      std::unique_lock lk(mu_);
      // A pending application write preempts the converter between
      // parity blocks (Algorithm 2, "interrupt the conversion thread").
      cv_.wait(lk, [this] {
        return pending_writers_.load() == 0 || stop_requested_.load() ||
               state_ == MigrationState::kAborted;
      });
      if (state_ == MigrationState::kAborted) {
        running_.store(false);
        return;
      }
      if (stop_requested_.load()) {
        state_ = MigrationState::kStopped;
        running_.store(false);
        return;
      }
      const IoResult res = generate_diag(g, i);
      if (!res.ok()) {
        abort_locked("conversion cannot generate diagonal row " +
                     std::to_string(i) + " of group " + std::to_string(g) +
                     ": " + describe(res));
        running_.store(false);
        return;
      }
      current_diag_rows_ = i + 1;
      if (journal_) journal_->record(g, i + 1);
    }
    i0 = 0;
    {
      std::lock_guard lk(mu_);
      groups_done_.store(g + 1);
      current_group_ = g + 1;
      current_diag_rows_ = 0;
      if (journal_) journal_->record(g + 1, 0);
    }
  }
  std::lock_guard lk(mu_);
  state_ = MigrationState::kDone;
  running_.store(false);
}

IoResult OnlineMigrator::read_block(std::int64_t logical,
                                    std::span<std::uint8_t> out) {
  const Locus l = locate(logical);
  std::lock_guard lk(mu_);
  return read_source(l.disk, l.block, out, /*conversion=*/false);
}

IoResult OnlineMigrator::write_block(std::int64_t logical,
                                     std::span<const std::uint8_t> in) {
  const Locus l = locate(logical);
  const int p = code_.p();
  pending_writers_.fetch_add(1);
  std::unique_lock lk(mu_);
  pending_writers_.fetch_sub(1);
  if (running_.load()) ++stats_.interruptions;

  const std::size_t bs = array_.block_bytes();
  Buffer old_data(bs), delta(bs), par(bs);
  const IoResult oldr = read_source(l.disk, l.block, old_data.span(), false);
  if (!oldr.ok()) {
    // The pre-image is gone: the write (and the block) cannot be kept
    // consistent. Mid-conversion this is the data-loss event Table VI
    // prices, so the migration aborts.
    if (state_ == MigrationState::kConverting) {
      abort_locked("application write lost logical block " +
                   std::to_string(logical) + ": " + describe(oldr));
      lk.unlock();
      cv_.notify_all();
      return oldr;
    }
    return oldr;
  }
  xor_to(delta.data(), old_data.data(), in.data(), bs);

  // Horizontal parity: always maintained (it is the RAID-5 parity).
  const int hpar_disk = p - 2 - l.row;
  bool parity_updated = false;
  if (!array_.disk_failed(hpar_disk)) {
    // read_source also recovers a latent sector error under the parity
    // block itself (the row XOR reconstructs parity cells too).
    const IoResult r = read_source(hpar_disk, l.block, par.span(), false);
    if (r.ok()) {
      xor_into(par.span(), delta.span());
      IoCounters c;
      const IoResult w =
          write_block_retry(array_, hpar_disk, l.block, par.span(), retry_, &c);
      stats_.app_writes += c.writes;
      stats_.retries += c.retries;
      parity_updated = w.ok();
    }
  }
  if (!parity_updated) ++stats_.degraded_writes;

  // Data block itself.
  bool data_written = false;
  if (!array_.disk_failed(l.disk)) {
    IoCounters c;
    const IoResult w =
        write_block_retry(array_, l.disk, l.block, in, retry_, &c);
    stats_.app_writes += c.writes;
    stats_.retries += c.retries;
    data_written = w.ok();
  } else {
    ++stats_.degraded_writes;
  }

  if (!data_written && !parity_updated) {
    // Neither replica of the update is durable: unrecoverable.
    const IoResult res = IoResult::fail(IoStatus::kDiskFailed, l.disk, l.block);
    if (state_ == MigrationState::kConverting) {
      abort_locked("application write lost logical block " +
                   std::to_string(logical) + ": data and parity disks failed");
    }
    lk.unlock();
    cv_.notify_all();
    return res;
  }

  // Diagonal parity: only if this block's diagonal chain is already on
  // the new disk (otherwise the converter will fold the new value in).
  if (new_disk_ >= 0) {
    const int diag_row = pmod(l.row + l.disk + 1, p);
    const bool generated =
        l.group < groups_done_.load() ||
        (l.group == current_group_ && diag_row < current_diag_rows_);
    // The horizontal-parity anti-diagonal (row + col == p-2) is on no
    // diagonal chain -- but locate() only yields data cells, and every
    // data cell is on exactly one chain, so diag_row is always valid.
    if (generated) {
      if (!array_.disk_failed(new_disk_)) {
        const std::int64_t db = l.group * (p - 1) + diag_row;
        IoCounters c;
        const IoResult r =
            read_block_retry(array_, new_disk_, db, par.span(), retry_, &c);
        stats_.app_reads += c.reads;
        stats_.retries += c.retries;
        if (r.ok()) {
          const IoResult w = [&] {
            xor_into(par.span(), delta.span());
            IoCounters wc;
            const IoResult res =
                write_block_retry(array_, new_disk_, db, par.span(), retry_, &wc);
            stats_.app_writes += wc.writes;
            stats_.retries += wc.retries;
            return res;
          }();
          if (!w.ok()) ++stats_.degraded_writes;
        } else if (r.status == IoStatus::kSectorError) {
          // The stored diagonal parity is unreadable: regenerate its
          // whole chain from the (already updated) data. Counted as
          // conversion I/O, which is what the regeneration is.
          generate_diag(l.group, diag_row);
        } else {
          ++stats_.degraded_writes;
        }
      } else {
        ++stats_.degraded_writes;
      }
    }
  }

  lk.unlock();
  cv_.notify_all();
  return IoResult::success();
}

OnlineStats OnlineMigrator::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

std::int64_t OnlineMigrator::rebuild_failed_disks() {
  std::lock_guard lk(mu_);
  if (running_.load()) {
    throw std::logic_error("rebuild_failed_disks: conversion still running");
  }
  std::vector<int> failed;
  for (int d = 0; d < array_.disks(); ++d) {
    if (array_.disk_failed(d)) failed.push_back(d);
  }
  if (failed.empty()) return 0;
  const int p = code_.p();
  const std::size_t bs = array_.block_bytes();
  std::int64_t rebuilt = 0;

  if (failed.size() == 1 && failed[0] < m_) {
    // Single source disk: every block is the XOR of its row mates.
    const int d = failed[0];
    array_.repair_disk(d);
    Buffer blk(bs);
    std::vector<BlockAddr> srcs;
    for (std::int64_t b = 0; b < array_.blocks_per_disk(); ++b) {
      srcs.clear();
      for (int o = 0; o < m_; ++o) {
        if (o != d) srcs.push_back({o, b});
      }
      IoCounters c;
      if (!xor_chain_read(array_, srcs, blk.span(), retry_, &c).ok() ||
          !write_block_retry(array_, d, b, blk.span(), retry_, &c).ok()) {
        throw std::runtime_error("rebuild_failed_disks: disk " +
                                 std::to_string(d) + " not reconstructible");
      }
      stats_.retries += c.retries;
      ++rebuilt;
    }
    return rebuilt;
  }

  if (failed.size() == 1 && failed[0] == new_disk_) {
    // The diagonal column is a pure function of the data: regenerate.
    array_.repair_disk(new_disk_);
    for (std::int64_t g = 0; g < groups_done_.load(); ++g) {
      for (int i = 0; i <= p - 2; ++i) {
        if (!generate_diag(g, i).ok()) {
          throw std::runtime_error(
              "rebuild_failed_disks: diagonal column not regenerable");
        }
        ++rebuilt;
      }
    }
    return rebuilt;
  }

  if (failed.size() == 2 && state_ == MigrationState::kDone) {
    // Double failure after conversion: Algorithm 1 over every group.
    for (int d : failed) array_.repair_disk(d);
    Buffer stripe(static_cast<std::size_t>(code_.cell_count()) * bs);
    for (std::int64_t g = 0; g < groups_; ++g) {
      StripeView v = StripeView::over(stripe, p - 1, p, bs);
      for (int r = 0; r <= p - 2; ++r) {
        for (int c = 0; c <= p - 1; ++c) {
          std::ranges::copy(array_.raw_block(c, g * (p - 1) + r),
                            v.block({r, c}).begin());
        }
      }
      if (!code_.decode_columns(v, failed).has_value()) {
        throw std::runtime_error("rebuild_failed_disks: group " +
                                 std::to_string(g) + " not decodable");
      }
      for (int d : failed) {
        for (int r = 0; r <= p - 2; ++r) {
          IoCounters c;
          if (!write_block_retry(array_, d, g * (p - 1) + r,
                                 v.block({r, d}), retry_, &c)
                   .ok()) {
            throw std::runtime_error("rebuild_failed_disks: rewrite failed");
          }
          ++rebuilt;
        }
      }
    }
    return rebuilt;
  }

  throw std::runtime_error(
      "rebuild_failed_disks: failure pattern exceeds what the current "
      "migration state can reconstruct");
}

bool OnlineMigrator::verify_raid6() const {
  const int p = code_.p();
  const std::size_t bs = array_.block_bytes();
  Buffer stripe(static_cast<std::size_t>(code_.cell_count()) * bs);
  for (std::int64_t g = 0; g < groups_; ++g) {
    StripeView v = StripeView::over(stripe, p - 1, p, bs);
    for (int r = 0; r <= p - 2; ++r) {
      for (int c = 0; c <= p - 1; ++c) {
        const auto src = array_.raw_block(c, g * (p - 1) + r);
        std::ranges::copy(src, v.block({r, c}).begin());
      }
    }
    if (!code_.verify(v)) return false;
  }
  return true;
}

int OnlineMigrator::revert_to_raid5() {
  if (running_.load()) {
    throw std::logic_error("cannot revert while converting");
  }
  // Step 1-2 of the reverse direction: the first m columns already form
  // a valid RAID-5; the diagonal column is simply abandoned.
  return new_disk_;
}

}  // namespace c56::mig
