#include "migration/stripe_cache.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace c56::mig {

StripeCache::StripeCache(std::size_t capacity_stripes, int cells_per_stripe,
                         std::size_t block_bytes, int shards)
    : capacity_(capacity_stripes),
      cells_per_stripe_(cells_per_stripe),
      block_bytes_(block_bytes) {
  if (capacity_stripes == 0 || cells_per_stripe <= 0 || block_bytes == 0 ||
      shards <= 0) {
    throw std::invalid_argument("StripeCache: invalid geometry");
  }
  // No more shards than stripes, so every shard can hold at least one.
  const auto n = std::min<std::size_t>(static_cast<std::size_t>(shards),
                                       capacity_stripes);
  shards_ = std::vector<Shard>(n);
  per_shard_capacity_ = std::max<std::size_t>(1, capacity_ / n);
}

bool StripeCache::lookup(std::int64_t stripe, int cell,
                         std::span<std::uint8_t> out) {
  Shard& s = shard_of(stripe);
  std::lock_guard lk(s.mu);
  const auto it = s.index.find(stripe);
  if (it == s.index.end()) {
    ++s.stats.misses;
    return false;
  }
  Entry& e = *it->second;
  const auto word = static_cast<std::size_t>(cell) / 64;
  const std::uint64_t bit = 1ull << (static_cast<std::size_t>(cell) % 64);
  if (!(e.valid[word] & bit)) {
    ++s.stats.misses;
    return false;
  }
  std::memcpy(out.data(),
              e.blocks.block(static_cast<std::size_t>(cell), block_bytes_)
                  .data(),
              block_bytes_);
  s.lru.splice(s.lru.begin(), s.lru, it->second);
  ++s.stats.hits;
  return true;
}

void StripeCache::fill(std::int64_t stripe, int cell,
                       std::span<const std::uint8_t> in) {
  Shard& s = shard_of(stripe);
  std::lock_guard lk(s.mu);
  auto it = s.index.find(stripe);
  if (it == s.index.end()) {
    if (s.lru.size() >= per_shard_capacity_) {
      s.index.erase(s.lru.back().stripe);
      s.lru.pop_back();
      ++s.stats.evictions;
    }
    s.lru.push_front(Entry{
        stripe,
        Buffer(static_cast<std::size_t>(cells_per_stripe_) * block_bytes_),
        std::vector<std::uint64_t>(
            (static_cast<std::size_t>(cells_per_stripe_) + 63) / 64, 0)});
    it = s.index.emplace(stripe, s.lru.begin()).first;
    ++s.stats.insertions;
  } else {
    s.lru.splice(s.lru.begin(), s.lru, it->second);
  }
  Entry& e = *it->second;
  std::memcpy(
      e.blocks.block(static_cast<std::size_t>(cell), block_bytes_).data(),
      in.data(), block_bytes_);
  e.valid[static_cast<std::size_t>(cell) / 64] |=
      1ull << (static_cast<std::size_t>(cell) % 64);
}

void StripeCache::invalidate(std::int64_t stripe) {
  Shard& s = shard_of(stripe);
  std::lock_guard lk(s.mu);
  const auto it = s.index.find(stripe);
  if (it == s.index.end()) return;
  s.lru.erase(it->second);
  s.index.erase(it);
}

void StripeCache::invalidate_all() {
  for (Shard& s : shards_) {
    std::lock_guard lk(s.mu);
    s.lru.clear();
    s.index.clear();
  }
}

StripeCache::Stats StripeCache::stats() const {
  Stats total;
  for (const Shard& s : shards_) {
    std::lock_guard lk(s.mu);
    total.hits += s.stats.hits;
    total.misses += s.stats.misses;
    total.insertions += s.stats.insertions;
    total.evictions += s.stats.evictions;
  }
  return total;
}

}  // namespace c56::mig
