#pragma once
// In-memory block-device array: the substrate the online migrator
// (Algorithm 2) runs against. Each disk is a flat vector of fixed-size
// blocks; per-disk I/O counters let tests and examples account for the
// traffic the conversion and the concurrent application generate, and a
// FaultPlan injects the failures (whole-disk, latent sector, torn
// write) that the degraded migration paths must survive.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <utility>
#include <vector>

#include "migration/fault.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "xorblk/buffer.hpp"

namespace c56::mig {

class DiskArray {
 public:
  DiskArray(int disks, std::int64_t blocks_per_disk, std::size_t block_bytes);

  int disks() const { return static_cast<int>(disks_.size()); }
  std::int64_t blocks_per_disk() const { return blocks_per_disk_; }
  std::size_t block_bytes() const { return block_bytes_; }

  /// Append a zeroed disk (the "add a new disk" step of Algorithm 2).
  int add_disk();

  /// Raw access to a block's storage (no counter update, no fault
  /// injection — the setup/verification backdoor). Throws
  /// std::out_of_range for invalid coordinates.
  std::span<std::uint8_t> raw_block(int disk, std::int64_t block);
  std::span<const std::uint8_t> raw_block(int disk, std::int64_t block) const;

  /// Raw contiguous view over `count` consecutive blocks of one disk
  /// (same backdoor semantics as raw_block).
  std::span<std::uint8_t> raw_blocks(int disk, std::int64_t block,
                                     std::int64_t count);
  std::span<const std::uint8_t> raw_blocks(int disk, std::int64_t block,
                                           std::int64_t count) const;

  /// Counted accesses. Bounds are checked (std::out_of_range names the
  /// offending coordinates); injected faults surface in the IoResult
  /// instead of silently succeeding. A read on a failed disk transfers
  /// nothing; a torn write persists only the first half of the block.
  IoResult read_block(int disk, std::int64_t block,
                      std::span<std::uint8_t> out);
  IoResult write_block(int disk, std::int64_t block,
                       std::span<const std::uint8_t> in);

  /// Counted sub-block access: transfer out.size()/in.size() bytes at
  /// `offset` within one block. Counts exactly like a single-block
  /// access (one transfer, one run, one fail_after ordinal) — the
  /// savings a range access models are bytes moved, not repositions.
  /// Fault semantics mirror the whole-block calls: a sector error or a
  /// failed disk transfers nothing; a torn write persists only the
  /// first half of the *range*; a silent-corruption flip lands inside
  /// the written range. A bad block is only remapped (cleared) by a
  /// full-block rewrite — a partial write leaves the bad mark in place.
  /// The range must be non-empty and inside the block.
  IoResult read_range(int disk, std::int64_t block, std::size_t offset,
                      std::span<std::uint8_t> out);
  IoResult write_range(int disk, std::int64_t block, std::size_t offset,
                       std::span<const std::uint8_t> in);

  /// Vectored counted access over `count` consecutive blocks of one
  /// disk. Bounds are checked once for the whole run; the buffer must
  /// hold exactly count * block_bytes(). The run counts `count`
  /// per-block transfers in reads()/writes() but only one sequential
  /// run in read_runs()/write_runs(). Fault injection keeps per-block
  /// semantics: the first injected fault aborts the run at its block
  /// (earlier blocks of the run are already transferred) and is
  /// reported with that block's coordinates.
  IoResult read_blocks(int disk, std::int64_t block, std::int64_t count,
                       std::span<std::uint8_t> out);
  IoResult write_blocks(int disk, std::int64_t block, std::int64_t count,
                        std::span<const std::uint8_t> in);

  /// Install a fault plan (replaces any previous one and reseeds the
  /// injection RNG). Not safe against concurrent in-flight I/O.
  void set_fault_plan(const FaultPlan& plan);
  /// Explicit failure control (a plan's DiskFailure ends up here too).
  void fail_disk(int disk);
  /// Clears the failed flag and any scripted failure for the disk; the
  /// stale contents stay in place until a rebuild overwrites them.
  void repair_disk(int disk);
  bool disk_failed(int disk) const;
  int failed_disks() const;

  std::uint64_t reads(int disk) const;
  std::uint64_t writes(int disk) const;
  std::uint64_t total_reads() const;
  std::uint64_t total_writes() const;
  /// Sequential-run accounting: a read_block/write_block counts one
  /// run; a read_blocks/write_blocks batch counts one run regardless
  /// of its length.
  std::uint64_t read_runs(int disk) const;
  std::uint64_t write_runs(int disk) const;
  std::uint64_t total_read_runs() const;
  std::uint64_t total_write_runs() const;
  /// Payload bytes of counted accesses, tallied at issue like
  /// reads()/writes(): a block access adds block_bytes(), a run
  /// count * block_bytes(), and a range access only its range length —
  /// the byte savings the sub-block plane is measured by.
  std::uint64_t read_bytes(int disk) const;
  std::uint64_t write_bytes(int disk) const;
  std::uint64_t total_read_bytes() const;
  std::uint64_t total_write_bytes() const;

  /// Flip `mask` into the stored byte at `offset` of a block, with no
  /// counter update and no IoResult: the direct silent-corruption
  /// backdoor for scrub tests (a plan's SilentCorruption entries and
  /// bit_rot_rate land on the same counter). The caller must exclude
  /// concurrent I/O on the block, exactly as for raw_block writes.
  void corrupt_block(int disk, std::int64_t block, std::size_t offset = 0,
                     std::uint8_t mask = 0xFF);

  /// Fault events observed by counted I/O since construction: injected
  /// sector errors and torn writes surfaced to callers, silent
  /// corruptions planted (scripted, bit-rot, and corrupt_block), and
  /// disks that transitioned to failed (scripted fail_after trips and
  /// explicit fail_disk calls; repairs don't subtract).
  std::uint64_t sector_errors() const { return sector_errors_.value(); }
  std::uint64_t torn_writes() const { return torn_writes_.value(); }
  std::uint64_t silent_corruptions() const {
    return silent_corruptions_.value();
  }
  std::uint64_t disk_failure_events() const {
    return disk_failure_events_.value();
  }

  /// Export the per-disk counters, totals, and fault events through
  /// `registry` snapshots as `{prefix}_reads{disk="0"}`,
  /// `{prefix}_reads_total`, `{prefix}_sector_errors`, ... plus a
  /// `{prefix}_failed_disks` gauge. The collector detaches when the
  /// array is destroyed (or on detach_metrics). Safe to attach before
  /// the geometry is final: the snapshot-time walk holds the geometry
  /// lock shared, so a concurrent add_disk (which takes it exclusive)
  /// cannot reallocate the disk table under it.
  /// A non-empty `labels` block (e.g. `volume="3"`) is merged into the
  /// per-disk label set and appended to the totals, so many arrays can
  /// share one registry in multi-volume services.
  void attach_metrics(obs::Registry& registry,
                      const std::string& prefix = "disk_array",
                      const std::string& labels = "");
  void detach_metrics() { metrics_handle_.remove(); }

 private:
  static constexpr std::uint64_t kNeverFails = ~std::uint64_t{0};

  struct Disk {
    Buffer data;
    // Registry-backed counters (obs::Counter is the same relaxed atomic
    // the bespoke counters were); the reads()/writes()/*_runs()
    // accessors stay the authoritative API and keep counting whether or
    // not metrics are enabled or a registry is attached.
    obs::Counter reads;
    obs::Counter writes;
    obs::Counter read_runs;
    obs::Counter write_runs;
    obs::Counter read_bytes;
    obs::Counter write_bytes;
    std::atomic<std::uint64_t> ios{0};  // reads + writes, for fail_after
    std::atomic<std::uint64_t> fail_after{kNeverFails};
    std::atomic<bool> failed{false};
  };

  // Marks the disk failed, counting the event only on the transition.
  void mark_failed(Disk& d);

  void check(int disk, std::int64_t block) const;  // throws out_of_range
  void check_run(int disk, std::int64_t block, std::int64_t count) const;
  void check_range(int disk, std::int64_t block, std::size_t offset,
                   std::size_t len) const;
  bool roll(double rate);  // one injection-RNG draw under fault_mu_
  bool is_bad(int disk, std::int64_t block) const;
  void clear_bad(int disk, std::int64_t block);
  /// Byte flip (offset, mask) a counted write of this block must apply
  /// after persisting, or nullopt: consumes a scripted SilentCorruption
  /// entry for the block, else draws against bit_rot_rate. Runs in the
  /// writing thread, so the flip itself inherits the writer's exclusion.
  std::optional<std::pair<std::size_t, std::uint8_t>> rot_for_write(
      int disk, std::int64_t block);

  std::vector<std::unique_ptr<Disk>> disks_;
  std::int64_t blocks_per_disk_;
  std::size_t block_bytes_;

  // Guards the disks_ table's *shape* only: add_disk takes it exclusive
  // around the push_back, the metrics collector takes it shared for its
  // walk. Hot I/O paths index disks_ lock-free — they are serialised
  // against geometry growth by the migrator's exclusive ops gate, which
  // is the contract add_disk callers already honour.
  mutable std::shared_mutex geom_mu_;

  // Fault-injection state (cold path; guarded by fault_mu_ except the
  // per-disk atomics above).
  mutable std::mutex fault_mu_;
  bool injecting_ = false;
  double sector_error_rate_ = 0.0;
  double torn_write_rate_ = 0.0;
  double bit_rot_rate_ = 0.0;
  std::vector<std::pair<int, std::int64_t>> bad_blocks_;
  std::vector<std::pair<int, std::int64_t>> rot_blocks_;  // scripted, one-shot
  Rng rng_{0};

  // Array-wide fault-event counters.
  obs::Counter sector_errors_;
  obs::Counter torn_writes_;
  obs::Counter silent_corruptions_;
  obs::Counter disk_failure_events_;

  // Declared last so the collector detaches before anything it reads
  // is torn down.
  obs::CollectorHandle metrics_handle_;
};

}  // namespace c56::mig
