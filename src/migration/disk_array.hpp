#pragma once
// In-memory block-device array: the substrate the online migrator
// (Algorithm 2) runs against. Each disk is a flat vector of fixed-size
// blocks; per-disk I/O counters let tests and examples account for the
// traffic the conversion and the concurrent application generate.

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "xorblk/buffer.hpp"

namespace c56::mig {

class DiskArray {
 public:
  DiskArray(int disks, std::int64_t blocks_per_disk, std::size_t block_bytes);

  int disks() const { return static_cast<int>(disks_.size()); }
  std::int64_t blocks_per_disk() const { return blocks_per_disk_; }
  std::size_t block_bytes() const { return block_bytes_; }

  /// Append a zeroed disk (the "add a new disk" step of Algorithm 2).
  int add_disk();

  /// Raw access to a block's storage (no counter update).
  std::span<std::uint8_t> raw_block(int disk, std::int64_t block);
  std::span<const std::uint8_t> raw_block(int disk, std::int64_t block) const;

  /// Counted accesses.
  void read_block(int disk, std::int64_t block, std::span<std::uint8_t> out);
  void write_block(int disk, std::int64_t block,
                   std::span<const std::uint8_t> in);

  std::uint64_t reads(int disk) const;
  std::uint64_t writes(int disk) const;
  std::uint64_t total_reads() const;
  std::uint64_t total_writes() const;

 private:
  struct Disk {
    Buffer data;
    std::atomic<std::uint64_t> reads{0};
    std::atomic<std::uint64_t> writes{0};
  };

  std::vector<std::unique_ptr<Disk>> disks_;
  std::int64_t blocks_per_disk_;
  std::size_t block_bytes_;
};

}  // namespace c56::mig
