#include "migration/controller.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "migration/degraded.hpp"
#include "xorblk/xor.hpp"

namespace c56::mig {

ArrayController::ArrayController(DiskArray& array,
                                 std::unique_ptr<ErasureCode> code)
    : array_(array), code_(std::move(code)) {
  virtual_cols_ = 0;
  for (int c = 0; c < code_->cols(); ++c) {
    bool all_virtual = true;
    for (int r = 0; r < code_->rows(); ++r) {
      if (code_->kind({r, c}) != CellKind::kVirtual) {
        all_virtual = false;
        break;
      }
    }
    if (all_virtual) {
      ++virtual_cols_;
    } else {
      break;  // virtual columns are the leading ones (Fig. 8)
    }
  }
  if (array_.disks() != code_->cols() - virtual_cols_) {
    throw std::invalid_argument(
        "ArrayController: disk count must match physical columns");
  }
  if (array_.blocks_per_disk() % code_->rows() != 0) {
    throw std::invalid_argument(
        "ArrayController: blocks per disk must be a multiple of rows");
  }
  stripes_ = array_.blocks_per_disk() / code_->rows();
  for (int r = 0; r < code_->rows(); ++r) {
    for (int c = 0; c < code_->cols(); ++c) {
      if (code_->kind({r, c}) == CellKind::kData) {
        data_index_[{r, c}] = static_cast<int>(data_cells_.size());
        data_cells_.push_back({r, c});
      }
    }
  }
  parities_of_.resize(data_cells_.size());
  for (const ParityChain& ch : code_->expanded_chains()) {
    for (Cell in : ch.inputs) {
      auto it = data_index_.find({in.row, in.col});
      assert(it != data_index_.end());
      parities_of_[static_cast<std::size_t>(it->second)].push_back(ch.parity);
    }
  }
}

std::int64_t ArrayController::logical_blocks() const {
  return stripes_ * static_cast<std::int64_t>(data_cells_.size());
}

ArrayController::Locus ArrayController::locate(std::int64_t logical) const {
  assert(logical >= 0 && logical < logical_blocks());
  const auto per_stripe = static_cast<std::int64_t>(data_cells_.size());
  return {data_cells_[static_cast<std::size_t>(logical % per_stripe)],
          logical / per_stripe};
}

bool ArrayController::cell_failed(Cell c) const {
  if (code_->kind(c) == CellKind::kVirtual) return false;
  return failed_.count(disk_of(c.col)) != 0;
}

const std::vector<RecoveryRecipe>& ArrayController::recipes() {
  if (!recipes_valid_) {
    std::vector<int> cols;
    for (int d : failed_) cols.push_back(col_of(d));
    auto solved = code_->solve_cells(code_->erased_cells_of_columns(cols));
    if (!solved) {
      throw std::runtime_error("failure pattern is not decodable");
    }
    recipes_ = std::move(*solved);
    recipes_valid_ = true;
  }
  return recipes_;
}

void ArrayController::read_cell(std::int64_t stripe, Cell c,
                                std::span<std::uint8_t> out) {
  if (code_->kind(c) == CellKind::kVirtual) {
    std::ranges::fill(out, std::uint8_t{0});
    return;
  }
  if (cell_failed(c)) {
    reconstruct_cell(stripe, c, out);
  } else {
    const IoResult r = read_block_retry(array_, disk_of(c.col),
                                        block_of(stripe, c.row), out,
                                        RetryPolicy{}, nullptr);
    if (!r.ok()) {
      throw std::runtime_error(std::string("ArrayController: read failed (") +
                               to_string(r.status) + ") at disk " +
                               std::to_string(r.disk) + " block " +
                               std::to_string(r.block));
    }
  }
}

void ArrayController::reconstruct_cell(std::int64_t stripe, Cell c,
                                       std::span<std::uint8_t> out) {
  const int flat = flat_index(c, code_->cols());
  const RecoveryRecipe* recipe = nullptr;
  for (const RecoveryRecipe& r : recipes()) {
    if (r.target == flat) {
      recipe = &r;
      break;
    }
  }
  assert(recipe != nullptr && "cell is not part of the failure set");
  // One shared reconstruct-on-read path: the recipe's surviving chain
  // members feed the same XOR kernel the online migrator degrades
  // through (degraded.hpp).
  std::vector<BlockAddr> srcs;
  srcs.reserve(recipe->sources.size());
  for (int src : recipe->sources) {
    const Cell sc = cell_of_index(src, code_->cols());
    assert(!cell_failed(sc));
    srcs.push_back({disk_of(sc.col), block_of(stripe, sc.row)});
  }
  const IoResult r = xor_chain_read(array_, srcs, out, RetryPolicy{}, nullptr);
  if (!r.ok()) {
    throw std::runtime_error(
        std::string("ArrayController: reconstruction read failed (") +
        to_string(r.status) + ") at disk " + std::to_string(r.disk) +
        " block " + std::to_string(r.block));
  }
}

void ArrayController::read(std::int64_t logical, std::span<std::uint8_t> out) {
  const Locus l = locate(logical);
  read_cell(l.stripe, l.cell, out);
}

void ArrayController::write(std::int64_t logical,
                            std::span<const std::uint8_t> in) {
  const Locus l = locate(logical);
  const std::size_t bs = array_.block_bytes();
  Buffer old(bs), delta(bs), par(bs);
  read_cell(l.stripe, l.cell, old.span());  // reconstructs when degraded
  xor_to(delta.data(), old.data(), in.data(), bs);
  if (all_zero(delta.span())) return;  // idempotent write, nothing to do

  const int idx = data_index_.at({l.cell.row, l.cell.col});
  for (Cell pc : parities_of_[static_cast<std::size_t>(idx)]) {
    if (cell_failed(pc)) continue;  // regenerated at rebuild time
    const int d = disk_of(pc.col);
    const std::int64_t b = block_of(l.stripe, pc.row);
    array_.read_block(d, b, par.span());
    xor_into(par.span(), delta.span());
    array_.write_block(d, b, par.span());
  }
  if (!cell_failed(l.cell)) {
    array_.write_block(disk_of(l.cell.col), block_of(l.stripe, l.cell.row),
                       in);
  }
}

void ArrayController::fail_disk(int disk) {
  if (disk < 0 || disk >= array_.disks()) {
    throw std::out_of_range("fail_disk: no such disk");
  }
  if (failed_.count(disk)) return;
  if (failed_count() >= 2) {
    throw std::runtime_error("fail_disk: fault tolerance exceeded");
  }
  failed_.insert(disk);
  recipes_valid_ = false;
}

bool ArrayController::failed(int disk) const {
  return failed_.count(disk) != 0;
}

std::int64_t ArrayController::rebuild_disk(int disk) {
  if (!failed_.count(disk)) {
    throw std::invalid_argument("rebuild_disk: disk is not failed");
  }
  const int col = col_of(disk);
  std::int64_t rebuilt = 0;
  Buffer block(array_.block_bytes());
  for (std::int64_t s = 0; s < stripes_; ++s) {
    for (int r = 0; r < code_->rows(); ++r) {
      const Cell c{r, col};
      if (code_->kind(c) == CellKind::kVirtual) continue;
      reconstruct_cell(s, c, block.span());
      array_.write_block(disk, block_of(s, r), block.span());
      ++rebuilt;
    }
  }
  failed_.erase(disk);
  recipes_valid_ = false;
  return rebuilt;
}

Buffer ArrayController::read_stripe(std::int64_t stripe) const {
  const std::size_t bs = array_.block_bytes();
  Buffer buf(static_cast<std::size_t>(code_->cell_count()) * bs);
  StripeView v = StripeView::over(buf, code_->rows(), code_->cols(), bs);
  for (int r = 0; r < code_->rows(); ++r) {
    for (int c = 0; c < code_->cols(); ++c) {
      if (code_->kind({r, c}) == CellKind::kVirtual) continue;
      const auto src =
          array_.raw_block(disk_of(c), block_of(stripe, r));
      std::ranges::copy(src, v.block({r, c}).begin());
    }
  }
  return buf;
}

std::vector<std::int64_t> ArrayController::scrub() {
  std::vector<std::int64_t> bad;
  const std::size_t bs = array_.block_bytes();
  for (std::int64_t s = 0; s < stripes_; ++s) {
    Buffer buf = read_stripe(s);
    StripeView v = StripeView::over(buf, code_->rows(), code_->cols(), bs);
    if (!code_->verify(v)) bad.push_back(s);
  }
  return bad;
}

}  // namespace c56::mig
