#include "migration/controller.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "migration/degraded.hpp"
#include "util/env.hpp"
#include "xorblk/pool.hpp"
#include "xorblk/xor.hpp"

namespace c56::mig {

namespace {

[[noreturn]] void throw_io(const char* what, const IoResult& r) {
  throw std::runtime_error(std::string("ArrayController: ") + what + " (" +
                           to_string(r.status) + ") at disk " +
                           std::to_string(r.disk) + " block " +
                           std::to_string(r.block));
}

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

ArrayController::ArrayController(DiskArray& array,
                                 std::unique_ptr<ErasureCode> code)
    : array_(array), code_(std::move(code)) {
  virtual_cols_ = 0;
  for (int c = 0; c < code_->cols(); ++c) {
    bool all_virtual = true;
    for (int r = 0; r < code_->rows(); ++r) {
      if (code_->kind({r, c}) != CellKind::kVirtual) {
        all_virtual = false;
        break;
      }
    }
    if (all_virtual) {
      ++virtual_cols_;
    } else {
      break;  // virtual columns are the leading ones (Fig. 8)
    }
  }
  if (array_.disks() != code_->cols() - virtual_cols_) {
    throw std::invalid_argument(
        "ArrayController: disk count must match physical columns");
  }
  if (array_.blocks_per_disk() % code_->rows() != 0) {
    throw std::invalid_argument(
        "ArrayController: blocks per disk must be a multiple of rows");
  }
  stripes_ = array_.blocks_per_disk() / code_->rows();

  const int rows = code_->rows();
  const int cols = code_->cols();
  kind_.resize(static_cast<std::size_t>(rows) * cols);
  data_index_.assign(static_cast<std::size_t>(rows) * cols, -1);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const auto f = static_cast<std::size_t>(r) * cols + c;
      kind_[f] = code_->kind({r, c});
      if (kind_[f] == CellKind::kData) {
        data_index_[f] = static_cast<int>(data_cells_.size());
        data_cells_.push_back({r, c});
      }
    }
  }

  // Per-data-cell parity lists and per-parity expanded input lists, laid
  // out as CSR so the write planner walks plain arrays.
  const std::vector<ParityChain>& expanded = code_->expanded_chains();
  std::vector<std::vector<Cell>> by_data(data_cells_.size());
  chain_begin_.assign(static_cast<std::size_t>(rows) * cols, -1);
  chain_offset_.push_back(0);
  for (const ParityChain& ch : expanded) {
    chain_begin_[static_cast<std::size_t>(flat_of(ch.parity))] =
        static_cast<int>(chain_offset_.size()) - 1;
    for (Cell in : ch.inputs) {
      const int idx = data_index_[static_cast<std::size_t>(flat_of(in))];
      assert(idx >= 0);
      by_data[static_cast<std::size_t>(idx)].push_back(ch.parity);
      chain_inputs_.push_back(in);
    }
    chain_offset_.push_back(static_cast<int>(chain_inputs_.size()));
  }
  parities_offset_.push_back(0);
  for (const std::vector<Cell>& ps : by_data) {
    parities_cells_.insert(parities_cells_.end(), ps.begin(), ps.end());
    parities_offset_.push_back(static_cast<int>(parities_cells_.size()));
  }

  // Checked knob parsing: garbage keeps the default (off), negative or
  // absurd sizes clamp instead of wrapping through strtoull. The cap is
  // a sanity bound on cache stripes, not a recommendation. Shards are
  // read first so an env-configured cache is built with them.
  if (const auto v = util::env_int("C56_CACHE_SHARDS", 1, 4096)) {
    cache_shards_ = static_cast<int>(*v);
  }
  if (const auto v = util::env_int("C56_CACHE_STRIPES", 0, 1 << 22)) {
    if (*v > 0) set_cache_stripes(static_cast<std::size_t>(*v));
  }
  if (const auto v = util::env_int("C56_SUBBLOCK", 0, 1)) {
    subblock_delta_ = *v != 0;
  }
  if (const auto v = util::env_int("C56_SUBBLOCK_PROMOTE_PCT", 1, 100)) {
    subblock_promote_pct_ = static_cast<int>(*v);
  }
}

void ArrayController::set_subblock_promote_pct(int pct) {
  if (pct < 1 || pct > 100) {
    throw std::invalid_argument(
        "set_subblock_promote_pct: pct must be in [1, 100]");
  }
  subblock_promote_pct_ = pct;
}

std::int64_t ArrayController::logical_blocks() const {
  return stripes_ * static_cast<std::int64_t>(data_cells_.size());
}

ArrayController::Locus ArrayController::locate(std::int64_t logical) const {
  assert(logical >= 0 && logical < logical_blocks());
  const auto per_stripe = static_cast<std::int64_t>(data_cells_.size());
  return {data_cells_[static_cast<std::size_t>(logical % per_stripe)],
          logical / per_stripe};
}

bool ArrayController::cell_failed(Cell c) const {
  if (kind_[static_cast<std::size_t>(flat_of(c))] == CellKind::kVirtual) {
    return false;
  }
  return failed_.count(disk_of(c.col)) != 0;
}

std::span<const Cell> ArrayController::parity_inputs(int pflat) const {
  const int k = chain_begin_[static_cast<std::size_t>(pflat)];
  assert(k >= 0 && "cell is not a parity");
  return std::span<const Cell>(chain_inputs_)
      .subspan(static_cast<std::size_t>(chain_offset_[k]),
               static_cast<std::size_t>(chain_offset_[k + 1] -
                                        chain_offset_[k]));
}

std::span<const Cell> ArrayController::parities_of(int idx) const {
  return std::span<const Cell>(parities_cells_)
      .subspan(static_cast<std::size_t>(parities_offset_[idx]),
               static_cast<std::size_t>(parities_offset_[idx + 1] -
                                        parities_offset_[idx]));
}

const std::vector<RecoveryRecipe>& ArrayController::recipes() {
  if (!recipes_valid_) {
    std::vector<int> cols;
    for (int d : failed_) cols.push_back(col_of(d));
    auto solved = code_->solve_cells(code_->erased_cells_of_columns(cols));
    if (!solved) {
      throw std::runtime_error("failure pattern is not decodable");
    }
    recipes_ = std::move(*solved);
    recipes_valid_ = true;
  }
  return recipes_;
}

void ArrayController::read_cell(std::int64_t stripe, Cell c,
                                std::span<std::uint8_t> out) {
  if (kind_[static_cast<std::size_t>(flat_of(c))] == CellKind::kVirtual) {
    std::ranges::fill(out, std::uint8_t{0});
    return;
  }
  if (cell_failed(c)) {
    reconstruct_cell(stripe, c, out);
  } else {
    const IoResult r = read_block_retry(array_, disk_of(c.col),
                                        block_of(stripe, c.row), out,
                                        RetryPolicy{}, nullptr);
    if (!r.ok()) throw_io("read failed", r);
  }
}

void ArrayController::reconstruct_cell(std::int64_t stripe, Cell c,
                                       std::span<std::uint8_t> out) {
  const int flat = flat_of(c);
  const RecoveryRecipe* recipe = nullptr;
  for (const RecoveryRecipe& r : recipes()) {
    if (r.target == flat) {
      recipe = &r;
      break;
    }
  }
  assert(recipe != nullptr && "cell is not part of the failure set");
  // One shared reconstruct-on-read path: the recipe's surviving chain
  // members feed the same XOR kernel the online migrator degrades
  // through (degraded.hpp).
  std::vector<BlockAddr> srcs;
  srcs.reserve(recipe->sources.size());
  for (int src : recipe->sources) {
    const Cell sc = cell_of_index(src, code_->cols());
    assert(!cell_failed(sc));
    srcs.push_back({disk_of(sc.col), block_of(stripe, sc.row)});
  }
  const IoResult r = xor_chain_read(array_, srcs, out, RetryPolicy{}, nullptr);
  if (!r.ok()) throw_io("reconstruction read failed", r);
}

void ArrayController::read(std::int64_t logical, std::span<std::uint8_t> out) {
  const Locus l = locate(logical);
  if (cache_ && cache_->lookup(l.stripe, flat_of(l.cell), out)) return;
  std::lock_guard sl(stripe_lock(l.stripe));
  read_cell(l.stripe, l.cell, out);
  cache_fill(l.stripe, l.cell, out);
}

void ArrayController::write(std::int64_t logical,
                            std::span<const std::uint8_t> in) {
  const Locus l = locate(logical);
  const std::size_t bs = array_.block_bytes();
  std::lock_guard sl(stripe_lock(l.stripe));
  PooledBuffer old(bs), delta(bs), par(bs);
  if (!(cache_ && cache_->lookup(l.stripe, flat_of(l.cell), old.span()))) {
    read_cell(l.stripe, l.cell, old.span());  // reconstructs when degraded
  }
  xor_to(delta.data(), old.data(), in.data(), bs);
  if (all_zero(delta.span())) {  // idempotent write, nothing to do
    cache_fill(l.stripe, l.cell, in);
    return;
  }

  const int idx = data_index_[static_cast<std::size_t>(flat_of(l.cell))];
  for (Cell pc : parities_of(idx)) {
    if (cell_failed(pc)) continue;  // regenerated at rebuild time
    const int d = disk_of(pc.col);
    const std::int64_t b = block_of(l.stripe, pc.row);
    array_.read_block(d, b, par.span());
    xor_into(par.span(), delta.span());
    array_.write_block(d, b, par.span());
  }
  if (!cell_failed(l.cell)) {
    array_.write_block(disk_of(l.cell.col), block_of(l.stripe, l.cell.row),
                       in);
  }
  cache_fill(l.stripe, l.cell, in);
}

void ArrayController::read(std::int64_t logical, std::int64_t count,
                           std::span<std::uint8_t> out) {
  const std::size_t bs = array_.block_bytes();
  // Overflow-safe range check: `logical + count` can wrap for huge
  // counts, so compare count against the remaining span instead. A
  // range ending exactly at logical_blocks() is valid.
  if (count < 0 || logical < 0 || logical > logical_blocks() ||
      count > logical_blocks() - logical) {
    throw std::out_of_range("ArrayController::read: bad logical range");
  }
  if (out.size() != static_cast<std::size_t>(count) * bs) {
    throw std::invalid_argument("ArrayController::read: bad buffer size");
  }
  if (count == 0) return;  // validated no-op, planner never invoked
  const bool obs_on = obs::metrics_enabled();
  std::chrono::steady_clock::time_point t0;
  if (obs_on) t0 = std::chrono::steady_clock::now();
  const auto per = static_cast<std::int64_t>(data_cells_.size());
  std::int64_t done = 0;
  while (done < count) {
    const std::int64_t l = logical + done;
    const auto i0 = static_cast<int>(l % per);
    const auto n =
        static_cast<int>(std::min<std::int64_t>(per - i0, count - done));
    std::lock_guard sl(stripe_lock(l / per));
    read_run(l / per, i0, n,
             out.subspan(static_cast<std::size_t>(done) * bs,
                         static_cast<std::size_t>(n) * bs));
    done += n;
  }
  if (obs_on) {
    ranged_reads_.inc();
    read_latency_us_.observe(elapsed_us(t0));
  }
}

void ArrayController::write(std::int64_t logical, std::int64_t count,
                            std::span<const std::uint8_t> in) {
  const std::size_t bs = array_.block_bytes();
  // Same overflow-safe range semantics as ranged read (see above).
  if (count < 0 || logical < 0 || logical > logical_blocks() ||
      count > logical_blocks() - logical) {
    throw std::out_of_range("ArrayController::write: bad logical range");
  }
  if (in.size() != static_cast<std::size_t>(count) * bs) {
    throw std::invalid_argument("ArrayController::write: bad buffer size");
  }
  if (count == 0) return;  // validated no-op, planner never invoked
  const bool obs_on = obs::metrics_enabled();
  std::chrono::steady_clock::time_point t0;
  if (obs_on) t0 = std::chrono::steady_clock::now();
  // Priced by the perf-smoke overhead gate: with a log attached but
  // events disabled this is the layer's whole hot-path cost.
  if (events_ && obs::events_enabled()) {
    emit_event(obs::EventLevel::kDebug,
               "ranged write: " + std::to_string(count) +
                   " blocks at logical " + std::to_string(logical),
               -1, "ranged_write");
  }
  const auto per = static_cast<std::int64_t>(data_cells_.size());
  std::int64_t done = 0;
  while (done < count) {
    const std::int64_t l = logical + done;
    const auto i0 = static_cast<int>(l % per);
    const auto n =
        static_cast<int>(std::min<std::int64_t>(per - i0, count - done));
    const auto chunk = in.subspan(static_cast<std::size_t>(done) * bs,
                                  static_cast<std::size_t>(n) * bs);
    std::lock_guard sl(stripe_lock(l / per));
    if (i0 == 0 && n == per) {
      if (obs_on) full_stripe_writes_.inc();
      write_full_stripe(l / per, chunk);
    } else {
      if (obs_on) partial_stripe_writes_.inc();
      write_partial_stripe(l / per, i0, n, chunk);
    }
    done += n;
  }
  if (obs_on) {
    ranged_writes_.inc();
    write_latency_us_.observe(elapsed_us(t0));
  }
}

void ArrayController::read_run(std::int64_t stripe, int i0, int n,
                               std::span<std::uint8_t> out) {
  std::vector<CellFetch> want(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    want[static_cast<std::size_t>(k)] = {
        data_cells_[static_cast<std::size_t>(i0 + k)], k};
  }
  fetch_cells(stripe, want, out.data(), /*use_cache=*/true);
}

void ArrayController::fetch_cells(std::int64_t stripe,
                                  std::span<const CellFetch> want,
                                  std::uint8_t* dst_blocks, bool use_cache) {
  const std::size_t bs = array_.block_bytes();
  std::vector<CellFetch> rest;  // cache misses on surviving disks
  rest.reserve(want.size());
  for (const CellFetch& cf : want) {
    const std::span<std::uint8_t> dst{
        dst_blocks + static_cast<std::size_t>(cf.dst) * bs, bs};
    if (use_cache && cache_ && cache_->lookup(stripe, flat_of(cf.cell), dst)) {
      continue;
    }
    if (cell_failed(cf.cell)) {
      reconstruct_cell(stripe, cf.cell, dst);
      if (use_cache) cache_fill(stripe, cf.cell, dst);
      continue;
    }
    rest.push_back(cf);
  }
  std::sort(rest.begin(), rest.end(),
            [](const CellFetch& a, const CellFetch& b) {
              return std::pair(a.cell.col, a.cell.row) <
                     std::pair(b.cell.col, b.cell.row);
            });
  std::size_t i = 0;
  while (i < rest.size()) {
    std::size_t j = i + 1;
    while (j < rest.size() && rest[j].cell.col == rest[i].cell.col &&
           rest[j].cell.row == rest[j - 1].cell.row + 1) {
      ++j;
    }
    const auto m = static_cast<int>(j - i);
    const int d = disk_of(rest[i].cell.col);
    const std::int64_t b0 = block_of(stripe, rest[i].cell.row);
    bool per_block = (m == 1);
    if (m > 1) {
      PooledBuffer staging(static_cast<std::size_t>(m) * bs);
      const IoResult r = array_.read_blocks(d, b0, m, staging.span());
      if (r.ok()) {
        for (int k = 0; k < m; ++k) {
          const std::span<std::uint8_t> dst{
              dst_blocks + static_cast<std::size_t>(rest[i + k].dst) * bs, bs};
          std::memcpy(dst.data(),
                      staging.data() + static_cast<std::size_t>(k) * bs, bs);
          if (use_cache) cache_fill(stripe, rest[i + k].cell, dst);
        }
      } else {
        per_block = true;  // injected fault: reads are idempotent, redo
      }
    }
    if (per_block) {
      for (int k = 0; k < m; ++k) {
        const std::span<std::uint8_t> dst{
            dst_blocks + static_cast<std::size_t>(rest[i + k].dst) * bs, bs};
        const IoResult r = read_block_retry(array_, d, b0 + k, dst,
                                            RetryPolicy{}, nullptr);
        if (!r.ok()) throw_io("read failed", r);
        if (use_cache) cache_fill(stripe, rest[i + k].cell, dst);
      }
    }
    i = j;
  }
}

void ArrayController::write_cells(std::int64_t stripe,
                                  std::span<const CellWrite> want) {
  if (want.empty()) return;
  const std::size_t bs = array_.block_bytes();
  std::vector<CellWrite> w(want.begin(), want.end());
  std::sort(w.begin(), w.end(), [](const CellWrite& a, const CellWrite& b) {
    return std::pair(a.cell.col, a.cell.row) <
           std::pair(b.cell.col, b.cell.row);
  });
  PooledBuffer staging(static_cast<std::size_t>(code_->rows()) * bs);
  std::size_t i = 0;
  while (i < w.size()) {
    std::size_t j = i + 1;
    while (j < w.size() && w[j].cell.col == w[i].cell.col &&
           w[j].cell.row == w[j - 1].cell.row + 1) {
      ++j;
    }
    const auto m = static_cast<int>(j - i);
    const int d = disk_of(w[i].cell.col);
    const std::int64_t b0 = block_of(stripe, w[i].cell.row);
    if (m == 1) {
      array_.write_block(d, b0, {w[i].src, bs});
    } else {
      for (int k = 0; k < m; ++k) {
        std::memcpy(staging.data() + static_cast<std::size_t>(k) * bs,
                    w[i + k].src, bs);
      }
      const IoResult r = array_.write_blocks(
          d, b0, m,
          staging.span().subspan(0, static_cast<std::size_t>(m) * bs));
      if (r.status == IoStatus::kTornWrite) {
        // A torn block is repaired by a full rewrite; redo the run per
        // block so only the torn one is retried with backoff.
        for (int k = 0; k < m; ++k) {
          write_block_retry(array_, d, b0 + k, {w[i + k].src, bs},
                            RetryPolicy{}, nullptr);
        }
      }
    }
    i = j;
  }
}

void ArrayController::write_full_stripe(std::int64_t stripe,
                                        std::span<const std::uint8_t> in) {
  const std::size_t bs = array_.block_bytes();
  const int rows = code_->rows();
  const int cols = code_->cols();
  PooledBuffer sbuf(static_cast<std::size_t>(code_->cell_count()) * bs);
  StripeView v(sbuf.span(), rows, cols, bs);
  for (std::size_t i = 0; i < data_cells_.size(); ++i) {
    std::memcpy(v.block(data_cells_[i]).data(), in.data() + i * bs, bs);
  }
  code_->encode(v);  // regenerates every parity; zero pre-reads issued
  std::vector<CellWrite> wr;
  wr.reserve(static_cast<std::size_t>(rows) *
             static_cast<std::size_t>(cols - virtual_cols_));
  for (int c = virtual_cols_; c < cols; ++c) {
    if (failed_.count(disk_of(c))) continue;  // regenerated at rebuild time
    for (int r = 0; r < rows; ++r) {
      if (kind_[static_cast<std::size_t>(r) * cols + c] ==
          CellKind::kVirtual) {
        continue;
      }
      wr.push_back({{r, c}, v.block({r, c}).data()});
    }
  }
  if (obs::metrics_enabled()) {
    std::uint64_t np = 0;
    for (const CellWrite& cw : wr) {
      if (kind_[static_cast<std::size_t>(flat_of(cw.cell))] !=
          CellKind::kData) {
        ++np;
      }
    }
    direct_parities_.inc(np);  // encode() issues zero pre-reads
  }
  write_cells(stripe, wr);
  for (std::size_t i = 0; i < data_cells_.size(); ++i) {
    cache_fill(stripe, data_cells_[i], in.subspan(i * bs, bs));
  }
}

void ArrayController::write_partial_stripe(std::int64_t stripe, int i0, int n,
                                           std::span<const std::uint8_t> in) {
  const std::size_t bs = array_.block_bytes();
  const int cols = code_->cols();

  // Surviving parities touched by the range, each listed once.
  std::vector<int> affected;  // flat parity indices
  std::vector<char> seen(kind_.size(), 0);
  for (int k = 0; k < n; ++k) {
    for (Cell pc : parities_of(i0 + k)) {
      const auto pf = static_cast<std::size_t>(flat_of(pc));
      if (seen[pf]) continue;
      seen[pf] = 1;
      if (cell_failed(pc)) continue;  // regenerated at rebuild time
      affected.push_back(static_cast<int>(pf));
    }
  }

  // A parity whose whole expanded input set lies inside the range is
  // computed directly from the new values (no pre-read of the parity or
  // of old data); this is what makes a full row as cheap as a full
  // stripe. Everything else is read-modify-write with the deltas of its
  // in-range inputs coalesced, so old data values are needed only for
  // cells feeding at least one RMW parity.
  const auto in_range = [&](Cell c) {
    const int idx = data_index_[static_cast<std::size_t>(flat_of(c))];
    return idx >= i0 && idx < i0 + n;
  };
  std::vector<char> direct(affected.size(), 0);
  std::vector<char> need_old(static_cast<std::size_t>(n), 0);
  for (std::size_t a = 0; a < affected.size(); ++a) {
    bool all = true;
    for (Cell ic : parity_inputs(affected[a])) {
      if (!in_range(ic)) {
        all = false;
        break;
      }
    }
    direct[a] = all ? 1 : 0;
    if (!all) {
      for (Cell ic : parity_inputs(affected[a])) {
        if (in_range(ic)) {
          const int idx = data_index_[static_cast<std::size_t>(flat_of(ic))];
          need_old[static_cast<std::size_t>(idx - i0)] = 1;
        }
      }
    }
  }
  if (obs::metrics_enabled()) {
    std::uint64_t nd = 0;
    for (char dflag : direct) nd += static_cast<std::uint64_t>(dflag);
    direct_parities_.inc(nd);
    rmw_parities_.inc(affected.size() - nd);
  }

  // Old values of the needed cells, turned into deltas in place.
  PooledBuffer old(static_cast<std::size_t>(n) * bs);
  std::vector<CellFetch> want;
  for (int k = 0; k < n; ++k) {
    if (need_old[static_cast<std::size_t>(k)]) {
      want.push_back({data_cells_[static_cast<std::size_t>(i0 + k)], k});
    }
  }
  fetch_cells(stripe, want, old.data(), /*use_cache=*/true);
  for (int k = 0; k < n; ++k) {
    if (need_old[static_cast<std::size_t>(k)]) {
      xor_into(old.data() + static_cast<std::size_t>(k) * bs,
               in.data() + static_cast<std::size_t>(k) * bs, bs);
    }
  }

  // New parity values: direct ones accumulate the new inputs in one
  // pass; RMW ones pre-read once (batched per column) and fold in the
  // coalesced deltas, so each parity block is read and written at most
  // once for the whole range.
  PooledBuffer pbuf(std::max<std::size_t>(1, affected.size()) * bs);
  std::vector<CellFetch> pre;
  for (std::size_t a = 0; a < affected.size(); ++a) {
    if (!direct[a]) {
      pre.push_back({cell_of_index(affected[a], cols), static_cast<int>(a)});
    }
  }
  fetch_cells(stripe, pre, pbuf.data(), /*use_cache=*/false);
  std::vector<const std::uint8_t*> srcs;
  for (std::size_t a = 0; a < affected.size(); ++a) {
    std::uint8_t* par = pbuf.data() + a * bs;
    if (direct[a]) {
      srcs.clear();
      for (Cell ic : parity_inputs(affected[a])) {
        const int idx = data_index_[static_cast<std::size_t>(flat_of(ic))];
        srcs.push_back(in.data() + static_cast<std::size_t>(idx - i0) * bs);
      }
      xor_accumulate(par, reinterpret_cast<const void* const*>(srcs.data()),
                     srcs.size(), bs);
    } else {
      for (Cell ic : parity_inputs(affected[a])) {
        if (!in_range(ic)) continue;
        const int idx = data_index_[static_cast<std::size_t>(flat_of(ic))];
        xor_into(par, old.data() + static_cast<std::size_t>(idx - i0) * bs,
                 bs);
      }
    }
  }

  // One batched flush for parities and surviving data blocks alike.
  std::vector<CellWrite> wr;
  wr.reserve(affected.size() + static_cast<std::size_t>(n));
  for (std::size_t a = 0; a < affected.size(); ++a) {
    wr.push_back({cell_of_index(affected[a], cols), pbuf.data() + a * bs});
  }
  for (int k = 0; k < n; ++k) {
    const Cell c = data_cells_[static_cast<std::size_t>(i0 + k)];
    if (!cell_failed(c)) {
      wr.push_back({c, in.data() + static_cast<std::size_t>(k) * bs});
    }
  }
  write_cells(stripe, wr);
  for (int k = 0; k < n; ++k) {
    cache_fill(stripe, data_cells_[static_cast<std::size_t>(i0 + k)],
               in.subspan(static_cast<std::size_t>(k) * bs, bs));
  }
}

void ArrayController::read_range(std::int64_t logical, std::int64_t offset,
                                 std::span<std::uint8_t> out) {
  const std::size_t bs = array_.block_bytes();
  if (logical < 0 || logical >= logical_blocks() || offset < 0 ||
      offset > static_cast<std::int64_t>(bs) ||
      out.size() > bs - static_cast<std::size_t>(offset)) {
    throw std::out_of_range("ArrayController::read_range: bad range");
  }
  if (out.empty()) return;  // validated no-op
  if (offset == 0 && out.size() == bs) {
    read(logical, out);
    return;
  }
  const Locus l = locate(logical);
  const auto off = static_cast<std::size_t>(offset);
  if (cache_) {
    PooledBuffer tmp(bs);
    if (cache_->lookup(l.stripe, flat_of(l.cell), tmp.span())) {
      std::memcpy(out.data(), tmp.data() + off, out.size());
      return;
    }
  }
  std::lock_guard sl(stripe_lock(l.stripe));
  if (cell_failed(l.cell)) {
    // Reconstruction is whole-block by nature (the XOR chains cover
    // full blocks); slice the range and keep the full value cached.
    PooledBuffer tmp(bs);
    reconstruct_cell(l.stripe, l.cell, tmp.span());
    std::memcpy(out.data(), tmp.data() + off, out.size());
    cache_fill(l.stripe, l.cell, tmp.span());
    return;
  }
  const IoResult r =
      read_range_retry(array_, disk_of(l.cell.col),
                       block_of(l.stripe, l.cell.row), off, out,
                       RetryPolicy{}, nullptr);
  if (!r.ok()) throw_io("range read failed", r);
}

void ArrayController::write_range(std::int64_t logical, std::int64_t offset,
                                  std::span<const std::uint8_t> in) {
  const std::size_t bs = array_.block_bytes();
  if (logical < 0 || logical >= logical_blocks() || offset < 0 ||
      offset > static_cast<std::int64_t>(bs) ||
      in.size() > bs - static_cast<std::size_t>(offset)) {
    throw std::out_of_range("ArrayController::write_range: bad range");
  }
  if (in.empty()) return;  // validated no-op
  if (offset == 0 && in.size() == bs) {
    // Whole-block range: the per-block path, byte- and I/O-identical.
    write(logical, in);
    return;
  }
  const SubWrite w{logical, offset, in};
  write_range(std::span<const SubWrite>(&w, 1));
}

void ArrayController::write_range(std::span<const SubWrite> batch) {
  const std::size_t bs = array_.block_bytes();
  for (const SubWrite& w : batch) {
    if (w.logical < 0 || w.logical >= logical_blocks() || w.offset < 0 ||
        w.offset > static_cast<std::int64_t>(bs) ||
        w.data.size() > bs - static_cast<std::size_t>(w.offset)) {
      throw std::out_of_range("ArrayController::write_range: bad range");
    }
  }
  // Validated zero-length entries are no-ops; group the rest by stripe,
  // preserving batch order within each stripe (overlaps apply in order).
  const auto per = static_cast<std::int64_t>(data_cells_.size());
  std::vector<SubWrite> ops;
  ops.reserve(batch.size());
  for (const SubWrite& w : batch) {
    if (!w.data.empty()) ops.push_back(w);
  }
  if (ops.empty()) return;
  const bool obs_on = obs::metrics_enabled();
  std::chrono::steady_clock::time_point t0;
  if (obs_on) t0 = std::chrono::steady_clock::now();
  if (events_ && obs::events_enabled()) {
    emit_event(obs::EventLevel::kDebug,
               "subblock write: " + std::to_string(ops.size()) + " ops",
               -1, "subblock_write");
  }
  std::stable_sort(ops.begin(), ops.end(),
                   [per](const SubWrite& a, const SubWrite& b) {
                     return a.logical / per < b.logical / per;
                   });
  std::size_t i = 0;
  while (i < ops.size()) {
    const std::int64_t stripe = ops[i].logical / per;
    std::size_t j = i + 1;
    while (j < ops.size() && ops[j].logical / per == stripe) ++j;
    std::lock_guard sl(stripe_lock(stripe));
    write_subblock_stripe(stripe,
                          std::span<const SubWrite>(ops.data() + i, j - i));
    i = j;
  }
  if (obs_on) {
    ranged_writes_.inc();
    write_latency_us_.observe(elapsed_us(t0));
  }
}

void ArrayController::write_subblock_stripe(std::int64_t stripe,
                                            std::span<const SubWrite> ops) {
  const std::size_t bs = array_.block_bytes();
  const int cols = code_->cols();
  const auto per = static_cast<std::int64_t>(data_cells_.size());
  const bool obs_on = obs::metrics_enabled();

  // Union byte range per touched data cell, in first-touch order.
  struct ByteRange {
    std::size_t lo, hi;
  };
  std::vector<int> touched;  // data idx within the stripe
  std::vector<int> slot_of(data_cells_.size(), -1);
  std::vector<ByteRange> range;
  for (const SubWrite& w : ops) {
    const auto idx = static_cast<int>(w.logical % per);
    int s = slot_of[static_cast<std::size_t>(idx)];
    if (s < 0) {
      s = static_cast<int>(touched.size());
      slot_of[static_cast<std::size_t>(idx)] = s;
      touched.push_back(idx);
      range.push_back({bs, 0});
    }
    auto& br = range[static_cast<std::size_t>(s)];
    br.lo = std::min(br.lo, static_cast<std::size_t>(w.offset));
    br.hi = std::max(br.hi, static_cast<std::size_t>(w.offset) + w.data.size());
  }

  // Promotion: a range covering >= pct% of the block is widened to the
  // whole block (with the plane disabled, everything is — that is the
  // whole-block RMW fallback).
  const int pct = subblock_delta_ ? subblock_promote_pct_ : 0;
  std::uint64_t promoted = 0;
  for (ByteRange& br : range) {
    if ((br.hi - br.lo) * 100 >= static_cast<std::size_t>(pct) * bs) {
      if (br.lo != 0 || br.hi != bs) ++promoted;
      br.lo = 0;
      br.hi = bs;
    }
  }

  // Old and new images of every touched cell. The old image is read
  // over just the union range unless the full block is available for
  // free (cache hit) or required anyway (failed cell reconstruction is
  // whole-block by nature; promoted ranges are the whole block).
  const std::size_t T = touched.size();
  PooledBuffer olds(T * bs), news(T * bs);
  std::vector<char> have_full(T, 0), skip(T, 0);
  for (std::size_t t = 0; t < T; ++t) {
    const Cell c = data_cells_[static_cast<std::size_t>(touched[t])];
    const auto oldb = olds.block(t, bs);
    const ByteRange br = range[t];
    if (cache_ && cache_->lookup(stripe, flat_of(c), oldb)) {
      have_full[t] = 1;
    } else if (cell_failed(c)) {
      reconstruct_cell(stripe, c, oldb);
      have_full[t] = 1;
    } else {
      const IoResult r = read_range_retry(
          array_, disk_of(c.col), block_of(stripe, c.row), br.lo,
          oldb.subspan(br.lo, br.hi - br.lo), RetryPolicy{}, nullptr);
      if (!r.ok()) throw_io("range read failed", r);
      have_full[t] = br.lo == 0 && br.hi == bs;
    }
    const std::size_t lo = have_full[t] ? 0 : br.lo;
    const std::size_t hi = have_full[t] ? bs : br.hi;
    std::memcpy(news.data() + t * bs + lo, olds.data() + t * bs + lo,
                hi - lo);
  }
  for (const SubWrite& w : ops) {
    const auto idx = static_cast<int>(w.logical % per);
    const auto t = static_cast<std::size_t>(
        slot_of[static_cast<std::size_t>(idx)]);
    std::memcpy(news.data() + t * bs + static_cast<std::size_t>(w.offset),
                w.data.data(), w.data.size());
  }
  for (std::size_t t = 0; t < T; ++t) {
    skip[t] = std::memcmp(olds.data() + t * bs + range[t].lo,
                          news.data() + t * bs + range[t].lo,
                          range[t].hi - range[t].lo) == 0
                  ? 1
                  : 0;  // idempotent sub-write: no deltas, no disk I/O
  }

  // Coalesce contributors per surviving parity: each affected parity
  // block is read over the union of its contributors' ranges, delta-
  // updated in one pass per contributor (parity ^= new ^ old), and
  // written back — at most one ranged RMW per parity per batch.
  std::vector<int> parities;  // flat parity indices
  std::vector<int> pslot(kind_.size(), -1);
  std::vector<ByteRange> prange;
  std::vector<std::vector<std::size_t>> contributors;
  for (std::size_t t = 0; t < T; ++t) {
    if (skip[t]) continue;
    for (Cell pc : parities_of(touched[t])) {
      if (cell_failed(pc)) continue;  // regenerated at rebuild time
      const auto pf = static_cast<std::size_t>(flat_of(pc));
      int s = pslot[pf];
      if (s < 0) {
        s = static_cast<int>(parities.size());
        pslot[pf] = s;
        parities.push_back(static_cast<int>(pf));
        prange.push_back({bs, 0});
        contributors.emplace_back();
      }
      auto& pr = prange[static_cast<std::size_t>(s)];
      pr.lo = std::min(pr.lo, range[t].lo);
      pr.hi = std::max(pr.hi, range[t].hi);
      contributors[static_cast<std::size_t>(s)].push_back(t);
    }
  }
  if (obs_on) {
    subblock_writes_.inc(ops.size());
    delta_parities_.inc(parities.size());
    if (promoted) subblock_promotions_.inc(promoted);
  }

  PooledBuffer pbuf(std::max<std::size_t>(1, parities.size()) * bs);
  for (std::size_t p = 0; p < parities.size(); ++p) {
    const Cell pc = cell_of_index(parities[p], cols);
    const int d = disk_of(pc.col);
    const std::int64_t b = block_of(stripe, pc.row);
    const ByteRange pr = prange[p];
    std::uint8_t* par = pbuf.data() + p * bs;
    const IoResult r = read_range_retry(
        array_, d, b, pr.lo, {par + pr.lo, pr.hi - pr.lo}, RetryPolicy{},
        nullptr);
    if (!r.ok()) throw_io("parity range read failed", r);
    for (const std::size_t t : contributors[p]) {
      const ByteRange br = range[t];
      xor_delta_into(par + br.lo, olds.data() + t * bs + br.lo,
                     news.data() + t * bs + br.lo, br.hi - br.lo);
    }
    // Write failures mirror write_cells: a torn range is repaired by
    // the retry's rewrite; a disk that died mid-batch is left to the
    // failure machinery (fail_disk/rebuild), not reported here.
    write_range_retry(array_, d, b, pr.lo, {par + pr.lo, pr.hi - pr.lo},
                      RetryPolicy{}, nullptr);
  }

  for (std::size_t t = 0; t < T; ++t) {
    if (skip[t]) continue;
    const Cell c = data_cells_[static_cast<std::size_t>(touched[t])];
    const ByteRange br = range[t];
    if (!cell_failed(c)) {
      write_range_retry(array_, disk_of(c.col), block_of(stripe, c.row),
                        br.lo,
                        {news.data() + t * bs + br.lo, br.hi - br.lo},
                        RetryPolicy{}, nullptr);
    }
  }
  // Write-through cache merge: only a cell whose full new value is known
  // may enter the cache — a partial image must never be inserted. An
  // already-cached block was the old-value source (full), so it is
  // updated; an uncached partial write stays uncached.
  for (std::size_t t = 0; t < T; ++t) {
    if (!have_full[t]) continue;
    cache_fill(stripe, data_cells_[static_cast<std::size_t>(touched[t])],
               news.block(t, bs));
  }
}

void ArrayController::set_cache_stripes(std::size_t n) {
  cache_stripes_ = n;
  if (n == 0) {
    cache_.reset();
    return;
  }
  cache_ = std::make_unique<StripeCache>(
      n, code_->cell_count(), array_.block_bytes(),
      static_cast<std::size_t>(cache_shards_));
}

void ArrayController::set_cache_shards(int n) {
  if (n < 1 || n > 4096) {
    throw std::invalid_argument("set_cache_shards: n must be in [1, 4096]");
  }
  cache_shards_ = n;
  if (cache_) set_cache_stripes(cache_stripes_);  // rebuild (empty)
}

void ArrayController::invalidate_cache() {
  if (cache_) cache_->invalidate_all();
}

StripeCache::Stats ArrayController::cache_stats() const {
  return cache_ ? cache_->stats() : StripeCache::Stats{};
}

ArrayController::PlannerCounters ArrayController::planner_counters() const {
  return {ranged_reads_.value(),        ranged_writes_.value(),
          full_stripe_writes_.value(),  partial_stripe_writes_.value(),
          direct_parities_.value(),     rmw_parities_.value(),
          subblock_writes_.value(),     delta_parities_.value(),
          subblock_promotions_.value()};
}

void ArrayController::attach_metrics(obs::Registry& registry,
                                     const std::string& prefix,
                                     const std::string& labels) {
  // `lb` goes on every counter/gauge so many controllers can share one
  // registry (e.g. volume="3"); histograms are emitted only unlabeled
  // (label-free names are a histogram contract, see metrics.hpp).
  const std::string lb = labels.empty() ? "" : "{" + labels + "}";
  metrics_handle_ =
      registry.add_collector([this, prefix, lb](obs::Collection& c) {
    c.counter(prefix + "_ranged_reads" + lb, ranged_reads_.value());
    c.counter(prefix + "_ranged_writes" + lb, ranged_writes_.value());
    c.counter(prefix + "_full_stripe_writes" + lb,
              full_stripe_writes_.value());
    c.counter(prefix + "_partial_stripe_writes" + lb,
              partial_stripe_writes_.value());
    c.counter(prefix + "_direct_parities" + lb, direct_parities_.value());
    c.counter(prefix + "_rmw_parities" + lb, rmw_parities_.value());
    c.counter(prefix + "_subblock_writes" + lb, subblock_writes_.value());
    c.counter(prefix + "_delta_parities" + lb, delta_parities_.value());
    c.counter(prefix + "_subblock_promotions" + lb,
              subblock_promotions_.value());
    if (lb.empty()) {
      c.histogram(prefix + "_read_latency_us", read_latency_us_.snapshot());
      c.histogram(prefix + "_write_latency_us", write_latency_us_.snapshot());
    }
    const StripeCache::Stats cs = cache_stats();
    c.counter(prefix + "_cache_hits" + lb, cs.hits);
    c.counter(prefix + "_cache_misses" + lb, cs.misses);
    c.counter(prefix + "_cache_insertions" + lb, cs.insertions);
    c.counter(prefix + "_cache_evictions" + lb, cs.evictions);
    c.gauge(prefix + "_cache_stripes" + lb,
            static_cast<std::int64_t>(cache_stripes_));
    const std::uint64_t total = cs.hits + cs.misses;
    c.gauge(prefix + "_cache_hit_ratio_pct" + lb,
            total == 0 ? 0 : static_cast<std::int64_t>(cs.hits * 100 / total));
  });
}

void ArrayController::emit_event(obs::EventLevel level, std::string message,
                                 int disk, const char* rate_key) const {
  obs::EventLog* log = events_;
  if (!log) return;
  obs::Event ev;
  ev.level = level;
  ev.category = "controller";
  ev.message = std::move(message);
  ev.disk = disk;
  if (rate_key) {
    log->emit(std::move(ev), rate_key);
  } else {
    log->emit(std::move(ev));
  }
}

void ArrayController::invalidate_recovery_state() {
  recipes_valid_ = false;
  invalidate_cache();
}

void ArrayController::fail_disk(int disk) {
  if (disk < 0 || disk >= array_.disks()) {
    throw std::out_of_range("fail_disk: no such disk");
  }
  if (failed_.count(disk)) return;
  if (failed_count() >= 2) {
    throw std::runtime_error("fail_disk: fault tolerance exceeded");
  }
  failed_.insert(disk);
  invalidate_recovery_state();
  emit_event(obs::EventLevel::kWarn,
             "disk " + std::to_string(disk) +
                 " failed; recovery recipes and cache invalidated (" +
                 std::to_string(failed_.size()) + " concurrent)",
             disk);
}

bool ArrayController::failed(int disk) const {
  return failed_.count(disk) != 0;
}

std::int64_t ArrayController::rebuild_disk(int disk) {
  if (!failed_.count(disk)) {
    throw std::invalid_argument("rebuild_disk: disk is not failed");
  }
  const int col = col_of(disk);
  const int rows = code_->rows();
  const std::size_t bs = array_.block_bytes();
  std::int64_t rebuilt = 0;
  PooledBuffer colbuf(static_cast<std::size_t>(rows) * bs);
  std::vector<CellWrite> wr;
  for (std::int64_t s = 0; s < stripes_; ++s) {
    std::lock_guard sl(stripe_lock(s));
    wr.clear();
    for (int r = 0; r < rows; ++r) {
      const Cell c{r, col};
      if (kind_[static_cast<std::size_t>(flat_of(c))] == CellKind::kVirtual) {
        continue;
      }
      const auto dst = colbuf.block(static_cast<std::size_t>(r), bs);
      reconstruct_cell(s, c, dst);
      wr.push_back({c, dst.data()});
      ++rebuilt;
    }
    write_cells(s, wr);
  }
  failed_.erase(disk);
  // The rebuild both changes the recovery recipes for any later failure
  // and rewrites the array underneath previously cached logical values
  // of this column — drop both.
  invalidate_recovery_state();
  emit_event(obs::EventLevel::kInfo,
             "disk " + std::to_string(disk) + " rebuilt: " +
                 std::to_string(rebuilt) + " blocks reconstructed",
             disk);
  return rebuilt;
}

Buffer ArrayController::read_stripe(std::int64_t stripe) const {
  Buffer buf(static_cast<std::size_t>(code_->cell_count()) *
             array_.block_bytes());
  read_stripe_into(stripe, buf.span());
  return buf;
}

void ArrayController::read_stripe_into(std::int64_t stripe,
                                       std::span<std::uint8_t> out) const {
  const std::size_t bs = array_.block_bytes();
  const int rows = code_->rows();
  const int cols = code_->cols();
  if (out.size() != static_cast<std::size_t>(code_->cell_count()) * bs) {
    throw std::invalid_argument("read_stripe_into: bad buffer size");
  }
  StripeView v(out, rows, cols, bs);
  const DiskArray& array = array_;
  for (int c = 0; c < cols; ++c) {
    const std::span<const std::uint8_t> col_src =
        c < virtual_cols_
            ? std::span<const std::uint8_t>{}
            : array.raw_blocks(disk_of(c),
                               stripe * static_cast<std::int64_t>(rows),
                               rows);
    for (int r = 0; r < rows; ++r) {
      const auto dst = v.block({r, c});
      if (kind_[static_cast<std::size_t>(r) * cols + c] ==
          CellKind::kVirtual) {
        std::memset(dst.data(), 0, bs);
      } else {
        std::memcpy(dst.data(),
                    col_src.data() + static_cast<std::size_t>(r) * bs, bs);
      }
    }
  }
}

std::vector<std::int64_t> ArrayController::scrub() {
  std::vector<std::int64_t> bad;
  const std::size_t bs = array_.block_bytes();
  PooledBuffer buf(static_cast<std::size_t>(code_->cell_count()) * bs);
  for (std::int64_t s = 0; s < stripes_; ++s) {
    std::lock_guard sl(stripe_lock(s));
    read_stripe_into(s, buf.span());
    StripeView v(buf.span(), code_->rows(), code_->cols(), bs);
    if (!code_->verify(v)) bad.push_back(s);
  }
  return bad;
}

void ArrayController::with_stripe_lock(std::int64_t stripe,
                                       const std::function<void()>& fn) const {
  std::lock_guard sl(stripe_lock(stripe));
  fn();
}

}  // namespace c56::mig
