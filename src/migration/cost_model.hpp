#pragma once
// Closed-form conversion cost model — Section V-A of the paper.
//
// A conversion is described by (target code, approach, source disks m,
// load balancing). Costs are derived from the actual chain layouts of
// the target code, normalized per existing data block B and per B*Te
// for time, exactly as the paper reports them:
//
//   * invalid parity ratio       (old parities NULLed)
//   * old parity migration ratio (moved or modified old parities)
//   * new parity generation ratio
//   * extra space ratio          (pre-reserved fraction of each disk)
//   * computation cost           (XORs / B)
//   * write / read / total I/Os  (/ B)
//   * conversion time            (/ B*Te); NLB = sum over sequential
//     phases of the busiest disk's I/O count, LB = sum of total/n
//
// Hole accounting: approaches that invalidate or migrate the old
// RAID-5 parities leave freed (NULL, zero) slots inside the data
// region; reads and XORs against those slots are skipped, so data-cell
// inputs on original disks are weighted by (m-1)/m and inputs landing
// on freshly added disks by 0. Codes that reuse the RAID-5 parity
// (Code 5-6, HDP) have no holes.

#include <cstddef>
#include <string>
#include <vector>

#include "codes/registry.hpp"
#include "sim/disk_model.hpp"

namespace c56::mig {

enum class Approach {
  kViaRaid0,  // RAID-5 -> RAID-0 -> RAID-6
  kViaRaid4,  // RAID-5 -> RAID-4 -> RAID-6
  kDirect,    // RAID-5 -> RAID-6
};

const char* to_string(Approach a) noexcept;

struct ConversionSpec {
  CodeId code = CodeId::kCode56;
  Approach approach = Approach::kDirect;
  int p = 5;   // prime parameter of the target code
  int m = 4;   // disks in the source RAID-5
  bool load_balanced = false;

  /// Disks after conversion (target stripe columns; for Code 5-6 with
  /// virtual disks this is the count of physical columns).
  int n() const;
  /// Virtual disks (Code 5-6 only; 0 otherwise).
  int virtual_disks() const;
  /// Paper-style label, e.g. "RAID-5->RAID-6(Code 5-6,4,5)".
  std::string label() const;

  /// Default spec for a code: the canonical m for (code, approach, p).
  static ConversionSpec canonical(CodeId code, Approach a, int p,
                                  bool lb = false);
  /// Direct Code 5-6 conversion of an m-disk RAID-5 (virtual disks as
  /// needed).
  static ConversionSpec direct_code56(int m, bool lb = false);

  /// True iff (code, approach) is a meaningful combination.
  bool valid() const;
};

struct PhaseCost {
  std::string name;
  std::vector<double> disk_reads;   // per B, indexed by target column
  std::vector<double> disk_writes;  // per B
  double xors = 0.0;                // per B

  double reads() const;
  double writes() const;
  double total_io() const { return reads() + writes(); }
  double time_nlb() const;             // busiest disk
  double time_lb(int disks) const;     // perfectly balanced
};

struct ConversionCosts {
  ConversionSpec spec;
  double invalid_parity_ratio = 0.0;
  double parity_migration_ratio = 0.0;  // migrated or modified
  double new_parity_generation_ratio = 0.0;
  double extra_space_ratio = 0.0;
  double xor_per_block = 0.0;
  double read_io = 0.0;
  double write_io = 0.0;
  double total_io = 0.0;
  double time = 0.0;  // honors spec.load_balanced
  std::vector<PhaseCost> phases;
};

/// Analyze a conversion. Throws std::invalid_argument for invalid specs.
ConversionCosts analyze(const ConversionSpec& spec);

/// Existing data blocks per target stripe for this spec (the
/// normalization unit; exposed for tests and the trace generator).
double data_blocks_per_stripe(const ConversionSpec& spec);

/// Table III "single write performance", extended to sub-block writes
/// (the delta plane of ArrayController::write_range).
struct SingleWriteCost {
  double ops = 0.0;        // disk accesses per logical write
  double bytes = 0.0;      // payload bytes moved per logical write
  double device_ms = 0.0;  // positional price: each access repositions,
                           // bytes stream at the sustained rate
};

/// Average cost of updating `len` bytes of one data block, over every
/// data cell of `code`. Each affected parity (update_complexity, which
/// follows propagation through parity-fed chains like RDP's) costs a
/// read-modify-write; the data cell costs a read plus a write. With
/// `delta` every access moves only the `len`-byte range; without it
/// each access is a whole-`block_bytes` RMW. The op count is identical
/// either way — the delta plane wins purely on bytes, hence on device
/// time. Throws std::invalid_argument for len == 0 or len > block_bytes.
SingleWriteCost single_write_cost(const ErasureCode& code,
                                  std::size_t block_bytes, std::size_t len,
                                  bool delta = true,
                                  const sim::DiskParams& disk = {});

}  // namespace c56::mig
