#include "migration/monitor.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <optional>
#include <sstream>

#include "obs/reqtrace.hpp"
#include "obs/trace.hpp"
#include "util/env.hpp"

namespace c56::mig {

namespace {

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

MigrationMonitor::MigrationMonitor(OnlineMigrator& migrator,
                                   obs::Registry& reg, obs::EventLog& events,
                                   MonitorConfig cfg)
    : mig_(migrator),
      reg_(reg),
      events_(events),
      cfg_(std::move(cfg)),
      g_rows_done_(reg.gauge("migration_rows_done")),
      g_rows_total_(reg.gauge("migration_rows_total")),
      g_rate_x1000_(reg.gauge("migration_rate_rows_per_sec_x1000")),
      g_eta_ms_(reg.gauge("migration_eta_ms")),
      g_imbalance_x1000_(reg.gauge("migration_worker_imbalance_x1000")),
      g_stalled_(reg.gauge("migration_stalled")),
      g_state_(reg.gauge("migration_state")),
      c_stall_events_(reg.counter("migration_stall_events")),
      rows_per_group_(migrator.code().p() - 1),
      rows_total_v_(migrator.groups() * (migrator.code().p() - 1)) {
  if (const auto v = util::env_int("C56_STALL_MS", 10, 600000)) {
    cfg_.stall_timeout_ms = *v;
  }
  g_rows_total_.set(rows_total_v_);
  g_eta_ms_.set(-1);
  g_state_.set(static_cast<std::int64_t>(mig_.state()));
}

void MigrationMonitor::emit(obs::EventLevel level, std::string message) {
  obs::Event ev;
  ev.level = level;
  ev.category = "migration";
  ev.message = std::move(message);
  ev.migration_id = cfg_.migration_id;
  events_.emit(std::move(ev));
}

void MigrationMonitor::close_phase_locked(std::uint64_t t_us) {
  if (!phases_.empty() && phases_.back().end_us == 0) {
    phases_.back().end_us = t_us;
  }
}

void MigrationMonitor::begin_phase(const std::string& name) {
  const std::uint64_t t = now_us();
  std::lock_guard lk(mu_);
  close_phase_locked(t);
  convert_phase_open_ = false;
  phases_.push_back({name, t, 0});
}

void MigrationMonitor::end_phase() {
  const std::uint64_t t = now_us();
  std::lock_guard lk(mu_);
  close_phase_locked(t);
  convert_phase_open_ = false;
}

std::vector<PhaseRecord> MigrationMonitor::phases() const {
  std::lock_guard lk(mu_);
  return phases_;
}

void MigrationMonitor::poll() { poll_at(now_us()); }

void MigrationMonitor::poll_at(std::uint64_t t_us) {
  const MigrationState state = mig_.state();
  const std::int64_t rows = mig_.groups_done() * rows_per_group_;
  bool want_dump = false;
  {
    std::lock_guard lk(mu_);

    if (state != last_state_) {
      emit(obs::EventLevel::kInfo, std::string("state ") +
                                       to_string(last_state_) + " -> " +
                                       to_string(state));
      if (state == MigrationState::kConverting) {
        close_phase_locked(t_us);
        phases_.push_back({"convert", t_us, 0});
        convert_phase_open_ = true;
      } else if (convert_phase_open_) {
        close_phase_locked(t_us);
        convert_phase_open_ = false;
      }
      if (state == MigrationState::kAborted) {
        emit(obs::EventLevel::kError,
             "migration aborted: " + mig_.abort_reason());
        if (!cfg_.postmortem_path.empty() && !postmortem_written_) {
          postmortem_written_ = true;
          want_dump = true;
        }
      }
      last_state_ = state;
    }

    if (!first_poll_done_) {
      first_poll_done_ = true;
      last_t_us_ = t_us;
      last_rows_ = rows;
      last_progress_t_us_ = t_us;
    } else if (t_us > last_t_us_) {
      if (rows > last_rows_) {
        const double inst =
            static_cast<double>(rows - last_rows_) /
            (static_cast<double>(t_us - last_t_us_) / 1e6);
        ewma_rate_ = ewma_rate_ < 0
                         ? inst
                         : cfg_.ewma_alpha * inst +
                               (1.0 - cfg_.ewma_alpha) * ewma_rate_;
        last_progress_t_us_ = t_us;
        polls_since_progress_ = 0;
        if (stalled_) {
          stalled_ = false;
          g_stalled_.set(0);
          emit(obs::EventLevel::kInfo,
               "conversion resumed: watermark moving again at row " +
                   std::to_string(rows));
        }
      } else if (state == MigrationState::kConverting) {
        ++polls_since_progress_;
        const std::uint64_t frozen_us = t_us - last_progress_t_us_;
        if (!stalled_ && polls_since_progress_ >= cfg_.stall_min_polls &&
            frozen_us >=
                static_cast<std::uint64_t>(cfg_.stall_timeout_ms) * 1000) {
          stalled_ = true;
          g_stalled_.set(1);
          c_stall_events_.inc();
          emit(obs::EventLevel::kWarn,
               "conversion stalled: watermark frozen at row " +
                   std::to_string(rows) + "/" +
                   std::to_string(rows_total_v_) + " for " +
                   std::to_string(frozen_us / 1000) + " ms");
        }
      }
      last_t_us_ = t_us;
      last_rows_ = rows;
    }

    g_rows_done_.set(rows);
    g_state_.set(static_cast<std::int64_t>(state));
    g_rate_x1000_.set(
        ewma_rate_ < 0 ? 0 : static_cast<std::int64_t>(ewma_rate_ * 1000.0));
    if (state == MigrationState::kDone || rows >= rows_total_v_) {
      g_eta_ms_.set(0);
    } else if (ewma_rate_ > 0) {
      g_eta_ms_.set(static_cast<std::int64_t>(
          static_cast<double>(rows_total_v_ - rows) / ewma_rate_ * 1000.0));
    } else {
      g_eta_ms_.set(-1);
    }

    if (obs::metrics_enabled()) {
      const int n = mig_.workers();
      std::uint64_t sum = 0, mx = 0;
      for (int w = 0; w < n; ++w) {
        const std::uint64_t r = mig_.worker_rows(w);
        sum += r;
        mx = std::max(mx, r);
      }
      if (sum > 0 && n > 0) {
        const double mean = static_cast<double>(sum) / n;
        g_imbalance_x1000_.set(
            static_cast<std::int64_t>(static_cast<double>(mx) / mean *
                                      1000.0));
      }
    }
  }
  if (want_dump) {
    if (write_postmortem(cfg_.postmortem_path)) {
      emit(obs::EventLevel::kInfo,
           "post-mortem bundle written to " + cfg_.postmortem_path);
    } else {
      emit(obs::EventLevel::kWarn,
           "failed to write post-mortem bundle to " + cfg_.postmortem_path);
    }
  }
}

bool MigrationMonitor::stalled() const {
  std::lock_guard lk(mu_);
  return stalled_;
}

double MigrationMonitor::rate_rows_per_sec() const {
  std::lock_guard lk(mu_);
  return ewma_rate_ < 0 ? 0.0 : ewma_rate_;
}

double MigrationMonitor::eta_seconds() const {
  const std::int64_t rows = mig_.groups_done() * rows_per_group_;
  const MigrationState state = mig_.state();
  std::lock_guard lk(mu_);
  if (state == MigrationState::kDone || rows >= rows_total_v_) return 0.0;
  if (ewma_rate_ <= 0) return -1.0;
  return static_cast<double>(rows_total_v_ - rows) / ewma_rate_;
}

std::int64_t MigrationMonitor::rows_done() const {
  return mig_.groups_done() * rows_per_group_;
}

std::int64_t MigrationMonitor::rows_total() const { return rows_total_v_; }

std::string MigrationMonitor::status_line() const {
  const MigrationState state = mig_.state();
  const std::int64_t rows = mig_.groups_done() * rows_per_group_;
  std::lock_guard lk(mu_);
  std::ostringstream out;
  out << "[" << cfg_.migration_id << "] state=" << to_string(state)
      << " rows=" << rows << "/" << rows_total_v_;
  if (ewma_rate_ > 0) {
    out << " rate=" << fmt_double(ewma_rate_) << " rows/s";
    if (rows < rows_total_v_ && state != MigrationState::kDone) {
      out << " eta=" << fmt_double(static_cast<double>(rows_total_v_ - rows) /
                                   ewma_rate_)
          << "s";
    }
  }
  if (stalled_) out << " STALLED";
  if (!phases_.empty() && phases_.back().end_us == 0) {
    out << " phase=" << phases_.back().name;
  }
  return out.str();
}

std::string MigrationMonitor::postmortem_json() const {
  const MigrationState state = mig_.state();
  const std::int64_t groups_done = mig_.groups_done();
  const std::string reason = mig_.abort_reason();
  const std::vector<obs::Event> events = events_.tail(cfg_.postmortem_events);
  const std::string trace = obs::TraceRecorder::global().to_json();
  const std::string registry = reg_.to_json();

  std::ostringstream out;
  out << "{\n  \"bundle\": \"c56-migration-postmortem\",\n";
  out << "  \"migration_id\": \""
      << obs::detail::json_escape(cfg_.migration_id) << "\",\n";
  out << "  \"state\": \"" << to_string(state) << "\",\n";
  out << "  \"abort_reason\": \"" << obs::detail::json_escape(reason)
      << "\",\n";
  out << "  \"groups_done\": " << groups_done
      << ",\n  \"groups\": " << mig_.groups() << ",\n";
  out << "  \"rows_done\": " << groups_done * rows_per_group_
      << ",\n  \"rows_total\": " << rows_total_v_ << ",\n";
  {
    std::lock_guard lk(mu_);
    out << "  \"stalled\": " << (stalled_ ? "true" : "false") << ",\n";
    out << "  \"rate_rows_per_sec\": "
        << fmt_double(ewma_rate_ < 0 ? 0.0 : ewma_rate_) << ",\n";
    out << "  \"phases\": [";
    for (std::size_t i = 0; i < phases_.size(); ++i) {
      const PhaseRecord& ph = phases_[i];
      const std::uint64_t end = ph.end_us;
      out << (i ? ", " : "") << "{\"name\": \""
          << obs::detail::json_escape(ph.name)
          << "\", \"start_us\": " << ph.start_us << ", \"end_us\": " << end;
      if (end != 0) out << ", \"dur_us\": " << end - ph.start_us;
      out << "}";
    }
    out << "],\n";
  }
  out << "  \"events\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    out << (i ? ",\n    " : "\n    ") << obs::to_json(events[i]);
  }
  out << "\n  ],\n";
  // Tail-request exemplars ride along: when foreground latency blew up
  // during the window the bundle covers, the slowest-N ring says which
  // stage ate the time.
  out << "  \"slow_requests\": " << obs::SlowRequestRing::global().to_json()
      << ",\n";
  out << "  \"trace\": " << trace << ",\n";
  out << "  \"registry\": " << registry << "}\n";
  return out.str();
}

bool MigrationMonitor::write_postmortem(const std::string& path) const {
  const std::string doc = postmortem_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

// ---------------------------------------------------------------------
// summarize_postmortem
// ---------------------------------------------------------------------

namespace {

// Minimal extractors for the bundle format postmortem_json() produces.
// They scan for the first `"key": ` occurrence, which is unambiguous
// in our own documents (keys are emitted once, before any free text
// that could echo them).

std::optional<std::string> extract_string(const std::string& doc,
                                          const std::string& key,
                                          std::size_t from = 0) {
  const std::string pat = "\"" + key + "\": \"";
  const auto pos = doc.find(pat, from);
  if (pos == std::string::npos) return std::nullopt;
  std::string out;
  for (std::size_t i = pos + pat.size(); i < doc.size(); ++i) {
    const char c = doc[i];
    if (c == '\\' && i + 1 < doc.size()) {
      const char n = doc[++i];
      out += n == 'n' ? '\n' : n == 't' ? '\t' : n;
    } else if (c == '"') {
      return out;
    } else {
      out += c;
    }
  }
  return std::nullopt;
}

std::optional<long long> extract_int(const std::string& doc,
                                     const std::string& key,
                                     std::size_t from = 0) {
  const std::string pat = "\"" + key + "\": ";
  const auto pos = doc.find(pat, from);
  if (pos == std::string::npos) return std::nullopt;
  return std::strtoll(doc.c_str() + pos + pat.size(), nullptr, 10);
}

std::string fmt_ms(std::uint64_t us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f ms", static_cast<double>(us) / 1000.0);
  return buf;
}

}  // namespace

std::string summarize_postmortem(const std::string& bundle_json) {
  const std::string& doc = bundle_json;
  if (doc.find("\"bundle\": \"c56-migration-postmortem\"") ==
      std::string::npos) {
    return "error: not a c56 migration post-mortem bundle";
  }
  std::ostringstream out;
  const std::string id = extract_string(doc, "migration_id").value_or("?");
  const std::string state = extract_string(doc, "state").value_or("?");
  out << "post-mortem: migration '" << id << "' — state " << state << "\n";
  if (const auto reason = extract_string(doc, "abort_reason");
      reason && !reason->empty()) {
    out << "  abort reason: " << *reason << "\n";
  }
  const long long gd = extract_int(doc, "groups_done").value_or(0);
  const long long g = extract_int(doc, "groups").value_or(0);
  const long long rd = extract_int(doc, "rows_done").value_or(0);
  const long long rt = extract_int(doc, "rows_total").value_or(0);
  out << "  watermark: " << gd << "/" << g << " groups (" << rd << "/" << rt
      << " rows)\n";
  if (doc.find("\"stalled\": true") != std::string::npos) {
    out << "  stalled: yes\n";
  }

  // Phase timeline: walk the objects inside the "phases" array.
  const auto phases_pos = doc.find("\"phases\": [");
  const auto events_pos = doc.find("\"events\": [");
  if (phases_pos != std::string::npos && events_pos != std::string::npos) {
    out << "  phases:\n";
    std::size_t cursor = phases_pos;
    bool any = false;
    for (;;) {
      const auto name = extract_string(doc, "name", cursor);
      const auto name_at = doc.find("\"name\": \"", cursor);
      if (!name || name_at == std::string::npos || name_at >= events_pos) {
        break;
      }
      const auto start = extract_int(doc, "start_us", name_at).value_or(0);
      const auto end = extract_int(doc, "end_us", name_at).value_or(0);
      out << "    " << *name << "  ";
      if (end > 0) {
        out << fmt_ms(static_cast<std::uint64_t>(end - start));
      } else {
        out << "(open)";
      }
      out << "\n";
      any = true;
      cursor = name_at + 1;
    }
    if (!any) out << "    (none recorded)\n";
  }

  // Disk fault counters from the embedded registry snapshot.
  const auto registry_pos = doc.find("\"registry\":");
  if (registry_pos != std::string::npos) {
    const auto se = extract_int(doc, "disk_array_sector_errors", registry_pos);
    const auto tw = extract_int(doc, "disk_array_torn_writes", registry_pos);
    const auto df = extract_int(doc, "disk_array_disk_failures", registry_pos);
    const auto fd = extract_int(doc, "disk_array_failed_disks", registry_pos);
    const auto sc =
        extract_int(doc, "disk_array_silent_corruptions", registry_pos);
    if (se || tw || df || fd || sc) {
      out << "  disk faults: sector_errors=" << se.value_or(0)
          << " torn_writes=" << tw.value_or(0)
          << " disk_failures=" << df.value_or(0)
          << " failed_disks=" << fd.value_or(0)
          << " silent_corruptions=" << sc.value_or(0) << "\n";
    } else {
      out << "  disk faults: (not recorded — no disk_array metrics in "
             "bundle)\n";
    }
    // Scrub counters, present when a Scrubber exported through the
    // same registry.
    if (const auto scanned =
            extract_int(doc, "scrub_stripes_scanned", registry_pos)) {
      out << "  scrub: scanned=" << *scanned << " dirty="
          << extract_int(doc, "scrub_stripes_dirty", registry_pos).value_or(0)
          << " located="
          << extract_int(doc, "scrub_cells_located", registry_pos).value_or(0)
          << " repaired="
          << extract_int(doc, "scrub_cells_repaired", registry_pos).value_or(0)
          << " ambiguous="
          << extract_int(doc, "scrub_ambiguous", registry_pos).value_or(0)
          << " deferred="
          << extract_int(doc, "scrub_deferred", registry_pos).value_or(0)
          << " repair_failures="
          << extract_int(doc, "scrub_repair_failures", registry_pos)
                 .value_or(0)
          << "\n";
    }
  }

  // Tail of warn/error events.
  if (events_pos != std::string::npos) {
    const auto events_end =
        doc.find("\"trace\":", events_pos);  // next top-level key
    std::vector<std::string> bad;
    std::size_t cursor = events_pos;
    for (;;) {
      const auto at = doc.find("{\"t_us\": ", cursor);
      if (at == std::string::npos ||
          (events_end != std::string::npos && at >= events_end)) {
        break;
      }
      const auto level = extract_string(doc, "level", at).value_or("");
      if (level == "warn" || level == "error") {
        const auto cat = extract_string(doc, "category", at).value_or("?");
        const auto msg = extract_string(doc, "message", at).value_or("?");
        bad.push_back("[" + level + "] " + cat + ": " + msg);
      }
      cursor = at + 1;
    }
    if (!bad.empty()) {
      const std::size_t show = std::min<std::size_t>(bad.size(), 5);
      out << "  last " << show << " of " << bad.size()
          << " warn/error events:\n";
      for (std::size_t i = bad.size() - show; i < bad.size(); ++i) {
        out << "    " << bad[i] << "\n";
      }
    }
  }
  return out.str();
}

}  // namespace c56::mig
