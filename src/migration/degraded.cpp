#include "migration/degraded.hpp"

#include <chrono>
#include <thread>
#include <vector>

#include "xorblk/buffer.hpp"
#include "xorblk/pool.hpp"
#include "xorblk/xor.hpp"

namespace c56::mig {
namespace {

void backoff(const RetryPolicy& policy, int attempt, IoCounters* counters) {
  if (policy.backoff_us == 0) return;
  const std::uint64_t us = static_cast<std::uint64_t>(policy.backoff_us)
                           << (attempt - 1);
  if (counters) counters->backoff_us += us;
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

bool transient(IoStatus s) {
  return s == IoStatus::kSectorError || s == IoStatus::kTornWrite;
}

}  // namespace

IoResult read_block_retry(DiskArray& a, int disk, std::int64_t block,
                          std::span<std::uint8_t> out,
                          const RetryPolicy& policy, IoCounters* counters) {
  IoResult r;
  for (int attempt = 1;; ++attempt) {
    r = a.read_block(disk, block, out);
    if (counters) ++counters->reads;
    if (r.ok() || !transient(r.status) || attempt >= policy.max_attempts) {
      return r;
    }
    if (counters) ++counters->retries;
    backoff(policy, attempt, counters);
  }
}

IoResult write_block_retry(DiskArray& a, int disk, std::int64_t block,
                           std::span<const std::uint8_t> in,
                           const RetryPolicy& policy, IoCounters* counters) {
  IoResult r;
  for (int attempt = 1;; ++attempt) {
    r = a.write_block(disk, block, in);
    if (counters) ++counters->writes;
    if (r.ok() || !transient(r.status) || attempt >= policy.max_attempts) {
      return r;
    }
    if (counters) ++counters->retries;
    backoff(policy, attempt, counters);
  }
}

IoResult read_range_retry(DiskArray& a, int disk, std::int64_t block,
                          std::size_t offset, std::span<std::uint8_t> out,
                          const RetryPolicy& policy, IoCounters* counters) {
  IoResult r;
  for (int attempt = 1;; ++attempt) {
    r = a.read_range(disk, block, offset, out);
    if (counters) ++counters->reads;
    if (r.ok() || !transient(r.status) || attempt >= policy.max_attempts) {
      return r;
    }
    if (counters) ++counters->retries;
    backoff(policy, attempt, counters);
  }
}

IoResult write_range_retry(DiskArray& a, int disk, std::int64_t block,
                           std::size_t offset,
                           std::span<const std::uint8_t> in,
                           const RetryPolicy& policy, IoCounters* counters) {
  IoResult r;
  for (int attempt = 1;; ++attempt) {
    r = a.write_range(disk, block, offset, in);
    if (counters) ++counters->writes;
    if (r.ok() || !transient(r.status) || attempt >= policy.max_attempts) {
      return r;
    }
    if (counters) ++counters->retries;
    backoff(policy, attempt, counters);
  }
}

IoResult xor_chain_read(DiskArray& a, std::span<const BlockAddr> sources,
                        std::span<std::uint8_t> out,
                        const RetryPolicy& policy, IoCounters* counters) {
  // Stage every chain member into one pooled arena, then fold them in a
  // single accumulate pass — the parity is produced without re-reading
  // out, and steady-state reconstruction allocates nothing.
  const std::size_t bs = a.block_bytes();
  PooledBuffer arena(bs * sources.size());
  constexpr std::size_t kInline = 64;
  const std::uint8_t* inline_srcs[kInline];
  std::vector<const std::uint8_t*> heap_srcs;
  const std::uint8_t** srcs = inline_srcs;
  if (sources.size() > kInline) {
    heap_srcs.resize(sources.size());
    srcs = heap_srcs.data();
  }
  for (std::size_t i = 0; i < sources.size(); ++i) {
    auto slot = arena.block(i, bs);
    const IoResult r = read_block_retry(a, sources[i].disk, sources[i].block,
                                        slot, policy, counters);
    if (!r.ok()) return r;
    srcs[i] = slot.data();
  }
  xor_accumulate(out.data(), reinterpret_cast<const void* const*>(srcs),
                 sources.size(), bs);
  return IoResult::success();
}

}  // namespace c56::mig
