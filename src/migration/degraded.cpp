#include "migration/degraded.hpp"

#include <chrono>
#include <thread>

#include "xorblk/buffer.hpp"
#include "xorblk/xor.hpp"

namespace c56::mig {
namespace {

void backoff(const RetryPolicy& policy, int attempt) {
  if (policy.backoff_us == 0) return;
  const auto us = std::chrono::microseconds(
      static_cast<std::uint64_t>(policy.backoff_us) << (attempt - 1));
  std::this_thread::sleep_for(us);
}

bool transient(IoStatus s) {
  return s == IoStatus::kSectorError || s == IoStatus::kTornWrite;
}

}  // namespace

IoResult read_block_retry(DiskArray& a, int disk, std::int64_t block,
                          std::span<std::uint8_t> out,
                          const RetryPolicy& policy, IoCounters* counters) {
  IoResult r;
  for (int attempt = 1;; ++attempt) {
    r = a.read_block(disk, block, out);
    if (counters) ++counters->reads;
    if (r.ok() || !transient(r.status) || attempt >= policy.max_attempts) {
      return r;
    }
    if (counters) ++counters->retries;
    backoff(policy, attempt);
  }
}

IoResult write_block_retry(DiskArray& a, int disk, std::int64_t block,
                           std::span<const std::uint8_t> in,
                           const RetryPolicy& policy, IoCounters* counters) {
  IoResult r;
  for (int attempt = 1;; ++attempt) {
    r = a.write_block(disk, block, in);
    if (counters) ++counters->writes;
    if (r.ok() || !transient(r.status) || attempt >= policy.max_attempts) {
      return r;
    }
    if (counters) ++counters->retries;
    backoff(policy, attempt);
  }
}

IoResult xor_chain_read(DiskArray& a, std::span<const BlockAddr> sources,
                        std::span<std::uint8_t> out,
                        const RetryPolicy& policy, IoCounters* counters) {
  std::ranges::fill(out, std::uint8_t{0});
  Buffer tmp(a.block_bytes());
  for (const BlockAddr& s : sources) {
    const IoResult r =
        read_block_retry(a, s.disk, s.block, tmp.span(), policy, counters);
    if (!r.ok()) return r;
    xor_into(out, tmp.span());
  }
  return IoResult::success();
}

}  // namespace c56::mig
