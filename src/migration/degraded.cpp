#include "migration/degraded.hpp"

#include <chrono>
#include <thread>
#include <vector>

#include "xorblk/buffer.hpp"
#include "xorblk/xor.hpp"

namespace c56::mig {
namespace {

void backoff(const RetryPolicy& policy, int attempt) {
  if (policy.backoff_us == 0) return;
  const auto us = std::chrono::microseconds(
      static_cast<std::uint64_t>(policy.backoff_us) << (attempt - 1));
  std::this_thread::sleep_for(us);
}

bool transient(IoStatus s) {
  return s == IoStatus::kSectorError || s == IoStatus::kTornWrite;
}

}  // namespace

IoResult read_block_retry(DiskArray& a, int disk, std::int64_t block,
                          std::span<std::uint8_t> out,
                          const RetryPolicy& policy, IoCounters* counters) {
  IoResult r;
  for (int attempt = 1;; ++attempt) {
    r = a.read_block(disk, block, out);
    if (counters) ++counters->reads;
    if (r.ok() || !transient(r.status) || attempt >= policy.max_attempts) {
      return r;
    }
    if (counters) ++counters->retries;
    backoff(policy, attempt);
  }
}

IoResult write_block_retry(DiskArray& a, int disk, std::int64_t block,
                           std::span<const std::uint8_t> in,
                           const RetryPolicy& policy, IoCounters* counters) {
  IoResult r;
  for (int attempt = 1;; ++attempt) {
    r = a.write_block(disk, block, in);
    if (counters) ++counters->writes;
    if (r.ok() || !transient(r.status) || attempt >= policy.max_attempts) {
      return r;
    }
    if (counters) ++counters->retries;
    backoff(policy, attempt);
  }
}

IoResult xor_chain_read(DiskArray& a, std::span<const BlockAddr> sources,
                        std::span<std::uint8_t> out,
                        const RetryPolicy& policy, IoCounters* counters) {
  // Stage every chain member into one arena, then fold them in a single
  // accumulate pass — the parity is produced without re-reading out.
  const std::size_t bs = a.block_bytes();
  Buffer arena(bs * sources.size());
  std::vector<const std::uint8_t*> srcs;
  srcs.reserve(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    auto slot = arena.block(i, bs);
    const IoResult r = read_block_retry(a, sources[i].disk, sources[i].block,
                                        slot, policy, counters);
    if (!r.ok()) return r;
    srcs.push_back(slot.data());
  }
  xor_accumulate(out, srcs);
  return IoResult::success();
}

}  // namespace c56::mig
