#pragma once
// Sharded write-through LRU cache of stripe block contents, keyed by
// (stripe, flat cell index). An entry owns one stripe's worth of block
// storage plus a validity bitmap, so the cache can hold partially
// populated stripes (each block becomes valid when it is first read or
// written through the owning controller). The cache never goes to disk
// itself: the ArrayController performs the I/O and calls fill() after
// every successful read or write (write-through), so a hit is always
// the block's current logical value as long as every mutation of the
// array flows through that controller. Anything else touching the
// array — a disk failure, a rebuild, an online-migration hand-off —
// must invalidate (the controller does this on fail_disk/rebuild_disk
// and exposes invalidate_cache() for external writers).
//
// Thread safety: shards are independently mutex-guarded, so concurrent
// lookup/fill/invalidate from any number of threads is safe. Stripes
// map to shards by index, spreading a sequential scan across locks.

#include <cassert>
#include <cstdint>
#include <list>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "xorblk/buffer.hpp"

namespace c56::mig {

class StripeCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;  // entries created
    std::uint64_t evictions = 0;   // entries pushed out by capacity
  };

  /// Cache of at most `capacity_stripes` stripes of `cells_per_stripe`
  /// blocks of `block_bytes` each, spread over `shards` locks.
  StripeCache(std::size_t capacity_stripes, int cells_per_stripe,
              std::size_t block_bytes, int shards = 8);

  std::size_t capacity_stripes() const { return capacity_; }

  /// Copy the cached value of (stripe, cell) into `out` and refresh
  /// its LRU position. False (and no copy) when the block is absent.
  bool lookup(std::int64_t stripe, int cell, std::span<std::uint8_t> out);

  /// Install the block's current value (insert-or-update + LRU touch),
  /// evicting the least recently used stripe of the shard when full.
  void fill(std::int64_t stripe, int cell, std::span<const std::uint8_t> in);

  /// Drop one stripe / everything.
  void invalidate(std::int64_t stripe);
  void invalidate_all();

  /// Aggregated over all shards.
  Stats stats() const;

 private:
  struct Entry {
    std::int64_t stripe;
    Buffer blocks;                     // cells_per_stripe * block_bytes
    std::vector<std::uint64_t> valid;  // bitmap over cell indices
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::int64_t, std::list<Entry>::iterator> index;
    Stats stats;
  };

  Shard& shard_of(std::int64_t stripe) {
    // The key domain is non-negative stripe indices. A negative stripe
    // cast through size_t would wrap to a huge value and still land in
    // *some* shard, silently splitting one stripe's entries across
    // shards between callers that disagree on sign — catch it here.
    assert(stripe >= 0 && "StripeCache keys are non-negative stripe indices");
    return shards_[static_cast<std::size_t>(stripe) % shards_.size()];
  }

  std::size_t capacity_;            // total stripes
  std::size_t per_shard_capacity_;  // stripes per shard
  int cells_per_stripe_;
  std::size_t block_bytes_;
  std::vector<Shard> shards_;
};

}  // namespace c56::mig
