#pragma once
// Concrete conversion plans.
//
// Where cost_model.{hpp,cpp} computes amortized closed-form ratios (the
// paper's Section V-A/B "mathematical analysis"), this planner emits the
// exact block-level operations of every stripe group, with the
// old-parity holes resolved through the source RAID-5 rotation — the
// input the trace generator turns into the simulator workload of
// Section V-C. Tests cross-validate the two: plan op counts averaged
// over many groups converge to the cost-model ratios.

#include <cstdint>
#include <string>
#include <vector>

#include "layout/raid.hpp"
#include "migration/cost_model.hpp"

namespace c56::mig {

struct CellOp {
  Cell cell;       // target-stripe coordinates
  bool write = false;
  int pass = 0;    // streaming pass within the phase (see PassPolicy)
};

struct StripePhaseOps {
  std::string name;
  std::vector<CellOp> ops;

  std::size_t reads() const;
  std::size_t writes() const;
};

enum class PassPolicy {
  /// One streaming pass computes every parity set: each source block is
  /// read once per phase (the idealized accounting of the closed-form
  /// model in cost_model.cpp).
  kSinglePass,
  /// One streaming pass per parity geometry (rows, diagonals,
  /// anti-diagonals): a memory-bounded converter re-reads the data for
  /// each chain orientation. Default for trace generation.
  kPassPerParitySet,
};

class ConversionPlanner {
 public:
  explicit ConversionPlanner(const ConversionSpec& spec,
                             Raid5Flavor flavor = Raid5Flavor::kLeftAsymmetric,
                             PassPolicy policy = PassPolicy::kPassPerParitySet);

  const ConversionSpec& spec() const { return spec_; }
  const ErasureCode& code() const { return *code_; }
  int phase_count() const;

  /// Exact block operations for stripe group g. Element order inside a
  /// phase follows chain/encode order (the streaming order a converter
  /// would use).
  std::vector<StripePhaseOps> ops_for_group(std::int64_t g) const;

  /// The original column holding the (NULLed or migrated) old parity of
  /// target row `r` in group `g`, or -1 when the layout reuses parities.
  int hole_col(std::int64_t g, int r) const;

 private:
  bool is_reserved(Cell c) const;
  bool is_original(int col) const;
  bool is_source_data(std::int64_t g, Cell c) const;

  ConversionSpec spec_;
  Raid5Flavor flavor_;
  PassPolicy policy_;
  std::unique_ptr<ErasureCode> code_;
  std::vector<int> original_cols_;
  bool reuse_;
};

}  // namespace c56::mig
