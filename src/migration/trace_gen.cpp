#include "migration/trace_gen.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace c56::mig {

int physical_disk(const ConversionPlanner& planner, int col, std::int64_t g) {
  const ConversionSpec& spec = planner.spec();
  const int v = spec.virtual_disks();
  if (col < v) return -1;  // virtual column, never materialized
  const int phys = col - v;
  const int n = spec.n();
  if (!spec.load_balanced) return phys;
  return static_cast<int>((phys + g) % n);
}

sim::Trace make_conversion_trace(const ConversionPlanner& planner,
                                 const TraceParams& params) {
  const ConversionSpec& spec = planner.spec();
  const double per_stripe = data_blocks_per_stripe(spec);
  const std::int64_t groups = static_cast<std::int64_t>(
      std::ceil(static_cast<double>(params.total_data_blocks) / per_stripe));
  const std::int64_t sweep =
      params.groups_per_sweep > 0 ? params.groups_per_sweep : groups;
  const int rows = planner.code().rows();
  const std::uint32_t sectors_per_block =
      std::max<std::uint32_t>(1, params.block_bytes / 512);

  sim::Trace trace;
  for (std::int64_t g0 = 0; g0 < groups; g0 += sweep) {
    const std::int64_t g1 = std::min(groups, g0 + sweep);
    // Gather per-phase requests across the whole sweep so the degrade
    // step of every group in the sweep precedes any upgrade I/O.
    std::vector<sim::Phase> phases(
        static_cast<std::size_t>(planner.phase_count()));
    for (std::size_t k = 0; k < phases.size(); ++k) {
      phases[k].name = "sweep@" + std::to_string(g0) + "/phase" +
                       std::to_string(k);
    }
    std::vector<std::vector<std::pair<int, sim::Request>>> sweep_reqs(
        phases.size());
    for (std::int64_t g = g0; g < g1; ++g) {
      const auto ops = planner.ops_for_group(g);
      assert(ops.size() == phases.size());
      for (std::size_t k = 0; k < ops.size(); ++k) {
        for (const CellOp& op : ops[k].ops) {
          const int disk = physical_disk(planner, op.cell.col, g);
          assert(disk >= 0 && "plan op touches a virtual column");
          sim::Request req;
          req.disk = disk;
          req.lba = static_cast<std::uint64_t>(g * rows + op.cell.row) *
                    sectors_per_block;
          req.bytes = params.block_bytes;
          req.op = op.write ? sim::Op::kWrite : sim::Op::kRead;
          sweep_reqs[k].push_back({op.pass, req});
        }
      }
    }
    // A streaming converter runs each pass as one sequential sweep over
    // the whole batch; a stable (pass, LBA) sort realizes that dispatch
    // order while preserving the plan's op multiset. Codes with a
    // second chain geometry pay a full second sweep (and one
    // repositioning), single-set codes like Code 5-6 stream once.
    for (std::size_t k = 0; k < phases.size(); ++k) {
      std::stable_sort(sweep_reqs[k].begin(), sweep_reqs[k].end(),
                       [](const auto& a, const auto& b) {
                         return a.first != b.first
                                    ? a.first < b.first
                                    : a.second.lba < b.second.lba;
                       });
      for (const auto& [pass, req] : sweep_reqs[k]) {
        phases[k].requests.push_back(req);
      }
    }
    for (auto& ph : phases) trace.phases.push_back(std::move(ph));
  }
  return trace;
}

}  // namespace c56::mig
