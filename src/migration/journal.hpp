#pragma once
// Crash-consistent migration journal. The converter's only volatile
// state is its position — the group watermark plus how many diagonal
// rows of the current group are on disk — so persisting that one record
// makes the whole conversion resumable. The record is checksummed and
// written alternately to two slots (double buffering): a crash that
// tears one slot leaves the other intact, and recovery picks the valid
// slot with the highest sequence number.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace c56::mig {

struct CheckpointRecord {
  std::uint64_t seq = 0;         // monotone write counter
  std::int64_t groups_done = 0;  // stripe groups fully generated
  int diag_rows = 0;             // diagonal rows done in group groups_done
};

/// Raw two-slot storage the journal encodes into. Slot writes need no
/// atomicity: a torn slot fails its checksum on load and is discarded.
class CheckpointSink {
 public:
  virtual ~CheckpointSink() = default;
  virtual void write_slot(int slot, std::span<const std::uint8_t> bytes) = 0;
  /// Stored bytes of the slot; empty if never written.
  virtual std::vector<std::uint8_t> read_slot(int slot) = 0;
};

class MemoryCheckpointSink final : public CheckpointSink {
 public:
  void write_slot(int slot, std::span<const std::uint8_t> bytes) override;
  std::vector<std::uint8_t> read_slot(int slot) override;

 private:
  std::vector<std::uint8_t> slots_[2];
};

/// File-backed sink: one fixed-size file, slot i at offset i*kSlotBytes.
class FileCheckpointSink final : public CheckpointSink {
 public:
  explicit FileCheckpointSink(std::string path);
  void write_slot(int slot, std::span<const std::uint8_t> bytes) override;
  std::vector<std::uint8_t> read_slot(int slot) override;
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

class MigrationJournal {
 public:
  static constexpr std::size_t kSlotBytes = 40;

  explicit MigrationJournal(CheckpointSink& sink) : sink_(sink) {}

  /// Persist the converter position (alternating slots).
  void record(std::int64_t groups_done, int diag_rows);

  /// Best valid record, or nullopt if no slot decodes. Also primes the
  /// journal so subsequent record() calls continue the sequence and
  /// overwrite the stale slot first.
  std::optional<CheckpointRecord> recover();

  /// Encoding helpers, exposed for tests.
  static std::vector<std::uint8_t> encode(const CheckpointRecord& rec);
  static std::optional<CheckpointRecord> decode(
      std::span<const std::uint8_t> bytes);

  /// Checkpoints persisted through this journal instance.
  std::uint64_t records() const { return records_.value(); }

 private:
  CheckpointSink& sink_;
  std::uint64_t seq_ = 0;
  int next_slot_ = 0;
  obs::Counter records_;
};

}  // namespace c56::mig
