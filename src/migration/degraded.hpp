#pragma once
// Shared degraded-I/O primitives over the fault-injecting DiskArray:
// bounded retry-with-backoff for transient errors (latent sector errors
// on reads, torn writes) and reconstruct-by-XOR-chain reads. The RAID
// controller's recipe-driven reconstruction and the online migrator's
// RAID-5 row reconstruction are both expressed through xor_chain_read,
// so there is exactly one reconstruct-on-read code path.

#include <cstdint>
#include <span>

#include "migration/disk_array.hpp"
#include "migration/fault.hpp"

namespace c56::mig {

struct BlockAddr {
  int disk = 0;
  std::int64_t block = 0;
};

/// Attempt accounting for one degraded operation; callers fold these
/// into their own stats under their own locking.
struct IoCounters {
  std::uint64_t reads = 0;    // counted reads issued, retries included
  std::uint64_t writes = 0;   // counted writes issued, retries included
  std::uint64_t retries = 0;  // reissues after a transient error
  std::uint64_t backoff_us = 0;  // time slept between retry attempts
};

/// Read with retry. kSectorError is transient (reissued up to
/// policy.max_attempts with exponential backoff); kDiskFailed is
/// permanent and returned immediately.
IoResult read_block_retry(DiskArray& a, int disk, std::int64_t block,
                          std::span<std::uint8_t> out,
                          const RetryPolicy& policy, IoCounters* counters);

/// Write with retry. A torn write is repaired by rewriting the whole
/// block; kDiskFailed is permanent.
IoResult write_block_retry(DiskArray& a, int disk, std::int64_t block,
                           std::span<const std::uint8_t> in,
                           const RetryPolicy& policy, IoCounters* counters);

/// Sub-block variants: same retry discipline over DiskArray's range
/// I/O. A torn range write is repaired by rewriting the whole range.
IoResult read_range_retry(DiskArray& a, int disk, std::int64_t block,
                          std::size_t offset, std::span<std::uint8_t> out,
                          const RetryPolicy& policy, IoCounters* counters);
IoResult write_range_retry(DiskArray& a, int disk, std::int64_t block,
                           std::size_t offset,
                           std::span<const std::uint8_t> in,
                           const RetryPolicy& policy, IoCounters* counters);

/// out = XOR of the addressed blocks, each read with retry (`out` is
/// zeroed first). This is the reconstruct-on-read kernel: pass the
/// surviving members of the failed block's parity chain. Fails on the
/// first unreadable source.
IoResult xor_chain_read(DiskArray& a, std::span<const BlockAddr> sources,
                        std::span<std::uint8_t> out,
                        const RetryPolicy& policy, IoCounters* counters);

}  // namespace c56::mig
