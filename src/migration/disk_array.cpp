#include "migration/disk_array.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

#include "obs/reqtrace.hpp"

namespace c56::mig {

const char* to_string(IoStatus s) noexcept {
  switch (s) {
    case IoStatus::kOk:
      return "ok";
    case IoStatus::kDiskFailed:
      return "disk failed";
    case IoStatus::kSectorError:
      return "sector error";
    case IoStatus::kTornWrite:
      return "torn write";
  }
  return "?";
}

DiskArray::DiskArray(int disks, std::int64_t blocks_per_disk,
                     std::size_t block_bytes)
    : blocks_per_disk_(blocks_per_disk), block_bytes_(block_bytes) {
  if (disks <= 0 || blocks_per_disk <= 0 || block_bytes == 0) {
    throw std::invalid_argument("DiskArray: invalid geometry");
  }
  for (int d = 0; d < disks; ++d) add_disk();
}

int DiskArray::add_disk() {
  auto disk = std::make_unique<Disk>();
  disk->data = Buffer(static_cast<std::size_t>(blocks_per_disk_) *
                      block_bytes_);
  // Exclusive vs the metrics collector's shared walk: the push_back may
  // reallocate the table, which must not happen under a snapshot.
  std::unique_lock lk(geom_mu_);
  disks_.push_back(std::move(disk));
  return static_cast<int>(disks_.size()) - 1;
}

void DiskArray::check(int disk, std::int64_t block) const {
  if (disk < 0 || disk >= disks() || block < 0 || block >= blocks_per_disk_) {
    throw std::out_of_range("DiskArray: disk " + std::to_string(disk) +
                            " block " + std::to_string(block) +
                            " outside " + std::to_string(disks()) + "x" +
                            std::to_string(blocks_per_disk_));
  }
}

std::span<std::uint8_t> DiskArray::raw_block(int disk, std::int64_t block) {
  check(disk, block);
  return disks_[static_cast<std::size_t>(disk)]->data.span().subspan(
      static_cast<std::size_t>(block) * block_bytes_, block_bytes_);
}

std::span<const std::uint8_t> DiskArray::raw_block(
    int disk, std::int64_t block) const {
  check(disk, block);
  return disks_[static_cast<std::size_t>(disk)]->data.span().subspan(
      static_cast<std::size_t>(block) * block_bytes_, block_bytes_);
}

void DiskArray::check_run(int disk, std::int64_t block,
                          std::int64_t count) const {
  check(disk, block);
  if (count <= 0 || block + count > blocks_per_disk_) {
    throw std::out_of_range("DiskArray: run of " + std::to_string(count) +
                            " blocks at " + std::to_string(block) +
                            " outside " + std::to_string(blocks_per_disk_));
  }
}

std::span<std::uint8_t> DiskArray::raw_blocks(int disk, std::int64_t block,
                                              std::int64_t count) {
  check_run(disk, block, count);
  return disks_[static_cast<std::size_t>(disk)]->data.span().subspan(
      static_cast<std::size_t>(block) * block_bytes_,
      static_cast<std::size_t>(count) * block_bytes_);
}

std::span<const std::uint8_t> DiskArray::raw_blocks(
    int disk, std::int64_t block, std::int64_t count) const {
  check_run(disk, block, count);
  return disks_[static_cast<std::size_t>(disk)]->data.span().subspan(
      static_cast<std::size_t>(block) * block_bytes_,
      static_cast<std::size_t>(count) * block_bytes_);
}

void DiskArray::set_fault_plan(const FaultPlan& plan) {
  std::lock_guard lk(fault_mu_);
  for (auto& d : disks_) {
    d->fail_after.store(kNeverFails, std::memory_order_relaxed);
  }
  for (const FaultPlan::DiskFailure& f : plan.disk_failures) {
    check(f.disk, 0);
    disks_[static_cast<std::size_t>(f.disk)]->fail_after.store(
        f.after_ios, std::memory_order_relaxed);
  }
  bad_blocks_.clear();
  for (const FaultPlan::BadBlock& b : plan.bad_blocks) {
    check(b.disk, b.block);
    bad_blocks_.emplace_back(b.disk, b.block);
  }
  rot_blocks_.clear();
  for (const FaultPlan::SilentCorruption& s : plan.silent_corruptions) {
    check(s.disk, s.block);
    rot_blocks_.emplace_back(s.disk, s.block);
  }
  sector_error_rate_ = plan.sector_error_rate;
  torn_write_rate_ = plan.torn_write_rate;
  bit_rot_rate_ = plan.bit_rot_rate;
  rng_ = Rng(plan.seed);
  injecting_ = true;
}

void DiskArray::mark_failed(Disk& d) {
  if (!d.failed.exchange(true)) disk_failure_events_.inc();
}

void DiskArray::fail_disk(int disk) {
  check(disk, 0);
  mark_failed(*disks_[static_cast<std::size_t>(disk)]);
}

void DiskArray::repair_disk(int disk) {
  check(disk, 0);
  Disk& d = *disks_[static_cast<std::size_t>(disk)];
  d.fail_after.store(kNeverFails);
  d.failed.store(false);
}

bool DiskArray::disk_failed(int disk) const {
  check(disk, 0);
  return disks_[static_cast<std::size_t>(disk)]->failed.load();
}

int DiskArray::failed_disks() const {
  int n = 0;
  for (const auto& d : disks_) n += d->failed.load();
  return n;
}

bool DiskArray::roll(double rate) {
  if (rate <= 0.0) return false;
  std::lock_guard lk(fault_mu_);
  return rng_.next_double() < rate;
}

bool DiskArray::is_bad(int disk, std::int64_t block) const {
  std::lock_guard lk(fault_mu_);
  return std::find(bad_blocks_.begin(), bad_blocks_.end(),
                   std::make_pair(disk, block)) != bad_blocks_.end();
}

void DiskArray::clear_bad(int disk, std::int64_t block) {
  std::lock_guard lk(fault_mu_);
  std::erase(bad_blocks_, std::make_pair(disk, block));
}

std::optional<std::pair<std::size_t, std::uint8_t>> DiskArray::rot_for_write(
    int disk, std::int64_t block) {
  std::lock_guard lk(fault_mu_);
  const bool scripted =
      std::erase(rot_blocks_, std::make_pair(disk, block)) > 0;
  if (!scripted &&
      (bit_rot_rate_ <= 0.0 || rng_.next_double() >= bit_rot_rate_)) {
    return std::nullopt;
  }
  return std::make_pair(
      static_cast<std::size_t>(
          rng_.next_below(static_cast<std::uint64_t>(block_bytes_))),
      static_cast<std::uint8_t>(1u << rng_.next_below(8)));
}

void DiskArray::corrupt_block(int disk, std::int64_t block, std::size_t offset,
                              std::uint8_t mask) {
  check(disk, block);
  if (offset >= block_bytes_ || mask == 0) {
    throw std::invalid_argument("DiskArray::corrupt_block: bad flip");
  }
  raw_block(disk, block)[offset] ^= mask;
  silent_corruptions_.inc();
}

IoResult DiskArray::read_block(int disk, std::int64_t block,
                               std::span<std::uint8_t> out) {
  // Counted-I/O entry: attribute this call's wall time to the device
  // stage of whatever request is executing on this thread.
  obs::DeviceSpan dspan;
  check(disk, block);
  if (out.size() != block_bytes_) {
    throw std::invalid_argument("DiskArray::read_block: bad buffer size");
  }
  Disk& d = *disks_[static_cast<std::size_t>(disk)];
  d.reads.inc();
  d.read_runs.inc();
  d.read_bytes.inc(block_bytes_);
  const std::uint64_t ord = d.ios.fetch_add(1, std::memory_order_relaxed);
  if (ord >= d.fail_after.load(std::memory_order_relaxed)) {
    mark_failed(d);
  }
  if (d.failed.load()) return IoResult::fail(IoStatus::kDiskFailed, disk, block);
  if (injecting_ &&
      (is_bad(disk, block) || roll(sector_error_rate_))) {
    sector_errors_.inc();
    return IoResult::fail(IoStatus::kSectorError, disk, block);
  }
  const auto src = d.data.span().subspan(
      static_cast<std::size_t>(block) * block_bytes_, block_bytes_);
  std::memcpy(out.data(), src.data(), block_bytes_);
  return IoResult::success();
}

IoResult DiskArray::write_block(int disk, std::int64_t block,
                                std::span<const std::uint8_t> in) {
  obs::DeviceSpan dspan;
  check(disk, block);
  if (in.size() != block_bytes_) {
    throw std::invalid_argument("DiskArray::write_block: bad buffer size");
  }
  Disk& d = *disks_[static_cast<std::size_t>(disk)];
  d.writes.inc();
  d.write_runs.inc();
  d.write_bytes.inc(block_bytes_);
  const std::uint64_t ord = d.ios.fetch_add(1, std::memory_order_relaxed);
  if (ord >= d.fail_after.load(std::memory_order_relaxed)) {
    mark_failed(d);
  }
  if (d.failed.load()) return IoResult::fail(IoStatus::kDiskFailed, disk, block);
  const auto dst = d.data.span().subspan(
      static_cast<std::size_t>(block) * block_bytes_, block_bytes_);
  if (injecting_ && roll(torn_write_rate_)) {
    std::memcpy(dst.data(), in.data(), block_bytes_ / 2);
    torn_writes_.inc();
    return IoResult::fail(IoStatus::kTornWrite, disk, block);
  }
  std::memcpy(dst.data(), in.data(), block_bytes_);
  if (injecting_) {
    clear_bad(disk, block);  // successful rewrite remaps
    if (const auto rot = rot_for_write(disk, block)) {
      dst[rot->first] ^= rot->second;  // silent: still reported as ok
      silent_corruptions_.inc();
    }
  }
  return IoResult::success();
}

void DiskArray::check_range(int disk, std::int64_t block, std::size_t offset,
                            std::size_t len) const {
  check(disk, block);
  if (len == 0 || offset > block_bytes_ || len > block_bytes_ - offset) {
    throw std::invalid_argument(
        "DiskArray: range [" + std::to_string(offset) + ", " +
        std::to_string(offset + len) + ") outside block of " +
        std::to_string(block_bytes_) + " bytes");
  }
}

IoResult DiskArray::read_range(int disk, std::int64_t block,
                               std::size_t offset,
                               std::span<std::uint8_t> out) {
  obs::DeviceSpan dspan;
  check_range(disk, block, offset, out.size());
  Disk& d = *disks_[static_cast<std::size_t>(disk)];
  d.reads.inc();
  d.read_runs.inc();
  d.read_bytes.inc(out.size());
  const std::uint64_t ord = d.ios.fetch_add(1, std::memory_order_relaxed);
  if (ord >= d.fail_after.load(std::memory_order_relaxed)) {
    mark_failed(d);
  }
  if (d.failed.load()) return IoResult::fail(IoStatus::kDiskFailed, disk, block);
  if (injecting_ &&
      (is_bad(disk, block) || roll(sector_error_rate_))) {
    sector_errors_.inc();
    return IoResult::fail(IoStatus::kSectorError, disk, block);
  }
  const auto src = d.data.span().subspan(
      static_cast<std::size_t>(block) * block_bytes_ + offset, out.size());
  std::memcpy(out.data(), src.data(), out.size());
  return IoResult::success();
}

IoResult DiskArray::write_range(int disk, std::int64_t block,
                                std::size_t offset,
                                std::span<const std::uint8_t> in) {
  obs::DeviceSpan dspan;
  check_range(disk, block, offset, in.size());
  Disk& d = *disks_[static_cast<std::size_t>(disk)];
  d.writes.inc();
  d.write_runs.inc();
  d.write_bytes.inc(in.size());
  const std::uint64_t ord = d.ios.fetch_add(1, std::memory_order_relaxed);
  if (ord >= d.fail_after.load(std::memory_order_relaxed)) {
    mark_failed(d);
  }
  if (d.failed.load()) return IoResult::fail(IoStatus::kDiskFailed, disk, block);
  const auto dst = d.data.span().subspan(
      static_cast<std::size_t>(block) * block_bytes_ + offset, in.size());
  if (injecting_ && roll(torn_write_rate_)) {
    std::memcpy(dst.data(), in.data(), in.size() / 2);
    torn_writes_.inc();
    return IoResult::fail(IoStatus::kTornWrite, disk, block);
  }
  std::memcpy(dst.data(), in.data(), in.size());
  if (injecting_) {
    // A partial write can't remap the block, so the bad mark stays
    // unless the range is the whole block.
    if (offset == 0 && in.size() == block_bytes_) clear_bad(disk, block);
    if (const auto rot = rot_for_write(disk, block)) {
      dst[rot->first % in.size()] ^= rot->second;  // flip inside the range
      silent_corruptions_.inc();
    }
  }
  return IoResult::success();
}

IoResult DiskArray::read_blocks(int disk, std::int64_t block,
                                std::int64_t count,
                                std::span<std::uint8_t> out) {
  obs::DeviceSpan dspan;
  check_run(disk, block, count);
  if (out.size() != static_cast<std::size_t>(count) * block_bytes_) {
    throw std::invalid_argument("DiskArray::read_blocks: bad buffer size");
  }
  Disk& d = *disks_[static_cast<std::size_t>(disk)];
  d.reads.inc(static_cast<std::uint64_t>(count));
  d.read_runs.inc();
  d.read_bytes.inc(static_cast<std::uint64_t>(count) * block_bytes_);
  const std::uint64_t ord = d.ios.fetch_add(static_cast<std::uint64_t>(count),
                                            std::memory_order_relaxed);
  // Per-block fail_after semantics: block k of the run carries ordinal
  // ord+k, so the run survives only its first fail_after-ord blocks.
  const bool was_failed = d.failed.load();
  const std::uint64_t fail_at = d.fail_after.load(std::memory_order_relaxed);
  std::int64_t ok = count;
  if (fail_at <= ord) {
    ok = 0;
  } else if (fail_at - ord < static_cast<std::uint64_t>(count)) {
    ok = static_cast<std::int64_t>(fail_at - ord);
  }
  if (ok < count) mark_failed(d);
  if (was_failed) ok = 0;  // already-failed disk
  const auto src = d.data.span().subspan(
      static_cast<std::size_t>(block) * block_bytes_,
      static_cast<std::size_t>(count) * block_bytes_);
  if (!injecting_) {
    if (ok > 0) {
      std::memcpy(out.data(), src.data(),
                  static_cast<std::size_t>(ok) * block_bytes_);
    }
    if (ok < count) return IoResult::fail(IoStatus::kDiskFailed, disk,
                                          block + ok);
    return IoResult::success();
  }
  for (std::int64_t k = 0; k < ok; ++k) {
    if (is_bad(disk, block + k) || roll(sector_error_rate_)) {
      sector_errors_.inc();
      return IoResult::fail(IoStatus::kSectorError, disk, block + k);
    }
    std::memcpy(out.data() + static_cast<std::size_t>(k) * block_bytes_,
                src.data() + static_cast<std::size_t>(k) * block_bytes_,
                block_bytes_);
  }
  if (ok < count) return IoResult::fail(IoStatus::kDiskFailed, disk,
                                        block + ok);
  return IoResult::success();
}

IoResult DiskArray::write_blocks(int disk, std::int64_t block,
                                 std::int64_t count,
                                 std::span<const std::uint8_t> in) {
  obs::DeviceSpan dspan;
  check_run(disk, block, count);
  if (in.size() != static_cast<std::size_t>(count) * block_bytes_) {
    throw std::invalid_argument("DiskArray::write_blocks: bad buffer size");
  }
  Disk& d = *disks_[static_cast<std::size_t>(disk)];
  d.writes.inc(static_cast<std::uint64_t>(count));
  d.write_runs.inc();
  d.write_bytes.inc(static_cast<std::uint64_t>(count) * block_bytes_);
  const std::uint64_t ord = d.ios.fetch_add(static_cast<std::uint64_t>(count),
                                            std::memory_order_relaxed);
  const bool was_failed = d.failed.load();
  const std::uint64_t fail_at = d.fail_after.load(std::memory_order_relaxed);
  std::int64_t ok = count;
  if (fail_at <= ord) {
    ok = 0;
  } else if (fail_at - ord < static_cast<std::uint64_t>(count)) {
    ok = static_cast<std::int64_t>(fail_at - ord);
  }
  if (ok < count) mark_failed(d);
  if (was_failed) ok = 0;
  const auto dst = d.data.span().subspan(
      static_cast<std::size_t>(block) * block_bytes_,
      static_cast<std::size_t>(count) * block_bytes_);
  if (!injecting_) {
    if (ok > 0) {
      std::memcpy(dst.data(), in.data(),
                  static_cast<std::size_t>(ok) * block_bytes_);
    }
    if (ok < count) return IoResult::fail(IoStatus::kDiskFailed, disk,
                                          block + ok);
    return IoResult::success();
  }
  for (std::int64_t k = 0; k < ok; ++k) {
    auto* bdst = dst.data() + static_cast<std::size_t>(k) * block_bytes_;
    const auto* bsrc = in.data() + static_cast<std::size_t>(k) * block_bytes_;
    if (roll(torn_write_rate_)) {
      std::memcpy(bdst, bsrc, block_bytes_ / 2);
      torn_writes_.inc();
      return IoResult::fail(IoStatus::kTornWrite, disk, block + k);
    }
    std::memcpy(bdst, bsrc, block_bytes_);
    clear_bad(disk, block + k);  // successful rewrite remaps
    if (const auto rot = rot_for_write(disk, block + k)) {
      bdst[rot->first] ^= rot->second;  // silent: still reported as ok
      silent_corruptions_.inc();
    }
  }
  if (ok < count) return IoResult::fail(IoStatus::kDiskFailed, disk,
                                        block + ok);
  return IoResult::success();
}

std::uint64_t DiskArray::reads(int disk) const {
  return disks_[static_cast<std::size_t>(disk)]->reads.value();
}

std::uint64_t DiskArray::writes(int disk) const {
  return disks_[static_cast<std::size_t>(disk)]->writes.value();
}

std::uint64_t DiskArray::total_reads() const {
  std::uint64_t n = 0;
  for (int d = 0; d < disks(); ++d) n += reads(d);
  return n;
}

std::uint64_t DiskArray::total_writes() const {
  std::uint64_t n = 0;
  for (int d = 0; d < disks(); ++d) n += writes(d);
  return n;
}

std::uint64_t DiskArray::read_runs(int disk) const {
  return disks_[static_cast<std::size_t>(disk)]->read_runs.value();
}

std::uint64_t DiskArray::write_runs(int disk) const {
  return disks_[static_cast<std::size_t>(disk)]->write_runs.value();
}

std::uint64_t DiskArray::read_bytes(int disk) const {
  return disks_[static_cast<std::size_t>(disk)]->read_bytes.value();
}

std::uint64_t DiskArray::write_bytes(int disk) const {
  return disks_[static_cast<std::size_t>(disk)]->write_bytes.value();
}

std::uint64_t DiskArray::total_read_bytes() const {
  std::uint64_t n = 0;
  for (int d = 0; d < disks(); ++d) n += read_bytes(d);
  return n;
}

std::uint64_t DiskArray::total_write_bytes() const {
  std::uint64_t n = 0;
  for (int d = 0; d < disks(); ++d) n += write_bytes(d);
  return n;
}

std::uint64_t DiskArray::total_read_runs() const {
  std::uint64_t n = 0;
  for (int d = 0; d < disks(); ++d) n += read_runs(d);
  return n;
}

std::uint64_t DiskArray::total_write_runs() const {
  std::uint64_t n = 0;
  for (int d = 0; d < disks(); ++d) n += write_runs(d);
  return n;
}

void DiskArray::attach_metrics(obs::Registry& registry,
                               const std::string& prefix,
                               const std::string& labels) {
  // Caller labels (e.g. volume="3") merge into the per-disk label set
  // and suffix the totals so many arrays can share one registry.
  const std::string lb = labels.empty() ? "" : "{" + labels + "}";
  metrics_handle_ =
      registry.add_collector([this, prefix, labels, lb](obs::Collection& c) {
    // Shared geometry lock: a concurrent add_disk (migration Step 2)
    // must not reallocate the disk table mid-walk.
    std::shared_lock geom(geom_mu_);
    std::uint64_t reads_total = 0, writes_total = 0;
    std::uint64_t read_runs_total = 0, write_runs_total = 0;
    std::uint64_t read_bytes_total = 0, write_bytes_total = 0;
    for (std::size_t d = 0; d < disks_.size(); ++d) {
      const Disk& disk = *disks_[d];
      const std::string label = "{disk=\"" + std::to_string(d) + "\"" +
                                (labels.empty() ? "" : "," + labels) + "}";
      c.counter(prefix + "_reads" + label, disk.reads.value());
      c.counter(prefix + "_writes" + label, disk.writes.value());
      c.counter(prefix + "_read_runs" + label, disk.read_runs.value());
      c.counter(prefix + "_write_runs" + label, disk.write_runs.value());
      reads_total += disk.reads.value();
      writes_total += disk.writes.value();
      read_runs_total += disk.read_runs.value();
      write_runs_total += disk.write_runs.value();
      read_bytes_total += disk.read_bytes.value();
      write_bytes_total += disk.write_bytes.value();
    }
    c.counter(prefix + "_reads_total" + lb, reads_total);
    c.counter(prefix + "_writes_total" + lb, writes_total);
    c.counter(prefix + "_read_runs_total" + lb, read_runs_total);
    c.counter(prefix + "_write_runs_total" + lb, write_runs_total);
    c.counter(prefix + "_read_bytes_total" + lb, read_bytes_total);
    c.counter(prefix + "_write_bytes_total" + lb, write_bytes_total);
    c.counter(prefix + "_sector_errors" + lb, sector_errors_.value());
    c.counter(prefix + "_torn_writes" + lb, torn_writes_.value());
    c.counter(prefix + "_silent_corruptions" + lb,
              silent_corruptions_.value());
    c.counter(prefix + "_disk_failures" + lb, disk_failure_events_.value());
    c.gauge(prefix + "_failed_disks" + lb, failed_disks());
  });
}

}  // namespace c56::mig
