#include "migration/disk_array.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

namespace c56::mig {

DiskArray::DiskArray(int disks, std::int64_t blocks_per_disk,
                     std::size_t block_bytes)
    : blocks_per_disk_(blocks_per_disk), block_bytes_(block_bytes) {
  if (disks <= 0 || blocks_per_disk <= 0 || block_bytes == 0) {
    throw std::invalid_argument("DiskArray: invalid geometry");
  }
  for (int d = 0; d < disks; ++d) add_disk();
}

int DiskArray::add_disk() {
  auto disk = std::make_unique<Disk>();
  disk->data = Buffer(static_cast<std::size_t>(blocks_per_disk_) *
                      block_bytes_);
  disks_.push_back(std::move(disk));
  return static_cast<int>(disks_.size()) - 1;
}

std::span<std::uint8_t> DiskArray::raw_block(int disk, std::int64_t block) {
  assert(disk >= 0 && disk < disks());
  assert(block >= 0 && block < blocks_per_disk_);
  return disks_[static_cast<std::size_t>(disk)]->data.span().subspan(
      static_cast<std::size_t>(block) * block_bytes_, block_bytes_);
}

std::span<const std::uint8_t> DiskArray::raw_block(
    int disk, std::int64_t block) const {
  assert(disk >= 0 && disk < disks());
  assert(block >= 0 && block < blocks_per_disk_);
  return disks_[static_cast<std::size_t>(disk)]->data.span().subspan(
      static_cast<std::size_t>(block) * block_bytes_, block_bytes_);
}

void DiskArray::read_block(int disk, std::int64_t block,
                           std::span<std::uint8_t> out) {
  assert(out.size() == block_bytes_);
  const auto src = raw_block(disk, block);
  std::memcpy(out.data(), src.data(), block_bytes_);
  disks_[static_cast<std::size_t>(disk)]->reads.fetch_add(
      1, std::memory_order_relaxed);
}

void DiskArray::write_block(int disk, std::int64_t block,
                            std::span<const std::uint8_t> in) {
  assert(in.size() == block_bytes_);
  const auto dst = raw_block(disk, block);
  std::memcpy(dst.data(), in.data(), block_bytes_);
  disks_[static_cast<std::size_t>(disk)]->writes.fetch_add(
      1, std::memory_order_relaxed);
}

std::uint64_t DiskArray::reads(int disk) const {
  return disks_[static_cast<std::size_t>(disk)]->reads.load(
      std::memory_order_relaxed);
}

std::uint64_t DiskArray::writes(int disk) const {
  return disks_[static_cast<std::size_t>(disk)]->writes.load(
      std::memory_order_relaxed);
}

std::uint64_t DiskArray::total_reads() const {
  std::uint64_t n = 0;
  for (int d = 0; d < disks(); ++d) n += reads(d);
  return n;
}

std::uint64_t DiskArray::total_writes() const {
  std::uint64_t n = 0;
  for (int d = 0; d < disks(); ++d) n += writes(d);
  return n;
}

}  // namespace c56::mig
