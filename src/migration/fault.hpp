#pragma once
// Fault model for the in-memory disk array: the failures Table VI's risk
// analysis reasons about, made injectable so the migration code paths
// that survive them can actually be exercised. A FaultPlan scripts
// whole-disk failures (at a given cumulative I/O count), latent sector
// errors (deterministic bad blocks and a probabilistic transient rate)
// and torn writes; counted DiskArray I/O reports them through IoResult
// (std::expected is C++23, so a small hand-rolled equivalent is used).

#include <cstdint>
#include <vector>

namespace c56::mig {

enum class IoStatus : std::uint8_t {
  kOk = 0,
  kDiskFailed,   // whole-disk failure: no bytes transferred
  kSectorError,  // latent sector error: the read returned no data
  kTornWrite,    // only a prefix of the block was persisted
};

const char* to_string(IoStatus s) noexcept;

/// Result of one counted block I/O; carries the failing coordinates so
/// errors are diagnosable without extra plumbing.
struct IoResult {
  IoStatus status = IoStatus::kOk;
  int disk = -1;
  std::int64_t block = -1;

  bool ok() const noexcept { return status == IoStatus::kOk; }
  explicit operator bool() const noexcept { return ok(); }

  static IoResult success() noexcept { return {}; }
  static IoResult fail(IoStatus s, int d, std::int64_t b) noexcept {
    return {s, d, b};
  }
};

/// Scripted + probabilistic fault injection applied to counted I/O
/// (raw_block stays an uninjected backdoor for test setup and
/// verification). All randomness comes from one seeded Rng, so a given
/// plan replays identically.
struct FaultPlan {
  /// Fail `disk` permanently after it has served `after_ios` counted
  /// I/Os (reads + writes): the (after_ios+1)-th and all later accesses
  /// return kDiskFailed.
  struct DiskFailure {
    int disk = 0;
    std::uint64_t after_ios = 0;
  };
  std::vector<DiskFailure> disk_failures;

  /// Deterministic latent sector errors: reads of these blocks return
  /// kSectorError until the block is successfully rewritten (modelling
  /// a sector remap on write).
  struct BadBlock {
    int disk = 0;
    std::int64_t block = 0;
  };
  std::vector<BadBlock> bad_blocks;

  /// Scripted silent corruption: the next counted write of this block
  /// persists with one pseudo-randomly chosen bit flipped and reports
  /// success (the model of a write that hit the platter wrong). One-shot
  /// per entry; no IoStatus surfaces — only a scrub can notice.
  struct SilentCorruption {
    int disk = 0;
    std::int64_t block = 0;
  };
  std::vector<SilentCorruption> silent_corruptions;

  /// Probability that any counted read reports a transient sector
  /// error; drawn independently per attempt, so a retry may succeed.
  double sector_error_rate = 0.0;
  /// Probability that a counted write tears: only the first half of the
  /// block is persisted and kTornWrite is reported. A full rewrite
  /// (retry) repairs the block.
  double torn_write_rate = 0.0;
  /// Probability that a counted write silently flips one bit of the
  /// just-persisted block and still reports success (bit-rot at write
  /// time). Like SilentCorruption entries, invisible to IoResult.
  double bit_rot_rate = 0.0;
  std::uint64_t seed = 0xC56'FA17ULL;
};

/// Bounded exponential backoff for transient I/O errors (sector errors
/// on reads, torn writes). Attempt k sleeps backoff_us << (k-1) before
/// reissuing; max_attempts counts the initial attempt.
struct RetryPolicy {
  int max_attempts = 4;
  std::uint32_t backoff_us = 20;
};

}  // namespace c56::mig
