#include "migration/journal.hpp"

#include <cstdio>
#include <stdexcept>

namespace c56::mig {
namespace {

constexpr std::uint64_t kMagic = 0xC56A'0001'4A52'4E4CULL;  // ..."JRNL"

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t get_u64(std::span<const std::uint8_t> in, std::size_t off) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[off + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

void MemoryCheckpointSink::write_slot(int slot,
                                      std::span<const std::uint8_t> bytes) {
  slots_[slot & 1].assign(bytes.begin(), bytes.end());
}

std::vector<std::uint8_t> MemoryCheckpointSink::read_slot(int slot) {
  return slots_[slot & 1];
}

FileCheckpointSink::FileCheckpointSink(std::string path)
    : path_(std::move(path)) {
  // Create the file if absent so read_slot on a fresh journal works.
  if (std::FILE* f = std::fopen(path_.c_str(), "ab")) std::fclose(f);
}

void FileCheckpointSink::write_slot(int slot,
                                    std::span<const std::uint8_t> bytes) {
  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  if (!f) f = std::fopen(path_.c_str(), "wb+");
  if (!f) throw std::runtime_error("FileCheckpointSink: cannot open " + path_);
  const long off =
      static_cast<long>((slot & 1) * MigrationJournal::kSlotBytes);
  if (std::fseek(f, off, SEEK_SET) != 0 ||
      std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
    std::fclose(f);
    throw std::runtime_error("FileCheckpointSink: short write to " + path_);
  }
  std::fflush(f);
  std::fclose(f);
}

std::vector<std::uint8_t> FileCheckpointSink::read_slot(int slot) {
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (!f) return {};
  std::vector<std::uint8_t> bytes(MigrationJournal::kSlotBytes);
  const long off =
      static_cast<long>((slot & 1) * MigrationJournal::kSlotBytes);
  std::size_t got = 0;
  if (std::fseek(f, off, SEEK_SET) == 0) {
    got = std::fread(bytes.data(), 1, bytes.size(), f);
  }
  std::fclose(f);
  bytes.resize(got);
  return bytes;
}

std::vector<std::uint8_t> MigrationJournal::encode(
    const CheckpointRecord& rec) {
  std::vector<std::uint8_t> out;
  out.reserve(kSlotBytes);
  put_u64(out, kMagic);
  put_u64(out, rec.seq);
  put_u64(out, static_cast<std::uint64_t>(rec.groups_done));
  put_u64(out, static_cast<std::uint64_t>(rec.diag_rows));
  put_u64(out, fnv1a64(out));
  return out;
}

std::optional<CheckpointRecord> MigrationJournal::decode(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() != kSlotBytes) return std::nullopt;
  if (get_u64(bytes, 0) != kMagic) return std::nullopt;
  if (get_u64(bytes, 32) != fnv1a64(bytes.first(32))) return std::nullopt;
  CheckpointRecord rec;
  rec.seq = get_u64(bytes, 8);
  rec.groups_done = static_cast<std::int64_t>(get_u64(bytes, 16));
  rec.diag_rows = static_cast<int>(get_u64(bytes, 24));
  return rec;
}

void MigrationJournal::record(std::int64_t groups_done, int diag_rows) {
  CheckpointRecord rec{++seq_, groups_done, diag_rows};
  sink_.write_slot(next_slot_, encode(rec));
  next_slot_ ^= 1;
  records_.inc();
}

std::optional<CheckpointRecord> MigrationJournal::recover() {
  std::optional<CheckpointRecord> best;
  int best_slot = -1;
  for (int slot = 0; slot < 2; ++slot) {
    const auto bytes = sink_.read_slot(slot);
    // `>=` makes equal-seq ties deterministic: prefer the LATER slot.
    // Two valid records can share a seq after a torn write of slot A is
    // retried into slot B (the writer re-records the same position);
    // the later slot is the more recently written copy of that
    // position, and picking it also makes next_slot_ point at the
    // earlier (stale) twin so the duplicate is overwritten first.
    if (auto rec = decode(bytes); rec && (!best || rec->seq >= best->seq)) {
      best = rec;
      best_slot = slot;
    }
  }
  if (best) {
    seq_ = best->seq;
    next_slot_ = best_slot ^ 1;  // overwrite the stale/torn slot first
  }
  return best;
}

}  // namespace c56::mig
