#pragma once
// Synthetic migration trace generator — the Section V-C methodology:
// "we generate different synthetic traces for the migration I/Os by
// using various coding schemes, based on the results of mathematical
// analysis". Each conversion plan is expanded into per-disk block
// requests; the two-step approaches produce two simulator phases per
// sweep so the degrade step completes before the upgrade begins.
//
// Load balancing rotates the whole stripe layout by one disk per
// group, spreading the dedicated-parity traffic over all spindles (the
// "with load balancing support" configuration of Figures 17/19).

#include <cstdint>

#include "migration/plan.hpp"
#include "sim/trace.hpp"

namespace c56::mig {

struct TraceParams {
  std::int64_t total_data_blocks = 600'000;  // B, as in Section V-C
  std::uint32_t block_bytes = 4096;          // 4 KB or 8 KB in the paper
  /// Groups whose phase-k requests are batched into one simulator
  /// phase. Large batches model a converter that streams the degrade
  /// step across the whole array before upgrading (the paper's
  /// sequential steps); the group interleaving *within* a batch still
  /// alternates per stripe.
  std::int64_t groups_per_sweep = 0;  // 0 = all groups in one sweep
};

/// Expand a conversion into a simulator trace.
sim::Trace make_conversion_trace(const ConversionPlanner& planner,
                                 const TraceParams& params);

/// Physical disk index of a target column for group g (handles virtual
/// columns and load-balancing rotation). Returns -1 for virtual columns.
int physical_disk(const ConversionPlanner& planner, int col, std::int64_t g);

}  // namespace c56::mig
