#pragma once
// Algorithm 2: online bidirectional conversion between a RAID-5 and a
// RAID-6 using Code 5-6.
//
// The migrator owns two flows over one DiskArray:
//   * a conversion thread that walks the stripe groups and generates
//     the diagonal parities onto the freshly added disk;
//   * the application path (read_block / write_block), called from any
//     thread. Reads never conflict with the conversion (only the new
//     disk is written). A write interrupts the conversion thread,
//     performs its read-modify-write of the horizontal parity — and of
//     the diagonal parity too, when the block's diagonal chain has
//     already been generated — and then lets the conversion resume,
//     exactly as the paper's algorithm describes.
//
// The RAID-6 -> RAID-5 direction is the trivial Step 1-2 of the
// algorithm: verify the geometry and drop the last column.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <thread>

#include "codes/code56.hpp"
#include "migration/disk_array.hpp"

namespace c56::mig {

struct OnlineStats {
  std::uint64_t conv_reads = 0;
  std::uint64_t conv_writes = 0;
  std::uint64_t app_reads = 0;
  std::uint64_t app_writes = 0;
  std::uint64_t interruptions = 0;  // writes that preempted the converter
};

class OnlineMigrator {
 public:
  /// `array` must hold m = p-1 disks laid out as a left-asymmetric
  /// RAID-5 whose blocks_per_disk is a multiple of p-1 (one Code 5-6
  /// stripe group per p-1 rows).
  OnlineMigrator(DiskArray& array, int p);

  OnlineMigrator(const OnlineMigrator&) = delete;
  OnlineMigrator& operator=(const OnlineMigrator&) = delete;
  ~OnlineMigrator();

  const Code56& code() const { return code_; }
  std::int64_t groups() const { return groups_; }
  std::int64_t logical_blocks() const;  // data blocks addressable by apps

  /// Step 2-3 of Algorithm 2: add the new disk and start the
  /// conversion thread.
  void start();
  /// Block until the conversion thread finishes.
  void finish();
  bool converting() const { return running_.load(); }
  std::int64_t groups_done() const { return groups_done_.load(); }

  /// Application I/O on logical data blocks (RAID-5 data addressing;
  /// safe to call concurrently with the conversion and with itself).
  void read_block(std::int64_t logical, std::span<std::uint8_t> out);
  void write_block(std::int64_t logical, std::span<const std::uint8_t> in);

  OnlineStats stats() const;

  /// Post-conversion check: every stripe group satisfies all Code 5-6
  /// parity chains.
  bool verify_raid6() const;

  /// Reverse conversion (RAID-6 -> RAID-5): conceptually deletes the
  /// last column. Returns the index of the now-obsolete disk; the first
  /// m disks again form a plain RAID-5.
  int revert_to_raid5();

 private:
  struct Locus {  // physical location of a logical data block
    int disk;
    std::int64_t block;
    int group;      // stripe group
    int row;        // row within the group (== target stripe row)
  };
  Locus locate(std::int64_t logical) const;
  void conversion_loop();
  void generate_diag(std::int64_t group, int diag_row);

  DiskArray& array_;
  Code56 code_;
  int m_;                       // source disks
  std::int64_t groups_;
  int new_disk_ = -1;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<int> pending_writers_{0};
  std::atomic<bool> running_{false};
  std::atomic<std::int64_t> groups_done_{0};
  // Diagonal-parity progress: for the group currently being converted,
  // how many diagonal rows are already on disk. Groups below
  // groups_done_ are fully generated.
  std::int64_t current_group_ = 0;
  int current_diag_rows_ = 0;

  std::thread worker_;
  OnlineStats stats_;
};

}  // namespace c56::mig
