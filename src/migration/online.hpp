#pragma once
// Algorithm 2: online bidirectional conversion between a RAID-5 and a
// RAID-6 using Code 5-6.
//
// The migrator owns two flows over one DiskArray:
//   * a conversion thread that walks the stripe groups and generates
//     the diagonal parities onto the freshly added disk;
//   * the application path (read_block / write_block), called from any
//     thread. Reads never conflict with the conversion (only the new
//     disk is written). A write interrupts the conversion thread,
//     performs its read-modify-write of the horizontal parity — and of
//     the diagonal parity too, when the block's diagonal chain has
//     already been generated — and then lets the conversion resume,
//     exactly as the paper's algorithm describes.
//
// Fault tolerance (the behaviour Table VI's risk model quantifies):
// both flows degrade under injected faults instead of crashing.
// Transient sector errors and torn writes are retried with bounded
// exponential backoff; a failed source disk is read through the RAID-5
// horizontal parity (reconstruct-on-read) while the conversion keeps
// going; unrecoverable patterns (a second concurrent failure) drive the
// migration into a terminal kAborted state with a reason string. An
// attached CheckpointSink journals the converter position after every
// diagonal block, so a killed migration resumes idempotently via
// resume(), re-verifying the watermark group before continuing.
//
// The RAID-6 -> RAID-5 direction is the trivial Step 1-2 of the
// algorithm: verify the geometry and drop the last column.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "codes/code56.hpp"
#include "migration/degraded.hpp"
#include "migration/disk_array.hpp"
#include "migration/journal.hpp"

namespace c56::mig {

struct OnlineStats {
  std::uint64_t conv_reads = 0;
  std::uint64_t conv_writes = 0;
  std::uint64_t app_reads = 0;
  std::uint64_t app_writes = 0;
  std::uint64_t interruptions = 0;  // writes that preempted the converter
  std::uint64_t retries = 0;        // transient-error retries (both flows)
  std::uint64_t reconstructed_reads = 0;  // reads served through parity
  std::uint64_t degraded_writes = 0;      // block updates skipped on a
                                          // failed disk (covered by parity)
};

enum class MigrationState : std::uint8_t {
  kIdle,        // constructed, conversion not started
  kConverting,  // conversion thread active
  kStopped,     // halted at a checkpoint via request_stop(); resumable
  kDone,        // every group generated
  kAborted,     // unrecoverable fault; see abort_reason()
};

const char* to_string(MigrationState s) noexcept;

class OnlineMigrator {
 public:
  /// `array` must hold m = p-1 disks laid out as a left-asymmetric
  /// RAID-5 whose blocks_per_disk is a multiple of p-1 (one Code 5-6
  /// stripe group per p-1 rows) — or m+1 disks when re-attaching to an
  /// interrupted migration whose new disk already exists (resume()).
  OnlineMigrator(DiskArray& array, int p);

  OnlineMigrator(const OnlineMigrator&) = delete;
  OnlineMigrator& operator=(const OnlineMigrator&) = delete;
  /// Requests a stop and joins the conversion thread; a migration
  /// destroyed mid-conversion is left at its last checkpoint.
  ~OnlineMigrator();

  const Code56& code() const { return code_; }
  std::int64_t groups() const { return groups_; }
  std::int64_t logical_blocks() const;  // data blocks addressable by apps

  /// Journal the converter position through `sink` (kept by reference;
  /// must outlive the migrator). Call before start()/resume().
  void attach_journal(CheckpointSink& sink);
  /// Retry/backoff policy for transient I/O errors (both flows).
  void set_retry_policy(const RetryPolicy& policy);

  /// Step 2-3 of Algorithm 2: add the new disk and start the
  /// conversion thread. Only valid in state kIdle.
  void start();
  /// Restart an interrupted conversion from the journal (or from the
  /// in-memory position when no journal is attached): re-verifies the
  /// watermark group and the partial diagonal rows of the current
  /// group, rewinding past anything stale, then continues. Idempotent —
  /// resuming a finished migration is a no-op.
  void resume();
  /// Ask the conversion thread to halt at the next checkpoint (state
  /// kStopped). Returns immediately; finish() joins.
  void request_stop();
  /// Block until the conversion thread exits. Idempotent; safe to call
  /// whether or not start() ever ran.
  void finish();

  bool converting() const { return running_.load(); }
  std::int64_t groups_done() const { return groups_done_.load(); }
  MigrationState state() const;
  /// Why the migration aborted (empty unless state() == kAborted).
  std::string abort_reason() const;

  /// Application I/O on logical data blocks (RAID-5 data addressing;
  /// safe to call concurrently with the conversion and with itself).
  /// Degrades through parity when disks are failed; the result reports
  /// unrecoverable faults.
  IoResult read_block(std::int64_t logical, std::span<std::uint8_t> out);
  IoResult write_block(std::int64_t logical, std::span<const std::uint8_t> in);

  OnlineStats stats() const;

  /// Reconstruct every block of every failed disk in place and mark the
  /// disks healthy again (source disks through the horizontal parity or
  /// — for double failures after conversion — Algorithm 1; the new disk
  /// by regenerating its diagonal column). Returns blocks rebuilt.
  std::int64_t rebuild_failed_disks();

  /// Post-conversion check: every stripe group satisfies all Code 5-6
  /// parity chains.
  bool verify_raid6() const;

  /// Reverse conversion (RAID-6 -> RAID-5): conceptually deletes the
  /// last column. Returns the index of the now-obsolete disk; the first
  /// m disks again form a plain RAID-5.
  int revert_to_raid5();

 private:
  struct Locus {  // physical location of a logical data block
    int disk;
    std::int64_t block;
    int group;      // stripe group
    int row;        // row within the group (== target stripe row)
  };
  Locus locate(std::int64_t logical) const;
  void conversion_loop();
  void launch_locked();
  void abort_locked(std::string reason);
  /// Generate diagonal-parity row `diag_row` of `group` from its chain
  /// (degrades through reconstruction). mu_ must be held.
  IoResult generate_diag(std::int64_t group, int diag_row);
  /// Read a source-array block, reconstructing through the RAID-5
  /// horizontal parity when the disk is failed or the block unreadable.
  /// mu_ must be held.
  IoResult read_source(int disk, std::int64_t block,
                       std::span<std::uint8_t> out, bool conversion);
  /// First diagonal row of `group` in [0, upto) whose stored parity
  /// does not match a recomputation (upto if all match). mu_ held.
  int first_stale_diag(std::int64_t group, int upto);

  DiskArray& array_;
  Code56 code_;
  int m_;                       // source disks
  std::int64_t groups_;
  int new_disk_ = -1;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<int> pending_writers_{0};
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::int64_t> groups_done_{0};
  // Diagonal-parity progress: for the group currently being converted,
  // how many diagonal rows are already on disk. Groups below
  // groups_done_ are fully generated.
  std::int64_t current_group_ = 0;
  int current_diag_rows_ = 0;
  std::int64_t start_group_ = 0;  // conversion-loop entry point
  int start_row_ = 0;

  MigrationState state_ = MigrationState::kIdle;
  std::string abort_reason_;
  RetryPolicy retry_;
  std::optional<MigrationJournal> journal_;

  std::thread worker_;
  OnlineStats stats_;
};

}  // namespace c56::mig
