#include "migration/plan.hpp"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>

#include "codes/code56.hpp"
#include "util/prime.hpp"

namespace c56::mig {

std::size_t StripePhaseOps::reads() const {
  std::size_t n = 0;
  for (const CellOp& op : ops) n += !op.write;
  return n;
}

std::size_t StripePhaseOps::writes() const {
  std::size_t n = 0;
  for (const CellOp& op : ops) n += op.write;
  return n;
}

ConversionPlanner::ConversionPlanner(const ConversionSpec& spec,
                                     Raid5Flavor flavor, PassPolicy policy)
    : spec_(spec), flavor_(flavor), policy_(policy) {
  if (!spec.valid()) {
    throw std::invalid_argument("invalid conversion spec: " + spec.label());
  }
  if (spec.code == CodeId::kCode56) {
    code_ = std::make_unique<Code56>(spec.p, spec.p - spec.m - 1);
    for (int k = 0; k < spec.m; ++k) {
      original_cols_.push_back(spec.virtual_disks() + k);
    }
  } else {
    code_ = make_code(spec.code, spec.p);
    for (int k = 0; k < spec.m; ++k) original_cols_.push_back(k);
  }
  reuse_ = reuses_raid5_parity(spec.code);
}

int ConversionPlanner::phase_count() const {
  return spec_.approach == Approach::kDirect ? 1 : 2;
}

bool ConversionPlanner::is_original(int col) const {
  return std::ranges::find(original_cols_, col) != original_cols_.end();
}

bool ConversionPlanner::is_reserved(Cell c) const {
  if (!is_original(c.col)) return false;
  const CellKind k = code_->kind(c);
  if (k == CellKind::kRowParity && reuse_) return false;
  return is_parity(k);
}

int ConversionPlanner::hole_col(std::int64_t g, int r) const {
  if (reuse_) return -1;
  // The old parity of this source row rotates over the m original
  // disks; if the rotation lands on a reserved cell, shift cyclically
  // to the next source-usable column.
  const std::int64_t global_row = g * code_->rows() + r;
  // The rotation has period m, so reduce before the int conversion.
  int k = raid5_parity_disk(flavor_, static_cast<int>(global_row % spec_.m),
                            spec_.m);
  for (int probe = 0; probe < spec_.m; ++probe) {
    const int col = original_cols_[static_cast<std::size_t>(
        (k + probe) % spec_.m)];
    if (!is_reserved({r, col}) &&
        code_->kind({r, col}) != CellKind::kVirtual) {
      return col;
    }
  }
  return -1;  // the row holds no source content (fully reserved)
}

bool ConversionPlanner::is_source_data(std::int64_t g, Cell c) const {
  if (!is_original(c.col)) return false;            // added disk: empty
  if (code_->kind(c) == CellKind::kVirtual) return false;
  if (is_reserved(c)) return false;                 // pre-reserved space
  if (reuse_) return code_->kind(c) == CellKind::kData;
  return c.col != hole_col(g, c.row);               // hole == old parity slot
}

std::vector<StripePhaseOps> ConversionPlanner::ops_for_group(
    std::int64_t g) const {
  const ErasureCode& code = *code_;
  std::vector<StripePhaseOps> out;

  // Partition parity cells exactly as the cost model does.
  std::set<std::pair<int, int>> row_parities, other_parities, all_parities;
  for (int r = 0; r < code.rows(); ++r) {
    for (int c = 0; c < code.cols(); ++c) {
      const CellKind k = code.kind({r, c});
      if (!is_parity(k)) continue;
      all_parities.insert({r, c});
      (k == CellKind::kRowParity ? row_parities : other_parities)
          .insert({r, c});
    }
  }

  auto generation = [&](std::string name,
                        const std::set<std::pair<int, int>>& generated,
                        const std::set<std::pair<int, int>>& prior) {
    StripePhaseOps ph;
    ph.name = std::move(name);
    std::set<std::pair<int, int>> read_once;
    CellKind current_set = CellKind::kData;  // sentinel
    int pass = -1;
    for (const ParityChain& ch : code.chains()) {
      if (!generated.count({ch.parity.row, ch.parity.col})) continue;
      if (pass < 0) {
        pass = 0;
        current_set = code.kind(ch.parity);
      } else if (policy_ == PassPolicy::kPassPerParitySet &&
                 code.kind(ch.parity) != current_set) {
        current_set = code.kind(ch.parity);
        read_once.clear();  // a new streaming pass begins
        ++pass;
      }
      for (Cell in : ch.inputs) {
        const std::pair<int, int> key{in.row, in.col};
        if (generated.count(key)) continue;  // in memory this phase
        bool need_read = false;
        if (prior.count(key) || is_parity(code.kind(in))) {
          need_read = true;
        } else {
          need_read = is_source_data(g, in);
        }
        if (need_read && read_once.insert(key).second) {
          ph.ops.push_back({in, false, pass});
        }
      }
      ph.ops.push_back({ch.parity, true, pass});
    }
    return ph;
  };

  auto holes_phase = [&](std::string name, bool read, bool write) {
    StripePhaseOps ph;
    ph.name = std::move(name);
    for (int r = 0; r < code.rows(); ++r) {
      const int hc = hole_col(g, r);
      if (hc < 0) continue;
      if (code.kind({r, hc}) == CellKind::kVirtual) continue;
      if (read) ph.ops.push_back({{r, hc}, false});
      if (write) ph.ops.push_back({{r, hc}, true});
    }
    return ph;
  };

  switch (spec_.approach) {
    case Approach::kViaRaid0: {
      out.push_back(holes_phase("degrade: invalidate old parity",
                                /*read=*/false, /*write=*/true));
      out.push_back(generation("upgrade: generate all parities",
                               all_parities, {}));
      break;
    }
    case Approach::kViaRaid4: {
      StripePhaseOps ph1 =
          holes_phase("degrade: migrate old parity", /*read=*/true,
                      /*write=*/false);
      // Each old parity lands on the row-parity cell of its row.
      for (const auto& [r, c] : row_parities) {
        ph1.ops.push_back({{r, c}, true});
      }
      out.push_back(std::move(ph1));
      out.push_back(generation("upgrade: generate diagonal parities",
                               other_parities, row_parities));
      break;
    }
    case Approach::kDirect: {
      if (spec_.code == CodeId::kCode56) {
        out.push_back(generation("direct: generate diagonal parities",
                                 other_parities, {}));
      } else if (spec_.code == CodeId::kHdp) {
        StripePhaseOps ph = generation(
            "direct: generate anti-diagonal parities + fold rows",
            other_parities, {});
        for (const auto& [r, c] : row_parities) {
          ph.ops.push_back({{r, c}, false});
          ph.ops.push_back({{r, c}, true});
        }
        out.push_back(std::move(ph));
      } else {
        StripePhaseOps ph = generation(
            "direct: generate parities + invalidate old", all_parities, {});
        StripePhaseOps inval =
            holes_phase("", /*read=*/false, /*write=*/true);
        for (const CellOp& op : inval.ops) ph.ops.push_back(op);
        out.push_back(std::move(ph));
      }
      break;
    }
  }
  return out;
}

}  // namespace c56::mig
