#include "analysis/risk.hpp"

#include <cmath>

#include "analysis/reliability.hpp"

namespace c56::ana {

int window_fault_tolerance(const mig::ConversionSpec& spec) {
  // The via-RAID-0 route has a phase with no valid parity at all.
  return spec.approach == mig::Approach::kViaRaid0 ? 0 : 1;
}

const char* window_risk_rating(const mig::ConversionSpec& spec) {
  switch (spec.approach) {
    case mig::Approach::kViaRaid0:
      return "Low (no fault tolerance in RAID-0)";
    case mig::Approach::kViaRaid4:
      return "Medium (old parity blocks in flight)";
    case mig::Approach::kDirect:
      return spec.code == CodeId::kCode56
                 ? "High (no risk on parity loss)"
                 : "High (old parity retained until done)";
  }
  return "?";
}

WindowRisk conversion_window_risk(const mig::ConversionSpec& spec,
                                  double total_data_blocks, double te_ms,
                                  double afr) {
  WindowRisk out;
  const mig::ConversionCosts costs = mig::analyze(spec);
  out.window_hours = costs.time * total_data_blocks * te_ms / 3.6e6;
  out.tolerated = window_fault_tolerance(spec);
  const int n = spec.n();
  const double lt = lambda_per_hour(afr) * out.window_hours;  // per disk
  // Poisson failures, no repair inside the window: loss iff more than
  // `tolerated` disks die. P = 1 - sum_{k<=f} C(n,k) q^k (1-q)^(n-k)
  // with q = 1 - exp(-lt).
  const double q = 1.0 - std::exp(-lt);
  double p_ok = 0.0;
  double comb = 1.0;
  for (int k = 0; k <= out.tolerated; ++k) {
    if (k > 0) comb = comb * (n - k + 1) / k;
    p_ok += comb * std::pow(q, k) * std::pow(1.0 - q, n - k);
  }
  out.loss_probability = 1.0 - p_ok;
  return out;
}

}  // namespace c56::ana
