#include "analysis/reliability.hpp"

#include <cassert>
#include <stdexcept>

namespace c56::ana {

const std::vector<AfrByAge>& paper_afr_table() {
  // Table I: AFRs by age group, aggregated from [48][39][2][49][53].
  static const std::vector<AfrByAge> table{
      {1, 0.017}, {2, 0.081}, {3, 0.086}, {4, 0.058}, {5, 0.072},
  };
  return table;
}

double lambda_per_hour(double afr) { return afr / 8760.0; }

double mttdl_hours(int n, int tolerated, double lambda, double mu) {
  if (n <= 0 || tolerated < 0 || tolerated >= n || lambda <= 0.0) {
    throw std::invalid_argument("mttdl_hours: bad parameters");
  }
  // First-step analysis: T_k = expected time to absorption from k
  // failed disks, T_{f+1} = 0.
  //   T_k = 1/r_k + (up_k/r_k) T_{k+1} + (down_k/r_k) T_{k-1}
  // with up_k = (n-k) lambda, down_k = k>0 ? mu : 0, r_k = up_k+down_k.
  // Solve the tridiagonal system by backward elimination: express
  // T_k = a_k + b_k * T_{k-1} starting from k = f down to 0 is awkward;
  // instead eliminate forward: T_k = alpha_k + beta_k T_{k+1}.
  const int f = tolerated;
  std::vector<double> alpha(static_cast<std::size_t>(f) + 1);
  std::vector<double> beta(static_cast<std::size_t>(f) + 1);
  // k = 0: T_0 = 1/(n lambda) + T_1.
  alpha[0] = 1.0 / (n * lambda);
  beta[0] = 1.0;
  for (int k = 1; k <= f; ++k) {
    const double up = (n - k) * lambda;
    const double down = mu;
    const double r = up + down;
    // T_k = 1/r + (up/r) T_{k+1} + (down/r) T_{k-1}
    //     = 1/r + (up/r) T_{k+1} + (down/r)(alpha_{k-1} + beta_{k-1} T_k)
    const double denom = 1.0 - (down / r) * beta[static_cast<std::size_t>(k - 1)];
    alpha[static_cast<std::size_t>(k)] =
        (1.0 / r + (down / r) * alpha[static_cast<std::size_t>(k - 1)]) /
        denom;
    beta[static_cast<std::size_t>(k)] = (up / r) / denom;
  }
  // T_{f+1} = 0, so T_f = alpha_f; then walk back to T_0.
  double t = alpha[static_cast<std::size_t>(f)];
  for (int k = f - 1; k >= 0; --k) {
    t = alpha[static_cast<std::size_t>(k)] +
        beta[static_cast<std::size_t>(k)] * t;
  }
  return t;
}

double raid5_mttdl_hours(int n, double afr, double repair_hours) {
  return mttdl_hours(n, 1, lambda_per_hour(afr), 1.0 / repair_hours);
}

double raid6_mttdl_hours(int n, double afr, double repair_hours) {
  return mttdl_hours(n, 2, lambda_per_hour(afr), 1.0 / repair_hours);
}

}  // namespace c56::ana
