#pragma once
// Conversion-window risk — Table VI of the paper, quantified.
//
// While a conversion runs, the array's fault tolerance is reduced:
//   * via RAID-0: the degrade step destroys every old parity before any
//     new parity exists — zero tolerance for the rest of the window
//     ("Low" in Table VI);
//   * via RAID-4: old parities survive but are in flight; one disk
//     failure is survivable, with migration-consistency risk
//     ("Medium");
//   * direct conversions keep the old parities readable until the new
//     ones exist — one failure is always survivable ("High"), and
//     Code 5-6 additionally never rewrites or moves them ("no risk on
//     parity loss").
//
// The window length follows from the cost model (time per B*Te); the
// loss probability treats disk failures as Poisson with the given AFR.

#include <string>

#include "migration/cost_model.hpp"

namespace c56::ana {

/// Failures tolerated while the conversion window is open.
int window_fault_tolerance(const mig::ConversionSpec& spec);

/// Table VI's qualitative rating derived from the window tolerance and
/// whether old parities are rewritten in flight.
const char* window_risk_rating(const mig::ConversionSpec& spec);

struct WindowRisk {
  double window_hours = 0.0;       // conversion duration
  int tolerated = 0;               // failures survivable inside it
  double loss_probability = 0.0;   // P(data loss during the window)
};

/// Risk of converting an array of B data blocks with per-block access
/// time te_ms, disks failing independently at the given AFR.
WindowRisk conversion_window_risk(const mig::ConversionSpec& spec,
                                  double total_data_blocks, double te_ms,
                                  double afr);

}  // namespace c56::ana
