#include "analysis/speedup.hpp"

#include <algorithm>

#include "util/prime.hpp"

namespace c56::ana {

using mig::Approach;
using mig::ConversionSpec;

namespace {

/// Prime parameter that makes `code` span exactly n disks, if any.
std::optional<int> prime_for_n(CodeId code, int n) {
  int p = 0;
  switch (code) {
    case CodeId::kCode56: p = 0; break;  // handled separately
    case CodeId::kRdp: p = n - 1; break;
    case CodeId::kEvenOdd: p = n - 2; break;
    case CodeId::kHCode: p = n - 1; break;
    case CodeId::kXCode: p = n; break;
    case CodeId::kPCode: p = n + 1; break;
    case CodeId::kHdp: p = n + 1; break;
  }
  if (p < 5 || !is_prime(p)) return std::nullopt;
  return p;
}

std::vector<Approach> applicable_approaches(CodeId code) {
  if (is_horizontal_code(code)) {
    return {Approach::kViaRaid0, Approach::kViaRaid4};
  }
  return {Approach::kDirect};
}

}  // namespace

std::optional<BestConversion> best_conversion_for_n(CodeId code, int n,
                                                    bool lb) {
  if (code == CodeId::kCode56) {
    const ConversionSpec spec = ConversionSpec::direct_code56(n - 1, lb);
    return BestConversion{spec, mig::analyze(spec).time};
  }
  const auto p = prime_for_n(code, n);
  if (!p) return std::nullopt;
  std::optional<BestConversion> best;
  for (Approach a : applicable_approaches(code)) {
    const ConversionSpec spec = ConversionSpec::canonical(code, a, *p, lb);
    const double t = mig::analyze(spec).time;
    if (!best || t < best->time) best = BestConversion{spec, t};
  }
  return best;
}

std::vector<SpeedupEntry> table4(bool lb) {
  std::vector<SpeedupEntry> out;
  for (int n : {5, 6, 7}) {
    const auto mine = best_conversion_for_n(CodeId::kCode56, n, lb);
    for (CodeId other : all_code_ids()) {
      if (other == CodeId::kCode56) continue;
      const auto theirs = best_conversion_for_n(other, n, lb);
      if (!theirs) continue;
      SpeedupEntry e;
      e.n = n;
      e.other = other;
      e.other_spec = theirs->spec;
      e.speedup = theirs->time / mine->time;
      out.push_back(e);
    }
  }
  return out;
}

double simulate_conversion_ms(const ConversionSpec& spec,
                              const mig::TraceParams& params,
                              const sim::DiskParams& disk) {
  const mig::ConversionPlanner planner(spec);
  const sim::Trace trace = mig::make_conversion_trace(planner, params);
  sim::ArraySimulator simulator(spec.n(), disk);
  return simulator.run(trace).makespan_ms;
}

std::vector<SimSpeedupEntry> table5(int p, const mig::TraceParams& params,
                                    const sim::DiskParams& disk) {
  std::vector<SimSpeedupEntry> out;
  const ConversionSpec mine = ConversionSpec::direct_code56(p - 1, true);
  const double mine_ms = simulate_conversion_ms(mine, params, disk);
  for (CodeId other :
       {CodeId::kRdp, CodeId::kEvenOdd, CodeId::kHCode, CodeId::kXCode}) {
    std::optional<ConversionSpec> best_spec;
    double best_ms = 0.0;
    for (Approach a : applicable_approaches(other)) {
      const ConversionSpec spec = ConversionSpec::canonical(other, a, p, true);
      const double ms = simulate_conversion_ms(spec, params, disk);
      if (!best_spec || ms < best_ms) {
        best_spec = spec;
        best_ms = ms;
      }
    }
    SimSpeedupEntry e;
    e.p = p;
    e.other = other;
    e.other_spec = *best_spec;
    e.other_ms = best_ms;
    e.code56_ms = mine_ms;
    e.speedup = best_ms / mine_ms;
    out.push_back(e);
  }
  return out;
}

}  // namespace c56::ana
