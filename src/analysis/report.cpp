#include "analysis/report.hpp"

#include "util/prime.hpp"

namespace c56::ana {

using mig::Approach;
using mig::ConversionSpec;

std::vector<ConversionSpec> figure_conversion_set(bool lb) {
  std::vector<ConversionSpec> out;
  for (CodeId code : {CodeId::kEvenOdd, CodeId::kRdp, CodeId::kHCode}) {
    out.push_back(ConversionSpec::canonical(code, Approach::kViaRaid0, 5, lb));
    out.push_back(ConversionSpec::canonical(code, Approach::kViaRaid4, 5, lb));
  }
  out.push_back(ConversionSpec::canonical(CodeId::kXCode, Approach::kDirect,
                                          5, lb));
  out.push_back(ConversionSpec::canonical(CodeId::kPCode, Approach::kDirect,
                                          7, lb));
  out.push_back(ConversionSpec::canonical(CodeId::kHdp, Approach::kDirect,
                                          7, lb));
  out.push_back(ConversionSpec::direct_code56(4, lb));
  return out;
}

std::vector<ConversionSpec> family_sweep(CodeId code, Approach approach,
                                         bool lb) {
  std::vector<ConversionSpec> out;
  for (int p : {5, 7, 11, 13, 17}) {
    if (code == CodeId::kCode56) {
      out.push_back(ConversionSpec::direct_code56(p - 1, lb));
    } else {
      out.push_back(ConversionSpec::canonical(code, approach, p, lb));
    }
  }
  return out;
}

TextTable conversion_table(
    const std::vector<ConversionSpec>& specs, const std::string& header,
    const std::function<double(const mig::ConversionCosts&)>& metric,
    bool as_percent) {
  TextTable t({"conversion", header});
  for (const ConversionSpec& spec : specs) {
    const mig::ConversionCosts costs = mig::analyze(spec);
    const double v = metric(costs);
    t.add_row({spec.label(),
               as_percent ? TextTable::pct(v) : TextTable::fmt(v)});
  }
  return t;
}

}  // namespace c56::ana
