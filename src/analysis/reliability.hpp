#pragma once
// Markov reliability model backing the paper's motivation (Table I,
// Table VI): mean time to data loss of an n-disk array tolerating f
// concurrent disk failures, with exponential failure rate lambda per
// disk and repair rate mu per failed disk.
//
// States 0..f count failed disks; state f+1 (data loss) is absorbing.
// k -> k+1 at rate (n-k)*lambda, k -> 0 is modeled as single-step
// repair k -> k-1 at rate mu. Expected absorption time from state 0 is
// obtained by solving the small tridiagonal first-step system exactly.

#include <vector>

namespace c56::ana {

/// Table I of the paper: average annualized failure rates by drive age.
struct AfrByAge {
  int years;
  double afr;  // e.g. 0.081 for 8.1 %
};
const std::vector<AfrByAge>& paper_afr_table();

/// Failure rate per hour from an annualized failure rate.
double lambda_per_hour(double afr);

/// MTTDL in hours of an n-disk array tolerating f failures.
double mttdl_hours(int n, int tolerated, double lambda, double mu);

/// Convenience: MTTDL of RAID-5 / Code 5-6 RAID-6 built from n disks,
/// given AFR and mean repair time in hours.
double raid5_mttdl_hours(int n, double afr, double repair_hours);
double raid6_mttdl_hours(int n, double afr, double repair_hours);

}  // namespace c56::ana
