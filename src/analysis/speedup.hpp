#pragma once
// Speedup tables: Table IV (analytic conversion time, best approach per
// code, matched array size n) and Table V (simulated conversion time,
// matched prime p).

#include <optional>
#include <vector>

#include "migration/cost_model.hpp"
#include "migration/trace_gen.hpp"
#include "sim/event_sim.hpp"

namespace c56::ana {

struct BestConversion {
  mig::ConversionSpec spec;
  double time = 0.0;  // per B*Te
};

/// Cheapest conversion (over applicable approaches) that turns a
/// RAID-5 into an n-disk RAID-6 with `code`. Nullopt when no prime
/// parameter yields that n.
std::optional<BestConversion> best_conversion_for_n(CodeId code, int n,
                                                    bool load_balanced);

struct SpeedupEntry {
  int n = 0;
  CodeId other;
  mig::ConversionSpec other_spec;
  double speedup = 0.0;  // time(other) / time(Code 5-6), same n
};

/// Table IV: Code 5-6's speedup over every other code at n in
/// {5, 6, 7}, with or without load balancing.
std::vector<SpeedupEntry> table4(bool load_balanced);

struct SimSpeedupEntry {
  int p = 0;
  CodeId other;
  mig::ConversionSpec other_spec;
  double other_ms = 0.0;
  double code56_ms = 0.0;
  double speedup = 0.0;
};

/// Table V / Fig. 19: simulated conversion makespans at matched prime
/// p, load-balanced, for the horizontal codes' best approach and
/// X-Code, against Code 5-6.
std::vector<SimSpeedupEntry> table5(int p, const mig::TraceParams& params,
                                    const sim::DiskParams& disk = {});

/// Simulated makespan of one conversion.
double simulate_conversion_ms(const mig::ConversionSpec& spec,
                              const mig::TraceParams& params,
                              const sim::DiskParams& disk = {});

}  // namespace c56::ana
