#pragma once
// Shared scaffolding for the figure/table benchmarks: the conversion
// sets the paper compares in Figures 9-17, and helpers that turn a
// metric into a printed table with one row per conversion.

#include <functional>
#include <string>
#include <vector>

#include "migration/cost_model.hpp"
#include "util/table.hpp"

namespace c56::ana {

/// The cross-code comparison set of Figures 9-17: every (code,
/// approach) combination at its proper disk counts (Section V-A:
/// "to ensure fairness ... we select the proper layout of RAID-5 and
/// the proper number of disks"). Horizontal codes appear with both
/// two-step approaches at p = 5; vertical codes convert directly at
/// the prime giving a comparable array size.
std::vector<mig::ConversionSpec> figure_conversion_set(bool load_balanced);

/// Sweep of a single code family over growing disk counts, for the
/// "with increasing number of disks" trend curves of Figures 13-16.
std::vector<mig::ConversionSpec> family_sweep(CodeId code,
                                              mig::Approach approach,
                                              bool load_balanced);

/// One row per conversion; `metric` extracts the plotted value, printed
/// as a percentage when `as_percent`.
TextTable conversion_table(
    const std::vector<mig::ConversionSpec>& specs, const std::string& header,
    const std::function<double(const mig::ConversionCosts&)>& metric,
    bool as_percent);

}  // namespace c56::ana
