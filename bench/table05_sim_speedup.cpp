// Table V: speedup of Code 5-6 over other codes' best approaches in
// terms of *simulated* conversion time, p in {5, 7}, load balanced.
// The paper reports savings of up to 89% and higher speedups at
// larger p.

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "analysis/speedup.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  c56::mig::TraceParams params;
  params.total_data_blocks = argc > 1 ? std::atoll(argv[1]) : 60'000;
  params.block_bytes = 4096;

  std::printf("Table V -- simulated speedup of Code 5-6 (LB), B=%lld\n\n",
              static_cast<long long>(params.total_data_blocks));
  c56::TextTable t({"p", "vs code", "their best conversion", "speedup",
                    "time saved"});
  for (int p : {5, 7}) {
    for (const auto& e : c56::ana::table5(p, params)) {
      t.add_row({std::to_string(p), to_string(e.other),
                 e.other_spec.label(),
                 c56::TextTable::fmt(e.speedup, 2) + "x",
                 c56::TextTable::pct(1.0 - 1.0 / e.speedup)});
    }
  }
  std::ostringstream os;
  t.print(os);
  std::fputs(os.str().c_str(), stdout);
  return 0;
}
