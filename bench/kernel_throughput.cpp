// Microbenchmark for the XOR kernel layer: GB/s of every kernel variant
// compiled into the binary and runnable on this CPU, for each of the
// four block primitives, across block sizes bracketing the cache
// levels. A second section times the parallel stripe-group conversion
// (1 worker vs. 4) on one array and checks the results byte-identical.
// Results print as tables and land in BENCH_kernels.json.
//
// The acceptance gate lives in the "accumulate_4k" JSON object: on a
// machine with a vector ISA the dispatched kernel is expected to reach
// >= 2x the scalar GB/s on xor_accumulate over 4 KiB blocks; on
// scalar-only builds (or -DC56_DISABLE_SIMD=ON) the object documents
// parity instead. The conversion section likewise documents parity when
// the host exposes a single hardware thread.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "layout/raid.hpp"
#include "migration/disk_array.hpp"
#include "migration/online.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "xorblk/buffer.hpp"
#include "xorblk/kernel.hpp"
#include "xorblk/pool.hpp"
#include "xorblk/xor.hpp"

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kSizes[] = {512, 4096, 65536};
constexpr std::size_t kAccSources = 4;  // Code 5-6 diagonal chain at p=5
constexpr double kMinSeconds = 0.05;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Run `op` until kMinSeconds elapse; GB/s of `bytes_per_iter`.
template <typename Op>
double throughput_gbps(std::size_t bytes_per_iter, Op&& op) {
  // Warm up (page faults, frequency ramp), then measure.
  for (int i = 0; i < 16; ++i) op();
  std::size_t iters = 0;
  const auto t0 = Clock::now();
  double elapsed = 0;
  do {
    for (int i = 0; i < 64; ++i) op();
    iters += 64;
    elapsed = seconds_since(t0);
  } while (elapsed < kMinSeconds);
  return static_cast<double>(bytes_per_iter) * static_cast<double>(iters) /
         elapsed / 1e9;
}

struct OpResult {
  std::string op;
  std::size_t bytes;
  double gbps;
};

std::vector<OpResult> bench_kernel(const c56::XorKernel& k) {
  std::vector<OpResult> out;
  c56::Rng rng(0xC56'BE7C);
  for (std::size_t n : kSizes) {
    c56::Buffer dst(n), a(n), b(n);
    rng.fill(dst.data(), n);
    rng.fill(a.data(), n);
    rng.fill(b.data(), n);
    std::vector<c56::Buffer> srcs_store;
    std::vector<const void*> srcs;
    for (std::size_t i = 0; i < kAccSources; ++i) {
      srcs_store.emplace_back(n);
      rng.fill(srcs_store.back().data(), n);
      srcs.push_back(srcs_store.back().data());
    }
    out.push_back({"xor_into", n, throughput_gbps(n, [&] {
                     k.xor_into(dst.data(), a.data(), n);
                   })});
    out.push_back({"xor_to", n, throughput_gbps(n, [&] {
                     k.xor_to(dst.data(), a.data(), b.data(), n);
                   })});
    out.push_back({"xor_accumulate", n, throughput_gbps(n, [&] {
                     k.xor_accumulate(dst.data(), srcs.data(), kAccSources, n);
                   })});
    out.push_back({"xor_delta", n, throughput_gbps(n, [&] {
                     k.xor_delta(dst.data(), a.data(), b.data(), n);
                   })});
    volatile bool sink = false;
    out.push_back({"all_zero", n, throughput_gbps(n, [&] {
                     sink = k.all_zero(a.data(), n);
                   })});
  }
  return out;
}

// ---- parallel conversion ------------------------------------------

constexpr int kConvP = 5;
constexpr std::int64_t kConvGroups = 384;
constexpr std::size_t kConvBlock = 16384;

void fill_raid5(c56::mig::DiskArray& array, int m, std::uint64_t seed) {
  c56::Rng rng(seed);
  std::vector<std::uint8_t> block(kConvBlock), parity(kConvBlock);
  for (std::int64_t row = 0; row < array.blocks_per_disk(); ++row) {
    std::fill(parity.begin(), parity.end(), 0);
    const int pdisk = c56::raid5_parity_disk(
        c56::Raid5Flavor::kLeftAsymmetric, static_cast<int>(row % m), m);
    for (int d = 0; d < m; ++d) {
      if (d == pdisk) continue;
      rng.fill(block.data(), kConvBlock);
      std::ranges::copy(block, array.raw_block(d, row).begin());
      c56::xor_into(parity.data(), block.data(), kConvBlock);
    }
    std::ranges::copy(parity, array.raw_block(pdisk, row).begin());
  }
}

double convert_once(c56::mig::DiskArray& array, int workers) {
  c56::mig::OnlineMigrator mig(array, kConvP);
  mig.set_workers(workers);
  const auto t0 = Clock::now();
  mig.start();
  mig.finish();
  const double s = seconds_since(t0);
  if (mig.state() != c56::mig::MigrationState::kDone) {
    std::fprintf(stderr, "conversion did not finish: %s\n",
                 to_string(mig.state()));
    std::exit(1);
  }
  return s;
}

}  // namespace

int main() {
  const int m = kConvP - 1;
  const unsigned hw = std::thread::hardware_concurrency();

  std::ostringstream json;
  json << "{\n  \"active_kernel\": \"" << c56::active_kernel().name
       << "\",\n  \"hardware_threads\": " << hw << ",\n  \"kernels\": [\n";

  std::printf("XOR kernel throughput (GB/s of destination bytes)\n");
  std::printf("active kernel: %s\n\n", c56::active_kernel().name);
  c56::TextTable t({"kernel", "op", "bytes", "GB/s"});

  double scalar_acc_4k = 0, active_acc_4k = 0;
  const auto kernels = c56::available_kernels();
  for (std::size_t ki = 0; ki < kernels.size(); ++ki) {
    const c56::XorKernel& k = kernels[ki];
    const auto results = bench_kernel(k);
    json << "    {\"name\": \"" << k.name << "\", \"isa\": \""
         << to_string(k.isa) << "\", \"ops\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const OpResult& r = results[i];
      t.add_row({k.name, r.op, std::to_string(r.bytes),
                 c56::TextTable::fmt(r.gbps, 2)});
      json << "      {\"op\": \"" << r.op << "\", \"bytes\": " << r.bytes
           << ", \"gbps\": " << r.gbps << "}"
           << (i + 1 < results.size() ? "," : "") << "\n";
      if (r.op == "xor_accumulate" && r.bytes == 4096) {
        if (k.isa == c56::XorIsa::kScalar) scalar_acc_4k = r.gbps;
        if (std::string(k.name) == c56::active_kernel().name) {
          active_acc_4k = r.gbps;
        }
      }
    }
    json << "    ]}" << (ki + 1 < kernels.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  std::ostringstream table_out;
  t.print(table_out);
  std::fputs(table_out.str().c_str(), stdout);

  const double speedup = scalar_acc_4k > 0 ? active_acc_4k / scalar_acc_4k : 1;
  const bool vector_isa = c56::active_kernel().isa != c56::XorIsa::kScalar;
  json << "  \"accumulate_4k\": {\"scalar_gbps\": " << scalar_acc_4k
       << ", \"dispatched_gbps\": " << active_acc_4k
       << ", \"speedup\": " << speedup << ", \"vector_isa\": "
       << (vector_isa ? "true" : "false") << ", \"note\": \""
       << (vector_isa ? "dispatched vector kernel vs scalar reference"
                      : "scalar-only build or CPU: parity is expected")
       << "\"},\n";
  std::printf("\nxor_accumulate @4KiB: scalar %.2f GB/s, dispatched %.2f GB/s "
              "(%.2fx)\n", scalar_acc_4k, active_acc_4k, speedup);

  // ---- parallel conversion: 1 worker vs 4, byte-identical ----------
  c56::mig::DiskArray a1(m, kConvGroups * (kConvP - 1), kConvBlock);
  c56::mig::DiskArray a4(m, kConvGroups * (kConvP - 1), kConvBlock);
  fill_raid5(a1, m, 0xC56'1234);
  fill_raid5(a4, m, 0xC56'1234);
  const double s1 = convert_once(a1, 1);
  const double s4 = convert_once(a4, 4);
  bool identical = true;
  for (int d = 0; d < a1.disks() && identical; ++d) {
    for (std::int64_t b = 0; b < a1.blocks_per_disk() && identical; ++b) {
      identical = std::ranges::equal(a1.raw_block(d, b), a4.raw_block(d, b));
    }
  }
  std::printf("\nstripe-group conversion, p=%d, %lld groups x %zu B blocks\n"
              "  1 worker:  %.3f s\n  4 workers: %.3f s (%.2fx)\n"
              "  byte-identical: %s\n",
              kConvP, static_cast<long long>(kConvGroups), kConvBlock, s1, s4,
              s1 / s4, identical ? "yes" : "NO");
  if (hw <= 1) {
    std::printf("  (single hardware thread: speedup parity is expected)\n");
  }
  json << "  \"conversion\": {\"p\": " << kConvP
       << ", \"groups\": " << kConvGroups << ", \"block_bytes\": " << kConvBlock
       << ", \"seconds_1_worker\": " << s1 << ", \"seconds_4_workers\": " << s4
       << ", \"speedup\": " << s1 / s4 << ", \"byte_identical\": "
       << (identical ? "true" : "false") << ", \"note\": \""
       << (hw <= 1 ? "single hardware thread: parity is expected"
                   : "4-way worker pool vs sequential converter")
       << "\"},\n";

  // Embed a registry snapshot of the 4-worker conversion array's I/O
  // accounting (always-on counters, so the timed runs above paid no
  // metric cost) plus the buffer-pool aggregates.
  {
    c56::obs::Registry reg;
    const c56::obs::CollectorHandle pool_handle = c56::attach_pool_metrics(reg);
    a4.attach_metrics(reg, "conv_array");
    std::string snap = reg.to_json();
    while (!snap.empty() && snap.back() == '\n') snap.pop_back();
    json << "  \"metrics_snapshot\": " << snap << "\n}\n";
    a4.detach_metrics();  // the block-scoped registry dies before a4
  }

  if (FILE* f = std::fopen("BENCH_kernels.json", "w")) {
    std::fputs(json.str().c_str(), f);
    std::fclose(f);
    std::printf("\nwrote BENCH_kernels.json\n");
  }
  return identical ? 0 : 1;
}
